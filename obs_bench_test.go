// Paired overhead proof for the observability layer (see
// docs/observability.md): the disabled path must cost nothing — zero
// extra allocations and within noise on the Move hot path — because the
// instrumented hooks are nil-receiver no-ops when core.Config.Obs is
// off. Run the pair with
//
//	go test -bench 'Obs(Disabled|Enabled)' -benchmem -count 10 .
//
// and compare; TestObsDisabledNoAllocs pins the allocation half of the
// claim in CI.
package repro_test

import (
	"testing"

	"repro"
)

// obsBenchRT builds the benchmark cell: one queue and one stack with
// one element circulating between them by Move — the composition hot
// path with descriptor publish/commit/recycle on every operation.
func obsBenchRT(obsCfg repro.ObsConfig) (*repro.Thread, *repro.Queue, *repro.Stack) {
	rt := repro.NewRuntime(repro.Config{
		MaxThreads:    2,
		ArenaCapacity: 1 << 12,
		Obs:           obsCfg,
	})
	th := rt.RegisterThread()
	q := repro.NewQueue(th)
	s := repro.NewStack(th)
	q.Enqueue(th, 42)
	return th, q, s
}

func benchMovePingPong(b *testing.B, obsCfg repro.ObsConfig) {
	th, q, s := obsBenchRT(obsCfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := repro.Move(th, q, s, 0, 0); !ok {
			repro.Move(th, s, q, 0, 0)
		}
	}
}

func BenchmarkObsDisabled(b *testing.B) {
	benchMovePingPong(b, repro.ObsConfig{})
}

func BenchmarkObsMetricsOnly(b *testing.B) {
	benchMovePingPong(b, repro.ObsConfig{Metrics: true})
}

func BenchmarkObsEnabled(b *testing.B) {
	benchMovePingPong(b, repro.ObsConfig{Metrics: true, Trace: true})
}

func BenchmarkObsFull(b *testing.B) {
	benchMovePingPong(b, repro.ObsConfig{Metrics: true, Trace: true, Spans: true})
}

// TestObsDisabledNoAllocs asserts the acceptance bound directly: with
// observability off, the Move hot path performs zero allocations per
// operation (after warmup lets the descriptor pool carve its blocks).
func TestObsDisabledNoAllocs(t *testing.T) {
	th, q, s := obsBenchRT(repro.ObsConfig{})
	move := func() {
		if _, ok := repro.Move(th, q, s, 0, 0); !ok {
			repro.Move(th, s, q, 0, 0)
		}
	}
	for i := 0; i < 1000; i++ {
		move() // warmup: pool carving, lazy paths
	}
	if avg := testing.AllocsPerRun(2000, move); avg != 0 {
		t.Fatalf("disabled observability allocates %v allocs/op on Move, want 0", avg)
	}
}

// TestObsSpansDisabledRequestPathNoAllocs pins the span layer's half of
// the disabled-cost claim: the request-path hooks the serving layer
// calls around every request (NextReq, SetRequest, Finish) are
// nil-receiver no-ops, so a kvserver built with -spans=false runs its
// full request path — span hooks included — at zero allocations per
// operation.
func TestObsSpansDisabledRequestPathNoAllocs(t *testing.T) {
	rt := repro.NewRuntime(repro.Config{MaxThreads: 2, ArenaCapacity: 1 << 12})
	th := rt.RegisterThread()
	q := repro.NewQueue(th)
	s := repro.NewStack(th)
	q.Enqueue(th, 42)
	spans := rt.Obs().Spans() // nil: observability fully off
	tracer := rt.Obs().Tracer()
	var sp repro.Span
	request := func() {
		// The kvserver request path's span choreography, verbatim.
		sp.Req = spans.NextReq()
		tracer.SetRequest(int(th.ID()), sp.Req)
		if _, ok := repro.Move(th, q, s, 0, 0); !ok {
			repro.Move(th, s, q, 0, 0)
		}
		spans.Finish(0, sp)
		tracer.SetRequest(int(th.ID()), 0)
	}
	for i := 0; i < 1000; i++ {
		request()
	}
	if avg := testing.AllocsPerRun(2000, request); avg != 0 {
		t.Fatalf("disabled span hooks allocate %v allocs/op on the request path, want 0", avg)
	}
}

// TestObsEnabledNoAllocsOnHotPath documents the stronger property the
// striped registry and ring tracer were built for: even fully enabled,
// recording is allocation-free (allocations happen only at construction
// and drain).
func TestObsEnabledNoAllocsOnHotPath(t *testing.T) {
	th, q, s := obsBenchRT(repro.ObsConfig{Metrics: true, Trace: true})
	move := func() {
		if _, ok := repro.Move(th, q, s, 0, 0); !ok {
			repro.Move(th, s, q, 0, 0)
		}
	}
	for i := 0; i < 1000; i++ {
		move()
	}
	if avg := testing.AllocsPerRun(2000, move); avg != 0 {
		t.Fatalf("enabled observability allocates %v allocs/op on Move, want 0", avg)
	}
}
