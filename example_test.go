package repro_test

import (
	"fmt"

	"repro"
)

// ExampleMove demonstrates the paper's core contribution: an atomic,
// lock-free move between two different container types.
func ExampleMove() {
	rt := repro.NewRuntime(repro.Config{MaxThreads: 1})
	th := rt.RegisterThread()
	q := repro.NewQueue(th)
	s := repro.NewStack(th)

	q.Enqueue(th, 42)
	v, ok := repro.Move(th, q, s, 0, 0)
	fmt.Println(v, ok)
	fmt.Println(q.Len(th), s.Len(th))
	// Output:
	// 42 true
	// 0 1
}

// ExampleMove_keyed moves an entry out of a hash map into an ordered
// set, selecting it by key and re-keying it at the target.
func ExampleMove_keyed() {
	rt := repro.NewRuntime(repro.Config{MaxThreads: 1})
	th := rt.RegisterThread()
	m := repro.NewHashMap(th, 8)
	l := repro.NewList(th)

	m.Insert(th, 7, 700)
	v, ok := repro.Move(th, m, l, 7, 3) // m[7] → l[3]
	fmt.Println(v, ok)
	got, found := l.Contains(th, 3)
	fmt.Println(got, found)
	// Output:
	// 700 true
	// 700 true
}

// ExampleMoveN fans one element out into several containers atomically
// (the paper's §8 extension).
func ExampleMoveN() {
	rt := repro.NewRuntime(repro.Config{MaxThreads: 1})
	th := rt.RegisterThread()
	src := repro.NewQueue(th)
	a := repro.NewStack(th)
	b := repro.NewQueue(th)

	src.Enqueue(th, 9)
	v, ok := repro.MoveN(th, src, []repro.Inserter{a, b}, 0, []uint64{0, 0})
	fmt.Println(v, ok)
	fmt.Println(a.Len(th), b.Len(th))
	// Output:
	// 9 true
	// 1 1
}

// ExampleTransferKeys moves several keyed entries between two hash
// maps in one k-word CAS: all of them move, or none do.
func ExampleTransferKeys() {
	rt := repro.NewRuntime(repro.Config{MaxThreads: 1})
	th := rt.RegisterThread()
	src := repro.NewHashMap(th, 8)
	dst := repro.NewHashMap(th, 8)

	src.Insert(th, 1, 100)
	src.Insert(th, 2, 200)
	vals, ok := repro.TransferKeys(th, src, dst, []uint64{1, 2}, []uint64{10, 20})
	fmt.Println(vals, ok)
	fmt.Println(src.Len(th), dst.Len(th))

	// A missing source key fails the whole transfer; nothing moves.
	_, ok = repro.TransferKeys(th, dst, src, []uint64{10, 99}, []uint64{1, 2})
	fmt.Println(ok, dst.Len(th))
	// Output:
	// [100 200] true
	// 0 2
	// false 2
}

// ExampleDrainN streams elements from one queue into another under a
// single amortized descriptor lifecycle. Each element's move is its own
// atomic operation (amortization, not a transaction), and the drain
// stops early when the source runs dry.
func ExampleDrainN() {
	rt := repro.NewRuntime(repro.Config{MaxThreads: 1})
	th := rt.RegisterThread()
	src := repro.NewQueue(th)
	dst := repro.NewQueue(th)

	for v := uint64(1); v <= 3; v++ {
		src.Enqueue(th, v)
	}
	moved := repro.DrainN(th, src, dst, 0, 0, 5) // asks for 5, gets 3
	fmt.Println(moved)
	fmt.Println(src.Len(th), dst.Len(th))
	// Output:
	// [1 2 3]
	// 0 3
}

// ExampleMoveTyped shows the generics layer: moving a Go struct between
// typed containers backed by one Box.
func ExampleMoveTyped() {
	rt := repro.NewRuntime(repro.Config{MaxThreads: 1})
	th := rt.RegisterThread()
	box := repro.NewBox[string]()
	q := repro.NewQueueOf[string](th, box)
	s := repro.NewStackOf[string](th, box)

	q.Enqueue(th, "payload")
	v, ok := repro.MoveTyped(th, q, s)
	fmt.Println(v, ok)
	got, _ := s.Pop(th)
	fmt.Println(got)
	// Output:
	// payload true
	// payload
}
