package repro_test

import (
	"fmt"

	"repro"
)

// ExampleMove demonstrates the paper's core contribution: an atomic,
// lock-free move between two different container types.
func ExampleMove() {
	rt := repro.NewRuntime(repro.Config{MaxThreads: 1})
	th := rt.RegisterThread()
	q := repro.NewQueue(th)
	s := repro.NewStack(th)

	q.Enqueue(th, 42)
	v, ok := repro.Move(th, q, s, 0, 0)
	fmt.Println(v, ok)
	fmt.Println(q.Len(th), s.Len(th))
	// Output:
	// 42 true
	// 0 1
}

// ExampleMove_keyed moves an entry out of a hash map into an ordered
// set, selecting it by key and re-keying it at the target.
func ExampleMove_keyed() {
	rt := repro.NewRuntime(repro.Config{MaxThreads: 1})
	th := rt.RegisterThread()
	m := repro.NewHashMap(th, 8)
	l := repro.NewList(th)

	m.Insert(th, 7, 700)
	v, ok := repro.Move(th, m, l, 7, 3) // m[7] → l[3]
	fmt.Println(v, ok)
	got, found := l.Contains(th, 3)
	fmt.Println(got, found)
	// Output:
	// 700 true
	// 700 true
}

// ExampleMoveN fans one element out into several containers atomically
// (the paper's §8 extension).
func ExampleMoveN() {
	rt := repro.NewRuntime(repro.Config{MaxThreads: 1})
	th := rt.RegisterThread()
	src := repro.NewQueue(th)
	a := repro.NewStack(th)
	b := repro.NewQueue(th)

	src.Enqueue(th, 9)
	v, ok := repro.MoveN(th, src, []repro.Inserter{a, b}, 0, []uint64{0, 0})
	fmt.Println(v, ok)
	fmt.Println(a.Len(th), b.Len(th))
	// Output:
	// 9 true
	// 1 1
}

// ExampleMoveTyped shows the generics layer: moving a Go struct between
// typed containers backed by one Box.
func ExampleMoveTyped() {
	rt := repro.NewRuntime(repro.Config{MaxThreads: 1})
	th := rt.RegisterThread()
	box := repro.NewBox[string]()
	q := repro.NewQueueOf[string](th, box)
	s := repro.NewStackOf[string](th, box)

	q.Enqueue(th, "payload")
	v, ok := repro.MoveTyped(th, q, s)
	fmt.Println(v, ok)
	got, _ := s.Pop(th)
	fmt.Println(got)
	// Output:
	// payload true
	// payload
}
