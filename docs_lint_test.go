package repro_test

// Docs-freshness check for the public facade: every exported symbol in
// compose.go and typed.go must carry a doc comment. CI runs this test,
// so an undocumented addition to the facade fails the build rather than
// silently aging the documentation layer.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestExportedSymbolsDocumented(t *testing.T) {
	for _, file := range []string{"compose.go", "typed.go"} {
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, file, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", file, err)
		}
		check := func(name string, doc *ast.CommentGroup, pos token.Pos) {
			if !ast.IsExported(name) {
				return
			}
			if doc == nil || strings.TrimSpace(doc.Text()) == "" {
				p := fset.Position(pos)
				t.Errorf("%s:%d: exported symbol %s has no doc comment", p.Filename, p.Line, name)
			}
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				// Methods count too: a typed facade method like
				// QueueOf.Enqueue is API surface just like a top-level
				// function.
				check(d.Name.Name, d.Doc, d.Pos())
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						doc := s.Doc
						if doc == nil {
							doc = d.Doc
						}
						check(s.Name.Name, doc, s.Pos())
					case *ast.ValueSpec:
						doc := s.Doc
						if doc == nil {
							doc = d.Doc
						}
						for _, n := range s.Names {
							check(n.Name, doc, s.Pos())
						}
					}
				}
			}
		}
	}
}
