package repro

import (
	"sync"
	"sync/atomic"

	"repro/internal/pad"
)

// The containers store uint64 words (shared words are arena handles; see
// DESIGN.md §2). Box[T] bridges arbitrary Go values onto them: it rents
// uint64 handles for values of type T, so typed wrappers like QueueOf
// can offer a Go-native API while the moves underneath stay lock-free on
// handles.
//
// The handle table is sharded and mutex-protected; renting and releasing
// handles happens outside the containers' lock-free fast paths (at
// produce/consume boundaries), so composition atomicity is unaffected: a
// handle in flight is owned by exactly one container at a time, exactly
// like any other element.

// Box stores values of type T and rents handles for them.
type Box[T any] struct {
	next   atomic.Uint64 // round-robin shard selector
	shards [boxShards]boxShard[T]
}

const boxShards = 16

type boxShard[T any] struct {
	mu    sync.Mutex
	items []T
	free  []uint32
	_     pad.Line
}

// NewBox creates an empty value store.
func NewBox[T any]() *Box[T] { return &Box[T]{} }

// Put stores v and returns its handle.
func (b *Box[T]) Put(v T) uint64 {
	// Round-robin over shards: contention on any one shard costs only a
	// short critical section.
	si := b.next.Add(1) & (boxShards - 1)
	s := &b.shards[si]
	s.mu.Lock()
	var idx uint32
	if n := len(s.free); n > 0 {
		idx = s.free[n-1]
		s.free = s.free[:n-1]
		s.items[idx] = v
	} else {
		idx = uint32(len(s.items))
		s.items = append(s.items, v)
	}
	s.mu.Unlock()
	return uint64(si)<<32 | uint64(idx) + 1
}

// Take returns the value for a handle and releases the handle.
func (b *Box[T]) Take(h uint64) T {
	s := &b.shards[(h-1)>>32]
	idx := uint32(h - 1)
	s.mu.Lock()
	v := s.items[idx]
	var zero T
	s.items[idx] = zero // drop references for the GC
	s.free = append(s.free, idx)
	s.mu.Unlock()
	return v
}

// Peek returns the value for a handle without releasing it.
func (b *Box[T]) Peek(h uint64) T {
	s := &b.shards[(h-1)>>32]
	idx := uint32(h - 1)
	s.mu.Lock()
	v := s.items[idx]
	s.mu.Unlock()
	return v
}

// QueueOf is a typed facade over Queue: a lock-free FIFO of T values
// that still composes with every move-ready object (its elements are
// Box handles).
type QueueOf[T any] struct {
	Q   *Queue
	Box *Box[T]
}

// NewQueueOf builds a typed queue sharing the given box (pass the same
// box to containers you intend to move elements between).
func NewQueueOf[T any](t *Thread, box *Box[T]) *QueueOf[T] {
	return &QueueOf[T]{Q: NewQueue(t), Box: box}
}

// Enqueue appends v.
func (q *QueueOf[T]) Enqueue(t *Thread, v T) bool {
	h := q.Box.Put(v)
	if q.Q.Enqueue(t, h) {
		return true
	}
	q.Box.Take(h)
	return false
}

// Dequeue removes the oldest value.
func (q *QueueOf[T]) Dequeue(t *Thread) (T, bool) {
	h, ok := q.Q.Dequeue(t)
	if !ok {
		var zero T
		return zero, false
	}
	return q.Box.Take(h), true
}

// StackOf is a typed facade over Stack.
type StackOf[T any] struct {
	S   *Stack
	Box *Box[T]
}

// NewStackOf builds a typed stack sharing the given box.
func NewStackOf[T any](t *Thread, box *Box[T]) *StackOf[T] {
	return &StackOf[T]{S: NewStack(t), Box: box}
}

// Push adds v on top.
func (s *StackOf[T]) Push(t *Thread, v T) bool {
	h := s.Box.Put(v)
	if s.S.Push(t, h) {
		return true
	}
	s.Box.Take(h)
	return false
}

// Pop removes the newest value.
func (s *StackOf[T]) Pop(t *Thread) (T, bool) {
	h, ok := s.S.Pop(t)
	if !ok {
		var zero T
		return zero, false
	}
	return s.Box.Take(h), true
}

// MapOf is a typed facade over HashMap: a sharded, resizable lock-free
// map from uint64 keys to T values that still composes with every
// move-ready object (its elements are Box handles).
type MapOf[T any] struct {
	M   *HashMap
	Box *Box[T]
}

// NewMapOf builds a typed map sharing the given box (pass the same box
// to containers you intend to move elements between). buckets is the
// total initial bucket count, as in NewHashMap.
func NewMapOf[T any](t *Thread, box *Box[T], buckets int) *MapOf[T] {
	return &MapOf[T]{M: NewHashMap(t, buckets), Box: box}
}

// Put stores v under key; false when the key already exists.
func (m *MapOf[T]) Put(t *Thread, key uint64, v T) bool {
	h := m.Box.Put(v)
	if m.M.Insert(t, key, h) {
		return true
	}
	m.Box.Take(h)
	return false
}

// Delete removes key and returns its value.
func (m *MapOf[T]) Delete(t *Thread, key uint64) (T, bool) {
	h, ok := m.M.Remove(t, key)
	if !ok {
		var zero T
		return zero, false
	}
	return m.Box.Take(h), true
}

// Get returns the value stored under key without removing it. The value
// is read through the handle present at lookup time; a Delete racing the
// read may hand back a value the key no longer maps to — like any
// lookup, the result is a snapshot, not a lock.
func (m *MapOf[T]) Get(t *Thread, key uint64) (T, bool) {
	h, ok := m.M.Contains(t, key)
	if !ok {
		var zero T
		return zero, false
	}
	return m.Box.Peek(h), true
}

// MoveKeyed atomically moves the entry under skey in src to tkey in dst,
// two typed maps backed by the same Box: the handle moves in one step,
// so the value is visible through exactly one map at every instant. Like
// Get, the returned value is read through the handle after the move
// commits: a Delete of tkey racing this call may hand back a value the
// key no longer maps to — a snapshot, not a lock.
func MoveKeyed[T any](t *Thread, src, dst *MapOf[T], skey, tkey uint64) (T, bool) {
	if src.Box != dst.Box {
		panic("repro: MoveKeyed requires maps sharing one Box")
	}
	h, ok := Move(t, src.M, dst.M, skey, tkey)
	if !ok {
		var zero T
		return zero, false
	}
	return dst.Box.Peek(h), true
}

// Boxed is the common face of the typed facades (QueueOf, StackOf,
// MapOf): a move-ready container plus the Box its handles live in.
// MoveBatchOf uses it to accept any mix of typed containers.
type Boxed[T any] interface {
	moveReady() MoveReady
	sharedBox() *Box[T]
}

func (q *QueueOf[T]) moveReady() MoveReady { return q.Q }
func (q *QueueOf[T]) sharedBox() *Box[T]   { return q.Box }
func (s *StackOf[T]) moveReady() MoveReady { return s.S }
func (s *StackOf[T]) sharedBox() *Box[T]   { return s.Box }
func (m *MapOf[T]) moveReady() MoveReady   { return m.M }
func (m *MapOf[T]) sharedBox() *Box[T]     { return m.Box }

// MoveResultOf is the typed outcome of one batched move: the value is
// read through the moved handle after the commit (a snapshot, like
// MoveKeyed's).
type MoveResultOf[T any] struct {
	Val           T
	OK            bool
	SKey, TKey    uint64
	FailedPrepare bool
}

// MoveBatchOf is the typed facade over MoveBatch: it buffers moves
// between typed containers sharing one Box and flushes them through the
// batched pipeline. The handles move lock-free underneath; values never
// leave the Box, so each is visible through exactly one container at
// every instant. Like the untyped MoveBatch, a flush amortizes fixed
// costs — it is NOT a transaction.
type MoveBatchOf[T any] struct {
	B       *MoveBatch
	Box     *Box[T]
	results []MoveResultOf[T]
}

// NewMoveBatchOf builds a typed batch for containers sharing box.
func NewMoveBatchOf[T any](t *Thread, box *Box[T]) *MoveBatchOf[T] {
	return &MoveBatchOf[T]{B: NewMoveBatch(t), Box: box}
}

// Add buffers one move from src to dst (keys as in Move; ignored by
// unkeyed containers). It reports false when the buffer is full. Both
// containers must share the batch's Box.
func (b *MoveBatchOf[T]) Add(src, dst Boxed[T], skey, tkey uint64) bool {
	if src.sharedBox() != b.Box || dst.sharedBox() != b.Box {
		panic("repro: MoveBatchOf requires containers sharing one Box")
	}
	return b.B.Add(src.moveReady(), dst.moveReady(), skey, tkey)
}

// Flush runs the buffered moves and returns one typed result per Add,
// in Add order. The returned slice is reused by the next Flush.
func (b *MoveBatchOf[T]) Flush() []MoveResultOf[T] {
	raw := b.B.Flush()
	b.results = b.results[:0]
	for _, r := range raw {
		tr := MoveResultOf[T]{
			OK: r.OK, SKey: r.SKey, TKey: r.TKey, FailedPrepare: r.FailedPrepare,
		}
		if r.OK {
			tr.Val = b.Box.Peek(r.Val)
		}
		b.results = append(b.results, tr)
	}
	return b.results
}

// MoveTyped moves one element between typed containers backed by the
// same Box: the handle moves atomically; the value never leaves the box,
// so it is visible through exactly one container at every instant.
func MoveTyped[T any](t *Thread, src *QueueOf[T], dst *StackOf[T]) (T, bool) {
	if src.Box != dst.Box {
		panic("repro: MoveTyped requires containers sharing one Box")
	}
	h, ok := Move(t, src.Q, dst.S, 0, 0)
	if !ok {
		var zero T
		return zero, false
	}
	return dst.Box.Peek(h), true
}

// SwapHeadsOf atomically rotates the top values of k typed stacks
// sharing one Box (see SwapHeads): the handles rotate in one k-word
// CAS, so every value stays visible through exactly one stack. False
// when any stack is observed empty.
func SwapHeadsOf[T any](t *Thread, stacks ...*StackOf[T]) bool {
	if len(stacks) < 2 {
		panic("repro: SwapHeadsOf needs at least two stacks")
	}
	raw := make([]*Stack, len(stacks))
	for i, s := range stacks {
		if s.Box != stacks[0].Box {
			panic("repro: SwapHeadsOf requires stacks sharing one Box")
		}
		raw[i] = s.S
	}
	return SwapHeads(t, raw...)
}

// TransferKeysOf atomically moves up to 4 keyed values between typed
// maps sharing one Box (see TransferKeys). The returned values are read
// through the moved handles after the commit — snapshots, like
// MoveKeyed's.
func TransferKeysOf[T any](t *Thread, src, dst *MapOf[T], skeys, tkeys []uint64) ([]T, bool) {
	if src.Box != dst.Box {
		panic("repro: TransferKeysOf requires maps sharing one Box")
	}
	hs, ok := TransferKeys(t, src.M, dst.M, skeys, tkeys)
	if !ok {
		return nil, false
	}
	out := make([]T, len(hs))
	for i, h := range hs {
		out[i] = dst.Box.Peek(h)
	}
	return out, true
}

// DrainTyped moves up to n elements from a typed queue to a typed stack
// sharing one Box under one amortized descriptor lifecycle (see
// DrainN). Each move remains individually linearizable.
func DrainTyped[T any](t *Thread, src *QueueOf[T], dst *StackOf[T], n int) []T {
	if src.Box != dst.Box {
		panic("repro: DrainTyped requires containers sharing one Box")
	}
	hs := DrainN(t, src.Q, dst.S, 0, 0, n)
	out := make([]T, len(hs))
	for i, h := range hs {
		out[i] = dst.Box.Peek(h)
	}
	return out
}
