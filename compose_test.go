package repro_test

import (
	"sync"
	"testing"

	"repro"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	rt := repro.NewRuntime(repro.Config{MaxThreads: 4})
	th := rt.RegisterThread()

	q := repro.NewQueue(th)
	s := repro.NewStack(th)
	vs := repro.NewVersionedStack(th)
	l := repro.NewList(th)
	m := repro.NewHashMap(th, 8)

	q.Enqueue(th, 1)
	s.Push(th, 2)
	vs.Push(th, 3)
	l.Insert(th, 4, 40)
	m.Insert(th, 5, 50)

	// A chain of moves across all five container types.
	if v, ok := repro.Move(th, q, s, 0, 0); !ok || v != 1 {
		t.Fatalf("queue→stack: %d,%v", v, ok)
	}
	if v, ok := repro.Move(th, s, vs, 0, 0); !ok || v != 1 {
		t.Fatalf("stack→vstack: %d,%v", v, ok)
	}
	if v, ok := repro.Move(th, vs, l, 0, 9); !ok || v != 1 {
		t.Fatalf("vstack→list: %d,%v", v, ok)
	}
	if v, ok := repro.Move(th, l, m, 9, 99); !ok || v != 1 {
		t.Fatalf("list→map: %d,%v", v, ok)
	}
	if v, ok := repro.Move(th, m, q, 99, 0); !ok || v != 1 {
		t.Fatalf("map→queue: %d,%v", v, ok)
	}
	if v, ok := q.Dequeue(th); !ok || v != 1 {
		t.Fatalf("element lost in the chain: %d,%v", v, ok)
	}

	// The other residents were untouched.
	if v, _ := s.Pop(th); v != 2 {
		t.Fatal("stack disturbed")
	}
	if v, _ := vs.Pop(th); v != 3 {
		t.Fatal("versioned stack disturbed")
	}
	if v, _ := l.Contains(th, 4); v != 40 {
		t.Fatal("list disturbed")
	}
	if v, _ := m.Contains(th, 5); v != 50 {
		t.Fatal("map disturbed")
	}
}

func TestPublicMoveN(t *testing.T) {
	rt := repro.NewRuntime(repro.Config{MaxThreads: 2})
	th := rt.RegisterThread()
	q := repro.NewQueue(th)
	a := repro.NewStack(th)
	b := repro.NewHashMap(th, 4)
	q.Enqueue(th, 7)
	if v, ok := repro.MoveN(th, q, []repro.Inserter{a, b}, 0, []uint64{0, 70}); !ok || v != 7 {
		t.Fatalf("MoveN: %d,%v", v, ok)
	}
	if v, _ := a.Pop(th); v != 7 {
		t.Fatal("stack missing fanout copy")
	}
	if v, _ := b.Contains(th, 70); v != 7 {
		t.Fatal("map missing fanout copy")
	}
}

func TestPublicConcurrentSmoke(t *testing.T) {
	const workers = 4
	rt := repro.NewRuntime(repro.Config{MaxThreads: workers + 1})
	setup := rt.RegisterThread()
	q := repro.NewQueue(setup)
	s := repro.NewStack(setup)
	for i := uint64(1); i <= 100; i++ {
		q.Enqueue(setup, i)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := rt.RegisterThread()
			for i := 0; i < 2000; i++ {
				if i%2 == w%2 {
					repro.Move(th, q, s, 0, 0)
				} else {
					repro.Move(th, s, q, 0, 0)
				}
			}
			th.FlushMemory()
		}(w)
	}
	wg.Wait()
	total := q.Len(setup) + s.Len(setup)
	if total != 100 {
		t.Fatalf("conservation across public API: %d", total)
	}
}
