// Package repro is a Go reproduction of "Supporting Lock-Free
// Composition of Concurrent Data Objects" (Cederman & Tsigas, PPoPP
// 2010): a methodology that composes the insert and remove operations of
// lock-free objects into atomic move operations by unifying their
// linearization points with a software DCAS.
//
// # Quick start
//
//	rt := repro.NewRuntime(repro.Config{MaxThreads: 8})
//	th := rt.RegisterThread()          // one per goroutine
//	q := repro.NewQueue(th)            // Michael–Scott queue, move-ready
//	s := repro.NewStack(th)            // Treiber stack, move-ready
//	q.Enqueue(th, 42)
//	v, ok := repro.Move(th, q, s, 0, 0) // atomic: in q XOR in s, never neither
//
// Containers: NewQueue (Michael–Scott FIFO), NewStack / NewVersionedStack
// (Treiber LIFO, optionally with the §7 ABA counter), NewList (ordered
// set), NewHashMap / NewShardedHashMap (sharded resizable map). All of
// them compose with Move and MoveN; keys select elements in keyed
// containers and are ignored by queues/stacks.
//
// The hash map is sharded and resizable: shards grow cooperatively once
// their mean bucket load passes a threshold, and every entry relocated
// by a grow travels through a MoveN of its old and new bucket — so even
// mid-rebalance an entry is observable in exactly one bucket, never
// neither. Lookups, removes and moves out of the map never block on a
// grow; HashMap.RebalanceStep lets callers drive pending migration in
// bounded increments; and a Move targeting a mid-grow shard routes its
// insert to the successor table instead of aborting. Typed facades
// (QueueOf, StackOf, MapOf) bridge arbitrary Go values onto the uint64
// containers through a shared Box.
//
// # Elimination backoff
//
// Config.Elimination switches on a Hendler/Shavit-style contention
// layer for the stacks and the map's shards: an operation that loses
// its linearization CAS rendezvouses in a small per-object elimination
// array, where a push pairs off with a concurrent pop (and a mid-grow
// map insert with a same-key remove) and the two exchange the value
// without touching the shared word. The eliminated pair linearizes at
// the exchange, so histories stay linearizable; hit/miss counters are
// exposed via the containers' ElimStats methods. Tuning knobs:
//
//	rt := repro.NewRuntime(repro.Config{
//		MaxThreads:  16,
//		Elimination: repro.EliminationConfig{Enable: true}, // Slots/Spins optional
//	})
//
// Threads inside a Move/MoveN always bypass the array: a move's
// linearization must go through its kCAS descriptor, never a
// side-channel exchange. The layer pays off only under real hardware
// parallelism — single-CPU hosts rarely fail a CAS, so nothing parks.
//
// # Adaptive contention management
//
// Config.Adaptive closes the feedback loop the static elimination
// knobs leave open. Each adapting object (a stack, a map shard) owns a
// controller fed by cheap, cache-line padded, per-thread-striped
// signal counters — CAS retries (the stacks' own counters,
// harrislist.Retries summed per shard), elimination hits and misses,
// park timeouts — sampled on operation-count epoch boundaries: every
// operation ticks the controller's striped clock, and the one thread
// that crosses the epoch (a single CAS wins the gate) gathers the
// signals and applies the policies. There is no background goroutine;
// reads of the published decisions are wait-free and a quiescent
// object pays nothing. Three behaviors come out:
//
//   - Elimination window sizing: the active slot window of a stack's
//     or shard's elimination array doubles when misses pile up while
//     traffic flows, and halves when parks expire cold (timeouts with
//     zero hits) — Hendler/Shavit's classic adaptive refinement. The
//     window moves by CAS and never shrinks over a waiting offer;
//     takers always scan the full physical array, so no resize can
//     strand a parked operation.
//
//   - Hot-shard elimination: a map shard whose per-epoch CAS-retry
//     delta crosses the attach threshold routes contention losers to
//     its elimination array even with no grow in flight — inserts
//     switch to a bounded retry budget and park (key, value) after
//     losing it; removes that miss the chain consult the array behind
//     the same re-walk absence witness the mid-grow path uses. A
//     hysteresis band (attach above one threshold, detach only after
//     several consecutive epochs below a lower one) keeps the decision
//     from flapping.
//
//   - Rebalance pacing: sustained retry pressure on a shard lowers its
//     effective grow-load threshold notch by notch, so hot shards
//     split earlier than merely full ones; calm epochs decay the shift
//     back.
//
// Enabling adaptation attaches elimination arrays to the supporting
// containers even when Config.Elimination is off. Tuning rides on
// AdaptiveConfig (zero fields select defaults); decision counts are
// exposed as AdaptStats on the containers:
//
//	rt := repro.NewRuntime(repro.Config{
//		MaxThreads: 16,
//		Adaptive:   repro.AdaptiveConfig{Enable: true},
//	})
//	m := repro.NewHashMap(th, 64)
//	... traffic ...
//	st := m.AdaptStats() // epochs, window resizes, attaches, pace raises
//
// The invariant the whole subsystem is built around: adaptation tunes
// the contention layer only — where an operation waits, how many
// rendezvous slots are live, when a shard splits. It NEVER adds a
// linearization side channel: threads inside a Move/MoveN bypass the
// elimination layer no matter what any controller decides, exactly as
// with the static layer, and the composition test suite probes that
// bypass with adaptation forced hot.
//
// # The k-word CAS engine
//
// One engine (internal/kcas) backs every composition. A descriptor
// holds up to eight (word, old, new) entries; two-entry operations —
// the pairwise Move — run the paper's helping DCAS protocol (Algorithm
// 4) directly on the inline entries, while wider compositions run a
// Harris/Fraser/Pratt-style CASN whose RDCSS sub-descriptors are
// encoded in the word references themselves, so helping never
// allocates. Both protocols share one descriptor pool (Config's
// DescCapacity is the whole budget), one per-thread recycling context
// with sequence-stamped ABA-safe reuse, and one helping dispatch: a
// reader that finds any descriptor kind in a word helps it to
// completion, so pair moves, k-word chains and batch flushes interleave
// freely on the same words.
//
// On top of the engine, three >2-object compositions:
//
//   - SwapHeads atomically rotates the head values of 2..8 stacks —
//     all top CASes decided by one k-word CAS.
//   - TransferKeys atomically moves up to 4 keyed elements between two
//     hash maps: all removes and inserts linearize together.
//   - DrainN moves up to N elements from one object to another under a
//     shared descriptor lifecycle — each move stays individually
//     linearizable (it is amortization, like MoveBatch, not a
//     transaction), with hazard publication and descriptor recycling
//     paid once.
//
// # Batched moves
//
// NewMoveBatch returns a per-thread MoveBatch: Add buffers up to B
// pending moves, Flush runs them through one prepare → commit →
// recycle pipeline. The flush amortizes the fixed costs every Move
// pays — descriptors come from the thread's recycling pool and return
// through one shared hazard snapshot per flush (sequence-stamped
// reuse, no full retire cycle), hazard pointers stay published across
// the flush and are cleared once at its end, and each move's locate
// step runs ahead of the commits (failing fast, without a descriptor,
// when a source was observed empty or a keyed target occupied).
//
// A batch is amortization, NOT a transaction: every move in a flush
// remains its own individually-linearizable operation, committed one
// after another, and a concurrent observer may see any prefix of a
// flush applied. A move failing mid-flush rolls nothing back. Callers
// needing all-or-nothing multi-object semantics want MoveN. Typed
// containers batch through MoveBatchOf, sharing a Box.
//
// Every goroutine that touches these objects must register once with
// RegisterThread and pass its *Thread to every call; the Thread carries
// the hazard-pointer slots, memory caches and the move state the paper
// keeps in thread-local storage.
//
// # Robustness: graceful degradation and fault injection
//
// The substrate's two fixed-capacity resources — the node arena
// (Config.ArenaCapacity) and the descriptor pool (Config.DescCapacity)
// — panic when exhausted, which is the right default for an embedded
// library but crashes a served system. The Try variants (TryMove,
// TryMoveN, TryTransferKeys, TryDrainN, and Thread.Try for arbitrary
// operations) convert those panics into an error matching
// ErrResourceExhausted and reset the thread so it stays usable; the
// failed operation did not execute (exhaustion unwinds from init-phase
// code, before anything is published), so callers may retry after
// backoff or shed the request. The panicking APIs are unchanged.
//
// Config.Fault accepts a FaultInjector — build a FaultPlan with
// NewFaultPlan or ParseFaultPlan — that stalls, parks, or hard-kills
// threads at the descriptor protocol's critical windows (after
// publish, before commit, before recycle, the batch prepare–commit
// gap, hash-map mid-migration). This is how the paper's core claim —
// peers help published operations to completion, so a stalled or dead
// thread never wedges the system — becomes an executable test axis;
// see docs/robustness.md for the failure model and point catalog.
//
// # Finding your way around
//
// ARCHITECTURE.md at the repository root maps the internal packages
// this facade fronts — the layering from the word encoding up through
// the k-word CAS engine, the containers and the measurement stack —
// with the descriptor/helping protocol drawn out and a section-by-
// section mapping to the paper. docs/measurement.md explains the
// benchmarking methodology; cmd/README.md the runnable tools.
package repro

import (
	"io"

	"repro/internal/adapt"
	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/elim"
	"repro/internal/fault"
	"repro/internal/harrislist"
	"repro/internal/hashmap"
	"repro/internal/msqueue"
	"repro/internal/obs"
	"repro/internal/tstack"
)

// Config sizes a Runtime. See core.Config for the field documentation.
type Config = core.Config

// EliminationConfig tunes the elimination-backoff contention layer; set
// it as Config.Elimination. See elim.Config for the field documentation.
type EliminationConfig = elim.Config

// AdaptiveConfig tunes the adaptive contention-management subsystem;
// set it as Config.Adaptive. See adapt.Config for the field
// documentation (zero fields select package defaults).
type AdaptiveConfig = adapt.Config

// AdaptStats counts a container's adaptation decisions (epochs
// sampled, elimination-window resizes, hot-shard attaches/detaches,
// rebalance-pacing moves); returned by the containers' AdaptStats
// methods (HashMap aggregates its shards').
type AdaptStats = adapt.Stats

// Runtime owns the shared substrate (arena, hazard pointers, memory
// manager, descriptor pools) for one family of composable objects.
type Runtime = core.Runtime

// Thread is the per-goroutine context; obtain one per goroutine from
// Runtime.RegisterThread.
type Thread = core.Thread

// Inserter is the insert half of a move-ready object.
type Inserter = core.Inserter

// Remover is the remove half of a move-ready object.
type Remover = core.Remover

// MoveReady is a fully composable object (Inserter + Remover +
// identity).
type MoveReady = core.MoveReady

// Queue is the move-ready Michael–Scott lock-free FIFO queue.
type Queue = msqueue.Queue

// Stack is the move-ready Treiber lock-free LIFO stack.
type Stack = tstack.Stack

// List is the move-ready lock-free ordered set (Harris list).
type List = harrislist.List

// HashMap is the move-ready, sharded, resizable lock-free hash map
// (shards of Harris-list buckets; grows migrate entries via MoveN).
type HashMap = hashmap.Map

// NewRuntime builds a runtime; the zero Config selects usable defaults.
func NewRuntime(cfg Config) *Runtime { return core.NewRuntime(cfg) }

// NewQueue creates an empty move-ready queue.
func NewQueue(t *Thread) *Queue { return msqueue.New(t) }

// NewStack creates an empty move-ready stack.
func NewStack(t *Thread) *Stack { return tstack.New(t) }

// NewVersionedStack creates a stack with the §7 ABA counter on its top
// pointer, trading a little plain-operation speed for far less false
// helping in stack-to-stack moves.
func NewVersionedStack(t *Thread) *Stack { return tstack.NewVersioned(t) }

// NewList creates an empty move-ready ordered set.
func NewList(t *Thread) *List { return harrislist.New(t) }

// NewHashMap creates a move-ready hash map with the given total initial
// bucket count (spread over a default shard count) and the default grow
// threshold.
func NewHashMap(t *Thread, buckets int) *HashMap { return hashmap.New(t, buckets) }

// NewShardedHashMap creates a hash map with an explicit shape: shard
// count, initial buckets per shard (each rounded up to a power of two)
// and the mean entries-per-bucket load that triggers a shard grow (<= 0
// selects the default).
func NewShardedHashMap(t *Thread, shards, bucketsPerShard, growLoad int) *HashMap {
	return hashmap.NewSharded(t, shards, bucketsPerShard, growLoad)
}

// Move atomically moves one element from src to dst: the element is
// never observable in both objects nor in neither. skey selects the
// element in keyed sources; tkey is its key in keyed targets; both are
// ignored by queues and stacks. It returns the moved value and whether
// the move happened (false: source empty / no such key / target
// rejected; both objects unchanged).
func Move(t *Thread, src Remover, dst Inserter, skey, tkey uint64) (uint64, bool) {
	return t.Move(src, dst, skey, tkey)
}

// MoveN atomically removes one element from src and inserts it into
// every dst (the paper's §8 n-object extension). All objects must be
// pairwise distinct; at most 7 targets.
func MoveN(t *Thread, src Remover, dsts []Inserter, skey uint64, tkeys []uint64) (uint64, bool) {
	return t.MoveN(src, dsts, skey, tkeys)
}

// SwapHeads atomically rotates the head values of k stacks (2 ≤ k ≤ 8):
// stack i's head value becomes stack i-1's, with all k top CASes
// decided by one k-word CAS — no observer sees a partial rotation. It
// returns false (changing nothing) when any stack is observed empty.
// The stacks must be pairwise distinct.
func SwapHeads(t *Thread, stacks ...*Stack) bool {
	return tstack.SwapHeads(t, stacks...)
}

// TransferKeys atomically moves len(skeys) elements from src to dst:
// element i is removed under skeys[i] and inserted under tkeys[i], all
// 2k linearization CASes decided by one k-word CAS (at most 4 key
// pairs). On success it returns the moved values, in key order.
//
// It returns ok=false, changing nothing, when any source key is absent,
// any target key is occupied, or the keys are not chain-independent —
// two source keys (or two target keys) currently hashing into the same
// bucket chain cannot be composed, a data-dependent condition callers
// handle by falling back to per-key Moves. Keys within each slice must
// be pairwise distinct and the maps must be distinct objects.
func TransferKeys(t *Thread, src, dst *HashMap, skeys, tkeys []uint64) ([]uint64, bool) {
	for i := range skeys {
		for j := 0; j < i; j++ {
			if src.SameChain(skeys[j], skeys[i]) || dst.SameChain(tkeys[j], tkeys[i]) {
				return nil, false
			}
		}
	}
	out := make([]uint64, len(skeys))
	if !t.TransferN(src, dst, skeys, tkeys, out) {
		return nil, false
	}
	return out, true
}

// DrainN moves up to n elements from src to dst under one shared
// descriptor lifecycle (a batch flush): hazard publication and
// descriptor recycling are amortized over the run. Each move remains
// its own individually-linearizable operation — DrainN is a pipeline,
// not a transaction — and the drain stops at the first failed move
// (source empty or target refusing). It returns the moved values.
// skey/tkey are passed to every move, as in Move.
func DrainN(t *Thread, src Remover, dst Inserter, skey, tkey uint64, n int) []uint64 {
	out := make([]uint64, n)
	moved := t.DrainN(src, dst, skey, tkey, n, out)
	return out[:moved]
}

// MoveBatch is the per-thread batched move pipeline: Add buffers moves,
// Flush runs them through one prepare → commit → recycle pass that
// amortizes descriptor allocation and hazard publication over the
// batch. A flush is throughput amortization, NOT a transaction: every
// buffered move remains its own linearizable operation, and a
// concurrent observer can see any prefix of a flush applied. See
// internal/batch for the full semantics.
type MoveBatch = batch.MoveBuffer

// MoveResult is the per-move outcome of a MoveBatch flush.
type MoveResult = batch.MoveResult

// NewMoveBatch creates a batched move buffer for t with the default
// capacity. Like the Thread it wraps, a MoveBatch belongs to one
// goroutine.
func NewMoveBatch(t *Thread) *MoveBatch { return batch.New(t, 0) }

// NewMoveBatchSize creates a batched move buffer holding up to capacity
// moves per flush (<= 0 selects the default).
func NewMoveBatchSize(t *Thread, capacity int) *MoveBatch { return batch.New(t, capacity) }

// ErrResourceExhausted is the sentinel matched (via errors.Is) by the
// errors the Try variants return when the node arena or the descriptor
// pool is at capacity. The failed operation did not execute; retry
// after backoff, shed the request, or configure larger
// ArenaCapacity/DescCapacity.
var ErrResourceExhausted = fault.ErrResourceExhausted

// TryMove is Move with resource exhaustion reported as an error
// (matching ErrResourceExhausted) instead of a panic. On error neither
// object changed and the thread remains usable.
func TryMove(t *Thread, src Remover, dst Inserter, skey, tkey uint64) (uint64, bool, error) {
	return t.TryMove(src, dst, skey, tkey)
}

// TryMoveN is MoveN with resource exhaustion reported as an error.
func TryMoveN(t *Thread, src Remover, dsts []Inserter, skey uint64, tkeys []uint64) (uint64, bool, error) {
	return t.TryMoveN(src, dsts, skey, tkeys)
}

// TryTransferKeys is TransferKeys with resource exhaustion reported as
// an error: ok=false with a nil error keeps TransferKeys' data-
// dependent refusals (absent key, occupied target, chain-dependent
// keys), while an error matching ErrResourceExhausted means the
// substrate was out of descriptors or nodes and nothing changed.
func TryTransferKeys(t *Thread, src, dst *HashMap, skeys, tkeys []uint64) (out []uint64, ok bool, err error) {
	err = t.Try(func() { out, ok = TransferKeys(t, src, dst, skeys, tkeys) })
	return out, ok, err
}

// TryDrainN is DrainN with resource exhaustion reported as an error.
// The returned slice holds the elements moved before the exhaustion
// hit — each was its own completed, linearizable move (DrainN is a
// pipeline, not a transaction), so partial progress is real progress,
// not a torn operation.
func TryDrainN(t *Thread, src Remover, dst Inserter, skey, tkey uint64, n int) (out []uint64, err error) {
	buf := make([]uint64, n)
	moved := 0
	err = t.Try(func() { moved = t.DrainN(src, dst, skey, tkey, n, buf) })
	return buf[:moved], err
}

// FaultPoint names one of the substrate's fault-injection sites; see
// the fault package constants (kcas-publish, kcas-commit, kcas-recycle,
// batch-gap, map-migrate) and docs/robustness.md for the catalog.
type FaultPoint = fault.Point

// FaultInjector is the hook interface Config.Fault accepts; Fire runs
// at every injection point a registered thread crosses. Nil disables
// injection at zero cost beyond a nil check per site.
type FaultInjector = fault.Injector

// FaultPlan is the concrete FaultInjector: an ordered rule set built
// with NewFaultPlan (or ParseFaultPlan) binding stall/park/kill actions
// to injection points under deterministic trigger schedules.
type FaultPlan = fault.Plan

// FaultTrigger schedules when a FaultPlan rule fires: fault.Nth,
// fault.Every, fault.Prob (seeded, replayable), with AfterSkip and
// OnThread refinements.
type FaultTrigger = fault.Trigger

// NewFaultPlan returns an empty fault plan; chain Stall/Park/Kill rule
// registrations onto it and set it as Config.Fault.
func NewFaultPlan() *FaultPlan { return fault.NewPlan() }

// ParseFaultPlan builds a fault plan from spec strings of the form
// "<point>:<action>[:<mods>]" — e.g. "kcas-commit:stall=2ms:every=97"
// or "kcas-publish:kill:nth=1500" — the grammar cmd/kvserver's -fault
// flag uses. See fault.Parse.
func ParseFaultPlan(specs []string) (*FaultPlan, error) { return fault.Parse(specs) }

// ObsConfig selects the unified telemetry surfaces (set it as
// Config.Obs): Metrics enables the striped counter registry the
// substrate and containers report into, Trace the descriptor-protocol
// tracer (publish / help / commit / abort / recycle events with
// helper→victim attribution), Spans the request-scoped span recorder
// the serving layer records latency attributions into. The zero value
// disables all three at zero cost beyond a nil check per hook site; see
// docs/observability.md.
type ObsConfig = obs.Config

// Obs bundles a runtime's enabled telemetry surfaces; obtain it from
// Runtime.Obs (nil when ObsConfig disabled both — the Metrics and
// Tracer accessors stay safe to chain on nil).
type Obs = obs.Obs

// ObsRegistry is the striped, allocation-free metrics registry: fixed
// per-thread counters for the hot protocol events plus lazily
// registered named series, merged into an ObsSnapshot on demand.
type ObsRegistry = obs.Registry

// ObsSnapshot is one merged point-in-time view of every metric series a
// registry knows; WritePrometheus serializes it in Prometheus text
// format terminated by "# EOF" (what the kvserver METRICS verb emits).
type ObsSnapshot = obs.Snapshot

// Tracer records descriptor-protocol lifecycle events into fixed
// per-thread ring buffers; Drain returns the time-sorted events.
type Tracer = obs.Tracer

// TraceEvent is one recorded protocol event: timestamp, kind, recording
// thread, peer thread (the helped victim on help events) and descriptor
// reference.
type TraceEvent = obs.Event

// WriteTraceJSONL serializes drained trace events one JSON object per
// line — the format cmd/tracecheck validates and converts.
func WriteTraceJSONL(w io.Writer, events []TraceEvent) error { return obs.WriteJSONL(w, events) }

// WriteChromeTrace serializes drained trace events in Chrome
// trace_event format for chrome://tracing or ui.perfetto.dev.
func WriteChromeTrace(w io.Writer, events []TraceEvent) error { return obs.WriteChromeTrace(w, events) }

// Span is one completed request's latency attribution: wall time
// decomposed into stages (queue wait, parse, execute, degrade, write)
// plus the kcas protocol work — publishes, helps, aborts — its execute
// stage performed. The Req id cross-references the TraceEvents the
// serving thread recorded while the request was current.
type Span = obs.Span

// Spans is the request-span recorder: per-worker overwrite-oldest rings
// of completed spans plus a threshold-gated top-K tail-exemplar buffer;
// obtain it from Obs.Spans (nil when ObsConfig.Spans is off — every
// method stays safe on nil).
type Spans = obs.Spans

// WriteSpansJSONL serializes completed spans one JSON object per line;
// span lines carry a top-level "span":1 key, so they interleave with
// WriteTraceJSONL event lines in one mixed trace file.
func WriteSpansJSONL(w io.Writer, spans []Span) error { return obs.WriteSpansJSONL(w, spans) }

// ReadTrace parses a mixed JSONL trace file back into its event and
// span records, strictly — the reader cmd/tracecheck validates with.
func ReadTrace(r io.Reader) ([]TraceEvent, []Span, error) { return obs.ReadTrace(r) }

// WriteChromeTraceWith serializes protocol events plus request spans in
// Chrome trace_event format: events as instants, each span as one
// "complete" slice per nonzero stage on its serving thread's row.
func WriteChromeTraceWith(w io.Writer, events []TraceEvent, spans []Span) error {
	return obs.WriteChromeTraceWith(w, events, spans)
}
