package kcas

import (
	"sync"
	"testing"

	"repro/internal/hazard"
	"repro/internal/word"
)

// testSlots mirrors core's slot assignment.
var testSlots = Slots{PairHPD: 0, KHPD: 1, RDCSSHPD: 2, PairMirror1: 6, PairMirror2: 7, KMirrorBase: 8}

// testEnv wires a pool with per-thread contexts, mimicking what
// core.Runtime does.
type testEnv struct {
	pool    *Pool
	nodeDom *hazard.Domain
	descDom *hazard.Domain
	ctxs    []*Ctx
}

func newEnv(threads int) *testEnv {
	e := &testEnv{
		nodeDom: hazard.New(threads, 8+2*MaxEntries),
		descDom: hazard.New(threads, 3),
	}
	e.pool = NewPool(1<<14, e.descDom)
	for i := 0; i < threads; i++ {
		e.ctxs = append(e.ctxs, NewCtx(e.pool, e.nodeDom, i, testSlots))
	}
	return e
}

// val builds a plain (node-reference) value safe for test words.
func val(i uint64) uint64 { return word.MakeNode(100+i, 0) }

func runPair(c *Ctx, w1, w2 *word.Word, o1, n1, o2, n2 uint64) Result {
	d, ref := c.AllocPair()
	e1, e2 := &d.Entries[0], &d.Entries[1]
	e1.Ptr, e1.Old, e1.New = w1, o1, n1
	e2.Ptr, e2.Old, e2.New = w2, o2, n2
	res := c.ExecutePair(d, ref)
	if res == FirstFailed {
		c.FreeDirect(d, ref)
	} else {
		c.Retire(d, ref)
	}
	return res
}

func TestPairSemanticsSequential(t *testing.T) {
	e := newEnv(1)
	c := e.ctxs[0]
	cases := []struct {
		name   string
		w1, w2 uint64 // initial word contents
		o1, o2 uint64 // expected olds
		want   Result
	}{
		{"both match", val(1), val(2), val(1), val(2), Success},
		{"first mismatch", val(1), val(2), val(9), val(2), FirstFailed},
		{"second mismatch", val(1), val(2), val(1), val(9), SecondFailed},
		{"both mismatch", val(1), val(2), val(8), val(9), FirstFailed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var w1, w2 word.Word
			w1.Store(tc.w1)
			w2.Store(tc.w2)
			res := runPair(c, &w1, &w2, tc.o1, val(11), tc.o2, val(12))
			if res != tc.want {
				t.Fatalf("result %v, want %v", res, tc.want)
			}
			if tc.want == Success {
				if w1.Load() != val(11) || w2.Load() != val(12) {
					t.Fatalf("success must install new values; got %#x %#x", w1.Load(), w2.Load())
				}
			} else {
				if w1.Load() != tc.w1 || w2.Load() != tc.w2 {
					t.Fatalf("failure must leave words unchanged; got %#x %#x", w1.Load(), w2.Load())
				}
			}
		})
	}
}

func TestPairWithNilValues(t *testing.T) {
	// The queue's enqueue DCASes tail.next from nil; exercise old = 0.
	e := newEnv(1)
	c := e.ctxs[0]
	var w1, w2 word.Word
	w1.Store(val(1))
	w2.Store(word.Nil)
	if res := runPair(c, &w1, &w2, val(1), val(3), word.Nil, val(4)); res != Success {
		t.Fatalf("result %v", res)
	}
	if w2.Load() != val(4) {
		t.Fatal("nil old2 not replaced")
	}
}

func TestReadSeesPlainValues(t *testing.T) {
	e := newEnv(1)
	var w word.Word
	w.Store(val(42))
	if got := e.ctxs[0].Read(&w); got != val(42) {
		t.Fatalf("Read = %#x", got)
	}
}

func TestPairDescriptorRecycling(t *testing.T) {
	e := newEnv(1)
	c := e.ctxs[0]
	var w1, w2 word.Word
	for i := uint64(0); i < 1000; i++ {
		w1.Store(val(1))
		w2.Store(val(2))
		if res := runPair(c, &w1, &w2, val(1), val(3), val(2), val(4)); res != Success {
			t.Fatalf("iteration %d: %v", i, res)
		}
	}
	c.Flush()
	if got := c.Retired(); got != 0 {
		t.Fatalf("all descriptors should be reclaimable, %d retired", got)
	}
	if e.pool.next.Load() > 4*carveBatch {
		t.Fatalf("descriptor slots leak: %d carved for 1000 sequential ops", e.pool.next.Load())
	}
}

func TestResultAgreementDecided(t *testing.T) {
	e := newEnv(1)
	c := e.ctxs[0]
	var w1, w2 word.Word
	w1.Store(val(1))
	w2.Store(val(2))
	d, ref := c.AllocPair()
	e1, e2 := &d.Entries[0], &d.Entries[1]
	e1.Ptr, e1.Old, e1.New = &w1, val(1), val(3)
	e2.Ptr, e2.Old, e2.New = &w2, val(2), val(4)
	if res := c.ExecutePair(d, ref); res != Success {
		t.Fatalf("%v", res)
	}
	if !d.Decided() {
		t.Fatal("status must be decided after ExecutePair returns")
	}
	c.Retire(d, ref)
}

// transition records one side of a successful pair operation for the
// history checker below.
type transition struct {
	old, new uint64
}

// TestPairConcurrentHistory runs many concurrent DCASes over a small set
// of words and validates the outcome like a linearizability check:
// because every installed value is unique, the successful transitions on
// each word must chain from the word's initial value to its final value,
// consuming every recorded success exactly once. Lost or duplicated
// DCAS effects (e.g. a helper applying an operation twice — the ABA
// scenario of Lemma 3) would break the chain.
func TestPairConcurrentHistory(t *testing.T) {
	const (
		threads = 8
		wordsN  = 4
		opsPer  = 3000
	)
	e := newEnv(threads)
	words := make([]word.Word, wordsN)
	for i := range words {
		words[i].Store(val(uint64(1000 + i)))
	}
	type rec struct {
		w1, w2 int
		t1, t2 transition
	}
	results := make([][]rec, threads)
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			c := e.ctxs[tid]
			rng := uint64(tid)*2654435761 + 1
			next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
			for op := 0; op < opsPer; op++ {
				i := int(next() % wordsN)
				j := int(next() % wordsN)
				if i == j {
					j = (j + 1) % wordsN
				}
				o1 := c.Read(&words[i])
				o2 := c.Read(&words[j])
				// Unique new values: tid/op tagged.
				n1 := val(uint64(1<<20) + uint64(tid)<<24 + uint64(op)<<4)
				n2 := val(uint64(1<<21) + uint64(tid)<<24 + uint64(op)<<4 + 1)
				if runPair(c, &words[i], &words[j], o1, n1, o2, n2) == Success {
					results[tid] = append(results[tid], rec{i, j, transition{o1, n1}, transition{o2, n2}})
				}
			}
			c.Flush()
		}(tid)
	}
	wg.Wait()

	// Build per-word transition sets.
	perWord := make([]map[uint64]uint64, wordsN) // old -> new
	for i := range perWord {
		perWord[i] = make(map[uint64]uint64)
	}
	total := 0
	for _, rs := range results {
		total += len(rs)
		for _, r := range rs {
			for _, side := range []struct {
				w int
				t transition
			}{{r.w1, r.t1}, {r.w2, r.t2}} {
				if _, dup := perWord[side.w][side.t.old]; dup {
					t.Fatalf("word %d: two successful DCASes consumed old value %#x", side.w, side.t.old)
				}
				perWord[side.w][side.t.old] = side.t.new
			}
		}
	}
	if total == 0 {
		t.Fatal("no DCAS succeeded; the test exercised nothing")
	}
	// Chain-check each word.
	for i := range words {
		cur := val(uint64(1000 + i))
		for {
			next, ok := perWord[i][cur]
			if !ok {
				break
			}
			delete(perWord[i], cur)
			cur = next
		}
		if cur != e.ctxs[0].Read(&words[i]) {
			t.Fatalf("word %d: transition chain ends at %#x but word holds %#x", i, cur, words[i].Load())
		}
		if len(perWord[i]) != 0 {
			t.Fatalf("word %d: %d successful transitions not on the chain (lost updates)", i, len(perWord[i]))
		}
	}

	// Reclamation: after flushing every context, no descriptor may
	// remain live.
	for _, c := range e.ctxs {
		c.Flush()
		if c.Retired() > 0 {
			t.Fatalf("thread %d: %d descriptors unreclaimable after quiescence", c.TID(), c.Retired())
		}
	}
}

// TestPairContendedSameWords hammers one word pair from all threads so
// helping and the marked-descriptor arbitration of Lemma 3 get dense
// coverage; the accounting mirrors the history test.
func TestPairContendedSameWords(t *testing.T) {
	const threads = 8
	const opsPer = 5000
	e := newEnv(threads)
	var w1, w2 word.Word
	w1.Store(val(1))
	w2.Store(val(2))
	var mu sync.Mutex
	trans1 := map[uint64]uint64{}
	trans2 := map[uint64]uint64{}
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			c := e.ctxs[tid]
			for op := 0; op < opsPer; op++ {
				o1 := c.Read(&w1)
				o2 := c.Read(&w2)
				n1 := val(uint64(3<<24) + uint64(tid)<<16 + uint64(op)<<1)
				n2 := val(uint64(5<<24) + uint64(tid)<<16 + uint64(op)<<1)
				if runPair(c, &w1, &w2, o1, n1, o2, n2) == Success {
					mu.Lock()
					if _, dup := trans1[o1]; dup {
						t.Errorf("old1 %#x consumed twice", o1)
					}
					if _, dup := trans2[o2]; dup {
						t.Errorf("old2 %#x consumed twice", o2)
					}
					trans1[o1] = n1
					trans2[o2] = n2
					mu.Unlock()
				}
			}
			c.Flush()
		}(tid)
	}
	wg.Wait()
	// Chains must consume everything.
	for name, m := range map[string]struct {
		trans map[uint64]uint64
		w     *word.Word
		init  uint64
	}{
		"w1": {trans1, &w1, val(1)},
		"w2": {trans2, &w2, val(2)},
	} {
		cur := m.init
		for {
			next, ok := m.trans[cur]
			if !ok {
				break
			}
			delete(m.trans, cur)
			cur = next
		}
		if cur != m.w.Load() {
			t.Fatalf("%s: chain ends at %#x, word holds %#x", name, cur, m.w.Load())
		}
		if len(m.trans) != 0 {
			t.Fatalf("%s: %d dangling transitions", name, len(m.trans))
		}
	}
	helps, strays, late := e.pool.Stats()
	t.Logf("contended run: helps=%d strayCleanups=%d lateP2=%d", helps, strays, late)
}
