package kcas

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/word"
)

// ExecutePair runs the DCAS described by d as the initiating process
// (line D1 with initiator = true). d must have been obtained from
// AllocPair on this context and fully populated (Entries[0] = ptr1 side,
// Entries[1] = ptr2 side, optionally their HPs).
//
// The caller remains responsible for recycling d afterwards: FreeDirect
// when the result is FirstFailed (the descriptor was never announced),
// Retire otherwise.
func (c *Ctx) ExecutePair(d *Desc, ref uint64) Result {
	r := c.dcas(d, ref, true)
	// Telemetry: the initiator records the announced operation's
	// outcome, so (quiesced) publishes == commits + aborts. FirstFailed
	// was never announced and counts as neither.
	switch r {
	case Success:
		c.obsEvent(obs.KCASCommit, obs.EvCommit, -1, ref)
	case SecondFailed:
		c.obsEvent(obs.KCASAbort, obs.EvAbort, -1, ref)
	}
	return r
}

// dcas is Algorithm 4. The paper writes cas(addr, new, old); every CAS
// below uses Go order, CAS(addr, old, new). Line numbers D2..D31 refer
// to the paper's listing. The descriptor's status word is the paper's
// res field.
func (c *Ctx) dcas(d *Desc, ref uint64, initiator bool) Result {
	e1, e2 := &d.Entries[0], &d.Entries[1]
	if !initiator { // D2
		// D3: mirror the initiator's hazard pointers into this thread's
		// node slots. If res is still undecided below, the initiating
		// process is still inside its operation and holds its own
		// protections, so these mirrors become visible to any future
		// hazard scan before the initiator's slots are cleared (Lemma 6).
		c.nodeDom.Protect(c.tid, c.slots.PairMirror1, e1.HP)
		c.nodeDom.Protect(c.tid, c.slots.PairMirror2, e2.HP)
	}

	if r := d.status.Load(); r == statusSuccess || r == statusSecondFailed { // D4
		// The operation is decided; only lazy cleanup of a residual
		// descriptor reference remains. A marked reference was found in
		// ptr2 (only line D14 installs marked refs), an unmarked one in
		// ptr1 (only line D10 installs unmarked refs).
		if word.IsMarkedDesc(ref) { // D5
			if e2.Ptr.CAS(ref, e2.Old) { // D6
				c.pool.strayCleanups.Add(1)
			}
		} else if !initiator {
			if e1.Ptr.CAS(ref, e1.Old) { // D8
				c.pool.strayCleanups.Add(1)
			}
		}
		return resultOf(r) // D9
	}

	if initiator {
		if !e1.Ptr.CAS(e1.Old, ref) { // D10: announce
			return FirstFailed // D11: never announced; nobody will help
		}
		// The descriptor is now published and undecided: from here on any
		// peer that reads ptr1 helps the operation to completion, so the
		// initiator may stall or die without blocking the system. The
		// publish event is recorded before the fault hook so a thread
		// parked or killed here has already left its announcement in the
		// trace.
		c.obsEvent(obs.KCASPublish, obs.EvPublish, -1, ref)
		c.fire(fault.KCASAfterPublish)
	}

	mdesc := word.MarkDesc(ref, c.tid) // D13
	p2set := e2.Ptr.CAS(e2.Old, mdesc) // D14
	if !p2set {                        // D15
		cur := e2.Ptr.Load() // D16
		if !word.SameDesc(cur, ref) {
			// ptr2 does not hold this descriptor in any form: the CAS
			// failed because *ptr2 != old2. Try to declare failure.
			d.status.CAS(statusUndecided, statusSecondFailed) // D17
		}
		switch r := d.status.Load(); r {
		case statusSuccess:
			return Success // D18–D19
		case statusSecondFailed: // D20
			// Revert the announcement (ptr1 holds the unmarked ref).
			e1.Ptr.CAS(word.UnmarkDesc(ref), e1.Old) // D21
			return SecondFailed                      // D22
		}
		// Some process's marked descriptor is (or was) pinned in ptr2.
		// Promote the *observed* marked descriptor into res — not our
		// own, which never made it into ptr2; promoting ours would let
		// line D29 strand ptr2 (see DESIGN.md §3.2). Before the decision
		// the pinned descriptor is unique, so cur is the right witness.
		if word.SameDesc(cur, ref) && word.IsMarkedDesc(cur) {
			d.status.CAS(statusUndecided, cur) // D24 (observed form)
		}
	} else {
		// Our marked descriptor reached ptr2; race to make it the
		// decision witness.
		d.status.CAS(statusUndecided, mdesc) // D24
	}

	r := d.status.Load()
	if r == statusSecondFailed { // D25
		if p2set {
			// We installed our marked descriptor but were not first to
			// set res: change ptr2 back to its old value (Lemma 3).
			if e2.Ptr.CAS(mdesc, e2.Old) {
				c.pool.lateP2.Add(1)
			}
		}
		return SecondFailed // D27
	}
	// r is a marked descriptor (the witness) or already SUCCESS.
	// Decision fixed, release CASes pending: a thread lost here leaves
	// decided-but-unreleased words that any helper (D4/D28–D30 on its own
	// pass) or the retire-time scrub completes.
	c.fire(fault.KCASBeforeCommit)
	e1.Ptr.CAS(word.UnmarkDesc(ref), e1.New) // D28
	if word.IsDesc(r) {
		e2.Ptr.CAS(r, e2.New) // D29: only the witness form can succeed here
	}
	d.status.Store(statusSuccess) // D30
	return Success                // D31
}

func resultOf(res uint64) Result {
	if res == statusSuccess {
		return Success
	}
	return SecondFailed
}

// HelpPairRef performs one protected helping attempt for the pair
// descriptor reference v found in word w: protect with hpd (D35),
// revalidate that w still holds v (D36), validate the descriptor's
// identity, then help (D37). It returns without action when validation
// fails; the caller re-reads w.
func (c *Ctx) HelpPairRef(w *word.Word, v uint64) {
	idx := word.DescIndex(v)
	c.pool.dom.Protect(c.tid, c.slots.PairHPD, idx+1) // D35: hpd ← result
	defer c.pool.dom.Clear(c.tid, c.slots.PairHPD)
	if w.Load() != v { // D36: if hpd = *ptr
		return
	}
	d := c.pool.At(idx)
	if d.self.Load() != word.UnmarkDesc(v) {
		// The slot was recycled between our load and the hpd store; the
		// reference is stale. The word no longer being protected by the
		// retire check means this read raced a cleanup — re-read.
		c.checkStuck(w, v)
		return
	}
	c.pool.helps.Add(1)
	// Help-enter attribution: this thread (helper) is completing the
	// operation announced by d.Owner() (victim).
	c.obsEvent(obs.KCASHelp, obs.EvHelp, d.owner.Load(), word.UnmarkDesc(v))
	c.dcas(d, v, false) // D37: help
	c.nodeDom.Clear(c.tid, c.slots.PairMirror1)
	c.nodeDom.Clear(c.tid, c.slots.PairMirror2)
}

// stuckSpins bounds how often a stale descriptor reference may be
// re-observed in the same word before we declare a reclamation invariant
// violation. A stale reference can legitimately be observed while its
// cleanup CAS is in flight, but it cannot persist: the retire path
// scrubs every target word before a descriptor is freed.
const stuckSpins = 1 << 22

// stuckState is per-context diagnostic state for checkStuck.
type stuckState struct {
	w     *word.Word
	v     uint64
	count int
}

func (c *Ctx) checkStuck(w *word.Word, v uint64) {
	if c.stuck.w == w && c.stuck.v == v {
		c.stuck.count++
		if c.stuck.count > stuckSpins {
			panic(fmt.Sprintf("kcas: stale descriptor reference %#x pinned in word; reclamation invariant violated", v))
		}
		return
	}
	c.stuck = stuckState{w: w, v: v, count: 1}
}
