package kcas

import (
	"sync"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/hazard"
	"repro/internal/word"
)

const (
	descSlabShift = 10
	descSlabSize  = 1 << descSlabShift
	descSlabMask  = descSlabSize - 1
)

// Pool is the grow-only slab store for descriptors, shared by all
// threads and by both protocols. Slot ownership is per-thread: a slot
// is carved by one thread and recycled only through that thread's
// cache, which keeps the seq field single-writer. The configured
// capacity bounds the pool exactly — there is one pool per runtime, so
// core.Config.DescCapacity is the total descriptor budget, not a
// per-engine figure.
type Pool struct {
	slabs  atomic.Pointer[[]*[descSlabSize]Desc]
	growMu sync.Mutex
	next   atomic.Uint64
	limit  uint64

	dom *hazard.Domain // descriptor hazard domain (hpd slots)

	// Observability counters (§7 discusses "false helping ... a lot of
	// extra CASs"; these make that measurable).
	helps         atomic.Uint64 // helper entries into the pair protocol
	khelps        atomic.Uint64 // helper entries into the general protocol
	strayCleanups atomic.Uint64 // stray descriptor refs reverted after decision
	lateP2        atomic.Uint64 // pair ptr2 installs that lost the status race
}

// NewPool creates a descriptor pool with capacity maxDescs (<=0 selects
// 1<<18) and the given descriptor hazard domain.
func NewPool(maxDescs int, dom *hazard.Domain) *Pool {
	if maxDescs <= 0 {
		maxDescs = 1 << 18
	}
	if uint64(maxDescs) > word.MaxDescIndex {
		maxDescs = int(word.MaxDescIndex)
	}
	p := &Pool{limit: uint64(maxDescs), dom: dom}
	empty := make([]*[descSlabSize]Desc, 0)
	p.slabs.Store(&empty)
	return p
}

// At dereferences a descriptor slot index.
func (p *Pool) At(idx uint64) *Desc {
	slabs := *p.slabs.Load()
	return &slabs[idx>>descSlabShift][idx&descSlabMask]
}

// Capacity reports the configured slot limit.
func (p *Pool) Capacity() uint64 { return p.limit }

// Stats reports (pair helper entries, stray cleanups, late ptr2
// installs) — the §7 false-helping metrics.
func (p *Pool) Stats() (helps, strays, lateP2 uint64) {
	return p.helps.Load(), p.strayCleanups.Load(), p.lateP2.Load()
}

// KHelps reports helper entries into the general k-word protocol.
func (p *Pool) KHelps() uint64 { return p.khelps.Load() }

// Carved reports how many descriptor slots the pool's bump allocator
// has handed out; a flat count under sustained load means recycling is
// keeping up (tests and diagnostics).
func (p *Pool) Carved() uint64 { return p.next.Load() }

// carve bump-allocates n fresh slot indexes.
func (p *Pool) carve(dst []uint64, n int) []uint64 {
	start := p.next.Add(uint64(n)) - uint64(n)
	end := start + uint64(n)
	if end > p.limit {
		// Typed so core.Thread.Try can recover it into ErrResourceExhausted.
		// Safe to throw here: carve runs strictly before the descriptor is
		// filled or announced, so no shared state references the operation.
		panic(&fault.ResourceError{Resource: "kcas: descriptor pool", Capacity: p.limit, Hint: "DescCapacity"})
	}
	p.ensure(end)
	for i := start; i < end; i++ {
		dst = append(dst, i)
	}
	return dst
}

func (p *Pool) ensure(end uint64) {
	need := int((end + descSlabMask) >> descSlabShift)
	if len(*p.slabs.Load()) >= need {
		return
	}
	p.growMu.Lock()
	defer p.growMu.Unlock()
	cur := *p.slabs.Load()
	if len(cur) >= need {
		return
	}
	grown := make([]*[descSlabSize]Desc, need)
	copy(grown, cur)
	for i := len(cur); i < need; i++ {
		grown[i] = new([descSlabSize]Desc)
	}
	p.slabs.Store(&grown)
}
