package kcas

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/hazard"
	"repro/internal/word"
)

// TestDescriptorPoolExhaustionPanics: descriptor capacity is a hard
// resource; running out must fail loudly — with the typed
// *fault.ResourceError so Thread.Try can degrade gracefully, and naming
// the configured capacity so the operator knows which knob to turn —
// not deadlock.
func TestDescriptorPoolExhaustionPanics(t *testing.T) {
	const capacity = carveBatch * 2
	descDom := hazard.New(1, 3)
	nodeDom := hazard.New(1, 8+2*MaxEntries)
	pool := NewPool(capacity, descDom) // two carve batches only
	c := NewCtx(pool, nodeDom, 0, testSlots)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected exhaustion panic")
		}
		re := fault.AsResourceError(r)
		if re == nil {
			t.Fatalf("panic value %v (%T), want *fault.ResourceError", r, r)
		}
		if !errors.Is(re, fault.ErrResourceExhausted) {
			t.Fatal("exhaustion error must match fault.ErrResourceExhausted")
		}
		if msg := re.Error(); !strings.Contains(msg, fmt.Sprintf("capacity %d", capacity)) || !strings.Contains(msg, "DescCapacity") {
			t.Fatalf("exhaustion panic must report the configured capacity and knob: %q", msg)
		}
	}()
	for i := 0; ; i++ {
		d, ref := c.AllocPair()
		_ = d
		_ = ref // never recycled
		if i > capacity*2 {
			t.Fatal("pool failed to enforce its limit")
			return
		}
	}
}

// TestPoolCapacityHonoredExactly: the unified pool's budget is the
// configured capacity — not, as with the split engines, one full budget
// per protocol.
func TestPoolCapacityHonoredExactly(t *testing.T) {
	descDom := hazard.New(1, 3)
	pool := NewPool(carveBatch*3, descDom)
	if got := pool.Capacity(); got != carveBatch*3 {
		t.Fatalf("Capacity=%d, want %d", got, carveBatch*3)
	}
	if got := NewPool(0, descDom).Capacity(); got != 1<<18 {
		t.Fatalf("default Capacity=%d, want %d", got, 1<<18)
	}
}

// TestPairAndKShareFreeRing: a thread alternating pair and general
// operations must recycle through one ring — the mixed traffic stays
// within a few carve batches instead of carving per protocol.
func TestPairAndKShareFreeRing(t *testing.T) {
	e := newEnv(1)
	c := e.ctxs[0]
	var w1, w2, w3 word.Word
	for i := 0; i < 500; i++ {
		w1.Store(val(1))
		w2.Store(val(2))
		w3.Store(val(3))
		if res := runPair(c, &w1, &w2, val(1), val(4), val(2), val(5)); res != Success {
			t.Fatalf("pair %d: %v", i, res)
		}
		w1.Store(val(1))
		w2.Store(val(2))
		ok, _ := runK(c,
			[]*word.Word{&w1, &w2, &w3},
			[]uint64{val(1), val(2), val(3)},
			[]uint64{val(6), val(7), val(8)})
		if !ok {
			t.Fatalf("k-word %d failed", i)
		}
	}
	c.Flush()
	if got := e.pool.next.Load(); got > 4*carveBatch {
		t.Fatalf("mixed traffic carved %d slots; pair and k-word must share one free ring", got)
	}
}

// TestRetiredDescriptorsHeldWhileProtected: a descriptor referenced by
// another thread's hpd slot must survive scans.
func TestRetiredDescriptorsHeldWhileProtected(t *testing.T) {
	descDom := hazard.New(2, 3)
	nodeDom := hazard.New(2, 8+2*MaxEntries)
	pool := NewPool(1<<12, descDom)
	c := NewCtx(pool, nodeDom, 0, testSlots)

	var w1, w2 word.Word
	w1.Store(val(1))
	w2.Store(val(2))
	d, ref := c.AllocPair()
	e1, e2 := &d.Entries[0], &d.Entries[1]
	e1.Ptr, e1.Old, e1.New = &w1, val(1), val(3)
	e2.Ptr, e2.Old, e2.New = &w2, val(2), val(4)
	if c.ExecutePair(d, ref) != Success {
		t.Fatal("setup DCAS failed")
	}
	// Thread 1 protects the descriptor slot (as a helper would).
	descDom.Protect(1, 0, word.DescIndex(ref)+1)
	c.Retire(d, ref)
	for i := 0; i < 4; i++ {
		c.scan()
	}
	if d.self.Load() == 0 {
		t.Fatal("descriptor freed while hpd-protected")
	}
	// Release and confirm reclamation.
	descDom.Clear(1, 0)
	c.Flush()
	if d.self.Load() != 0 {
		t.Fatal("descriptor not freed after protection cleared")
	}
}

// TestRetireScrubsStrayReference: a marked descriptor reference left in
// ptr2 (the §7 late-ABA stray) must be scrubbed by Retire so the word
// never reaches readers after the descriptor is recycled.
func TestRetireScrubsStrayReference(t *testing.T) {
	descDom := hazard.New(1, 3)
	nodeDom := hazard.New(1, 8+2*MaxEntries)
	pool := NewPool(1<<12, descDom)
	c := NewCtx(pool, nodeDom, 0, testSlots)

	var w1, w2 word.Word
	w1.Store(val(1))
	w2.Store(val(2))
	d, ref := c.AllocPair()
	e1, e2 := &d.Entries[0], &d.Entries[1]
	e1.Ptr, e1.Old, e1.New = &w1, val(1), val(3)
	e2.Ptr, e2.Old, e2.New = &w2, val(2), val(4)
	if c.ExecutePair(d, ref) != Success {
		t.Fatal("setup DCAS failed")
	}
	// Simulate a late helper's ABA install: ptr2 went back to old2 and a
	// stalled helper re-installed its marked descriptor.
	w2.Store(val(2))
	stray := word.MarkDesc(ref, 0)
	w2.Store(stray)

	c.Retire(d, ref)
	if got := w2.Load(); got != val(2) {
		t.Fatalf("stray not scrubbed: w2=%#x", got)
	}
	c.Flush()
	if d.self.Load() != 0 {
		t.Fatal("descriptor not reclaimed after scrub")
	}
}

// TestRetireScrubsKResidue: the general protocol's retire-time scrub
// must clean both residue forms — a stranded full reference and a
// stranded RDCSS sub-reference — before the descriptor recycles.
func TestRetireScrubsKResidue(t *testing.T) {
	e := newEnv(1)
	c := e.ctxs[0]
	var w1, w2 word.Word
	w1.Store(val(1))
	w2.Store(val(2))
	d, ref := c.AllocK()
	d.N = 2
	d.Entries[0] = Entry{Ptr: &w1, Old: val(1), New: val(3)}
	d.Entries[1] = Entry{Ptr: &w2, Old: val(2), New: val(4)}
	if ok, _ := c.Execute(d, ref); !ok {
		t.Fatal("setup k-word CAS failed")
	}
	// Strand a full reference in w1 and an RDCSS sub-reference in w2.
	w1.Store(ref)
	w2.Store(rdcssRef(ref, 1))
	c.Retire(d, ref)
	if got := w1.Load(); got != val(3) {
		t.Fatalf("full-reference residue not released: w1=%#x", got)
	}
	if got := w2.Load(); got != val(2) {
		t.Fatalf("RDCSS residue not reverted: w2=%#x", got)
	}
	c.Flush()
	if d.self.Load() != 0 {
		t.Fatal("descriptor not reclaimed after scrub")
	}
}

// TestReadCleansResidueAfterDecision: a reader encountering a decided
// descriptor's residue must restore the word and return a plain value.
func TestReadCleansResidueAfterDecision(t *testing.T) {
	descDom := hazard.New(1, 3)
	nodeDom := hazard.New(1, 8+2*MaxEntries)
	pool := NewPool(1<<12, descDom)
	c := NewCtx(pool, nodeDom, 0, testSlots)

	var w1, w2 word.Word
	w1.Store(val(1))
	w2.Store(val(2))
	d, ref := c.AllocPair()
	e1, e2 := &d.Entries[0], &d.Entries[1]
	e1.Ptr, e1.Old, e1.New = &w1, val(1), val(3)
	e2.Ptr, e2.Old, e2.New = &w2, val(2), val(4)
	if c.ExecutePair(d, ref) != Success {
		t.Fatal("setup DCAS failed")
	}
	// Plant a stray marked ref (live descriptor, decided): the reader
	// must help through it via lines D4–D6 and end with a plain value.
	w2.Store(val(2))
	w2.Store(word.MarkDesc(ref, 0))
	if got := c.Read(&w2); got != val(2) {
		t.Fatalf("Read returned %#x, want scrubbed old value", got)
	}
	_, strays, _ := pool.Stats()
	if strays == 0 {
		t.Fatal("stray cleanup not counted")
	}
	c.Retire(d, ref)
	c.Flush()
}
