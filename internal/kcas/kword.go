package kcas

import (
	"fmt"
	"reflect"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/word"
)

// The general k-word path: Harris/Fraser/Pratt CASN with inline RDCSS
// sub-descriptors. See the package comment for the construction.

// rdcssRef builds the reference encoding the RDCSS sub-descriptor for
// entry i of the operation referenced by mref.
func rdcssRef(mref uint64, i int) uint64 {
	return word.MarkDesc(word.MakeDesc(word.KindRDCSS, word.DescIndex(mref), word.DescSeq(mref)), i)
}

// kRefOf recovers the full KindMCAS reference from one of its RDCSS
// references.
func kRefOf(rref uint64) uint64 {
	return word.MakeDesc(word.KindMCAS, word.DescIndex(rref), word.DescSeq(rref))
}

// entryOf recovers the entry index from an RDCSS reference.
func entryOf(rref uint64) int { return int(word.DescTID(rref)) - 1 }

// wordAddr gives a total order over words without package unsafe;
// reflect is only used off the fast path (once per Execute, never while
// helping).
func wordAddr(w *word.Word) uintptr { return reflect.ValueOf(w).Pointer() }

// Execute runs the k-word CAS described by d as initiator. d must come
// from AllocK on this context, with Entries[0..N) populated and
// targeting pairwise distinct words. On failure it reports the index of
// the entry whose word did not match.
func (c *Ctx) Execute(d *Desc, ref uint64) (bool, int) {
	if d.N < 1 || d.N > MaxEntries {
		panic(fmt.Sprintf("kcas: %d entries out of range", d.N))
	}
	for i := 0; i < d.N; i++ {
		d.order[i] = uint8(i)
		for j := 0; j < i; j++ {
			if d.Entries[i].Ptr == d.Entries[j].Ptr {
				panic("kcas: duplicate target word; operations must be on distinct objects")
			}
		}
	}
	// Phase-1 acquisition order: ascending address, so concurrent
	// operations over overlapping word sets cannot chase each other in a
	// cycle.
	ord := d.order[:d.N]
	for i := 1; i < len(ord); i++ {
		for j := i; j > 0 && wordAddr(d.Entries[ord[j]].Ptr) < wordAddr(d.Entries[ord[j-1]].Ptr); j-- {
			ord[j], ord[j-1] = ord[j-1], ord[j]
		}
	}
	// Telemetry: the general path counts every Execute as a publish
	// (phase 1 installs begin immediately) and the initiator records the
	// outcome, so (quiesced) publishes == commits + aborts here too.
	// run()'s own fault hook fires for helpers as well, so the counters
	// live here, on the initiator-only path.
	c.obsEvent(obs.KCASPublish, obs.EvPublish, -1, ref)
	st := c.run(d, ref)
	if st == statusSuccess {
		c.obsEvent(obs.KCASCommit, obs.EvCommit, -1, ref)
		return true, -1
	}
	c.obsEvent(obs.KCASAbort, obs.EvAbort, -1, ref)
	return false, failedIndex(st)
}

// run drives the operation to a decision and releases its words; both
// initiators and helpers execute it. ref is the unmarked KindMCAS
// reference.
func (c *Ctx) run(d *Desc, ref uint64) uint64 {
	if d.status.Load() == statusUndecided {
		desired := statusSuccess
	phase1:
		for _, i := range d.order[:d.N] {
			e := &d.Entries[int(i)]
			for {
				v := c.rdcssTry(d, ref, int(i))
				if v == e.Old || word.SameDesc(v, ref) {
					// Acquired (or already acquired by a helper).
					break
				}
				if word.IsDesc(v) {
					switch word.DescKind(v) {
					case word.KindMCAS:
						c.HelpRef(e.Ptr, v) // help the other operation, retry
					case word.KindDCAS:
						// A pair operation owns the word: help it through
						// the same engine (this is what the foreign-help
						// hook existed for when the engines were split).
						c.HelpPairRef(e.Ptr, v)
					case word.KindRDCSS:
						c.CompleteRDCSS(e.Ptr, v)
					}
					if d.status.Load() != statusUndecided {
						break phase1
					}
					continue
				}
				// Plain value mismatch: this entry's operation failed.
				desired = statusFailed(int(i))
				break phase1
			}
			if d.status.Load() != statusUndecided {
				break phase1
			}
		}
		// Acquisition done, decision pending: every target word holds a
		// reference to this (published) descriptor, so peers reading any
		// of them will help the operation to its decision and release.
		c.fire(fault.KCASAfterPublish)
		d.status.CAS(statusUndecided, desired)
	}

	// Phase 2: release every word to its new (success) or old (failure)
	// value. Expected values are the unmarked descriptor reference the
	// RDCSS promotions installed. A thread lost between the decision and
	// the releases leaves full references behind; any reader helps them
	// out via HelpRef (this same function, phase 2 only).
	c.fire(fault.KCASBeforeCommit)
	st := d.status.Load()
	success := st == statusSuccess
	for i := 0; i < d.N; i++ {
		e := &d.Entries[i]
		if success {
			e.Ptr.CAS(ref, e.New)
		} else {
			e.Ptr.CAS(ref, e.Old)
		}
	}
	return st
}

// rdcssTry attempts to acquire entry i for the operation: it installs
// the entry's RDCSS reference in place of the old value, then promotes
// it to the full descriptor reference if the operation is still
// undecided (reverting otherwise). It returns e.Old on acquisition and
// the conflicting value otherwise.
func (c *Ctx) rdcssTry(d *Desc, mref uint64, i int) uint64 {
	e := &d.Entries[i]
	rref := rdcssRef(mref, i)
	for {
		if e.Ptr.CAS(e.Old, rref) {
			c.promote(d, mref, i)
			return e.Old
		}
		v := e.Ptr.Load()
		if v == e.Old {
			// The install CAS lost a race but the word holds the old
			// value again (an ABA flip in between). Returning e.Old here
			// would claim an acquisition that never happened — phase 2
			// would then skip this entry entirely. Retry the install.
			continue
		}
		if v == rref {
			// Another helper installed the identical sub-descriptor;
			// completing it is idempotent.
			c.promote(d, mref, i)
			continue
		}
		return v
	}
}

// promote finishes an installed RDCSS: if the operation is still
// undecided the word becomes the full descriptor reference, otherwise it
// reverts to the old value. A promotion that races the decision can
// strand the descriptor reference in the word; phase 2 retries by
// helpers and the retire-time scrub clean it up, exactly like the pair
// protocol's lazy stray cleanup.
func (c *Ctx) promote(d *Desc, mref uint64, i int) {
	e := &d.Entries[i]
	rref := rdcssRef(mref, i)
	if d.status.Load() == statusUndecided {
		e.Ptr.CAS(rref, mref)
		// Re-check: if the operation got decided while we promoted, the
		// full reference we just installed must not keep readers helping
		// a finished operation; run phase 2 for this entry.
		if decided(d.status.Load()) {
			if d.status.Load() == statusSuccess {
				e.Ptr.CAS(mref, e.New)
			} else {
				e.Ptr.CAS(mref, e.Old)
			}
		}
	} else {
		e.Ptr.CAS(rref, e.Old)
	}
}

// HelpRef helps the k-word operation whose (possibly foreign) reference
// v was found in word w: protect, revalidate the word, validate
// descriptor identity, mirror the initiator's hazard pointers, then run.
func (c *Ctx) HelpRef(w *word.Word, v uint64) {
	idx := word.DescIndex(v)
	c.pool.dom.Protect(c.tid, c.slots.KHPD, idx+1)
	defer c.pool.dom.Clear(c.tid, c.slots.KHPD)
	if w.Load() != v {
		return
	}
	d := c.pool.At(idx)
	mref := word.UnmarkDesc(v)
	if d.self.Load() != mref {
		return
	}
	for i := 0; i < d.N && i < MaxEntries; i++ {
		c.nodeDom.Protect(c.tid, c.slots.KMirrorBase+i, d.Entries[i].HP)
	}
	c.pool.khelps.Add(1)
	// Help-enter attribution: helper = this thread, victim = initiator.
	c.obsEvent(obs.KCASHelp, obs.EvHelp, d.owner.Load(), mref)
	c.run(d, mref)
	for i := 0; i < MaxEntries; i++ {
		c.nodeDom.Clear(c.tid, c.slots.KMirrorBase+i)
	}
}

// CompleteRDCSS resolves an RDCSS reference found in a word: recover the
// owning operation, validate it, and promote or revert the
// sub-descriptor.
func (c *Ctx) CompleteRDCSS(w *word.Word, rref uint64) {
	idx := word.DescIndex(rref)
	c.pool.dom.Protect(c.tid, c.slots.RDCSSHPD, idx+1)
	defer c.pool.dom.Clear(c.tid, c.slots.RDCSSHPD)
	if w.Load() != rref {
		return
	}
	d := c.pool.At(idx)
	mref := kRefOf(rref)
	if d.self.Load() != mref {
		return
	}
	i := entryOf(rref)
	if i < 0 || i >= d.N {
		return
	}
	c.promote(d, mref, i)
}

// Read is the read operation of Algorithm 4 (lines D32–D39) extended to
// every descriptor kind the engine can announce: it helps any pair,
// k-word or RDCSS descriptor found in w and returns a plain value.
func (c *Ctx) Read(w *word.Word) uint64 {
	v := w.Load()
	for word.IsDesc(v) {
		switch word.DescKind(v) {
		case word.KindDCAS:
			c.HelpPairRef(w, v)
		case word.KindMCAS:
			c.HelpRef(w, v)
		case word.KindRDCSS:
			c.CompleteRDCSS(w, v)
		}
		v = w.Load()
	}
	return v
}
