package kcas

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/word"
)

// TestKUnderABANoise pins the rdcssTry regression: a noise thread flips
// one target word away from and back to the expected old value, so
// install CASes frequently lose races while later loads see the old
// value again. A buggy acquisition path would claim the entry without
// installing, making phase 2 skip it — detected here by checking that a
// successful k-word CAS really applied ALL of its entries.
func TestKUnderABANoise(t *testing.T) {
	const iterations = 30000
	e := newEnv(3)
	noiseCtx := e.ctxs[2]

	var w1, w2, w3 word.Word
	oldA := val(1) // w3 flips between oldA and noiseB
	noiseB := val(2)
	// Arm w3 before the noise starts: on a single-CPU box the noise
	// goroutine may not run before the main loop's first iterations, and
	// an uninitialized w3 (Nil) would fail every operation at slot 2.
	w3.Store(oldA)

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Duty-cycled noise: flip in bursts, then pause briefly. A
		// continuous tight flip loop can starve every install on this
		// word for the whole test (all 30000 iterations fail and the
		// all-entries-applied assertion never runs); the pauses leave
		// windows in which an operation can win while the bursts keep
		// exercising the install-race and helping paths.
		const burst = 512
		for flips := 0; !stop.Load(); flips++ {
			if flips%burst == 0 {
				for i := 0; i < 64 && !stop.Load(); i++ {
					runtime.Gosched()
				}
			}
			// Flip w3: oldA → noiseB → oldA. Readers mid-operation can
			// catch either; an operation expecting oldA succeeds only if
			// it wins the install race.
			if !w3.CAS(oldA, noiseB) {
				// An operation may have moved w3 to its new value; put
				// the expected old back so the next attempt can run.
				v := noiseCtx.Read(&w3)
				w3.CAS(v, oldA)
				continue
			}
			w3.CAS(noiseB, oldA)
		}
	}()

	c := e.ctxs[0]
	applied := 0
	for i := 0; i < iterations; i++ {
		w1.Store(val(100))
		w2.Store(val(200))
		// w3 is under noise; don't reset it here.
		n1 := val(1000 + uint64(i)<<2)
		n2 := val(2000 + uint64(i)<<2)
		n3 := val(3000 + uint64(i)<<2)
		d, ref := c.AllocK()
		d.N = 3
		d.Entries[0] = Entry{Ptr: &w1, Old: val(100), New: n1}
		d.Entries[1] = Entry{Ptr: &w2, Old: val(200), New: n2}
		d.Entries[2] = Entry{Ptr: &w3, Old: oldA, New: n3}
		ok, failed := c.Execute(d, ref)
		c.Retire(d, ref)
		if !ok {
			if failed != 2 {
				t.Fatalf("iteration %d: only the noisy entry may fail, got slot %d", i, failed)
			}
			continue
		}
		applied++
		// A successful k-word CAS must have applied EVERY entry.
		if got := c.Read(&w1); got != n1 {
			t.Fatalf("iteration %d: w1=%#x want %#x (entry skipped)", i, got, n1)
		}
		if got := c.Read(&w2); got != n2 {
			t.Fatalf("iteration %d: w2=%#x want %#x (entry skipped)", i, got, n2)
		}
		// w3 must have held n3 at the decision; the noise thread can
		// only change it back after observing it (it CASes from the
		// value it read), so seeing oldA/noiseB again without n3 having
		// been installed is impossible — verify via the noise thread's
		// protocol: read w3; it is n3 unless noise already recycled it,
		// in which case the recycle CAS consumed n3.
		got := c.Read(&w3)
		if got != n3 && got != oldA && got != noiseB {
			t.Fatalf("iteration %d: w3=%#x unexpected", i, got)
		}
		// Re-arm w3 for the next iteration if it still holds n3.
		w3.CAS(n3, oldA)
	}
	stop.Store(true)
	wg.Wait()
	if applied == 0 {
		t.Fatal("no k-word CAS succeeded under noise; test exercised nothing")
	}
	t.Logf("applied %d/%d under ABA noise", applied, iterations)
	c.Flush()
}
