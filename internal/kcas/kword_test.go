package kcas

import (
	"sync"
	"testing"

	"repro/internal/word"
)

func runK(c *Ctx, words []*word.Word, olds, news []uint64) (bool, int) {
	d, ref := c.AllocK()
	d.N = len(words)
	for i := range words {
		d.Entries[i] = Entry{Ptr: words[i], Old: olds[i], New: news[i]}
	}
	ok, failed := c.Execute(d, ref)
	c.Retire(d, ref)
	return ok, failed
}

func TestKSequentialSemantics(t *testing.T) {
	e := newEnv(1)
	c := e.ctxs[0]
	for n := 1; n <= MaxEntries; n++ {
		words := make([]*word.Word, n)
		olds := make([]uint64, n)
		news := make([]uint64, n)
		for i := 0; i < n; i++ {
			words[i] = &word.Word{}
			words[i].Store(val(uint64(i)))
			olds[i] = val(uint64(i))
			news[i] = val(uint64(100 + i))
		}
		ok, _ := runK(c, words, olds, news)
		if !ok {
			t.Fatalf("n=%d: matching k-word CAS must succeed", n)
		}
		for i := 0; i < n; i++ {
			if words[i].Load() != news[i] {
				t.Fatalf("n=%d: word %d not updated", n, i)
			}
		}
	}
}

func TestKFailureReportsSlotAndChangesNothing(t *testing.T) {
	e := newEnv(1)
	c := e.ctxs[0]
	for bad := 0; bad < 4; bad++ {
		words := make([]*word.Word, 4)
		olds := make([]uint64, 4)
		news := make([]uint64, 4)
		for i := 0; i < 4; i++ {
			words[i] = &word.Word{}
			words[i].Store(val(uint64(i)))
			olds[i] = val(uint64(i))
			news[i] = val(uint64(50 + i))
		}
		olds[bad] = val(999) // mismatch at slot `bad`
		ok, failed := runK(c, words, olds, news)
		if ok {
			t.Fatalf("bad=%d: must fail", bad)
		}
		if failed != bad {
			t.Fatalf("bad=%d: reported slot %d", bad, failed)
		}
		for i := 0; i < 4; i++ {
			if words[i].Load() != val(uint64(i)) {
				t.Fatalf("bad=%d: word %d changed on failure", bad, i)
			}
		}
	}
}

func TestKDuplicateWordPanics(t *testing.T) {
	e := newEnv(1)
	c := e.ctxs[0]
	w := &word.Word{}
	w.Store(val(1))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate words must panic")
		}
	}()
	runK(c, []*word.Word{w, w}, []uint64{val(1), val(1)}, []uint64{val(2), val(3)})
}

// TestKConcurrentChains mirrors the pair history test: concurrent
// 3-word operations over a word pool; successful transitions must chain.
func TestKConcurrentChains(t *testing.T) {
	const threads = 8
	const wordsN = 6
	const opsPer = 1500
	e := newEnv(threads)
	words := make([]word.Word, wordsN)
	for i := range words {
		words[i].Store(val(uint64(1000 + i)))
	}
	type rec struct {
		w    [3]int
		olds [3]uint64
		news [3]uint64
	}
	results := make([][]rec, threads)
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			c := e.ctxs[tid]
			rng := uint64(tid)*0x9e3779b97f4a7c15 + 99
			next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
			for op := 0; op < opsPer; op++ {
				// Pick three distinct words.
				a := int(next() % wordsN)
				b := (a + 1 + int(next()%(wordsN-1))) % wordsN
				cIdx := (b + 1 + int(next()%(wordsN-2))) % wordsN
				if cIdx == a {
					cIdx = (cIdx + 1) % wordsN
					if cIdx == b {
						cIdx = (cIdx + 1) % wordsN
					}
				}
				idx := [3]int{a, b, cIdx}
				var olds, news [3]uint64
				for k := 0; k < 3; k++ {
					olds[k] = c.Read(&words[idx[k]])
					news[k] = val(1<<22 | uint64(tid)<<26 | uint64(op)<<4 | uint64(k))
				}
				ok, _ := runK(c,
					[]*word.Word{&words[idx[0]], &words[idx[1]], &words[idx[2]]},
					olds[:], news[:])
				if ok {
					results[tid] = append(results[tid], rec{idx, olds, news})
				}
			}
			c.Flush()
		}(tid)
	}
	wg.Wait()

	perWord := make([]map[uint64]uint64, wordsN)
	for i := range perWord {
		perWord[i] = map[uint64]uint64{}
	}
	total := 0
	for _, rs := range results {
		total += len(rs)
		for _, r := range rs {
			for k := 0; k < 3; k++ {
				if _, dup := perWord[r.w[k]][r.olds[k]]; dup {
					t.Fatalf("word %d: old %#x consumed twice", r.w[k], r.olds[k])
				}
				perWord[r.w[k]][r.olds[k]] = r.news[k]
			}
		}
	}
	if total == 0 {
		t.Fatal("no k-word CAS succeeded")
	}
	for i := range words {
		cur := val(uint64(1000 + i))
		for {
			next, ok := perWord[i][cur]
			if !ok {
				break
			}
			delete(perWord[i], cur)
			cur = next
		}
		if cur != e.ctxs[0].Read(&words[i]) {
			t.Fatalf("word %d: chain ends at %#x, word holds %#x", i, cur, words[i].Load())
		}
		if len(perWord[i]) != 0 {
			t.Fatalf("word %d: %d dangling transitions", i, len(perWord[i]))
		}
	}
	t.Logf("successes=%d khelps=%d", total, e.pool.KHelps())
}

// TestKOverlappingPairsNoDeadlock: two word sets overlapping in one
// word, hammered in opposite orders — the address-ordered phase 1 plus
// helping must guarantee progress.
func TestKOverlappingPairsNoDeadlock(t *testing.T) {
	const threads = 4
	const opsPer = 4000
	e := newEnv(threads)
	var a, b, c word.Word
	a.Store(val(1))
	b.Store(val(2))
	c.Store(val(3))
	var wg sync.WaitGroup
	var successes [threads]int
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			cx := e.ctxs[tid]
			var w1, w2 *word.Word
			if tid%2 == 0 {
				w1, w2 = &a, &b
			} else {
				w1, w2 = &b, &c
			}
			for op := 0; op < opsPer; op++ {
				o1 := cx.Read(w1)
				o2 := cx.Read(w2)
				n1 := val(2<<22 | uint64(tid)<<26 | uint64(op)<<4)
				n2 := val(3<<22 | uint64(tid)<<26 | uint64(op)<<4)
				if ok, _ := runK(cx, []*word.Word{w1, w2}, []uint64{o1, o2}, []uint64{n1, n2}); ok {
					successes[tid]++
				}
			}
			cx.Flush()
		}(tid)
	}
	wg.Wait()
	for tid, s := range successes {
		if s == 0 {
			t.Fatalf("thread %d starved (0/%d successes)", tid, opsPer)
		}
	}
}

func TestKDescriptorRecycling(t *testing.T) {
	e := newEnv(1)
	c := e.ctxs[0]
	var w1, w2 word.Word
	for i := 0; i < 500; i++ {
		w1.Store(val(1))
		w2.Store(val(2))
		ok, _ := runK(c, []*word.Word{&w1, &w2}, []uint64{val(1), val(2)}, []uint64{val(3), val(4)})
		if !ok {
			t.Fatal("sequential k-word CAS failed")
		}
	}
	c.Flush()
	if e.pool.next.Load() > 64 {
		t.Fatalf("descriptor leak: %d slots carved for 500 sequential ops", e.pool.next.Load())
	}
}

// TestCrossKindHelping: a general operation that finds a pair
// descriptor in its word must help it through the unified engine (the
// split engines needed a registered foreign-help hook for this; the
// unified one dispatches on the reference kind internally).
func TestCrossKindHelping(t *testing.T) {
	e := newEnv(2)
	c0, c1 := e.ctxs[0], e.ctxs[1]
	var w1, w2, w3 word.Word
	w1.Store(val(1))
	w2.Store(val(2))
	w3.Store(val(3))
	// Announce a pair operation in w1/w2 but stop before helping it to
	// completion: install the unmarked reference in w1 by hand-running
	// only the announce step.
	d, ref := c0.AllocPair()
	e1, e2 := &d.Entries[0], &d.Entries[1]
	e1.Ptr, e1.Old, e1.New = &w1, val(1), val(4)
	e2.Ptr, e2.Old, e2.New = &w2, val(2), val(5)
	if !w1.CAS(val(1), ref) {
		t.Fatal("announce failed")
	}
	// A k-word CAS targeting w1 must help the pair to completion and
	// then succeed against its post-help value.
	ok, _ := runK(c1, []*word.Word{&w1, &w3}, []uint64{val(4), val(3)}, []uint64{val(6), val(7)})
	if !ok {
		t.Fatal("k-word CAS expecting the pair's new value must succeed after helping")
	}
	if got := c1.Read(&w2); got != val(5) {
		t.Fatalf("pair not helped to completion: w2=%#x", got)
	}
	if d.status.Load() != statusSuccess {
		t.Fatal("pair status not decided by helper")
	}
	c0.Retire(d, ref)
	c0.Flush()
	c1.Flush()
}
