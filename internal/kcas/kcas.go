// Package kcas is the repository's single k-word compare-and-swap
// engine: one descriptor layout, one pool and one per-thread context
// backing both the paper's software DCAS (§3.2.2, Algorithm 4) and the
// §8 n-word extension that generalizes composed moves to n objects.
//
// The two protocols used to live in separate packages (dcas, mcas) with
// near-identical descriptor lifecycles written twice. Here a descriptor
// is always a Desc with N entries drawn from the one pool; what differs
// is only how it is decided:
//
//   - Pair fast path (AllocPair/ExecutePair, reference kind KindDCAS):
//     Algorithm 4 verbatim over Entries[0] (ptr1) and Entries[1] (ptr2).
//     It reports which word failed, carries the initiator's hazard
//     pointers for helpers (line D3), needs no RDCSS sub-descriptors,
//     and costs two fewer CASs than Harris et al. [9] uncontended —
//     pairwise Move keeps exactly its pre-unification cost.
//
//   - General path (AllocK/Execute, reference kind KindMCAS): Harris,
//     Fraser and Pratt's practical CASN [9] — each word is acquired with
//     an RDCSS conditional on the operation still being undecided, the
//     status word decides the whole operation, then the words are
//     released. RDCSS sub-descriptors are not allocated: the RDCSS
//     descriptor for entry i of operation M is fully determined by
//     (M, i), so it is encoded directly in the word reference
//     (kind = KindRDCSS, entry index in the mark field).
//
// Both paths share the sequence-stamped ABA-safe slot reuse, the
// per-thread compacting FIFO free ring, hazard-scan retirement, and the
// RetireFlush/EndFlush batch recycling that amortizes one hazard
// snapshot over a whole flush. A helper that encounters a reference of
// either operation kind — or an RDCSS sub-reference — resolves it
// through this one package (Ctx.Read), so cross-kind helping needs no
// foreign-function hook.
//
// The status word reports failure slots: the pair path mirrors the
// paper's FIRSTFAILED/SECONDFAILED, the general path reports the index
// of the entry whose word did not match, so core can re-run exactly the
// operations from the failed slot onward.
package kcas

import (
	"sync/atomic"

	"repro/internal/word"
)

// MaxEntries bounds the number of words one descriptor may cover; MoveN
// moves to at most MaxEntries-1 targets, TransferN moves MaxEntries/2
// keys.
const MaxEntries = 8

// Result is the outcome of a pair (DCAS) operation, as defined by the
// semantics in Algorithm 1 of the paper.
type Result uint8

const (
	// Success: both words matched their old values and were atomically
	// replaced by their new values.
	Success Result = iota
	// FirstFailed: entry 0's word did not match its old value; nothing
	// was changed (and the descriptor was never announced).
	FirstFailed
	// SecondFailed: entry 1's word did not match; nothing was changed.
	SecondFailed
)

func (r Result) String() string {
	switch r {
	case Success:
		return "SUCCESS"
	case FirstFailed:
		return "FIRSTFAILED"
	case SecondFailed:
		return "SECONDFAILED"
	}
	return "UNKNOWN"
}

// Status-word states, shared by both protocols. Undecided is the zero
// value; the others are small even constants that can never collide
// with a node or descriptor reference (node indexes below
// arena.ReservedIndexes are never allocated; references are odd or
// larger). The pair path may additionally park a *marked descriptor
// reference* in the status word — the intermediate decision witness of
// the paper's Lemma 1; the general path uses statusFailed(i) =
// statusFailedBase + 8*i to report the failing entry. Each descriptor
// incarnation runs exactly one protocol (fixed by its reference kind),
// so the two failure encodings never meet in one descriptor.
const (
	statusUndecided    uint64 = 0
	statusSecondFailed uint64 = 2 // pair path only
	statusSuccess      uint64 = 4
	statusFailedBase   uint64 = 6 // general path: 6 + 8*i
)

func statusFailed(i int) uint64 { return statusFailedBase + uint64(i)*8 }
func failedIndex(st uint64) int { return int((st - statusFailedBase) / 8) }
func decided(st uint64) bool    { return st != statusUndecided }

// Entry is one word of a k-word CAS: replace Old with New in *Ptr. HP
// is the arena index of the node containing Ptr (0 for object anchors),
// used to mirror the initiator's hazard protection while helping.
type Entry struct {
	Ptr      *word.Word
	Old, New uint64
	HP       uint64
}

// Desc is the unified descriptor. N and Entries[0..N) (and, on the
// general path, order) are written by the initiating process before the
// descriptor is announced and are read-only afterwards. The pair path
// uses Entries[0] as ptr1 and Entries[1] as ptr2 of Algorithm 1's
// DCASDesc; status is its res word.
type Desc struct {
	N       int
	Entries [MaxEntries]Entry
	order   [MaxEntries]uint8 // general phase-1 order (ascending address)

	status word.Word

	// self holds the descriptor's current unmarked reference while the
	// descriptor is live and 0 while it is free. Helpers validate it
	// after the hpd protection (line D36) so a reference to a recycled
	// slot is never trusted.
	self atomic.Uint64

	// seq is the allocation sequence for this slot. Slots are owned by
	// the thread that carved them and never migrate, so seq needs no
	// atomicity.
	seq uint64

	// owner is the initiating thread's id, stamped at alloc. Helpers
	// read it (after validating self) to attribute help events to
	// their victim; atomic because a stale helper's read may race the
	// slot's next incarnation being stamped.
	owner atomic.Int32
}

// Owner reports the thread id that allocated this descriptor
// incarnation — the victim of any help event on it.
func (d *Desc) Owner() int32 { return d.owner.Load() }

// Decided reports whether the descriptor's operation has completed: an
// undecided status is exactly "never announced" on both paths (the pair
// path returns FirstFailed without publishing; the general path cannot
// leave Execute undecided), which is what recycle routing needs.
func (d *Desc) Decided() bool { return decided(d.status.Load()) }

// Status returns the raw status word (tests).
func (d *Desc) Status() uint64 { return d.status.Load() }
