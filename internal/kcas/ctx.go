package kcas

import (
	"repro/internal/fault"
	"repro/internal/hazard"
	"repro/internal/obs"
	"repro/internal/word"
)

// retireScanAt is the retired-descriptor count that triggers a scan.
const retireScanAt = 64

// carveBatch is how many fresh descriptor slots a thread carves at once.
const carveBatch = 64

// flushRecycleAt is the minimum number of flush-parked descriptors that
// makes EndFlush pay for a hazard snapshot; smaller flushes accumulate
// across EndFlush calls so the snapshot stays amortized. With one
// engine the pair and k-word descriptors park on the same list, so one
// threshold serves both: sized above the common batch capacities (16)
// so a mid-size flush still snapshots only every other flush, and low
// enough that sparse MoveN-only traffic is not parked for long.
const flushRecycleAt = 16

// Slots names the hazard slots a Ctx publishes into. The three
// descriptor-domain slots keep the pre-unification nesting discipline:
// helping a pair operation from inside general phase 1 must not clobber
// the general descriptor's own protection.
type Slots struct {
	// PairHPD/KHPD/RDCSSHPD index the pool's descriptor hazard domain:
	// the hpd of the pair read operation (line D35), the general
	// descriptor's protection, and the RDCSS sub-descriptor protection.
	PairHPD, KHPD, RDCSSHPD int
	// PairMirror1/PairMirror2 index the node domain and receive the
	// initiator's hazard pointers when helping a pair operation (line
	// D3); KMirrorBase is the first of MaxEntries consecutive node-domain
	// mirrors for general helping.
	PairMirror1, PairMirror2 int
	KMirrorBase              int
}

// Ctx is the per-thread handle for running and helping k-word CAS
// operations of either kind. Not safe for concurrent use: one per
// registered thread.
type Ctx struct {
	tid     int
	pool    *Pool
	nodeDom *hazard.Domain
	slots   Slots

	// free is a FIFO ring of recyclable slot indexes (owned by this
	// thread): popped at freeHead, pushed at the back, compacted in place
	// when full so steady-state operation never reallocates.
	free     []uint64
	freeHead int
	retired  []retiredDesc
	// flushRet parks descriptors retired inside a batch flush
	// (core.Thread.EndBatchFlush drains it through EndFlush): they were
	// announced, but one shared hazard snapshot per flush — instead of
	// one retire cycle per operation — decides whether they can be
	// reused immediately.
	flushRet []retiredDesc
	snap     []uint64

	// flt, when non-nil, is fired at the protocol's critical windows
	// (publish/commit/recycle). Nil in production: each hook site is one
	// nil-interface check.
	flt fault.Injector

	// reg/trc, when non-nil, receive the protocol's lifecycle counters
	// and trace events (package obs). Nil (the default) disables
	// telemetry: each hook site is one nil check.
	reg *obs.Registry
	trc *obs.Tracer

	stuck stuckState // diagnostic state for stale-reference detection
}

type retiredDesc struct {
	d   *Desc
	ref uint64
}

// NewCtx creates the per-thread context over the given slot assignment.
func NewCtx(pool *Pool, nodeDom *hazard.Domain, tid int, slots Slots) *Ctx {
	return &Ctx{tid: tid, pool: pool, nodeDom: nodeDom, slots: slots}
}

// TID returns the thread id this context was created for.
func (c *Ctx) TID() int { return c.tid }

// SetFault installs the fault injector fired at this context's
// injection points; nil (the default) disables injection.
func (c *Ctx) SetFault(inj fault.Injector) { c.flt = inj }

// SetObs installs the telemetry sinks for this context's protocol
// events; nils (the default) disable them.
func (c *Ctx) SetObs(reg *obs.Registry, trc *obs.Tracer) {
	c.reg = reg
	c.trc = trc
}

// obsEvent pushes one lifecycle counter increment and trace event. The
// counter and the event kind are paired one-to-one so METRICS totals and
// drained traces describe the same protocol history.
func (c *Ctx) obsEvent(ctr obs.Counter, k obs.EventKind, peer int32, ref uint64) {
	if c.reg != nil {
		c.reg.Inc(c.tid, ctr)
	}
	if c.trc != nil {
		c.trc.Record(c.tid, k, peer, ref)
	}
}

// fire triggers injection point p if an injector is installed. The
// calling goroutine may be stalled, parked, or terminated here; every
// hook site sits at a window where peers can complete the operation.
func (c *Ctx) fire(p fault.Point) {
	if c.flt != nil {
		c.flt.Fire(p, c.tid)
	}
}

// hasFree reports whether the free ring holds a recyclable slot.
func (c *Ctx) hasFree() bool { return c.freeHead < len(c.free) }

// popFree takes the oldest free slot (FIFO, maximizing reuse distance).
func (c *Ctx) popFree() uint64 {
	idx := c.free[c.freeHead]
	c.freeHead++
	if c.freeHead == len(c.free) {
		c.free = c.free[:0]
		c.freeHead = 0
	}
	return idx
}

// pushFree returns a slot to the ring, compacting consumed head space in
// place instead of letting append grow the backing array forever.
func (c *Ctx) pushFree(idx uint64) {
	if c.freeHead > 0 && len(c.free) == cap(c.free) {
		n := copy(c.free, c.free[c.freeHead:])
		c.free = c.free[:n]
		c.freeHead = 0
	}
	c.free = append(c.free, idx)
}

// alloc takes a slot from the free ring (scanning/carving as needed),
// stamps a fresh sequence and returns the descriptor with its unmarked
// reference of the given kind. Both protocols draw from the same ring,
// so a thread's mix of pairwise and k-way traffic shares one reuse
// distance.
func (c *Ctx) alloc(kind uint64) (*Desc, uint64) {
	if !c.hasFree() {
		if len(c.retired) > 0 {
			c.scan()
		}
		if !c.hasFree() {
			c.free = c.pool.carve(c.free, carveBatch)
		}
	}
	idx := c.popFree()
	d := c.pool.At(idx)
	d.seq++
	ref := word.MakeDesc(kind, idx, d.seq)
	d.owner.Store(int32(c.tid))
	d.status.Store(statusUndecided)
	d.self.Store(ref)
	return d, ref
}

// AllocPair returns a fresh, undecided pair descriptor and its unmarked
// KindDCAS reference (lines M2–M3 of Algorithm 3). N is preset to 2 and
// both entries are zeroed; the caller fills Entries[0] (ptr1) and
// Entries[1] (ptr2) before ExecutePair.
func (c *Ctx) AllocPair() (*Desc, uint64) {
	d, ref := c.alloc(word.KindDCAS)
	d.N = 2
	d.Entries[0] = Entry{}
	d.Entries[1] = Entry{}
	return d, ref
}

// AllocK returns a fresh, undecided general descriptor and its unmarked
// KindMCAS reference. N starts at 0; the caller sets N and
// Entries[0..N) before Execute.
func (c *Ctx) AllocK() (*Desc, uint64) {
	d, ref := c.alloc(word.KindMCAS)
	d.N = 0
	return d, ref
}

// FreeDirect recycles a descriptor that was never announced (the pair
// returned FIRSTFAILED before publishing, the operation never reached
// its decision, or Execute was never called). No helper can hold a
// reference, so it skips the hazard scan.
func (c *Ctx) FreeDirect(d *Desc, ref uint64) {
	c.obsEvent(obs.KCASRecycle, obs.EvRecycle, -1, ref)
	c.fire(fault.KCASBeforeRecycle)
	d.self.Store(0)
	c.pushFree(word.DescIndex(ref))
}

// Retire recycles a descriptor that was announced: helpers may still
// reference it through hpd slots or through stray word contents, so it
// is first scrubbed from its target words, then parked until a scan
// proves it unreachable.
func (c *Ctx) Retire(d *Desc, ref uint64) {
	c.obsEvent(obs.KCASRecycle, obs.EvRecycle, -1, ref)
	c.fire(fault.KCASBeforeRecycle)
	c.scrub(d, ref)
	c.retired = append(c.retired, retiredDesc{d: d, ref: ref})
	if len(c.retired) >= retireScanAt {
		c.scan()
	}
}

// scrub removes residual references to d from its target words,
// dispatching on the protocol the descriptor ran (fixed by its
// reference kind). The operation has completed, so every revert below
// is lazy cleanup; bounded, because new strays can only come from
// helpers still in flight, which the scan's hpd check catches.
func (c *Ctx) scrub(d *Desc, ref uint64) {
	if word.DescKind(ref) == word.KindDCAS {
		c.scrubPair(d, ref)
		return
	}
	c.scrubK(d, ref)
}

// scrubPair is the pair protocol's lazy cleanup of lines D5–D8: an
// unmarked residue in ptr1 means the DCAS failed after announcing
// (revert to old1); a marked residue in ptr2 is a stray from a late ABA
// install (revert to old2; the real decision already took effect).
func (c *Ctx) scrubPair(d *Desc, ref uint64) {
	e1, e2 := &d.Entries[0], &d.Entries[1]
	for i := 0; i < 16; i++ {
		v := e1.Ptr.Load()
		if !word.SameDesc(v, ref) {
			break
		}
		if e1.Ptr.CAS(v, e1.Old) {
			c.pool.strayCleanups.Add(1)
		}
	}
	for i := 0; i < 16; i++ {
		v := e2.Ptr.Load()
		if !word.SameDesc(v, ref) {
			break
		}
		if e2.Ptr.CAS(v, e2.Old) {
			c.pool.strayCleanups.Add(1)
		}
	}
}

// scrubK is the general protocol's cleanup: residual full references
// release per phase 2, residual RDCSS sub-references revert (the
// operation is decided, so an unpromoted acquisition is void).
func (c *Ctx) scrubK(d *Desc, ref uint64) {
	st := d.status.Load()
	for i := 0; i < d.N; i++ {
		e := &d.Entries[i]
		for range [8]struct{}{} {
			v := e.Ptr.Load()
			switch {
			case word.SameDesc(v, ref) && word.DescKind(v) == word.KindMCAS:
				if st == statusSuccess {
					e.Ptr.CAS(v, e.New)
				} else {
					e.Ptr.CAS(v, e.Old)
				}
			case word.IsDesc(v) && word.DescKind(v) == word.KindRDCSS &&
				word.DescIndex(v) == word.DescIndex(ref) && word.DescSeq(v) == word.DescSeq(ref):
				e.Ptr.CAS(v, e.Old)
			default:
				goto next
			}
		}
	next:
	}
}

// residue reports whether any of rd's target words still references it
// in any form. One slot+seq pair names one logical descriptor
// regardless of the reference's kind bits, so matching on index and
// sequence covers unmarked pair announcements, marked ptr2 installs,
// full general references and RDCSS sub-references alike.
func (c *Ctx) residue(rd retiredDesc) bool {
	idx := word.DescIndex(rd.ref)
	seq := word.DescSeq(rd.ref)
	for i := 0; i < rd.d.N; i++ {
		v := rd.d.Entries[i].Ptr.Load()
		if word.IsDesc(v) && word.DescIndex(v) == idx && word.DescSeq(v) == seq {
			return true
		}
	}
	return false
}

// scan frees every retired descriptor that is (a) not protected by any
// hpd slot and (b) absent from all of its target words. The hpd
// snapshot is taken first: any helper that could still install a stray
// was in flight — and therefore visible — at snapshot time.
func (c *Ctx) scan() {
	c.snap = c.pool.dom.Snapshot(c.snap)
	kept := c.retired[:0]
	for _, rd := range c.retired {
		idx := word.DescIndex(rd.ref)
		if hazard.Protected(c.snap, idx+1) {
			kept = append(kept, rd)
			continue
		}
		if c.residue(rd) {
			c.scrub(rd.d, rd.ref)
			kept = append(kept, rd)
			continue
		}
		rd.d.self.Store(0)
		c.pushFree(idx)
	}
	c.retired = kept
}

// RetireFlush parks an announced descriptor for the batch-flush recycle
// path: it is scrubbed now (like Retire) but its reuse decision is
// deferred to EndFlush, which covers the whole flush with one hazard
// snapshot instead of running a retire cycle per operation.
func (c *Ctx) RetireFlush(d *Desc, ref uint64) {
	c.obsEvent(obs.KCASRecycle, obs.EvRecycle, -1, ref)
	c.fire(fault.KCASBeforeRecycle)
	c.scrub(d, ref)
	c.flushRet = append(c.flushRet, retiredDesc{d: d, ref: ref})
}

// EndFlush recycles the flush-parked descriptors: one snapshot of the
// hpd domain, then every descriptor that is unprotected and absent from
// all of its target words — the same conditions scan proves — goes
// straight back to the free ring, without waiting for a full retire
// cycle. Sequence-stamped references keep the early reuse ABA-safe: a
// helper holding a stale reference fails the descriptor's self check.
// Descriptors a helper may still reach fall back to the conservative
// retire cycle. Small flushes accumulate until the snapshot is paid for.
func (c *Ctx) EndFlush() {
	if len(c.flushRet) < flushRecycleAt {
		return
	}
	c.snap = c.pool.dom.Snapshot(c.snap)
	for _, rd := range c.flushRet {
		idx := word.DescIndex(rd.ref)
		if hazard.Protected(c.snap, idx+1) || c.residue(rd) {
			c.retired = append(c.retired, rd)
			continue
		}
		rd.d.self.Store(0)
		c.pushFree(idx)
	}
	c.flushRet = c.flushRet[:0]
	if len(c.retired) >= retireScanAt {
		c.scan()
	}
}

// FlushParked reports the flush-parked descriptor count (tests).
func (c *Ctx) FlushParked() int { return len(c.flushRet) }

// Flush retires everything it can; used at thread shutdown and by tests.
func (c *Ctx) Flush() {
	c.retired = append(c.retired, c.flushRet...)
	c.flushRet = c.flushRet[:0]
	for prev := -1; len(c.retired) > 0 && len(c.retired) != prev; {
		prev = len(c.retired)
		c.scan()
	}
}

// Retired reports the retired-list length (tests).
func (c *Ctx) Retired() int { return len(c.retired) }
