package fault

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNthFiresExactlyOnce(t *testing.T) {
	pl := NewPlan().Stall(KCASBeforeCommit, 0, Nth(3))
	for i := 0; i < 10; i++ {
		pl.Fire(KCASBeforeCommit, 0)
	}
	if got := pl.Fired(KCASBeforeCommit); got != 1 {
		t.Fatalf("Nth(3) fired %d times, want 1", got)
	}
	// Other points are untouched.
	if pl.FiredTotal() != 1 {
		t.Fatalf("FiredTotal = %d, want 1", pl.FiredTotal())
	}
}

func TestEveryFiresPeriodically(t *testing.T) {
	pl := NewPlan().Stall(MapMidMigration, 0, Every(4))
	for i := 0; i < 12; i++ {
		pl.Fire(MapMidMigration, 7)
	}
	if got := pl.Fired(MapMidMigration); got != 3 {
		t.Fatalf("Every(4) over 12 hits fired %d times, want 3", got)
	}
}

func TestSkipDelaysCounting(t *testing.T) {
	pl := NewPlan().Stall(KCASAfterPublish, 0, Nth(2).AfterSkip(5))
	for i := 0; i < 6; i++ {
		pl.Fire(KCASAfterPublish, 0)
	}
	if pl.Fired(KCASAfterPublish) != 0 {
		t.Fatal("fired during skip window")
	}
	pl.Fire(KCASAfterPublish, 0) // post-skip hit 2
	if pl.Fired(KCASAfterPublish) != 1 {
		t.Fatalf("fired %d, want 1 on post-skip hit 2", pl.Fired(KCASAfterPublish))
	}
}

func TestThreadFilter(t *testing.T) {
	pl := NewPlan().Stall(BatchPrepareCommit, 0, Always().OnThread(3))
	pl.Fire(BatchPrepareCommit, 1)
	pl.Fire(BatchPrepareCommit, 2)
	if pl.FiredTotal() != 0 {
		t.Fatal("fired for non-matching thread")
	}
	pl.Fire(BatchPrepareCommit, 3)
	if pl.Fired(BatchPrepareCommit) != 1 {
		t.Fatal("did not fire for matching thread")
	}
}

func TestProbIsDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) []uint64 {
		pl := NewPlan().Stall(KCASBeforeRecycle, 0, Prob(0.3, seed))
		var marks []uint64
		for i := 0; i < 200; i++ {
			before := pl.Fired(KCASBeforeRecycle)
			pl.Fire(KCASBeforeRecycle, 0)
			if pl.Fired(KCASBeforeRecycle) != before {
				marks = append(marks, uint64(i))
			}
		}
		return marks
	}
	a, b := run(42), run(42)
	if len(a) == 0 {
		t.Fatal("prob 0.3 over 200 hits never fired")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different schedules: %d vs %d fires", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at fire %d: hit %d vs %d", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules (suspicious)")
	}
}

func TestStallSleeps(t *testing.T) {
	pl := NewPlan().Stall(KCASBeforeCommit, 20*time.Millisecond, Always())
	start := time.Now()
	pl.Fire(KCASBeforeCommit, 0)
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("stall returned after %v, want >= ~20ms", d)
	}
}

func TestParkAndRelease(t *testing.T) {
	pl := NewPlan().Park(KCASAfterPublish, Always())
	done := make(chan struct{})
	go func() {
		pl.Fire(KCASAfterPublish, 0)
		close(done)
	}()
	// Wait until the goroutine is parked.
	deadline := time.After(2 * time.Second)
	for pl.Parked() == 0 {
		select {
		case <-deadline:
			t.Fatal("goroutine never parked")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	pl.Release()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Release did not unpark")
	}
	// Post-release parks pass straight through.
	pl.Fire(KCASAfterPublish, 0)
	if pl.Parked() != 0 {
		t.Fatal("parked after Release")
	}
	pl.Release() // idempotent
}

func TestKillTerminatesGoroutine(t *testing.T) {
	pl := NewPlan().Kill(BatchPrepareCommit, Nth(1))
	reached := false
	deferred := false
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() { deferred = true }()
		pl.Fire(BatchPrepareCommit, 0)
		reached = true
	}()
	wg.Wait()
	if reached {
		t.Fatal("goroutine survived kill")
	}
	if !deferred {
		t.Fatal("deferred functions did not run on kill")
	}
	if pl.Kills() != 1 {
		t.Fatalf("Kills = %d, want 1", pl.Kills())
	}
}

func TestDisabledPlanIsInert(t *testing.T) {
	pl := NewPlan()
	pl.Fire(KCASAfterPublish, 0)
	pl.Fire(MapMidMigration, 3)
	if pl.FiredTotal() != 0 || pl.Kills() != 0 {
		t.Fatal("empty plan fired")
	}
}

func TestConcurrentFire(t *testing.T) {
	pl := NewPlan().
		Stall(KCASBeforeCommit, 0, Every(3)).
		Stall(KCASBeforeCommit, 0, Prob(0.1, 9))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				pl.Fire(KCASBeforeCommit, tid)
			}
		}(g)
	}
	wg.Wait()
	// 8000 hits against Every(3): the first matching rule consumes the
	// hit, so the count is exact.
	if got := pl.Fired(KCASBeforeCommit); got < 2000 {
		t.Fatalf("concurrent Every(3) fired %d, want >= 2000", got)
	}
}

func TestParseRoundTrip(t *testing.T) {
	pl, err := Parse([]string{
		"kcas-commit:stall=2ms:every=97",
		"kcas-publish:kill:nth=1500,skip=10",
		"map-migrate:stall=1ms:prob=0.01,seed=7",
		"batch-gap:park:thread=2",
		"kcas-recycle:stall=0s",
	})
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(pl.rules) != 5 {
		t.Fatalf("parsed %d rules, want 5", len(pl.rules))
	}
	r := pl.rules[0]
	if r.point != KCASBeforeCommit || r.action != actStall || r.stall != 2*time.Millisecond || r.trig.Every != 97 {
		t.Fatalf("rule 0 mismatch: %+v", r)
	}
	r = pl.rules[1]
	if r.point != KCASAfterPublish || r.action != actKill || r.trig.Nth != 1500 || r.trig.Skip != 10 {
		t.Fatalf("rule 1 mismatch: %+v", r)
	}
	r = pl.rules[2]
	if r.point != MapMidMigration || r.trig.Prob != 0.01 || r.trig.Seed != 7 {
		t.Fatalf("rule 2 mismatch: %+v", r)
	}
	r = pl.rules[3]
	if r.point != BatchPrepareCommit || r.action != actPark || r.trig.Thread != 2 {
		t.Fatalf("rule 3 mismatch: %+v", r)
	}
	if r = pl.rules[4]; r.trig.Every != 1 {
		t.Fatalf("modless rule should fire always, got %+v", r.trig)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"kcas-commit",
		"nowhere:stall=1ms",
		"kcas-commit:explode",
		"kcas-commit:stall=banana",
		"kcas-commit:stall=-1ms",
		"kcas-commit:stall=1ms:every=0",
		"kcas-commit:stall=1ms:prob=1.5",
		"kcas-commit:stall=1ms:prob=0",
		"kcas-commit:stall=1ms:thread=-2",
		"kcas-commit:stall=1ms:nonsense=3",
		"kcas-commit:stall=1ms:every",
		"a:b:c:d",
	} {
		if _, err := Parse([]string{bad}); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestPointString(t *testing.T) {
	want := map[Point]string{
		KCASAfterPublish:   "kcas-publish",
		KCASBeforeCommit:   "kcas-commit",
		KCASBeforeRecycle:  "kcas-recycle",
		BatchPrepareCommit: "batch-gap",
		MapMidMigration:    "map-migrate",
	}
	for p, name := range want {
		if p.String() != name {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), name)
		}
	}
	if !strings.HasPrefix(Point(200).String(), "Point(") {
		t.Error("out-of-range Point should stringify defensively")
	}
}

func TestResourceError(t *testing.T) {
	e := &ResourceError{Resource: "kcas: descriptor pool", Capacity: 64, Hint: "DescCapacity"}
	if !errors.Is(e, ErrResourceExhausted) {
		t.Fatal("ResourceError does not match ErrResourceExhausted")
	}
	msg := e.Error()
	for _, frag := range []string{"descriptor pool", "capacity 64", "DescCapacity"} {
		if !strings.Contains(msg, frag) {
			t.Errorf("message %q missing %q", msg, frag)
		}
	}
	if AsResourceError(e) != e {
		t.Fatal("AsResourceError failed on a ResourceError")
	}
	if AsResourceError("some other panic") != nil {
		t.Fatal("AsResourceError matched a non-ResourceError")
	}
	if AsResourceError(nil) != nil {
		t.Fatal("AsResourceError matched nil")
	}
}
