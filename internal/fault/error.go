package fault

import (
	"errors"
	"fmt"
)

// ErrResourceExhausted is the sentinel every typed exhaustion error
// matches via errors.Is. Facade callers branch on it:
//
//	if err := th.Try(func() { stack.Push(th, v) }); errors.Is(err, fault.ErrResourceExhausted) {
//	    // back off and retry, or shed the request
//	}
var ErrResourceExhausted = errors.New("resource exhausted")

// ResourceError is the typed value the substrate's allocation paths
// panic with when a fixed-capacity resource (descriptor pool, node
// arena) is exhausted. It is thrown only from init-phase code — before
// any shared-memory publish — so recovering it (core's Thread.Try)
// leaves every shared structure consistent. It wraps
// ErrResourceExhausted for errors.Is matching.
type ResourceError struct {
	// Resource names the exhausted pool: "descriptor pool" or "arena".
	Resource string
	// Capacity is the configured limit that was hit.
	Capacity uint64
	// Hint names the Config knob that raises the limit.
	Hint string
}

// Error implements error; the message preserves the pre-typed panic
// text (capacity and config hint) so operators' log greps keep working.
func (e *ResourceError) Error() string {
	return fmt.Sprintf("%s exhausted (capacity %d); configure a larger %s", e.Resource, e.Capacity, e.Hint)
}

// Unwrap makes errors.Is(e, ErrResourceExhausted) true.
func (e *ResourceError) Unwrap() error { return ErrResourceExhausted }

// AsResourceError extracts a *ResourceError from a recovered panic
// value, or returns nil if the panic is anything else (and must be
// re-thrown by the recovering frame).
func AsResourceError(v any) *ResourceError {
	if e, ok := v.(*ResourceError); ok {
		return e
	}
	return nil
}
