// Package fault is the robustness substrate of the repository: a
// fault-injection hook registry for the descriptor protocol's critical
// windows, and the typed resource-exhaustion error the graceful-
// degradation paths unwind with.
//
// # Why inject faults here
//
// The paper's headline guarantee is that lock-free composition keeps
// the *system* making progress even when individual threads stall (or
// die) mid-operation: once a move's descriptor is published, any peer
// that encounters it helps the operation to completion, so the
// initiator's fate is irrelevant to the operation's. That claim is only
// worth anything if it survives faults injected exactly at the protocol
// windows where a stalled thread would otherwise wedge a lock-based
// design: after the descriptor is announced but before it commits,
// between a batch flush's prepare and commit phases, and mid-migration
// inside a hash-map grow. This package names those windows as Points
// and lets tests and the chaos pipeline (cmd/kvserver -fault) stall,
// park, or hard-kill the thread standing in them.
//
// # Zero overhead when disabled
//
// Production configurations leave core.Config.Fault nil; every hook
// site is a nil-interface check and nothing else. No counter is
// touched, no map consulted. The hooks cost one predictable branch.
//
// # Actions
//
//   - Stall: sleep for a fixed duration, then continue — a slow thread.
//   - Park: block until the plan's Release is called — an arbitrarily
//     delayed thread (the paper's adversary).
//   - Kill: the goroutine exits via runtime.Goexit — a thread that dies
//     mid-protocol. Its registered Thread is never reusable (hazard
//     slots stay published, its descriptor is never recycled by it);
//     peers complete the operation and the system degrades by exactly
//     one thread slot. Deferred functions still run, so servers can
//     detect the death and retire the worker.
//
// # Triggers
//
// Rules fire deterministically: on exactly the Nth matching hit, on
// every Nth hit, or probabilistically from a seeded xrand stream —
// never from global randomness, so a failing schedule replays.
package fault

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/xrand"
)

// Point names one injection site: a critical window of the descriptor
// protocol or of a composed pipeline.
type Point uint8

// The injection points. KCAS* fire inside internal/kcas for both the
// pair (DCAS) and general (CASN) protocols; Batch and Map points fire
// from the composed pipelines that sit on top.
const (
	// KCASAfterPublish fires once the operation's descriptor is visible
	// to peers — after the pair protocol's announce CAS (line D10), or
	// after the general protocol's phase-1 acquisition loop — and before
	// its decision is taken. A thread killed here leaves a published,
	// undecided descriptor that peers MUST complete.
	KCASAfterPublish Point = iota
	// KCASBeforeCommit fires after the operation's decision is fixed and
	// before the release CASes install the final values (pair line D28,
	// general phase 2). A thread killed here leaves decided-but-
	// unreleased words that peers (or the retire-time scrub) clean up.
	KCASBeforeCommit
	// KCASBeforeRecycle fires as a descriptor is handed back for reuse
	// (Retire, RetireFlush or FreeDirect). A thread killed here leaks
	// exactly one descriptor slot.
	KCASBeforeRecycle
	// BatchPrepareCommit fires between a batch flush's prepare and
	// commit loops (internal/batch), where every pending move has been
	// located but none has committed.
	BatchPrepareCommit
	// MapMidMigration fires between the per-entry MoveN relocations of a
	// hash-map bucket drain (internal/hashmap), mid-grow: the table is
	// sealed and partially migrated, and peers must be able to finish.
	MapMidMigration
	// NumPoints bounds the Point range.
	NumPoints
)

var pointNames = [NumPoints]string{
	KCASAfterPublish:   "kcas-publish",
	KCASBeforeCommit:   "kcas-commit",
	KCASBeforeRecycle:  "kcas-recycle",
	BatchPrepareCommit: "batch-gap",
	MapMidMigration:    "map-migrate",
}

// String returns the spec-grammar name of the point.
func (p Point) String() string {
	if p < NumPoints {
		return pointNames[p]
	}
	return fmt.Sprintf("Point(%d)", uint8(p))
}

// Injector is the hook interface the substrate calls at every injection
// point. core.Config.Fault carries one; nil disables injection with no
// overhead beyond the nil check. Fire may sleep, block, or terminate
// the calling goroutine (runtime.Goexit) — it must NOT panic.
type Injector interface {
	Fire(p Point, tid int)
}

// AnyThread disables a trigger's thread filter.
const AnyThread = -1

// Trigger decides, per rule, which hits of an injection point fire.
// Exactly one of Nth/Every/Prob should be set; the zero Trigger never
// fires (use Always for unconditional firing).
type Trigger struct {
	// Nth fires on exactly the nth matching hit (1-based), once.
	Nth uint64
	// Every fires on every every-th matching hit.
	Every uint64
	// Prob fires each matching hit with this probability, drawn from a
	// stream seeded with Seed (deterministic replay).
	Prob float64
	// Seed seeds the Prob stream.
	Seed uint64
	// Skip ignores the first Skip matching hits entirely (they are not
	// counted toward Nth/Every either); use it to let a warmup or
	// prefill phase pass unharmed.
	Skip uint64
	// Thread restricts the rule to one thread id; AnyThread (or 0 via
	// OnThread-less literals is NOT any — use the constructors) matches
	// all threads.
	Thread int
}

// Nth returns a trigger firing on exactly the nth matching hit.
func Nth(n uint64) Trigger { return Trigger{Nth: n, Thread: AnyThread} }

// Every returns a trigger firing on every nth matching hit.
func Every(n uint64) Trigger { return Trigger{Every: n, Thread: AnyThread} }

// Prob returns a trigger firing each hit with probability p, drawn from
// a stream seeded with seed.
func Prob(p float64, seed uint64) Trigger {
	return Trigger{Prob: p, Seed: seed, Thread: AnyThread}
}

// Always returns a trigger firing on every matching hit.
func Always() Trigger { return Every(1) }

// OnThread restricts the trigger to hits from thread tid.
func (t Trigger) OnThread(tid int) Trigger { t.Thread = tid; return t }

// AfterSkip ignores the first n matching hits.
func (t Trigger) AfterSkip(n uint64) Trigger { t.Skip = n; return t }

// actionKind discriminates a rule's action.
type actionKind uint8

const (
	actStall actionKind = iota
	actPark
	actKill
)

// rule is one (point, trigger, action) binding with its firing state.
type rule struct {
	point   Point
	trig    Trigger
	action  actionKind
	stall   time.Duration
	hits    atomic.Uint64
	rngMu   sync.Mutex
	rng     *xrand.State
	oneShot atomic.Bool // Nth rules fire at most once
}

// shouldFire evaluates the trigger against one hit from tid.
func (r *rule) shouldFire(tid int) bool {
	if r.trig.Thread != AnyThread && r.trig.Thread != tid {
		return false
	}
	h := r.hits.Add(1)
	if h <= r.trig.Skip {
		return false
	}
	h -= r.trig.Skip
	switch {
	case r.trig.Nth > 0:
		return h == r.trig.Nth && r.oneShot.CompareAndSwap(false, true)
	case r.trig.Every > 0:
		return h%r.trig.Every == 0
	case r.trig.Prob > 0:
		r.rngMu.Lock()
		x := r.rng.Float64()
		r.rngMu.Unlock()
		return x < r.trig.Prob
	}
	return false
}

// Plan is the concrete Injector: an ordered set of rules. Build one
// with NewPlan and the Stall/Park/Kill registrars (or Parse), hand it
// to core.Config.Fault, and observe it through the counters. A Plan is
// safe for concurrent Fire from every registered thread.
type Plan struct {
	rules []*rule

	parkCh   chan struct{}
	released atomic.Bool

	fired  [NumPoints]atomic.Uint64
	parked atomic.Int64
	kills  atomic.Uint64
}

// NewPlan returns an empty plan (fires nothing until rules are added).
func NewPlan() *Plan {
	return &Plan{parkCh: make(chan struct{})}
}

// Stall adds a rule sleeping d at point p when trig fires. It returns
// the plan for chaining.
func (pl *Plan) Stall(p Point, d time.Duration, trig Trigger) *Plan {
	return pl.add(&rule{point: p, trig: trig, action: actStall, stall: d})
}

// Park adds a rule blocking the hitting goroutine at point p until
// Release is called.
func (pl *Plan) Park(p Point, trig Trigger) *Plan {
	return pl.add(&rule{point: p, trig: trig, action: actPark})
}

// Kill adds a rule terminating the hitting goroutine (runtime.Goexit)
// at point p. The goroutine's deferred functions run; its registered
// Thread must not be reused.
func (pl *Plan) Kill(p Point, trig Trigger) *Plan {
	return pl.add(&rule{point: p, trig: trig, action: actKill})
}

func (pl *Plan) add(r *rule) *Plan {
	if r.trig.Prob > 0 {
		r.rng = xrand.New(r.trig.Seed)
	}
	pl.rules = append(pl.rules, r)
	return pl
}

// Fire implements Injector: evaluate every rule bound to p, in order,
// and run the first one that fires. (Running at most one action per
// hit keeps schedules interpretable: a kill is never preceded by a
// stall at the same hit.)
func (pl *Plan) Fire(p Point, tid int) {
	for _, r := range pl.rules {
		if r.point != p || !r.shouldFire(tid) {
			continue
		}
		pl.fired[p].Add(1)
		switch r.action {
		case actStall:
			time.Sleep(r.stall)
		case actPark:
			if !pl.released.Load() {
				pl.parked.Add(1)
				<-pl.parkCh
				pl.parked.Add(-1)
			}
		case actKill:
			pl.kills.Add(1)
			runtime.Goexit()
		}
		return
	}
}

// Release unblocks every parked goroutine, permanently: parks after
// Release pass straight through. Idempotent.
func (pl *Plan) Release() {
	if pl.released.CompareAndSwap(false, true) {
		close(pl.parkCh)
	}
}

// Fired reports how many actions have run at point p.
func (pl *Plan) Fired(p Point) uint64 { return pl.fired[p].Load() }

// FiredTotal reports actions run across all points.
func (pl *Plan) FiredTotal() uint64 {
	var n uint64
	for i := Point(0); i < NumPoints; i++ {
		n += pl.fired[i].Load()
	}
	return n
}

// Parked reports how many goroutines are blocked in a Park right now.
func (pl *Plan) Parked() int { return int(pl.parked.Load()) }

// Kills reports how many goroutines the plan has terminated.
func (pl *Plan) Kills() uint64 { return pl.kills.Load() }

// Parse builds a Plan from -fault style spec strings, one rule each:
//
//	<point>:<action>[:<mod>[,<mod>...]]
//
//	point:  kcas-publish | kcas-commit | kcas-recycle | batch-gap | map-migrate
//	action: stall=<duration> | park | kill
//	mod:    nth=<n> | every=<n> | prob=<p>,seed=<s> | skip=<n> | thread=<tid>
//
// A rule without nth/every/prob fires on every hit. Examples:
//
//	kcas-commit:stall=2ms:every=97
//	kcas-publish:kill:nth=1500
//	map-migrate:stall=1ms:prob=0.01,seed=7,skip=500
func Parse(specs []string) (*Plan, error) {
	pl := NewPlan()
	for _, spec := range specs {
		parts := strings.Split(spec, ":")
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("fault: bad spec %q (want point:action[:mods])", spec)
		}
		var point Point
		found := false
		for p := Point(0); p < NumPoints; p++ {
			if pointNames[p] == parts[0] {
				point, found = p, true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("fault: unknown point %q in %q", parts[0], spec)
		}
		trig := Always()
		if len(parts) == 3 {
			var err error
			if trig, err = parseMods(parts[2]); err != nil {
				return nil, fmt.Errorf("fault: %v in %q", err, spec)
			}
		}
		switch {
		case parts[1] == "park":
			pl.Park(point, trig)
		case parts[1] == "kill":
			pl.Kill(point, trig)
		case strings.HasPrefix(parts[1], "stall="):
			d, err := time.ParseDuration(strings.TrimPrefix(parts[1], "stall="))
			if err != nil || d < 0 {
				return nil, fmt.Errorf("fault: bad stall duration in %q", spec)
			}
			pl.Stall(point, d, trig)
		default:
			return nil, fmt.Errorf("fault: unknown action %q in %q", parts[1], spec)
		}
	}
	return pl, nil
}

func parseMods(s string) (Trigger, error) {
	trig := Always()
	explicit := false
	for _, mod := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(mod, "=")
		if !ok {
			return trig, fmt.Errorf("bad modifier %q", mod)
		}
		switch key {
		case "nth", "every", "skip":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil || (key != "skip" && n == 0) {
				return trig, fmt.Errorf("bad %s value %q", key, val)
			}
			switch key {
			case "nth":
				trig.Nth, trig.Every, explicit = n, 0, true
			case "every":
				trig.Every, explicit = n, true
			case "skip":
				trig.Skip = n
			}
		case "prob":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p <= 0 || p > 1 {
				return trig, fmt.Errorf("bad prob value %q", val)
			}
			trig.Prob, trig.Every, explicit = p, 0, true
		case "seed":
			sd, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return trig, fmt.Errorf("bad seed value %q", val)
			}
			trig.Seed = sd
		case "thread":
			tid, err := strconv.Atoi(val)
			if err != nil || tid < 0 {
				return trig, fmt.Errorf("bad thread value %q", val)
			}
			trig.Thread = tid
		default:
			return trig, fmt.Errorf("unknown modifier %q", key)
		}
	}
	_ = explicit
	return trig, nil
}
