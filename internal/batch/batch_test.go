package batch

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hashmap"
	"repro/internal/msqueue"
	"repro/internal/tstack"
)

func newRT(threads int) *core.Runtime {
	return core.NewRuntime(core.Config{
		MaxThreads:    threads,
		ArenaCapacity: 1 << 16,
		DescCapacity:  1 << 12,
	})
}

func TestFlushMovesInAddOrder(t *testing.T) {
	rt := newRT(2)
	th := rt.RegisterThread()
	q := msqueue.New(th)
	s := tstack.New(th)
	for i := uint64(1); i <= 4; i++ {
		q.Enqueue(th, i*10)
	}

	b := New(th, 8)
	for i := 0; i < 4; i++ {
		if !b.Add(q, s, 0, 0) {
			t.Fatalf("Add %d rejected below capacity", i)
		}
	}
	if b.Len() != 4 {
		t.Fatalf("Len=%d want 4", b.Len())
	}
	res := b.Flush()
	if len(res) != 4 {
		t.Fatalf("got %d results, want 4", len(res))
	}
	for i, r := range res {
		want := uint64(i+1) * 10 // FIFO source: Add order preserves queue order
		if !r.OK || r.Val != want {
			t.Fatalf("result %d: val=%d ok=%v want %d,true", i, r.Val, r.OK, want)
		}
	}
	if q.Len(th) != 0 || s.Len(th) != 4 {
		t.Fatalf("after flush: q=%d s=%d want 0,4", q.Len(th), s.Len(th))
	}
	if b.Len() != 0 {
		t.Fatal("flush must drain the buffer")
	}
	if th.BatchActive() {
		t.Fatal("batch mode must end with Flush")
	}
}

func TestEmptySourceFailsFastWithoutDescriptor(t *testing.T) {
	rt := newRT(2)
	th := rt.RegisterThread()
	q := msqueue.New(th)
	s := tstack.New(th)

	b := New(th, 4)
	b.Add(q, s, 0, 0) // q is empty
	res := b.Flush()
	if len(res) != 1 || res[0].OK || !res[0].FailedPrepare {
		t.Fatalf("empty-source move: %+v, want prepare-phase failure", res[0])
	}
	if _, _, ff := b.Stats(); ff != 1 {
		t.Fatalf("fastFails=%d want 1", ff)
	}
}

func TestOccupiedKeyedTargetFailsFast(t *testing.T) {
	rt := newRT(2)
	th := rt.RegisterThread()
	q := msqueue.New(th)
	m := hashmap.New(th, 8)
	q.Enqueue(th, 7)
	m.Insert(th, 42, 99) // target key occupied

	b := New(th, 4)
	b.Add(q, m, 0, 42)
	res := b.Flush()
	if res[0].OK || !res[0].FailedPrepare {
		t.Fatalf("occupied-target move: %+v, want prepare-phase failure", res[0])
	}
	if q.Len(th) != 1 {
		t.Fatal("failed move must leave the source unchanged")
	}
	if v, _ := m.Contains(th, 42); v != 99 {
		t.Fatal("failed move disturbed the target")
	}
	// A free key succeeds on the next flush.
	b.Add(q, m, 0, 43)
	if res := b.Flush(); !res[0].OK || res[0].Val != 7 {
		t.Fatalf("retry with free key: %+v", res[0])
	}
}

func TestAddReportsFullBuffer(t *testing.T) {
	rt := newRT(2)
	th := rt.RegisterThread()
	q := msqueue.New(th)
	s := tstack.New(th)

	b := New(th, 2)
	if b.Cap() != 2 {
		t.Fatalf("Cap=%d want 2", b.Cap())
	}
	if !b.Add(q, s, 0, 0) || !b.Add(q, s, 0, 0) {
		t.Fatal("Adds below capacity must succeed")
	}
	if b.Add(q, s, 0, 0) {
		t.Fatal("Add beyond capacity must report false")
	}
	b.Flush()
	if !b.Add(q, s, 0, 0) {
		t.Fatal("Add must succeed again after Flush")
	}
}

// TestFlushIsNotATransaction pins the documented semantics: a move
// failing mid-flush leaves earlier moves committed and later moves
// attempted — no rollback.
func TestFlushIsNotATransaction(t *testing.T) {
	rt := newRT(2)
	th := rt.RegisterThread()
	q := msqueue.New(th)
	m := hashmap.New(th, 8)
	s := tstack.New(th)
	q.Enqueue(th, 1)
	q.Enqueue(th, 2)
	m.Insert(th, 5, 50) // middle move's target key: occupied → it fails

	b := New(th, 4)
	b.Add(q, s, 0, 0) // commits
	b.Add(q, m, 0, 5) // fails (duplicate key)
	b.Add(q, s, 0, 0) // still attempted, commits
	res := b.Flush()
	if !res[0].OK || res[1].OK || !res[2].OK {
		t.Fatalf("want ok,fail,ok; got %v,%v,%v", res[0].OK, res[1].OK, res[2].OK)
	}
	if s.Len(th) != 2 || q.Len(th) != 0 {
		t.Fatalf("s=%d q=%d want 2,0", s.Len(th), q.Len(th))
	}
}

// TestSteadyStateFlushDoesNotAllocate is the amortization claim in its
// sharpest form: once warm, a full Add+Flush cycle runs without heap
// allocation (descriptors recycle through the flush path, the results
// slice is reused).
func TestSteadyStateFlushDoesNotAllocate(t *testing.T) {
	rt := newRT(2)
	th := rt.RegisterThread()
	q := msqueue.New(th)
	s := tstack.New(th)
	const B = 16
	for i := uint64(0); i < B; i++ {
		q.Enqueue(th, i)
	}
	b := New(th, B)
	cycle := func() {
		for i := 0; i < B; i++ {
			b.Add(q, s, 0, 0)
		}
		for _, r := range b.Flush() {
			if !r.OK {
				t.Fatal("warm flush move failed")
			}
		}
		for i := 0; i < B; i++ {
			b.Add(s, q, 0, 0)
		}
		for _, r := range b.Flush() {
			if !r.OK {
				t.Fatal("warm flush move failed")
			}
		}
	}
	for i := 0; i < 64; i++ { // warm descriptor pools and retire lists
		cycle()
	}
	if avg := testing.AllocsPerRun(100, cycle); avg > 0.5 {
		t.Fatalf("steady-state flush allocates %.2f objects per cycle, want ~0", avg)
	}
}

// TestFlushDescriptorsRecycleEagerly: with no helpers around, every
// announced descriptor of a flush must come back through the flush
// recycle path rather than parking in the retire list, so the same few
// slots serve arbitrarily many flushes.
func TestFlushDescriptorsRecycleEagerly(t *testing.T) {
	rt := newRT(2)
	th := rt.RegisterThread()
	q := msqueue.New(th)
	s := tstack.New(th)
	const B = 32
	for i := uint64(0); i < B; i++ {
		q.Enqueue(th, i)
	}
	b := New(th, B)
	for round := 0; round < 100; round++ {
		src, dst := core.Remover(q), core.Inserter(s)
		if round&1 == 1 {
			src, dst = s, q
		}
		for i := 0; i < B; i++ {
			b.Add(src, dst, 0, 0)
		}
		for _, r := range b.Flush() {
			if !r.OK {
				t.Fatalf("round %d: move failed", round)
			}
		}
	}
	// 100 rounds × 32 moves = 3200 descriptors consumed; with eager
	// recycling the pool's bump allocator must stay at its first carve.
	if got := rt.KCASPool().Carved(); got > 64 {
		t.Fatalf("flush recycling ineffective: %d descriptor slots carved, want one batch (64)", got)
	}
}

// panickySource implements core.RemovePreparer with a prepare hook
// that panics, modeling a container failure mid-flush.
type panickySource struct{ q *msqueue.Queue }

func (p *panickySource) Remove(t *core.Thread, key uint64) (uint64, bool) {
	return p.q.Remove(t, key)
}
func (p *panickySource) PrepareRemove(t *core.Thread, _ uint64) bool {
	panic("prepare boom")
}

// TestFlushReleasesBatchModeOnPanic: a panic escaping Flush must not
// leave the thread in batch-flush mode (which would silently disable
// hazard clears forever); after recovering, the thread and buffer stay
// usable.
func TestFlushReleasesBatchModeOnPanic(t *testing.T) {
	rt := newRT(2)
	th := rt.RegisterThread()
	q := msqueue.New(th)
	s := tstack.New(th)
	q.Enqueue(th, 1)
	bad := &panickySource{q: q}

	b := New(th, 4)
	b.Add(bad, s, 0, 0)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("prepare panic must propagate")
			}
		}()
		b.Flush()
	}()
	if th.BatchActive() {
		t.Fatal("panic left the thread in batch-flush mode")
	}
	// The thread and buffer still work.
	b.Add(q, s, 0, 0)
	if res := b.Flush(); len(res) != 1 || !res[0].OK || res[0].Val != 1 {
		t.Fatalf("post-panic flush: %+v", res)
	}
}
