// Package batch implements the batched move pipeline: a per-thread
// MoveBuffer that collects pending moves and flushes them through one
// prepare → commit → recycle pipeline, amortizing the fixed per-move
// costs the paper's composition pays — descriptor allocation and
// retirement, and hazard-pointer publication traffic.
//
// # Amortization, NOT a transaction
//
// A flush is a throughput optimization, not an atomicity extension:
// every move in the buffer remains its own individually-linearizable
// operation, exactly as if it had been issued by a lone Move call. The
// moves of one flush commit one after another; a concurrent observer
// can see any prefix of them applied. Nothing rolls back: a failed move
// in the middle of a flush leaves the earlier moves committed and the
// later ones still attempted. Callers that need all-or-nothing
// semantics across objects want MoveN (one atomic n-object move), not a
// MoveBuffer.
//
// What the flush does amortize:
//
//   - Descriptors come from the thread's recycling pool and, once a
//     move completes, are recycled under one shared hazard snapshot per
//     flush (dcas/mcas EndFlush) instead of one retire cycle per move;
//     sequence-stamped references make the early reuse ABA-safe without
//     waiting for a full hazard retire cycle.
//   - Hazard pointers stay published across the flush: the per-move
//     clear/republish traffic collapses to one clear of the container
//     slots in EndBatchFlush, while each commit overwrites only the
//     slots it needs.
//   - The prepare phase runs every move's locate step (find the source
//     element, check or clear the insert position) before any commit,
//     so the commit loop runs back to back on warm paths — and moves
//     whose source was observed empty (or whose keyed target was
//     observed occupied) fail fast without ever allocating a
//     descriptor. A prepare-phase failure is still a correct move
//     failure: the observation it is based on (container-validated
//     emptiness or key absence/presence) falls inside the move's
//     interval, so the failed move linearizes there.
//
// A MoveBuffer belongs to one thread, like the *core.Thread it wraps.
package batch

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/fault"
)

// DefaultCapacity is the buffer capacity selected by New when the
// caller passes 0. Flushes of this size keep descriptor recycling and
// hazard amortization effective without holding reclamation back for
// long.
const DefaultCapacity = 16

// MoveResult reports the outcome of one buffered move after a flush.
type MoveResult struct {
	// Src/Dst/SKey/TKey echo the Add call.
	Src  core.Remover
	Dst  core.Inserter
	SKey uint64
	TKey uint64
	// Val is the moved value when OK; OK mirrors Move's second return.
	Val uint64
	OK  bool
	// FailedPrepare marks a move that failed in the prepare phase (the
	// source was observed empty / without the key, or the keyed target
	// observed occupied) and therefore never reached a commit DCAS.
	FailedPrepare bool
}

// MoveBuffer collects up to Cap pending moves and flushes them through
// the batched pipeline. Not safe for concurrent use: one per thread,
// like the Thread it wraps.
type MoveBuffer struct {
	t *core.Thread
	// results doubles as the pending list: Add appends the request
	// fields, Flush fills in the outcome in place. preps runs parallel
	// to it, carrying each entry's narrowed prepare interfaces.
	results []MoveResult
	preps   []prepPair

	// memo caches the two most recent (src, dst) pairs with their
	// narrowed prepare interfaces and same-object validation: workloads
	// overwhelmingly batch moves back and forth between two containers,
	// and four interface compares beat re-running the itab lookups and
	// Move's same-object check on every Add.
	memo [2]pairMemo

	// Lifetime counters. Written only by the owning thread, but atomic
	// so the metrics registry's snapshot funcs may read them from any
	// goroutine.
	flushes   atomic.Uint64
	moves     atomic.Uint64
	fastFails atomic.Uint64
}

// prepPair carries one pending move's optional prepare hooks (nil when
// the container does not implement them).
type prepPair struct {
	rp core.RemovePreparer
	ip core.InsertPreparer
}

// pairMemo is one validated (src, dst) pair and its prepare hooks.
type pairMemo struct {
	src core.Remover
	dst core.Inserter
	p   prepPair
}

// New creates a buffer for t holding up to capacity moves (<= 0 selects
// DefaultCapacity).
func New(t *core.Thread, capacity int) *MoveBuffer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	b := &MoveBuffer{
		t:       t,
		results: make([]MoveResult, 0, capacity),
		preps:   make([]prepPair, 0, capacity),
	}
	if reg := t.Runtime().Obs().Metrics(); reg != nil {
		// Every buffer registers under the same names; the registry sums
		// them, matching what summing the buffers' Stats would report.
		reg.AddFunc("batch_flushes_total", b.flushes.Load)
		reg.AddFunc("batch_moves_total", b.moves.Load)
		reg.AddFunc("batch_fastfails_total", b.fastFails.Load)
	}
	return b
}

// Thread returns the owning thread.
func (b *MoveBuffer) Thread() *core.Thread { return b.t }

// Len reports the number of buffered moves.
func (b *MoveBuffer) Len() int { return len(b.results) }

// Cap reports the buffer capacity.
func (b *MoveBuffer) Cap() int { return cap(b.results) }

// Add buffers one move from src to dst (keys as in core.Thread.Move).
// It reports false when the buffer is full — the caller must Flush
// first. Nothing touches the containers until Flush.
func (b *MoveBuffer) Add(src core.Remover, dst core.Inserter, skey, tkey uint64) bool {
	if len(b.results) == cap(b.results) {
		return false
	}
	if src == nil || dst == nil {
		panic("batch: Add requires non-nil source and target")
	}
	// Memo lookup: a hit means this exact (src, dst) pair already passed
	// Move's same-object validation and had its prepare interfaces
	// narrowed — the commits go through MoveUnchecked on that basis.
	var p prepPair
	switch {
	case src == b.memo[0].src && dst == b.memo[0].dst:
		p = b.memo[0].p
	case src == b.memo[1].src && dst == b.memo[1].dst:
		p = b.memo[1].p
		b.memo[0], b.memo[1] = b.memo[1], b.memo[0]
	default:
		if core.SameObject(src, dst) {
			panic("batch: a move requires two distinct objects")
		}
		p.rp, _ = src.(core.RemovePreparer)
		p.ip, _ = dst.(core.InsertPreparer)
		b.memo[1] = b.memo[0]
		b.memo[0] = pairMemo{src: src, dst: dst, p: p}
	}
	b.results = append(b.results, MoveResult{Src: src, Dst: dst, SKey: skey, TKey: tkey})
	b.preps = append(b.preps, p)
	return true
}

// Flush runs the pipeline over the buffered moves and returns one
// result per Add, in Add order. Each move commits (or fails)
// individually — see the package comment: a flush amortizes fixed
// costs, it is not a transaction. The returned slice (and the buffer
// capacity it occupies) is reused by the next Add/Flush cycle; callers
// that keep results across flushes must copy.
func (b *MoveBuffer) Flush() []MoveResult {
	if len(b.results) == 0 {
		return b.results
	}
	t := b.t

	t.BeginBatchFlush()
	done := false
	// A panic out of a prepare hook or a commit must not leave the
	// thread stuck in batch-flush mode (hazard clears silently disabled
	// forever); release the flush state on the way out and drop the
	// buffered entries — the panicking entry would only re-fire on a
	// retry, and the caller never received this flush's results.
	defer func() {
		if !done {
			t.AbortBatchFlush()
			b.results = b.results[:0]
			b.preps = b.preps[:0]
		}
	}()
	// Prepare: locate every source element and check/clear every insert
	// position before the first commit, so the commit loop runs back to
	// back. A false answer is a container-validated observation inside
	// the move's interval: the move fails here, without a descriptor.
	for i := range b.results {
		r := &b.results[i]
		p := b.preps[i]
		if p.rp != nil && !p.rp.PrepareRemove(t, r.SKey) {
			r.FailedPrepare = true
			continue
		}
		if p.ip != nil && !p.ip.PrepareInsert(t, r.TKey) {
			r.FailedPrepare = true
		}
	}
	// Between prepare and commit every pending move has been located but
	// none has committed — the widest window in which a stalled or killed
	// flusher holds only revocable state (prepares are observations, not
	// publications; the AbortBatchFlush defer restores the thread).
	t.Fault(fault.BatchPrepareCommit)
	// Commit: each move is its own linearizable operation; descriptors
	// recycle through the flush path, hazard clears stay deferred.
	for i := range b.results {
		r := &b.results[i]
		if r.FailedPrepare {
			b.fastFails.Add(1)
			continue
		}
		r.Val, r.OK = t.MoveUnchecked(r.Src, r.Dst, r.SKey, r.TKey)
	}
	t.EndBatchFlush()
	done = true

	b.flushes.Add(1)
	b.moves.Add(uint64(len(b.results)))
	// Hand the filled results to the caller; the next Add cycle starts
	// over at the front of the same backing array.
	out := b.results
	b.results = b.results[:0]
	b.preps = b.preps[:0]
	return out
}

// Stats reports lifetime counters: flushes run, moves flushed, and
// moves that failed fast in the prepare phase.
func (b *MoveBuffer) Stats() (flushes, moves, fastFails uint64) {
	return b.flushes.Load(), b.moves.Load(), b.fastFails.Load()
}
