package blocking

// This file adds the lock-striped blocking hash map, extending the
// paper's lockfree-vs-blocking comparison (Figures 2–4) to the keyed
// map-churn workload: the fair baseline for the sharded lock-free map
// is not one global lock but a stripe of TTAS locks, one per shard,
// with keyed cross-map moves taking exactly the two shard locks they
// touch (in global order). As §7 notes for the whole blocking family,
// such a move cannot be combined with non-blocking operations — every
// operation here goes through its shard's lock — and there is no
// blocking analogue of the MoveN fan-out (three locks would nest; the
// harness's blocking cells fall back to plain keyed moves).

import (
	"repro/internal/core"
	"repro/internal/pad"
	"repro/internal/spin"
	"repro/internal/word"
)

// DefaultMapGrowLoad mirrors the lock-free map's default mean
// entries-per-bucket threshold.
const DefaultMapGrowLoad = 6

// Map is a lock-striped blocking hash map from uint64 keys to uint64
// values: a power-of-two number of shards, each a TTAS lock guarding a
// bucket array of singly linked arena nodes. Shards rehash (double
// their buckets) under their own lock when the load threshold trips.
type Map struct {
	id        uint64
	shards    []mapShard
	shardMask uint64
	shardBits uint
	growLoad  int
}

// mapShard is one stripe: its lock, then its table.
type mapShard struct {
	mu spin.TTAS
	_  pad.Line
	// buckets holds node refs (word.Nil = empty chain); guarded by mu.
	buckets []uint64
	mask    uint64
	count   int
}

// NewMap creates a blocking map with the given shard count (rounded up
// to a power of two), initial buckets per shard (likewise), and mean
// entries-per-bucket grow threshold (<= 0 selects DefaultMapGrowLoad).
func NewMap(t *core.Thread, shards, bucketsPerShard, growLoad int) *Map {
	ns := pad.CeilPow2(shards)
	if growLoad <= 0 {
		growLoad = DefaultMapGrowLoad
	}
	m := &Map{
		id:        t.Runtime().NextObjectID(),
		shards:    make([]mapShard, ns),
		shardMask: uint64(ns - 1),
		growLoad:  growLoad,
	}
	for ns > 1 {
		m.shardBits++
		ns >>= 1
	}
	per := pad.CeilPow2(bucketsPerShard)
	for i := range m.shards {
		m.shards[i].buckets = make([]uint64, per)
		m.shards[i].mask = uint64(per - 1)
		for j := range m.shards[i].buckets {
			m.shards[i].buckets[j] = word.Nil
		}
	}
	return m
}

// ObjectID implements the blocking Object identity.
func (m *Map) ObjectID() uint64 { return m.id }

// hash is the same splitmix64 finalizer the lock-free map uses, so the
// two spread keys identically over shards and buckets.
func mapHash(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xbf58476d1ce4e5b9
	k ^= k >> 27
	k *= 0x94d049bb133111eb
	k ^= k >> 31
	return k
}

func (m *Map) shard(h uint64) *mapShard { return &m.shards[h&m.shardMask] }

func (s *mapShard) lock(t *core.Thread) {
	if bo := t.Backoff(); bo != nil {
		s.mu.LockBackoff(bo)
		return
	}
	s.mu.Lock()
}

// bucketIdx selects the shard-local bucket for hash h.
func (m *Map) bucketIdx(s *mapShard, h uint64) uint64 {
	return (h >> m.shardBits) & s.mask
}

// insertShardLocked adds (key, val) with the shard lock held; false on
// duplicate.
func (m *Map) insertShardLocked(t *core.Thread, s *mapShard, h, key, val uint64) bool {
	idx := m.bucketIdx(s, h)
	for cur := s.buckets[idx]; cur != word.Nil; cur = t.Node(cur).Next.Load() {
		if t.Node(cur).Key == key {
			return false
		}
	}
	ref := t.AllocNode()
	n := t.Node(ref)
	n.Key, n.Val = key, val
	n.Next.Store(s.buckets[idx])
	s.buckets[idx] = ref
	s.count++
	if s.count > len(s.buckets)*m.growLoad {
		m.rehashLocked(t, s)
	}
	return true
}

// removeLocked deletes key with the shard lock held.
func (m *Map) removeShardLocked(t *core.Thread, s *mapShard, h, key uint64) (uint64, bool) {
	idx := m.bucketIdx(s, h)
	cur := s.buckets[idx]
	if cur == word.Nil {
		return 0, false
	}
	if n := t.Node(cur); n.Key == key {
		s.buckets[idx] = n.Next.Load()
		val := n.Val
		t.FreeNodeDirect(cur)
		s.count--
		return val, true
	}
	for prev := cur; ; prev = cur {
		cur = t.Node(prev).Next.Load()
		if cur == word.Nil {
			return 0, false
		}
		if n := t.Node(cur); n.Key == key {
			t.Node(prev).Next.Store(n.Next.Load())
			val := n.Val
			t.FreeNodeDirect(cur)
			s.count--
			return val, true
		}
	}
}

// rehashLocked doubles the shard's bucket array and redistributes its
// chains; mu held. The shard mask changes but the shard selection bits
// do not, so entries stay in their stripe.
func (m *Map) rehashLocked(t *core.Thread, s *mapShard) {
	old := s.buckets
	nb := make([]uint64, len(old)*2)
	for i := range nb {
		nb[i] = word.Nil
	}
	s.buckets = nb
	s.mask = uint64(len(nb) - 1)
	for _, head := range old {
		for cur := head; cur != word.Nil; {
			n := t.Node(cur)
			next := n.Next.Load()
			idx := m.bucketIdx(s, mapHash(n.Key))
			n.Next.Store(s.buckets[idx])
			s.buckets[idx] = cur
			cur = next
		}
	}
}

// Insert adds (key, val); false when the key exists.
func (m *Map) Insert(t *core.Thread, key, val uint64) bool {
	h := mapHash(key)
	s := m.shard(h)
	s.lock(t)
	ok := m.insertShardLocked(t, s, h, key, val)
	s.mu.Unlock()
	t.BackoffReset()
	return ok
}

// Remove deletes key and returns its value.
func (m *Map) Remove(t *core.Thread, key uint64) (uint64, bool) {
	h := mapHash(key)
	s := m.shard(h)
	s.lock(t)
	v, ok := m.removeShardLocked(t, s, h, key)
	s.mu.Unlock()
	t.BackoffReset()
	return v, ok
}

// Contains reports presence and value.
func (m *Map) Contains(t *core.Thread, key uint64) (uint64, bool) {
	h := mapHash(key)
	s := m.shard(h)
	s.lock(t)
	idx := m.bucketIdx(s, h)
	for cur := s.buckets[idx]; cur != word.Nil; cur = t.Node(cur).Next.Load() {
		if n := t.Node(cur); n.Key == key {
			v := n.Val
			s.mu.Unlock()
			return v, true
		}
	}
	s.mu.Unlock()
	return 0, false
}

// Len reports the element count (momentary under concurrency).
func (m *Map) Len(t *core.Thread) int {
	n := 0
	for i := range m.shards {
		s := &m.shards[i]
		s.lock(t)
		n += s.count
		s.mu.Unlock()
	}
	return n
}

// Buckets reports the total bucket count across shards (tests).
func (m *Map) Buckets() int {
	n := 0
	for i := range m.shards {
		n += len(m.shards[i].buckets)
	}
	return n
}

// MoveMap moves key skey from src to key tkey in dst as one critical
// section over exactly the two shard locks involved, ordered globally
// by (ObjectID, shard index) to avoid deadlock — the lock-striped
// analogue of the package-level Move. It returns the moved value and
// whether the move happened (false: source key absent or target key
// occupied; both maps unchanged).
func (m *Map) MoveMap(t *core.Thread, dst *Map, skey, tkey uint64) (uint64, bool) {
	if m == dst && m.shard(mapHash(skey)) == m.shard(mapHash(tkey)) {
		// Same stripe: one lock suffices (and double-locking a TTAS
		// self-deadlocks).
		h1, h2 := mapHash(skey), mapHash(tkey)
		s := m.shard(h1)
		s.lock(t)
		defer s.mu.Unlock()
		v, ok := m.removeShardLocked(t, s, h1, skey)
		if !ok {
			return 0, false
		}
		if !m.insertShardLocked(t, s, h2, tkey, v) {
			m.insertShardLocked(t, s, h1, skey, v) // undo; unobserved
			return 0, false
		}
		return v, true
	}
	sh, th2 := mapHash(skey), mapHash(tkey)
	ss, ts := m.shard(sh), dst.shard(th2)
	first, second := ss, ts
	// Global order: object id, then stripe index within the object.
	if m.id > dst.id || (m.id == dst.id && sh&m.shardMask > th2&dst.shardMask) {
		first, second = ts, ss
	}
	first.lock(t)
	second.lock(t)
	defer first.mu.Unlock()
	defer second.mu.Unlock()
	v, ok := m.removeShardLocked(t, ss, sh, skey)
	if !ok {
		return 0, false
	}
	if !dst.insertShardLocked(t, ts, th2, tkey, v) {
		m.insertShardLocked(t, ss, sh, skey, v) // undo; unobserved
		return 0, false
	}
	return v, true
}

// --- package-level Move compatibility ---------------------------------------
//
// The generic blocking.Move acquires whole objects; for the striped
// map that means every shard lock in index order. It exists so the map
// can stand in anywhere a Source/Target is expected (the stress
// harness); the measured map cells use MoveMap's two-lock path.

func (m *Map) acquire(t *core.Thread) {
	for i := range m.shards {
		m.shards[i].lock(t)
	}
}

func (m *Map) release() {
	for i := len(m.shards) - 1; i >= 0; i-- {
		m.shards[i].mu.Unlock()
	}
}

func (m *Map) insertLocked(t *core.Thread, key, val uint64) bool {
	h := mapHash(key)
	return m.insertShardLocked(t, m.shard(h), h, key, val)
}

func (m *Map) removeLocked(t *core.Thread, key uint64) (uint64, bool) {
	h := mapHash(key)
	return m.removeShardLocked(t, m.shard(h), h, key)
}

var (
	_ Source = (*Map)(nil)
	_ Target = (*Map)(nil)
)
