package blocking

import (
	"sync"
	"testing"

	"repro/internal/core"
)

func TestMapBasics(t *testing.T) {
	rt := newRT(1)
	th := rt.RegisterThread()
	m := NewMap(th, 4, 2, 0)
	for i := uint64(1); i <= 100; i++ {
		if !m.Insert(th, i, i*10) {
			t.Fatalf("insert %d failed", i)
		}
	}
	if m.Insert(th, 7, 1) {
		t.Fatal("duplicate insert succeeded")
	}
	if m.Len(th) != 100 {
		t.Fatalf("len=%d", m.Len(th))
	}
	if v, ok := m.Contains(th, 42); !ok || v != 420 {
		t.Fatalf("contains(42): %d %v", v, ok)
	}
	if v, ok := m.Remove(th, 42); !ok || v != 420 {
		t.Fatalf("remove(42): %d %v", v, ok)
	}
	if _, ok := m.Contains(th, 42); ok {
		t.Fatal("removed key still present")
	}
	if _, ok := m.Remove(th, 42); ok {
		t.Fatal("double remove succeeded")
	}
	if m.Len(th) != 99 {
		t.Fatalf("len=%d", m.Len(th))
	}
}

// TestMapRehash: passing the load threshold doubles the shard's
// buckets and every entry survives.
func TestMapRehash(t *testing.T) {
	rt := newRT(1)
	th := rt.RegisterThread()
	m := NewMap(th, 2, 2, 2)
	before := m.Buckets()
	for i := uint64(1); i <= 256; i++ {
		m.Insert(th, i, i)
	}
	if m.Buckets() <= before {
		t.Fatalf("buckets did not grow: %d -> %d", before, m.Buckets())
	}
	for i := uint64(1); i <= 256; i++ {
		if v, ok := m.Contains(th, i); !ok || v != i {
			t.Fatalf("key %d lost after rehash: %d %v", i, v, ok)
		}
	}
}

// TestMapMoveMap: the two-lock keyed move conserves values in both
// directions and rolls back on an occupied target.
func TestMapMoveMap(t *testing.T) {
	rt := newRT(1)
	th := rt.RegisterThread()
	a := NewMap(th, 4, 2, 0)
	b := NewMap(th, 4, 2, 0)
	a.Insert(th, 1, 11)
	b.Insert(th, 2, 22)
	if v, ok := a.MoveMap(th, b, 1, 1); !ok || v != 11 {
		t.Fatalf("move a→b: %d %v", v, ok)
	}
	if _, ok := a.Contains(th, 1); ok {
		t.Fatal("moved key still in source")
	}
	if v, ok := b.Contains(th, 1); !ok || v != 11 {
		t.Fatalf("moved key missing in target: %d %v", v, ok)
	}
	// Occupied target: move must fail and leave both unchanged.
	a.Insert(th, 3, 33)
	if _, ok := a.MoveMap(th, b, 3, 2); ok {
		t.Fatal("move onto occupied key succeeded")
	}
	if v, ok := a.Contains(th, 3); !ok || v != 33 {
		t.Fatalf("failed move lost the source entry: %d %v", v, ok)
	}
	// Same-map move (distinct or same stripe both legal).
	if v, ok := a.MoveMap(th, a, 3, 4); !ok || v != 33 {
		t.Fatalf("same-map move: %d %v", v, ok)
	}
	if _, ok := a.Contains(th, 3); ok {
		t.Fatal("same-map move left the source key")
	}
	if v, ok := a.Contains(th, 4); !ok || v != 33 {
		t.Fatalf("same-map move target: %d %v", v, ok)
	}
}

// TestMapConcurrentConservation races keyed moves and churn between
// two striped maps and audits that every token survives exactly once.
func TestMapConcurrentConservation(t *testing.T) {
	const workers = 4
	const tokens = 64
	const opsPer = 3000
	rt := newRT(workers + 1)
	setup := rt.RegisterThread()
	a := NewMap(setup, 4, 2, 2)
	b := NewMap(setup, 4, 2, 2)
	for i := uint64(1); i <= tokens; i++ {
		if i%2 == 0 {
			a.Insert(setup, i, i)
		} else {
			b.Insert(setup, i, i)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		th := rt.RegisterThread()
		go func(w int, th *core.Thread) {
			defer wg.Done()
			rng := uint64(w+1) * 0x9e3779b97f4a7c15
			next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
			for i := 0; i < opsPer; i++ {
				tok := next()%tokens + 1
				src, dst := a, b
				if next()&1 == 0 {
					src, dst = b, a
				}
				if next()&1 == 0 {
					src.MoveMap(th, dst, tok, tok)
				} else if v, ok := src.Remove(th, tok); ok {
					for !src.Insert(th, tok, v) && !dst.Insert(th, tok, v) {
					}
				}
			}
		}(w, th)
	}
	wg.Wait()

	seen := make(map[uint64]int)
	for k := uint64(1); k <= tokens; k++ {
		if v, ok := a.Remove(setup, k); ok {
			seen[v]++
		}
		if v, ok := b.Remove(setup, k); ok {
			seen[v]++
		}
	}
	if len(seen) != tokens {
		t.Fatalf("%d distinct tokens, want %d", len(seen), tokens)
	}
	for tok, n := range seen {
		if n != 1 {
			t.Fatalf("token %d seen %d times", tok, n)
		}
	}
}

// TestMapGenericBlockingMove: the whole-object acquire path composes
// with the package-level Move against a queue.
func TestMapGenericBlockingMove(t *testing.T) {
	rt := newRT(1)
	th := rt.RegisterThread()
	m := NewMap(th, 2, 2, 0)
	q := NewQueue(th)
	m.Insert(th, 9, 99)
	if v, ok := Move(th, m, q, 9, 0); !ok || v != 99 {
		t.Fatalf("map→queue move: %d %v", v, ok)
	}
	if v, ok := Move(th, q, m, 0, 9); !ok || v != 99 {
		t.Fatalf("queue→map move: %d %v", v, ok)
	}
	if v, ok := m.Contains(th, 9); !ok || v != 99 {
		t.Fatalf("round trip lost the entry: %d %v", v, ok)
	}
}
