// Package blocking provides the paper's baseline: "simple blocking
// implementations using test-test-and-set to implement a lock" (§6),
// with the same memory manager as the lock-free objects, plus a
// composed blocking move that holds both objects' locks.
//
// The blocking move acquires locks in ObjectID order, the standard
// deadlock-avoidance discipline the paper's composition would need;
// single-object operations take a single lock. As §7 notes, a blocking
// move cannot be combined with non-blocking insert/remove operations —
// every operation here must go through the lock.
package blocking

import (
	"repro/internal/core"
	"repro/internal/pad"
	"repro/internal/spin"
	"repro/internal/word"
)

// Object is the common surface of the blocking containers.
type Object interface {
	ObjectID() uint64
	acquire(t *core.Thread)
	release()
}

// Source is a blocking container supporting removal under its lock.
type Source interface {
	Object
	removeLocked(t *core.Thread, key uint64) (uint64, bool)
}

// Target is a blocking container supporting insertion under its lock.
type Target interface {
	Object
	insertLocked(t *core.Thread, key, val uint64) bool
}

// lockBase embeds the TTAS lock and identity shared by the containers.
type lockBase struct {
	mu spin.TTAS
	_  pad.Line
	id uint64
}

func (b *lockBase) ObjectID() uint64 { return b.id }

func (b *lockBase) acquire(t *core.Thread) {
	if bo := t.Backoff(); bo != nil {
		b.mu.LockBackoff(bo)
		return
	}
	b.mu.Lock()
}

func (b *lockBase) release() { b.mu.Unlock() }

// Move removes an element from src and inserts it into dst as one
// critical section over both locks, ordered by ObjectID to avoid
// deadlock. It returns the moved value and whether the move happened.
func Move(t *core.Thread, src Source, dst Target, skey, tkey uint64) (uint64, bool) {
	if src.ObjectID() == dst.ObjectID() {
		panic("blocking: Move requires two distinct objects")
	}
	first, second := Object(src), Object(dst)
	if first.ObjectID() > second.ObjectID() {
		first, second = second, first
	}
	first.acquire(t)
	second.acquire(t)
	val, ok := src.removeLocked(t, skey)
	if ok {
		if !dst.insertLocked(t, tkey, val) {
			// Undo the removal; with both locks held nobody observed it.
			// All blocking containers here accept re-insertion.
			src.(Target).insertLocked(t, skey, val)
			ok = false
		}
	}
	second.release()
	first.release()
	return val, ok
}

// --- Queue -----------------------------------------------------------------

// Queue is a lock-based FIFO queue (singly linked list with sentinel,
// one TTAS lock).
type Queue struct {
	lockBase
	head uint64 // sentinel node ref
	tail uint64
}

// NewQueue creates an empty blocking queue.
func NewQueue(t *core.Thread) *Queue {
	q := &Queue{}
	q.id = t.Runtime().NextObjectID()
	s := t.AllocNode()
	q.head, q.tail = s, s
	return q
}

// Enqueue appends val.
func (q *Queue) Enqueue(t *core.Thread, val uint64) bool {
	ref := t.AllocNode()
	n := t.Node(ref)
	n.Val = val
	q.acquire(t)
	t.Node(q.tail).Next.Store(ref)
	q.tail = ref
	q.release()
	t.BackoffReset()
	return true
}

// Dequeue removes the oldest value.
func (q *Queue) Dequeue(t *core.Thread) (uint64, bool) {
	q.acquire(t)
	first := t.Node(q.head).Next.Load()
	if first == word.Nil {
		q.release()
		return 0, false
	}
	val := t.Node(first).Val
	old := q.head
	q.head = first
	q.release()
	t.FreeNodeDirect(old)
	t.BackoffReset()
	return val, true
}

func (q *Queue) insertLocked(t *core.Thread, _ uint64, val uint64) bool {
	ref := t.AllocNode()
	n := t.Node(ref)
	n.Val = val
	t.Node(q.tail).Next.Store(ref)
	q.tail = ref
	return true
}

func (q *Queue) removeLocked(t *core.Thread, _ uint64) (uint64, bool) {
	first := t.Node(q.head).Next.Load()
	if first == word.Nil {
		return 0, false
	}
	val := t.Node(first).Val
	old := q.head
	q.head = first
	t.FreeNodeDirect(old)
	return val, true
}

// Len counts elements (quiescent use).
func (q *Queue) Len(t *core.Thread) int {
	n := 0
	q.acquire(t)
	for cur := t.Node(q.head).Next.Load(); cur != word.Nil; cur = t.Node(cur).Next.Load() {
		n++
	}
	q.release()
	return n
}

// --- Stack -----------------------------------------------------------------

// Stack is a lock-based LIFO stack (singly linked list, one TTAS lock).
type Stack struct {
	lockBase
	top uint64
}

// NewStack creates an empty blocking stack.
func NewStack(t *core.Thread) *Stack {
	s := &Stack{}
	s.id = t.Runtime().NextObjectID()
	return s
}

// Push adds val on top.
func (s *Stack) Push(t *core.Thread, val uint64) bool {
	ref := t.AllocNode()
	n := t.Node(ref)
	n.Val = val
	s.acquire(t)
	n.Next.Store(s.top)
	s.top = ref
	s.release()
	t.BackoffReset()
	return true
}

// Pop removes the newest value.
func (s *Stack) Pop(t *core.Thread) (uint64, bool) {
	s.acquire(t)
	ref := s.top
	if ref == word.Nil {
		s.release()
		return 0, false
	}
	val := t.Node(ref).Val
	s.top = t.Node(ref).Next.Load()
	s.release()
	t.FreeNodeDirect(ref)
	t.BackoffReset()
	return val, true
}

func (s *Stack) insertLocked(t *core.Thread, _ uint64, val uint64) bool {
	ref := t.AllocNode()
	n := t.Node(ref)
	n.Val = val
	n.Next.Store(s.top)
	s.top = ref
	return true
}

func (s *Stack) removeLocked(t *core.Thread, _ uint64) (uint64, bool) {
	ref := s.top
	if ref == word.Nil {
		return 0, false
	}
	val := t.Node(ref).Val
	s.top = t.Node(ref).Next.Load()
	t.FreeNodeDirect(ref)
	return val, true
}

// Len counts elements (quiescent use).
func (s *Stack) Len(t *core.Thread) int {
	n := 0
	s.acquire(t)
	for cur := s.top; cur != word.Nil; cur = t.Node(cur).Next.Load() {
		n++
	}
	s.release()
	return n
}

var (
	_ Source = (*Queue)(nil)
	_ Target = (*Queue)(nil)
	_ Source = (*Stack)(nil)
	_ Target = (*Stack)(nil)
)
