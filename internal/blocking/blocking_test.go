package blocking

import (
	"sync"
	"testing"

	"repro/internal/core"
)

func newRT(threads int) *core.Runtime {
	return core.NewRuntime(core.Config{MaxThreads: threads, ArenaCapacity: 1 << 18})
}

func TestQueueFIFO(t *testing.T) {
	rt := newRT(1)
	th := rt.RegisterThread()
	q := NewQueue(th)
	for i := uint64(1); i <= 50; i++ {
		q.Enqueue(th, i)
	}
	if q.Len(th) != 50 {
		t.Fatalf("Len=%d", q.Len(th))
	}
	for i := uint64(1); i <= 50; i++ {
		if v, ok := q.Dequeue(th); !ok || v != i {
			t.Fatalf("dequeue %d: %d,%v", i, v, ok)
		}
	}
	if _, ok := q.Dequeue(th); ok {
		t.Fatal("empty dequeue must fail")
	}
}

func TestStackLIFO(t *testing.T) {
	rt := newRT(1)
	th := rt.RegisterThread()
	s := NewStack(th)
	for i := uint64(1); i <= 50; i++ {
		s.Push(th, i)
	}
	if s.Len(th) != 50 {
		t.Fatalf("Len=%d", s.Len(th))
	}
	for i := uint64(50); i >= 1; i-- {
		if v, ok := s.Pop(th); !ok || v != i {
			t.Fatalf("pop %d: %d,%v", i, v, ok)
		}
	}
	if _, ok := s.Pop(th); ok {
		t.Fatal("empty pop must fail")
	}
}

func TestMoveBetweenBlockingObjects(t *testing.T) {
	rt := newRT(1)
	th := rt.RegisterThread()
	q := NewQueue(th)
	s := NewStack(th)
	q.Enqueue(th, 9)
	if v, ok := Move(th, q, s, 0, 0); !ok || v != 9 {
		t.Fatalf("move: %d,%v", v, ok)
	}
	if q.Len(th) != 0 || s.Len(th) != 1 {
		t.Fatal("move did not transfer")
	}
	if _, ok := Move(th, q, s, 0, 0); ok {
		t.Fatal("move from empty must fail")
	}
	if v, ok := Move(th, s, q, 0, 0); !ok || v != 9 {
		t.Fatalf("reverse move: %d,%v", v, ok)
	}
}

func TestMoveSameObjectPanics(t *testing.T) {
	rt := newRT(1)
	th := rt.RegisterThread()
	q := NewQueue(th)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Move(th, q, q, 0, 0)
}

// TestMoveNoDeadlock: movers transfer in both directions between two
// objects; lock ordering by ObjectID must prevent deadlock.
func TestMoveNoDeadlock(t *testing.T) {
	const workers = 8
	const opsPer = 5000
	rt := newRT(workers + 1)
	setup := rt.RegisterThread()
	q := NewQueue(setup)
	s := NewStack(setup)
	for i := uint64(1); i <= 100; i++ {
		q.Enqueue(setup, i)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := rt.RegisterThread()
			for i := 0; i < opsPer; i++ {
				if (i+w)%2 == 0 {
					Move(th, q, s, 0, 0)
				} else {
					Move(th, s, q, 0, 0)
				}
			}
		}(w)
	}
	wg.Wait()
	total := q.Len(setup) + s.Len(setup)
	if total != 100 {
		t.Fatalf("conservation: %d", total)
	}
}

// TestConcurrentMixed exercises queue and stack under contention with
// backoff enabled on half the threads.
func TestConcurrentMixed(t *testing.T) {
	const workers = 8
	const opsPer = 4000
	rt := newRT(workers + 1)
	setup := rt.RegisterThread()
	q := NewQueue(setup)
	s := NewStack(setup)
	var pushed, popped [workers]int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := rt.RegisterThread()
			if w%2 == 0 {
				th.EnableBackoff(8, 1024)
			}
			rng := uint64(w)*2654435761 + 3
			next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
			for i := 0; i < opsPer; i++ {
				switch next() % 4 {
				case 0:
					q.Enqueue(th, next())
					pushed[w]++
				case 1:
					if _, ok := q.Dequeue(th); ok {
						popped[w]++
					}
				case 2:
					s.Push(th, next())
					pushed[w]++
				default:
					if _, ok := s.Pop(th); ok {
						popped[w]++
					}
				}
			}
		}(w)
	}
	wg.Wait()
	var in, out int64
	for w := 0; w < workers; w++ {
		in += pushed[w]
		out += popped[w]
	}
	left := int64(q.Len(setup) + s.Len(setup))
	if in-out != left {
		t.Fatalf("balance %d-%d != %d", in, out, left)
	}
}

func TestObjectIDsDistinct(t *testing.T) {
	rt := newRT(1)
	th := rt.RegisterThread()
	a, b := NewQueue(th), NewStack(th)
	if a.ObjectID() == b.ObjectID() {
		t.Fatal("object ids must be distinct")
	}
}
