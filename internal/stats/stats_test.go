package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.CI95() != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
}

func TestSingle(t *testing.T) {
	s := Summarize([]float64{5})
	if s.N != 1 || s.Mean != 5 || s.Min != 5 || s.Max != 5 || s.Median != 5 || s.Stddev != 0 {
		t.Fatalf("%+v", s)
	}
}

func TestKnownValues(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEqual(s.Mean, 5) {
		t.Fatalf("mean %f", s.Mean)
	}
	// Sample stddev with Bessel's correction: sqrt(32/7).
	if !almostEqual(s.Stddev, math.Sqrt(32.0/7)) {
		t.Fatalf("stddev %f", s.Stddev)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max %f/%f", s.Min, s.Max)
	}
	if !almostEqual(s.Median, 4.5) {
		t.Fatalf("median %f", s.Median)
	}
}

func TestMedianOdd(t *testing.T) {
	s := Summarize([]float64{9, 1, 5})
	if s.Median != 5 {
		t.Fatalf("median %f", s.Median)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatal("input mutated")
	}
}

func TestProperties(t *testing.T) {
	f := func(raw []float64) bool {
		samples := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				samples = append(samples, v)
			}
		}
		if len(samples) == 0 {
			return true
		}
		s := Summarize(samples)
		if s.Min > s.Median || s.Median > s.Max {
			return false
		}
		if s.Mean < s.Min-1e-9 || s.Mean > s.Max+1e-9 {
			return false
		}
		return s.Stddev >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	small := Summarize([]float64{1, 2, 3, 4})
	big := Summarize(append(append(append([]float64{1, 2, 3, 4}, 1, 2, 3, 4), 1, 2, 3, 4), 1, 2, 3, 4))
	if big.CI95() >= small.CI95() {
		t.Fatalf("CI95 must shrink with more samples: %f vs %f", big.CI95(), small.CI95())
	}
}

func TestString(t *testing.T) {
	if Summarize([]float64{1, 2}).String() == "" {
		t.Fatal("String must render")
	}
}
