// Package stats provides the summary statistics the benchmark harness
// reports: the paper runs every configuration fifty times and plots the
// totals, so we keep mean, standard deviation, min, max and simple
// confidence intervals over repeated trials.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a set of trial measurements.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary over the samples. An empty slice yields a
// zero Summary.
func Summarize(samples []float64) Summary {
	s := Summary{N: len(samples)}
	if s.N == 0 {
		return s
	}
	s.Min = math.Inf(1)
	s.Max = math.Inf(-1)
	var sum float64
	for _, v := range samples {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(s.N)
	var sq float64
	for _, v := range samples {
		d := v - s.Mean
		sq += d * d
	}
	if s.N > 1 {
		s.Stddev = math.Sqrt(sq / float64(s.N-1))
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the samples by
// linear interpolation between order statistics — the exact reference
// the latency package's bucketed percentiles are validated against.
// An empty slice yields 0.
func Quantile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// CI95 returns the half-width of an approximate 95% confidence interval
// for the mean (normal approximation; the paper's 50 trials make this
// reasonable).
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.Stddev / math.Sqrt(float64(s.N))
}

// String renders the summary compactly, in milliseconds if the samples
// were nanoseconds — the caller chooses units; this prints raw values.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f ±%.3f (min=%.3f med=%.3f max=%.3f)",
		s.N, s.Mean, s.CI95(), s.Min, s.Median, s.Max)
}
