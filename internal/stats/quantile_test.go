package stats

import "testing"

// Edge cases of the exact reference quantile: the latency package's
// bucketed percentiles are validated against Quantile, so its behavior
// at the degenerate inputs (empty, singleton, out-of-range q) is part
// of that contract.

func TestQuantileEmpty(t *testing.T) {
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := Quantile(nil, q); got != 0 {
			t.Fatalf("Quantile(nil, %v) = %v, want 0", q, got)
		}
	}
}

func TestQuantileSingle(t *testing.T) {
	s := []float64{42}
	for _, q := range []float64{-0.5, 0, 0.25, 0.5, 1, 1.5} {
		if got := Quantile(s, q); got != 42 {
			t.Fatalf("Quantile([42], %v) = %v, want 42", q, got)
		}
	}
}

func TestQuantileClampsOutOfRangeQ(t *testing.T) {
	s := []float64{1, 2, 3, 4}
	if got := Quantile(s, -3); got != 1 {
		t.Fatalf("q<0 must clamp to min: got %v", got)
	}
	if got := Quantile(s, 7); got != 4 {
		t.Fatalf("q>1 must clamp to max: got %v", got)
	}
}

func TestQuantileInterpolates(t *testing.T) {
	s := []float64{10, 20}
	if got := Quantile(s, 0.5); got != 15 {
		t.Fatalf("midpoint of {10,20} = %v, want 15", got)
	}
	if got := Quantile(s, 0.25); got != 12.5 {
		t.Fatalf("q=0.25 of {10,20} = %v, want 12.5", got)
	}
}

func TestQuantileUnsortedInputUnmutated(t *testing.T) {
	s := []float64{5, 1, 3}
	if got := Quantile(s, 1); got != 5 {
		t.Fatalf("max of {5,1,3} = %v, want 5", got)
	}
	if s[0] != 5 || s[1] != 1 || s[2] != 3 {
		t.Fatalf("Quantile mutated its input: %v", s)
	}
}

func TestQuantileAllEqual(t *testing.T) {
	// A "single bucket" sample set: every quantile is that value.
	s := []float64{7, 7, 7, 7, 7}
	for _, q := range []float64{0, 0.5, 0.9, 1} {
		if got := Quantile(s, q); got != 7 {
			t.Fatalf("Quantile(all-7s, %v) = %v, want 7", q, got)
		}
	}
}
