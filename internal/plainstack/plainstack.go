// Package plainstack is Treiber's stack without the move-ready changes
// (plain CAS linearization points, plain atomic reads of top). It is the
// stack-side baseline of ablation A1; see package plainqueue.
package plainstack

import (
	"repro/internal/core"
	"repro/internal/pad"
	"repro/internal/word"
)

// Stack is a plain (non-composable) Treiber stack.
type Stack struct {
	top word.Word
	_   pad.Pad56
}

// New creates an empty stack.
func New(t *core.Thread) *Stack { return &Stack{} }

// Push adds val on top.
func (s *Stack) Push(t *core.Thread, val uint64) {
	ref := t.AllocNode()
	n := t.Node(ref)
	n.Val = val
	for {
		ltop := s.top.Load()
		n.Next.Store(ltop)
		if s.top.CAS(ltop, ref) {
			return
		}
		t.BackoffWait()
	}
}

// Pop removes the newest value.
func (s *Stack) Pop(t *core.Thread) (uint64, bool) {
	for {
		ltop := s.top.Load()
		if ltop == word.Nil {
			return 0, false
		}
		t.ProtectNode(core.SlotRem0, ltop)
		if s.top.Load() != ltop {
			continue
		}
		n := t.Node(ltop)
		val := n.Val
		if s.top.CAS(ltop, n.Next.Load()) {
			t.RetireNode(ltop)
			t.ClearNode(core.SlotRem0)
			return val, true
		}
		t.BackoffWait()
	}
}
