package plainstack

import (
	"sync"
	"testing"

	"repro/internal/core"
)

func TestLIFO(t *testing.T) {
	rt := core.NewRuntime(core.Config{MaxThreads: 1, ArenaCapacity: 1 << 14})
	th := rt.RegisterThread()
	s := New(th)
	for i := uint64(1); i <= 100; i++ {
		s.Push(th, i)
	}
	for i := uint64(100); i >= 1; i-- {
		if v, ok := s.Pop(th); !ok || v != i {
			t.Fatalf("pop: %d,%v want %d", v, ok, i)
		}
	}
	if _, ok := s.Pop(th); ok {
		t.Fatal("empty pop")
	}
}

func TestConcurrentConservation(t *testing.T) {
	const workers, per = 4, 5000
	rt := core.NewRuntime(core.Config{MaxThreads: workers + 1, ArenaCapacity: 1 << 18})
	setup := rt.RegisterThread()
	s := New(setup)
	var wg sync.WaitGroup
	var popped sync.Map
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := rt.RegisterThread()
			for i := 0; i < per; i++ {
				s.Push(th, uint64(w)<<32|uint64(i))
				if v, ok := s.Pop(th); ok {
					if _, dup := popped.LoadOrStore(v, true); dup {
						t.Errorf("value %#x popped twice", v)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for {
		v, ok := s.Pop(setup)
		if !ok {
			break
		}
		if _, dup := popped.LoadOrStore(v, true); dup {
			t.Fatalf("value %#x popped twice at drain", v)
		}
	}
	seen := 0
	popped.Range(func(_, _ any) bool { seen++; return true })
	if seen != workers*per {
		t.Fatalf("accounted %d of %d", seen, workers*per)
	}
}
