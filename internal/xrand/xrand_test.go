package xrand

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatal("different seeds should give different streams")
	}
}

func TestZeroSeedWorks(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed must still produce non-degenerate output")
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %f", f)
		}
	}
}

func TestUniformMoments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		f := r.Float64()
		sum += f
		sq += f * f
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %f", mean)
	}
	if math.Abs(variance-1.0/12) > 0.01 {
		t.Fatalf("uniform variance %f", variance)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sq += x * x
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %f", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %f", variance)
	}
}

func TestNormDuration(t *testing.T) {
	r := New(17)
	const mean, sd = 100.0, 20.0
	var sum float64
	for i := 0; i < 100000; i++ {
		d := r.NormDuration(mean, sd)
		if d < 0 {
			t.Fatal("NormDuration must be non-negative")
		}
		sum += d
	}
	got := sum / 100000
	if math.Abs(got-mean) > 2 {
		t.Fatalf("NormDuration mean %f want ~%f", got, mean)
	}
}

func TestUint32(t *testing.T) {
	r := New(19)
	seen := map[uint32]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint32()] = true
	}
	if len(seen) < 95 {
		t.Fatal("Uint32 outputs suspiciously repetitive")
	}
}

func TestZipfBoundsAndSkew(t *testing.T) {
	const n = 1000
	const draws = 200000
	z := NewZipf(n, 0.99)
	r := New(23)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		k := z.Next(r)
		if k >= n {
			t.Fatalf("rank %d out of [0,%d)", k, n)
		}
		counts[k]++
	}
	// Rank 0 must be far hotter than uniform (draws/n = 200) and hotter
	// than a mid-rank key; the head must dominate.
	if counts[0] < 5*draws/n {
		t.Fatalf("rank 0 drawn %d times; not zipfian", counts[0])
	}
	if counts[0] <= counts[n/2] {
		t.Fatalf("rank 0 (%d) not hotter than rank %d (%d)", counts[0], n/2, counts[n/2])
	}
	head := 0
	for i := 0; i < n/100; i++ { // hottest 1%
		head += counts[i]
	}
	if float64(head) < 0.25*draws {
		t.Fatalf("hottest 1%% drew only %d/%d; not skewed", head, draws)
	}
}

func TestZipfDegenerateAndDefaults(t *testing.T) {
	z := NewZipf(1, 0.5)
	r := New(29)
	for i := 0; i < 100; i++ {
		if z.Next(r) != 0 {
			t.Fatal("n=1 must always draw rank 0")
		}
	}
	if NewZipf(10, 0).Theta() != DefaultZipfTheta {
		t.Fatal("theta<=0 must select the default skew")
	}
	for _, bad := range []float64{1.0, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("theta=%f must panic", bad)
				}
			}()
			NewZipf(10, bad)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("n=0 must panic")
			}
		}()
		NewZipf(0, 0.5)
	}()
}

func TestZipfDeterministicPerState(t *testing.T) {
	z := NewZipf(64, 0.9)
	a, b := New(7), New(7)
	for i := 0; i < 1000; i++ {
		if z.Next(a) != z.Next(b) {
			t.Fatal("equal seeds must give equal zipfian streams")
		}
	}
}
