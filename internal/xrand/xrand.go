// Package xrand provides a small, allocation-free, per-thread random
// number generator (splitmix64 seeding + xoshiro-style state advance) and
// the normally distributed samples the paper's workload generator needs
// for "local work ... picked from a normal distribution" (§6).
//
// math/rand is avoided on the hot path because its global source is
// locked and its per-goroutine sources allocate; benchmark loops here
// issue one sample per operation.
package xrand

import "math"

// State is a 64-bit xorshift* generator. The zero value is invalid; use
// New.
type State struct {
	s uint64
}

// New returns a generator seeded from seed via splitmix64, guaranteeing a
// non-zero internal state.
func New(seed uint64) *State {
	s := &State{}
	s.Seed(seed)
	return s
}

// Seed re-seeds the generator.
func (r *State) Seed(seed uint64) {
	// splitmix64 step; also guarantees non-zero state.
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z = z ^ (z >> 31)
	if z == 0 {
		z = 0x9e3779b97f4a7c15
	}
	r.s = z
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *State) Uint64() uint64 {
	x := r.s
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	r.s = x
	return x * 0x2545f4914f6cdd1d
}

// Uint32 returns the next 32 pseudo-random bits.
func (r *State) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a value uniformly distributed in [0, n). n must be > 0.
func (r *State) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection-free approximation is fine here:
	// the tiny modulo bias is irrelevant for workload shaping.
	return int((r.Uint64() >> 11) % uint64(n))
}

// Float64 returns a value uniformly distributed in [0, 1).
func (r *State) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Norm returns a sample from the standard normal distribution using the
// Marsaglia polar method. It consumes a variable number of uniform
// samples but no heap memory.
func (r *State) Norm() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// NormDuration returns a normally distributed sample with the given mean
// and standard deviation, clamped to be non-negative. The paper's local
// work times ("around 0.1µs per operation on average", §6) are produced
// with this.
func (r *State) NormDuration(mean, stddev float64) float64 {
	d := mean + stddev*r.Norm()
	if d < 0 {
		return 0
	}
	return d
}

// DefaultZipfTheta is the skew conventionally used by YCSB-style
// workloads: the hottest key draws a few percent of all accesses.
const DefaultZipfTheta = 0.99

// Zipf generates zipfian-distributed ranks in [0, n): rank 0 is the
// hottest, rank k is drawn with probability proportional to 1/(k+1)^θ.
// It implements the Gray et al. quantile approximation popularized by
// YCSB, with the harmonic normalizer computed once at construction
// (O(n)); Next itself is allocation-free and O(1).
//
// A Zipf is immutable after construction, so one instance may be shared
// by any number of threads, each drawing through its own *State.
type Zipf struct {
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	half  float64 // (1/2)^theta, the rank-1 threshold
}

// NewZipf builds a generator over n ranks with skew theta in (0, 1);
// theta <= 0 selects DefaultZipfTheta. It panics when n is 0 or theta
// is >= 1 (the approximation's validity range).
func NewZipf(n uint64, theta float64) *Zipf {
	if n == 0 {
		panic("xrand: Zipf over an empty rank space")
	}
	if theta <= 0 {
		theta = DefaultZipfTheta
	}
	if theta >= 1 {
		panic("xrand: Zipf theta must be in (0, 1)")
	}
	z := &Zipf{n: n, theta: theta}
	zeta := func(m uint64) float64 {
		s := 0.0
		for i := uint64(1); i <= m; i++ {
			s += 1 / math.Pow(float64(i), theta)
		}
		return s
	}
	z.zetan = zeta(n)
	two := n
	if two > 2 {
		two = 2
	}
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta(two)/z.zetan)
	z.half = math.Pow(0.5, theta)
	return z
}

// N reports the rank-space size.
func (z *Zipf) N() uint64 { return z.n }

// Theta reports the configured skew.
func (z *Zipf) Theta() float64 { return z.theta }

// Next draws the next rank in [0, n) using r as the entropy source.
func (z *Zipf) Next(r *State) uint64 {
	u := r.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if z.n > 1 && uz < 1+z.half {
		return 1
	}
	k := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if k >= z.n {
		k = z.n - 1
	}
	return k
}
