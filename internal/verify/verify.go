// Package verify provides structural invariant walkers for the
// containers: acyclicity, reachability, ordering, mark hygiene and
// descriptor absence. Stress tests call them at quiescence points; a
// violation indicates memory corruption or a broken linearization, the
// failure modes composition bugs produce.
//
// The walkers require quiescence: they read words without helping and
// treat any descriptor reference as a violation (at quiescence every
// DCAS/MCAS must have been scrubbed from the structures).
package verify

import (
	"fmt"

	"repro/internal/arena"
	"repro/internal/word"
)

// Report accumulates invariant violations.
type Report struct {
	Violations []string
}

// Ok reports whether no violation was found.
func (r *Report) Ok() bool { return len(r.Violations) == 0 }

func (r *Report) addf(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// Err returns a single error-like string (empty when Ok).
func (r *Report) Err() string {
	if r.Ok() {
		return ""
	}
	s := r.Violations[0]
	if len(r.Violations) > 1 {
		s += fmt.Sprintf(" (+%d more)", len(r.Violations)-1)
	}
	return s
}

// maxWalk bounds traversals so a cycle cannot hang the verifier.
const maxWalk = 1 << 22

// Queue checks a Michael–Scott queue's structure: head reaches tail,
// no cycles, no marks, no descriptors, and returns the element count.
func Queue(a *arena.Arena, head, tail *word.Word) (*Report, int) {
	r := &Report{}
	h := head.Load()
	t := tail.Load()
	if word.IsDesc(h) || word.IsDesc(t) {
		r.addf("queue anchors hold descriptors at quiescence: head=%#x tail=%#x", h, t)
		return r, 0
	}
	if h == word.Nil {
		r.addf("queue head is nil (sentinel missing)")
		return r, 0
	}
	count := 0
	seenTail := h == t
	cur := h
	for steps := 0; ; steps++ {
		if steps > maxWalk {
			r.addf("queue walk exceeded %d steps: cycle suspected", maxWalk)
			return r, count
		}
		next := a.Node(cur).Next.Load()
		if word.IsDesc(next) {
			r.addf("queue node %#x holds descriptor %#x at quiescence", cur, next)
			return r, count
		}
		if word.IsListMarked(next) {
			r.addf("queue node %#x carries a list mark", cur)
			return r, count
		}
		if next == word.Nil {
			break
		}
		cur = next
		count++
		if cur == t {
			seenTail = true
		}
	}
	if !seenTail {
		r.addf("queue tail %#x not reachable from head %#x", t, h)
	}
	if cur != t {
		// Tail may lag by at most one node in MS queues, but only
		// transiently; at quiescence it must be exact or one behind
		// with tail.next == last.
		tn := a.Node(t).Next.Load()
		if word.NodeIndex(tn) != word.NodeIndex(cur) {
			r.addf("queue tail lags more than one node (tail=%#x last=%#x)", t, cur)
		}
	}
	return r, count
}

// Stack checks a Treiber stack: acyclic chain, no marks, no descriptors.
// Works for both the plain and the versioned-top variants (tags are
// ignored during the walk).
func Stack(a *arena.Arena, top *word.Word) (*Report, int) {
	r := &Report{}
	cur := top.Load()
	if word.IsDesc(cur) {
		r.addf("stack top holds descriptor %#x at quiescence", cur)
		return r, 0
	}
	count := 0
	for steps := 0; word.NodeIndex(cur) != 0; steps++ {
		if steps > maxWalk {
			r.addf("stack walk exceeded %d steps: cycle suspected", maxWalk)
			return r, count
		}
		n := a.Node(cur)
		next := n.Next.Load()
		if word.IsDesc(next) {
			r.addf("stack node %#x holds descriptor %#x", cur, next)
			return r, count
		}
		if word.IsListMarked(next) {
			r.addf("stack node %#x carries a list mark", cur)
			return r, count
		}
		count++
		cur = next
	}
	return r, count
}

// List checks a Harris list: strictly ascending keys over unmarked
// nodes, no descriptors, bounded walk. Marked nodes (logically deleted,
// not yet unlinked) are allowed but must not break ordering of the live
// ones. Returns the live element count.
func List(a *arena.Arena, head *word.Word) (*Report, int) {
	r := &Report{}
	cur := head.Load()
	if word.IsDesc(cur) {
		r.addf("list head holds descriptor %#x", cur)
		return r, 0
	}
	count := 0
	haveLast := false
	var lastKey uint64
	for steps := 0; word.NodeIndex(cur) != 0; steps++ {
		if steps > maxWalk {
			r.addf("list walk exceeded %d steps: cycle suspected", maxWalk)
			return r, count
		}
		n := a.Node(cur)
		next := n.Next.Load()
		if word.IsDesc(next) {
			r.addf("list node %#x (key %d) holds descriptor %#x", cur, n.Key, next)
			return r, count
		}
		if !word.IsListMarked(next) {
			if haveLast && n.Key <= lastKey {
				r.addf("list keys out of order: %d after %d", n.Key, lastKey)
			}
			lastKey = n.Key
			haveLast = true
			count++
		}
		cur = word.ListUnmarked(next)
	}
	return r, count
}
