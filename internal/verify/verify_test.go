package verify

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/harrislist"
	"repro/internal/msqueue"
	"repro/internal/tstack"
	"repro/internal/word"
)

func newRT(threads int) *core.Runtime {
	return core.NewRuntime(core.Config{MaxThreads: threads, ArenaCapacity: 1 << 18, DescCapacity: 1 << 14})
}

func TestQueueInvariantsClean(t *testing.T) {
	rt := newRT(1)
	th := rt.RegisterThread()
	q := msqueue.New(th)
	for i := uint64(0); i < 100; i++ {
		q.Enqueue(th, i)
	}
	for i := 0; i < 40; i++ {
		q.Dequeue(th)
	}
	head, tail := q.Anchors()
	r, n := Queue(rt.Arena(), head, tail)
	if !r.Ok() {
		t.Fatalf("violations: %v", r.Violations)
	}
	if n != 60 {
		t.Fatalf("count=%d", n)
	}
}

func TestStackInvariantsClean(t *testing.T) {
	rt := newRT(1)
	th := rt.RegisterThread()
	for _, s := range []*tstack.Stack{tstack.New(th), tstack.NewVersioned(th)} {
		for i := uint64(0); i < 50; i++ {
			s.Push(th, i)
		}
		s.Pop(th)
		r, n := Stack(rt.Arena(), s.TopWord())
		if !r.Ok() {
			t.Fatalf("versioned=%v violations: %v", s.Versioned(), r.Violations)
		}
		if n != 49 {
			t.Fatalf("count=%d", n)
		}
	}
}

func TestListInvariantsClean(t *testing.T) {
	rt := newRT(1)
	th := rt.RegisterThread()
	l := harrislist.New(th)
	for _, k := range []uint64{5, 1, 9, 3, 7} {
		l.Insert(th, k, k)
	}
	l.Remove(th, 3)
	r, n := List(rt.Arena(), l.HeadWord())
	if !r.Ok() {
		t.Fatalf("violations: %v", r.Violations)
	}
	if n != 4 {
		t.Fatalf("count=%d", n)
	}
}

func TestDetectsDescriptorResidue(t *testing.T) {
	rt := newRT(1)
	th := rt.RegisterThread()
	q := msqueue.New(th)
	q.Enqueue(th, 1)
	head, tail := q.Anchors()
	// Forge a descriptor reference into head: the walker must flag it.
	old := head.Load()
	head.Store(word.MakeDesc(word.KindDCAS, 3, 9))
	r, _ := Queue(rt.Arena(), head, tail)
	if r.Ok() {
		t.Fatal("descriptor residue not detected")
	}
	head.Store(old)
	if r2, _ := Queue(rt.Arena(), head, tail); !r2.Ok() {
		t.Fatal("restored queue should verify")
	}
}

func TestDetectsCycle(t *testing.T) {
	rt := newRT(1)
	th := rt.RegisterThread()
	s := tstack.New(th)
	s.Push(th, 1)
	s.Push(th, 2)
	// Create a cycle: bottom node points back to top.
	top := s.TopWord().Load()
	n := rt.Arena().Node(top)
	bottom := n.Next.Load()
	rt.Arena().Node(bottom).Next.Store(top)
	r, _ := Stack(rt.Arena(), s.TopWord())
	if r.Ok() {
		t.Fatal("cycle not detected")
	}
	if r.Err() == "" {
		t.Fatal("Err must render a violation")
	}
	rt.Arena().Node(bottom).Next.Store(word.Nil) // restore
}

func TestDetectsListDisorder(t *testing.T) {
	rt := newRT(1)
	th := rt.RegisterThread()
	l := harrislist.New(th)
	l.Insert(th, 1, 1)
	l.Insert(th, 2, 2)
	// Corrupt: swap the keys so order breaks.
	first := l.HeadWord().Load()
	rt.Arena().Node(first).Key = 99
	r, _ := List(rt.Arena(), l.HeadWord())
	if r.Ok() {
		t.Fatal("key disorder not detected")
	}
}

// TestInvariantsAfterMoveStorm runs a heavy move mix, quiesces, and
// verifies every structure.
func TestInvariantsAfterMoveStorm(t *testing.T) {
	const workers = 6
	rt := newRT(workers + 1)
	setup := rt.RegisterThread()
	q := msqueue.New(setup)
	s := tstack.New(setup)
	l := harrislist.New(setup)
	for i := uint64(1); i <= 300; i++ {
		q.Enqueue(setup, i)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := rt.RegisterThread()
			rng := uint64(w)*0x9e3779b97f4a7c15 + 11
			next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
			for i := 0; i < 4000; i++ {
				switch next() % 6 {
				case 0:
					th.Move(q, s, 0, 0)
				case 1:
					th.Move(s, q, 0, 0)
				case 2:
					th.Move(q, l, 0, next())
				case 3:
					th.Move(l, q, 0, 0) // RemoveMin-like via keyed? list Remove needs key
				case 4:
					if v, ok := s.Pop(th); ok {
						s.Push(th, v)
					}
				default:
					if v, ok := q.Dequeue(th); ok {
						q.Enqueue(th, v)
					}
				}
			}
			th.FlushMemory()
		}(w)
	}
	wg.Wait()

	head, tail := q.Anchors()
	rq, nq := Queue(rt.Arena(), head, tail)
	if !rq.Ok() {
		t.Fatalf("queue: %v", rq.Violations)
	}
	rs, ns := Stack(rt.Arena(), s.TopWord())
	if !rs.Ok() {
		t.Fatalf("stack: %v", rs.Violations)
	}
	rl, nl := List(rt.Arena(), l.HeadWord())
	if !rl.Ok() {
		t.Fatalf("list: %v", rl.Violations)
	}
	if nq+ns+nl != 300 {
		t.Fatalf("conservation: %d+%d+%d != 300", nq, ns, nl)
	}
}
