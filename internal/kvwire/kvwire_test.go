package kvwire

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestRequestRoundTrip serializes every request kind and parses it
// back — the property that keeps kvserver and kvload on one grammar.
func TestRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{Op: OpGet, Tenant: 1, Keys: []uint64{7}},
		{Op: OpPut, Tenant: 0, Keys: []uint64{9}, Val: 123456789},
		{Op: OpDel, Tenant: 2, Keys: []uint64{0}},
		{Op: OpPush, Tenant: 2, Val: 42},
		{Op: OpPop, Tenant: 0},
		{Op: OpMove, Tenant: 0, DTenant: 2, Keys: []uint64{5}, TKeys: []uint64{6}},
		{Op: OpXfer, Tenant: 1, DTenant: 0, Keys: []uint64{1, 2, 3}, TKeys: []uint64{4, 5, 6}},
		{Op: OpDrain, Tenant: 2, DTenant: 1, N: 16},
		{Op: OpStats}, {Op: OpAudit}, {Op: OpPing},
	}
	for _, want := range reqs {
		line := strings.TrimSuffix(string(want.Append(nil)), "\n")
		got, err := ParseRequest(line, 3)
		if err != nil {
			t.Fatalf("ParseRequest(%q): %v", line, err)
		}
		if got.Op != want.Op || got.Tenant != want.Tenant || got.DTenant != want.DTenant ||
			got.Val != want.Val || got.N != want.N ||
			len(got.Keys) != len(want.Keys) || len(got.TKeys) != len(want.TKeys) {
			t.Fatalf("round trip %q: got %+v want %+v", line, got, want)
		}
		for i := range want.Keys {
			if got.Keys[i] != want.Keys[i] {
				t.Fatalf("round trip %q: keys %v != %v", line, got.Keys, want.Keys)
			}
		}
	}
}

func TestParseRequestRejects(t *testing.T) {
	bad := []string{
		"",
		"FLY 0 1",
		"GET 0",                         // missing key
		"GET 3 1",                       // tenant out of range
		"GET -1 1",                      // negative tenant
		"PUT 0 1",                       // missing value
		"MOVE 1 1 2 3",                  // same tenant
		"XFER 0 1 1,2 1",                // list length mismatch
		"XFER 0 1 1,2,3,4,5 6,7,8,9,10", // too many pairs
		"DRAIN 0 1 0",                   // n < 1
		"DRAIN 0 0 4",                   // same tenant
		"STATS now",                     // junk argument
		"GET 0 notanumber",
	}
	for _, line := range bad {
		if _, err := ParseRequest(line, 3); err == nil {
			t.Errorf("ParseRequest(%q) unexpectedly succeeded", line)
		}
	}
}

func TestParseResponse(t *testing.T) {
	r, err := ParseResponse("OK 17", true)
	if err != nil || !r.OK() || len(r.Vals) != 1 || r.Vals[0] != 17 {
		t.Fatalf("OK 17: %+v, %v", r, err)
	}
	r, err = ParseResponse("OK 1,2,3", true)
	if err != nil || len(r.Vals) != 3 || r.Vals[2] != 3 {
		t.Fatalf("OK 1,2,3: %+v, %v", r, err)
	}
	r, err = ParseResponse("OK 5 10 2", true) // AUDIT shape
	if err != nil || len(r.Vals) != 3 {
		t.Fatalf("AUDIT: %+v, %v", r, err)
	}
	r, err = ParseResponse(`OK {"rows":[]}`, false)
	if err != nil || !r.OK() || r.Raw != `{"rows":[]}` {
		t.Fatalf("STATS: %+v, %v", r, err)
	}
	r, err = ParseResponse("NF", true)
	if err != nil || r.OK() {
		t.Fatalf("NF: %+v, %v", r, err)
	}
	r, err = ParseResponse("ERR bad tenant", true)
	if err != nil || r.Raw != "bad tenant" {
		t.Fatalf("ERR: %+v, %v", r, err)
	}
	if _, err = ParseResponse("WAT", true); err == nil {
		t.Fatal("unknown status must error")
	}
}

// TestDegradationStatuses: BUSY and TIMEOUT are valid, non-OK,
// retryable responses — the grammar contract the server's shedding
// paths and kvload's retry loop both build on.
func TestDegradationStatuses(t *testing.T) {
	for _, status := range []string{"BUSY", "TIMEOUT"} {
		r, err := ParseResponse(status, true)
		if err != nil {
			t.Fatalf("ParseResponse(%q): %v", status, err)
		}
		if r.OK() {
			t.Fatalf("%s must not parse as success", status)
		}
		if !r.Retryable() {
			t.Fatalf("%s must be retryable", status)
		}
	}
	for _, status := range []string{"OK 1", "NF", "EXISTS", "FAIL", "ERR nope"} {
		r, err := ParseResponse(status, true)
		if err != nil {
			t.Fatalf("ParseResponse(%q): %v", status, err)
		}
		if r.Retryable() {
			t.Fatalf("%q must not be retryable", status)
		}
	}
}

// TestRobustCountersRoundTrip: the robust block survives a JSON round
// trip with every field intact, and zero-valued fields stay present in
// the encoding (chaos assertions grep exact counts; absent must not
// alias zero).
func TestRobustCountersRoundTrip(t *testing.T) {
	doc := NewDoc()
	doc.Robust = &RobustCounters{
		Busy: 3, Timeouts: 2, Retries: 7, Ambiguous: 1,
		Shed: 11, ShedLevel: 2, SlowClients: 1, LostWorkers: 1, Drained: true,
	}
	blob, err := json.Marshal(doc)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Doc
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Robust == nil || *back.Robust != *doc.Robust {
		t.Fatalf("robust block did not round-trip: %+v vs %+v", back.Robust, doc.Robust)
	}
	zero, err := json.Marshal(Doc{Robust: &RobustCounters{}})
	if err != nil {
		t.Fatalf("marshal zero: %v", err)
	}
	for _, field := range []string{`"busy":0`, `"shed":0`, `"lost_workers":0`, `"drained":false`} {
		if !strings.Contains(string(zero), field) {
			t.Errorf("zero-valued robust encoding missing %s: %s", field, zero)
		}
	}
	if doc.Audit != nil {
		t.Fatal("NewDoc must not pre-fill an audit")
	}
}
