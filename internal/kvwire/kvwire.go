// Package kvwire defines the wire protocol and the report format
// shared by cmd/kvserver and cmd/kvload, so the two binaries cannot
// drift apart: the server parses requests with ParseRequest, the load
// generator serializes them with Request.Append, and both sides speak
// the same response grammar.
//
// # Protocol
//
// The protocol is line-oriented text over TCP: one request per line,
// space-separated tokens, one response line per request, in order.
// Tenants are integer ids 0..N-1 (the server declares N at startup);
// keys and values are decimal uint64s.
//
//	GET <tenant> <key>                     → OK <val> | NF
//	PUT <tenant> <key> <val>               → OK | EXISTS
//	DEL <tenant> <key>                     → OK <val> | NF
//	PUSH <tenant> <val>                    → OK
//	POP <tenant>                           → OK <val> | NF
//	MOVE <stenant> <dtenant> <skey> <tkey> → OK <val> | FAIL
//	XFER <stenant> <dtenant> <sk,..> <tk,..> → OK <v,..> | FAIL
//	DRAIN <stenant> <dtenant> <n>          → OK <v,..> (may be empty)
//	STATS                                  → OK <one-line JSON>
//	SLOW                                   → OK <one-line JSON>
//	AUDIT                                  → OK <mapN> <mapSum> <queueN>
//	PING                                   → OK
//	METRICS                                → Prometheus text, multi-line,
//	                                         terminated by a "# EOF" line
//
// METRICS is the one multi-line response in the protocol: the server
// streams the metrics registry's snapshot in Prometheus text exposition
// format and the OpenMetrics "# EOF" terminator frames it, so clients
// read lines until "# EOF" (or a leading "ERR " line when the registry
// is disabled).
//
// SLOW returns the server's tail exemplars — the slowest requests'
// spans, each with its full per-stage latency breakdown — as a
// one-line SlowDoc JSON document (ERR when spans are disabled). It is
// the wire surface of the request-span layer: kvload prints the
// breakdown next to its client-side percentiles, and CI greps it to
// check that an injected stall is attributed to the execute stage.
//
// GET/PUT/DEL address a tenant's map; PUSH/POP its queue. The three
// composed operations are the product feature: MOVE atomically
// relocates one entry between two tenants' maps (repro.Move — the
// entry is never in both maps nor in neither), XFER moves up to four
// keyed entries in one k-word CAS (repro.TransferKeys — FAIL also
// covers chain-dependent keys, retryable as per-key MOVEs), and DRAIN
// streams up to n elements between two tenants' queues under one
// amortized descriptor lifecycle (repro.DrainN). Composed operations
// require two distinct tenants; ParseRequest rejects same-tenant
// pairs. AUDIT returns conservation totals: entries and value-sum
// (wrapping uint64) over all tenant maps, and entries over all tenant
// queues — moves and transfers must leave all three unchanged.
//
// Error responses are "ERR <message>"; the connection stays usable.
//
// # Degradation responses
//
// Two statuses carry the server's graceful-degradation contract; both
// guarantee the operation was NOT executed, so clients may retry
// without risking duplication:
//
//	BUSY    — the server shed the request: substrate resources
//	          (descriptor pool, arena) were exhausted, or the overload
//	          controller is shedding this tenant's ops to protect the
//	          configured SLO. Retry after jittered backoff.
//	TIMEOUT — the per-request deadline (-deadline) expired before the
//	          operation could execute. Retry, ideally with a longer
//	          deadline or lower offered load.
//
// A connection-level client timeout is NOT a TIMEOUT response: the
// request may have executed and the response been lost, so clients must
// treat it as ambiguous for any operation whose duplication is
// observable (kvload retries only conservation-neutral ops after one).
package kvwire

import (
	"fmt"
	"strconv"
	"strings"
)

// Op identifies a request kind; it doubles as the operation index of
// the server's and load generator's latency recorders.
type Op int

// The request kinds. The first OpCount values are the data-path
// operations latency histograms are kept for; STATS, AUDIT and PING
// are control-plane commands.
const (
	OpGet Op = iota
	OpPut
	OpDel
	OpPush
	OpPop
	OpMove
	OpXfer
	OpDrain
	OpCount // number of data-path op kinds

	OpStats
	OpAudit
	OpPing
	OpMetrics
	OpSlow
)

var opNames = map[Op]string{
	OpGet: "GET", OpPut: "PUT", OpDel: "DEL", OpPush: "PUSH", OpPop: "POP",
	OpMove: "MOVE", OpXfer: "XFER", OpDrain: "DRAIN",
	OpStats: "STATS", OpAudit: "AUDIT", OpPing: "PING", OpMetrics: "METRICS",
	OpSlow: "SLOW",
}

// String returns the protocol verb.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// MaxXferKeys is the key-pair limit of XFER (repro.TransferKeys' k-CAS
// width budget: 2 CASes per pair, 8 entries per descriptor).
const MaxXferKeys = 4

// Request is one parsed client request.
type Request struct {
	Op Op
	// Tenant is the addressed tenant (GET/PUT/DEL/PUSH/POP) or the
	// source tenant of a composed operation; DTenant is the composed
	// operation's destination tenant.
	Tenant, DTenant int
	// Keys/TKeys carry the source/target keys: one each for GET, PUT,
	// DEL and MOVE; up to MaxXferKeys each for XFER.
	Keys, TKeys []uint64
	// Val is PUT's and PUSH's value.
	Val uint64
	// N is DRAIN's element budget.
	N int
}

// Append serializes the request as one protocol line (including the
// trailing newline) onto dst and returns the extended slice.
func (r Request) Append(dst []byte) []byte {
	dst = append(dst, r.Op.String()...)
	switch r.Op {
	case OpGet, OpDel:
		dst = appendInts(dst, r.Tenant, r.Keys[0])
	case OpPut:
		dst = appendInts(dst, r.Tenant, r.Keys[0], r.Val)
	case OpPush:
		dst = appendInts(dst, r.Tenant, r.Val)
	case OpPop:
		dst = appendInts(dst, r.Tenant)
	case OpMove:
		dst = appendInts(dst, r.Tenant, r.DTenant, r.Keys[0], r.TKeys[0])
	case OpXfer:
		dst = appendInts(dst, r.Tenant, r.DTenant)
		dst = append(dst, ' ')
		dst = appendList(dst, r.Keys)
		dst = append(dst, ' ')
		dst = appendList(dst, r.TKeys)
	case OpDrain:
		dst = appendInts(dst, r.Tenant, r.DTenant, uint64(r.N))
	case OpStats, OpAudit, OpPing, OpMetrics, OpSlow:
		// verb only
	}
	return append(dst, '\n')
}

func appendInts(dst []byte, vs ...interface{}) []byte {
	for _, v := range vs {
		dst = append(dst, ' ')
		switch x := v.(type) {
		case int:
			dst = strconv.AppendInt(dst, int64(x), 10)
		case uint64:
			dst = strconv.AppendUint(dst, x, 10)
		}
	}
	return dst
}

func appendList(dst []byte, vs []uint64) []byte {
	for i, v := range vs {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = strconv.AppendUint(dst, v, 10)
	}
	return dst
}

// ParseRequest parses one protocol line (without the newline) and
// validates tenant ids against the server's tenant count and composed
// operations' tenant-distinctness.
func ParseRequest(line string, tenants int) (Request, error) {
	f := strings.Fields(line)
	if len(f) == 0 {
		return Request{}, fmt.Errorf("empty request")
	}
	var r Request
	switch f[0] {
	case "GET", "DEL":
		r.Op = OpGet
		if f[0] == "DEL" {
			r.Op = OpDel
		}
		if err := parseArgs(f, 2, &r, tenants, false); err != nil {
			return r, err
		}
		k, err := parseU64(f[2])
		if err != nil {
			return r, err
		}
		r.Keys = []uint64{k}
	case "PUT":
		r.Op = OpPut
		if err := parseArgs(f, 3, &r, tenants, false); err != nil {
			return r, err
		}
		k, err := parseU64(f[2])
		if err != nil {
			return r, err
		}
		v, err := parseU64(f[3])
		if err != nil {
			return r, err
		}
		r.Keys, r.Val = []uint64{k}, v
	case "PUSH":
		r.Op = OpPush
		if err := parseArgs(f, 2, &r, tenants, false); err != nil {
			return r, err
		}
		v, err := parseU64(f[2])
		if err != nil {
			return r, err
		}
		r.Val = v
	case "POP":
		r.Op = OpPop
		if err := parseArgs(f, 1, &r, tenants, false); err != nil {
			return r, err
		}
	case "MOVE":
		r.Op = OpMove
		if err := parseArgs(f, 4, &r, tenants, true); err != nil {
			return r, err
		}
		sk, err := parseU64(f[3])
		if err != nil {
			return r, err
		}
		tk, err := parseU64(f[4])
		if err != nil {
			return r, err
		}
		r.Keys, r.TKeys = []uint64{sk}, []uint64{tk}
	case "XFER":
		r.Op = OpXfer
		if err := parseArgs(f, 4, &r, tenants, true); err != nil {
			return r, err
		}
		var err error
		if r.Keys, err = parseList(f[3]); err != nil {
			return r, err
		}
		if r.TKeys, err = parseList(f[4]); err != nil {
			return r, err
		}
		if len(r.Keys) != len(r.TKeys) {
			return r, fmt.Errorf("XFER key lists differ in length")
		}
		if len(r.Keys) == 0 || len(r.Keys) > MaxXferKeys {
			return r, fmt.Errorf("XFER takes 1..%d key pairs", MaxXferKeys)
		}
	case "DRAIN":
		r.Op = OpDrain
		if err := parseArgs(f, 3, &r, tenants, true); err != nil {
			return r, err
		}
		n, err := strconv.Atoi(f[3])
		if err != nil || n < 1 {
			return r, fmt.Errorf("bad DRAIN count %q", f[3])
		}
		r.N = n
	case "STATS", "AUDIT", "PING", "METRICS", "SLOW":
		r.Op = map[string]Op{"STATS": OpStats, "AUDIT": OpAudit, "PING": OpPing, "METRICS": OpMetrics, "SLOW": OpSlow}[f[0]]
		if len(f) != 1 {
			return r, fmt.Errorf("%s takes no arguments", f[0])
		}
	default:
		return r, fmt.Errorf("unknown command %q", f[0])
	}
	return r, nil
}

// parseArgs checks the token count and fills the tenant fields (two
// tenants when composed is set, which also enforces distinctness).
func parseArgs(f []string, nargs int, r *Request, tenants int, composed bool) error {
	if len(f) != nargs+1 {
		return fmt.Errorf("%s takes %d arguments", f[0], nargs)
	}
	t, err := parseTenant(f[1], tenants)
	if err != nil {
		return err
	}
	r.Tenant = t
	if composed {
		d, err := parseTenant(f[2], tenants)
		if err != nil {
			return err
		}
		if d == t {
			return fmt.Errorf("%s requires two distinct tenants", f[0])
		}
		r.DTenant = d
	}
	return nil
}

func parseTenant(s string, tenants int) (int, error) {
	t, err := strconv.Atoi(s)
	if err != nil || t < 0 || t >= tenants {
		return 0, fmt.Errorf("bad tenant %q (want 0..%d)", s, tenants-1)
	}
	return t, nil
}

func parseU64(s string) (uint64, error) {
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	return v, nil
}

func parseList(s string) ([]uint64, error) {
	parts := strings.Split(s, ",")
	out := make([]uint64, 0, len(parts))
	for _, p := range parts {
		v, err := parseU64(p)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// Response is one parsed server response.
type Response struct {
	// Status is "OK", "NF", "EXISTS", "FAIL", "ERR", "BUSY" or
	// "TIMEOUT". BUSY and TIMEOUT guarantee the operation did not
	// execute (see the package comment's degradation contract).
	Status string
	// Vals are the response's numeric payloads (value of GET/DEL/POP/
	// MOVE, value list of XFER/DRAIN, the three AUDIT totals).
	Vals []uint64
	// Raw is the rest of the line verbatim (ERR message, STATS JSON).
	Raw string
}

// OK reports whether the request succeeded.
func (r Response) OK() bool { return r.Status == "OK" }

// Retryable reports whether the response is a degradation status (BUSY
// or TIMEOUT) under which the server guarantees the operation did not
// execute — safe to retry for every operation, including
// non-idempotent ones.
func (r Response) Retryable() bool { return r.Status == "BUSY" || r.Status == "TIMEOUT" }

// ParseResponse parses one response line (without the newline). values
// selects whether the OK payload is numeric (data-path responses) or
// raw text (STATS).
func ParseResponse(line string, values bool) (Response, error) {
	status, rest, _ := strings.Cut(line, " ")
	r := Response{Status: status, Raw: rest}
	switch status {
	case "OK":
		if values && rest != "" {
			for _, tok := range strings.Fields(rest) {
				vs, err := parseList(tok)
				if err != nil {
					return r, fmt.Errorf("bad OK payload %q", rest)
				}
				r.Vals = append(r.Vals, vs...)
			}
		}
	case "NF", "EXISTS", "FAIL", "ERR", "BUSY", "TIMEOUT":
	default:
		return r, fmt.Errorf("unknown response status %q", status)
	}
	return r, nil
}
