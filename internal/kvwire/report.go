package kvwire

import (
	"runtime"

	"repro/internal/latency"
	"repro/internal/obs"
)

// Row is one (tenant, op) latency record, the composebench -json row
// shape extended with the percentile fields the service layer reports:
// per-tenant, per-op p50/p99/p999 read out of merged HDR histograms.
// In kvload output the latencies are response times measured from each
// request's *intended* (scheduled) send time, so queueing a stalled
// server causes shows up in the tail instead of being coordinated-
// omission'd away; in kvserver STATS output they are server-side
// service times.
type Row struct {
	Figure  string `json:"figure"` // "kvload" or "kvserver"
	Tenant  string `json:"tenant"` // tenant id, or "all"
	Op      string `json:"op"`     // protocol verb, or "all"
	Threads int    `json:"threads"`
	Ops     uint64 `json:"ops"`

	OpsPerSec float64 `json:"ops_per_sec"`
	MeanNS    float64 `json:"mean_ns"`
	P50NS     int64   `json:"p50_ns"`
	P99NS     int64   `json:"p99_ns"`
	P999NS    int64   `json:"p999_ns"`
	MaxNS     int64   `json:"max_ns"`

	// Late counts requests dispatched behind their intended schedule
	// slot (kvload only): nonzero means the open-loop generator could
	// not keep up and tail percentiles include backlog wait, exactly as
	// they should.
	Late uint64 `json:"late,omitempty"`
}

// RowFrom fills a Row from a merged snapshot. wallNS is the measured
// interval the ops were recorded over (for ops/s; <= 0 omits it).
func RowFrom(figure, tenant, op string, threads int, s latency.Snapshot, wallNS float64) Row {
	r := Row{
		Figure: figure, Tenant: tenant, Op: op, Threads: threads,
		Ops:    s.Count,
		MeanNS: s.MeanNS(),
		P50NS:  s.Percentile(0.50),
		P99NS:  s.Percentile(0.99),
		P999NS: s.Percentile(0.999),
		MaxNS:  s.MaxNS,
	}
	if wallNS > 0 {
		r.OpsPerSec = float64(s.Count) * 1e9 / wallNS
	}
	return r
}

// StageRow is one request-stage latency record: the same percentile
// shape as Row, but over the span layer's stage dimension (queue wait,
// parse, execute, degrade, write) merged across workers. kvserver
// attaches them to STATS output and kvload prints them next to its
// client-side percentiles, so a fat tail is attributable to a stage
// without a second scrape.
type StageRow struct {
	Stage  string  `json:"stage"`
	Count  uint64  `json:"count"`
	MeanNS float64 `json:"mean_ns"`
	P50NS  int64   `json:"p50_ns"`
	P99NS  int64   `json:"p99_ns"`
	P999NS int64   `json:"p999_ns"`
	MaxNS  int64   `json:"max_ns"`
}

// StageRowFrom fills a StageRow from a stage's merged snapshot.
func StageRowFrom(stage string, s latency.Snapshot) StageRow {
	return StageRow{
		Stage:  stage,
		Count:  s.Count,
		MeanNS: s.MeanNS(),
		P50NS:  s.Percentile(0.50),
		P99NS:  s.Percentile(0.99),
		P999NS: s.Percentile(0.999),
		MaxNS:  s.Max(),
	}
}

// SlowDoc is the SLOW verb's one-line JSON document: the server's tail
// exemplars (slowest requests' spans, full stage breakdown each,
// slowest first) plus the threshold gate that admitted them and the
// count of completed spans overwritten unread. Each exemplar's own
// JSON form carries the "span":1 discriminator, so a SlowDoc exemplar
// pasted into a JSONL trace file still parses as a span record.
type SlowDoc struct {
	// ThresholdNS is the exemplar gate at snapshot time: the windowed
	// p99 the span layer self-tunes to (0 until the first control
	// window closes — every span admitted).
	ThresholdNS int64 `json:"threshold_ns"`
	// Dropped counts completed spans overwritten in the per-worker
	// rings before any reader saw them.
	Dropped uint64 `json:"dropped"`
	// Exemplars are the retained slowest spans, slowest first.
	Exemplars []obs.Span `json:"exemplars"`
}

// Audit is the conservation verdict of one kvload run: the totals the
// client expects from its tracked successful responses against the
// totals the server's AUDIT command observed after quiesce. Moves,
// transfers and drains must leave all three invariant — an entry
// relocated between tenants is in exactly one map (or queue) at every
// instant, so only PUT/DEL (and PUSH/POP) change the totals.
type Audit struct {
	Pass bool `json:"pass"`

	ExpectMapCount uint64 `json:"expect_map_count"`
	GotMapCount    uint64 `json:"got_map_count"`
	// Map value-sums wrap around uint64; equality still witnesses the
	// value multiset when values are unique random tokens.
	ExpectMapSum     uint64 `json:"expect_map_sum"`
	GotMapSum        uint64 `json:"got_map_sum"`
	ExpectQueueCount uint64 `json:"expect_queue_count"`
	GotQueueCount    uint64 `json:"got_queue_count"`
}

// RobustCounters is the degradation-path accounting both binaries
// attach to their JSON documents, so a chaos run's overload and fault
// behavior is machine-checkable alongside the latency rows. kvserver
// fills the server-side fields in STATS output; kvload fills the
// client-side fields in its report. Zero-valued fields are still
// emitted: a chaos assertion greps for exact counts, and "absent"
// must not alias "zero".
type RobustCounters struct {
	// Busy: BUSY responses (kvserver: sent; kvload: received).
	Busy uint64 `json:"busy"`
	// Timeouts: kvserver counts TIMEOUT responses sent (per-request
	// deadline expiries); kvload counts connection-level timeouts it
	// observed (no response within -timeout).
	Timeouts uint64 `json:"timeouts"`
	// Retries is the number of retry attempts kvload issued after BUSY/
	// TIMEOUT responses or neutral-op connection timeouts.
	Retries uint64 `json:"retries"`
	// Ambiguous counts kvload connection timeouts on operations whose
	// execution state is unknowable (PUT/DEL/PUSH/POP: the request may
	// have executed and the response been lost) — never retried, and
	// excluded from the client's conservation expectations.
	Ambiguous uint64 `json:"ambiguous"`
	// Shed counts operations the kvserver overload controller rejected
	// with BUSY to protect the configured SLO.
	Shed uint64 `json:"shed"`
	// ShedLevel is the controller's shed level at snapshot time: tenants
	// with id >= Tenants-ShedLevel are currently being shed (0: none).
	ShedLevel int `json:"shed_level"`
	// SlowClients counts connections kvserver dropped because a response
	// write exceeded the per-connection write timeout.
	SlowClients uint64 `json:"slow_clients"`
	// LostWorkers counts worker threads kvserver retired after a fault
	// action (hard-kill) terminated their goroutine mid-operation; the
	// server degrades by that much capacity and keeps serving.
	LostWorkers uint64 `json:"lost_workers"`
	// Drained marks the final STATS document emitted by the SIGTERM
	// graceful-drain path.
	Drained bool `json:"drained"`
}

// Doc is the top-level JSON document both binaries emit: the
// composebench -json layout (host_cpus + contended honesty flags, then
// rows) extended with the load generator's schedule parameters and
// conservation audit.
type Doc struct {
	HostCPUs  int  `json:"host_cpus"`
	Contended bool `json:"contended"`

	// RateRPS/DurationMS/Conns describe the kvload schedule (omitted in
	// kvserver STATS output).
	RateRPS    float64 `json:"rate_rps,omitempty"`
	DurationMS float64 `json:"duration_ms,omitempty"`
	Conns      int     `json:"conns,omitempty"`

	Audit  *Audit          `json:"audit,omitempty"`
	Robust *RobustCounters `json:"robust,omitempty"`

	// Obs is the metrics-registry snapshot (series name → value) taken
	// when the document was built — the same names, from the same
	// registry, that the METRICS verb and cmd/stress report, documented
	// in docs/observability.md. Like RobustCounters it is kept
	// non-omitempty per series: when the map is present every known
	// series appears even at zero, because "absent" must not alias
	// "zero" for grep-style assertions. Nil only when the registry is
	// disabled (kvserver -metrics=false) or the emitter has none
	// (kvload reports).
	Obs map[string]uint64 `json:"obs,omitempty"`

	// Stages is the server-side per-stage latency breakdown (span layer
	// merged across workers), present when spans are enabled. kvload
	// echoes it from the server's STATS response into its own report.
	Stages []StageRow `json:"stages,omitempty"`

	Rows []Row `json:"rows"`
}

// NewDoc returns a Doc with the host-honesty fields filled the same
// way composebench fills them: Contended is false when the process had
// one schedulable CPU, in which case "concurrent" latencies were
// time-sliced and must not be compared against contended runs.
func NewDoc() Doc {
	return Doc{HostCPUs: runtime.NumCPU(), Contended: runtime.GOMAXPROCS(0) > 1}
}
