package kvwire

import (
	"runtime"

	"repro/internal/latency"
)

// Row is one (tenant, op) latency record, the composebench -json row
// shape extended with the percentile fields the service layer reports:
// per-tenant, per-op p50/p99/p999 read out of merged HDR histograms.
// In kvload output the latencies are response times measured from each
// request's *intended* (scheduled) send time, so queueing a stalled
// server causes shows up in the tail instead of being coordinated-
// omission'd away; in kvserver STATS output they are server-side
// service times.
type Row struct {
	Figure  string `json:"figure"` // "kvload" or "kvserver"
	Tenant  string `json:"tenant"` // tenant id, or "all"
	Op      string `json:"op"`     // protocol verb, or "all"
	Threads int    `json:"threads"`
	Ops     uint64 `json:"ops"`

	OpsPerSec float64 `json:"ops_per_sec"`
	MeanNS    float64 `json:"mean_ns"`
	P50NS     int64   `json:"p50_ns"`
	P99NS     int64   `json:"p99_ns"`
	P999NS    int64   `json:"p999_ns"`
	MaxNS     int64   `json:"max_ns"`

	// Late counts requests dispatched behind their intended schedule
	// slot (kvload only): nonzero means the open-loop generator could
	// not keep up and tail percentiles include backlog wait, exactly as
	// they should.
	Late uint64 `json:"late,omitempty"`
}

// RowFrom fills a Row from a merged snapshot. wallNS is the measured
// interval the ops were recorded over (for ops/s; <= 0 omits it).
func RowFrom(figure, tenant, op string, threads int, s latency.Snapshot, wallNS float64) Row {
	r := Row{
		Figure: figure, Tenant: tenant, Op: op, Threads: threads,
		Ops:    s.Count,
		MeanNS: s.MeanNS(),
		P50NS:  s.Percentile(0.50),
		P99NS:  s.Percentile(0.99),
		P999NS: s.Percentile(0.999),
		MaxNS:  s.MaxNS,
	}
	if wallNS > 0 {
		r.OpsPerSec = float64(s.Count) * 1e9 / wallNS
	}
	return r
}

// Audit is the conservation verdict of one kvload run: the totals the
// client expects from its tracked successful responses against the
// totals the server's AUDIT command observed after quiesce. Moves,
// transfers and drains must leave all three invariant — an entry
// relocated between tenants is in exactly one map (or queue) at every
// instant, so only PUT/DEL (and PUSH/POP) change the totals.
type Audit struct {
	Pass bool `json:"pass"`

	ExpectMapCount uint64 `json:"expect_map_count"`
	GotMapCount    uint64 `json:"got_map_count"`
	// Map value-sums wrap around uint64; equality still witnesses the
	// value multiset when values are unique random tokens.
	ExpectMapSum     uint64 `json:"expect_map_sum"`
	GotMapSum        uint64 `json:"got_map_sum"`
	ExpectQueueCount uint64 `json:"expect_queue_count"`
	GotQueueCount    uint64 `json:"got_queue_count"`
}

// Doc is the top-level JSON document both binaries emit: the
// composebench -json layout (host_cpus + contended honesty flags, then
// rows) extended with the load generator's schedule parameters and
// conservation audit.
type Doc struct {
	HostCPUs  int  `json:"host_cpus"`
	Contended bool `json:"contended"`

	// RateRPS/DurationMS/Conns describe the kvload schedule (omitted in
	// kvserver STATS output).
	RateRPS    float64 `json:"rate_rps,omitempty"`
	DurationMS float64 `json:"duration_ms,omitempty"`
	Conns      int     `json:"conns,omitempty"`

	Audit *Audit `json:"audit,omitempty"`
	Rows  []Row  `json:"rows"`
}

// NewDoc returns a Doc with the host-honesty fields filled the same
// way composebench fills them: Contended is false when the process had
// one schedulable CPU, in which case "concurrent" latencies were
// time-sliced and must not be compared against contended runs.
func NewDoc() Doc {
	return Doc{HostCPUs: runtime.NumCPU(), Contended: runtime.GOMAXPROCS(0) > 1}
}
