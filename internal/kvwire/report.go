package kvwire

import (
	"runtime"

	"repro/internal/latency"
)

// Row is one (tenant, op) latency record, the composebench -json row
// shape extended with the percentile fields the service layer reports:
// per-tenant, per-op p50/p99/p999 read out of merged HDR histograms.
// In kvload output the latencies are response times measured from each
// request's *intended* (scheduled) send time, so queueing a stalled
// server causes shows up in the tail instead of being coordinated-
// omission'd away; in kvserver STATS output they are server-side
// service times.
type Row struct {
	Figure  string `json:"figure"` // "kvload" or "kvserver"
	Tenant  string `json:"tenant"` // tenant id, or "all"
	Op      string `json:"op"`     // protocol verb, or "all"
	Threads int    `json:"threads"`
	Ops     uint64 `json:"ops"`

	OpsPerSec float64 `json:"ops_per_sec"`
	MeanNS    float64 `json:"mean_ns"`
	P50NS     int64   `json:"p50_ns"`
	P99NS     int64   `json:"p99_ns"`
	P999NS    int64   `json:"p999_ns"`
	MaxNS     int64   `json:"max_ns"`

	// Late counts requests dispatched behind their intended schedule
	// slot (kvload only): nonzero means the open-loop generator could
	// not keep up and tail percentiles include backlog wait, exactly as
	// they should.
	Late uint64 `json:"late,omitempty"`
}

// RowFrom fills a Row from a merged snapshot. wallNS is the measured
// interval the ops were recorded over (for ops/s; <= 0 omits it).
func RowFrom(figure, tenant, op string, threads int, s latency.Snapshot, wallNS float64) Row {
	r := Row{
		Figure: figure, Tenant: tenant, Op: op, Threads: threads,
		Ops:    s.Count,
		MeanNS: s.MeanNS(),
		P50NS:  s.Percentile(0.50),
		P99NS:  s.Percentile(0.99),
		P999NS: s.Percentile(0.999),
		MaxNS:  s.MaxNS,
	}
	if wallNS > 0 {
		r.OpsPerSec = float64(s.Count) * 1e9 / wallNS
	}
	return r
}

// Audit is the conservation verdict of one kvload run: the totals the
// client expects from its tracked successful responses against the
// totals the server's AUDIT command observed after quiesce. Moves,
// transfers and drains must leave all three invariant — an entry
// relocated between tenants is in exactly one map (or queue) at every
// instant, so only PUT/DEL (and PUSH/POP) change the totals.
type Audit struct {
	Pass bool `json:"pass"`

	ExpectMapCount uint64 `json:"expect_map_count"`
	GotMapCount    uint64 `json:"got_map_count"`
	// Map value-sums wrap around uint64; equality still witnesses the
	// value multiset when values are unique random tokens.
	ExpectMapSum     uint64 `json:"expect_map_sum"`
	GotMapSum        uint64 `json:"got_map_sum"`
	ExpectQueueCount uint64 `json:"expect_queue_count"`
	GotQueueCount    uint64 `json:"got_queue_count"`
}

// RobustCounters is the degradation-path accounting both binaries
// attach to their JSON documents, so a chaos run's overload and fault
// behavior is machine-checkable alongside the latency rows. kvserver
// fills the server-side fields in STATS output; kvload fills the
// client-side fields in its report. Zero-valued fields are still
// emitted: a chaos assertion greps for exact counts, and "absent"
// must not alias "zero".
type RobustCounters struct {
	// Busy: BUSY responses (kvserver: sent; kvload: received).
	Busy uint64 `json:"busy"`
	// Timeouts: kvserver counts TIMEOUT responses sent (per-request
	// deadline expiries); kvload counts connection-level timeouts it
	// observed (no response within -timeout).
	Timeouts uint64 `json:"timeouts"`
	// Retries is the number of retry attempts kvload issued after BUSY/
	// TIMEOUT responses or neutral-op connection timeouts.
	Retries uint64 `json:"retries"`
	// Ambiguous counts kvload connection timeouts on operations whose
	// execution state is unknowable (PUT/DEL/PUSH/POP: the request may
	// have executed and the response been lost) — never retried, and
	// excluded from the client's conservation expectations.
	Ambiguous uint64 `json:"ambiguous"`
	// Shed counts operations the kvserver overload controller rejected
	// with BUSY to protect the configured SLO.
	Shed uint64 `json:"shed"`
	// ShedLevel is the controller's shed level at snapshot time: tenants
	// with id >= Tenants-ShedLevel are currently being shed (0: none).
	ShedLevel int `json:"shed_level"`
	// SlowClients counts connections kvserver dropped because a response
	// write exceeded the per-connection write timeout.
	SlowClients uint64 `json:"slow_clients"`
	// LostWorkers counts worker threads kvserver retired after a fault
	// action (hard-kill) terminated their goroutine mid-operation; the
	// server degrades by that much capacity and keeps serving.
	LostWorkers uint64 `json:"lost_workers"`
	// Drained marks the final STATS document emitted by the SIGTERM
	// graceful-drain path.
	Drained bool `json:"drained"`
}

// Doc is the top-level JSON document both binaries emit: the
// composebench -json layout (host_cpus + contended honesty flags, then
// rows) extended with the load generator's schedule parameters and
// conservation audit.
type Doc struct {
	HostCPUs  int  `json:"host_cpus"`
	Contended bool `json:"contended"`

	// RateRPS/DurationMS/Conns describe the kvload schedule (omitted in
	// kvserver STATS output).
	RateRPS    float64 `json:"rate_rps,omitempty"`
	DurationMS float64 `json:"duration_ms,omitempty"`
	Conns      int     `json:"conns,omitempty"`

	Audit  *Audit          `json:"audit,omitempty"`
	Robust *RobustCounters `json:"robust,omitempty"`

	// Obs is the metrics-registry snapshot (series name → value) taken
	// when the document was built — the same names, from the same
	// registry, that the METRICS verb and cmd/stress report, documented
	// in docs/observability.md. Like RobustCounters it is kept
	// non-omitempty per series: when the map is present every known
	// series appears even at zero, because "absent" must not alias
	// "zero" for grep-style assertions. Nil only when the registry is
	// disabled (kvserver -metrics=false) or the emitter has none
	// (kvload reports).
	Obs map[string]uint64 `json:"obs,omitempty"`

	Rows []Row `json:"rows"`
}

// NewDoc returns a Doc with the host-honesty fields filled the same
// way composebench fills them: Contended is false when the process had
// one schedulable CPU, in which case "concurrent" latencies were
// time-sliced and must not be compared against contended runs.
func NewDoc() Doc {
	return Doc{HostCPUs: runtime.NumCPU(), Contended: runtime.GOMAXPROCS(0) > 1}
}
