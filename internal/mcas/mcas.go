// Package mcas implements an N-word compare-and-swap for the paper's §8
// extension: "Our methodology can also be easily extended to support n
// operations on n distinct objects, for example to create functions that
// remove an item from one object and insert it into n others atomically."
//
// The construction follows Harris, Fraser and Pratt's practical CASN
// [9]: each target word is first acquired with an RDCSS (a restricted
// double-compare single-swap conditional on the operation still being
// undecided), then the status word decides the whole operation, then the
// words are released to their new (success) or old (failure) values.
// Unlike [9], RDCSS sub-descriptors are not allocated: an RDCSS
// descriptor for entry i of operation M is fully determined by (M, i),
// so it is encoded directly in the word reference (kind = RDCSS, entry
// index in the mark field), which keeps the operation allocation-free
// beyond its one MCAS descriptor.
//
// The status word reports which entry failed, mirroring the DCAS's
// FIRSTFAILED/SECONDFAILED so core.MoveN can re-run exactly the
// operations from the failed slot onward.
package mcas

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"

	"repro/internal/hazard"
	"repro/internal/word"
)

// MaxEntries bounds the number of words one MCAS may cover; MoveN moves
// to at most MaxEntries-1 targets.
const MaxEntries = 8

// Status-word states. statusFailed(i) = statusFailedBase + 8*i. These
// values live only in the descriptor's status field, never in container
// words.
const (
	statusUndecided  uint64 = 0
	statusSuccess    uint64 = 4
	statusFailedBase uint64 = 6
)

func statusFailed(i int) uint64 { return statusFailedBase + uint64(i)*8 }
func failedIndex(st uint64) int { return int((st - statusFailedBase) / 8) }
func isFailed(st uint64) bool   { return st != statusUndecided && st != statusSuccess }
func decided(st uint64) bool    { return st != statusUndecided }

// Entry is one word of an MCAS: replace Old with New in *Ptr. HP is the
// arena index of the node containing Ptr (0 for object anchors), used to
// mirror hazard protection while helping.
type Entry struct {
	Ptr      *word.Word
	Old, New uint64
	HP       uint64
}

// Desc is an MCAS descriptor. Entries[0..N) and order are written by the
// initiator before the descriptor is published and read-only afterwards.
type Desc struct {
	N       int
	Entries [MaxEntries]Entry
	order   [MaxEntries]int // phase-1 iteration order (ascending address)

	status word.Word
	self   atomic.Uint64
	seq    uint64
}

// Status returns the raw status word (tests).
func (d *Desc) Status() uint64 { return d.status.Load() }

const (
	slabShift = 10
	slabSize  = 1 << slabShift
	slabMask  = slabSize - 1
)

// Pool is the grow-only slab store of MCAS descriptors.
type Pool struct {
	slabs  atomic.Pointer[[]*[slabSize]Desc]
	growMu sync.Mutex
	next   atomic.Uint64
	limit  uint64
	dom    *hazard.Domain

	helps atomic.Uint64
}

// NewPool creates a pool with capacity maxDescs (<=0 selects 1<<16) over
// the descriptor hazard domain.
func NewPool(maxDescs int, dom *hazard.Domain) *Pool {
	if maxDescs <= 0 {
		maxDescs = 1 << 16
	}
	if uint64(maxDescs) > word.MaxDescIndex {
		maxDescs = int(word.MaxDescIndex)
	}
	p := &Pool{limit: uint64(maxDescs), dom: dom}
	empty := make([]*[slabSize]Desc, 0)
	p.slabs.Store(&empty)
	return p
}

// At dereferences a descriptor slot index.
func (p *Pool) At(idx uint64) *Desc {
	slabs := *p.slabs.Load()
	return &slabs[idx>>slabShift][idx&slabMask]
}

// Helps reports the number of helper entries (tests, §7-style metrics).
func (p *Pool) Helps() uint64 { return p.helps.Load() }

// Carved reports how many descriptor slots the bump allocator has
// handed out (tests and diagnostics).
func (p *Pool) Carved() uint64 { return p.next.Load() }

func (p *Pool) carve(dst []uint64, n int) []uint64 {
	start := p.next.Add(uint64(n)) - uint64(n)
	end := start + uint64(n)
	if end > p.limit {
		panic("mcas: descriptor pool exhausted; configure a larger DescCapacity")
	}
	p.ensure(end)
	for i := start; i < end; i++ {
		dst = append(dst, i)
	}
	return dst
}

func (p *Pool) ensure(end uint64) {
	need := int((end + slabMask) >> slabShift)
	if len(*p.slabs.Load()) >= need {
		return
	}
	p.growMu.Lock()
	defer p.growMu.Unlock()
	cur := *p.slabs.Load()
	if len(cur) >= need {
		return
	}
	grown := make([]*[slabSize]Desc, need)
	copy(grown, cur)
	for i := len(cur); i < need; i++ {
		grown[i] = new([slabSize]Desc)
	}
	p.slabs.Store(&grown)
}

// rdcssRef builds the reference encoding the RDCSS sub-descriptor for
// entry i of the MCAS referenced by mref.
func rdcssRef(mref uint64, i int) uint64 {
	return word.MarkDesc(word.MakeDesc(word.KindRDCSS, word.DescIndex(mref), word.DescSeq(mref)), i)
}

// mcasRefOf recovers the MCAS reference from one of its RDCSS
// references.
func mcasRefOf(rref uint64) uint64 {
	return word.MakeDesc(word.KindMCAS, word.DescIndex(rref), word.DescSeq(rref))
}

// entryOf recovers the entry index from an RDCSS reference.
func entryOf(rref uint64) int { return int(word.DescTID(rref)) - 1 }

// wordAddr gives a total order over words without package unsafe;
// reflect is only used off the fast path (once per Execute, never while
// helping).
func wordAddr(w *word.Word) uintptr { return reflect.ValueOf(w).Pointer() }

// Ctx is the per-thread MCAS context.
type Ctx struct {
	tid        int
	pool       *Pool
	nodeDom    *hazard.Domain
	hpdSlot    int // descriptor-domain slot protecting the MCAS desc
	rdcssSlot  int // descriptor-domain slot used when completing foreign RDCSS
	mirrorBase int // first node-domain mirror slot (MaxEntries consecutive)

	// free is a FIFO ring of recyclable slot indexes: popped at freeHead,
	// pushed at the back, compacted in place when full (allocation-free
	// in steady state).
	free     []uint64
	freeHead int
	retired  []retiredDesc
	// flushRet parks descriptors retired inside a batch flush; EndFlush
	// recycles them under one shared hazard snapshot (see the dcas
	// package's flush path — this is its MCAS twin).
	flushRet []retiredDesc
	snap     []uint64

	foreign ForeignHelp
}

// flushRecycleAt is the minimum number of flush-parked descriptors that
// makes EndFlush pay for a hazard snapshot (lower than the dcas twin's:
// MoveN traffic is far sparser than Move traffic, so waiting for a
// dcas-sized pile would park descriptors for a long time).
const flushRecycleAt = 8

// retireScanAt is the retired-descriptor count that triggers a scan
// (kept in step with the dcas twin).
const retireScanAt = 64

type retiredDesc struct {
	d   *Desc
	ref uint64
}

// NewCtx creates the per-thread context.
func NewCtx(pool *Pool, nodeDom *hazard.Domain, tid, hpdSlot, rdcssSlot, mirrorBase int) *Ctx {
	return &Ctx{
		tid:        tid,
		pool:       pool,
		nodeDom:    nodeDom,
		hpdSlot:    hpdSlot,
		rdcssSlot:  rdcssSlot,
		mirrorBase: mirrorBase,
	}
}

// hasFree reports whether the free ring holds a recyclable slot.
func (c *Ctx) hasFree() bool { return c.freeHead < len(c.free) }

// popFree takes the oldest free slot (FIFO).
func (c *Ctx) popFree() uint64 {
	idx := c.free[c.freeHead]
	c.freeHead++
	if c.freeHead == len(c.free) {
		c.free = c.free[:0]
		c.freeHead = 0
	}
	return idx
}

// pushFree returns a slot to the ring, compacting consumed head space in
// place instead of letting append grow the backing array forever.
func (c *Ctx) pushFree(idx uint64) {
	if c.freeHead > 0 && len(c.free) == cap(c.free) {
		n := copy(c.free, c.free[c.freeHead:])
		c.free = c.free[:n]
		c.freeHead = 0
	}
	c.free = append(c.free, idx)
}

// Alloc returns a fresh descriptor with status UNDECIDED and its
// reference.
func (c *Ctx) Alloc() (*Desc, uint64) {
	if !c.hasFree() {
		if len(c.retired) > 0 {
			c.scan()
		}
		if !c.hasFree() {
			c.free = c.pool.carve(c.free, 16)
		}
	}
	idx := c.popFree()
	d := c.pool.At(idx)
	d.seq++
	ref := word.MakeDesc(word.KindMCAS, idx, d.seq)
	d.N = 0
	d.status.Store(statusUndecided)
	d.self.Store(ref)
	return d, ref
}

// FreeDirect recycles a descriptor that was never published.
func (c *Ctx) FreeDirect(d *Desc, ref uint64) {
	d.self.Store(0)
	c.pushFree(word.DescIndex(ref))
}

// Retire recycles a published descriptor through scrub + hazard scan.
func (c *Ctx) Retire(d *Desc, ref uint64) {
	c.scrub(d, ref)
	c.retired = append(c.retired, retiredDesc{d: d, ref: ref})
	if len(c.retired) >= retireScanAt {
		c.scan()
	}
}

func (c *Ctx) scrub(d *Desc, ref uint64) {
	st := d.status.Load()
	for i := 0; i < d.N; i++ {
		e := &d.Entries[i]
		for range [8]struct{}{} {
			v := e.Ptr.Load()
			switch {
			case word.SameDesc(v, ref) && word.DescKind(v) == word.KindMCAS:
				// Residual full descriptor: release per phase 2.
				if st == statusSuccess {
					e.Ptr.CAS(v, e.New)
				} else {
					e.Ptr.CAS(v, e.Old)
				}
			case word.IsDesc(v) && word.DescKind(v) == word.KindRDCSS &&
				word.DescIndex(v) == word.DescIndex(ref) && word.DescSeq(v) == word.DescSeq(ref):
				// Residual RDCSS: the operation is decided, so revert.
				e.Ptr.CAS(v, e.Old)
			default:
				goto next
			}
		}
	next:
	}
}

func (c *Ctx) scan() {
	c.snap = c.pool.dom.Snapshot(c.snap)
	kept := c.retired[:0]
	for _, rd := range c.retired {
		idx := word.DescIndex(rd.ref)
		if hazard.Protected(c.snap, idx+1) {
			kept = append(kept, rd)
			continue
		}
		dirty := false
		for i := 0; i < rd.d.N; i++ {
			v := rd.d.Entries[i].Ptr.Load()
			if word.IsDesc(v) && word.DescIndex(v) == idx && word.DescSeq(v) == word.DescSeq(rd.ref) {
				dirty = true
				break
			}
		}
		if dirty {
			c.scrub(rd.d, rd.ref)
			kept = append(kept, rd)
			continue
		}
		rd.d.self.Store(0)
		c.pushFree(idx)
	}
	c.retired = kept
}

// RetireFlush parks a published descriptor for the batch-flush recycle
// path: scrubbed now, reuse decided by EndFlush under one shared hazard
// snapshot.
func (c *Ctx) RetireFlush(d *Desc, ref uint64) {
	c.scrub(d, ref)
	c.flushRet = append(c.flushRet, retiredDesc{d: d, ref: ref})
}

// EndFlush recycles the flush-parked descriptors with one hazard
// snapshot, applying the same unprotected-and-absent conditions scan
// proves; descriptors a helper may still reach fall back to the
// conservative retire cycle. Sequence-stamped references keep the early
// reuse ABA-safe.
func (c *Ctx) EndFlush() {
	if len(c.flushRet) < flushRecycleAt {
		return
	}
	c.snap = c.pool.dom.Snapshot(c.snap)
	for _, rd := range c.flushRet {
		idx := word.DescIndex(rd.ref)
		if hazard.Protected(c.snap, idx+1) || c.residue(rd) {
			c.retired = append(c.retired, rd)
			continue
		}
		rd.d.self.Store(0)
		c.pushFree(idx)
	}
	c.flushRet = c.flushRet[:0]
	if len(c.retired) >= retireScanAt {
		c.scan()
	}
}

// residue reports whether any target word still references rd (in MCAS
// or RDCSS form).
func (c *Ctx) residue(rd retiredDesc) bool {
	idx := word.DescIndex(rd.ref)
	for i := 0; i < rd.d.N; i++ {
		v := rd.d.Entries[i].Ptr.Load()
		if word.IsDesc(v) && word.DescIndex(v) == idx && word.DescSeq(v) == word.DescSeq(rd.ref) {
			return true
		}
	}
	return false
}

// FlushParked reports the flush-parked descriptor count (tests).
func (c *Ctx) FlushParked() int { return len(c.flushRet) }

// Flush drains the retired list as far as possible (shutdown, tests).
func (c *Ctx) Flush() {
	c.retired = append(c.retired, c.flushRet...)
	c.flushRet = c.flushRet[:0]
	for prev := -1; len(c.retired) > 0 && len(c.retired) != prev; {
		prev = len(c.retired)
		c.scan()
	}
}

// ForeignHelp is installed by core so phase 1 can help a DCAS descriptor
// found in one of its target words without an import cycle.
type ForeignHelp func(w *word.Word, ref uint64)

// SetForeignHelper wires the DCAS helper.
func (c *Ctx) SetForeignHelper(h ForeignHelp) { c.foreign = h }

// Execute runs the MCAS described by d as initiator. Entries[0..N) must
// be populated and target pairwise distinct words. On failure it reports
// the index of the entry whose word did not match.
func (c *Ctx) Execute(d *Desc, ref uint64) (bool, int) {
	if d.N < 1 || d.N > MaxEntries {
		panic(fmt.Sprintf("mcas: %d entries out of range", d.N))
	}
	for i := 0; i < d.N; i++ {
		d.order[i] = i
		for j := 0; j < i; j++ {
			if d.Entries[i].Ptr == d.Entries[j].Ptr {
				panic("mcas: duplicate target word; operations must be on distinct objects")
			}
		}
	}
	// Phase-1 acquisition order: ascending address, so concurrent MCASes
	// over overlapping word sets cannot chase each other in a cycle.
	ord := d.order[:d.N]
	for i := 1; i < len(ord); i++ {
		for j := i; j > 0 && wordAddr(d.Entries[ord[j]].Ptr) < wordAddr(d.Entries[ord[j-1]].Ptr); j-- {
			ord[j], ord[j-1] = ord[j-1], ord[j]
		}
	}
	st := c.run(d, ref)
	if st == statusSuccess {
		return true, -1
	}
	return false, failedIndex(st)
}
