package mcas

import (
	"sync"
	"testing"

	"repro/internal/hazard"
	"repro/internal/word"
)

type env struct {
	pool    *Pool
	nodeDom *hazard.Domain
	ctxs    []*Ctx
}

func newEnv(threads int) *env {
	e := &env{nodeDom: hazard.New(threads, 8+MaxEntries)}
	descDom := hazard.New(threads, 2)
	e.pool = NewPool(1<<12, descDom)
	for i := 0; i < threads; i++ {
		e.ctxs = append(e.ctxs, NewCtx(e.pool, e.nodeDom, i, 0, 1, 8))
	}
	return e
}

func val(i uint64) uint64 { return word.MakeNode(100+i, 0) }

func runMCAS(c *Ctx, words []*word.Word, olds, news []uint64) (bool, int) {
	d, ref := c.Alloc()
	d.N = len(words)
	for i := range words {
		d.Entries[i] = Entry{Ptr: words[i], Old: olds[i], New: news[i]}
	}
	ok, failed := c.Execute(d, ref)
	c.Retire(d, ref)
	return ok, failed
}

func TestMCASSequentialSemantics(t *testing.T) {
	e := newEnv(1)
	c := e.ctxs[0]
	for n := 1; n <= MaxEntries; n++ {
		words := make([]*word.Word, n)
		olds := make([]uint64, n)
		news := make([]uint64, n)
		for i := 0; i < n; i++ {
			words[i] = &word.Word{}
			words[i].Store(val(uint64(i)))
			olds[i] = val(uint64(i))
			news[i] = val(uint64(100 + i))
		}
		ok, _ := runMCAS(c, words, olds, news)
		if !ok {
			t.Fatalf("n=%d: matching MCAS must succeed", n)
		}
		for i := 0; i < n; i++ {
			if words[i].Load() != news[i] {
				t.Fatalf("n=%d: word %d not updated", n, i)
			}
		}
	}
}

func TestMCASFailureReportsSlotAndChangesNothing(t *testing.T) {
	e := newEnv(1)
	c := e.ctxs[0]
	for bad := 0; bad < 4; bad++ {
		words := make([]*word.Word, 4)
		olds := make([]uint64, 4)
		news := make([]uint64, 4)
		for i := 0; i < 4; i++ {
			words[i] = &word.Word{}
			words[i].Store(val(uint64(i)))
			olds[i] = val(uint64(i))
			news[i] = val(uint64(50 + i))
		}
		olds[bad] = val(999) // mismatch at slot `bad`
		ok, failed := runMCAS(c, words, olds, news)
		if ok {
			t.Fatalf("bad=%d: must fail", bad)
		}
		if failed != bad {
			t.Fatalf("bad=%d: reported slot %d", bad, failed)
		}
		for i := 0; i < 4; i++ {
			if words[i].Load() != val(uint64(i)) {
				t.Fatalf("bad=%d: word %d changed on failure", bad, i)
			}
		}
	}
}

func TestMCASDuplicateWordPanics(t *testing.T) {
	e := newEnv(1)
	c := e.ctxs[0]
	w := &word.Word{}
	w.Store(val(1))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate words must panic")
		}
	}()
	runMCAS(c, []*word.Word{w, w}, []uint64{val(1), val(1)}, []uint64{val(2), val(3)})
}

func TestMCASReadHelpsThrough(t *testing.T) {
	e := newEnv(1)
	c := e.ctxs[0]
	var w word.Word
	w.Store(val(5))
	if got := c.Read(&w); got != val(5) {
		t.Fatalf("Read=%#x", got)
	}
}

// TestMCASConcurrentChains mirrors the DCAS history test: concurrent
// 3-word MCASes over a word pool; successful transitions must chain.
func TestMCASConcurrentChains(t *testing.T) {
	const threads = 8
	const wordsN = 6
	const opsPer = 1500
	e := newEnv(threads)
	words := make([]word.Word, wordsN)
	for i := range words {
		words[i].Store(val(uint64(1000 + i)))
	}
	type rec struct {
		w    [3]int
		olds [3]uint64
		news [3]uint64
	}
	results := make([][]rec, threads)
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			c := e.ctxs[tid]
			rng := uint64(tid)*0x9e3779b97f4a7c15 + 99
			next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
			for op := 0; op < opsPer; op++ {
				// Pick three distinct words.
				a := int(next() % wordsN)
				b := (a + 1 + int(next()%(wordsN-1))) % wordsN
				cIdx := (b + 1 + int(next()%(wordsN-2))) % wordsN
				if cIdx == a {
					cIdx = (cIdx + 1) % wordsN
					if cIdx == b {
						cIdx = (cIdx + 1) % wordsN
					}
				}
				idx := [3]int{a, b, cIdx}
				var olds, news [3]uint64
				for k := 0; k < 3; k++ {
					olds[k] = c.Read(&words[idx[k]])
					news[k] = val(1<<22 | uint64(tid)<<26 | uint64(op)<<4 | uint64(k))
				}
				ok, _ := runMCAS(c,
					[]*word.Word{&words[idx[0]], &words[idx[1]], &words[idx[2]]},
					olds[:], news[:])
				if ok {
					results[tid] = append(results[tid], rec{idx, olds, news})
				}
			}
			c.Flush()
		}(tid)
	}
	wg.Wait()

	perWord := make([]map[uint64]uint64, wordsN)
	for i := range perWord {
		perWord[i] = map[uint64]uint64{}
	}
	total := 0
	for _, rs := range results {
		total += len(rs)
		for _, r := range rs {
			for k := 0; k < 3; k++ {
				if _, dup := perWord[r.w[k]][r.olds[k]]; dup {
					t.Fatalf("word %d: old %#x consumed twice", r.w[k], r.olds[k])
				}
				perWord[r.w[k]][r.olds[k]] = r.news[k]
			}
		}
	}
	if total == 0 {
		t.Fatal("no MCAS succeeded")
	}
	for i := range words {
		cur := val(uint64(1000 + i))
		for {
			next, ok := perWord[i][cur]
			if !ok {
				break
			}
			delete(perWord[i], cur)
			cur = next
		}
		if cur != e.ctxs[0].Read(&words[i]) {
			t.Fatalf("word %d: chain ends at %#x, word holds %#x", i, cur, words[i].Load())
		}
		if len(perWord[i]) != 0 {
			t.Fatalf("word %d: %d dangling transitions", i, len(perWord[i]))
		}
	}
	t.Logf("successes=%d helps=%d", total, e.pool.Helps())
}

// TestMCASOverlappingPairsNoDeadlock: two word sets overlapping in one
// word, hammered in opposite orders — the address-ordered phase 1 plus
// helping must guarantee progress.
func TestMCASOverlappingPairsNoDeadlock(t *testing.T) {
	const threads = 4
	const opsPer = 4000
	e := newEnv(threads)
	var a, b, c word.Word
	a.Store(val(1))
	b.Store(val(2))
	c.Store(val(3))
	var wg sync.WaitGroup
	var successes [threads]int
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			cx := e.ctxs[tid]
			var w1, w2 *word.Word
			if tid%2 == 0 {
				w1, w2 = &a, &b
			} else {
				w1, w2 = &b, &c
			}
			for op := 0; op < opsPer; op++ {
				o1 := cx.Read(w1)
				o2 := cx.Read(w2)
				n1 := val(2<<22 | uint64(tid)<<26 | uint64(op)<<4)
				n2 := val(3<<22 | uint64(tid)<<26 | uint64(op)<<4)
				if ok, _ := runMCAS(cx, []*word.Word{w1, w2}, []uint64{o1, o2}, []uint64{n1, n2}); ok {
					successes[tid]++
				}
			}
			cx.Flush()
		}(tid)
	}
	wg.Wait()
	for tid, s := range successes {
		if s == 0 {
			t.Fatalf("thread %d starved (0/%d successes)", tid, opsPer)
		}
	}
}

func TestDescriptorRecyclingMCAS(t *testing.T) {
	e := newEnv(1)
	c := e.ctxs[0]
	var w1, w2 word.Word
	for i := 0; i < 500; i++ {
		w1.Store(val(1))
		w2.Store(val(2))
		ok, _ := runMCAS(c, []*word.Word{&w1, &w2}, []uint64{val(1), val(2)}, []uint64{val(3), val(4)})
		if !ok {
			t.Fatal("sequential MCAS failed")
		}
	}
	c.Flush()
	if e.pool.next.Load() > 64 {
		t.Fatalf("descriptor leak: %d slots carved for 500 sequential ops", e.pool.next.Load())
	}
}
