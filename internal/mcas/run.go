package mcas

import "repro/internal/word"

// run drives the MCAS to a decision and releases its words; both
// initiators and helpers execute it. ref is the unmarked KindMCAS
// reference.
func (c *Ctx) run(d *Desc, ref uint64) uint64 {
	if d.status.Load() == statusUndecided {
		desired := statusSuccess
	phase1:
		for _, i := range d.order[:d.N] {
			e := &d.Entries[i]
			for {
				v := c.rdcssTry(d, ref, i)
				if v == e.Old || word.SameDesc(v, ref) {
					// Acquired (or already acquired by a helper).
					break
				}
				if word.IsDesc(v) {
					switch word.DescKind(v) {
					case word.KindMCAS:
						c.HelpRef(e.Ptr, v) // help the other operation, retry
					case word.KindDCAS:
						if c.foreign != nil {
							c.foreign(e.Ptr, v)
						}
					case word.KindRDCSS:
						c.CompleteRDCSS(e.Ptr, v)
					}
					if d.status.Load() != statusUndecided {
						break phase1
					}
					continue
				}
				// Plain value mismatch: this entry's operation failed.
				desired = statusFailed(i)
				break phase1
			}
			if d.status.Load() != statusUndecided {
				break phase1
			}
		}
		d.status.CAS(statusUndecided, desired)
	}

	// Phase 2: release every word to its new (success) or old (failure)
	// value. Expected values are the unmarked descriptor reference the
	// RDCSS promotions installed.
	st := d.status.Load()
	success := st == statusSuccess
	for i := 0; i < d.N; i++ {
		e := &d.Entries[i]
		if success {
			e.Ptr.CAS(ref, e.New)
		} else {
			e.Ptr.CAS(ref, e.Old)
		}
	}
	return st
}

// rdcssTry attempts to acquire entry i for the operation: it installs
// the entry's RDCSS reference in place of the old value, then promotes
// it to the full descriptor reference if the operation is still
// undecided (reverting otherwise). It returns e.Old on acquisition and
// the conflicting value otherwise.
func (c *Ctx) rdcssTry(d *Desc, mref uint64, i int) uint64 {
	e := &d.Entries[i]
	rref := rdcssRef(mref, i)
	for {
		if e.Ptr.CAS(e.Old, rref) {
			c.promote(d, mref, i)
			return e.Old
		}
		v := e.Ptr.Load()
		if v == e.Old {
			// The install CAS lost a race but the word holds the old
			// value again (an ABA flip in between). Returning e.Old here
			// would claim an acquisition that never happened — phase 2
			// would then skip this entry entirely. Retry the install.
			continue
		}
		if v == rref {
			// Another helper installed the identical sub-descriptor;
			// completing it is idempotent.
			c.promote(d, mref, i)
			continue
		}
		return v
	}
}

// promote finishes an installed RDCSS: if the operation is still
// undecided the word becomes the full descriptor reference, otherwise it
// reverts to the old value. A promotion that races the decision can
// strand the descriptor reference in the word; phase 2 retries by
// helpers and the retire-time scrub clean it up, exactly like the DCAS's
// lazy stray cleanup.
func (c *Ctx) promote(d *Desc, mref uint64, i int) {
	e := &d.Entries[i]
	rref := rdcssRef(mref, i)
	if d.status.Load() == statusUndecided {
		e.Ptr.CAS(rref, mref)
		// Re-check: if the operation got decided while we promoted, the
		// full reference we just installed must not keep readers helping
		// a finished operation; run phase 2 for this entry.
		if decided(d.status.Load()) {
			if d.status.Load() == statusSuccess {
				e.Ptr.CAS(mref, e.New)
			} else {
				e.Ptr.CAS(mref, e.Old)
			}
		}
	} else {
		e.Ptr.CAS(rref, e.Old)
	}
}

// HelpRef helps the MCAS whose (possibly foreign) reference v was found
// in word w: protect, revalidate the word, validate descriptor identity,
// mirror the initiator's hazard pointers, then run.
func (c *Ctx) HelpRef(w *word.Word, v uint64) {
	idx := word.DescIndex(v)
	c.pool.dom.Protect(c.tid, c.hpdSlot, idx+1)
	defer c.pool.dom.Clear(c.tid, c.hpdSlot)
	if w.Load() != v {
		return
	}
	d := c.pool.At(idx)
	mref := word.UnmarkDesc(v)
	if d.self.Load() != mref {
		return
	}
	for i := 0; i < d.N && i < MaxEntries; i++ {
		c.nodeDom.Protect(c.tid, c.mirrorBase+i, d.Entries[i].HP)
	}
	c.pool.helps.Add(1)
	c.run(d, mref)
	for i := 0; i < MaxEntries; i++ {
		c.nodeDom.Clear(c.tid, c.mirrorBase+i)
	}
}

// CompleteRDCSS resolves an RDCSS reference found in a word: recover the
// owning MCAS, validate it, and promote or revert the sub-descriptor.
func (c *Ctx) CompleteRDCSS(w *word.Word, rref uint64) {
	idx := word.DescIndex(rref)
	c.pool.dom.Protect(c.tid, c.rdcssSlot, idx+1)
	defer c.pool.dom.Clear(c.tid, c.rdcssSlot)
	if w.Load() != rref {
		return
	}
	d := c.pool.At(idx)
	mref := mcasRefOf(rref)
	if d.self.Load() != mref {
		return
	}
	i := entryOf(rref)
	if i < 0 || i >= d.N {
		return
	}
	c.promote(d, mref, i)
}

// Read returns the value of *w after helping any MCAS or RDCSS
// descriptor announced there. DCAS references are left to the caller's
// dispatcher.
func (c *Ctx) Read(w *word.Word) uint64 {
	v := w.Load()
	for word.IsDesc(v) {
		switch word.DescKind(v) {
		case word.KindMCAS:
			c.HelpRef(w, v)
		case word.KindRDCSS:
			c.CompleteRDCSS(w, v)
		default:
			return v // DCAS: caller dispatches
		}
		v = w.Load()
	}
	return v
}
