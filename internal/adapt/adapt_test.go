package adapt

import (
	"sync"
	"testing"
)

// testConfig: small deterministic thresholds used across the policy
// tests.
func testConfig() Config {
	return Config{
		Enable:         true,
		EpochOps:       64,
		MinWindow:      1,
		MaxWindow:      8,
		GrowMisses:     4,
		GrowTraffic:    8,
		ShrinkTimeouts: 2,
		AttachRetries:  10,
		DetachRetries:  2,
		DetachEpochs:   2,
		PaceRetries:    20,
		PaceEpochs:     2,
		MaxLoadShift:   2,
	}
}

func TestDefaultsFill(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.EpochOps != DefaultEpochOps || c.MaxWindow != DefaultMaxWindow ||
		c.AttachRetries != DefaultAttachRetries || c.MaxLoadShift != DefaultMaxLoadShift {
		t.Fatalf("defaults not filled: %+v", c)
	}
}

// TestWindowGrowsUnderMissesWithTraffic: sustained misses with real
// traffic double the window epoch over epoch up to MaxWindow; a quiet
// epoch leaves it alone.
func TestWindowGrowsUnderMissesWithTraffic(t *testing.T) {
	c := New(testConfig(), 4)
	window := 2
	var miss, hit uint64
	for epoch := 1; epoch <= 3; epoch++ {
		miss += 10 // ≥ GrowMisses per epoch
		hit += 2   // attempts = 12 ≥ GrowTraffic
		d := c.Apply(Sample{Hits: hit, Misses: miss, Window: window})
		want := window * 2
		if want > 8 {
			want = window
		}
		if d.Window != want {
			t.Fatalf("epoch %d: window %d want %d", epoch, d.Window, want)
		}
		window = d.Window
	}
	if window != 8 {
		t.Fatalf("window=%d want MaxWindow=8", window)
	}
	// At the cap: another hot epoch must not grow past MaxWindow.
	miss += 10
	hit += 2
	if d := c.Apply(Sample{Hits: hit, Misses: miss, Window: window}); d.Window != 8 {
		t.Fatalf("window grew past cap: %d", d.Window)
	}
	// A quiet epoch holds the window.
	if d := c.Apply(Sample{Hits: hit, Misses: miss, Window: window}); d.Window != 8 {
		t.Fatalf("quiet epoch moved the window: %d", d.Window)
	}
	if s := c.Stats(); s.WindowGrows != 2 {
		t.Fatalf("WindowGrows=%d want 2", s.WindowGrows)
	}
}

// TestWindowShrinksAfterColdTimeouts: parks expiring with zero hits
// halve the window down to MinWindow; a single hit in the epoch blocks
// the shrink (the array is not cold).
func TestWindowShrinksAfterColdTimeouts(t *testing.T) {
	c := New(testConfig(), 4)
	var to, miss uint64
	// Cold epoch: timeouts ≥ ShrinkTimeouts, no hits.
	to += 3
	miss += 3 // timeouts also count as misses at the source
	d := c.Apply(Sample{Misses: miss, Timeouts: to, Window: 8})
	if d.Window != 4 {
		t.Fatalf("cold epoch: window %d want 4", d.Window)
	}
	// Timeouts with a hit: not cold, hold.
	to += 3
	miss += 3
	d = c.Apply(Sample{Hits: 1, Misses: miss, Timeouts: to, Window: 4})
	if d.Window != 4 {
		t.Fatalf("warm epoch shrank: %d", d.Window)
	}
	// Two more cold epochs: down to MinWindow and stop.
	for _, want := range []int{2, 1, 1} {
		to += 3
		miss += 3
		d = c.Apply(Sample{Hits: 1, Misses: miss, Timeouts: to, Window: d.Window})
		if d.Window != want {
			t.Fatalf("window %d want %d", d.Window, want)
		}
	}
	if s := c.Stats(); s.WindowShrinks != 3 {
		t.Fatalf("WindowShrinks=%d want 3", s.WindowShrinks)
	}
}

// TestColdStreamPrefersShrinkOverGrow: a stream of expiring parks
// raises the miss counter too (the array counts a timeout as a miss);
// the shrink rule must win over the grow rule.
func TestColdStreamPrefersShrinkOverGrow(t *testing.T) {
	c := New(testConfig(), 4)
	// 10 timeouts = 10 misses: passes both the grow gate (misses ≥ 4,
	// attempts ≥ 8) and the shrink gate (timeouts ≥ 2, hits 0).
	d := c.Apply(Sample{Misses: 10, Timeouts: 10, Window: 4})
	if d.Window != 2 {
		t.Fatalf("cold stream grew the window: %d want 2", d.Window)
	}
}

// TestHotAttachDetachHysteresis: one hot epoch attaches; detaching
// needs DetachEpochs consecutive calm epochs, and an epoch inside the
// hysteresis band (between the thresholds) resets nothing but also
// detaches nothing.
func TestHotAttachDetachHysteresis(t *testing.T) {
	c := New(testConfig(), 4)
	var r uint64

	// Below attach: stays off.
	r += 5
	c.Apply(Sample{Retries: r})
	if c.ElimActive() {
		t.Fatal("attached below AttachRetries")
	}
	// One epoch at the attach threshold: on.
	r += 10
	c.Apply(Sample{Retries: r})
	if !c.ElimActive() {
		t.Fatal("did not attach at AttachRetries")
	}
	// One calm epoch (≤ DetachRetries): still on (needs 2 consecutive).
	r += 1
	c.Apply(Sample{Retries: r})
	if !c.ElimActive() {
		t.Fatal("detached after a single calm epoch")
	}
	// Mid-band epoch (between detach and attach): holds on AND resets
	// the calm streak.
	r += 5
	c.Apply(Sample{Retries: r})
	if !c.ElimActive() {
		t.Fatal("mid-band epoch detached")
	}
	// Two consecutive calm epochs: off.
	r += 1
	c.Apply(Sample{Retries: r})
	if !c.ElimActive() {
		t.Fatal("calm streak was not reset by the mid-band epoch")
	}
	r += 1
	c.Apply(Sample{Retries: r})
	if c.ElimActive() {
		t.Fatal("did not detach after DetachEpochs calm epochs")
	}
	s := c.Stats()
	if s.Attaches != 1 || s.Detaches != 1 {
		t.Fatalf("attaches=%d detaches=%d want 1/1", s.Attaches, s.Detaches)
	}
}

// TestPacingRaisesAndDecays: sustained retry pressure raises LoadShift
// one notch per PaceEpochs hot epochs up to the cap; calm epochs decay
// it back to zero.
func TestPacingRaisesAndDecays(t *testing.T) {
	c := New(testConfig(), 4)
	var r uint64
	hot := func() { r += 25; c.Apply(Sample{Retries: r}) } // ≥ PaceRetries
	calm := func() { r += 5; c.Apply(Sample{Retries: r}) } // ≤ PaceRetries/2
	mid := func() { r += 15; c.Apply(Sample{Retries: r}) } // between

	hot()
	if c.LoadShift() != 0 {
		t.Fatal("raised after one hot epoch (want PaceEpochs=2)")
	}
	hot()
	if c.LoadShift() != 1 {
		t.Fatalf("shift=%d want 1 after 2 hot epochs", c.LoadShift())
	}
	hot()
	hot()
	if c.LoadShift() != 2 {
		t.Fatalf("shift=%d want 2", c.LoadShift())
	}
	hot()
	hot()
	if c.LoadShift() != 2 {
		t.Fatalf("shift=%d exceeded MaxLoadShift", c.LoadShift())
	}
	// A mid epoch (above the decay threshold, below pace) holds.
	mid()
	if c.LoadShift() != 2 {
		t.Fatalf("mid epoch moved shift: %d", c.LoadShift())
	}
	calm()
	calm()
	if c.LoadShift() != 0 {
		t.Fatalf("shift=%d want 0 after calm decay", c.LoadShift())
	}
	s := c.Stats()
	if s.PaceRaises != 2 || s.PaceDecays != 2 {
		t.Fatalf("raises=%d decays=%d want 2/2", s.PaceRaises, s.PaceDecays)
	}
}

// TestRegressingCountersClampToZero: a source whose cumulative counter
// moves backwards (the map's bucket retries age out with a drained
// table) must read as a zero delta, not a huge unsigned wrap.
func TestRegressingCountersClampToZero(t *testing.T) {
	c := New(testConfig(), 4)
	c.Apply(Sample{Retries: 1000})
	if !c.ElimActive() {
		t.Fatal("first epoch with 1000 retries should attach")
	}
	// Counter regressed to 3: delta must clamp to 0 (a calm epoch),
	// not wrap to ~2^64 (a scorching one).
	for i := 0; i < testConfig().DetachEpochs; i++ {
		c.Apply(Sample{Retries: 3})
	}
	if c.ElimActive() {
		// Note: after the first regression, last=3, so subsequent
		// epochs have delta 0 ≤ DetachRetries and detach.
		t.Fatal("regressed counter kept the object hot")
	}
}

// TestTickEpochGate: the striped clock crosses one epoch per EpochOps
// ticks (approximately) and exactly one concurrent caller wins each
// epoch.
func TestTickEpochGate(t *testing.T) {
	cfg := testConfig()
	c := New(cfg, 4)
	wins := 0
	for i := 0; i < cfg.EpochOps*4; i++ {
		if c.Tick(0) {
			wins++
			c.Apply(Sample{}) // release the gate
		}
	}
	if wins < 2 || wins > 5 {
		t.Fatalf("wins=%d over 4 epochs' worth of ticks", wins)
	}
	if got := c.Epochs(); got != uint64(wins) {
		t.Fatalf("epochs=%d want %d", got, wins)
	}
}

// TestTickConcurrentSingleSampler: racing tickers never yield two
// concurrent samplers (the gate is claim/release) and the tick path is
// race-clean.
func TestTickConcurrentSingleSampler(t *testing.T) {
	cfg := testConfig()
	cfg.EpochOps = 256
	c := New(cfg, 8)
	var wg sync.WaitGroup
	var mu sync.Mutex
	inSample := false
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < 10_000; i++ {
				if c.Tick(tid) {
					mu.Lock()
					if inSample {
						t.Error("two concurrent samplers")
					}
					inSample = true
					mu.Unlock()
					mu.Lock()
					inSample = false
					mu.Unlock()
					c.Apply(Sample{})
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Epochs() == 0 {
		t.Fatal("no epochs completed under concurrency")
	}
}
