// Package adapt is the feedback-driven contention-management subsystem:
// it turns the raw contention signals the containers already produce
// (CAS retries, elimination hits/misses, park timeouts, grow pressure)
// into control decisions the containers consume. The loop closes the
// open ends the static knobs left: elim.Config.Slots/Spins are fixed,
// only mid-grow map shards eliminate, and hashmap.ContentionStats had
// no consumer.
//
// # Model
//
// Each adapting object (a stack, a map shard) owns one Controller. The
// object's operations drive the controller's epoch clock with Tick —
// one cheap increment of a cache-line padded per-thread stripe, no
// shared write in the common case. When the striped operation count
// crosses Config.EpochOps, exactly one thread wins the epoch gate (a
// CAS) and becomes that epoch's sampler: it gathers the object's
// cumulative signal counters into a Sample and calls Apply, which
// differences the sample against the previous epoch, runs the three
// policies below, publishes the decisions in wait-free-readable
// atomics, and releases the gate. There is no background goroutine;
// adaptation advances only as fast as traffic does, and a quiescent
// object pays nothing.
//
// # Policies
//
//   - Window sizing: the classic Hendler/Shavit refinement. An
//     elimination array whose misses pile up while real traffic flows
//     (parkers colliding on busy slots, takers racing for the same
//     offers) doubles its active slot window; an array whose parks
//     expire cold (timeouts with zero hits) halves it. The window
//     bounds live in [MinWindow, MaxWindow].
//
//   - Hot-object elimination: a shard whose per-epoch CAS-retry delta
//     crosses AttachRetries starts routing contention losers to its
//     elimination array even though no grow is in flight; it detaches
//     only after DetachEpochs consecutive epochs at or below
//     DetachRetries — the attach/detach thresholds plus the epoch
//     count form the hysteresis band that keeps the decision from
//     flapping.
//
//   - Rebalance pacing: PaceEpochs consecutive epochs at or above
//     PaceRetries raise LoadShift by one notch (to at most
//     MaxLoadShift); the consumer subtracts the shift from its
//     grow-load threshold, so a shard that stays contended splits
//     earlier than a merely full one. Calm epochs (retries at or below
//     half of PaceRetries) decay the shift back toward zero.
//
// Decisions tune the contention layer only — where an operation waits
// and when a shard splits. They never move a linearization point:
// threads inside a Move/MoveN bypass the elimination layer no matter
// what the controller decides (the containers enforce that gate, and
// the composition tests probe it).
package adapt

import (
	"sync/atomic"

	"repro/internal/pad"
)

// Defaults (see Config).
const (
	DefaultEpochOps      = 4096
	DefaultMinWindow     = 1
	DefaultMaxWindow     = 16
	DefaultGrowMisses    = 8
	DefaultGrowTraffic   = 16
	DefaultShrinkTOs     = 4
	DefaultAttachRetries = 64
	DefaultDetachRetries = 8
	DefaultDetachEpochs  = 3
	DefaultPaceRetries   = 128
	DefaultPaceEpochs    = 2
	DefaultMaxLoadShift  = 3
)

// Config tunes the adaptive contention-management subsystem; it rides
// on core.Config.Adaptive so one knob configures every container built
// from that runtime. The zero value of every field selects the
// package default.
type Config struct {
	// Enable switches adaptation on for the containers that support it
	// (stacks adapt their elimination window; map shards additionally
	// adapt hot-shard elimination and rebalance pacing). Enabling
	// adaptation attaches elimination arrays to those containers even
	// when Config.Elimination is off — the arrays are the mechanism two
	// of the three policies steer.
	Enable bool
	// EpochOps is the approximate operation count between samples.
	EpochOps int
	// MinWindow/MaxWindow bound the elimination array's active slot
	// window (MaxWindow is additionally capped by the array capacity).
	MinWindow, MaxWindow int
	// GrowMisses/GrowTraffic: the window doubles when an epoch's miss
	// delta reaches GrowMisses while the attempt delta (hits + misses)
	// reaches GrowTraffic — misses with traffic, not a cold array.
	GrowMisses, GrowTraffic uint64
	// ShrinkTimeouts: the window halves when an epoch saw this many
	// park timeouts and not a single hit (parks expiring cold).
	ShrinkTimeouts uint64
	// AttachRetries/DetachRetries/DetachEpochs: hot-object elimination
	// hysteresis. One epoch at or above AttachRetries retries attaches;
	// DetachEpochs consecutive epochs at or below DetachRetries detach.
	AttachRetries, DetachRetries uint64
	DetachEpochs                 int
	// PaceRetries/PaceEpochs/MaxLoadShift: rebalance pacing. Sustained
	// retry pressure raises LoadShift (lowering the consumer's
	// effective grow-load threshold) one notch per PaceEpochs
	// consecutive hot epochs, up to MaxLoadShift; calm epochs decay it.
	PaceRetries  uint64
	PaceEpochs   int
	MaxLoadShift int
}

// WithDefaults fills zero fields with the package defaults.
func (c Config) WithDefaults() Config {
	if c.EpochOps <= 0 {
		c.EpochOps = DefaultEpochOps
	}
	if c.MinWindow <= 0 {
		c.MinWindow = DefaultMinWindow
	}
	if c.MaxWindow <= 0 {
		c.MaxWindow = DefaultMaxWindow
	}
	if c.GrowMisses == 0 {
		c.GrowMisses = DefaultGrowMisses
	}
	if c.GrowTraffic == 0 {
		c.GrowTraffic = DefaultGrowTraffic
	}
	if c.ShrinkTimeouts == 0 {
		c.ShrinkTimeouts = DefaultShrinkTOs
	}
	if c.AttachRetries == 0 {
		c.AttachRetries = DefaultAttachRetries
	}
	if c.DetachRetries == 0 {
		c.DetachRetries = DefaultDetachRetries
	}
	if c.DetachEpochs <= 0 {
		c.DetachEpochs = DefaultDetachEpochs
	}
	if c.PaceRetries == 0 {
		c.PaceRetries = DefaultPaceRetries
	}
	if c.PaceEpochs <= 0 {
		c.PaceEpochs = DefaultPaceEpochs
	}
	if c.MaxLoadShift <= 0 {
		c.MaxLoadShift = DefaultMaxLoadShift
	}
	return c
}

// Sample is one epoch's view of an object's cumulative signal
// counters, gathered by the sampling thread. All counter fields are
// running totals, not deltas — Apply differences them against the
// previous sample (clamping at zero, because some sources regress:
// the map's per-bucket retry counters age out when a grow retires
// their table).
type Sample struct {
	// Retries is the object's accumulated lost linearization CASes
	// (harrislist.Retries summed over a shard's chain; the stack's own
	// counter).
	Retries uint64
	// Hits/Misses/Timeouts are the object's elimination array counters
	// (elim.Array.Stats and Timeouts); zero when no array is attached.
	Hits, Misses, Timeouts uint64
	// Window is the array's current active slot window (0: no array —
	// window sizing is skipped).
	Window int
}

// Decision is what Apply hands back to the sampling container: the
// desired elimination window plus the two gate values. The gates are
// also published on the controller for wait-free hot-path reads
// (ElimActive, LoadShift); Window is not — only the sampler resizes
// the array, so it rides on the return value.
type Decision struct {
	// Window is the desired active slot window (equal to the sampled
	// window when no resize is called for; 0 when no array exists).
	Window int
	// ElimActive reports whether contention losers should route to the
	// elimination array even outside a grow.
	ElimActive bool
	// LoadShift is how many notches to subtract from the grow-load
	// threshold.
	LoadShift int
}

// Stats counts the controller's decisions (all monotone).
type Stats struct {
	// Epochs is the number of completed samples.
	Epochs uint64
	// WindowGrows/WindowShrinks count APPLIED window resizes — actual
	// movements of the sampled window between consecutive epochs, not
	// emitted decisions (a decision the container's TryResize refuses,
	// e.g. over a waiting offer, is never counted).
	WindowGrows, WindowShrinks uint64
	// Attaches/Detaches count hot-object elimination transitions.
	Attaches, Detaches uint64
	// PaceRaises/PaceDecays count LoadShift notches moved.
	PaceRaises, PaceDecays uint64
}

// Add accumulates o into s (aggregating per-shard controllers).
func (s *Stats) Add(o Stats) {
	s.Epochs += o.Epochs
	s.WindowGrows += o.WindowGrows
	s.WindowShrinks += o.WindowShrinks
	s.Attaches += o.Attaches
	s.Detaches += o.Detaches
	s.PaceRaises += o.PaceRaises
	s.PaceDecays += o.PaceDecays
}

// stripe is one thread's operation counter, padded so concurrent ticks
// never false-share.
type stripe struct {
	n atomic.Uint64
	_ pad.Pad56
}

// Controller is one object's feedback loop. Create with New; share
// freely between threads. Tick and the decision readers are safe from
// any thread; Apply must only be called by the thread that last won
// Tick (or by a test driving the policy directly — the gate tolerates
// an unheld release).
type Controller struct {
	cfg Config

	stripes    []stripe
	checkEvery uint64

	gate      atomic.Uint32
	sampledAt atomic.Uint64 // tick total at the last claimed epoch

	// Published decisions (wait-free reads on the hot path).
	elimActive atomic.Bool
	loadShift  atomic.Int32

	// Decision counters.
	epochs, winGrows, winShrinks atomic.Uint64
	attaches, detaches           atomic.Uint64
	paceRaises, paceDecays       atomic.Uint64

	// Sampler-owned state: written only between a winning Tick and the
	// matching Apply (or by a single-threaded test).
	last       Sample
	haveLast   bool
	coldEpochs int
	hotEpochs  int
}

// New builds a controller for one object. threadsHint (typically the
// runtime's MaxThreads) sizes the tick stripes; thread ids index them
// modulo the stripe count.
func New(cfg Config, threadsHint int) *Controller {
	cfg = cfg.WithDefaults()
	if threadsHint < 1 {
		threadsHint = 1
	}
	check := uint64(cfg.EpochOps) / 8
	if check < 1 {
		check = 1
	}
	if check > 64 {
		check = 64
	}
	return &Controller{
		cfg:        cfg,
		stripes:    make([]stripe, threadsHint),
		checkEvery: check,
	}
}

// Config reports the controller's effective (default-filled) tuning.
func (c *Controller) Config() Config { return c.cfg }

// totalTicks sums the stripes — a wait-free (if racy) read; epoch
// boundaries are approximate by design.
func (c *Controller) totalTicks() uint64 {
	var n uint64
	for i := range c.stripes {
		n += c.stripes[i].n.Load()
	}
	return n
}

// Tick advances the epoch clock by one operation on behalf of thread
// tid. It returns true when this call crossed an epoch boundary AND
// won the sampling gate: the caller is now the epoch's sampler and
// must gather a Sample and call Apply (which releases the gate). The
// common path is one uncontended striped increment; the shared total
// is only summed every few dozen local operations.
func (c *Controller) Tick(tid int) bool {
	s := &c.stripes[uint(tid)%uint(len(c.stripes))]
	n := s.n.Add(1)
	if n%c.checkEvery != 0 {
		return false
	}
	if c.totalTicks()-c.sampledAt.Load() < uint64(c.cfg.EpochOps) {
		return false
	}
	if !c.gate.CompareAndSwap(0, 1) {
		return false // another thread is sampling this epoch
	}
	total := c.totalTicks()
	if total-c.sampledAt.Load() < uint64(c.cfg.EpochOps) {
		c.gate.Store(0) // lost the re-check: someone sampled in between
		return false
	}
	c.sampledAt.Store(total)
	return true
}

// Apply runs the three policies over one epoch's sample, publishes the
// gate decisions, and releases the sampling gate. It returns the full
// decision so the caller can apply the window resize (the one decision
// with a mechanism only the container reaches). Deterministic: the
// decision depends only on the sample stream, which is what the unit
// tests exploit.
func (c *Controller) Apply(s Sample) Decision {
	d := Decision{Window: s.Window}
	prev := c.last
	if !c.haveLast {
		prev = Sample{} // first epoch differences against zero
	}
	dRetries := monotoneDelta(s.Retries, prev.Retries)
	dHits := monotoneDelta(s.Hits, prev.Hits)
	dMisses := monotoneDelta(s.Misses, prev.Misses)
	dTimeouts := monotoneDelta(s.Timeouts, prev.Timeouts)
	hadLast := c.haveLast
	c.last = s
	c.haveLast = true

	// Count APPLIED resizes: the sampled window moving between epochs.
	// A decision the container could not apply (TryResize refused over
	// a waiting offer) must not inflate the stats readers use to judge
	// the adaptation curve.
	if hadLast && prev.Window > 0 && s.Window > 0 {
		switch {
		case s.Window > prev.Window:
			c.winGrows.Add(1)
		case s.Window < prev.Window:
			c.winShrinks.Add(1)
		}
	}

	// Window sizing. Cold parks first: timeouts also count as misses,
	// so a stream of expiring offers must not read as grow pressure.
	if s.Window > 0 {
		switch {
		case dTimeouts >= c.cfg.ShrinkTimeouts && dHits == 0:
			if half := s.Window / 2; half >= c.cfg.MinWindow {
				d.Window = half
			}
		case dMisses >= c.cfg.GrowMisses && dHits+dMisses >= c.cfg.GrowTraffic:
			if twice := s.Window * 2; twice <= c.cfg.MaxWindow {
				d.Window = twice
			}
		}
	}

	// Hot-object elimination with hysteresis.
	switch {
	case dRetries >= c.cfg.AttachRetries:
		if !c.elimActive.Load() {
			c.elimActive.Store(true)
			c.attaches.Add(1)
		}
		c.coldEpochs = 0
	case c.elimActive.Load() && dRetries <= c.cfg.DetachRetries:
		c.coldEpochs++
		if c.coldEpochs >= c.cfg.DetachEpochs {
			c.elimActive.Store(false)
			c.detaches.Add(1)
			c.coldEpochs = 0
		}
	default:
		c.coldEpochs = 0 // inside the hysteresis band: hold state
	}

	// Rebalance pacing.
	if dRetries >= c.cfg.PaceRetries {
		c.hotEpochs++
		if c.hotEpochs >= c.cfg.PaceEpochs {
			if sh := c.loadShift.Load(); int(sh) < c.cfg.MaxLoadShift {
				c.loadShift.Store(sh + 1)
				c.paceRaises.Add(1)
			}
			c.hotEpochs = 0
		}
	} else {
		c.hotEpochs = 0
		if dRetries*2 <= c.cfg.PaceRetries {
			if sh := c.loadShift.Load(); sh > 0 {
				c.loadShift.Store(sh - 1)
				c.paceDecays.Add(1)
			}
		}
	}

	d.ElimActive = c.elimActive.Load()
	d.LoadShift = int(c.loadShift.Load())
	c.epochs.Add(1)
	c.gate.Store(0)
	return d
}

// monotoneDelta differences two cumulative counters, clamping at zero
// for sources that can regress (aged-out tables).
func monotoneDelta(now, then uint64) uint64 {
	if now < then {
		return 0
	}
	return now - then
}

// ElimActive reports the hot-object elimination gate (wait-free).
func (c *Controller) ElimActive() bool { return c.elimActive.Load() }

// LoadShift reports how many notches to subtract from the grow-load
// threshold (wait-free).
func (c *Controller) LoadShift() int { return int(c.loadShift.Load()) }

// Epochs reports the number of completed samples.
func (c *Controller) Epochs() uint64 { return c.epochs.Load() }

// Stats snapshots the decision counters.
func (c *Controller) Stats() Stats {
	return Stats{
		Epochs:        c.epochs.Load(),
		WindowGrows:   c.winGrows.Load(),
		WindowShrinks: c.winShrinks.Load(),
		Attaches:      c.attaches.Load(),
		Detaches:      c.detaches.Load(),
		PaceRaises:    c.paceRaises.Load(),
		PaceDecays:    c.paceDecays.Load(),
	}
}
