package pqueue

import (
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/msqueue"
)

func newRT(threads int) *core.Runtime {
	return core.NewRuntime(core.Config{MaxThreads: threads, ArenaCapacity: 1 << 18, DescCapacity: 1 << 14})
}

func TestMinOrder(t *testing.T) {
	rt := newRT(1)
	th := rt.RegisterThread()
	pq := New(th)
	for _, pr := range []uint64{50, 10, 90, 30, 70} {
		if !pq.Insert(th, pr, pr*100) {
			t.Fatalf("insert %d failed", pr)
		}
	}
	want := []uint64{10, 30, 50, 70, 90}
	for _, w := range want {
		pr, val, ok := pq.RemoveMin(th)
		if !ok || pr != w || val != w*100 {
			t.Fatalf("RemoveMin: %d,%d,%v want %d", pr, val, ok, w)
		}
	}
	if _, _, ok := pq.RemoveMin(th); ok {
		t.Fatal("empty RemoveMin must fail")
	}
}

func TestDuplicatePriorities(t *testing.T) {
	rt := newRT(1)
	th := rt.RegisterThread()
	pq := New(th)
	for i := uint64(0); i < 100; i++ {
		if !pq.Insert(th, 5, i) {
			t.Fatalf("duplicate-priority insert %d failed", i)
		}
	}
	if pq.Len(th) != 100 {
		t.Fatalf("Len=%d", pq.Len(th))
	}
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		pr, val, ok := pq.RemoveMin(th)
		if !ok || pr != 5 {
			t.Fatalf("RemoveMin %d: pr=%d ok=%v", i, pr, ok)
		}
		if seen[val] {
			t.Fatalf("value %d twice", val)
		}
		seen[val] = true
	}
}

func TestMinPeek(t *testing.T) {
	rt := newRT(1)
	th := rt.RegisterThread()
	pq := New(th)
	if _, _, ok := pq.Min(th); ok {
		t.Fatal("Min on empty")
	}
	pq.Insert(th, 9, 90)
	pq.Insert(th, 3, 30)
	pr, val, ok := pq.Min(th)
	if !ok || pr != 3 || val != 30 {
		t.Fatalf("Min: %d,%d,%v", pr, val, ok)
	}
	if pq.Len(th) != 2 {
		t.Fatal("Min must not remove")
	}
}

func TestPriorityBounds(t *testing.T) {
	rt := newRT(1)
	th := rt.RegisterThread()
	pq := New(th)
	if pq.Insert(th, MaxPriority+1, 1) {
		t.Fatal("over-limit priority must be rejected")
	}
	if !pq.Insert(th, MaxPriority, 1) {
		t.Fatal("max priority must be accepted")
	}
	pr, _, _ := pq.RemoveMin(th)
	if pr != MaxPriority {
		t.Fatalf("roundtrip priority %d", pr)
	}
}

func TestMoveWithQueue(t *testing.T) {
	rt := newRT(2)
	th := rt.RegisterThread()
	pq := New(th)
	q := msqueue.New(th)
	pq.Insert(th, 7, 700)
	pq.Insert(th, 2, 200)

	// Move the most urgent item out of the priority queue.
	if v, ok := th.Move(pq, q, 0, 0); !ok || v != 200 {
		t.Fatalf("pq→queue move: %d,%v", v, ok)
	}
	if pq.Len(th) != 1 {
		t.Fatal("pq should have one element left")
	}
	// Move it back in at priority 1 (most urgent).
	if v, ok := th.Move(q, pq, 0, 1); !ok || v != 200 {
		t.Fatalf("queue→pq move: %d,%v", v, ok)
	}
	pr, val, _ := pq.RemoveMin(th)
	if pr != 1 || val != 200 {
		t.Fatalf("moved element priority/val: %d/%d", pr, val)
	}
}

func TestConcurrentOrderedDrain(t *testing.T) {
	const workers = 4
	const per = 2000
	rt := newRT(workers + 1)
	setup := rt.RegisterThread()
	pq := New(setup)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := rt.RegisterThread()
			for i := 0; i < per; i++ {
				if !pq.Insert(th, uint64(w*per+i), uint64(i)) {
					t.Errorf("insert failed")
					return
				}
			}
			th.FlushMemory()
		}(w)
	}
	wg.Wait()
	if pq.Len(setup) != workers*per {
		t.Fatalf("Len=%d", pq.Len(setup))
	}
	var drained []uint64
	for {
		pr, _, ok := pq.RemoveMin(setup)
		if !ok {
			break
		}
		drained = append(drained, pr)
	}
	if len(drained) != workers*per {
		t.Fatalf("drained %d", len(drained))
	}
	if !sort.SliceIsSorted(drained, func(i, j int) bool { return drained[i] <= drained[j] }) {
		t.Fatal("drain not in priority order")
	}
}

// TestConcurrentMixedWithMoves circulates tokens between a priority
// queue and a FIFO queue under concurrent movers; conservation must
// hold.
func TestConcurrentMixedWithMoves(t *testing.T) {
	const workers = 6
	const tokens = 128
	const opsPer = 3000
	rt := newRT(workers + 1)
	setup := rt.RegisterThread()
	pq := New(setup)
	q := msqueue.New(setup)
	for i := uint64(1); i <= tokens; i++ {
		pq.Insert(setup, i, i)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := rt.RegisterThread()
			rng := uint64(w)*2654435761 + 99
			next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
			for i := 0; i < opsPer; i++ {
				if next()&1 == 0 {
					th.Move(pq, q, 0, next()%1000)
				} else {
					th.Move(q, pq, 0, next()%1000)
				}
			}
			th.FlushMemory()
		}(w)
	}
	wg.Wait()
	seen := map[uint64]int{}
	for {
		_, v, ok := pq.RemoveMin(setup)
		if !ok {
			break
		}
		seen[v]++
	}
	for {
		v, ok := q.Dequeue(setup)
		if !ok {
			break
		}
		seen[v]++
	}
	if len(seen) != tokens {
		t.Fatalf("%d distinct tokens, want %d", len(seen), tokens)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("token %d seen %d times", v, n)
		}
	}
}
