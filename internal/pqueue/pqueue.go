// Package pqueue implements a move-ready lock-free priority queue on
// top of the ordered list, in the style of Lotan & Shavit's list-based
// priority queues: RemoveMin takes the smallest priority, and both
// linearization points are pointer CASes, so the queue composes with
// every other move-ready object.
//
// This is a third demonstration (beyond the paper's queue and stack, and
// this repository's list/map) that the move-candidate conditions of
// Definition 1 capture a broad class of structures.
//
// Priorities need not be unique: internally an element's key is its
// priority in the high 48 bits plus a per-thread uniquifier below, so
// concurrent inserts at equal priority don't collide. Priorities at or
// above 2^48 are rejected.
package pqueue

import (
	"repro/internal/core"
	"repro/internal/harrislist"
)

// uniqBits is the width of the uniquifier suffix.
const uniqBits = 16

// MaxPriority is the largest usable priority.
const MaxPriority = (uint64(1) << (64 - uniqBits)) - 1

// PQueue is a move-ready min-priority queue of uint64 values.
type PQueue struct {
	l  *harrislist.List
	id uint64
}

var _ core.MoveReady = (*PQueue)(nil)

// New creates an empty priority queue.
func New(t *core.Thread) *PQueue {
	pq := &PQueue{id: t.Runtime().NextObjectID()}
	pq.l = harrislist.NewWithID(pq.id)
	return pq
}

// ObjectID implements core.MoveReady.
func (p *PQueue) ObjectID() uint64 { return p.id }

// Insert adds val with the given priority. It returns false only when
// used as a move target and the move aborts, or when priority exceeds
// MaxPriority.
func (p *PQueue) Insert(t *core.Thread, priority, val uint64) bool {
	if priority > MaxPriority {
		return false
	}
	// The uniquifier mixes the thread id with a per-call probe counter;
	// a rare collision just retries with the next value. During a move,
	// each list insert that fails on a duplicate key returns without
	// reaching scas, so retrying with a fresh key keeps the move's
	// abort/retry protocol intact.
	base := priority << uniqBits
	h := uint64(t.ID())<<7 ^ t.Seq()
	for probe := uint64(0); probe < 1<<uniqBits; probe++ {
		key := base | ((h + probe) & ((1 << uniqBits) - 1))
		if p.l.Insert(t, key, val) {
			return true
		}
		if t.MoveInFlight() && probe > 8 {
			// Inside a move, give up quickly after a few probes: the
			// composition can abort cleanly rather than spin.
			return false
		}
	}
	return false
}

// RemoveMin removes the element with the smallest priority.
func (p *PQueue) RemoveMin(t *core.Thread) (priority, val uint64, ok bool) {
	key, val, ok := p.l.RemoveMin(t)
	return key >> uniqBits, val, ok
}

// Min peeks at the smallest priority.
func (p *PQueue) Min(t *core.Thread) (priority, val uint64, ok bool) {
	key, val, ok := p.l.Min(t)
	return key >> uniqBits, val, ok
}

// PrepareRemove implements core.RemovePreparer for the batched move
// pipeline: an empty Min walk is a linearizable emptiness observation
// (a failed batched move may linearize at it); a hit warms the head of
// the list for the commit's RemoveMin.
func (p *PQueue) PrepareRemove(t *core.Thread, _ uint64) bool {
	_, _, ok := p.l.Min(t)
	return ok
}

// PrepareInsert implements core.InsertPreparer: inserts only reject
// out-of-range priorities, which is a static property of the key.
func (p *PQueue) PrepareInsert(t *core.Thread, priority uint64) bool {
	return priority <= MaxPriority
}

// Remove implements core.Remover: the key is ignored and the minimum is
// removed, making the priority queue a move source ("take the most
// urgent item").
func (p *PQueue) Remove(t *core.Thread, _ uint64) (uint64, bool) {
	_, val, ok := p.RemoveMin(t)
	return val, ok
}

// Len counts elements (quiescent use).
func (p *PQueue) Len(t *core.Thread) int { return p.l.Len(t) }
