package harrislist

import (
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func newRT(threads int) *core.Runtime {
	return core.NewRuntime(core.Config{MaxThreads: threads, ArenaCapacity: 1 << 18, DescCapacity: 1 << 14})
}

func TestInsertRemoveContains(t *testing.T) {
	rt := newRT(1)
	th := rt.RegisterThread()
	l := New(th)
	if !l.Insert(th, 5, 50) || !l.Insert(th, 1, 10) || !l.Insert(th, 9, 90) {
		t.Fatal("inserts must succeed")
	}
	if l.Insert(th, 5, 55) {
		t.Fatal("duplicate insert must fail")
	}
	if v, ok := l.Contains(th, 5); !ok || v != 50 {
		t.Fatalf("Contains(5) = %d,%v", v, ok)
	}
	if _, ok := l.Contains(th, 4); ok {
		t.Fatal("Contains(4) should fail")
	}
	if v, ok := l.Remove(th, 5); !ok || v != 50 {
		t.Fatalf("Remove(5) = %d,%v", v, ok)
	}
	if _, ok := l.Contains(th, 5); ok {
		t.Fatal("removed key still present")
	}
	if _, ok := l.Remove(th, 5); ok {
		t.Fatal("double remove must fail")
	}
	if got := l.Keys(th); len(got) != 2 || got[0] != 1 || got[1] != 9 {
		t.Fatalf("keys = %v", got)
	}
}

func TestSortedOrderInvariant(t *testing.T) {
	rt := newRT(1)
	th := rt.RegisterThread()
	l := New(th)
	keys := []uint64{42, 7, 99, 3, 55, 18, 77, 1, 100, 64}
	for _, k := range keys {
		l.Insert(th, k, k*10)
	}
	got := l.Keys(th)
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("list not sorted: %v", got)
	}
	if len(got) != len(keys) {
		t.Fatalf("len=%d", len(got))
	}
}

// TestSequentialModelEquivalence drives the list and a map with the same
// random operations and compares observable behaviour (property test).
func TestSequentialModelEquivalence(t *testing.T) {
	rt := newRT(1)
	th := rt.RegisterThread()
	f := func(ops []uint16) bool {
		l := New(th)
		model := map[uint64]uint64{}
		for i, op := range ops {
			key := uint64(op % 32)
			val := uint64(i)
			switch (op / 32) % 3 {
			case 0:
				_, exists := model[key]
				got := l.Insert(th, key, val)
				if got == exists {
					return false
				}
				if got {
					model[key] = val
				}
			case 1:
				want, exists := model[key]
				v, got := l.Remove(th, key)
				if got != exists || (got && v != want) {
					return false
				}
				delete(model, key)
			case 2:
				want, exists := model[key]
				v, got := l.Contains(th, key)
				if got != exists || (got && v != want) {
					return false
				}
			}
		}
		if l.Len(th) != len(model) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentDisjointKeys(t *testing.T) {
	const workers = 8
	const perWorker = 2000
	rt := newRT(workers + 1)
	var wg sync.WaitGroup
	var l *List
	var once sync.Once
	ready := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := rt.RegisterThread()
			once.Do(func() { l = New(th); close(ready) })
			<-ready
			base := uint64(w) * perWorker
			for i := uint64(0); i < perWorker; i++ {
				if !l.Insert(th, base+i, i) {
					t.Errorf("disjoint insert failed")
					return
				}
			}
			for i := uint64(0); i < perWorker; i += 2 {
				if _, ok := l.Remove(th, base+i); !ok {
					t.Errorf("remove of own key failed")
					return
				}
			}
			th.FlushMemory()
		}(w)
	}
	wg.Wait()
	th := rt.RegisterThread()
	if got := l.Len(th); got != workers*perWorker/2 {
		t.Fatalf("Len=%d want %d", got, workers*perWorker/2)
	}
	keys := l.Keys(th)
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatal("concurrent inserts broke ordering")
	}
}

// TestConcurrentSameKeyContention: workers fight over a tiny key space;
// invariant: a key is never present twice, and successful remove counts
// balance successful inserts.
func TestConcurrentSameKeyContention(t *testing.T) {
	const workers = 8
	const perWorker = 3000
	rt := newRT(workers + 1)
	setup := rt.RegisterThread()
	l := New(setup)
	var inserts, removes [workers]int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := rt.RegisterThread()
			rng := uint64(w)*2654435761 + 7
			next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
			for i := 0; i < perWorker; i++ {
				key := next() % 8
				if next()&1 == 0 {
					if l.Insert(th, key, uint64(w)) {
						inserts[w]++
					}
				} else {
					if _, ok := l.Remove(th, key); ok {
						removes[w]++
					}
				}
			}
			th.FlushMemory()
		}(w)
	}
	wg.Wait()
	var ins, rem int64
	for w := 0; w < workers; w++ {
		ins += inserts[w]
		rem += removes[w]
	}
	left := int64(l.Len(setup))
	if ins-rem != left {
		t.Fatalf("balance: %d inserts - %d removes != %d present", ins, rem, left)
	}
	keys := l.Keys(setup)
	seen := map[uint64]bool{}
	for _, k := range keys {
		if seen[k] {
			t.Fatalf("key %d present twice", k)
		}
		seen[k] = true
	}
}

// TestInsertBoundedDecidedPaths: success and duplicate are decided
// outcomes regardless of budget; an undecided return (budget spent on
// lost CASes) needs real contention and is exercised by the hash map's
// hot-shard tests and the race suite.
func TestInsertBoundedDecidedPaths(t *testing.T) {
	rt := newRT(1)
	th := rt.RegisterThread()
	l := New(th)
	ok, done := l.InsertBounded(th, 5, 50, 0)
	if !ok || !done {
		t.Fatalf("uncontended bounded insert: ok=%v done=%v", ok, done)
	}
	ok, done = l.InsertBounded(th, 5, 51, 0)
	if ok || !done {
		t.Fatalf("duplicate bounded insert: ok=%v done=%v", ok, done)
	}
	if v, ok := l.Contains(th, 5); !ok || v != 50 {
		t.Fatalf("contains: %d %v", v, ok)
	}
	// A negative budget clamps to zero (bounded), not unbounded.
	ok, done = l.InsertBounded(th, 6, 60, -3)
	if !ok || !done {
		t.Fatalf("negative-budget insert: ok=%v done=%v", ok, done)
	}
}
