// Package harrislist implements a lock-free ordered list (set) in the
// style of Harris [8], using Michael's hazard-pointer-compatible
// traversal, made move-ready per the paper's methodology.
//
// It demonstrates that the methodology reaches beyond the paper's two
// case studies, and it exercises the keyed variants of Algorithms 2–3
// ([skey]/[tkey]): remove selects a key, insert supplies one.
//
// Move-candidate checklist (Definition 1):
//  1. Insert and remove of single elements, linearizable (Harris [8],
//     Michael [17]).
//  2. Instances share nothing; insert- and remove-side hazard slots are
//     disjoint.
//  3. The linearization point of remove is the successful CAS that marks
//     cur.next (a pointer CAS by the invoking process); insert's is the
//     CAS swinging prev.next to the new node. An unsuccessful operation
//     never follows a successful such CAS.
//  4. The removed value is read from the node before the marking CAS.
//
// Logical deletion uses bit 1 of the next-field value (word.ListMarked);
// physical unlinking happens in the remove's cleanup phase or by later
// traversals, exactly as Harris prescribes.
package harrislist

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/pad"
	"repro/internal/word"
)

// List is a move-ready sorted set of (key, value) pairs with unique
// keys.
type List struct {
	head word.Word
	_    pad.Pad56
	id   uint64

	// retries counts failed linearization CASes (an insert or remove
	// losing its scas to a concurrent writer) — the cheap contention
	// signal consumers like the hash map's shards aggregate. Written
	// only on the contention path, so the uncontended fast path never
	// touches it.
	retries atomic.Uint64
}

var _ core.MoveReady = (*List)(nil)

// New creates an empty list.
func New(t *core.Thread) *List {
	return &List{id: t.Runtime().NextObjectID()}
}

// NewWithID creates an empty list sharing the identity space of an
// owning structure (used by the hash map's buckets).
func NewWithID(id uint64) *List { return &List{id: id} }

// ObjectID implements core.MoveReady.
func (l *List) ObjectID() uint64 { return l.id }

// searchResult carries the cursor state of a traversal: prevW is the
// word holding cur (the head anchor or a node's next field), prevRef the
// node containing it (0 for the anchor).
type searchResult struct {
	prevW   *word.Word
	prevRef uint64
	cur     uint64 // node with Key >= key, or Nil
	next    uint64 // cur's successor (unmarked)
	found   bool
}

// search locates key with Michael's validated traversal, unlinking
// logically deleted nodes it passes. slotPrev/slotCur select the hazard
// slots (insert- and remove-side calls use disjoint sets, requirement
// 2).
func (l *List) search(t *core.Thread, key uint64, slotPrev, slotCur int) searchResult {
retry:
	for {
		prevW := &l.head
		prevRef := uint64(0)
		t.ProtectNode(slotPrev, 0)
		cur := t.Read(prevW)
		for {
			if cur == word.Nil {
				return searchResult{prevW: prevW, prevRef: prevRef, cur: word.Nil}
			}
			t.ProtectNode(slotCur, cur)
			if t.Read(prevW) != cur {
				continue retry // prev changed under us; restart
			}
			curN := t.Node(cur)
			nextRaw := t.Read(&curN.Next)
			if word.IsListMarked(nextRaw) {
				// cur is logically deleted: unlink it (cleanup help).
				next := word.ListUnmarked(nextRaw)
				if !prevW.CAS(cur, next) {
					continue retry
				}
				t.RetireNode(cur)
				cur = next
				continue
			}
			ckey := curN.Key
			if t.Read(prevW) != cur {
				continue retry // revalidate before trusting ckey/nextRaw
			}
			if ckey >= key {
				return searchResult{
					prevW:   prevW,
					prevRef: prevRef,
					cur:     cur,
					next:    nextRaw,
					found:   ckey == key,
				}
			}
			// Advance: cur becomes prev; transfer its protection.
			t.ProtectNode(slotPrev, cur)
			prevW = &curN.Next
			prevRef = cur
			cur = nextRaw
		}
	}
}

// Insert adds (key, val); it returns false when the key already exists
// (an init-phase failure: during a move this aborts the composition) or
// when a surrounding move aborts.
func (l *List) Insert(t *core.Thread, key, val uint64) bool {
	ok, _ := l.insertBudget(t, key, val, -1)
	return ok
}

// InsertBounded is Insert with a retry budget: it gives up after
// budget lost linearization CASes and reports done=false, the caller's
// cue that this insert is a contention loser (the hash map's hot
// shards route such losers to their elimination array instead of
// letting them hammer the chain). An undecided return has no effect on
// the list — the node was never published — so the caller may retry,
// park, or abandon freely. done=true carries Insert's usual ok.
func (l *List) InsertBounded(t *core.Thread, key, val uint64, budget int) (ok, done bool) {
	if budget < 0 {
		budget = 0
	}
	return l.insertBudget(t, key, val, budget)
}

// insertBudget is the shared insert loop; budget < 0 means unbounded.
func (l *List) insertBudget(t *core.Thread, key, val uint64, budget int) (ok, done bool) {
	ref := word.Nil
	defer func() {
		t.ProtectNode(core.SlotInsAux, 0)
		t.ProtectNode(core.SlotIns0, 0)
	}()
	for {
		r := l.search(t, key, core.SlotInsAux, core.SlotIns0)
		if r.found {
			if ref != word.Nil {
				t.FreeNodeDirect(ref)
			}
			return false, true
		}
		if ref == word.Nil {
			ref = t.AllocNode()
			n := t.Node(ref)
			n.Key, n.Val = key, val
		}
		t.Node(ref).Next.Store(r.cur)
		res := t.SCASInsert(r.prevW, r.cur, ref, r.prevRef)
		if res == core.FAbort {
			t.FreeNodeDirect(ref)
			return false, true
		}
		if res == core.FTrue {
			t.BackoffReset()
			return true, true
		}
		l.retries.Add(1)
		if budget == 0 {
			// Bounded and spent: undecided. The node was never
			// published; recycle it and let the caller choose.
			t.FreeNodeDirect(ref)
			return false, false
		}
		if budget > 0 {
			budget--
		}
		t.BackoffWait()
	}
}

// Remove deletes key and returns its value. The linearization point is
// the marking CAS on cur.next (via scas); physical unlinking is the
// cleanup phase.
func (l *List) Remove(t *core.Thread, key uint64) (uint64, bool) {
	defer func() {
		t.ProtectNode(core.SlotRemAux, 0)
		t.ProtectNode(core.SlotRem0, 0)
	}()
	for {
		r := l.search(t, key, core.SlotRemAux, core.SlotRem0)
		if !r.found {
			return 0, false
		}
		curN := t.Node(r.cur)
		val := curN.Val // requirement 4: value available before the LP
		res := t.SCASRemove(&curN.Next, r.next, word.ListMarked(r.next), val, r.cur)
		if res == core.FTrue {
			// Cleanup phase: try to unlink; a failed CAS leaves the node
			// for later traversals.
			if r.prevW.CAS(r.cur, r.next) {
				t.RetireNode(r.cur)
			}
			t.BackoffReset()
			return val, true
		}
		if res == core.FAbort {
			return 0, false
		}
		l.retries.Add(1)
		t.BackoffWait()
	}
}

// RemoveMin deletes the element with the smallest key and returns it.
// The linearization point is the same marking CAS as Remove's, so
// RemoveMin composes with moves exactly like Remove (the priority-queue
// package builds on this).
func (l *List) RemoveMin(t *core.Thread) (key, val uint64, ok bool) {
	defer func() {
		t.ProtectNode(core.SlotRemAux, 0)
		t.ProtectNode(core.SlotRem0, 0)
	}()
	for {
		// search(0) positions at the first live node: every key is >= 0.
		r := l.search(t, 0, core.SlotRemAux, core.SlotRem0)
		if r.cur == word.Nil {
			return 0, 0, false
		}
		curN := t.Node(r.cur)
		key, val = curN.Key, curN.Val
		res := t.SCASRemove(&curN.Next, r.next, word.ListMarked(r.next), val, r.cur)
		if res == core.FTrue {
			if r.prevW.CAS(r.cur, r.next) {
				t.RetireNode(r.cur)
			}
			t.BackoffReset()
			return key, val, true
		}
		if res == core.FAbort {
			return 0, 0, false
		}
		l.retries.Add(1)
		t.BackoffWait()
	}
}

// Min returns the smallest key and its value without removing it.
func (l *List) Min(t *core.Thread) (key, val uint64, ok bool) {
	defer func() {
		t.ProtectNode(core.SlotRemAux, 0)
		t.ProtectNode(core.SlotRem0, 0)
	}()
	r := l.search(t, 0, core.SlotRemAux, core.SlotRem0)
	if r.cur == word.Nil {
		return 0, 0, false
	}
	n := t.Node(r.cur)
	return n.Key, n.Val, true
}

// Contains reports whether key is present and returns its value. Like
// Harris' original, it ignores logical deletion marks on the final hop
// only if the node is unmarked; marked nodes are treated as absent.
func (l *List) Contains(t *core.Thread, key uint64) (uint64, bool) {
	defer func() {
		t.ProtectNode(core.SlotRemAux, 0)
		t.ProtectNode(core.SlotRem0, 0)
	}()
	r := l.search(t, key, core.SlotRemAux, core.SlotRem0)
	if !r.found {
		return 0, false
	}
	return t.Node(r.cur).Val, true
}

// PrepareRemove implements core.RemovePreparer for the batched move
// pipeline: Contains' miss is a linearizable absence observation (a
// failed batched move may linearize at it), and a hit warms the
// traversal path — and unlinks marked nodes along it — for the commit.
func (l *List) PrepareRemove(t *core.Thread, key uint64) bool {
	_, ok := l.Contains(t, key)
	return ok
}

// PrepareInsert implements core.InsertPreparer: a hit means the insert
// would fail on the duplicate key (during a move: abort the
// composition), so the batched move can fail fast, linearizing at the
// observation of the occupied key.
func (l *List) PrepareInsert(t *core.Thread, key uint64) bool {
	_, dup := l.Contains(t, key)
	return !dup
}

// Len counts elements (quiescent use; skips marked nodes).
func (l *List) Len(t *core.Thread) int {
	n := 0
	cur := t.Read(&l.head)
	for cur != word.Nil {
		nx := t.Read(&t.Node(cur).Next)
		if !word.IsListMarked(nx) {
			n++
		}
		cur = word.ListUnmarked(nx)
	}
	return n
}

// Keys returns the keys in order (quiescent use, tests).
func (l *List) Keys(t *core.Thread) []uint64 {
	var out []uint64
	cur := t.Read(&l.head)
	for cur != word.Nil {
		n := t.Node(cur)
		nx := t.Read(&n.Next)
		if !word.IsListMarked(nx) {
			out = append(out, n.Key)
		}
		cur = word.ListUnmarked(nx)
	}
	return out
}

// Retries reports how many linearization CASes this list has lost to
// concurrent writers — a monotone contention signal (zero on an
// uncontended list).
func (l *List) Retries() uint64 { return l.retries.Load() }

// HeadWord exposes the head anchor for structural verification (package
// verify) and diagnostics; not part of the normal API.
func (l *List) HeadWord() *word.Word { return &l.head }
