package pad

import (
	"testing"
	"unsafe"
)

func TestSizes(t *testing.T) {
	if unsafe.Sizeof(Line{}) != CacheLineSize {
		t.Fatalf("Line is %d bytes", unsafe.Sizeof(Line{}))
	}
	type one struct {
		v uint64
		_ Pad56
	}
	if unsafe.Sizeof(one{}) != CacheLineSize {
		t.Fatalf("uint64+Pad56 is %d bytes", unsafe.Sizeof(one{}))
	}
	type two struct {
		a, b uint64
		_    Pad48
	}
	if unsafe.Sizeof(two{}) != CacheLineSize {
		t.Fatalf("2×uint64+Pad48 is %d bytes", unsafe.Sizeof(two{}))
	}
}
