// Package pad provides cache-line padding helpers used to avoid false
// sharing between per-thread records and hot shared words.
//
// The padding size is fixed at 64 bytes, the cache-line size of every
// mainstream x86-64 and most ARM64 parts, including the Intel Core i7 950
// the paper's evaluation ran on.
package pad

// CacheLineSize is the assumed size of one cache line in bytes.
const CacheLineSize = 64

// Line is a full cache line of padding. Embed it between fields that are
// written by different threads.
type Line [CacheLineSize]byte

// Pad56 pads a single uint64 out to a full cache line when placed after it.
type Pad56 [CacheLineSize - 8]byte

// Pad48 pads two uint64 words out to a full cache line when placed after
// them.
type Pad48 [CacheLineSize - 16]byte

// CeilPow2 rounds n up to a power of two, minimum 1 — the shared
// sizing helper for mask-indexed structures (elimination arrays, shard
// and bucket tables).
func CeilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
