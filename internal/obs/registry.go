package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/pad"
)

// Counter names one of the fixed hot-path counters every registered
// thread stripes. These are the descriptor-protocol lifecycle events the
// initiating or helping thread pushes directly; everything else reaches
// the registry through AddFunc pulls.
type Counter uint8

// The fixed counters. Publish/commit/abort are counted by the
// initiating thread (so, quiesced and kill-free, publishes ==
// commits + aborts on both the pair and the general path); helps by the
// helping thread; recycles by the owning thread at every descriptor
// recycle entry point.
const (
	KCASPublish Counter = iota
	KCASHelp
	KCASCommit
	KCASAbort
	KCASRecycle
	// NumCounters bounds the fixed counter set.
	NumCounters
)

// counterNames is the exported naming scheme: Prometheus-style
// snake_case with a _total suffix for monotone counts. cmd/stress,
// kvserver STATS and the METRICS verb all use exactly these names — one
// scheme, documented in docs/observability.md.
var counterNames = [NumCounters]string{
	KCASPublish: "kcas_publish_total",
	KCASHelp:    "kcas_helps_total",
	KCASCommit:  "kcas_commits_total",
	KCASAbort:   "kcas_aborts_total",
	KCASRecycle: "kcas_recycles_total",
}

// Name returns the counter's exported series name.
func (c Counter) Name() string { return counterNames[c] }

// stripe is one thread's fixed counters, padded so adjacent threads'
// stripes never share a cache line.
type stripe struct {
	c [NumCounters]atomic.Uint64
	_ [(pad.CacheLineSize - (int(NumCounters)*8)%pad.CacheLineSize) % pad.CacheLineSize]byte
}

// series is one registered pull source. Multiple funcs may share a name;
// Snapshot sums them (e.g. every map shard's elimination array registers
// under elim_hits_total). gauge marks point-in-time series (AddGauge) as
// opposed to monotone counters.
type series struct {
	name  string
	fn    func() uint64
	gauge bool
}

// info is one registered static info series (AddInfo): rendered as
// `name{labels} 1` in Prometheus output, the build_info convention.
type info struct {
	name   string
	labels string
}

// Registry is the striped metrics registry. Inc on distinct threads
// never contends; AddFunc and Snapshot take a mutex and are expected off
// the hot path (construction and reporting time).
type Registry struct {
	stripes []stripe

	mu    sync.Mutex
	funcs []series
	infos []info
}

// NewRegistry builds a registry sized for maxThreads registered threads.
func NewRegistry(maxThreads int) *Registry {
	if maxThreads <= 0 {
		maxThreads = 1
	}
	return &Registry{stripes: make([]stripe, maxThreads)}
}

// Inc adds 1 to thread tid's stripe of counter c. Allocation-free; a
// nil receiver is a no-op so disabled call sites need no guard.
func (r *Registry) Inc(tid int, c Counter) {
	if r == nil {
		return
	}
	r.stripes[tid].c[c].Add(1)
}

// Value sums counter c across all stripes.
func (r *Registry) Value(c Counter) uint64 {
	if r == nil {
		return 0
	}
	var total uint64
	for i := range r.stripes {
		total += r.stripes[i].c[c].Load()
	}
	return total
}

// ThreadValue reads counter c's value on thread tid's stripe alone. The
// request-span layer uses before/after deltas of the serving thread's
// stripe to attribute kcas publishes, helps and aborts to one request
// without touching any other thread's cache line. Allocation-free; a
// nil receiver returns 0.
func (r *Registry) ThreadValue(tid int, c Counter) uint64 {
	if r == nil {
		return 0
	}
	return r.stripes[tid].c[c].Load()
}

// AddFunc registers a lazily-evaluated named series: fn is called at
// every Snapshot and its value summed with any other funcs registered
// under the same name. fn must be safe to call from any goroutine and
// should read monotone counters (the name should end in _total). A nil
// receiver is a no-op, so layers register unconditionally.
func (r *Registry) AddFunc(name string, fn func() uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.funcs = append(r.funcs, series{name: name, fn: fn})
	r.mu.Unlock()
}

// AddGauge registers a point-in-time series: like AddFunc, but the
// value may go up or down (uptime, current percentiles) and Prometheus
// output declares it a gauge instead of a counter. A nil receiver is a
// no-op.
func (r *Registry) AddGauge(name string, fn func() uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.funcs = append(r.funcs, series{name: name, fn: fn, gauge: true})
	r.mu.Unlock()
}

// AddInfo registers a static info series rendered as `name{labels} 1`
// (the Prometheus build_info convention): labels is the pre-rendered
// label body, e.g. `go_version="go1.24",gomaxprocs="8"`. Registering a
// name again replaces its labels. A nil receiver is a no-op.
func (r *Registry) AddInfo(name, labels string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.infos {
		if r.infos[i].name == name {
			r.infos[i].labels = labels
			return
		}
	}
	r.infos = append(r.infos, info{name: name, labels: labels})
}

// Snapshot merges every stripe and evaluates every registered func into
// one point-in-time view. All known names are present even at zero —
// "absent" must not alias "zero" on any surface that reports this.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Counters: make(map[string]uint64)}
	if r == nil {
		return s
	}
	for c := Counter(0); c < NumCounters; c++ {
		s.Counters[counterNames[c]] = r.Value(c)
	}
	r.mu.Lock()
	funcs := r.funcs[:len(r.funcs):len(r.funcs)]
	infos := r.infos[:len(r.infos):len(r.infos)]
	r.mu.Unlock()
	for _, f := range funcs {
		s.Counters[f.name] += f.fn()
		if f.gauge {
			if s.Gauges == nil {
				s.Gauges = make(map[string]bool)
			}
			s.Gauges[f.name] = true
		}
	}
	if len(infos) > 0 {
		s.Infos = make(map[string]string, len(infos))
		for _, in := range infos {
			s.Infos[in.name] = in.labels
		}
	}
	return s
}

// Snapshot is one merged view of every series a registry knows. It is a
// plain value: safe to retain, diff, or serialize after the runtime is
// gone.
type Snapshot struct {
	// Counters maps series name to its summed value (gauge series
	// included — Gauges marks which names are gauges).
	Counters map[string]uint64
	// Gauges marks the names registered via AddGauge (nil when none):
	// WritePrometheus declares them `gauge` instead of `counter`, and
	// Sub carries their current values instead of differencing them.
	Gauges map[string]bool
	// Infos maps info-series name (AddInfo) to its rendered label body;
	// WritePrometheus emits each as `name{labels} 1`.
	Infos map[string]string
}

// Get returns the named series' value (0 when absent).
func (s Snapshot) Get(name string) uint64 { return s.Counters[name] }

// Names returns every series name in sorted order.
func (s Snapshot) Names() []string {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Merge adds every series of o into s (the harness uses it to aggregate
// snapshots across per-trial runtimes). Gauge and info marks union;
// summed gauges across runtimes are the caller's interpretation burden.
func (s *Snapshot) Merge(o Snapshot) {
	if s.Counters == nil {
		s.Counters = make(map[string]uint64)
	}
	for n, v := range o.Counters {
		s.Counters[n] += v
	}
	for n := range o.Gauges {
		if s.Gauges == nil {
			s.Gauges = make(map[string]bool)
		}
		s.Gauges[n] = true
	}
	for n, l := range o.Infos {
		if s.Infos == nil {
			s.Infos = make(map[string]string)
		}
		s.Infos[n] = l
	}
}

// Sub returns s minus prev per counter series (clamped at zero), for
// windowed rates over two snapshots of the same registry. Gauge series
// are point-in-time values, not monotone counts, so their current (s)
// values carry through undifferenced; infos carry from s verbatim.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	d := Snapshot{Counters: make(map[string]uint64, len(s.Counters)), Gauges: s.Gauges, Infos: s.Infos}
	for n, v := range s.Counters {
		if s.Gauges[n] {
			d.Counters[n] = v
			continue
		}
		if p := prev.Counters[n]; v > p {
			d.Counters[n] = v - p
		} else {
			d.Counters[n] = 0
		}
	}
	return d
}

// WritePrometheus serializes the snapshot in Prometheus text exposition
// format, sorted by name — counters and gauges with their TYPE lines,
// then info series as `name{labels} 1` — terminated by a "# EOF" line
// (the OpenMetrics end marker; the kvwire METRICS verb relies on it to
// frame the response on a line-oriented connection).
func (s Snapshot) WritePrometheus(w io.Writer) error {
	for _, name := range s.Names() {
		typ := "counter"
		if s.Gauges[name] {
			typ = "gauge"
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %d\n", name, typ, name, s.Counters[name]); err != nil {
			return err
		}
	}
	infoNames := make([]string, 0, len(s.Infos))
	for n := range s.Infos {
		infoNames = append(infoNames, n)
	}
	sort.Strings(infoNames)
	for _, n := range infoNames {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s{%s} 1\n", n, n, s.Infos[n]); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}
