package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestStageNamesRoundTrip(t *testing.T) {
	for st := Stage(0); st < NumStages; st++ {
		got, ok := StageFromString(st.String())
		if !ok || got != st {
			t.Fatalf("StageFromString(%q) = %v,%v, want %v", st.String(), got, ok, st)
		}
	}
	if _, ok := StageFromString("nonsense"); ok {
		t.Fatal("unknown stage name resolved")
	}
}

func TestSpanDominant(t *testing.T) {
	var sp Span
	sp.Stage[StageQueue] = 10
	sp.Stage[StageExec] = 500
	sp.Stage[StageWrite] = 499
	if got := sp.Dominant(); got != StageExec {
		t.Fatalf("Dominant = %v, want execute", got)
	}
	// Ties resolve to the earliest stage; the zero span is all-queue.
	var tie Span
	tie.Stage[StageParse] = 7
	tie.Stage[StageDegrade] = 7
	if got := tie.Dominant(); got != StageParse {
		t.Fatalf("tie Dominant = %v, want parse", got)
	}
	if got := (Span{}).Dominant(); got != StageQueue {
		t.Fatalf("zero-span Dominant = %v, want queue", got)
	}
}

func TestSpanJSONRoundTrip(t *testing.T) {
	in := Span{
		Req: 42, TID: 3, Worker: 1, Tenant: 2,
		Op: "MOVE", Status: "OK", StartNS: 1000, WallNS: 5500,
		Publishes: 4, Helps: 1, Aborts: 2,
	}
	in.Stage[StageQueue] = 100
	in.Stage[StageExec] = 5000
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"span":1`) {
		t.Fatalf("span JSON missing the record discriminator: %s", b)
	}
	var out Span
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", out, in)
	}
	// Unknown stage names are rejected, like unknown event kinds.
	if err := new(Span).UnmarshalJSON([]byte(`{"span":1,"req":1,"stages":{"bogus":5}}`)); err == nil {
		t.Fatal("unknown stage name accepted")
	}
}

func TestSpansFinishExemplarsAndThreshold(t *testing.T) {
	s := NewSpans(2, 8, 3)
	if got := s.NextReq(); got != 1 {
		t.Fatalf("first NextReq = %d, want 1 (0 is the no-request sentinel)", got)
	}
	// Threshold 0 admits everything; topK=3 keeps the 3 slowest.
	for i, wall := range []int64{100, 900, 300, 700, 500} {
		s.Finish(i%2, Span{Req: uint64(i + 1), WallNS: wall})
	}
	ex := s.Exemplars()
	if len(ex) != 3 {
		t.Fatalf("retained %d exemplars, want 3", len(ex))
	}
	if ex[0].WallNS != 900 || ex[1].WallNS != 700 || ex[2].WallNS != 500 {
		t.Fatalf("exemplars not the slowest-first top 3: %+v", ex)
	}

	// Raising the threshold gates admission: a span below it cannot
	// displace a retained exemplar even if the buffer has room.
	s2 := NewSpans(1, 8, 4)
	s2.SetThreshold(1000)
	if got := s2.Threshold(); got != 1000 {
		t.Fatalf("Threshold = %d, want 1000", got)
	}
	s2.Finish(0, Span{Req: 1, WallNS: 999})
	s2.Finish(0, Span{Req: 2, WallNS: 1000})
	ex2 := s2.Exemplars()
	if len(ex2) != 1 || ex2[0].Req != 2 {
		t.Fatalf("threshold gate wrong: %+v", ex2)
	}
	// The gated-out span still reached the completed ring.
	if got := len(s2.Completed()); got != 2 {
		t.Fatalf("completed ring holds %d spans, want 2", got)
	}
}

func TestSpansCompletedAndDropped(t *testing.T) {
	s := NewSpans(2, 4, 2)
	for i := 0; i < 6; i++ { // ring size 4: two oldest overwritten
		s.Finish(0, Span{Req: uint64(i + 1), StartNS: int64(100 - i)})
	}
	s.Finish(1, Span{Req: 100, StartNS: 1})
	got := s.Completed()
	if len(got) != 5 {
		t.Fatalf("Completed returned %d spans, want 5 (4-slot ring + 1)", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].StartNS < got[i-1].StartNS {
			t.Fatal("Completed not sorted by StartNS")
		}
	}
	if d := s.Dropped(); d != 2 {
		t.Fatalf("Dropped = %d, want 2", d)
	}
	// Completed does not reset: a second read sees the same spans.
	if again := s.Completed(); len(again) != 5 {
		t.Fatalf("second Completed returned %d spans, want 5", len(again))
	}
}

func TestSpansNilSafe(t *testing.T) {
	var s *Spans
	s.Finish(0, Span{})
	s.SetThreshold(5)
	if s.NextReq() != 0 || s.Threshold() != 0 || s.Dropped() != 0 ||
		s.Exemplars() != nil || s.Completed() != nil || s.SinceEpoch(time.Now()) != 0 {
		t.Fatal("nil Spans must be inert")
	}
}

func TestSpansFinishAllocationFree(t *testing.T) {
	s := NewSpans(1, 64, 4)
	var sp Span
	sp.WallNS = 100
	if allocs := testing.AllocsPerRun(1000, func() {
		sp.WallNS++ // exercise both the gate pass and top-K replace paths
		s.Finish(0, sp)
	}); allocs != 0 {
		t.Fatalf("Finish allocates %v per run, want 0", allocs)
	}
}

func TestReadTraceMixed(t *testing.T) {
	events := []Event{
		{TS: 10, Kind: EvPublish, TID: 0, Peer: -1, Ref: 7, Req: 5},
		{TS: 20, Kind: EvCommit, TID: 0, Peer: -1, Ref: 7, Req: 5},
	}
	sp := Span{Req: 5, TID: 0, Op: "MOVE", Status: "OK", StartNS: 5, WallNS: 30}
	sp.Stage[StageExec] = 25

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	if err := WriteSpansJSONL(&buf, []Span{sp}); err != nil {
		t.Fatal(err)
	}

	evs, spans, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 || len(spans) != 1 {
		t.Fatalf("ReadTrace: %d events, %d spans, want 2/1", len(evs), len(spans))
	}
	if evs[0] != events[0] || evs[1] != events[1] {
		t.Fatalf("events corrupted: %+v", evs)
	}
	if spans[0] != sp {
		t.Fatalf("span corrupted: got %+v want %+v", spans[0], sp)
	}

	// The legacy event reader skips span lines instead of erroring.
	evsOnly, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(evsOnly) != 2 {
		t.Fatalf("ReadJSONL on a mixed file: %d events, want 2", len(evsOnly))
	}
}

func TestWriteChromeTraceWith(t *testing.T) {
	sp := Span{Req: 9, TID: 2, Op: "MOVE", Status: "OK", StartNS: 1000, WallNS: 4000}
	sp.Stage[StageParse] = 1000
	sp.Stage[StageExec] = 3000
	var buf bytes.Buffer
	err := WriteChromeTraceWith(&buf,
		[]Event{{TS: 1500, Kind: EvHelp, TID: 3, Peer: 1, Ref: 42, Req: 9}},
		[]Span{sp})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v\n%s", err, out)
	}
	if len(parsed.TraceEvents) != 3 { // 1 instant + 2 stage slices
		t.Fatalf("chrome trace has %d records, want 3:\n%s", len(parsed.TraceEvents), out)
	}
	for _, want := range []string{
		`"name":"help"`, `"ph":"i"`,
		`"name":"parse"`, `"name":"execute"`, `"ph":"X"`,
		`"ts":1.000,"dur":1.000`, // parse at StartNS
		`"ts":2.000,"dur":3.000`, // execute at the cumulative offset
		`"req":9`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("chrome trace missing %q:\n%s", want, out)
		}
	}
}

// TestTracerSetRequestStamping: events carry the thread's current
// request id between SetRequest calls, and the id survives the JSONL
// round trip.
func TestTracerSetRequestStamping(t *testing.T) {
	tr := NewTracer(2, 8)
	tr.Record(0, EvPublish, -1, 1) // before any request: req 0
	tr.SetRequest(0, 77)
	tr.Record(0, EvHelp, 1, 2)
	tr.Record(0, EvCommit, -1, 2)
	tr.SetRequest(0, 0)
	tr.Record(0, EvRecycle, -1, 2)
	tr.Record(1, EvPublish, -1, 3) // other thread: unaffected

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr.Drain()); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := map[EventKind]uint64{EvPublish: 0, EvHelp: 77, EvCommit: 77, EvRecycle: 0}
	for _, ev := range evs {
		if ev.TID == 0 {
			if got := ev.Req; got != want[ev.Kind] {
				t.Fatalf("%v stamped req %d, want %d", ev.Kind, got, want[ev.Kind])
			}
		} else if ev.Req != 0 {
			t.Fatalf("thread 1 event stamped req %d, want 0", ev.Req)
		}
	}
}

// TestTracerDrainOrderingAcrossWrappedRings: one ring wraps (its oldest
// survivors are late events), another does not; the merged drain must
// still be globally time-sorted.
func TestTracerDrainOrderingAcrossWrappedRings(t *testing.T) {
	tr := NewTracer(2, 4)
	// Thread 0 records 10 events (ring wraps: keeps the newest 4);
	// thread 1 records 2 early events. Real timestamps interleave.
	for i := 0; i < 2; i++ {
		tr.Record(1, EvPublish, -1, uint64(i))
	}
	for i := 0; i < 10; i++ {
		tr.Record(0, EvRecycle, -1, uint64(100+i))
	}
	evs := tr.Drain()
	if len(evs) != 6 {
		t.Fatalf("drained %d events, want 6 (4 survivors + 2)", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].TS < evs[i-1].TS {
			t.Fatalf("drain not time-sorted at %d: %+v", i, evs)
		}
	}
	// The wrapped ring's survivors are its newest four.
	var refs []uint64
	for _, ev := range evs {
		if ev.TID == 0 {
			refs = append(refs, ev.Ref)
		}
	}
	if len(refs) != 4 || refs[0] != 106 || refs[3] != 109 {
		t.Fatalf("wrapped ring kept %v, want [106..109]", refs)
	}
}

// TestChromeTraceAfterDrops: Chrome conversion of a drain that lost
// events must stay valid JSON and carry exactly the survivors.
func TestChromeTraceAfterDrops(t *testing.T) {
	tr := NewTracer(1, 4)
	for i := 0; i < 9; i++ {
		tr.Record(0, EvAbort, -1, uint64(i))
	}
	evs := tr.Drain()
	if tr.Dropped() == 0 {
		t.Fatal("expected drops")
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, evs); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("chrome trace after drops not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) != 4 {
		t.Fatalf("chrome trace has %d records, want the 4 survivors", len(parsed.TraceEvents))
	}
}

func TestObsSpansConfig(t *testing.T) {
	o := New(Config{Spans: true}, 4)
	if o == nil || o.Spans() == nil {
		t.Fatal("spans-only config built no span recorder")
	}
	if o.Metrics() != nil || o.Tracer() != nil {
		t.Fatal("spans-only config built other surfaces")
	}
	var nilObs *Obs
	if nilObs.Spans() != nil {
		t.Fatal("nil Obs Spans() not nil")
	}
	if !(Config{Spans: true}).Enabled() {
		t.Fatal("Spans alone must enable the Obs layer")
	}
	// The tracer and span recorder share one epoch: a span stamped "now"
	// and an event recorded "now" land at comparable offsets.
	o2 := New(Config{Trace: true, Spans: true}, 1)
	o2.Tracer().Record(0, EvPublish, -1, 1)
	evTS := o2.Tracer().Drain()[0].TS
	spTS := o2.Spans().SinceEpoch(time.Now())
	if diff := spTS - evTS; diff < 0 || diff > int64(time.Second) {
		t.Fatalf("span/event timelines diverge: event %dns, span %dns", evTS, spTS)
	}
}
