// Package obs is the repository's unified telemetry layer: one striped,
// allocation-free metrics registry and one per-thread ring-buffer tracer
// for the descriptor protocol's lifecycle events.
//
// The paper's core claims — helping makes composed moves lock-free, and
// contention management keeps the fast path fast — are only checkable if
// who-helped-whom, abort rates and retry amplification are visible at
// runtime. Before this package those signals were scattered over
// per-container stat methods (ElimStats, AdaptStats, ContentionStats),
// the kcas pool counters, fault.Plan counters and the kvserver
// degradation atomics. obs absorbs them behind one Snapshot:
//
//   - Hot protocol events (publish, help, commit, abort, recycle) are
//     *pushed*: each registered thread owns a cache-line-padded stripe of
//     fixed counters, incremented without allocation or sharing, merged
//     only at snapshot time.
//
//   - Everything that already has a cheap monotone counter somewhere
//     (elimination hits, adapt decisions, pool stray cleanups, fault
//     firings, server degradation counts) is *pulled*: the owning layer
//     registers a named func at construction and Snapshot sums every
//     func registered under the same name. Because the funcs read the
//     same atomics the legacy stat methods report, the registry cannot
//     drift from them.
//
// The tracer records the same protocol windows internal/fault
// instruments, with helper/victim thread attribution on help events, to
// fixed-size per-thread rings. Disabled (the default), every hook is a
// nil check; enabled, Record is mutex-per-ring but allocation-free.
// Drained events serialize to JSONL (one event per line) and to Chrome
// trace_event JSON for timeline viewing — see docs/observability.md.
package obs

import "time"

// Config selects which telemetry surfaces a runtime carries. The zero
// value disables everything: hook sites then cost one nil check each and
// the Move/MoveN hot paths are unchanged (see BenchmarkObsDisabled).
type Config struct {
	// Metrics enables the striped counter registry.
	Metrics bool
	// Trace enables the descriptor-protocol tracer.
	Trace bool
	// TraceBuf is the per-thread ring capacity in events, rounded up to
	// a power of two; oldest events are overwritten on overflow (the
	// drop count is exported as trace_dropped_total). 0 selects 4096.
	TraceBuf int
	// Spans enables the request-scoped span recorder: per-worker rings
	// of completed spans plus the top-K tail-exemplar buffer (the
	// serving layer records into it and serves the SLOW verb from it).
	Spans bool
	// SpanBuf is the per-worker completed-span ring capacity, rounded
	// up to a power of two; 0 selects DefaultSpanBuf (1024).
	SpanBuf int
	// SpanTopK sizes the tail-exemplar buffer (the K slowest requests
	// past the threshold gate are retained); 0 selects DefaultSpanTopK
	// (32).
	SpanTopK int
}

// Enabled reports whether any surface is on.
func (c Config) Enabled() bool { return c.Metrics || c.Trace || c.Spans }

// Obs bundles the enabled surfaces of one runtime. A nil *Obs (the
// disabled state) is valid: every accessor returns nil and the nil
// Registry/Tracer methods are no-ops, so call sites need no guards.
type Obs struct {
	metrics *Registry
	tracer  *Tracer
	spans   *Spans
}

// New builds the telemetry surfaces cfg selects, sized for maxThreads
// registered threads. It returns nil when cfg disables everything. The
// tracer and span recorder share one epoch, so span StartNS and event
// TS values live on the same timeline.
func New(cfg Config, maxThreads int) *Obs {
	if !cfg.Enabled() {
		return nil
	}
	o := &Obs{}
	now := time.Now()
	if cfg.Metrics {
		o.metrics = NewRegistry(maxThreads)
	}
	if cfg.Trace {
		o.tracer = newTracerAt(now, maxThreads, cfg.TraceBuf)
	}
	if cfg.Spans {
		o.spans = newSpansAt(now, maxThreads, cfg.SpanBuf, cfg.SpanTopK)
	}
	return o
}

// Metrics returns the counter registry, or nil when metrics are off
// (including on a nil receiver).
func (o *Obs) Metrics() *Registry {
	if o == nil {
		return nil
	}
	return o.metrics
}

// Tracer returns the protocol tracer, or nil when tracing is off
// (including on a nil receiver).
func (o *Obs) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.tracer
}

// Spans returns the request-span recorder, or nil when spans are off
// (including on a nil receiver).
func (o *Obs) Spans() *Spans {
	if o == nil {
		return nil
	}
	return o.spans
}
