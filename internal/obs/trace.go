package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/pad"
)

// EventKind names one descriptor-protocol lifecycle event. The set
// mirrors the windows internal/fault instruments, plus the composed
// layers' own windows (batch flush, map migration), so a trace lines up
// one-to-one with where chaos rules can fire.
type EventKind uint8

// The event taxonomy (see docs/observability.md).
const (
	// EvPublish: the initiating thread announced a descriptor (pair
	// line D10, or general Execute entry). Ref is the descriptor
	// reference.
	EvPublish EventKind = iota
	// EvHelp: a peer thread entered the helping protocol for another
	// thread's announced descriptor. TID is the helper, Peer the
	// victim (the initiating thread whose operation is being helped).
	EvHelp
	// EvCommit: the initiating thread's operation decided SUCCESS.
	EvCommit
	// EvAbort: the initiating thread's announced operation decided
	// failure (pair SECONDFAILED or a general entry mismatch).
	EvAbort
	// EvRecycle: a descriptor slot was handed back for reuse.
	EvRecycle
	// EvBatchFlush: a batched-move buffer crossed its prepare→commit
	// gap.
	EvBatchFlush
	// EvMapMigrate: a map shard migration step ran mid-grow.
	EvMapMigrate

	numEventKinds
)

var eventNames = [numEventKinds]string{
	EvPublish:    "publish",
	EvHelp:       "help",
	EvCommit:     "commit",
	EvAbort:      "abort",
	EvRecycle:    "recycle",
	EvBatchFlush: "batch-flush",
	EvMapMigrate: "map-migrate",
}

// String returns the kind's wire name (used in JSONL and Chrome traces).
func (k EventKind) String() string {
	if int(k) < len(eventNames) {
		return eventNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// KindFromString resolves a wire name back to its EventKind.
func KindFromString(s string) (EventKind, bool) {
	for k, n := range eventNames {
		if n == s {
			return EventKind(k), true
		}
	}
	return 0, false
}

// Event is one recorded protocol event.
type Event struct {
	// TS is nanoseconds since the tracer was created.
	TS int64
	// Kind is the event taxonomy entry.
	Kind EventKind
	// TID is the recording thread.
	TID int32
	// Peer is the victim thread on EvHelp (the initiator being
	// helped); -1 when not applicable.
	Peer int32
	// Ref is the descriptor reference involved, 0 when not applicable.
	Ref uint64
	// Req is the request id current on the recording thread when the
	// event was recorded (SetRequest), 0 when none: the join key
	// between a request span and the protocol events its execution
	// produced — a slow span's publish/help/commit chain is the trace
	// filtered to its Req.
	Req uint64
}

// ring is one thread's event buffer. The mutex makes Record/Drain safe
// under the race detector; it is per-thread and therefore uncontended
// except against a drain, so the enabled-path cost stays a few tens of
// nanoseconds and zero allocations.
type ring struct {
	mu    sync.Mutex
	buf   []Event
	n     uint64 // events ever recorded into this ring
	drops uint64 // events overwritten before a drain observed them
	req   uint64 // current request id (SetRequest), stamped into events
	_     pad.Line
}

// Tracer records protocol events into fixed per-thread rings. A nil
// *Tracer is the disabled state: Record is a nil check and nothing else.
type Tracer struct {
	start time.Time
	rings []ring
}

// DefaultTraceBuf is the per-thread ring capacity when Config.TraceBuf
// is zero.
const DefaultTraceBuf = 4096

// NewTracer builds a tracer with one ring of perThread events (rounded
// up to a power of two; <=0 selects DefaultTraceBuf) for each of
// maxThreads threads.
func NewTracer(maxThreads, perThread int) *Tracer {
	return newTracerAt(time.Now(), maxThreads, perThread)
}

// newTracerAt pins the tracer's epoch; obs.New shares one epoch between
// the tracer and the span recorder so both timelines align.
func newTracerAt(epoch time.Time, maxThreads, perThread int) *Tracer {
	if maxThreads <= 0 {
		maxThreads = 1
	}
	if perThread <= 0 {
		perThread = DefaultTraceBuf
	}
	perThread = pad.CeilPow2(perThread)
	t := &Tracer{start: epoch, rings: make([]ring, maxThreads)}
	for i := range t.rings {
		t.rings[i].buf = make([]Event, perThread)
	}
	return t
}

// Record appends one event to thread tid's ring, overwriting the oldest
// on overflow, stamped with the thread's current request id (see
// SetRequest). Allocation-free; a nil receiver is a no-op.
func (t *Tracer) Record(tid int, k EventKind, peer int32, ref uint64) {
	if t == nil {
		return
	}
	ts := time.Since(t.start).Nanoseconds()
	r := &t.rings[tid]
	r.mu.Lock()
	r.buf[int(r.n)&(len(r.buf)-1)] = Event{TS: ts, Kind: k, TID: int32(tid), Peer: peer, Ref: ref, Req: r.req}
	r.n++
	r.mu.Unlock()
}

// SetRequest installs req as thread tid's current request id: every
// event the thread records until the next SetRequest carries it (the
// request-scoped span layer sets it at request start and clears it —
// req 0 — after the response is flushed). Allocation-free; a nil
// receiver is a no-op.
func (t *Tracer) SetRequest(tid int, req uint64) {
	if t == nil {
		return
	}
	r := &t.rings[tid]
	r.mu.Lock()
	r.req = req
	r.mu.Unlock()
}

// Drain removes and returns every buffered event, merged across threads
// and sorted by timestamp. Events recorded after the drain started may
// land in the next drain.
func (t *Tracer) Drain() []Event {
	if t == nil {
		return nil
	}
	var out []Event
	for i := range t.rings {
		r := &t.rings[i]
		r.mu.Lock()
		kept := r.n
		if kept > uint64(len(r.buf)) {
			r.drops += kept - uint64(len(r.buf))
			kept = uint64(len(r.buf))
		}
		for j := uint64(0); j < kept; j++ {
			out = append(out, r.buf[(r.n-kept+j)&uint64(len(r.buf)-1)])
		}
		r.n = 0
		r.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	return out
}

// Dropped reports how many events were overwritten before any drain saw
// them (exported as trace_dropped_total when metrics are also on).
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	var total uint64
	for i := range t.rings {
		r := &t.rings[i]
		r.mu.Lock()
		total += r.drops
		if r.n > uint64(len(r.buf)) {
			total += r.n - uint64(len(r.buf))
		}
		r.mu.Unlock()
	}
	return total
}

// jsonEvent is the JSONL wire form of an Event. The Span field is a
// record discriminator: event lines never set it, span lines
// (WriteSpansJSONL) always do.
type jsonEvent struct {
	TSNS int64  `json:"ts_ns"`
	Ev   string `json:"ev"`
	TID  int32  `json:"tid"`
	Peer int32  `json:"peer"`
	Ref  uint64 `json:"ref"`
	Req  uint64 `json:"req"`
	Span int    `json:"span"`
}

// WriteJSONL serializes events one JSON object per line.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	for _, e := range events {
		if _, err := fmt.Fprintf(bw, `{"ts_ns":%d,"ev":%q,"tid":%d,"peer":%d,"ref":%d,"req":%d}`+"\n",
			e.TS, e.Kind.String(), e.TID, e.Peer, e.Ref, e.Req); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// parseEventLine parses one JSONL event line strictly.
func parseEventLine(raw []byte) (Event, error) {
	var je jsonEvent
	if err := json.Unmarshal(raw, &je); err != nil {
		return Event{}, err
	}
	k, ok := KindFromString(je.Ev)
	if !ok {
		return Event{}, fmt.Errorf("unknown event kind %q", je.Ev)
	}
	return Event{TS: je.TSNS, Kind: k, TID: je.TID, Peer: je.Peer, Ref: je.Ref, Req: je.Req}, nil
}

// ReadJSONL parses a JSONL trace back into its events, validating each
// event line; span records in a mixed trace file are skipped (use
// ReadTrace to get both). cmd/tracecheck and the CI smoke job use it.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var probe struct {
			Span int `json:"span"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		if probe.Span != 0 {
			continue
		}
		ev, err := parseEventLine(raw)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteChromeTrace serializes events in Chrome trace_event format
// (instant events, thread id = registered thread id): load the file in
// chrome://tracing or ui.perfetto.dev for a timeline view.
func WriteChromeTrace(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, `{"traceEvents":[`); err != nil {
		return err
	}
	for i, e := range events {
		sep := ","
		if i == 0 {
			sep = ""
		}
		// ts is microseconds (Chrome's unit), kept fractional so
		// nanosecond-close events keep their order.
		if _, err := fmt.Fprintf(bw,
			`%s{"name":%q,"ph":"i","s":"t","pid":0,"tid":%d,"ts":%d.%03d,"args":{"peer":%d,"ref":%d,"req":%d}}`,
			sep, e.Kind.String(), e.TID, e.TS/1000, e.TS%1000, e.Peer, e.Ref, e.Req); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(bw, "]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
