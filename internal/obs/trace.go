package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/pad"
)

// EventKind names one descriptor-protocol lifecycle event. The set
// mirrors the windows internal/fault instruments, plus the composed
// layers' own windows (batch flush, map migration), so a trace lines up
// one-to-one with where chaos rules can fire.
type EventKind uint8

// The event taxonomy (see docs/observability.md).
const (
	// EvPublish: the initiating thread announced a descriptor (pair
	// line D10, or general Execute entry). Ref is the descriptor
	// reference.
	EvPublish EventKind = iota
	// EvHelp: a peer thread entered the helping protocol for another
	// thread's announced descriptor. TID is the helper, Peer the
	// victim (the initiating thread whose operation is being helped).
	EvHelp
	// EvCommit: the initiating thread's operation decided SUCCESS.
	EvCommit
	// EvAbort: the initiating thread's announced operation decided
	// failure (pair SECONDFAILED or a general entry mismatch).
	EvAbort
	// EvRecycle: a descriptor slot was handed back for reuse.
	EvRecycle
	// EvBatchFlush: a batched-move buffer crossed its prepare→commit
	// gap.
	EvBatchFlush
	// EvMapMigrate: a map shard migration step ran mid-grow.
	EvMapMigrate

	numEventKinds
)

var eventNames = [numEventKinds]string{
	EvPublish:    "publish",
	EvHelp:       "help",
	EvCommit:     "commit",
	EvAbort:      "abort",
	EvRecycle:    "recycle",
	EvBatchFlush: "batch-flush",
	EvMapMigrate: "map-migrate",
}

// String returns the kind's wire name (used in JSONL and Chrome traces).
func (k EventKind) String() string {
	if int(k) < len(eventNames) {
		return eventNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// KindFromString resolves a wire name back to its EventKind.
func KindFromString(s string) (EventKind, bool) {
	for k, n := range eventNames {
		if n == s {
			return EventKind(k), true
		}
	}
	return 0, false
}

// Event is one recorded protocol event.
type Event struct {
	// TS is nanoseconds since the tracer was created.
	TS int64
	// Kind is the event taxonomy entry.
	Kind EventKind
	// TID is the recording thread.
	TID int32
	// Peer is the victim thread on EvHelp (the initiator being
	// helped); -1 when not applicable.
	Peer int32
	// Ref is the descriptor reference involved, 0 when not applicable.
	Ref uint64
}

// ring is one thread's event buffer. The mutex makes Record/Drain safe
// under the race detector; it is per-thread and therefore uncontended
// except against a drain, so the enabled-path cost stays a few tens of
// nanoseconds and zero allocations.
type ring struct {
	mu    sync.Mutex
	buf   []Event
	n     uint64 // events ever recorded into this ring
	drops uint64 // events overwritten before a drain observed them
	_     pad.Line
}

// Tracer records protocol events into fixed per-thread rings. A nil
// *Tracer is the disabled state: Record is a nil check and nothing else.
type Tracer struct {
	start time.Time
	rings []ring
}

// DefaultTraceBuf is the per-thread ring capacity when Config.TraceBuf
// is zero.
const DefaultTraceBuf = 4096

// NewTracer builds a tracer with one ring of perThread events (rounded
// up to a power of two; <=0 selects DefaultTraceBuf) for each of
// maxThreads threads.
func NewTracer(maxThreads, perThread int) *Tracer {
	if maxThreads <= 0 {
		maxThreads = 1
	}
	if perThread <= 0 {
		perThread = DefaultTraceBuf
	}
	perThread = pad.CeilPow2(perThread)
	t := &Tracer{start: time.Now(), rings: make([]ring, maxThreads)}
	for i := range t.rings {
		t.rings[i].buf = make([]Event, perThread)
	}
	return t
}

// Record appends one event to thread tid's ring, overwriting the oldest
// on overflow. Allocation-free; a nil receiver is a no-op.
func (t *Tracer) Record(tid int, k EventKind, peer int32, ref uint64) {
	if t == nil {
		return
	}
	ts := time.Since(t.start).Nanoseconds()
	r := &t.rings[tid]
	r.mu.Lock()
	r.buf[int(r.n)&(len(r.buf)-1)] = Event{TS: ts, Kind: k, TID: int32(tid), Peer: peer, Ref: ref}
	r.n++
	r.mu.Unlock()
}

// Drain removes and returns every buffered event, merged across threads
// and sorted by timestamp. Events recorded after the drain started may
// land in the next drain.
func (t *Tracer) Drain() []Event {
	if t == nil {
		return nil
	}
	var out []Event
	for i := range t.rings {
		r := &t.rings[i]
		r.mu.Lock()
		kept := r.n
		if kept > uint64(len(r.buf)) {
			r.drops += kept - uint64(len(r.buf))
			kept = uint64(len(r.buf))
		}
		for j := uint64(0); j < kept; j++ {
			out = append(out, r.buf[(r.n-kept+j)&uint64(len(r.buf)-1)])
		}
		r.n = 0
		r.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	return out
}

// Dropped reports how many events were overwritten before any drain saw
// them (exported as trace_dropped_total when metrics are also on).
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	var total uint64
	for i := range t.rings {
		r := &t.rings[i]
		r.mu.Lock()
		total += r.drops
		if r.n > uint64(len(r.buf)) {
			total += r.n - uint64(len(r.buf))
		}
		r.mu.Unlock()
	}
	return total
}

// jsonEvent is the JSONL wire form of an Event.
type jsonEvent struct {
	TSNS int64  `json:"ts_ns"`
	Ev   string `json:"ev"`
	TID  int32  `json:"tid"`
	Peer int32  `json:"peer"`
	Ref  uint64 `json:"ref"`
}

// WriteJSONL serializes events one JSON object per line.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	for _, e := range events {
		if _, err := fmt.Fprintf(bw, `{"ts_ns":%d,"ev":%q,"tid":%d,"peer":%d,"ref":%d}`+"\n",
			e.TS, e.Kind.String(), e.TID, e.Peer, e.Ref); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL trace back into events, validating each line
// (cmd/tracecheck and the CI smoke job use it).
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var je jsonEvent
		if err := json.Unmarshal(raw, &je); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		k, ok := KindFromString(je.Ev)
		if !ok {
			return nil, fmt.Errorf("line %d: unknown event kind %q", line, je.Ev)
		}
		out = append(out, Event{TS: je.TSNS, Kind: k, TID: je.TID, Peer: je.Peer, Ref: je.Ref})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteChromeTrace serializes events in Chrome trace_event format
// (instant events, thread id = registered thread id): load the file in
// chrome://tracing or ui.perfetto.dev for a timeline view.
func WriteChromeTrace(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, `{"traceEvents":[`); err != nil {
		return err
	}
	for i, e := range events {
		sep := ","
		if i == 0 {
			sep = ""
		}
		// ts is microseconds (Chrome's unit), kept fractional so
		// nanosecond-close events keep their order.
		if _, err := fmt.Fprintf(bw,
			`%s{"name":%q,"ph":"i","s":"t","pid":0,"tid":%d,"ts":%d.%03d,"args":{"peer":%d,"ref":%d}}`,
			sep, e.Kind.String(), e.TID, e.TS/1000, e.TS%1000, e.Peer, e.Ref); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(bw, "]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
