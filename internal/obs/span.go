package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pad"
)

// Stage indexes one segment of a request-scoped span: the wall time of
// one wire request decomposed into where it was actually spent. The
// taxonomy follows the kvserver request path (docs/observability.md):
type Stage uint8

// The stage taxonomy. Queue is the accept→worker-borrow wait (pool
// queueing, invisible to service-time histograms because they start
// after the borrow); Parse is request-line parsing; Exec is time inside
// the data-path operation (including kcas retries and helping — the
// span's Publishes/Helps/Aborts sub-counters attribute it); Degrade is
// degradation overhead (retry backoff sleeps between exhausted
// attempts); Write is response serialization and flush.
const (
	StageQueue Stage = iota
	StageParse
	StageExec
	StageDegrade
	StageWrite

	// NumStages bounds the stage set.
	NumStages
)

var stageNames = [NumStages]string{
	StageQueue:   "queue",
	StageParse:   "parse",
	StageExec:    "execute",
	StageDegrade: "degrade",
	StageWrite:   "write",
}

// String returns the stage's wire name (used in span JSON, the METRICS
// per-stage series and tracecheck output).
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return fmt.Sprintf("stage(%d)", uint8(s))
}

// StageFromString resolves a wire name back to its Stage.
func StageFromString(s string) (Stage, bool) {
	for i, n := range stageNames {
		if n == s {
			return Stage(i), true
		}
	}
	return 0, false
}

// Span is one completed request's latency attribution: wall time
// decomposed into stages, plus the kcas protocol work the request's
// execute stage performed (per-thread counter deltas). The Req id is
// also stamped into every tracer Event the serving thread records while
// the request is current, so a slow span's publish/help/commit chain is
// recoverable from the trace.
type Span struct {
	// Req is the server-unique request id (1-based; 0 means "no
	// request" in tracer events).
	Req uint64
	// TID is the serving thread's registered id (matches tracer TIDs);
	// Worker is the serving worker's pool index (the latency stripe).
	TID    int32
	Worker int32
	// Tenant is the request's (source) tenant; -1 when not applicable.
	Tenant int32
	// Op is the protocol verb served; Status the response's status
	// token (OK, NF, BUSY, TIMEOUT, FAIL, ...).
	Op     string
	Status string
	// StartNS is nanoseconds since the span recorder's epoch (shared
	// with the tracer's, so spans and protocol events align on one
	// timeline); WallNS the span's full wall time including queue wait.
	StartNS int64
	WallNS  int64
	// Stage holds per-stage nanoseconds. Stages are measured as
	// disjoint intervals of the request's wall time; their sum is ≤
	// WallNS (the remainder is inter-stage bookkeeping, normally
	// negligible — cmd/tracecheck validates this).
	Stage [NumStages]int64
	// Publishes/Helps/Aborts are the serving thread's kcas counter
	// deltas over the execute stage: how many descriptors the request
	// announced, how many times it helped peers' operations, and how
	// many announced attempts aborted. Zero when the metrics registry
	// is off.
	Publishes uint64
	Helps     uint64
	Aborts    uint64
}

// Dominant returns the stage holding the largest share of the span's
// time (ties resolve to the earliest stage).
func (s Span) Dominant() Stage {
	best := Stage(0)
	for st := Stage(1); st < NumStages; st++ {
		if s.Stage[st] > s.Stage[best] {
			best = st
		}
	}
	return best
}

// spanJSON is the wire form of a Span: one JSON object per line in
// trace dumps (distinguished from events by the top-level "span" key)
// and the element type of the SLOW verb's exemplar list.
type spanJSON struct {
	Span      int              `json:"span"` // always 1: record discriminator
	Req       uint64           `json:"req"`
	TID       int32            `json:"tid"`
	Worker    int32            `json:"worker"`
	Tenant    int32            `json:"tenant"`
	Op        string           `json:"op"`
	Status    string           `json:"status"`
	StartNS   int64            `json:"start_ns"`
	WallNS    int64            `json:"wall_ns"`
	Stages    map[string]int64 `json:"stages"`
	Publishes uint64           `json:"kcas_publishes"`
	Helps     uint64           `json:"kcas_helps"`
	Aborts    uint64           `json:"kcas_aborts"`
}

// MarshalJSON serializes the span with named stages.
func (s Span) MarshalJSON() ([]byte, error) {
	j := spanJSON{
		Span: 1, Req: s.Req, TID: s.TID, Worker: s.Worker, Tenant: s.Tenant,
		Op: s.Op, Status: s.Status, StartNS: s.StartNS, WallNS: s.WallNS,
		Stages:    make(map[string]int64, NumStages),
		Publishes: s.Publishes, Helps: s.Helps, Aborts: s.Aborts,
	}
	for st := Stage(0); st < NumStages; st++ {
		j.Stages[st.String()] = s.Stage[st]
	}
	return json.Marshal(j)
}

// UnmarshalJSON parses the named-stage wire form. Unknown stage names
// are an error — the reader is strict the same way ReadJSONL is.
func (s *Span) UnmarshalJSON(b []byte) error {
	var j spanJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	*s = Span{
		Req: j.Req, TID: j.TID, Worker: j.Worker, Tenant: j.Tenant,
		Op: j.Op, Status: j.Status, StartNS: j.StartNS, WallNS: j.WallNS,
		Publishes: j.Publishes, Helps: j.Helps, Aborts: j.Aborts,
	}
	for name, ns := range j.Stages {
		st, ok := StageFromString(name)
		if !ok {
			return fmt.Errorf("unknown span stage %q", name)
		}
		s.Stage[st] = ns
	}
	return nil
}

// spanRing is one worker's overwrite-oldest buffer of completed spans.
type spanRing struct {
	mu    sync.Mutex
	buf   []Span
	n     uint64
	drops uint64
	_     pad.Line
}

// DefaultSpanBuf is the per-worker completed-span ring capacity when
// Config.SpanBuf is zero.
const DefaultSpanBuf = 1024

// DefaultSpanTopK is the tail-exemplar buffer size when Config.SpanTopK
// is zero.
const DefaultSpanTopK = 32

// Spans is the request-span recorder: per-worker overwrite-oldest rings
// of completed spans plus one top-K tail-exemplar buffer holding the
// slowest requests with their full stage breakdown. A nil *Spans is the
// disabled state — every method is a nil check and the request path
// stays allocation-free.
//
// The exemplar buffer is gated by a threshold (SetThreshold, fed by the
// serving layer's windowed p99) so that under a load shift the buffer
// self-tunes: only requests at or beyond the current tail are
// considered, and of those the K slowest are retained.
type Spans struct {
	epoch  time.Time
	rings  []spanRing
	reqSeq atomic.Uint64

	thresholdNS atomic.Int64

	topMu sync.Mutex
	topK  int
	top   []Span
}

// NewSpans builds a span recorder with one ring of perWorker completed
// spans (rounded up to a power of two; <=0 selects DefaultSpanBuf) per
// worker and a topK-sized tail-exemplar buffer (<=0 selects
// DefaultSpanTopK).
func NewSpans(workers, perWorker, topK int) *Spans {
	return newSpansAt(time.Now(), workers, perWorker, topK)
}

func newSpansAt(epoch time.Time, workers, perWorker, topK int) *Spans {
	if workers <= 0 {
		workers = 1
	}
	if perWorker <= 0 {
		perWorker = DefaultSpanBuf
	}
	if topK <= 0 {
		topK = DefaultSpanTopK
	}
	perWorker = pad.CeilPow2(perWorker)
	// top is preallocated at capacity so Finish never allocates.
	s := &Spans{epoch: epoch, rings: make([]spanRing, workers), topK: topK, top: make([]Span, 0, topK)}
	for i := range s.rings {
		s.rings[i].buf = make([]Span, perWorker)
	}
	return s
}

// NextReq hands out the next request id (1-based so 0 stays the
// tracer's "no current request" sentinel). Nil receivers return 0.
func (s *Spans) NextReq() uint64 {
	if s == nil {
		return 0
	}
	return s.reqSeq.Add(1)
}

// SinceEpoch converts a wall-clock instant to span-timeline
// nanoseconds.
func (s *Spans) SinceEpoch(t time.Time) int64 {
	if s == nil {
		return 0
	}
	return t.Sub(s.epoch).Nanoseconds()
}

// SetThreshold installs the exemplar gate in nanoseconds: completed
// spans at least this slow are considered for the tail-exemplar
// buffer. Zero (the initial state) admits every span, so exemplars are
// available before the first control window closes.
func (s *Spans) SetThreshold(ns int64) {
	if s == nil {
		return
	}
	if ns < 0 {
		ns = 0
	}
	s.thresholdNS.Store(ns)
}

// Threshold reports the current exemplar gate.
func (s *Spans) Threshold() int64 {
	if s == nil {
		return 0
	}
	return s.thresholdNS.Load()
}

// Finish records one completed span into worker's ring and, when its
// wall time clears the threshold gate, offers it to the tail-exemplar
// buffer (kept: the K slowest offered so far). Allocation-free; a nil
// receiver is a no-op.
func (s *Spans) Finish(worker int, sp Span) {
	if s == nil {
		return
	}
	r := &s.rings[worker]
	r.mu.Lock()
	if r.n >= uint64(len(r.buf)) {
		r.drops++
	}
	r.buf[int(r.n)&(len(r.buf)-1)] = sp
	r.n++
	r.mu.Unlock()

	if sp.WallNS < s.thresholdNS.Load() {
		return
	}
	s.topMu.Lock()
	if len(s.top) < s.topK {
		s.top = append(s.top, sp)
	} else {
		min := 0
		for i := 1; i < len(s.top); i++ {
			if s.top[i].WallNS < s.top[min].WallNS {
				min = i
			}
		}
		if sp.WallNS > s.top[min].WallNS {
			s.top[min] = sp
		}
	}
	s.topMu.Unlock()
}

// Exemplars returns a copy of the tail-exemplar buffer sorted slowest
// first.
func (s *Spans) Exemplars() []Span {
	if s == nil {
		return nil
	}
	s.topMu.Lock()
	out := make([]Span, len(s.top))
	copy(out, s.top)
	s.topMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].WallNS > out[j].WallNS })
	return out
}

// Completed returns every span still buffered in the per-worker rings,
// merged and sorted by start time. The rings are not reset — the trace
// dump path reads once at drain.
func (s *Spans) Completed() []Span {
	if s == nil {
		return nil
	}
	var out []Span
	for i := range s.rings {
		r := &s.rings[i]
		r.mu.Lock()
		kept := r.n
		if kept > uint64(len(r.buf)) {
			kept = uint64(len(r.buf))
		}
		for j := uint64(0); j < kept; j++ {
			out = append(out, r.buf[(r.n-kept+j)&uint64(len(r.buf)-1)])
		}
		r.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].StartNS < out[j].StartNS })
	return out
}

// Dropped reports how many completed spans were overwritten in the
// rings before being read (exported as spans_dropped_total when metrics
// are also on).
func (s *Spans) Dropped() uint64 {
	if s == nil {
		return 0
	}
	var total uint64
	for i := range s.rings {
		r := &s.rings[i]
		r.mu.Lock()
		total += r.drops
		r.mu.Unlock()
	}
	return total
}

// WriteSpansJSONL serializes spans one JSON object per line (the same
// framing as WriteJSONL event lines; the top-level "span" key
// discriminates the two record types in a mixed trace file).
func WriteSpansJSONL(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, sp := range spans {
		if err := enc.Encode(sp); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a mixed trace file — event lines (WriteJSONL) and
// span lines (WriteSpansJSONL) interleaved in any order — strictly:
// malformed lines, unknown event kinds and unknown stage names are
// errors. cmd/tracecheck uses it.
func ReadTrace(r io.Reader) ([]Event, []Span, error) {
	var events []Event
	var spans []Span
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var probe struct {
			Span int `json:"span"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			return nil, nil, fmt.Errorf("line %d: %w", line, err)
		}
		if probe.Span != 0 {
			var sp Span
			if err := sp.UnmarshalJSON(raw); err != nil {
				return nil, nil, fmt.Errorf("line %d: %w", line, err)
			}
			spans = append(spans, sp)
			continue
		}
		ev, err := parseEventLine(raw)
		if err != nil {
			return nil, nil, fmt.Errorf("line %d: %w", line, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return events, spans, nil
}

// WriteChromeTraceWith serializes protocol events (instant events, as
// WriteChromeTrace) plus spans as Chrome "complete" (ph:"X") duration
// events — one slice per nonzero stage on the serving thread's row, so
// a slow request renders as a bar decomposed into queue / parse /
// execute / degrade / write, with the request id in args for
// cross-referencing the instant events it stamped.
func WriteChromeTraceWith(w io.Writer, events []Event, spans []Span) error {
	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, `{"traceEvents":[`); err != nil {
		return err
	}
	first := true
	sep := func() string {
		if first {
			first = false
			return ""
		}
		return ","
	}
	for _, e := range events {
		if _, err := fmt.Fprintf(bw,
			`%s{"name":%q,"ph":"i","s":"t","pid":0,"tid":%d,"ts":%d.%03d,"args":{"peer":%d,"ref":%d,"req":%d}}`,
			sep(), e.Kind.String(), e.TID, e.TS/1000, e.TS%1000, e.Peer, e.Ref, e.Req); err != nil {
			return err
		}
	}
	for _, sp := range spans {
		off := sp.StartNS
		for st := Stage(0); st < NumStages; st++ {
			d := sp.Stage[st]
			if d <= 0 {
				continue
			}
			if _, err := fmt.Fprintf(bw,
				`%s{"name":%q,"ph":"X","pid":0,"tid":%d,"ts":%d.%03d,"dur":%d.%03d,"args":{"req":%d,"op":%q,"status":%q}}`,
				sep(), st.String(), sp.TID, off/1000, off%1000, d/1000, d%1000, sp.Req, sp.Op, sp.Status); err != nil {
				return err
			}
			off += d
		}
	}
	if _, err := io.WriteString(bw, "]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
