package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestRegistryStripesAndFuncs(t *testing.T) {
	r := NewRegistry(4)
	for tid := 0; tid < 4; tid++ {
		for i := 0; i < tid+1; i++ {
			r.Inc(tid, KCASHelp)
		}
	}
	if got := r.Value(KCASHelp); got != 1+2+3+4 {
		t.Fatalf("Value(KCASHelp) = %d, want 10", got)
	}
	// Two funcs under one name are summed; a separate name stands alone.
	r.AddFunc("elim_hits_total", func() uint64 { return 7 })
	r.AddFunc("elim_hits_total", func() uint64 { return 5 })
	r.AddFunc("fault_fired_total", func() uint64 { return 3 })
	s := r.Snapshot()
	if got := s.Get("kcas_helps_total"); got != 10 {
		t.Fatalf("snapshot kcas_helps_total = %d, want 10", got)
	}
	if got := s.Get("elim_hits_total"); got != 12 {
		t.Fatalf("snapshot elim_hits_total = %d, want 12", got)
	}
	if got := s.Get("fault_fired_total"); got != 3 {
		t.Fatalf("snapshot fault_fired_total = %d, want 3", got)
	}
	// Zero-valued fixed counters are still present: absent must not
	// alias zero.
	if _, ok := s.Counters["kcas_aborts_total"]; !ok {
		t.Fatal("zero-valued fixed counter missing from snapshot")
	}
}

func TestRegistryNilIsNoop(t *testing.T) {
	var r *Registry
	r.Inc(0, KCASPublish) // must not panic
	r.AddFunc("x_total", func() uint64 { return 1 })
	if got := r.Value(KCASPublish); got != 0 {
		t.Fatalf("nil Value = %d", got)
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 {
		t.Fatalf("nil snapshot has %d series", len(s.Counters))
	}
}

func TestRegistryIncAllocationFree(t *testing.T) {
	r := NewRegistry(2)
	if allocs := testing.AllocsPerRun(1000, func() {
		r.Inc(1, KCASPublish)
		r.Inc(1, KCASCommit)
	}); allocs != 0 {
		t.Fatalf("Inc allocates %v per run, want 0", allocs)
	}
}

func TestSnapshotMergeAndSub(t *testing.T) {
	a := Snapshot{Counters: map[string]uint64{"x_total": 3, "y_total": 1}}
	b := Snapshot{Counters: map[string]uint64{"x_total": 2, "z_total": 5}}
	a.Merge(b)
	if a.Get("x_total") != 5 || a.Get("y_total") != 1 || a.Get("z_total") != 5 {
		t.Fatalf("merge wrong: %v", a.Counters)
	}
	d := a.Sub(Snapshot{Counters: map[string]uint64{"x_total": 1, "y_total": 9}})
	if d.Get("x_total") != 4 {
		t.Fatalf("sub x_total = %d, want 4", d.Get("x_total"))
	}
	// A regressed series clamps to zero rather than wrapping.
	if d.Get("y_total") != 0 {
		t.Fatalf("sub regressed y_total = %d, want 0", d.Get("y_total"))
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry(1)
	r.Inc(0, KCASHelp)
	r.AddFunc("busy_total", func() uint64 { return 0 })
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE kcas_helps_total counter\nkcas_helps_total 1\n",
		"busy_total 0\n", // zero-valued series emitted
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Fatalf("prometheus output not terminated by # EOF:\n%s", out)
	}
	// Names sorted.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	var names []string
	for _, l := range lines {
		if !strings.HasPrefix(l, "#") {
			names = append(names, strings.Fields(l)[0])
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatalf("names out of order: %v", names)
		}
	}
}

func TestTracerRecordDrain(t *testing.T) {
	tr := NewTracer(2, 8)
	tr.Record(0, EvPublish, -1, 11)
	tr.Record(1, EvHelp, 0, 11)
	tr.Record(0, EvCommit, -1, 11)
	evs := tr.Drain()
	if len(evs) != 3 {
		t.Fatalf("drained %d events, want 3", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].TS < evs[i-1].TS {
			t.Fatal("drained events not time-sorted")
		}
	}
	var help *Event
	for i := range evs {
		if evs[i].Kind == EvHelp {
			help = &evs[i]
		}
	}
	if help == nil || help.TID != 1 || help.Peer != 0 {
		t.Fatalf("help event attribution wrong: %+v", help)
	}
	if again := tr.Drain(); len(again) != 0 {
		t.Fatalf("second drain returned %d events, want 0", len(again))
	}
}

func TestTracerOverflowCountsDrops(t *testing.T) {
	tr := NewTracer(1, 4)
	for i := 0; i < 10; i++ {
		tr.Record(0, EvRecycle, -1, uint64(i))
	}
	evs := tr.Drain()
	if len(evs) != 4 {
		t.Fatalf("drained %d events from a 4-slot ring, want 4", len(evs))
	}
	// The survivors are the newest four.
	if evs[0].Ref != 6 || evs[3].Ref != 9 {
		t.Fatalf("ring kept wrong events: %+v", evs)
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
}

func TestTracerRecordAllocationFree(t *testing.T) {
	tr := NewTracer(1, 64)
	if allocs := testing.AllocsPerRun(1000, func() {
		tr.Record(0, EvPublish, -1, 1)
	}); allocs != 0 {
		t.Fatalf("Record allocates %v per run, want 0", allocs)
	}
}

func TestTracerConcurrentRecord(t *testing.T) {
	tr := NewTracer(4, 256)
	var wg sync.WaitGroup
	for tid := 0; tid < 4; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Record(tid, EvHelp, int32((tid+1)%4), uint64(i))
			}
		}(tid)
	}
	wg.Wait()
	if got := len(tr.Drain()); got != 800 {
		t.Fatalf("drained %d events, want 800", got)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	in := []Event{
		{TS: 10, Kind: EvPublish, TID: 0, Peer: -1, Ref: 7},
		{TS: 20, Kind: EvHelp, TID: 2, Peer: 0, Ref: 7},
		{TS: 30, Kind: EvMapMigrate, TID: 1, Peer: -1, Ref: 0},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip %d events, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("event %d: got %+v, want %+v", i, out[i], in[i])
		}
	}
	if _, err := ReadJSONL(strings.NewReader(`{"ts_ns":1,"ev":"nonsense","tid":0,"peer":0,"ref":0}`)); err == nil {
		t.Fatal("unknown event kind accepted")
	}
	if _, err := ReadJSONL(strings.NewReader(`{broken`)); err == nil {
		t.Fatal("malformed line accepted")
	}
}

func TestWriteChromeTrace(t *testing.T) {
	var buf bytes.Buffer
	err := WriteChromeTrace(&buf, []Event{
		{TS: 1500, Kind: EvHelp, TID: 3, Peer: 1, Ref: 42},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"traceEvents"`, `"name":"help"`, `"tid":3`, `"ts":1.500`, `"peer":1`} {
		if !strings.Contains(out, want) {
			t.Fatalf("chrome trace missing %q:\n%s", want, out)
		}
	}
}

func TestObsNewAndNilAccessors(t *testing.T) {
	if o := New(Config{}, 4); o != nil {
		t.Fatal("disabled config built an Obs")
	}
	var o *Obs
	if o.Metrics() != nil || o.Tracer() != nil {
		t.Fatal("nil Obs accessors not nil")
	}
	o = New(Config{Metrics: true}, 4)
	if o.Metrics() == nil || o.Tracer() != nil {
		t.Fatal("metrics-only config wrong")
	}
	o = New(Config{Trace: true}, 4)
	if o.Metrics() != nil || o.Tracer() == nil {
		t.Fatal("trace-only config wrong")
	}
}
