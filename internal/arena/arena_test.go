package arena

import (
	"sync"
	"testing"

	"repro/internal/word"
)

func TestCarveProducesDistinctDereferenceableNodes(t *testing.T) {
	a := New(SlabSize * 3)
	refs := a.Carve(nil, 1000)
	if len(refs) != 1000 {
		t.Fatalf("got %d refs", len(refs))
	}
	seen := make(map[uint64]bool)
	for _, idx := range refs {
		if idx < ReservedIndexes {
			t.Fatalf("carved reserved index %d", idx)
		}
		if seen[idx] {
			t.Fatalf("duplicate index %d", idx)
		}
		seen[idx] = true
		n := a.NodeAt(idx)
		n.Val = idx // touch the memory
	}
	for _, idx := range refs {
		if a.NodeAt(idx).Val != idx {
			t.Fatal("node memory not stable across growth")
		}
	}
}

func TestCarveAcrossSlabBoundary(t *testing.T) {
	a := New(SlabSize * 4)
	var refs []uint64
	for len(refs) < SlabSize+100 {
		refs = a.Carve(refs, 777)
	}
	last := refs[len(refs)-1]
	a.NodeAt(last).Key = 42
	if a.NodeAt(last).Key != 42 {
		t.Fatal("node across slab boundary not addressable")
	}
}

func TestNodeDerefByRefWithTag(t *testing.T) {
	a := New(0)
	refs := a.Carve(nil, 1)
	idx := refs[0]
	a.NodeAt(idx).Val = 99
	tagged := word.MakeNode(idx, 12345)
	if a.Node(tagged).Val != 99 {
		t.Fatal("deref must ignore version tags")
	}
}

func TestExhaustionPanics(t *testing.T) {
	a := New(64) // rounded up internally to ≥64 indexes but limit enforced
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on exhaustion")
		}
	}()
	a.Carve(nil, 1000)
}

func TestConcurrentCarveYieldsDisjointRanges(t *testing.T) {
	a := New(SlabSize * 8)
	const workers = 8
	const per = 5000
	out := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var refs []uint64
			for i := 0; i < per/100; i++ {
				refs = a.Carve(refs, 100)
			}
			out[w] = refs
		}(w)
	}
	wg.Wait()
	seen := make(map[uint64]bool)
	for _, refs := range out {
		for _, r := range refs {
			if seen[r] {
				t.Fatalf("index %d handed to two workers", r)
			}
			seen[r] = true
		}
	}
	if len(seen) != workers*per {
		t.Fatalf("expected %d distinct indexes, got %d", workers*per, len(seen))
	}
}

func TestAllocatedAndLimit(t *testing.T) {
	a := New(SlabSize)
	if a.Allocated() != ReservedIndexes {
		t.Fatalf("fresh arena should report the reserved prefix, got %d", a.Allocated())
	}
	a.Carve(nil, 10)
	if a.Allocated() != ReservedIndexes+10 {
		t.Fatalf("Allocated=%d", a.Allocated())
	}
	if a.Limit() != SlabSize {
		t.Fatalf("Limit=%d", a.Limit())
	}
}
