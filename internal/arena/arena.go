// Package arena provides the slab-allocated node store that backs every
// concurrent object in this repository.
//
// The paper's implementation stores raw node pointers in shared words and
// relies on hazard pointers to delay reuse. Go's garbage collector does
// not allow tagged raw pointers, so nodes live in slabs owned by an Arena
// and shared words hold 64-bit references (see package word). The arena
// never returns memory to the runtime: a node index stays dereferenceable
// forever, which is exactly the property the paper's algorithms assume
// (a stale helper may CAS a word inside a recycled node; the CAS fails on
// the old-value check but the access itself must be safe).
package arena

import (
	"sync"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/word"
)

// Node is one 64-byte (cache-line sized) container node. Next is the only
// word other threads mutate; Val and Key are written by the node's owner
// before the node is published via a CAS and are read-only afterwards.
type Node struct {
	Next word.Word // may hold node refs or DCAS descriptor refs
	Aux  word.Word // second link (unused by queue/stack; lists use Next only)
	Val  uint64
	Key  uint64
	_    [4]uint64
}

const (
	// SlabShift sets the slab size: 1<<SlabShift nodes per slab.
	SlabShift = 16
	// SlabSize is the number of nodes per slab.
	SlabSize = 1 << SlabShift
	slabMask = SlabSize - 1

	// ReservedIndexes is the number of low node indexes that are never
	// allocated, so small even constants can never collide with a live
	// node reference.
	ReservedIndexes = 8
)

// Arena is a grow-only slab store. Dereference is lock-free; growth takes
// a mutex but happens only when the bump pointer crosses a slab boundary.
type Arena struct {
	slabs  atomic.Pointer[[]*[SlabSize]Node]
	growMu sync.Mutex
	next   atomic.Uint64 // bump pointer (node index)
	limit  uint64        // hard cap on node indexes
}

// New creates an arena that can hold up to maxNodes nodes (rounded up to
// a whole slab). maxNodes <= 0 selects a default of 1<<22 (~4M nodes,
// 256 MiB worst case, allocated lazily slab by slab).
func New(maxNodes int) *Arena {
	if maxNodes <= 0 {
		maxNodes = 1 << 22
	}
	if uint64(maxNodes) > word.MaxNodeIndex {
		maxNodes = int(word.MaxNodeIndex)
	}
	a := &Arena{limit: uint64(maxNodes)}
	a.next.Store(ReservedIndexes)
	empty := make([]*[SlabSize]Node, 0)
	a.slabs.Store(&empty)
	return a
}

// Node dereferences a node reference (as encoded by word.MakeNode;
// version tags and list marks are ignored). Index 0 and the reserved
// range are never valid.
func (a *Arena) Node(ref uint64) *Node {
	return a.NodeAt(word.NodeIndex(ref))
}

// NodeAt dereferences a bare arena index (as produced by Carve).
func (a *Arena) NodeAt(idx uint64) *Node {
	slabs := *a.slabs.Load()
	return &slabs[idx>>SlabShift][idx&slabMask]
}

// Allocated returns the number of node indexes carved so far, including
// the reserved prefix.
func (a *Arena) Allocated() uint64 { return a.next.Load() }

// Limit returns the maximum number of node indexes this arena can carve.
func (a *Arena) Limit() uint64 { return a.limit }

// Carve bump-allocates n fresh node indexes and appends them to dst,
// growing slabs as needed. It panics with *fault.ResourceError when the
// arena is exhausted — an undersized configuration or a leak. Carve runs
// strictly before any node is published, so core.Thread.Try can recover
// the panic into ErrResourceExhausted with shared state intact; callers
// outside Try keep the historical crash behavior.
func (a *Arena) Carve(dst []uint64, n int) []uint64 {
	start := a.next.Add(uint64(n)) - uint64(n)
	end := start + uint64(n)
	if end > a.limit {
		panic(&fault.ResourceError{Resource: "arena: node store", Capacity: a.limit, Hint: "ArenaCapacity"})
	}
	a.ensure(end)
	for idx := start; idx < end; idx++ {
		dst = append(dst, idx)
	}
	return dst
}

// ensure grows the slab table until index end-1 is dereferenceable.
func (a *Arena) ensure(end uint64) {
	needSlabs := int((end + slabMask) >> SlabShift)
	if len(*a.slabs.Load()) >= needSlabs {
		return
	}
	a.growMu.Lock()
	defer a.growMu.Unlock()
	cur := *a.slabs.Load()
	if len(cur) >= needSlabs {
		return
	}
	grown := make([]*[SlabSize]Node, needSlabs)
	copy(grown, cur)
	for i := len(cur); i < needSlabs; i++ {
		grown[i] = new([SlabSize]Node)
	}
	a.slabs.Store(&grown)
}
