// Package core implements the paper's primary contribution: the
// lock-free composition methodology of §3 — the move operation
// (Algorithm 3) that unifies the linearization points of a remove and an
// insert via DCAS, and the scas operation that move-ready objects call
// at their linearization points in place of CAS.
//
// A Runtime owns all shared substrate (arena, hazard-pointer domains,
// memory manager, descriptor pools); each participating goroutine
// registers once and receives a *Thread carrying the paper's
// thread-local variables (desc, ltarget, ltkey, insfailed) plus its
// hazard slots and memory caches.
package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/adapt"
	"repro/internal/arena"
	"repro/internal/elim"
	"repro/internal/fault"
	"repro/internal/hazard"
	"repro/internal/kcas"
	"repro/internal/mm"
	"repro/internal/obs"
	"repro/internal/word"
	"repro/internal/xrand"
)

// Node hazard-pointer slot assignments. Requirement 2 of the
// move-candidate definition demands that insert and remove operations on
// different instances can succeed simultaneously; as §5.1 prescribes,
// insert-side and remove-side operations therefore use disjoint slot
// sets. Slots 6..7 receive the mirrored hazard pointers when helping a
// pair operation (line D3); the next MaxEntries slots are mirrors for
// k-word helping; the final MaxEntries slots are the chain hold slots —
// initiator-side per-entry protections published while a composed
// chain (MoveN, TransferN, SwapHeads) accumulates entries, so a node
// captured at entry j stays protected even after a later same-side
// operation overwrites the container slots it was found through.
const (
	SlotIns0   = 0 // insert-side primary (e.g. ltail in enqueue)
	SlotIns1   = 1 // insert-side secondary (e.g. lnext in enqueue)
	SlotInsAux = 2 // insert-side traversal (ordered list prev)
	SlotRem0   = 3 // remove-side primary (e.g. lhead in dequeue)
	SlotRem1   = 4 // remove-side secondary (e.g. lnext in dequeue)
	SlotRemAux = 5 // remove-side traversal (ordered list prev)

	slotMirror1 = 6
	slotMirror2 = 7

	slotKMirrorBase   = 8
	slotChainHoldBase = 8 + kcas.MaxEntries

	nodeSlotsPerThread = 8 + 2*kcas.MaxEntries
)

// Descriptor-domain hazard slots.
const (
	slotHPD      = 0 // pair hpd (read operation, line D35)
	slotKHPD     = 1 // k-word descriptor protection
	slotRDCSSHPD = 2 // RDCSS sub-descriptor protection
	descSlotsPer = 3
)

// Config sizes a Runtime. The zero value selects usable defaults.
type Config struct {
	// MaxThreads is the number of threads that may register. Default 64;
	// hard limit word.MaxThreads.
	MaxThreads int
	// ArenaCapacity is the maximum number of container nodes. Default
	// 1<<22.
	ArenaCapacity int
	// DescCapacity is the maximum number of k-word CAS descriptors —
	// the runtime's total descriptor budget, honored exactly by the one
	// unified pool. Default 1<<18.
	DescCapacity int
	// RetireThreshold triggers hazard scans of retired nodes. Default
	// mm.DefaultRetireThreshold.
	RetireThreshold int
	// Elimination configures the elimination-backoff contention layer
	// for the containers that support it (the Treiber stacks and the
	// hash map's shards): operations that lose their linearization CAS
	// to contention rendezvous in a per-object elimination array and
	// pair off insert/remove without touching the shared anchor.
	// Threads inside a Move/MoveN always bypass the layer — a move's
	// linearization must go through its DCAS/MCAS descriptor. Disabled
	// by default.
	Elimination elim.Config
	// Adaptive configures the feedback-driven contention-management
	// subsystem (package adapt): per-object controllers sample the
	// containers' contention signals on operation-count epochs and tune
	// the elimination window, attach elimination to hot unsealed map
	// shards, and pace shard rebalancing. Enabling it attaches
	// elimination arrays to the supporting containers even when
	// Elimination.Enable is false (the arrays are the mechanism the
	// controllers steer). Adaptation never reroutes a move: the
	// Move/MoveN elimination bypass holds regardless of any decision.
	// Disabled by default.
	Adaptive adapt.Config
	// Fault, when non-nil, is fired at the substrate's named injection
	// points (descriptor publish/commit/recycle, batch prepare–commit
	// gap, hash-map mid-migration) — see package fault. Nil (the
	// default) disables injection; each hook site then costs one
	// nil-interface check. Test- and chaos-harness-only: actions may
	// stall, park, or terminate the calling goroutine.
	Fault fault.Injector
	// Obs configures the unified telemetry layer (package obs): a
	// striped metrics registry the substrate and containers report
	// into, and a descriptor-protocol tracer recording publish / help /
	// commit / abort / recycle events with helper→victim attribution.
	// The zero value disables both; every hook site then costs one nil
	// check and the Move/MoveN hot paths are unchanged.
	Obs obs.Config
}

// Runtime owns the shared substrate for one family of concurrent
// objects. Objects from different runtimes must not be composed: their
// words dereference different arenas.
type Runtime struct {
	cfg Config

	arena   *arena.Arena
	nodeDom *hazard.Domain
	descDom *hazard.Domain
	mm      *mm.Manager
	pool    *kcas.Pool
	obs     *obs.Obs

	nextTID atomic.Int32
	objIDs  atomic.Uint64
}

// NewRuntime builds a Runtime from cfg.
func NewRuntime(cfg Config) *Runtime {
	if cfg.MaxThreads <= 0 {
		cfg.MaxThreads = 64
	}
	if cfg.MaxThreads > word.MaxThreads {
		panic(fmt.Sprintf("core: MaxThreads %d exceeds encodable limit %d", cfg.MaxThreads, word.MaxThreads))
	}
	rt := &Runtime{cfg: cfg}
	rt.arena = arena.New(cfg.ArenaCapacity)
	rt.nodeDom = hazard.New(cfg.MaxThreads, nodeSlotsPerThread)
	rt.descDom = hazard.New(cfg.MaxThreads, descSlotsPer)
	rt.mm = mm.New(rt.arena, rt.nodeDom, mm.Config{RetireThreshold: cfg.RetireThreshold})
	// One pool for both protocols: DescCapacity is the whole budget.
	// (The split engines each carved a full-capacity pool from the same
	// config field, silently doubling descriptor memory.)
	rt.pool = kcas.NewPool(cfg.DescCapacity, rt.descDom)
	rt.obs = obs.New(cfg.Obs, cfg.MaxThreads)
	if reg := rt.obs.Metrics(); reg != nil {
		// Pull the substrate's own monotone counters into the registry:
		// the funcs read exactly the atomics the legacy accessors
		// (Pool.Stats, Plan.FiredTotal, ...) report, so the two surfaces
		// cannot drift.
		pool := rt.pool
		reg.AddFunc("kcas_stray_cleanups_total", func() uint64 { _, s, _ := pool.Stats(); return s })
		reg.AddFunc("kcas_late_p2_total", func() uint64 { _, _, l := pool.Stats(); return l })
		reg.AddFunc("kcas_descs_carved_total", pool.Carved)
		if trc := rt.obs.Tracer(); trc != nil {
			reg.AddFunc("trace_dropped_total", trc.Dropped)
		}
		if pl, ok := cfg.Fault.(*fault.Plan); ok && pl != nil {
			reg.AddFunc("fault_fired_total", pl.FiredTotal)
			reg.AddFunc("fault_kills_total", pl.Kills)
		}
	}
	return rt
}

// Arena exposes the node arena (containers dereference through Thread,
// tests through this).
func (rt *Runtime) Arena() *arena.Arena { return rt.arena }

// Manager exposes the memory manager for tests and diagnostics.
func (rt *Runtime) Manager() *mm.Manager { return rt.mm }

// KCASPool exposes the unified descriptor pool's counters for tests and
// the §7 false-helping measurements.
func (rt *Runtime) KCASPool() *kcas.Pool { return rt.pool }

// MaxThreads reports the configured registration limit.
func (rt *Runtime) MaxThreads() int { return rt.cfg.MaxThreads }

// Obs exposes the runtime's telemetry surfaces; nil when Config.Obs
// disabled both (the nil accessors stay safe to chain, so callers write
// rt.Obs().Metrics() without guards).
func (rt *Runtime) Obs() *obs.Obs { return rt.obs }

// Elimination reports the configured elimination-backoff tuning;
// containers consult it at construction time to decide whether (and how
// big) an elimination array to attach.
func (rt *Runtime) Elimination() elim.Config { return rt.cfg.Elimination }

// Adaptive reports the configured adaptive contention-management
// tuning; containers consult it at construction time to decide whether
// to attach a controller (and how to parameterize its policies).
func (rt *Runtime) Adaptive() adapt.Config { return rt.cfg.Adaptive }

// NewController builds an adapt controller sized for this runtime's
// thread bound, or nil when adaptation is disabled — the one-liner
// containers call at construction time.
func (rt *Runtime) NewController() *adapt.Controller {
	if !rt.cfg.Adaptive.Enable {
		return nil
	}
	c := adapt.New(rt.cfg.Adaptive, rt.cfg.MaxThreads)
	if reg := rt.obs.Metrics(); reg != nil {
		// Every controller registers under the same names; Snapshot
		// sums them, mirroring what the containers' AdaptStats
		// aggregation reports.
		reg.AddFunc("adapt_epochs_total", func() uint64 { return c.Stats().Epochs })
		reg.AddFunc("adapt_window_grows_total", func() uint64 { return c.Stats().WindowGrows })
		reg.AddFunc("adapt_window_shrinks_total", func() uint64 { return c.Stats().WindowShrinks })
		reg.AddFunc("adapt_attaches_total", func() uint64 { return c.Stats().Attaches })
		reg.AddFunc("adapt_detaches_total", func() uint64 { return c.Stats().Detaches })
		reg.AddFunc("adapt_pace_raises_total", func() uint64 { return c.Stats().PaceRaises })
		reg.AddFunc("adapt_pace_decays_total", func() uint64 { return c.Stats().PaceDecays })
	}
	return c
}

// NextObjectID hands out stable object identities; the blocking baseline
// uses them for lock ordering and Move uses them to reject same-object
// composition early.
func (rt *Runtime) NextObjectID() uint64 { return rt.objIDs.Add(1) }

// RegisterThread allocates the next thread slot. Each goroutine that
// touches the runtime's objects must own exactly one Thread and must not
// share it. It panics when MaxThreads is exceeded.
func (rt *Runtime) RegisterThread() *Thread {
	id := int(rt.nextTID.Add(1)) - 1
	if id >= rt.cfg.MaxThreads {
		panic(fmt.Sprintf("core: more than MaxThreads=%d threads registered", rt.cfg.MaxThreads))
	}
	t := &Thread{
		id:    id,
		rt:    rt,
		cache: rt.mm.NewCache(id),
		kctx: kcas.NewCtx(rt.pool, rt.nodeDom, id, kcas.Slots{
			PairHPD: slotHPD, KHPD: slotKHPD, RDCSSHPD: slotRDCSSHPD,
			PairMirror1: slotMirror1, PairMirror2: slotMirror2,
			KMirrorBase: slotKMirrorBase,
		}),
		Rng: xrand.New(uint64(id)*0x9e3779b97f4a7c15 + 1),
		flt: rt.cfg.Fault,
		reg: rt.obs.Metrics(),
		trc: rt.obs.Tracer(),
	}
	t.kctx.SetFault(rt.cfg.Fault)
	t.kctx.SetObs(t.reg, t.trc)
	return t
}

// RegisteredThreads reports how many threads have registered.
func (rt *Runtime) RegisteredThreads() int { return int(rt.nextTID.Load()) }
