package core

import (
	"repro/internal/mcas"
	"repro/internal/word"
)

// MoveN atomically removes one element from src and inserts it into
// every target: the paper's §8 extension ("remove an item from one
// object and insert it into n others atomically"). All n+1 linearization
// CASes are unified by one N-word CAS.
//
// Failure handling generalizes the DCAS retry rules: when the N-word CAS
// reports a conflict at operation slot i, operations 0..i-1 keep their
// captured CAS arguments and only operations i..n re-run their
// init-phases (slot 0 being the remove, which restarts everything, like
// FIRSTFAILED).
//
// Targets must be pairwise distinct objects and distinct from the
// source. It returns the moved value and whether the move happened; on
// failure no object is changed.
func (t *Thread) MoveN(src Remover, dsts []Inserter, skey uint64, tkeys []uint64) (uint64, bool) {
	if t.desc != nil || t.mdesc != nil {
		panic("core: nested Move on one thread")
	}
	n := len(dsts)
	if n == 0 {
		panic("core: MoveN needs at least one target")
	}
	if n+1 > mcas.MaxEntries {
		panic("core: MoveN supports at most mcas.MaxEntries-1 targets")
	}
	if len(tkeys) != n {
		panic("core: MoveN needs one target key per target")
	}
	for i, d := range dsts {
		if SameObject(src, d) {
			panic("core: MoveN requires targets distinct from the source")
		}
		for j := 0; j < i; j++ {
			if SameObject(asRemover(dsts[j]), d) {
				panic("core: MoveN requires pairwise distinct targets")
			}
		}
	}

	d, ref := t.mctx.Alloc()
	t.mdesc, t.mref = d, ref
	t.mN = n
	t.mtargets = dsts
	t.mtkeys = tkeys
	t.mFailed = -1
	t.mAbort = false

	val, ok := src.Remove(t, skey)

	cur, curRef := t.mdesc, t.mref
	t.mdesc = nil
	t.mtargets = nil
	t.mtkeys = nil
	t.recycleMDesc(cur, curRef)
	return val, ok
}

func asRemover(i Inserter) Remover {
	if r, ok := i.(Remover); ok {
		return r
	}
	return nil
}

func (t *Thread) recycleMDesc(d *mcas.Desc, ref uint64) {
	switch {
	case d.Status() == 0: // never announced
		t.mctx.FreeDirect(d, ref)
	case t.batchActive: // flush recycle path (one snapshot per flush)
		t.mctx.RetireFlush(d, ref)
	default:
		t.mctx.Retire(d, ref)
	}
}

// moveNRemoveSCAS captures the remove's linearization CAS as entry 0 and
// starts the insert chain.
func (t *Thread) moveNRemoveSCAS(w *word.Word, old, new, element, hp uint64) FResult {
	if t.mAbort {
		return FAbort
	}
	e := &t.mdesc.Entries[0]
	e.Ptr, e.Old, e.New = w, old, new
	e.HP = word.NodeIndex(hp)
	return t.moveNChain(0, element)
}

// moveNInsertSCAS captures insert j's linearization CAS as entry j+1
// (the thread tracks which slot is being filled through the recursion
// depth implied by mReached).
func (t *Thread) moveNInsertSCAS(w *word.Word, old, new, hp uint64) FResult {
	if t.mAbort {
		return FAbort
	}
	j := t.mDepth // entry index this insert fills
	t.mReached[j] = true
	e := &t.mdesc.Entries[j]
	e.Ptr, e.Old, e.New = w, old, new
	e.HP = word.NodeIndex(hp)
	for k := 0; k < j; k++ {
		if t.mdesc.Entries[k].Ptr == w {
			panic("core: MoveN operations share a word; objects must be distinct")
		}
	}
	return t.moveNChain(j, t.mElement)
}

// moveNChain runs after entry j has been captured: if entries remain it
// invokes the next target's insert (whose scas will call back at depth
// j+1); once all entries are captured it executes the N-word CAS and
// translates the failure slot into the retry protocol.
func (t *Thread) moveNChain(j int, element uint64) FResult {
	if j == t.mN { // all n+1 entries captured: decide
		t.mdesc.N = t.mN + 1
		ok, failed := t.mctx.Execute(t.mdesc, t.mref)
		if ok {
			t.mFailed = -1
			return FTrue
		}
		// Conflict at entry `failed`: take a fresh descriptor carrying
		// the entries that stay valid (all slots < failed).
		nd, nref := t.mctx.Alloc()
		nd.N = 0
		for k := 0; k < failed; k++ {
			nd.Entries[k] = t.mdesc.Entries[k]
		}
		t.recycleMDesc(t.mdesc, t.mref)
		t.mdesc, t.mref = nd, nref
		t.mFailed = failed
		if failed == j {
			return FFalse // this operation's word conflicted: retry it
		}
		return FAbort // an earlier operation conflicted: unwind to it
	}

	// Invoke the next insert (entry j+1, target j).
	t.mDepth = j + 1
	t.mReached[j+1] = false
	t.mElement = element
	insOK := t.mtargets[j].Insert(t, t.mtkeys[j], element)
	t.mDepth = j

	if insOK {
		return FTrue
	}
	if t.mAbort {
		return FAbort
	}
	if !t.mReached[j+1] {
		// The deeper insert's init-phase failed outright (full,
		// duplicate key): the whole MoveN must abort.
		t.mAbort = true
		return FAbort
	}
	// The deeper insert aborted because of an MCAS conflict.
	switch {
	case t.mFailed == j:
		return FFalse // our word conflicted: retry this operation
	case t.mFailed > j:
		// The deeper operation retried after its conflict and then hit
		// an init-phase failure without reaching scas again (its
		// mReached flag is stale-true, like insfailed after M32).
		// Retrying this level re-enters the chain with fresh flags; a
		// persistent init failure then aborts cleanly.
		return FFalse
	default:
		return FAbort // an earlier operation conflicted: unwind further
	}
}
