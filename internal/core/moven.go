package core

import (
	"repro/internal/kcas"
	"repro/internal/word"
)

// This file implements the §8 composed chains: a step program of removes
// and inserts whose linearization CASes are captured one descriptor
// entry per step and decided together by one k-word CAS. MoveN (one
// remove feeding n inserts) and TransferN (k independent remove/insert
// pairs) are both front-ends over the same chain machinery.
//
// Failure handling generalizes the DCAS retry rules: when the k-word CAS
// reports a conflict at entry i, steps 0..i-1 keep their captured CAS
// arguments and only steps i.. re-run their init-phases (entry 0 being
// the first remove, which restarts everything, like FIRSTFAILED).

// MoveN atomically removes one element from src and inserts it into
// every target: the paper's §8 extension ("remove an item from one
// object and insert it into n others atomically"). All n+1 linearization
// CASes are unified by one N-word CAS.
//
// Targets must be pairwise distinct objects and distinct from the
// source. It returns the moved value and whether the move happened; on
// failure no object is changed.
func (t *Thread) MoveN(src Remover, dsts []Inserter, skey uint64, tkeys []uint64) (uint64, bool) {
	if t.desc != nil || t.mdesc != nil {
		panic("core: nested Move on one thread")
	}
	n := len(dsts)
	if n == 0 {
		panic("core: MoveN needs at least one target")
	}
	if n+1 > kcas.MaxEntries {
		panic("core: MoveN supports at most kcas.MaxEntries-1 targets")
	}
	if len(tkeys) != n {
		panic("core: MoveN needs one target key per target")
	}
	for i, d := range dsts {
		if SameObject(src, d) {
			panic("core: MoveN requires targets distinct from the source")
		}
		// Compare target identities directly. (An earlier version routed
		// dsts[j] through a Remover type assertion first, which yields nil
		// for insert-only targets — the comparison then never fired and an
		// aliased pair slipped through to a mid-chain shared-word panic.)
		for j := 0; j < i; j++ {
			if sameInserter(dsts[j], d) {
				panic("core: MoveN requires pairwise distinct targets")
			}
		}
	}

	t.mSteps = t.mSteps[:0]
	t.mSteps = append(t.mSteps, chainStep{rem: src, key: skey})
	for i, d := range dsts {
		t.mSteps = append(t.mSteps, chainStep{ins: d, key: tkeys[i]})
	}
	return t.runChain()
}

// TransferN atomically moves k elements from src to dst: element i is
// removed under skeys[i] and inserted under tkeys[i], with all 2k
// linearization CASes decided by one k-word CAS. No concurrent operation
// can observe a state where some of the elements have moved and others
// have not.
//
// src and dst must be distinct objects and the keys within each side
// pairwise distinct. The steps must also be word-independent: removing
// (or inserting) two keys whose linearization CASes land on the same
// word — e.g. two map keys in one bucket chain — cannot be composed
// (the captured CASes would depend on each other's effect), and the
// chain panics when it detects that. Callers with structural knowledge
// pre-validate; see hashmap.SameChain. out, when non-nil, receives the
// k removed values on success. TransferN fails (changing nothing) when
// any source key is absent or any target insert is refused.
func (t *Thread) TransferN(src Remover, dst Inserter, skeys, tkeys []uint64, out []uint64) bool {
	if t.desc != nil || t.mdesc != nil {
		panic("core: nested Move on one thread")
	}
	k := len(skeys)
	if k == 0 {
		panic("core: TransferN needs at least one key pair")
	}
	if 2*k > kcas.MaxEntries {
		panic("core: TransferN supports at most kcas.MaxEntries/2 key pairs")
	}
	if len(tkeys) != k {
		panic("core: TransferN needs one target key per source key")
	}
	if SameObject(src, dst) {
		panic("core: TransferN requires two distinct objects")
	}
	for i := 0; i < k; i++ {
		for j := 0; j < i; j++ {
			if skeys[j] == skeys[i] {
				panic("core: TransferN source keys must be pairwise distinct")
			}
			if tkeys[j] == tkeys[i] {
				panic("core: TransferN target keys must be pairwise distinct")
			}
		}
	}

	t.mSteps = t.mSteps[:0]
	for i := 0; i < k; i++ {
		t.mSteps = append(t.mSteps, chainStep{rem: src, key: skeys[i]})
		t.mSteps = append(t.mSteps, chainStep{ins: dst, key: tkeys[i]})
	}
	_, ok := t.runChain()
	if ok && out != nil {
		for i := 0; i < k; i++ {
			out[i] = t.mVals[2*i]
		}
	}
	return ok
}

// sameInserter reports whether two targets are the same object, without
// requiring them to be removable: object identity when both sides carry
// one, interface identity otherwise.
func sameInserter(a, b Inserter) bool {
	type ider interface{ ObjectID() uint64 }
	am, ok1 := a.(ider)
	bm, ok2 := b.(ider)
	if ok1 && ok2 {
		return am.ObjectID() == bm.ObjectID()
	}
	if ok1 != ok2 {
		return false
	}
	return a == b
}

// runChain drives the prepared step program (t.mSteps, starting with a
// remove) to completion and returns step 0's removed value. The chain
// runs inside step 0's Remove call: each step's scas captures its entry
// and invokes the next step, so the whole program sits on the stack
// until the deepest scas executes the k-word CAS.
func (t *Thread) runChain() (uint64, bool) {
	d, ref := t.kctx.AllocK()
	t.mdesc, t.mref = d, ref
	t.mFailed = -1
	t.mAbort = false
	t.mDepth = 0

	first := t.mSteps[0]
	val, ok := first.rem.Remove(t, first.key)

	cur, curRef := t.mdesc, t.mref
	t.mdesc = nil
	t.mSteps = t.mSteps[:0]
	t.ReleaseHolds()
	t.recycleMDesc(cur, curRef)
	return val, ok
}

func (t *Thread) recycleMDesc(d *kcas.Desc, ref uint64) {
	switch {
	case !d.Decided(): // never announced
		t.kctx.FreeDirect(d, ref)
	case t.batchActive: // flush recycle path (one snapshot per flush)
		t.kctx.RetireFlush(d, ref)
	default:
		t.kctx.Retire(d, ref)
	}
}

// moveNRemoveSCAS captures a remove's linearization CAS as the entry at
// the current chain depth and continues the chain. The removed element
// is recorded per entry (TransferN returns them all) and threaded to the
// following insert.
func (t *Thread) moveNRemoveSCAS(w *word.Word, old, new, element, hp uint64) FResult {
	if t.mAbort {
		return FAbort
	}
	j := t.mDepth
	t.mReached[j] = true
	e := &t.mdesc.Entries[j]
	e.Ptr, e.Old, e.New = w, old, new
	e.HP = word.NodeIndex(hp)
	for k := 0; k < j; k++ {
		if t.mdesc.Entries[k].Ptr == w {
			panic("core: composed operations share a word; steps must be independent")
		}
	}
	// Hold the node beyond this container call: a later step on the same
	// side reuses the container hazard slots this capture was made under.
	t.HoldNode(j, hp)
	t.mVals[j] = element
	t.mElement = element
	return t.moveNChain(j)
}

// moveNInsertSCAS captures an insert's linearization CAS as the entry at
// the current chain depth and continues the chain.
func (t *Thread) moveNInsertSCAS(w *word.Word, old, new, hp uint64) FResult {
	if t.mAbort {
		return FAbort
	}
	j := t.mDepth
	t.mReached[j] = true
	e := &t.mdesc.Entries[j]
	e.Ptr, e.Old, e.New = w, old, new
	e.HP = word.NodeIndex(hp)
	for k := 0; k < j; k++ {
		if t.mdesc.Entries[k].Ptr == w {
			panic("core: composed operations share a word; steps must be independent")
		}
	}
	t.HoldNode(j, hp)
	return t.moveNChain(j)
}

// moveNChain runs after entry j has been captured: if steps remain it
// invokes the next one (whose scas will call back at depth j+1); once
// every entry is captured it executes the k-word CAS and translates the
// failure slot into the retry protocol.
func (t *Thread) moveNChain(j int) FResult {
	if j == len(t.mSteps)-1 { // all entries captured: decide
		t.mdesc.N = len(t.mSteps)
		ok, failed := t.kctx.Execute(t.mdesc, t.mref)
		if ok {
			t.mFailed = -1
			return FTrue
		}
		// Conflict at entry `failed`: take a fresh descriptor carrying
		// the entries that stay valid (all slots < failed).
		nd, nref := t.kctx.AllocK()
		for k := 0; k < failed; k++ {
			nd.Entries[k] = t.mdesc.Entries[k]
		}
		t.recycleMDesc(t.mdesc, t.mref)
		t.mdesc, t.mref = nd, nref
		t.mFailed = failed
		if failed == j {
			return FFalse // this operation's word conflicted: retry it
		}
		return FAbort // an earlier operation conflicted: unwind to it
	}

	// Invoke the next step (entry j+1).
	next := t.mSteps[j+1]
	t.mDepth = j + 1
	t.mReached[j+1] = false
	var ok bool
	if next.rem != nil {
		_, ok = next.rem.Remove(t, next.key)
	} else {
		ok = next.ins.Insert(t, next.key, t.mElement)
	}
	t.mDepth = j

	if ok {
		return FTrue
	}
	if t.mAbort {
		return FAbort
	}
	if !t.mReached[j+1] {
		// The deeper step's init-phase failed outright (empty source,
		// full or duplicate-key target): the whole chain must abort.
		t.mAbort = true
		return FAbort
	}
	// The deeper step aborted because of a k-word CAS conflict.
	switch {
	case t.mFailed == j:
		return FFalse // our word conflicted: retry this operation
	case t.mFailed > j:
		// The deeper operation retried after its conflict and then hit
		// an init-phase failure without reaching scas again (its
		// mReached flag is stale-true, like insfailed after M32).
		// Retrying this level re-enters the chain with fresh flags; a
		// persistent init failure then aborts cleanly.
		return FFalse
	default:
		return FAbort // an earlier operation conflicted: unwind further
	}
}
