package core

import (
	"repro/internal/kcas"
	"repro/internal/word"
)

// FResult is the tri-state result of scas (the paper's fbool): in
// addition to true/false it can order the calling operation to abort,
// undoing its init-phase (Definition 2, change 2).
type FResult uint8

const (
	// FFalse: the linearization CAS failed; retry the operation's loop.
	FFalse FResult = iota
	// FTrue: the linearization CAS succeeded.
	FTrue
	// FAbort: the surrounding operation must abort: free anything its
	// init-phase allocated and return failure.
	FAbort
)

func (r FResult) String() string {
	switch r {
	case FFalse:
		return "false"
	case FTrue:
		return "true"
	case FAbort:
		return "ABORT"
	}
	return "?"
}

// Inserter is the insert half of a move-ready object (Definition 2).
// Objects without keys ignore the key argument. Insert returns false
// when the element cannot be inserted (capacity, duplicate key, or an
// aborted move).
type Inserter interface {
	Insert(t *Thread, key, val uint64) bool
}

// Remover is the remove half of a move-ready object. Objects without
// keys ignore the key argument. Remove returns the removed element.
type Remover interface {
	Remove(t *Thread, key uint64) (uint64, bool)
}

// MoveReady is implemented by every move-ready container in this
// repository.
type MoveReady interface {
	Inserter
	Remover
	// ObjectID returns a stable identity used for same-object rejection
	// and the blocking baseline's lock ordering.
	ObjectID() uint64
}

// SCASRemove is the scas variant called at the linearization point of
// remove operations (Algorithm 3, lines M9–M21). w/old/new are the CAS
// the operation would have performed; element is the value being
// removed (available before the linearization point, requirement 4);
// hp is the node reference whose memory contains w (0 for object
// anchors), carried to helpers via the descriptor (lines M14/D3).
func (t *Thread) SCASRemove(w *word.Word, old, new, element, hp uint64) FResult {
	if t.desc == nil && t.mdesc == nil { // M20: plain remove, kept inlinable
		if w.CAS(old, new) { // M21
			return FTrue
		}
		return FFalse
	}
	return t.scasRemoveSlow(w, old, new, element, hp)
}

func (t *Thread) scasRemoveSlow(w *word.Word, old, new, element, hp uint64) FResult {
	if t.mdesc != nil {
		return t.moveNRemoveSCAS(w, old, new, element, hp)
	}
	e := &t.desc.Entries[0]
	e.Ptr, e.Old, e.New = w, old, new           // M11–M13
	e.HP = word.NodeIndex(hp)                   // M14
	t.insfailed = true                          // M15
	ok := t.ltarget.Insert(t, t.ltkey, element) // M16
	if t.insfailed {                            // M17: the insert never reached its scas
		return FAbort // M18
	}
	if ok { // M19
		return FTrue
	}
	return FFalse
}

// SCASInsert is the scas variant called at the linearization point of
// insert operations (Algorithm 3, lines M22–M39).
func (t *Thread) SCASInsert(w *word.Word, old, new, hp uint64) FResult {
	if t.desc == nil && t.mdesc == nil { // M38: plain insert, kept inlinable
		if w.CAS(old, new) { // M39
			return FTrue
		}
		return FFalse
	}
	return t.scasInsertSlow(w, old, new, hp)
}

func (t *Thread) scasInsertSlow(w *word.Word, old, new, hp uint64) FResult {
	if t.mdesc != nil {
		return t.moveNInsertSCAS(w, old, new, hp)
	}
	d := t.desc
	e := &d.Entries[1]
	e.Ptr, e.Old, e.New = w, old, new // M24–M26
	e.HP = word.NodeIndex(hp)         // M27
	if d.Entries[0].Ptr == e.Ptr {
		panic("core: move source and target share a word; moves require distinct objects")
	}
	res := t.kctx.ExecutePair(d, t.descRef) // M28
	if res != kcas.Success {                // M29
		// M30: a helper may still reference the failed descriptor, so
		// take a fresh one carrying the stored remove-side arguments.
		nd, nref := t.kctx.AllocPair() // M31: res starts UNDECIDED
		nd.Entries[0] = d.Entries[0]
		t.recycleDesc(d, t.descRef)
		t.desc, t.descRef = nd, nref
	}
	t.insfailed = false // M32
	switch res {
	case kcas.FirstFailed: // M33: the remove's word changed — redo steps 1–2
		return FAbort // M34
	case kcas.SecondFailed: // M35: the insert's word changed — redo step 2
		return FFalse // M36
	}
	return FTrue // M37
}

// recycleDesc returns a descriptor to the pool by the route its history
// requires: announced descriptors (decided result) go through hazard
// retirement — or, inside a batch flush, through the flush recycle path
// that amortizes one hazard snapshot over the whole flush; unannounced
// ones are recycled directly.
func (t *Thread) recycleDesc(d *kcas.Desc, ref uint64) {
	switch {
	case !d.Decided():
		t.kctx.FreeDirect(d, ref)
	case t.batchActive:
		t.kctx.RetireFlush(d, ref)
	default:
		t.kctx.Retire(d, ref)
	}
}

// Move atomically moves one element from src to dst (Algorithm 3, lines
// M1–M8): the remove's and insert's linearization CASes are performed
// together by one DCAS, so no concurrent operation can observe the
// element in neither or both objects. skey selects the element for keyed
// sources (ignored by queues/stacks); tkey is the key it is inserted
// under for keyed targets.
//
// It returns the moved value and whether the move happened. A move fails
// when the source is empty / has no such key, or when the target cannot
// accept the element; both objects are then unchanged.
func (t *Thread) Move(src Remover, dst Inserter, skey, tkey uint64) (uint64, bool) {
	if SameObject(src, dst) {
		panic("core: Move requires two distinct objects")
	}
	return t.MoveUnchecked(src, dst, skey, tkey)
}

// MoveUnchecked is Move without the same-object validation: for callers
// that have already validated the pair — the batch pipeline checks at
// Add time and memoizes, so B commits over one pair pay for one check.
// Moving an object into itself through this entry point corrupts it.
func (t *Thread) MoveUnchecked(src Remover, dst Inserter, skey, tkey uint64) (uint64, bool) {
	if t.desc != nil || t.mdesc != nil {
		panic("core: nested Move on one thread")
	}
	d, ref := t.kctx.AllocPair() // M2–M3: fresh descriptor, res = UNDECIDED
	t.desc, t.descRef = d, ref
	t.ltarget, t.ltkey = dst, tkey // M4–M5
	val, ok := src.Remove(t, skey) // M6
	cur, curRef := t.desc, t.descRef
	t.desc = nil // M7
	t.ltarget = nil
	t.recycleDesc(cur, curRef)
	return val, ok // M8
}

// SameObject reports whether a and b are the same move-ready object
// (exported for callers that hoist Move's validation, like the batch
// pipeline).
func SameObject(a Remover, b Inserter) bool {
	am, ok1 := a.(MoveReady)
	bm, ok2 := b.(MoveReady)
	if ok1 && ok2 {
		return am.ObjectID() == bm.ObjectID()
	}
	return false
}
