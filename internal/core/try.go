package core

import "repro/internal/fault"

// Graceful degradation for resource exhaustion. The substrate's two
// fixed-capacity resources — the node arena and the descriptor pool —
// historically panic when exhausted, which is the right default for a
// library embedded in a batch process but crashes a served system.
//
// Both exhaustion panics are thrown from carve paths that run strictly
// inside an operation's init phase, before any linearization CAS or
// descriptor announcement publishes the operation: an unwinding
// exhaustion panic can leave only thread-local state behind (an
// allocated-but-unannounced descriptor, container hazard protections,
// chain capture buffers). One exception looks like it violates this —
// the fresh-descriptor allocation after a failed ExecutePair/Execute
// (scas lines M30–M31 and the chain's conflict path) runs while the
// thread still holds its previous, announced descriptor — but that
// descriptor is decided by then, so recycleDesc/recycleMDesc dispatch
// it down the hazard-retirement route exactly as the non-panicking path
// would. Try therefore recovers the typed error, resets the
// thread-local move state, and hands the caller a clean error; every
// shared structure is untouched or already completed.

// Try runs op and converts a resource-exhaustion panic
// (*fault.ResourceError, thrown by the arena and descriptor-pool carve
// paths) into an error matching fault.ErrResourceExhausted, after
// resetting this thread's move state so the thread remains usable. Any
// other panic propagates unchanged. The failed operation did not
// execute: exhaustion unwinds from init-phase code, so no concurrent
// operation can have observed any effect, and the caller may retry
// (ideally after backoff, or after raising ArenaCapacity/DescCapacity).
func (t *Thread) Try(op func()) (err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		re := fault.AsResourceError(r)
		if re == nil {
			panic(r)
		}
		t.resetAfterExhaustion()
		err = re
	}()
	op()
	return nil
}

// resetAfterExhaustion clears every piece of thread-local operation
// state an exhaustion panic can strand, in dependency order: leave any
// batch flush first (restoring hazard-clear semantics), recycle the
// stranded descriptors by their decided/undecided route, then drop the
// chain buffers and hazard protections.
func (t *Thread) resetAfterExhaustion() {
	// A panic inside internal/batch.Flush already runs AbortBatchFlush
	// via its defer; this covers callers that bracketed the flush
	// themselves. No-op when no flush is active.
	t.AbortBatchFlush()

	if t.desc != nil {
		d, ref := t.desc, t.descRef
		t.desc = nil
		t.ltarget = nil
		t.insfailed = false
		t.recycleDesc(d, ref)
	}
	if t.mdesc != nil {
		d, ref := t.mdesc, t.mref
		t.mdesc = nil
		t.recycleMDesc(d, ref)
	}
	t.mSteps = t.mSteps[:0]
	t.mAbort = false
	t.mFailed = -1
	t.mDepth = 0

	t.ReleaseHolds()
	t.ClearHazards()
}

// TryMove is Move with exhaustion reported as an error instead of a
// panic. On error (matching fault.ErrResourceExhausted) neither object
// changed and the thread is reusable.
func (t *Thread) TryMove(src Remover, dst Inserter, skey, tkey uint64) (val uint64, ok bool, err error) {
	err = t.Try(func() { val, ok = t.Move(src, dst, skey, tkey) })
	return val, ok, err
}

// TryMoveN is MoveN with exhaustion reported as an error.
func (t *Thread) TryMoveN(src Remover, dsts []Inserter, skey uint64, tkeys []uint64) (val uint64, ok bool, err error) {
	err = t.Try(func() { val, ok = t.MoveN(src, dsts, skey, tkeys) })
	return val, ok, err
}

// TryTransferN is TransferN with exhaustion reported as an error.
func (t *Thread) TryTransferN(src Remover, dst Inserter, skeys, tkeys []uint64, out []uint64) (ok bool, err error) {
	err = t.Try(func() { ok = t.TransferN(src, dst, skeys, tkeys, out) })
	return ok, err
}
