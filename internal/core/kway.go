package core

import (
	"repro/internal/kcas"
	"repro/internal/word"
)

// Raw k-word CAS access and the descriptor-lifecycle-sharing drain.
// ExecuteKCAS is the building block containers use for compositions
// whose CAS arguments they can compute up front (tstack.SwapHeads);
// DrainN amortizes descriptor and hazard bookkeeping over a run of
// individually-linearizable moves.

// MaxKCASEntries is the widest composition the engine supports (the
// descriptor's inline entry capacity).
const MaxKCASEntries = kcas.MaxEntries

// KCASEntry is one word of a raw k-word CAS: replace *W == Old with New.
// HP, when non-zero, is a node reference whose memory contains W; it is
// carried to helpers via the descriptor so they can mirror the caller's
// protection.
type KCASEntry struct {
	W        *word.Word
	Old, New uint64
	HP       uint64
}

// ExecuteKCAS atomically applies every entry's CAS, or none: all words
// must hold their Old values for the operation to succeed. Entries must
// target pairwise distinct words (1..kcas.MaxEntries of them) that the
// caller has protected for the duration of the call. On failure it
// reports the index of an entry whose word did not match.
//
// This is the raw engine entry point: it performs no container
// init-phases, so the caller owns the retry loop. It must not run
// inside a Move/MoveN (the thread's descriptor state is in use).
func (t *Thread) ExecuteKCAS(entries []KCASEntry) (bool, int) {
	if t.MoveInFlight() {
		panic("core: ExecuteKCAS inside a move")
	}
	if len(entries) == 0 {
		panic("core: ExecuteKCAS needs at least one entry")
	}
	if len(entries) > kcas.MaxEntries {
		panic("core: ExecuteKCAS supports at most kcas.MaxEntries entries")
	}
	d, ref := t.kctx.AllocK()
	d.N = len(entries)
	for i, e := range entries {
		d.Entries[i] = kcas.Entry{Ptr: e.W, Old: e.Old, New: e.New, HP: word.NodeIndex(e.HP)}
	}
	ok, failed := t.kctx.Execute(d, ref)
	t.recycleMDesc(d, ref)
	return ok, failed
}

// DrainN moves up to n elements from src to dst under one descriptor
// lifecycle: the moves share a batch flush, so hazard publication is
// amortized and the descriptors they consume are recycled by one hazard
// snapshot at the end instead of one retire cycle each. Each move
// remains its own individually-linearizable operation — DrainN is a
// pipeline, not a transaction; it stops at the first failed move (empty
// source or refusing target).
//
// skey/tkey are passed to every move (keyed targets that need distinct
// keys should drain through MoveBatch instead). out, when non-nil,
// receives the moved values. It returns how many elements moved.
func (t *Thread) DrainN(src Remover, dst Inserter, skey, tkey uint64, n int, out []uint64) int {
	if SameObject(src, dst) {
		panic("core: DrainN requires two distinct objects")
	}
	if n <= 0 {
		return 0
	}
	nested := t.batchActive
	if !nested {
		t.BeginBatchFlush()
	}
	moved := 0
	for moved < n {
		val, ok := t.MoveUnchecked(src, dst, skey, tkey)
		if !ok {
			break
		}
		if out != nil {
			out[moved] = val
		}
		moved++
	}
	if !nested {
		t.EndBatchFlush()
	}
	return moved
}
