package core

import (
	"repro/internal/adapt"
	"repro/internal/arena"
	"repro/internal/backoff"
	"repro/internal/fault"
	"repro/internal/kcas"
	"repro/internal/mm"
	"repro/internal/obs"
	"repro/internal/word"
	"repro/internal/xrand"
)

// Thread is the per-goroutine execution context. It carries the paper's
// thread-local variables from Algorithm 3 (desc, ltarget, ltkey,
// insfailed), the thread's hazard-pointer slots, its memory-manager
// cache and its descriptor context.
//
// A Thread must be used by exactly one goroutine at a time.
type Thread struct {
	id    int
	rt    *Runtime
	cache *mm.Cache
	kctx  *kcas.Ctx

	// Algorithm 3 thread-local variables for the two-object move.
	desc      *kcas.Desc
	descRef   uint64
	ltarget   Inserter
	ltkey     uint64
	insfailed bool

	// Chain state for the §8 k-word compositions (MoveN, TransferN): a
	// step program of removes and inserts whose linearization CASes are
	// captured one entry per step and decided by one k-word CAS.
	mdesc    *kcas.Desc
	mref     uint64
	mSteps   []chainStep // reused buffer; len = entry count
	mVals    [kcas.MaxEntries]uint64
	mReached [kcas.MaxEntries]bool
	mFailed  int
	mAbort   bool
	mDepth   int    // entry index the active step fills
	mElement uint64 // element threaded through the chain

	// Rng is this thread's private random source, seeded from the
	// thread id at registration. The elimination layer draws slot
	// choices from it; workloads may reseed or replace it.
	Rng *xrand.State

	// seq is a private per-thread counter (see Seq).
	seq uint64

	// batchActive marks a batch flush in progress (see batch.go): hazard
	// clears and node retirement are deferred and descriptor retirement
	// routes through the flush recycle path. batchDirty tracks which
	// container hazard slots were published during the flush (so
	// EndBatchFlush clears only those); batchNodes parks nodes retired
	// during the flush until the hazard slots are cleared.
	batchActive bool
	batchDirty  uint32
	batchNodes  []uint64

	bo        *backoff.Exp
	boEnabled bool

	// flt mirrors Config.Fault for the injection points that live above
	// the kcas engine (batch gap, map migration). Nil in production.
	flt fault.Injector

	// reg/trc mirror the runtime's telemetry surfaces (Config.Obs).
	// Nil when disabled; every hook is then one nil check.
	reg *obs.Registry
	trc *obs.Tracer
}

// chainStep is one operation of a composed chain: exactly one of rem or
// ins is set. key is the operation's container key (ignored by unkeyed
// containers).
type chainStep struct {
	rem Remover
	ins Inserter
	key uint64
}

// ID returns the registered thread id (0-based).
func (t *Thread) ID() int { return t.id }

// Runtime returns the owning runtime.
func (t *Thread) Runtime() *Runtime { return t.rt }

// --- memory management ---------------------------------------------------

// AllocNode returns a fresh node reference with zeroed fields.
func (t *Thread) AllocNode() uint64 { return t.cache.Alloc() }

// Node dereferences a node reference.
func (t *Thread) Node(ref uint64) *arena.Node { return t.rt.arena.Node(ref) }

// RetireNode hands back a node that was unlinked from a shared
// structure; it is recycled once no hazard pointer covers it. Inside a
// batch flush whose retire list is close to a hazard scan, the
// hand-off is deferred to EndBatchFlush: retiring after the flush's
// deferred hazard clears keeps the scan from tripping over the flush's
// own stale protections (which would park those nodes for another full
// cycle). With ample headroom the direct hand-off is cheaper.
func (t *Thread) RetireNode(ref uint64) {
	if t.batchActive && t.cache.ScanHeadroom() < batchScanGuard {
		t.batchNodes = append(t.batchNodes, ref)
		return
	}
	t.cache.Retire(ref)
}

// FreeNodeDirect recycles a node that was never published (aborted
// inserts: lines Q15–Q17, S8–S10).
func (t *Thread) FreeNodeDirect(ref uint64) { t.cache.FreeDirect(ref) }

// FlushMemory drains this thread's retire lists (thread shutdown).
func (t *Thread) FlushMemory() {
	t.cache.Flush()
	t.kctx.Flush()
}

// --- hazard pointers -------------------------------------------------------

// ProtectNode publishes the node referenced by ref in the given slot
// (SlotIns0..SlotRemAux). Passing ref 0 clears the slot — deferred
// inside a batch flush (protection is conservative; EndBatchFlush
// clears once for the whole flush).
func (t *Thread) ProtectNode(slot int, ref uint64) {
	if t.batchActive {
		if ref == 0 {
			return
		}
		t.batchDirty |= 1 << uint(slot)
	}
	t.rt.nodeDom.Protect(t.id, slot, word.NodeIndex(ref))
}

// ClearNode clears a hazard slot (deferred inside a batch flush).
func (t *Thread) ClearNode(slot int) {
	if t.batchActive {
		return
	}
	t.rt.nodeDom.Clear(t.id, slot)
}

// ClearHazards clears every node hazard slot this thread owns; container
// operations call it on return so stale protections don't delay reuse
// (deferred inside a batch flush).
func (t *Thread) ClearHazards() {
	if t.batchActive {
		return
	}
	t.rt.nodeDom.ClearAll(t.id)
}

// HoldNode publishes the node referenced by ref in the i-th chain hold
// slot (0 <= i < kcas.MaxEntries). The hold slots carry initiator-side
// per-entry protections across a composed chain: container operations
// reuse their fixed Ins/Rem slots, so without a hold the node captured
// at entry j would lose its protection as soon as a later same-side
// step overwrites those slots — while its word is still the target of
// the pending k-word CAS. Holds bypass the batch-flush deferral: they
// have their own release point (ReleaseHolds), not the flush's.
func (t *Thread) HoldNode(i int, ref uint64) {
	t.rt.nodeDom.Protect(t.id, slotChainHoldBase+i, word.NodeIndex(ref))
}

// ReleaseHolds clears every chain hold slot; composed operations call
// it once when their chain completes (either way), also bypassing the
// batch-flush deferral.
func (t *Thread) ReleaseHolds() {
	for i := 0; i < kcas.MaxEntries; i++ {
		t.rt.nodeDom.Clear(t.id, slotChainHoldBase+i)
	}
}

// --- shared-word access ----------------------------------------------------

// Read is the read operation of Algorithm 4 (lines D32–D39) extended to
// dispatch on descriptor kind: it helps any pair, k-word or RDCSS
// descriptor announced in w and returns a plain value. The common
// no-descriptor case stays small enough for the inliner; helping is the
// slow path.
func (t *Thread) Read(w *word.Word) uint64 {
	v := w.Load()
	if v&1 == 0 { // word.IsDesc spelled out to stay under the inline budget
		return v
	}
	return t.kctx.Read(w)
}

// CAS performs a plain CAS on a shared word (used for non-linearization
// CASes such as the queue's tail swing, lines Q12/Q19/Q31).
func (t *Thread) CAS(w *word.Word, old, new uint64) bool { return w.CAS(old, new) }

// --- backoff ----------------------------------------------------------------

// EnableBackoff turns on the §6 exponential backoff for this thread's
// operations; containers consult it on every failed retry.
func (t *Thread) EnableBackoff(start, max uint32) {
	t.bo = backoff.New(start, max)
	t.boEnabled = true
}

// DisableBackoff turns backoff off.
func (t *Thread) DisableBackoff() { t.boEnabled = false }

// BackoffWait waits (and doubles) if backoff is enabled; containers call
// it after a conflict.
func (t *Thread) BackoffWait() {
	if t.boEnabled {
		t.bo.Wait()
	}
}

// BackoffReset resets the wait time after a successful operation.
func (t *Thread) BackoffReset() {
	if t.boEnabled {
		t.bo.Reset()
	}
}

// Backoff returns this thread's backoff policy, or nil when disabled.
// The blocking baseline uses it for lock acquisition (§6).
func (t *Thread) Backoff() *backoff.Exp {
	if t.boEnabled {
		return t.bo
	}
	return nil
}

// Fault triggers injection point p if the runtime was configured with
// an injector (Config.Fault); composed pipelines above the kcas engine
// (internal/batch, internal/hashmap) call it at their own critical
// windows. The calling goroutine may be stalled, parked, or terminated
// here.
func (t *Thread) Fault(p fault.Point) {
	if t.trc != nil {
		// The layers above kcas trace through the same named points they
		// inject at; recording before firing means a thread parked or
		// killed at the point has already left its event.
		switch p {
		case fault.BatchPrepareCommit:
			t.trc.Record(t.id, obs.EvBatchFlush, -1, 0)
		case fault.MapMidMigration:
			t.trc.Record(t.id, obs.EvMapMigrate, -1, 0)
		}
	}
	if t.flt != nil {
		t.flt.Fire(p, t.id)
	}
}

// MoveInFlight reports whether this thread is currently inside a move
// (desc ≠ 0 in the paper's terms); containers use it in assertions and
// tests observe it.
func (t *Thread) MoveInFlight() bool { return t.desc != nil || t.mdesc != nil }

// AdaptTick is the adaptive subsystem's hook in the operation path:
// containers call it once per operation with their controller (nil is
// a no-op, so the call can sit unconditionally on the hot path). A
// true return means this thread crossed the controller's epoch
// boundary and won the sampling gate — the container must now gather
// its signal counters and feed them to the controller's Apply.
func (t *Thread) AdaptTick(c *adapt.Controller) bool {
	if c == nil {
		return false
	}
	return c.Tick(t.id)
}

// Seq returns a thread-local counter that increments on every call;
// containers use it to build unique sub-keys (e.g. the priority queue's
// uniquifier).
func (t *Thread) Seq() uint64 {
	t.seq++
	return t.seq
}
