package core

import (
	"repro/internal/adapt"
	"repro/internal/arena"
	"repro/internal/backoff"
	"repro/internal/dcas"
	"repro/internal/mcas"
	"repro/internal/mm"
	"repro/internal/word"
	"repro/internal/xrand"
)

// Thread is the per-goroutine execution context. It carries the paper's
// thread-local variables from Algorithm 3 (desc, ltarget, ltkey,
// insfailed), the thread's hazard-pointer slots, its memory-manager
// cache and its descriptor contexts.
//
// A Thread must be used by exactly one goroutine at a time.
type Thread struct {
	id    int
	rt    *Runtime
	cache *mm.Cache
	dctx  *dcas.Ctx
	mctx  *mcas.Ctx

	// Algorithm 3 thread-local variables for the two-object move.
	desc      *dcas.Desc
	descRef   uint64
	ltarget   Inserter
	ltkey     uint64
	insfailed bool

	// MoveN state (§8 extension).
	mdesc    *mcas.Desc
	mref     uint64
	mN       int // number of entries = targets + 1
	mtargets []Inserter
	mtkeys   []uint64
	mReached [mcas.MaxEntries]bool
	mFailed  int
	mAbort   bool
	mDepth   int    // entry index the active insert fills
	mElement uint64 // element threaded through the insert chain

	// Rng is this thread's private random source, seeded from the
	// thread id at registration. The elimination layer draws slot
	// choices from it; workloads may reseed or replace it.
	Rng *xrand.State

	// seq is a private per-thread counter (see Seq).
	seq uint64

	// batchActive marks a batch flush in progress (see batch.go): hazard
	// clears and node retirement are deferred and descriptor retirement
	// routes through the flush recycle path. batchDirty tracks which
	// container hazard slots were published during the flush (so
	// EndBatchFlush clears only those); batchNodes parks nodes retired
	// during the flush until the hazard slots are cleared.
	batchActive bool
	batchDirty  uint32
	batchNodes  []uint64

	bo        *backoff.Exp
	boEnabled bool
}

func init() {
	// The MoveN scas chain stores which entry reached its linearization
	// attempt in a fixed array; keep the bound in sync with mcas.
	_ = [mcas.MaxEntries]bool{}
}

// ID returns the registered thread id (0-based).
func (t *Thread) ID() int { return t.id }

// Runtime returns the owning runtime.
func (t *Thread) Runtime() *Runtime { return t.rt }

// --- memory management ---------------------------------------------------

// AllocNode returns a fresh node reference with zeroed fields.
func (t *Thread) AllocNode() uint64 { return t.cache.Alloc() }

// Node dereferences a node reference.
func (t *Thread) Node(ref uint64) *arena.Node { return t.rt.arena.Node(ref) }

// RetireNode hands back a node that was unlinked from a shared
// structure; it is recycled once no hazard pointer covers it. Inside a
// batch flush whose retire list is close to a hazard scan, the
// hand-off is deferred to EndBatchFlush: retiring after the flush's
// deferred hazard clears keeps the scan from tripping over the flush's
// own stale protections (which would park those nodes for another full
// cycle). With ample headroom the direct hand-off is cheaper.
func (t *Thread) RetireNode(ref uint64) {
	if t.batchActive && t.cache.ScanHeadroom() < batchScanGuard {
		t.batchNodes = append(t.batchNodes, ref)
		return
	}
	t.cache.Retire(ref)
}

// FreeNodeDirect recycles a node that was never published (aborted
// inserts: lines Q15–Q17, S8–S10).
func (t *Thread) FreeNodeDirect(ref uint64) { t.cache.FreeDirect(ref) }

// FlushMemory drains this thread's retire lists (thread shutdown).
func (t *Thread) FlushMemory() {
	t.cache.Flush()
	t.dctx.Flush()
	t.mctx.Flush()
}

// --- hazard pointers -------------------------------------------------------

// ProtectNode publishes the node referenced by ref in the given slot
// (SlotIns0..SlotRemAux). Passing ref 0 clears the slot — deferred
// inside a batch flush (protection is conservative; EndBatchFlush
// clears once for the whole flush).
func (t *Thread) ProtectNode(slot int, ref uint64) {
	if t.batchActive {
		if ref == 0 {
			return
		}
		t.batchDirty |= 1 << uint(slot)
	}
	t.rt.nodeDom.Protect(t.id, slot, word.NodeIndex(ref))
}

// ClearNode clears a hazard slot (deferred inside a batch flush).
func (t *Thread) ClearNode(slot int) {
	if t.batchActive {
		return
	}
	t.rt.nodeDom.Clear(t.id, slot)
}

// ClearHazards clears every node hazard slot this thread owns; container
// operations call it on return so stale protections don't delay reuse
// (deferred inside a batch flush).
func (t *Thread) ClearHazards() {
	if t.batchActive {
		return
	}
	t.rt.nodeDom.ClearAll(t.id)
}

// --- shared-word access ----------------------------------------------------

// Read is the read operation of Algorithm 4 (lines D32–D39) extended to
// dispatch on descriptor kind: it helps any DCAS, MCAS or RDCSS
// announced in w and returns a plain value. The common no-descriptor
// case stays small enough for the inliner; helping is the slow path.
func (t *Thread) Read(w *word.Word) uint64 {
	v := w.Load()
	if v&1 == 0 { // word.IsDesc spelled out to stay under the inline budget
		return v
	}
	return t.readSlow(w, v)
}

func (t *Thread) readSlow(w *word.Word, v uint64) uint64 {
	for word.IsDesc(v) {
		switch word.DescKind(v) {
		case word.KindDCAS:
			t.dctx.HelpRef(w, v)
		case word.KindMCAS:
			t.mctx.HelpRef(w, v)
		case word.KindRDCSS:
			t.mctx.CompleteRDCSS(w, v)
		}
		v = w.Load()
	}
	return v
}

// CAS performs a plain CAS on a shared word (used for non-linearization
// CASes such as the queue's tail swing, lines Q12/Q19/Q31).
func (t *Thread) CAS(w *word.Word, old, new uint64) bool { return w.CAS(old, new) }

// --- backoff ----------------------------------------------------------------

// EnableBackoff turns on the §6 exponential backoff for this thread's
// operations; containers consult it on every failed retry.
func (t *Thread) EnableBackoff(start, max uint32) {
	t.bo = backoff.New(start, max)
	t.boEnabled = true
}

// DisableBackoff turns backoff off.
func (t *Thread) DisableBackoff() { t.boEnabled = false }

// BackoffWait waits (and doubles) if backoff is enabled; containers call
// it after a conflict.
func (t *Thread) BackoffWait() {
	if t.boEnabled {
		t.bo.Wait()
	}
}

// BackoffReset resets the wait time after a successful operation.
func (t *Thread) BackoffReset() {
	if t.boEnabled {
		t.bo.Reset()
	}
}

// Backoff returns this thread's backoff policy, or nil when disabled.
// The blocking baseline uses it for lock acquisition (§6).
func (t *Thread) Backoff() *backoff.Exp {
	if t.boEnabled {
		return t.bo
	}
	return nil
}

// MoveInFlight reports whether this thread is currently inside a move
// (desc ≠ 0 in the paper's terms); containers use it in assertions and
// tests observe it.
func (t *Thread) MoveInFlight() bool { return t.desc != nil || t.mdesc != nil }

// AdaptTick is the adaptive subsystem's hook in the operation path:
// containers call it once per operation with their controller (nil is
// a no-op, so the call can sit unconditionally on the hot path). A
// true return means this thread crossed the controller's epoch
// boundary and won the sampling gate — the container must now gather
// its signal counters and feed them to the controller's Apply.
func (t *Thread) AdaptTick(c *adapt.Controller) bool {
	if c == nil {
		return false
	}
	return c.Tick(t.id)
}

// Seq returns a thread-local counter that increments on every call;
// containers use it to build unique sub-keys (e.g. the priority queue's
// uniquifier).
func (t *Thread) Seq() uint64 {
	t.seq++
	return t.seq
}
