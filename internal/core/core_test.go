package core

import (
	"sync"
	"testing"

	"repro/internal/word"
)

func newRT(threads int) *Runtime {
	return NewRuntime(Config{MaxThreads: threads, ArenaCapacity: 1 << 16, DescCapacity: 1 << 12})
}

func TestRegisterThreadLimits(t *testing.T) {
	rt := newRT(2)
	a := rt.RegisterThread()
	b := rt.RegisterThread()
	if a.ID() == b.ID() {
		t.Fatal("thread ids must be distinct")
	}
	if rt.RegisteredThreads() != 2 {
		t.Fatalf("RegisteredThreads=%d", rt.RegisteredThreads())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic past MaxThreads")
		}
	}()
	rt.RegisterThread()
}

func TestDefaultsApplied(t *testing.T) {
	rt := NewRuntime(Config{})
	if rt.MaxThreads() != 64 {
		t.Fatalf("default MaxThreads=%d", rt.MaxThreads())
	}
	if rt.Arena() == nil || rt.Manager() == nil || rt.KCASPool() == nil {
		t.Fatal("substrate not built")
	}
}

func TestMaxThreadsEncodableLimit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unencodable MaxThreads")
		}
	}()
	NewRuntime(Config{MaxThreads: word.MaxThreads + 1})
}

func TestSCASPlainModeIsCAS(t *testing.T) {
	rt := newRT(1)
	th := rt.RegisterThread()
	var w word.Word
	w.Store(10)
	if th.SCASRemove(&w, 10, 20, 99, 0) != FTrue {
		t.Fatal("plain SCASRemove must behave as CAS (success)")
	}
	if w.Load() != 20 {
		t.Fatal("value not swapped")
	}
	if th.SCASRemove(&w, 10, 30, 99, 0) != FFalse {
		t.Fatal("plain SCASRemove must behave as CAS (failure)")
	}
	if th.SCASInsert(&w, 20, 30, 0) != FTrue {
		t.Fatal("plain SCASInsert must behave as CAS (success)")
	}
	if th.SCASInsert(&w, 20, 40, 0) != FFalse {
		t.Fatal("plain SCASInsert must behave as CAS (failure)")
	}
	if w.Load() != 30 {
		t.Fatalf("final value %d", w.Load())
	}
}

func TestNodeAllocationLifecycle(t *testing.T) {
	rt := newRT(1)
	th := rt.RegisterThread()
	ref := th.AllocNode()
	n := th.Node(ref)
	if n.Val != 0 || n.Next.Load() != 0 {
		t.Fatal("fresh node not zeroed")
	}
	n.Val = 7
	th.FreeNodeDirect(ref)
	ref2 := th.AllocNode()
	if th.Node(ref2).Val != 0 {
		t.Fatal("recycled node not reset")
	}
	th.RetireNode(ref2)
	th.FlushMemory()
}

func TestHazardSlotHelpers(t *testing.T) {
	rt := newRT(1)
	th := rt.RegisterThread()
	ref := th.AllocNode()
	th.ProtectNode(SlotIns0, ref)
	if got := rt.nodeDom.Get(th.ID(), SlotIns0); got != word.NodeIndex(ref) {
		t.Fatalf("slot holds %d", got)
	}
	th.ClearNode(SlotIns0)
	if rt.nodeDom.Get(th.ID(), SlotIns0) != 0 {
		t.Fatal("slot not cleared")
	}
	th.ProtectNode(SlotRem0, ref)
	th.ProtectNode(SlotRem1, ref)
	th.ClearHazards()
	for s := 0; s < nodeSlotsPerThread; s++ {
		if rt.nodeDom.Get(th.ID(), s) != 0 {
			t.Fatalf("slot %d survived ClearHazards", s)
		}
	}
}

func TestReadPlainValueAndFResultStrings(t *testing.T) {
	rt := newRT(1)
	th := rt.RegisterThread()
	var w word.Word
	w.Store(word.MakeNode(42, 0))
	if th.Read(&w) != word.MakeNode(42, 0) {
		t.Fatal("Read of plain value")
	}
	if FTrue.String() != "true" || FFalse.String() != "false" || FAbort.String() != "ABORT" {
		t.Fatal("FResult strings")
	}
}

func TestBackoffToggles(t *testing.T) {
	rt := newRT(1)
	th := rt.RegisterThread()
	if th.Backoff() != nil {
		t.Fatal("backoff must default to disabled")
	}
	th.BackoffWait()  // no-op
	th.BackoffReset() // no-op
	th.EnableBackoff(4, 16)
	if th.Backoff() == nil {
		t.Fatal("backoff not enabled")
	}
	th.BackoffWait()
	if th.Backoff().Current() == 0 {
		t.Fatal("wait did not advance")
	}
	th.BackoffReset()
	if th.Backoff().Current() != 0 {
		t.Fatal("reset did not clear")
	}
	th.DisableBackoff()
	if th.Backoff() != nil {
		t.Fatal("disable failed")
	}
}

func TestObjectIDsMonotone(t *testing.T) {
	rt := newRT(1)
	a := rt.NextObjectID()
	b := rt.NextObjectID()
	if b <= a {
		t.Fatal("object ids must increase")
	}
}

func TestMoveInFlightFlag(t *testing.T) {
	rt := newRT(1)
	th := rt.RegisterThread()
	if th.MoveInFlight() {
		t.Fatal("no move should be in flight")
	}
}

// TestConcurrentRegistration: thread registration is safe from multiple
// goroutines.
func TestConcurrentRegistration(t *testing.T) {
	rt := newRT(32)
	var wg sync.WaitGroup
	ids := make(chan int, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ids <- rt.RegisterThread().ID()
		}()
	}
	wg.Wait()
	close(ids)
	seen := map[int]bool{}
	for id := range ids {
		if seen[id] {
			t.Fatalf("id %d handed out twice", id)
		}
		seen[id] = true
	}
}
