package core

import "math/bits"

// Batch-flush support: the thread-local hooks behind internal/batch's
// MoveBuffer. A flush brackets a run of back-to-back moves on one thread
// and amortizes their fixed per-move costs:
//
//   - hazard publication: container operations normally clear their
//     hazard slots on return; inside a flush those clears are deferred
//     (the next move overwrites the slots it needs anyway) and the
//     container slots are cleared once in EndBatchFlush. Protections
//     are conservative, so deferring a clear only delays reclamation of
//     a few nodes until the flush ends — it can never unprotect early.
//   - descriptor recycling: announced descriptors retired inside the
//     flush are parked and recycled by one shared hazard snapshot in
//     EndBatchFlush (kcas.Ctx.EndFlush) instead of one retire cycle
//     per move; sequence-stamped references keep the early reuse
//     ABA-safe.
//
// A flush is NOT a transaction: every move inside it remains its own
// individually-linearizable operation. The brackets change only where
// bookkeeping happens, never where an operation linearizes.

// RemovePreparer is optionally implemented by move-ready sources that
// can cheaply locate a removable element before a move commits.
// PrepareRemove reports whether an element matching key was observable
// at some instant during the call (false: the source was observed
// empty / without the key). It must not publish protections the caller
// is expected to hold and must be safe outside any move. The answer is
// a snapshot: a concurrent operation may change the source immediately
// after.
type RemovePreparer interface {
	PrepareRemove(t *Thread, key uint64) bool
}

// InsertPreparer is the target-side twin: PrepareInsert reports whether
// the target could accept an insert under key at some instant during
// the call (false: e.g. the key was observed occupied), and may perform
// cheap helping that clears the insert path (such as swinging a lagging
// queue tail).
type InsertPreparer interface {
	PrepareInsert(t *Thread, key uint64) bool
}

// BeginBatchFlush enters batch-flush mode: hazard clears are deferred
// and retired descriptors are parked for EndBatchFlush's shared recycle
// pass. It must be paired with EndBatchFlush on the same thread and
// must not be nested or started inside a move.
func (t *Thread) BeginBatchFlush() {
	if t.batchActive {
		panic("core: nested batch flush")
	}
	if t.MoveInFlight() {
		panic("core: batch flush started inside a move")
	}
	t.batchActive = true
}

// EndBatchFlush leaves batch-flush mode: the container hazard slots are
// cleared once for the whole flush and the flush's descriptors are
// recycled under one hazard snapshot.
func (t *Thread) EndBatchFlush() {
	if !t.batchActive {
		panic("core: EndBatchFlush without BeginBatchFlush")
	}
	if t.MoveInFlight() {
		panic("core: EndBatchFlush inside a move")
	}
	t.finishBatchFlush()
}

// AbortBatchFlush releases batch-flush mode while a panic unwinds
// through a flush. Unlike EndBatchFlush it tolerates a move the panic
// left in flight: the priority is that the thread not keep hazard
// clears disabled forever (a silent, unbounded reclamation stall) —
// the parked nodes and descriptors are released exactly as a normal
// flush end would. A no-op outside a flush.
func (t *Thread) AbortBatchFlush() {
	if !t.batchActive {
		return
	}
	t.finishBatchFlush()
}

// finishBatchFlush is the shared tail of EndBatchFlush/AbortBatchFlush.
func (t *Thread) finishBatchFlush() {
	t.batchActive = false
	// Clear the container slots the flush actually published (the
	// helping mirror slots are published and cleared by the helping
	// paths themselves, which bypass the deferral)...
	for dirty := t.batchDirty; dirty != 0; dirty &= dirty - 1 {
		t.rt.nodeDom.Clear(t.id, bits.TrailingZeros32(dirty))
	}
	t.batchDirty = 0
	// ...then hand the flush's unlinked nodes to the reclaimer: with the
	// stale protections gone, its scans see them unprotected right away.
	for _, ref := range t.batchNodes {
		t.cache.Retire(ref)
	}
	t.batchNodes = t.batchNodes[:0]
	t.kctx.EndFlush()
}

// batchScanGuard is the retire-list headroom below which an in-flush
// RetireNode defers to EndBatchFlush instead of handing off directly: a
// scan could fire before the flush's deferred hazard clears run, which
// would park every still-protected node for another full cycle. Sized
// just above the largest common flush (each move retires about one
// node), and below the retire threshold so flushes with ample headroom
// keep the cheaper direct hand-off.
const batchScanGuard = 72

// BatchActive reports whether the thread is inside a batch flush
// (tests and assertions).
func (t *Thread) BatchActive() bool { return t.batchActive }
