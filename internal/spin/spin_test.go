package spin

import (
	"sync"
	"testing"

	"repro/internal/backoff"
)

func TestLockUnlock(t *testing.T) {
	var l TTAS
	if l.Locked() {
		t.Fatal("zero value must be unlocked")
	}
	l.Lock()
	if !l.Locked() {
		t.Fatal("Lock must set state")
	}
	l.Unlock()
	if l.Locked() {
		t.Fatal("Unlock must clear state")
	}
}

func TestTryLock(t *testing.T) {
	var l TTAS
	if !l.TryLock() {
		t.Fatal("TryLock on free lock must succeed")
	}
	if l.TryLock() {
		t.Fatal("TryLock on held lock must fail")
	}
	l.Unlock()
	if !l.TryLock() {
		t.Fatal("TryLock after unlock must succeed")
	}
	l.Unlock()
}

func TestUnlockOfUnlockedPanics(t *testing.T) {
	var l TTAS
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l.Unlock()
}

func TestMutualExclusion(t *testing.T) {
	var l TTAS
	const workers = 8
	const iters = 20000
	counter := 0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				l.Lock()
				counter++
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != workers*iters {
		t.Fatalf("lost updates: %d != %d", counter, workers*iters)
	}
}

func TestMutualExclusionWithBackoff(t *testing.T) {
	var l TTAS
	const workers = 4
	const iters = 10000
	counter := 0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			bo := backoff.New(4, 256)
			for i := 0; i < iters; i++ {
				l.LockBackoff(bo)
				counter++
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != workers*iters {
		t.Fatalf("lost updates: %d != %d", counter, workers*iters)
	}
}
