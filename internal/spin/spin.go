// Package spin provides the test-test-and-set lock the paper uses for
// its blocking baseline (§6: "simple blocking implementations using
// test-test-and-set to implement a lock"), with an optional exponential
// backoff on acquisition failure.
package spin

import (
	"runtime"
	"sync/atomic"

	"repro/internal/backoff"
	"repro/internal/pad"
)

// TTAS is a test-test-and-set spin lock. The zero value is an unlocked
// lock without backoff.
type TTAS struct {
	state atomic.Uint32
	_     pad.Line
}

// Lock acquires the lock, spinning on a plain read until the lock looks
// free before attempting the atomic swap (the "test-test" part), which
// keeps the cache line in shared state while waiting.
func (l *TTAS) Lock() {
	for {
		if l.state.Load() == 0 && l.state.CompareAndSwap(0, 1) {
			return
		}
		spinWait(&l.state)
	}
}

// LockBackoff acquires the lock like Lock but doubles a busy-wait after
// every failed attempt, as in the paper's backoff experiments.
func (l *TTAS) LockBackoff(b *backoff.Exp) {
	for {
		if l.state.Load() == 0 && l.state.CompareAndSwap(0, 1) {
			b.Reset()
			return
		}
		b.Wait()
	}
}

// TryLock attempts to acquire the lock without waiting.
func (l *TTAS) TryLock() bool {
	return l.state.Load() == 0 && l.state.CompareAndSwap(0, 1)
}

// Unlock releases the lock. Calling Unlock on an unlocked lock panics, as
// that always indicates a bug in lock pairing.
func (l *TTAS) Unlock() {
	if l.state.Swap(0) != 1 {
		panic("spin: unlock of unlocked TTAS lock")
	}
}

// Locked reports whether the lock is currently held (for tests).
func (l *TTAS) Locked() bool { return l.state.Load() != 0 }

// spinWait reads until the state changes or a bounded number of
// iterations passes, then yields.
func spinWait(state *atomic.Uint32) {
	for i := 0; i < 64; i++ {
		if state.Load() == 0 {
			return
		}
	}
	runtime.Gosched()
}
