package hazard

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestProtectSnapshotClear(t *testing.T) {
	d := New(4, 3)
	d.Protect(0, 0, 10)
	d.Protect(1, 2, 5)
	d.Protect(3, 1, 10) // duplicate index from another thread
	snap := d.Snapshot(nil)
	if len(snap) != 3 {
		t.Fatalf("snapshot length %d", len(snap))
	}
	for _, idx := range []uint64{5, 10} {
		if !Protected(snap, idx) {
			t.Fatalf("index %d should be protected", idx)
		}
	}
	if Protected(snap, 7) {
		t.Fatal("index 7 should not be protected")
	}
	d.Clear(0, 0)
	d.Clear(3, 1)
	snap = d.Snapshot(snap)
	if Protected(snap, 10) {
		t.Fatal("index 10 should be unprotected after clears")
	}
	if !Protected(snap, 5) {
		t.Fatal("index 5 should remain protected")
	}
}

func TestClearAll(t *testing.T) {
	d := New(2, 4)
	for s := 0; s < 4; s++ {
		d.Protect(1, s, uint64(100+s))
	}
	d.ClearAll(1)
	if snap := d.Snapshot(nil); len(snap) != 0 {
		t.Fatalf("expected empty snapshot, got %v", snap)
	}
}

func TestProtectZeroClears(t *testing.T) {
	d := New(1, 1)
	d.Protect(0, 0, 9)
	d.Protect(0, 0, 0)
	if snap := d.Snapshot(nil); len(snap) != 0 {
		t.Fatal("protecting 0 must clear the slot")
	}
}

func TestGet(t *testing.T) {
	d := New(1, 2)
	d.Protect(0, 1, 77)
	if d.Get(0, 1) != 77 || d.Get(0, 0) != 0 {
		t.Fatal("Get mismatch")
	}
}

func TestSnapshotReusesBuffer(t *testing.T) {
	d := New(2, 2)
	d.Protect(0, 0, 3)
	buf := make([]uint64, 0, 16)
	s1 := d.Snapshot(buf)
	if cap(s1) != 16 {
		t.Fatal("snapshot should reuse caller's buffer")
	}
}

// TestNoProtectedReclamation runs the fundamental hazard-pointer
// property: a scanner never frees an index while some thread holds it.
// Threads repeatedly protect a shared index, validate, use it, release;
// a reclaimer flips the published index and scans.
func TestNoProtectedReclamation(t *testing.T) {
	const readers = 4
	dom := New(readers+1, 1)
	var published atomic.Uint64
	published.Store(1000)
	var freed sync.Map // index -> true once freed
	var stop atomic.Bool
	var wg sync.WaitGroup

	// Reclaimer: publish a new index, then free the old one only when
	// unprotected.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var retired []uint64
		next := uint64(1001)
		for i := 0; i < 3000; i++ {
			old := published.Swap(next)
			retired = append(retired, old)
			next++
			snap := dom.Snapshot(nil)
			kept := retired[:0]
			for _, idx := range retired {
				if Protected(snap, idx) {
					kept = append(kept, idx)
				} else {
					freed.Store(idx, true)
				}
			}
			retired = kept
		}
		stop.Store(true)
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for !stop.Load() {
				idx := published.Load()
				dom.Protect(tid, 0, idx)
				if published.Load() != idx {
					dom.Clear(tid, 0)
					continue // validation failed; retry
				}
				// The index is protected and validated: it must not have
				// been freed, and must not become freed while held.
				if _, ok := freed.Load(idx); ok {
					t.Errorf("index %d freed while protected", idx)
					dom.Clear(tid, 0)
					return
				}
				if _, ok := freed.Load(idx); ok {
					t.Errorf("index %d freed during protected use", idx)
					dom.Clear(tid, 0)
					return
				}
				dom.Clear(tid, 0)
			}
		}(r + 1)
	}
	wg.Wait()
}
