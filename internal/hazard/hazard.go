// Package hazard implements Michael-style hazard pointers [17], the
// memory-reclamation scheme the paper's case-study objects and DCAS use.
//
// A Domain owns one fixed-size record of hazard slots per thread. A slot
// protects an *index* (node index or descriptor index): protecting by
// index rather than full reference means tag/mark variants of the same
// object are all covered by one slot.
//
// Reclamation itself (retire lists, scanning, free lists) lives with the
// owners of the memory: package mm for nodes and package dcas for
// descriptors. This package only answers "is index i protected by any
// thread right now?" via Snapshot.
package hazard

import (
	"sort"
	"sync/atomic"

	"repro/internal/pad"
)

// Record is the per-thread hazard-pointer record.
type Record struct {
	slots []atomic.Uint64
	_     pad.Line
}

// Domain is a set of hazard-pointer records, one per thread, each with a
// fixed number of slots.
type Domain struct {
	slotsPer int
	records  []Record
}

// New creates a domain for maxThreads threads with slotsPer hazard slots
// each.
func New(maxThreads, slotsPer int) *Domain {
	d := &Domain{slotsPer: slotsPer, records: make([]Record, maxThreads)}
	for i := range d.records {
		d.records[i].slots = make([]atomic.Uint64, slotsPer)
	}
	return d
}

// SlotsPerThread returns the number of slots each thread owns.
func (d *Domain) SlotsPerThread() int { return d.slotsPer }

// MaxThreads returns the number of thread records in the domain.
func (d *Domain) MaxThreads() int { return len(d.records) }

// Protect publishes index idx in the given slot of thread tid. idx 0
// clears the slot. The store is sequentially consistent, which gives the
// store-load ordering hazard pointers require between publishing the
// hazard and re-validating the source.
func (d *Domain) Protect(tid, slot int, idx uint64) {
	d.records[tid].slots[slot].Store(idx)
}

// Clear removes any protection in the given slot.
func (d *Domain) Clear(tid, slot int) {
	d.records[tid].slots[slot].Store(0)
}

// ClearAll removes every protection held by thread tid.
func (d *Domain) ClearAll(tid int) {
	for s := range d.records[tid].slots {
		d.records[tid].slots[s].Store(0)
	}
}

// Get returns the index currently protected in the slot (for tests).
func (d *Domain) Get(tid, slot int) uint64 {
	return d.records[tid].slots[slot].Load()
}

// Snapshot appends every currently protected index to buf, sorts the
// result and returns it. Callers reuse buf across scans to stay
// allocation-free.
func (d *Domain) Snapshot(buf []uint64) []uint64 {
	buf = buf[:0]
	for t := range d.records {
		for s := range d.records[t].slots {
			if v := d.records[t].slots[s].Load(); v != 0 {
				buf = append(buf, v)
			}
		}
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	return buf
}

// Protected reports whether idx appears in a sorted snapshot.
func Protected(snapshot []uint64, idx uint64) bool {
	i := sort.Search(len(snapshot), func(i int) bool { return snapshot[i] >= idx })
	return i < len(snapshot) && snapshot[i] == idx
}
