package dcas

import (
	"testing"

	"repro/internal/hazard"
	"repro/internal/word"
)

// TestDescriptorPoolExhaustionPanics: descriptor capacity is a hard
// resource; running out must fail loudly, not deadlock.
func TestDescriptorPoolExhaustionPanics(t *testing.T) {
	descDom := hazard.New(1, 2)
	nodeDom := hazard.New(1, 8)
	pool := NewPool(carveBatch*2, descDom) // two carve batches only
	c := NewCtx(pool, nodeDom, 0, 0, 6, 7)
	defer func() {
		if recover() == nil {
			t.Fatal("expected exhaustion panic")
		}
	}()
	for i := 0; ; i++ {
		d, ref := c.Alloc()
		_ = d
		_ = ref // never recycled
		if i > carveBatch*4 {
			t.Fatal("pool failed to enforce its limit")
			return
		}
	}
}

// TestRetiredDescriptorsHeldWhileProtected: a descriptor referenced by
// another thread's hpd slot must survive scans.
func TestRetiredDescriptorsHeldWhileProtected(t *testing.T) {
	descDom := hazard.New(2, 2)
	nodeDom := hazard.New(2, 8)
	pool := NewPool(1<<12, descDom)
	c := NewCtx(pool, nodeDom, 0, 0, 6, 7)

	var w1, w2 word.Word
	w1.Store(val(1))
	w2.Store(val(2))
	d, ref := c.Alloc()
	d.Ptr1, d.Old1, d.New1 = &w1, val(1), val(3)
	d.Ptr2, d.Old2, d.New2 = &w2, val(2), val(4)
	if c.Execute(d, ref) != Success {
		t.Fatal("setup DCAS failed")
	}
	// Thread 1 protects the descriptor slot (as a helper would).
	descDom.Protect(1, 0, word.DescIndex(ref)+1)
	c.Retire(d, ref)
	for i := 0; i < 4; i++ {
		c.scan()
	}
	if d.self.Load() == 0 {
		t.Fatal("descriptor freed while hpd-protected")
	}
	// Release and confirm reclamation.
	descDom.Clear(1, 0)
	c.Flush()
	if d.self.Load() != 0 {
		t.Fatal("descriptor not freed after protection cleared")
	}
}

// TestRetireScrubsStrayReference: a marked descriptor reference left in
// ptr2 (the §7 late-ABA stray) must be scrubbed by Retire so the word
// never reaches readers after the descriptor is recycled.
func TestRetireScrubsStrayReference(t *testing.T) {
	descDom := hazard.New(1, 2)
	nodeDom := hazard.New(1, 8)
	pool := NewPool(1<<12, descDom)
	c := NewCtx(pool, nodeDom, 0, 0, 6, 7)

	var w1, w2 word.Word
	w1.Store(val(1))
	w2.Store(val(2))
	d, ref := c.Alloc()
	d.Ptr1, d.Old1, d.New1 = &w1, val(1), val(3)
	d.Ptr2, d.Old2, d.New2 = &w2, val(2), val(4)
	if c.Execute(d, ref) != Success {
		t.Fatal("setup DCAS failed")
	}
	// Simulate a late helper's ABA install: ptr2 went back to old2 and a
	// stalled helper re-installed its marked descriptor.
	w2.Store(val(2))
	stray := word.MarkDesc(ref, 0)
	w2.Store(stray)

	c.Retire(d, ref)
	if got := w2.Load(); got != val(2) {
		t.Fatalf("stray not scrubbed: w2=%#x", got)
	}
	c.Flush()
	if d.self.Load() != 0 {
		t.Fatal("descriptor not reclaimed after scrub")
	}
}

// TestReadCleansResidueAfterDecision: a reader encountering a decided
// descriptor's residue must restore the word and return a plain value.
func TestReadCleansResidueAfterDecision(t *testing.T) {
	descDom := hazard.New(1, 2)
	nodeDom := hazard.New(1, 8)
	pool := NewPool(1<<12, descDom)
	c := NewCtx(pool, nodeDom, 0, 0, 6, 7)

	var w1, w2 word.Word
	w1.Store(val(1))
	w2.Store(val(2))
	d, ref := c.Alloc()
	d.Ptr1, d.Old1, d.New1 = &w1, val(1), val(3)
	d.Ptr2, d.Old2, d.New2 = &w2, val(2), val(4)
	if c.Execute(d, ref) != Success {
		t.Fatal("setup DCAS failed")
	}
	// Plant a stray marked ref (live descriptor, decided): the reader
	// must help through it via lines D4–D6 and end with a plain value.
	w2.Store(val(2))
	w2.Store(word.MarkDesc(ref, 0))
	if got := c.Read(&w2); got != val(2) {
		t.Fatalf("Read returned %#x, want scrubbed old value", got)
	}
	_, strays, _ := pool.Stats()
	if strays == 0 {
		t.Fatal("stray cleanup not counted")
	}
	c.Retire(d, ref)
	c.Flush()
}
