// Package dcas implements the paper's double-word compare-and-swap
// (§3.2.2, Algorithm 4): a software DCAS with helping that
//
//   - reports which of the two words failed (FIRSTFAILED / SECONDFAILED),
//   - supports hazard pointers carried in the descriptor,
//   - needs no extra RDCSS descriptor (unlike Harris et al. [9]), and
//   - costs two fewer CASs than [9] in the uncontended case.
//
// Shared words that may participate in a DCAS must be accessed through
// the read operation (lines D32–D39), exposed here as Ctx.Read; read
// helps any announced DCAS to completion before returning a plain value.
package dcas

import (
	"sync"
	"sync/atomic"

	"repro/internal/hazard"
	"repro/internal/word"
)

// Result is the outcome of a DCAS, as defined by the semantics in
// Algorithm 1 of the paper.
type Result uint8

const (
	// Success: both words matched their old values and were atomically
	// replaced by their new values.
	Success Result = iota
	// FirstFailed: *ptr1 did not match old1; nothing was changed.
	FirstFailed
	// SecondFailed: *ptr2 did not match old2; nothing was changed.
	SecondFailed
)

func (r Result) String() string {
	switch r {
	case Success:
		return "SUCCESS"
	case FirstFailed:
		return "FIRSTFAILED"
	case SecondFailed:
		return "SECONDFAILED"
	}
	return "UNKNOWN"
}

// res-field states. UNDECIDED is the zero value; the other two are small
// even constants that can never collide with a node or descriptor
// reference (node indexes below arena.ReservedIndexes are never
// allocated). The res field may also hold a *marked descriptor
// reference*, the intermediate state of Lemma 1.
const (
	resUndecided    uint64 = 0
	resSecondFailed uint64 = 2
	resSuccess      uint64 = 4
)

// Desc is the DCASDesc structure from Algorithm 1:
//
//	struct DCASDesc
//	    word old1, old2, new1, new2
//	    word *ptr1, *ptr2
//	    [word *hp1, *hp2]
//	    word res
//
// Ptr1..New2 are written by the initiating process before the descriptor
// is announced (the CAS at line D10 publishes them) and are read-only
// afterwards. HP1/HP2 hold the arena indexes of the nodes containing
// *ptr1/*ptr2, so helpers can mirror the initiator's hazard pointers
// (line D3). res is the decision word of Lemma 1.
type Desc struct {
	Ptr1, Ptr2             *word.Word
	Old1, New1, Old2, New2 uint64
	HP1, HP2               uint64

	res word.Word

	// self holds the descriptor's current unmarked reference while the
	// descriptor is live and 0 while it is free. Helpers validate it
	// after the hpd protection (line D36) so a reference to a recycled
	// slot is never trusted.
	self atomic.Uint64

	// seq is the allocation sequence for this slot. Slots are owned by
	// the thread that carved them and never migrate, so seq needs no
	// atomicity.
	seq uint64
}

// ResDecided reports whether the descriptor's operation has completed
// (for tests).
func (d *Desc) ResDecided() bool {
	r := d.res.Load()
	return r == resSuccess || r == resSecondFailed
}

const (
	descSlabShift = 12
	descSlabSize  = 1 << descSlabShift
	descSlabMask  = descSlabSize - 1
)

// Pool is the grow-only slab store for DCAS descriptors, shared by all
// threads. Slot ownership is per-thread: a slot is carved by one thread
// and recycled only through that thread's cache, which keeps the seq
// field single-writer.
type Pool struct {
	slabs  atomic.Pointer[[]*[descSlabSize]Desc]
	growMu sync.Mutex
	next   atomic.Uint64
	limit  uint64

	dom *hazard.Domain // descriptor hazard domain (hpd slots)

	// Observability counters (§7 discusses "false helping ... a lot of
	// extra CASs"; these make that measurable).
	helps         atomic.Uint64 // helper entries into the DCAS
	strayCleanups atomic.Uint64 // stray descriptor refs reverted after decision
	lateP2        atomic.Uint64 // ptr2 installs that lost the res race
}

// NewPool creates a descriptor pool with capacity maxDescs (<=0 selects
// 1<<18) and the given descriptor hazard domain.
func NewPool(maxDescs int, dom *hazard.Domain) *Pool {
	if maxDescs <= 0 {
		maxDescs = 1 << 18
	}
	if uint64(maxDescs) > word.MaxDescIndex {
		maxDescs = int(word.MaxDescIndex)
	}
	p := &Pool{limit: uint64(maxDescs), dom: dom}
	empty := make([]*[descSlabSize]Desc, 0)
	p.slabs.Store(&empty)
	return p
}

// At dereferences a descriptor slot index.
func (p *Pool) At(idx uint64) *Desc {
	slabs := *p.slabs.Load()
	return &slabs[idx>>descSlabShift][idx&descSlabMask]
}

// Stats reports (helper entries, stray cleanups, late ptr2 installs).
func (p *Pool) Stats() (helps, strays, lateP2 uint64) {
	return p.helps.Load(), p.strayCleanups.Load(), p.lateP2.Load()
}

// carve bump-allocates n fresh slot indexes.
func (p *Pool) carve(dst []uint64, n int) []uint64 {
	start := p.next.Add(uint64(n)) - uint64(n)
	end := start + uint64(n)
	if end > p.limit {
		panic("dcas: descriptor pool exhausted; configure a larger DescCapacity")
	}
	p.ensure(end)
	for i := start; i < end; i++ {
		dst = append(dst, i)
	}
	return dst
}

func (p *Pool) ensure(end uint64) {
	need := int((end + descSlabMask) >> descSlabShift)
	if len(*p.slabs.Load()) >= need {
		return
	}
	p.growMu.Lock()
	defer p.growMu.Unlock()
	cur := *p.slabs.Load()
	if len(cur) >= need {
		return
	}
	grown := make([]*[descSlabSize]Desc, need)
	copy(grown, cur)
	for i := len(cur); i < need; i++ {
		grown[i] = new([descSlabSize]Desc)
	}
	p.slabs.Store(&grown)
}
