package dcas

import (
	"fmt"

	"repro/internal/word"
)

// Execute runs the DCAS described by d as the initiating process (line
// D1 with initiator = true). d must have been obtained from Alloc on
// this context and fully populated (Ptr1..New2, optionally HP1/HP2).
//
// The caller remains responsible for recycling d afterwards: FreeDirect
// when the result is FirstFailed (the descriptor was never announced),
// Retire otherwise.
func (c *Ctx) Execute(d *Desc, ref uint64) Result {
	return c.dcas(d, ref, true)
}

// dcas is Algorithm 4. The paper writes cas(addr, new, old); every CAS
// below uses Go order, CAS(addr, old, new). Line numbers D2..D31 refer
// to the paper's listing.
func (c *Ctx) dcas(d *Desc, ref uint64, initiator bool) Result {
	if !initiator { // D2
		// D3: mirror the initiator's hazard pointers into this thread's
		// node slots. If res is still undecided below, the initiating
		// process is still inside its operation and holds its own
		// protections, so these mirrors become visible to any future
		// hazard scan before the initiator's slots are cleared (Lemma 6).
		c.nodeDom.Protect(c.tid, c.mirror1, d.HP1)
		c.nodeDom.Protect(c.tid, c.mirror2, d.HP2)
	}

	if r := d.res.Load(); r == resSuccess || r == resSecondFailed { // D4
		// The operation is decided; only lazy cleanup of a residual
		// descriptor reference remains. A marked reference was found in
		// ptr2 (only line D14 installs marked refs), an unmarked one in
		// ptr1 (only line D10 installs unmarked refs).
		if word.IsMarkedDesc(ref) { // D5
			if d.Ptr2.CAS(ref, d.Old2) { // D6
				c.pool.strayCleanups.Add(1)
			}
		} else if !initiator {
			if d.Ptr1.CAS(ref, d.Old1) { // D8
				c.pool.strayCleanups.Add(1)
			}
		}
		return resultOf(r) // D9
	}

	if initiator {
		if !d.Ptr1.CAS(d.Old1, ref) { // D10: announce
			return FirstFailed // D11: never announced; nobody will help
		}
	}

	mdesc := word.MarkDesc(ref, c.tid) // D13
	p2set := d.Ptr2.CAS(d.Old2, mdesc) // D14
	if !p2set {                        // D15
		cur := d.Ptr2.Load() // D16
		if !word.SameDesc(cur, ref) {
			// ptr2 does not hold this descriptor in any form: the CAS
			// failed because *ptr2 != old2. Try to declare failure.
			d.res.CAS(resUndecided, resSecondFailed) // D17
		}
		switch r := d.res.Load(); r {
		case resSuccess:
			return Success // D18–D19
		case resSecondFailed: // D20
			// Revert the announcement (ptr1 holds the unmarked ref).
			d.Ptr1.CAS(word.UnmarkDesc(ref), d.Old1) // D21
			return SecondFailed                      // D22
		}
		// Some process's marked descriptor is (or was) pinned in ptr2.
		// Promote the *observed* marked descriptor into res — not our
		// own, which never made it into ptr2; promoting ours would let
		// line D29 strand ptr2 (see DESIGN.md §3.2). Before the decision
		// the pinned descriptor is unique, so cur is the right witness.
		if word.SameDesc(cur, ref) && word.IsMarkedDesc(cur) {
			d.res.CAS(resUndecided, cur) // D24 (observed form)
		}
	} else {
		// Our marked descriptor reached ptr2; race to make it the
		// decision witness.
		d.res.CAS(resUndecided, mdesc) // D24
	}

	r := d.res.Load()
	if r == resSecondFailed { // D25
		if p2set {
			// We installed our marked descriptor but were not first to
			// set res: change ptr2 back to its old value (Lemma 3).
			if d.Ptr2.CAS(mdesc, d.Old2) {
				c.pool.lateP2.Add(1)
			}
		}
		return SecondFailed // D27
	}
	// r is a marked descriptor (the witness) or already SUCCESS.
	d.Ptr1.CAS(word.UnmarkDesc(ref), d.New1) // D28
	if word.IsDesc(r) {
		d.Ptr2.CAS(r, d.New2) // D29: only the witness form can succeed here
	}
	d.res.Store(resSuccess) // D30
	return Success          // D31
}

// Carved reports how many descriptor slots the pool's bump allocator
// has handed out; a flat count under sustained load means recycling is
// keeping up (tests and diagnostics).
func (p *Pool) Carved() uint64 { return p.next.Load() }

func resultOf(res uint64) Result {
	if res == resSuccess {
		return Success
	}
	return SecondFailed
}

// Read is the read operation of Algorithm 4 (lines D32–D39): it returns
// the value of *w, first helping any DCAS whose descriptor is announced
// there. Values returned never encode a DCAS descriptor (they may encode
// descriptors of other kinds; callers that can meet those route through
// a dispatcher, see core.Thread.Read).
func (c *Ctx) Read(w *word.Word) uint64 {
	v := w.Load()                                             // D33
	for word.IsDesc(v) && word.DescKind(v) == word.KindDCAS { // D34
		c.HelpRef(w, v) // D35–D37
		v = w.Load()    // D38
	}
	return v // D39
}

// HelpRef performs one protected helping attempt for the descriptor
// reference v found in word w: protect with hpd (D35), revalidate that w
// still holds v (D36), validate the descriptor's identity, then help
// (D37). It returns without action when validation fails; the caller
// re-reads w.
func (c *Ctx) HelpRef(w *word.Word, v uint64) {
	idx := word.DescIndex(v)
	c.pool.dom.Protect(c.tid, c.hpdSlot, idx+1) // D35: hpd ← result
	defer c.pool.dom.Clear(c.tid, c.hpdSlot)
	if w.Load() != v { // D36: if hpd = *ptr
		return
	}
	d := c.pool.At(idx)
	if d.self.Load() != word.UnmarkDesc(v) {
		// The slot was recycled between our load and the hpd store; the
		// reference is stale. The word no longer being protected by the
		// retire check means this read raced a cleanup — re-read.
		c.checkStuck(w, v)
		return
	}
	c.pool.helps.Add(1)
	c.dcas(d, v, false) // D37: help
	c.nodeDom.Clear(c.tid, c.mirror1)
	c.nodeDom.Clear(c.tid, c.mirror2)
}

// stuckSpins bounds how often a stale descriptor reference may be
// re-observed in the same word before we declare a reclamation invariant
// violation. A stale reference can legitimately be observed while its
// cleanup CAS is in flight, but it cannot persist: the retire path
// scrubs both target words before a descriptor is freed.
const stuckSpins = 1 << 22

// stuckState is per-context diagnostic state for checkStuck.
type stuckState struct {
	w     *word.Word
	v     uint64
	count int
}

func (c *Ctx) checkStuck(w *word.Word, v uint64) {
	if c.stuck.w == w && c.stuck.v == v {
		c.stuck.count++
		if c.stuck.count > stuckSpins {
			panic(fmt.Sprintf("dcas: stale descriptor reference %#x pinned in word; reclamation invariant violated", v))
		}
		return
	}
	c.stuck = stuckState{w: w, v: v, count: 1}
}
