package dcas

import (
	"repro/internal/hazard"
	"repro/internal/word"
)

// retireScanAt is the retired-descriptor count that triggers a scan.
const retireScanAt = 64

// carveBatch is how many fresh descriptor slots a thread carves at once.
const carveBatch = 64

// Ctx is the per-thread handle for running and helping DCAS operations.
// Not safe for concurrent use: one per registered thread.
type Ctx struct {
	tid     int
	pool    *Pool
	nodeDom *hazard.Domain

	// Slot assignments. hpdSlot lives in the descriptor domain; the
	// mirror slots live in the node domain and receive the initiator's
	// hazard pointers when helping (line D3).
	hpdSlot int
	mirror1 int
	mirror2 int

	free    []uint64 // FIFO of recyclable slot indexes (owned by this thread)
	retired []retiredDesc
	snap    []uint64

	stuck stuckState // diagnostic state for stale-reference detection
}

type retiredDesc struct {
	d   *Desc
	ref uint64
}

// NewCtx creates the per-thread DCAS context. hpdSlot indexes into the
// pool's descriptor hazard domain; mirror1/mirror2 index into nodeDom.
func NewCtx(pool *Pool, nodeDom *hazard.Domain, tid, hpdSlot, mirror1, mirror2 int) *Ctx {
	return &Ctx{
		tid:     tid,
		pool:    pool,
		nodeDom: nodeDom,
		hpdSlot: hpdSlot,
		mirror1: mirror1,
		mirror2: mirror2,
	}
}

// TID returns the thread id this context was created for.
func (c *Ctx) TID() int { return c.tid }

// Alloc returns a fresh, UNDECIDED descriptor and its unmarked reference
// (lines M2–M3 of Algorithm 3). Recycled slots come from this thread's
// own FIFO, maximizing reuse distance.
func (c *Ctx) Alloc() (*Desc, uint64) {
	var idx uint64
	if len(c.free) > 0 {
		idx = c.free[0]
		c.free = c.free[1:]
	} else {
		if len(c.retired) > 0 {
			c.scan()
		}
		if len(c.free) > 0 {
			idx = c.free[0]
			c.free = c.free[1:]
		} else {
			c.free = c.pool.carve(c.free, carveBatch)
			idx = c.free[0]
			c.free = c.free[1:]
		}
	}
	d := c.pool.At(idx)
	d.seq++
	ref := word.MakeDesc(word.KindDCAS, idx, d.seq)
	d.Ptr1, d.Ptr2 = nil, nil
	d.Old1, d.New1, d.Old2, d.New2 = 0, 0, 0, 0
	d.HP1, d.HP2 = 0, 0
	d.res.Store(resUndecided)
	d.self.Store(ref)
	return d, ref
}

// FreeDirect recycles a descriptor that was never announced (the DCAS
// returned FIRSTFAILED before publishing, or the move never reached its
// DCAS). No helper can hold a reference, so it skips the hazard scan.
func (c *Ctx) FreeDirect(d *Desc, ref uint64) {
	d.self.Store(0)
	c.free = append(c.free, word.DescIndex(ref))
}

// Retire recycles a descriptor that was announced: helpers may still
// reference it through hpd slots or through stray word contents, so it
// is first scrubbed from its target words, then parked until a scan
// proves it unreachable.
func (c *Ctx) Retire(d *Desc, ref uint64) {
	c.scrub(d, ref)
	c.retired = append(c.retired, retiredDesc{d: d, ref: ref})
	if len(c.retired) >= retireScanAt {
		c.scan()
	}
}

// scrub removes residual references to d from its two target words. The
// operation has completed, so the reverts below are exactly the lazy
// cleanup of lines D5–D8: an unmarked residue in ptr1 means the DCAS
// failed after announcing (revert to old1); a marked residue in ptr2 is
// a stray from a late ABA install (revert to old2; the real decision
// already took effect). Bounded: new strays can only come from helpers
// still in flight, which the scan's hpd check catches.
func (c *Ctx) scrub(d *Desc, ref uint64) {
	for i := 0; i < 16; i++ {
		v := d.Ptr1.Load()
		if !word.SameDesc(v, ref) {
			break
		}
		if d.Ptr1.CAS(v, d.Old1) {
			c.pool.strayCleanups.Add(1)
		}
	}
	for i := 0; i < 16; i++ {
		v := d.Ptr2.Load()
		if !word.SameDesc(v, ref) {
			break
		}
		if d.Ptr2.CAS(v, d.Old2) {
			c.pool.strayCleanups.Add(1)
		}
	}
}

// scan frees every retired descriptor that is (a) not protected by any
// hpd slot and (b) absent from both of its target words. The hpd
// snapshot is taken first: any helper that could still install a stray
// was in flight — and therefore visible — at snapshot time.
func (c *Ctx) scan() {
	c.snap = c.pool.dom.Snapshot(c.snap)
	kept := c.retired[:0]
	for _, rd := range c.retired {
		idx := word.DescIndex(rd.ref)
		if hazard.Protected(c.snap, idx+1) {
			kept = append(kept, rd)
			continue
		}
		if word.SameDesc(rd.d.Ptr1.Load(), rd.ref) || word.SameDesc(rd.d.Ptr2.Load(), rd.ref) {
			c.scrub(rd.d, rd.ref)
			kept = append(kept, rd)
			continue
		}
		rd.d.self.Store(0)
		c.free = append(c.free, idx)
	}
	c.retired = kept
}

// Flush retires everything it can; used at thread shutdown and by tests.
func (c *Ctx) Flush() {
	for prev := -1; len(c.retired) > 0 && len(c.retired) != prev; {
		prev = len(c.retired)
		c.scan()
	}
}

// Retired reports the retired-list length (tests).
func (c *Ctx) Retired() int { return len(c.retired) }
