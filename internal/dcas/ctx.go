package dcas

import (
	"repro/internal/hazard"
	"repro/internal/word"
)

// retireScanAt is the retired-descriptor count that triggers a scan.
const retireScanAt = 64

// carveBatch is how many fresh descriptor slots a thread carves at once.
const carveBatch = 64

// flushRecycleAt is the minimum number of flush-parked descriptors that
// makes EndFlush pay for a hazard snapshot; smaller flushes accumulate
// across EndFlush calls so the snapshot stays amortized. Sized above
// the common batch capacities (16) so a mid-size flush still snapshots
// only every other flush.
const flushRecycleAt = 24

// Ctx is the per-thread handle for running and helping DCAS operations.
// Not safe for concurrent use: one per registered thread.
type Ctx struct {
	tid     int
	pool    *Pool
	nodeDom *hazard.Domain

	// Slot assignments. hpdSlot lives in the descriptor domain; the
	// mirror slots live in the node domain and receive the initiator's
	// hazard pointers when helping (line D3).
	hpdSlot int
	mirror1 int
	mirror2 int

	// free is a FIFO ring of recyclable slot indexes (owned by this
	// thread): popped at freeHead, pushed at the back, compacted in place
	// when full so steady-state operation never reallocates.
	free     []uint64
	freeHead int
	retired  []retiredDesc
	// flushRet parks descriptors retired inside a batch flush
	// (core.Thread.EndBatchFlush drains it through EndFlush): they were
	// announced, but one shared hazard snapshot per flush — instead of
	// one retire cycle per move — decides whether they can be reused
	// immediately.
	flushRet []retiredDesc
	snap     []uint64

	stuck stuckState // diagnostic state for stale-reference detection
}

type retiredDesc struct {
	d   *Desc
	ref uint64
}

// NewCtx creates the per-thread DCAS context. hpdSlot indexes into the
// pool's descriptor hazard domain; mirror1/mirror2 index into nodeDom.
func NewCtx(pool *Pool, nodeDom *hazard.Domain, tid, hpdSlot, mirror1, mirror2 int) *Ctx {
	return &Ctx{
		tid:     tid,
		pool:    pool,
		nodeDom: nodeDom,
		hpdSlot: hpdSlot,
		mirror1: mirror1,
		mirror2: mirror2,
	}
}

// TID returns the thread id this context was created for.
func (c *Ctx) TID() int { return c.tid }

// hasFree reports whether the free ring holds a recyclable slot.
func (c *Ctx) hasFree() bool { return c.freeHead < len(c.free) }

// popFree takes the oldest free slot (FIFO, maximizing reuse distance).
func (c *Ctx) popFree() uint64 {
	idx := c.free[c.freeHead]
	c.freeHead++
	if c.freeHead == len(c.free) {
		c.free = c.free[:0]
		c.freeHead = 0
	}
	return idx
}

// pushFree returns a slot to the ring, compacting consumed head space in
// place instead of letting append grow the backing array forever.
func (c *Ctx) pushFree(idx uint64) {
	if c.freeHead > 0 && len(c.free) == cap(c.free) {
		n := copy(c.free, c.free[c.freeHead:])
		c.free = c.free[:n]
		c.freeHead = 0
	}
	c.free = append(c.free, idx)
}

// Alloc returns a fresh, UNDECIDED descriptor and its unmarked reference
// (lines M2–M3 of Algorithm 3). Recycled slots come from this thread's
// own FIFO, maximizing reuse distance.
func (c *Ctx) Alloc() (*Desc, uint64) {
	if !c.hasFree() {
		if len(c.retired) > 0 {
			c.scan()
		}
		if !c.hasFree() {
			c.free = c.pool.carve(c.free, carveBatch)
		}
	}
	idx := c.popFree()
	d := c.pool.At(idx)
	d.seq++
	ref := word.MakeDesc(word.KindDCAS, idx, d.seq)
	d.Ptr1, d.Ptr2 = nil, nil
	d.Old1, d.New1, d.Old2, d.New2 = 0, 0, 0, 0
	d.HP1, d.HP2 = 0, 0
	d.res.Store(resUndecided)
	d.self.Store(ref)
	return d, ref
}

// FreeDirect recycles a descriptor that was never announced (the DCAS
// returned FIRSTFAILED before publishing, or the move never reached its
// DCAS). No helper can hold a reference, so it skips the hazard scan.
func (c *Ctx) FreeDirect(d *Desc, ref uint64) {
	d.self.Store(0)
	c.pushFree(word.DescIndex(ref))
}

// Retire recycles a descriptor that was announced: helpers may still
// reference it through hpd slots or through stray word contents, so it
// is first scrubbed from its target words, then parked until a scan
// proves it unreachable.
func (c *Ctx) Retire(d *Desc, ref uint64) {
	c.scrub(d, ref)
	c.retired = append(c.retired, retiredDesc{d: d, ref: ref})
	if len(c.retired) >= retireScanAt {
		c.scan()
	}
}

// scrub removes residual references to d from its two target words. The
// operation has completed, so the reverts below are exactly the lazy
// cleanup of lines D5–D8: an unmarked residue in ptr1 means the DCAS
// failed after announcing (revert to old1); a marked residue in ptr2 is
// a stray from a late ABA install (revert to old2; the real decision
// already took effect). Bounded: new strays can only come from helpers
// still in flight, which the scan's hpd check catches.
func (c *Ctx) scrub(d *Desc, ref uint64) {
	for i := 0; i < 16; i++ {
		v := d.Ptr1.Load()
		if !word.SameDesc(v, ref) {
			break
		}
		if d.Ptr1.CAS(v, d.Old1) {
			c.pool.strayCleanups.Add(1)
		}
	}
	for i := 0; i < 16; i++ {
		v := d.Ptr2.Load()
		if !word.SameDesc(v, ref) {
			break
		}
		if d.Ptr2.CAS(v, d.Old2) {
			c.pool.strayCleanups.Add(1)
		}
	}
}

// scan frees every retired descriptor that is (a) not protected by any
// hpd slot and (b) absent from both of its target words. The hpd
// snapshot is taken first: any helper that could still install a stray
// was in flight — and therefore visible — at snapshot time.
func (c *Ctx) scan() {
	c.snap = c.pool.dom.Snapshot(c.snap)
	kept := c.retired[:0]
	for _, rd := range c.retired {
		idx := word.DescIndex(rd.ref)
		if hazard.Protected(c.snap, idx+1) {
			kept = append(kept, rd)
			continue
		}
		if word.SameDesc(rd.d.Ptr1.Load(), rd.ref) || word.SameDesc(rd.d.Ptr2.Load(), rd.ref) {
			c.scrub(rd.d, rd.ref)
			kept = append(kept, rd)
			continue
		}
		rd.d.self.Store(0)
		c.pushFree(idx)
	}
	c.retired = kept
}

// RetireFlush parks an announced descriptor for the batch-flush recycle
// path: it is scrubbed now (like Retire) but its reuse decision is
// deferred to EndFlush, which covers the whole flush with one hazard
// snapshot instead of running a retire cycle per move.
func (c *Ctx) RetireFlush(d *Desc, ref uint64) {
	c.scrub(d, ref)
	c.flushRet = append(c.flushRet, retiredDesc{d: d, ref: ref})
}

// EndFlush recycles the flush-parked descriptors: one snapshot of the
// hpd domain, then every descriptor that is unprotected and absent from
// both of its target words — the same conditions scan proves — goes
// straight back to the free ring, without waiting for a full retire
// cycle. Sequence-stamped references keep the early reuse ABA-safe: a
// helper holding a stale reference fails the descriptor's self check.
// Descriptors a helper may still reach fall back to the conservative
// retire cycle. Small flushes accumulate until the snapshot is paid for.
func (c *Ctx) EndFlush() {
	if len(c.flushRet) < flushRecycleAt {
		return
	}
	c.snap = c.pool.dom.Snapshot(c.snap)
	for _, rd := range c.flushRet {
		idx := word.DescIndex(rd.ref)
		if hazard.Protected(c.snap, idx+1) ||
			word.SameDesc(rd.d.Ptr1.Load(), rd.ref) || word.SameDesc(rd.d.Ptr2.Load(), rd.ref) {
			c.retired = append(c.retired, rd)
			continue
		}
		rd.d.self.Store(0)
		c.pushFree(idx)
	}
	c.flushRet = c.flushRet[:0]
	if len(c.retired) >= retireScanAt {
		c.scan()
	}
}

// FlushParked reports the flush-parked descriptor count (tests).
func (c *Ctx) FlushParked() int { return len(c.flushRet) }

// Flush retires everything it can; used at thread shutdown and by tests.
func (c *Ctx) Flush() {
	c.retired = append(c.retired, c.flushRet...)
	c.flushRet = c.flushRet[:0]
	for prev := -1; len(c.retired) > 0 && len(c.retired) != prev; {
		prev = len(c.retired)
		c.scan()
	}
}

// Retired reports the retired-list length (tests).
func (c *Ctx) Retired() int { return len(c.retired) }
