// Package word defines the 64-bit shared-word encoding used by every
// concurrent object in this repository and the Word type, an atomic
// 64-bit cell holding such encoded values.
//
// The paper stores raw pointers in shared words and distinguishes DCAS
// descriptors by setting the least significant bit (Harris' tagging
// technique, §3.2.2). Go's garbage collector does not permit bit-stuffed
// pointers, so shared words hold 64-bit handles instead:
//
//	0                                   nil
//	bit 0 = 0   node reference:
//	            bit  1        Harris-list logical-delete mark
//	            bits 2..41    arena index (40 bits)
//	            bits 42..63   version tag (22 bits; versioned-top stack)
//	bit 0 = 1   descriptor reference:
//	            bits 1..2     descriptor kind (DCAS / MCAS / RDCSS)
//	            bits 3..16    thread mark: tid+1, 0 = unmarked (14 bits)
//	            bits 17..36   descriptor slot index (20 bits)
//	            bits 37..63   allocation sequence (27 bits)
//
// The thread mark reproduces the paper's mark(unmark(desc), threadID)
// operation used on ptr2 to defeat the ABA problem; the sequence field
// makes the "hpd = *ptr" revalidation in the read operation (line D36)
// robust against descriptor slot reuse.
package word

import "sync/atomic"

// Nil is the encoding of the null reference.
const Nil uint64 = 0

// Field widths and shifts for node references.
const (
	nodeMarkBit   = 1 << 1
	nodeIndexBits = 40
	nodeIndexMask = (1 << nodeIndexBits) - 1
	nodeTagBits   = 22
	nodeTagMask   = (1 << nodeTagBits) - 1
	nodeTagShift  = 2 + nodeIndexBits
)

// MaxNodeIndex is the largest arena index representable in a node
// reference.
const MaxNodeIndex = nodeIndexMask

// MaxNodeTag is the largest version tag representable in a node reference.
const MaxNodeTag = nodeTagMask

// Field widths and shifts for descriptor references.
const (
	descKindShift = 1
	descKindMask  = 3
	descTIDShift  = 3
	descTIDBits   = 14
	descTIDMask   = (1 << descTIDBits) - 1
	descIdxShift  = 17
	descIdxBits   = 20
	descIdxMask   = (1 << descIdxBits) - 1
	descSeqShift  = 37
	descSeqBits   = 27
	descSeqMask   = (1 << descSeqBits) - 1
)

// Descriptor kinds.
const (
	KindDCAS  = 0
	KindMCAS  = 1
	KindRDCSS = 2
)

// MaxThreads is the number of distinct thread ids representable in a
// descriptor mark (tid+1 must fit in 14 bits).
const MaxThreads = descTIDMask - 1

// MaxDescIndex is the largest descriptor slot index representable.
const MaxDescIndex = descIdxMask

// IsDesc reports whether v encodes a descriptor reference.
func IsDesc(v uint64) bool { return v&1 == 1 }

// --- Node references ---------------------------------------------------

// MakeNode builds an unmarked node reference from an arena index and a
// version tag.
func MakeNode(index, tag uint64) uint64 {
	return (index&nodeIndexMask)<<2 | (tag&nodeTagMask)<<nodeTagShift
}

// NodeIndex extracts the arena index from a node reference.
func NodeIndex(v uint64) uint64 { return (v >> 2) & nodeIndexMask }

// NodeTag extracts the version tag from a node reference.
func NodeTag(v uint64) uint64 { return (v >> nodeTagShift) & nodeTagMask }

// IsListMarked reports whether the node reference carries the Harris-list
// logical-delete mark.
func IsListMarked(v uint64) bool { return v&nodeMarkBit != 0 }

// ListMarked returns v with the logical-delete mark set.
func ListMarked(v uint64) uint64 { return v | nodeMarkBit }

// ListUnmarked returns v with the logical-delete mark cleared.
func ListUnmarked(v uint64) uint64 { return v &^ uint64(nodeMarkBit) }

// BumpTag returns the node reference with its version tag incremented
// (wrapping). Used by the versioned-top stack variant from §7 of the
// paper.
func BumpTag(v uint64) uint64 {
	tag := (NodeTag(v) + 1) & nodeTagMask
	return MakeNode(NodeIndex(v), tag) | (v & nodeMarkBit)
}

// --- Descriptor references ---------------------------------------------

// MakeDesc builds an unmarked descriptor reference.
func MakeDesc(kind, index, seq uint64) uint64 {
	return 1 |
		(kind&descKindMask)<<descKindShift |
		(index&descIdxMask)<<descIdxShift |
		(seq&descSeqMask)<<descSeqShift
}

// DescKind extracts the descriptor kind.
func DescKind(v uint64) uint64 { return (v >> descKindShift) & descKindMask }

// DescIndex extracts the descriptor slot index.
func DescIndex(v uint64) uint64 { return (v >> descIdxShift) & descIdxMask }

// DescSeq extracts the allocation sequence number.
func DescSeq(v uint64) uint64 { return (v >> descSeqShift) & descSeqMask }

// DescTID extracts the thread mark (tid+1; 0 means unmarked).
func DescTID(v uint64) uint64 { return (v >> descTIDShift) & descTIDMask }

// IsMarkedDesc reports whether the descriptor reference carries a thread
// mark, i.e. whether it was installed into ptr2 ("desc is marked", line
// D5 of Algorithm 4).
func IsMarkedDesc(v uint64) bool { return IsDesc(v) && DescTID(v) != 0 }

// MarkDesc returns the descriptor reference marked with the given thread
// id: the paper's mark(unmark(desc), threadID) from line D13.
func MarkDesc(v uint64, tid int) uint64 {
	return UnmarkDesc(v) | (uint64(tid+1)&descTIDMask)<<descTIDShift
}

// UnmarkDesc clears the thread mark, recovering the canonical reference
// the initiator announced in ptr1.
func UnmarkDesc(v uint64) uint64 {
	return v &^ uint64(descTIDMask<<descTIDShift)
}

// SameDesc reports whether a and b refer to the same descriptor instance
// (same kind, slot and sequence) regardless of thread marks.
func SameDesc(a, b uint64) bool {
	return IsDesc(a) && IsDesc(b) && UnmarkDesc(a) == UnmarkDesc(b)
}

// --- Word ---------------------------------------------------------------

// Word is a 64-bit shared memory cell. All loads and stores are
// sequentially consistent (sync/atomic). Every mutable location that can
// participate in a DCAS is a Word, accessed through the read operation of
// Algorithm 4 wherever the paper requires it.
type Word struct{ v atomic.Uint64 }

// Load returns the current value.
func (w *Word) Load() uint64 { return w.v.Load() }

// Store unconditionally replaces the current value.
func (w *Word) Store(x uint64) { w.v.Store(x) }

// CAS atomically replaces old with new and reports whether it did.
func (w *Word) CAS(old, new uint64) bool {
	return w.v.CompareAndSwap(old, new)
}

// Swap atomically replaces the value and returns the previous one.
func (w *Word) Swap(x uint64) uint64 { return w.v.Swap(x) }
