package word

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNilIsNotDesc(t *testing.T) {
	if IsDesc(Nil) {
		t.Fatal("nil must not look like a descriptor")
	}
	if NodeIndex(Nil) != 0 {
		t.Fatal("nil must have node index 0")
	}
}

func TestNodeRoundTrip(t *testing.T) {
	f := func(index, tag uint64) bool {
		index &= MaxNodeIndex
		tag &= MaxNodeTag
		v := MakeNode(index, tag)
		return !IsDesc(v) && NodeIndex(v) == index && NodeTag(v) == tag && !IsListMarked(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNodeMarkRoundTrip(t *testing.T) {
	f := func(index, tag uint64) bool {
		v := MakeNode(index&MaxNodeIndex, tag&MaxNodeTag)
		m := ListMarked(v)
		return IsListMarked(m) &&
			!IsListMarked(ListUnmarked(m)) &&
			ListUnmarked(m) == v &&
			NodeIndex(m) == NodeIndex(v) &&
			NodeTag(m) == NodeTag(v) &&
			!IsDesc(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBumpTag(t *testing.T) {
	v := MakeNode(42, 7)
	b := BumpTag(v)
	if NodeIndex(b) != 42 || NodeTag(b) != 8 {
		t.Fatalf("BumpTag: got index %d tag %d", NodeIndex(b), NodeTag(b))
	}
	// Tag wraps.
	w := MakeNode(42, MaxNodeTag)
	if NodeTag(BumpTag(w)) != 0 {
		t.Fatal("BumpTag must wrap")
	}
	// Mark preserved.
	if !IsListMarked(BumpTag(ListMarked(v))) {
		t.Fatal("BumpTag must preserve the list mark")
	}
}

func TestDescRoundTrip(t *testing.T) {
	f := func(kind, index, seq uint64) bool {
		kind &= 3
		index &= MaxDescIndex
		seq &= (1 << 27) - 1
		v := MakeDesc(kind, index, seq)
		return IsDesc(v) &&
			DescKind(v) == kind &&
			DescIndex(v) == index &&
			DescSeq(v) == seq &&
			DescTID(v) == 0 &&
			!IsMarkedDesc(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDescMarking(t *testing.T) {
	f := func(index, seq uint64, tid int) bool {
		index &= MaxDescIndex
		seq &= (1 << 27) - 1
		if tid < 0 {
			tid = -tid
		}
		tid %= MaxThreads
		v := MakeDesc(KindDCAS, index, seq)
		m := MarkDesc(v, tid)
		return IsMarkedDesc(m) &&
			DescTID(m) == uint64(tid+1) &&
			UnmarkDesc(m) == v &&
			SameDesc(m, v) &&
			DescIndex(m) == index &&
			DescSeq(m) == seq &&
			DescKind(m) == KindDCAS
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMarksOfDifferentThreadsDiffer(t *testing.T) {
	v := MakeDesc(KindDCAS, 5, 9)
	if MarkDesc(v, 0) == MarkDesc(v, 1) {
		t.Fatal("marks of different threads must differ")
	}
	if !SameDesc(MarkDesc(v, 0), MarkDesc(v, 1)) {
		t.Fatal("marks of the same descriptor must compare SameDesc")
	}
}

func TestSameDescDistinguishesSeq(t *testing.T) {
	a := MakeDesc(KindDCAS, 5, 1)
	b := MakeDesc(KindDCAS, 5, 2)
	if SameDesc(a, b) {
		t.Fatal("different sequences must not compare SameDesc")
	}
	if SameDesc(a, MakeDesc(KindMCAS, 5, 1)) {
		t.Fatal("different kinds must not compare SameDesc")
	}
	if SameDesc(a, Nil) || SameDesc(Nil, a) {
		t.Fatal("nil never compares SameDesc")
	}
}

func TestNodeAndDescSpacesDisjoint(t *testing.T) {
	// No node reference can satisfy IsDesc and vice versa.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		n := MakeNode(rng.Uint64()&MaxNodeIndex, rng.Uint64()&MaxNodeTag)
		if IsDesc(n) {
			t.Fatalf("node ref %#x classified as descriptor", n)
		}
		d := MakeDesc(rng.Uint64()&3, rng.Uint64()&MaxDescIndex, rng.Uint64()&((1<<27)-1))
		if !IsDesc(d) {
			t.Fatalf("desc ref %#x not classified as descriptor", d)
		}
	}
}

func TestWordOperations(t *testing.T) {
	var w Word
	if w.Load() != 0 {
		t.Fatal("zero value must load 0")
	}
	w.Store(7)
	if w.Load() != 7 {
		t.Fatal("store/load")
	}
	if !w.CAS(7, 9) {
		t.Fatal("CAS with matching old must succeed")
	}
	if w.CAS(7, 11) {
		t.Fatal("CAS with stale old must fail")
	}
	if w.Swap(13) != 9 {
		t.Fatal("Swap must return previous value")
	}
	if w.Load() != 13 {
		t.Fatal("Swap must install new value")
	}
}
