package harness

import (
	"sync"
	"sync/atomic"
	"time"
)

// The local-work generator busy-waits instead of sleeping: the paper's
// work times (0.1–0.5µs) are far below scheduler granularity. A
// calibration pass measures the cost of one spin iteration so SpinFor
// can convert nanoseconds to iterations.

var (
	calOnce     sync.Once
	nsPerIter   float64
	calibrateIt = 1 << 21
)

// spinSink defeats dead-code elimination; atomic because every worker
// thread spins concurrently.
var spinSink atomic.Uint64

func spinIters(n int) {
	var acc uint64 = 0x243f6a8885a308d3
	for i := 0; i < n; i++ {
		acc ^= acc << 13
		acc ^= acc >> 7
		acc ^= acc << 17
	}
	spinSink.Add(acc)
}

// Calibrate measures the spin-loop speed once per process. It is called
// automatically by Run; tests may call it directly.
func Calibrate() {
	calOnce.Do(func() {
		// Warm up, then measure.
		spinIters(calibrateIt / 8)
		t0 := time.Now()
		spinIters(calibrateIt)
		el := time.Since(t0)
		nsPerIter = float64(el.Nanoseconds()) / float64(calibrateIt)
		if nsPerIter <= 0 {
			nsPerIter = 1
		}
	})
}

// NsPerIteration exposes the calibrated cost (tests).
func NsPerIteration() float64 {
	Calibrate()
	return nsPerIter
}

// SpinFor busy-waits for approximately ns nanoseconds.
func SpinFor(ns float64) {
	if ns <= 0 {
		return
	}
	spinIters(int(ns / nsPerIter))
}
