package harness

// This file adds the map-churn scenario: the keyed, high-fan-out
// workload the sharded map opens up, alongside the paper's queue/stack
// pairings. Threads churn a growing map with keyed inserts, removes,
// lookups and cross-map moves (including §8 MoveN fan-outs into a map
// plus an audit queue), while an optional rebalancer thread drives
// pending shard migrations in bounded RebalanceStep increments. The
// maps start deliberately small, so the measured interval contains real
// grows whose entry relocations all run through MoveN.
//
// Impl selects the family: LockFree is the composition-paper map;
// Blocking is the lock-striped baseline (blocking.Map), extending the
// Figures 2–4 lockfree-vs-blocking comparison to the keyed workload.
// The blocking side has no MoveN analogue (a third lock would nest),
// so fan-out moves degrade to plain two-lock keyed moves there, and
// rebalancing happens inline under the shard locks.

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adapt"
	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/elim"
	"repro/internal/hashmap"
	"repro/internal/msqueue"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// MapOptions configures one cell of the map-churn scenario.
type MapOptions struct {
	// Impl selects lock-free (default) or the lock-striped blocking
	// baseline.
	Impl     Impl
	Threads  int
	TotalOps int // distributed evenly over threads
	Trials   int
	// Keys is the key-space size; smaller means more collisions.
	Keys int
	// Shards/Buckets/GrowLoad shape both maps (see hashmap.NewSharded);
	// the defaults (2 shards × 2 buckets, grow at 4) guarantee grows
	// during the run.
	Shards, Buckets, GrowLoad int
	// MovePercent of operations are keyed cross-map moves; FanPercent of
	// those are MoveN fan-outs into the other map plus the audit queue.
	// The remainder splits evenly between insert, remove and lookup.
	MovePercent, FanPercent int
	// ReadFraction makes this the read-mostly cell: that percent of
	// operations become plain lookups before the move/churn split is
	// consulted (e.g. 95 gives the classic 95/5 lookup-heavy mix). 0
	// keeps the pure churn cell.
	ReadFraction int
	// Rebalancer adds a dedicated thread looping RebalanceStep, so
	// migration work overlaps the measured operations (lock-free only).
	Rebalancer bool
	// Zipf draws keys from a zipfian distribution over the key space
	// instead of uniformly — the skewed cell, where a few hot keys (and
	// so a few hot shards) absorb most of the churn. ZipfTheta sets the
	// skew (<= 0: xrand.DefaultZipfTheta).
	Zipf      bool
	ZipfTheta float64
	// Elimination enables the elimination-backoff layer on both maps'
	// shards; ElimSlots/ElimSpins tune the arrays.
	Elimination          bool
	ElimSlots, ElimSpins int
	// Adaptive enables the feedback-driven contention-management
	// subsystem (core.Config.Adaptive) on the lock-free maps: window
	// sizing, hot-shard elimination and rebalance pacing, sampled on
	// operation-count epochs. AdaptEpochOps overrides the epoch length
	// (0: package default).
	Adaptive      bool
	AdaptEpochOps int
	Contention    Contention
	Prefill       int // entries pre-inserted per map
	Seed          uint64
	Pin           bool
	// ArenaCapacity overrides the runtime sizing (0 = automatic).
	ArenaCapacity int
}

func (o MapOptions) withDefaults() MapOptions {
	if o.Threads <= 0 {
		o.Threads = 1
	}
	if o.TotalOps <= 0 {
		o.TotalOps = 1_000_000
	}
	if o.Trials <= 0 {
		o.Trials = 1
	}
	if o.Keys <= 0 {
		o.Keys = 4096
	}
	if o.Shards <= 0 {
		o.Shards = 2
	}
	if o.Buckets <= 0 {
		o.Buckets = 2
	}
	if o.GrowLoad <= 0 {
		o.GrowLoad = 4
	}
	if o.MovePercent <= 0 {
		o.MovePercent = 40
	}
	if o.FanPercent <= 0 {
		o.FanPercent = 25
	}
	if o.Prefill == 0 {
		o.Prefill = 512
	}
	if o.Seed == 0 {
		o.Seed = 0x5eed
	}
	return o
}

// AdaptAgg are per-trial means of the maps' adaptation decision
// counters (all zero when Adaptive is off or the impl is blocking).
type AdaptAgg struct {
	Epochs, WindowGrows, WindowShrinks float64
	Attaches, Detaches                 float64
	PaceRaises, PaceDecays             float64
}

func (a *AdaptAgg) add(s adapt.Stats, trials int) {
	f := float64(trials)
	a.Epochs += float64(s.Epochs) / f
	a.WindowGrows += float64(s.WindowGrows) / f
	a.WindowShrinks += float64(s.WindowShrinks) / f
	a.Attaches += float64(s.Attaches) / f
	a.Detaches += float64(s.Detaches) / f
	a.PaceRaises += float64(s.PaceRaises) / f
	a.PaceDecays += float64(s.PaceDecays) / f
}

// MapResult aggregates the trials of one map-churn cell.
type MapResult struct {
	Options   MapOptions
	SamplesNS []float64
	Summary   stats.Summary
	Ops       int
	// Grows/Migrated/Steps are per-trial means of the two maps' grow
	// stats, showing how much rebalancing the measured interval held.
	Grows, Migrated, Steps float64
	// ElimHits/ElimMisses are per-trial means of both maps' elimination
	// counters (zero when the layer is off).
	ElimHits, ElimMisses float64
	// Adapt aggregates the adaptation decision counters.
	Adapt AdaptAgg
}

// MeanMS returns the mean adjusted duration in milliseconds.
func (r MapResult) MeanMS() float64 { return r.Summary.Mean / 1e6 }

// RunMapChurn executes every trial of one map-churn cell.
func RunMapChurn(o MapOptions) MapResult {
	o = o.withDefaults()
	Calibrate()
	res := MapResult{Options: o, Ops: o.TotalOps}
	for trial := 0; trial < o.Trials; trial++ {
		m := runMapTrial(o, uint64(trial))
		res.SamplesNS = append(res.SamplesNS, m.adjNS)
		res.Grows += m.grows / float64(o.Trials)
		res.Migrated += m.migrated / float64(o.Trials)
		res.Steps += m.steps / float64(o.Trials)
		res.ElimHits += m.elimHits / float64(o.Trials)
		res.ElimMisses += m.elimMisses / float64(o.Trials)
		res.Adapt.add(m.adapt, o.Trials)
	}
	res.Summary = stats.Summarize(res.SamplesNS)
	return res
}

// mapTrialResult carries one trial's measurements.
type mapTrialResult struct {
	adjNS, grows, migrated, steps float64
	elimHits, elimMisses          float64
	adapt                         adapt.Stats
}

// mapObjects abstracts the pair of maps (plus audit queue) so the
// worker loop is shared between the lock-free and blocking families.
// side selects the move/churn source (0: a→b, 1: b→a).
type mapObjects struct {
	insert func(t *core.Thread, side int, k, v uint64) bool
	remove func(t *core.Thread, side int, k uint64) (uint64, bool)
	lookup func(t *core.Thread, side int, k uint64) (uint64, bool)
	// move performs one keyed cross-map move; fan asks for the §8
	// MoveN fan-out into the other map plus the audit queue (lock-free
	// only; the blocking family degrades to a plain keyed move).
	move      func(t *core.Thread, side int, k uint64, fan bool)
	rebalance func(t *core.Thread) bool // nil: no rebalancer support
	collect   func(r *mapTrialResult)
}

// buildMapPair constructs the objects for one trial.
func buildMapPair(o MapOptions, rt *core.Runtime, setup *core.Thread) mapObjects {
	if o.Impl == Blocking {
		ma := blocking.NewMap(setup, o.Shards, o.Buckets, o.GrowLoad)
		mb := blocking.NewMap(setup, o.Shards, o.Buckets, o.GrowLoad)
		pick := func(side int) (*blocking.Map, *blocking.Map) {
			if side == 0 {
				return ma, mb
			}
			return mb, ma
		}
		return mapObjects{
			insert: func(t *core.Thread, side int, k, v uint64) bool {
				src, _ := pick(side)
				return src.Insert(t, k, v)
			},
			remove: func(t *core.Thread, side int, k uint64) (uint64, bool) {
				src, _ := pick(side)
				return src.Remove(t, k)
			},
			lookup: func(t *core.Thread, side int, k uint64) (uint64, bool) {
				src, _ := pick(side)
				return src.Contains(t, k)
			},
			move: func(t *core.Thread, side int, k uint64, _ bool) {
				src, dst := pick(side)
				src.MoveMap(t, dst, k, k)
			},
			collect: func(*mapTrialResult) {},
		}
	}
	ma := hashmap.NewSharded(setup, o.Shards, o.Buckets, o.GrowLoad)
	mb := hashmap.NewSharded(setup, o.Shards, o.Buckets, o.GrowLoad)
	audit := msqueue.New(setup)
	pick := func(side int) (*hashmap.Map, *hashmap.Map) {
		if side == 0 {
			return ma, mb
		}
		return mb, ma
	}
	return mapObjects{
		insert: func(t *core.Thread, side int, k, v uint64) bool {
			src, _ := pick(side)
			return src.Insert(t, k, v)
		},
		remove: func(t *core.Thread, side int, k uint64) (uint64, bool) {
			src, _ := pick(side)
			return src.Remove(t, k)
		},
		lookup: func(t *core.Thread, side int, k uint64) (uint64, bool) {
			src, _ := pick(side)
			return src.Contains(t, k)
		},
		move: func(t *core.Thread, side int, k uint64, fan bool) {
			src, dst := pick(side)
			if fan {
				// §8 fan-out: the entry leaves src and appears in dst
				// AND the audit queue in one atomic step.
				fanDst := [2]core.Inserter{dst, audit}
				tkeys := [2]uint64{k, 0}
				t.MoveN(src, fanDst[:], k, tkeys[:])
				// Keep the audit queue bounded.
				audit.Dequeue(t)
				return
			}
			t.Move(src, dst, k, k)
		},
		rebalance: func(t *core.Thread) bool {
			return ma.RebalanceStep(t) || mb.RebalanceStep(t)
		},
		collect: func(r *mapTrialResult) {
			ga, miga, sa := ma.Stats()
			gb, migb, sb := mb.Stats()
			eha, ema := ma.ElimStats()
			ehb, emb := mb.ElimStats()
			r.grows = float64(ga + gb)
			r.migrated = float64(miga + migb)
			r.steps = float64(sa + sb)
			r.elimHits = float64(eha + ehb)
			r.elimMisses = float64(ema + emb)
			r.adapt = ma.AdaptStats()
			r.adapt.Add(mb.AdaptStats())
		},
	}
}

func runMapTrial(o MapOptions, trial uint64) mapTrialResult {
	arenaCap := o.ArenaCapacity
	if arenaCap == 0 {
		arenaCap = o.Prefill*8 + o.TotalOps + (1 << 16)
	}
	rt := core.NewRuntime(core.Config{
		MaxThreads:    o.Threads + 2,
		ArenaCapacity: arenaCap,
		Elimination: elim.Config{
			Enable: o.Elimination,
			Slots:  o.ElimSlots,
			Spins:  o.ElimSpins,
		},
		Adaptive: adapt.Config{
			Enable:   o.Adaptive,
			EpochOps: o.AdaptEpochOps,
		},
		Obs: Observe,
	})
	defer harvestObs(rt)
	setup := rt.RegisterThread()
	objs := buildMapPair(o, rt, setup)
	seedRng := xrand.New(o.Seed + trial*1000003)
	keys := uint64(o.Keys)
	// nextKey samples the configured key distribution: uniform, or
	// zipfian with rank 0 the hottest key (one shared immutable Zipf;
	// each thread draws through its own rng).
	var zipf *xrand.Zipf
	if o.Zipf {
		zipf = xrand.NewZipf(keys, o.ZipfTheta)
	}
	nextKey := func(rng *xrand.State) uint64 {
		if zipf != nil {
			return zipf.Next(rng)
		}
		return rng.Uint64() % keys
	}
	for i := 0; i < o.Prefill; i++ {
		objs.insert(setup, 0, nextKey(seedRng), seedRng.Uint64())
		objs.insert(setup, 1, nextKey(seedRng), seedRng.Uint64())
	}

	var stop atomic.Bool
	var rwg sync.WaitGroup
	if o.Rebalancer && objs.rebalance != nil {
		reb := rt.RegisterThread()
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for !stop.Load() {
				if !objs.rebalance(reb) {
					runtime.Gosched()
				}
			}
		}()
	}

	perThread := o.TotalOps / o.Threads
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(o.Threads)
	elapsed := make([]time.Duration, o.Threads)
	workNS := make([]float64, o.Threads)

	for w := 0; w < o.Threads; w++ {
		th := rt.RegisterThread()
		go func(w int, th *core.Thread) {
			defer done.Done()
			if o.Pin {
				runtime.LockOSThread()
				defer runtime.UnlockOSThread()
			}
			rng := xrand.New(o.Seed ^ (uint64(w)+1)*0x9e3779b97f4a7c15 ^ trial)
			mean := o.Contention.workMean()
			sd := mean / workStddevFraction
			var work float64
			start.Wait()
			t0 := time.Now()
			for i := 0; i < perThread; i++ {
				k := nextKey(rng)
				side := 0
				if rng.Uint64()&1 == 0 {
					side = 1
				}
				switch {
				case o.ReadFraction > 0 && int(rng.Uint64()%100) < o.ReadFraction:
					objs.lookup(th, side, k)
				case int(rng.Uint64()%100) < o.MovePercent:
					fan := int(rng.Uint64()%100) < o.FanPercent
					objs.move(th, side, k, fan)
				default:
					switch rng.Uint64() % 3 {
					case 0:
						objs.insert(th, side, k, rng.Uint64())
					case 1:
						objs.remove(th, side, k)
					default:
						objs.lookup(th, side, k)
					}
				}
				if mean > 0 {
					w := rng.NormDuration(mean, sd)
					SpinFor(w)
					work += w
				}
			}
			elapsed[w] = time.Since(t0)
			workNS[w] = work
		}(w, th)
	}
	start.Done()
	done.Wait()
	stop.Store(true)
	rwg.Wait()

	var wall time.Duration
	var totalWork float64
	for w := 0; w < o.Threads; w++ {
		if elapsed[w] > wall {
			wall = elapsed[w]
		}
		totalWork += workNS[w]
	}
	adj := float64(wall.Nanoseconds()) - totalWork/float64(o.Threads)
	if adj < 0 {
		adj = 0
	}
	var res mapTrialResult
	res.adjNS = adj
	objs.collect(&res)
	return res
}
