package harness

import "testing"

func TestYCSBDefaults(t *testing.T) {
	o := YCSBOptions{}.withDefaults()
	if len(o.Tenants) != 3 || o.Tenants[0].Name != "A" || o.Tenants[2].Name != "C" {
		t.Fatalf("default tenants: %+v", o.Tenants)
	}
	if o.PrefillFraction != 50 || o.GrowLoad != 4 {
		t.Fatalf("defaults: %+v", o)
	}
}

// TestRunYCSBSmoke runs the ABC preset end to end: every tenant issues
// operations, the C tenant issues only reads, and the churn tenants
// grow the maps.
func TestRunYCSBSmoke(t *testing.T) {
	r := RunYCSB(YCSBOptions{
		Threads:  3,
		TotalOps: 30000,
		Trials:   2,
		Tenants:  TenantsABC(256),
	})
	if len(r.SamplesNS) != 2 || r.Summary.Mean <= 0 {
		t.Fatalf("bad result: %+v", r.Summary)
	}
	byName := map[string]TenantOps{}
	for _, pt := range r.PerTenant {
		byName[pt.Name] = pt
	}
	a, c := byName["A"], byName["C"]
	if a.Inserts == 0 || a.Removes == 0 || a.Moves == 0 {
		t.Fatalf("A tenant issued no churn: %+v", a)
	}
	if c.Inserts != 0 || c.Removes != 0 || c.Moves != 0 {
		t.Fatalf("C tenant issued writes: %+v", c)
	}
	if c.Reads == 0 {
		t.Fatalf("C tenant idle: %+v", c)
	}
	if r.Grows == 0 {
		t.Fatal("tenant churn never grew the maps")
	}
}

// TestRunYCSBLatency: opting into latency recording yields one
// plausible per-tenant histogram snapshot per tenant, covering every
// operation the tenant issued across all trials.
func TestRunYCSBLatency(t *testing.T) {
	r := RunYCSB(YCSBOptions{
		Threads:  3,
		TotalOps: 30000,
		Trials:   2,
		Tenants:  TenantsABC(256),
		Latency:  true,
	})
	if len(r.Latency) != len(r.PerTenant) {
		t.Fatalf("got %d latency snapshots for %d tenants", len(r.Latency), len(r.PerTenant))
	}
	for i, s := range r.Latency {
		pt := r.PerTenant[i]
		issued := pt.Reads + pt.Inserts + pt.Removes + pt.Moves
		if s.Count != issued {
			t.Errorf("tenant %s: histogram count %d, issued %d ops", pt.Name, s.Count, issued)
		}
		p50, p999 := s.Percentile(0.50), s.Percentile(0.999)
		if p50 <= 0 || p999 < p50 || s.MaxNS < p999 {
			t.Errorf("tenant %s: implausible percentiles p50=%d p999=%d max=%d",
				pt.Name, p50, p999, s.MaxNS)
		}
	}
	// Off by default: no snapshots, no recording cost.
	r2 := RunYCSB(YCSBOptions{Threads: 2, TotalOps: 2000, Tenants: TenantsABC(64)})
	if r2.Latency != nil {
		t.Fatalf("latency snapshots present without opt-in: %+v", r2.Latency)
	}
}

// TestRunYCSBAdaptiveSmoke: the adaptive mixed-tenant cell samples
// epochs while the tenants run.
func TestRunYCSBAdaptiveSmoke(t *testing.T) {
	r := RunYCSB(YCSBOptions{
		Threads:       3,
		TotalOps:      30000,
		Trials:        1,
		Tenants:       TenantsABC(256),
		Adaptive:      true,
		AdaptEpochOps: 256,
	})
	if r.Adapt.Epochs == 0 {
		t.Fatal("adaptive mixed-tenant cell sampled no epochs")
	}
	t.Logf("ycsb adaptive: epochs=%.1f attaches=%.1f", r.Adapt.Epochs, r.Adapt.Attaches)
}
