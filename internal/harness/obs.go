package harness

import (
	"sync"

	"repro/internal/core"
	"repro/internal/obs"
)

// Observe is the observability configuration every harness-built
// runtime inherits. The harness constructs one short-lived runtime per
// trial, so instead of exposing per-trial registries, each trial's
// snapshot (and drained trace) is folded into a package-level aggregate
// that TakeObs returns once the figure has run. composebench sets this
// from its -metrics/-trace flags before dispatching; the zero value
// (everything off) keeps the hot paths on their nil no-op branches.
var Observe obs.Config

var (
	obsMu     sync.Mutex
	obsSnap   obs.Snapshot
	obsEvents []obs.Event
)

// harvestObs folds one runtime's observability state into the package
// aggregate. Call it after a trial quiesces (workers joined) and before
// the runtime is dropped; a disabled runtime contributes nothing.
// Counters from concurrent trials sum; trace events concatenate and are
// re-sorted by timestamp at TakeObs.
func harvestObs(rt *core.Runtime) {
	o := rt.Obs()
	if o == nil {
		return
	}
	var snap obs.Snapshot
	if reg := o.Metrics(); reg != nil {
		snap = reg.Snapshot()
	}
	events := o.Tracer().Drain()
	obsMu.Lock()
	obsSnap.Merge(snap)
	obsEvents = append(obsEvents, events...)
	obsMu.Unlock()
}

// TakeObs returns the aggregate snapshot and trace events harvested
// since the last call, clearing the accumulator. Events are ordered as
// harvested: sorted within each trial, trials appended in completion
// order (trials have independent clocks, so a global re-sort would
// interleave unrelated runs).
func TakeObs() (obs.Snapshot, []obs.Event) {
	obsMu.Lock()
	defer obsMu.Unlock()
	snap, events := obsSnap, obsEvents
	obsSnap, obsEvents = obs.Snapshot{}, nil
	return snap, events
}
