package harness

// This file adds the batched-move scenario: move traffic shaped the
// way batch users produce it — runs of B same-direction moves (a mover
// draining a work batch from one container into another, direction
// re-drawn per run) — issued either through the batched pipeline
// (internal/batch MoveBuffer, one flush per run) or as B independent
// Move calls over the exact same operation stream (Unbatched). Holding
// the stream fixed and toggling only the mechanism isolates what the
// flush amortizes: descriptor churn, hazard publication, retire
// traffic. Batching amortizes; it does not change semantics: every
// move in a flush remains individually linearizable.

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/msqueue"
	"repro/internal/stats"
	"repro/internal/tstack"
	"repro/internal/xrand"
)

// BatchOptions configures one cell of the batched-move scenario.
type BatchOptions struct {
	Threads  int
	TotalOps int // moves issued, distributed evenly over threads
	Trials   int
	// BatchSize is the direction-run length B: moves come in runs of B
	// with the same source and target. <= 1 degenerates to per-move
	// random direction.
	BatchSize int
	// Unbatched issues the same operation stream as B independent Move
	// calls instead of one MoveBuffer flush per run — the baseline the
	// amortization is measured against. (BatchSize <= 1 is always
	// unbatched.)
	Unbatched bool
	// Pair selects the object pairing, as in Options.
	Pair       Pair
	Contention Contention
	// Prefill inserts this many elements into each object before the
	// clock starts.
	Prefill int
	Seed    uint64
	Pin     bool
	// ArenaCapacity overrides the runtime sizing (0 = automatic).
	ArenaCapacity int
}

func (o BatchOptions) withDefaults() BatchOptions {
	if o.Threads <= 0 {
		o.Threads = 1
	}
	if o.TotalOps <= 0 {
		o.TotalOps = 1_000_000
	}
	if o.Trials <= 0 {
		o.Trials = 1
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 1
	}
	if o.Prefill == 0 {
		o.Prefill = 512
	}
	if o.Seed == 0 {
		o.Seed = 0x5eed
	}
	return o
}

// BatchResult aggregates the trials of one batched-move cell.
type BatchResult struct {
	Options   BatchOptions
	SamplesNS []float64
	Summary   stats.Summary
	// Ops is the per-trial move count issued.
	Ops int
	// Moved is the per-trial mean of successful moves.
	Moved float64
	// FastFails is the per-trial mean of moves failed by the prepare
	// phase (zero when BatchSize <= 1: the baseline has no prepare).
	FastFails float64
}

// MeanMS returns the mean adjusted duration in milliseconds.
func (r BatchResult) MeanMS() float64 { return r.Summary.Mean / 1e6 }

// RunMoveBatch executes every trial of one batched-move cell.
func RunMoveBatch(o BatchOptions) BatchResult {
	o = o.withDefaults()
	Calibrate()
	res := BatchResult{Options: o, Ops: o.TotalOps}
	for trial := 0; trial < o.Trials; trial++ {
		ns, moved, ff := runBatchTrial(o, uint64(trial))
		res.SamplesNS = append(res.SamplesNS, ns)
		res.Moved += float64(moved) / float64(o.Trials)
		res.FastFails += float64(ff) / float64(o.Trials)
	}
	res.Summary = stats.Summarize(res.SamplesNS)
	return res
}

func runBatchTrial(o BatchOptions, trial uint64) (adjNS float64, moved, fastFails uint64) {
	arenaCap := o.ArenaCapacity
	if arenaCap == 0 {
		arenaCap = o.Prefill*4 + (1 << 16)
	}
	rt := core.NewRuntime(core.Config{
		MaxThreads:    o.Threads + 1,
		ArenaCapacity: arenaCap,
		Obs:           Observe,
	})
	defer harvestObs(rt)
	setup := rt.RegisterThread()
	var a, b core.MoveReady
	switch o.Pair {
	case QueueQueue:
		a, b = msqueue.New(setup), msqueue.New(setup)
	case StackStack:
		a, b = tstack.New(setup), tstack.New(setup)
	default:
		a, b = msqueue.New(setup), tstack.New(setup)
	}
	seedRng := xrand.New(o.Seed + trial*1000003)
	for i := 0; i < o.Prefill; i++ {
		a.Insert(setup, 0, seedRng.Uint64())
		b.Insert(setup, 0, seedRng.Uint64())
	}

	perThread := o.TotalOps / o.Threads
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(o.Threads)
	elapsed := make([]time.Duration, o.Threads)
	workNS := make([]float64, o.Threads)
	movedBy := make([]uint64, o.Threads)
	ffBy := make([]uint64, o.Threads)

	for w := 0; w < o.Threads; w++ {
		th := rt.RegisterThread()
		go func(w int, th *core.Thread) {
			defer done.Done()
			if o.Pin {
				runtime.LockOSThread()
				defer runtime.UnlockOSThread()
			}
			rng := xrand.New(o.Seed ^ (uint64(w)+1)*0x9e3779b97f4a7c15 ^ trial)
			mean := o.Contention.workMean()
			sd := mean / workStddevFraction
			batched := o.BatchSize > 1 && !o.Unbatched
			var buf *batch.MoveBuffer
			if batched {
				buf = batch.New(th, o.BatchSize)
			}
			runLen := o.BatchSize
			if runLen < 1 {
				runLen = 1
			}
			var work float64
			var ok uint64
			start.Wait()
			t0 := time.Now()
			for i := 0; i < perThread; {
				// One direction run of up to B moves: the same stream
				// whether it commits through a flush or move by move.
				run := runLen
				if rest := perThread - i; run > rest {
					run = rest
				}
				src, dst := a, b
				if rng.Uint64()&1 == 0 {
					src, dst = b, a
				}
				if batched {
					for j := 0; j < run; j++ {
						buf.Add(src, dst, 0, 0)
					}
					for _, r := range buf.Flush() {
						if r.OK {
							ok++
						}
					}
				} else {
					for j := 0; j < run; j++ {
						if _, did := th.Move(src, dst, 0, 0); did {
							ok++
						}
					}
				}
				i += run
				if mean > 0 {
					for j := 0; j < run; j++ {
						w := rng.NormDuration(mean, sd)
						SpinFor(w)
						work += w
					}
				}
			}
			if buf != nil {
				_, _, ffBy[w] = buf.Stats()
			}
			elapsed[w] = time.Since(t0)
			workNS[w] = work
			movedBy[w] = ok
		}(w, th)
	}
	start.Done()
	done.Wait()

	var wall time.Duration
	var totalWork float64
	for w := 0; w < o.Threads; w++ {
		if elapsed[w] > wall {
			wall = elapsed[w]
		}
		totalWork += workNS[w]
		moved += movedBy[w]
		fastFails += ffBy[w]
	}
	adj := float64(wall.Nanoseconds()) - totalWork/float64(o.Threads)
	if adj < 0 {
		adj = 0
	}
	return adj, moved, fastFails
}
