package harness

// This file adds the YCSB-style mixed-tenant cell: several tenants,
// each owning a private key range of the shared maps and running its
// own read/insert/remove/move mix, all measured in one interval. The
// mixes follow the classic YCSB workload letters (update mapped onto
// insert/remove churn, plus a cross-map move share this repository's
// composition focus adds):
//
//	A-like: 50% reads, 20% inserts, 20% removes, 10% moves
//	B-like: 90% reads,  4% inserts,  4% removes,  2% moves
//	C-like: 100% reads
//
// Tenants share the two maps (and their shards), so a churn-heavy
// tenant's contention lands on the same structures a read-mostly
// tenant is scanning — the scenario the adaptive subsystem's per-shard
// controllers are built for: only the shards the hot tenant hammers
// attach elimination or split early, while the cold tenant's shards
// stay on the fast path.

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/elim"
	"repro/internal/hashmap"
	"repro/internal/latency"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// Tenant is one workload class in the mixed-tenant cell. Percentages
// must sum to at most 100; the remainder becomes reads.
type Tenant struct {
	Name string
	// Keys is the size of this tenant's private key range (ranges are
	// laid out consecutively over the shared maps).
	Keys int
	// InsertPct/RemovePct/MovePct are the tenant's operation shares;
	// everything else is a read.
	InsertPct, RemovePct, MovePct int
	// Zipf skews this tenant's key choice inside its range.
	Zipf      bool
	ZipfTheta float64
}

// TenantsABC returns the standard three-tenant preset: one A-like
// churner, one B-like mostly-reader, one C-like pure reader, each over
// keys keys.
func TenantsABC(keys int) []Tenant {
	return []Tenant{
		{Name: "A", Keys: keys, InsertPct: 20, RemovePct: 20, MovePct: 10},
		{Name: "B", Keys: keys, InsertPct: 4, RemovePct: 4, MovePct: 2},
		{Name: "C", Keys: keys},
	}
}

// YCSBOptions configures one mixed-tenant cell. Threads are assigned
// to tenants round-robin (thread w serves Tenants[w % len]).
type YCSBOptions struct {
	Threads  int
	TotalOps int // distributed evenly over threads
	Trials   int
	Tenants  []Tenant
	// Shards/Buckets/GrowLoad shape both maps (defaults as in
	// MapOptions).
	Shards, Buckets, GrowLoad int
	// Elimination/Adaptive configure the contention layers exactly as
	// in MapOptions.
	Elimination          bool
	ElimSlots, ElimSpins int
	Adaptive             bool
	AdaptEpochOps        int
	Contention           Contention
	// Latency switches on per-operation latency recording into striped
	// HDR histograms (package latency), surfaced as per-tenant
	// percentile snapshots in YCSBResult.Latency. Opt-in: recording
	// costs a time.Now() pair per operation, which throughput-focused
	// cells should not pay.
	Latency bool
	// PrefillFraction of each tenant's range is pre-inserted into each
	// map (percent; default 50).
	PrefillFraction int
	Seed            uint64
	Pin             bool
	ArenaCapacity   int
}

func (o YCSBOptions) withDefaults() YCSBOptions {
	if o.Threads <= 0 {
		o.Threads = 1
	}
	if o.TotalOps <= 0 {
		o.TotalOps = 1_000_000
	}
	if o.Trials <= 0 {
		o.Trials = 1
	}
	if len(o.Tenants) == 0 {
		o.Tenants = TenantsABC(2048)
	}
	for i := range o.Tenants {
		if o.Tenants[i].Keys <= 0 {
			o.Tenants[i].Keys = 2048
		}
	}
	if o.Shards <= 0 {
		o.Shards = 2
	}
	if o.Buckets <= 0 {
		o.Buckets = 2
	}
	if o.GrowLoad <= 0 {
		o.GrowLoad = 4
	}
	if o.PrefillFraction <= 0 {
		o.PrefillFraction = 50
	}
	if o.Seed == 0 {
		o.Seed = 0x5eed
	}
	return o
}

// Name renders the cell identity.
func (o YCSBOptions) Name() string {
	s := "ycsb"
	for _, tn := range o.Tenants {
		s += "-" + tn.Name
	}
	if o.Adaptive {
		s += "+adapt"
	}
	if o.Elimination {
		s += "+elim"
	}
	return fmt.Sprintf("%s/t=%d", s, o.Threads)
}

// TenantOps counts one tenant's issued operations per trial.
type TenantOps struct {
	Name                           string
	Reads, Inserts, Removes, Moves uint64
}

// YCSBResult aggregates the trials of one mixed-tenant cell.
type YCSBResult struct {
	Options   YCSBOptions
	SamplesNS []float64
	Summary   stats.Summary
	Ops       int
	// PerTenant sums each tenant's issued operations over all trials.
	PerTenant []TenantOps
	// Grows/Migrated and the contention-layer counters mirror
	// MapResult.
	Grows, Migrated      float64
	ElimHits, ElimMisses float64
	Adapt                AdaptAgg
	// Latency holds one merged histogram snapshot per tenant (over all
	// of the tenant's operations and all trials) when Options.Latency
	// was set; query percentiles with Snapshot.Percentile.
	Latency []latency.Snapshot
}

// MeanMS returns the mean adjusted duration in milliseconds.
func (r YCSBResult) MeanMS() float64 { return r.Summary.Mean / 1e6 }

// RunYCSB executes every trial of one mixed-tenant cell.
func RunYCSB(o YCSBOptions) YCSBResult {
	o = o.withDefaults()
	Calibrate()
	res := YCSBResult{Options: o, Ops: o.TotalOps}
	res.PerTenant = make([]TenantOps, len(o.Tenants))
	for i := range o.Tenants {
		res.PerTenant[i].Name = o.Tenants[i].Name
	}
	if o.Latency {
		res.Latency = make([]latency.Snapshot, len(o.Tenants))
	}
	for trial := 0; trial < o.Trials; trial++ {
		var rec *latency.Recorder
		if o.Latency {
			rec = latency.NewRecorder(o.Threads, len(o.Tenants), 4)
		}
		m := runYCSBTrial(o, uint64(trial), res.PerTenant, rec)
		if rec != nil {
			for i := range o.Tenants {
				res.Latency[i].Merge(rec.MergedTenant(i))
			}
		}
		res.SamplesNS = append(res.SamplesNS, m.adjNS)
		res.Grows += m.grows / float64(o.Trials)
		res.Migrated += m.migrated / float64(o.Trials)
		res.ElimHits += m.elimHits / float64(o.Trials)
		res.ElimMisses += m.elimMisses / float64(o.Trials)
		res.Adapt.add(m.adapt, o.Trials)
	}
	res.Summary = stats.Summarize(res.SamplesNS)
	return res
}

func runYCSBTrial(o YCSBOptions, trial uint64, perTenant []TenantOps, rec *latency.Recorder) mapTrialResult {
	totalKeys := 0
	for _, tn := range o.Tenants {
		totalKeys += tn.Keys
	}
	arenaCap := o.ArenaCapacity
	if arenaCap == 0 {
		arenaCap = totalKeys*4 + o.TotalOps + (1 << 16)
	}
	rt := core.NewRuntime(core.Config{
		MaxThreads:    o.Threads + 1,
		ArenaCapacity: arenaCap,
		Elimination: elim.Config{
			Enable: o.Elimination,
			Slots:  o.ElimSlots,
			Spins:  o.ElimSpins,
		},
		Adaptive: adapt.Config{
			Enable:   o.Adaptive,
			EpochOps: o.AdaptEpochOps,
		},
		Obs: Observe,
	})
	defer harvestObs(rt)
	setup := rt.RegisterThread()
	ma := hashmap.NewSharded(setup, o.Shards, o.Buckets, o.GrowLoad)
	mb := hashmap.NewSharded(setup, o.Shards, o.Buckets, o.GrowLoad)

	// Lay the tenant ranges out consecutively and prefill each.
	base := make([]uint64, len(o.Tenants))
	seedRng := xrand.New(o.Seed + trial*1000003)
	var lo uint64
	for i, tn := range o.Tenants {
		base[i] = lo
		pre := tn.Keys * o.PrefillFraction / 100
		for k := 0; k < pre; k++ {
			key := lo + uint64(k)
			ma.Insert(setup, key, seedRng.Uint64())
			mb.Insert(setup, key, seedRng.Uint64())
		}
		lo += uint64(tn.Keys)
	}

	perThread := o.TotalOps / o.Threads
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(o.Threads)
	elapsed := make([]time.Duration, o.Threads)
	workNS := make([]float64, o.Threads)
	counts := make([]TenantOps, o.Threads)

	for w := 0; w < o.Threads; w++ {
		th := rt.RegisterThread()
		tn := o.Tenants[w%len(o.Tenants)]
		tbase := base[w%len(o.Tenants)]
		go func(w int, th *core.Thread, tn Tenant, tbase uint64) {
			defer done.Done()
			if o.Pin {
				runtime.LockOSThread()
				defer runtime.UnlockOSThread()
			}
			rng := xrand.New(o.Seed ^ (uint64(w)+1)*0x9e3779b97f4a7c15 ^ trial)
			var zipf *xrand.Zipf
			if tn.Zipf {
				zipf = xrand.NewZipf(uint64(tn.Keys), tn.ZipfTheta)
			}
			nextKey := func() uint64 {
				if zipf != nil {
					return tbase + zipf.Next(rng)
				}
				return tbase + rng.Uint64()%uint64(tn.Keys)
			}
			mean := o.Contention.workMean()
			sd := mean / workStddevFraction
			var work float64
			c := &counts[w]
			ti := w % len(o.Tenants)
			start.Wait()
			t0 := time.Now()
			for i := 0; i < perThread; i++ {
				k := nextKey()
				src, dst := ma, mb
				if rng.Uint64()&1 == 0 {
					src, dst = mb, ma
				}
				p := int(rng.Uint64() % 100)
				var opStart time.Time
				if rec != nil {
					opStart = time.Now()
				}
				op := 0
				switch {
				case p < tn.MovePct:
					th.Move(src, dst, k, k)
					c.Moves++
					op = 3
				case p < tn.MovePct+tn.InsertPct:
					src.Insert(th, k, rng.Uint64())
					c.Inserts++
					op = 1
				case p < tn.MovePct+tn.InsertPct+tn.RemovePct:
					src.Remove(th, k)
					c.Removes++
					op = 2
				default:
					src.Contains(th, k)
					c.Reads++
				}
				if rec != nil {
					rec.Record(w, ti, op, time.Since(opStart))
				}
				if mean > 0 {
					w := rng.NormDuration(mean, sd)
					SpinFor(w)
					work += w
				}
			}
			elapsed[w] = time.Since(t0)
			workNS[w] = work
		}(w, th, tn, tbase)
	}
	start.Done()
	done.Wait()

	var wall time.Duration
	var totalWork float64
	for w := 0; w < o.Threads; w++ {
		if elapsed[w] > wall {
			wall = elapsed[w]
		}
		totalWork += workNS[w]
		pt := &perTenant[w%len(o.Tenants)]
		pt.Reads += counts[w].Reads
		pt.Inserts += counts[w].Inserts
		pt.Removes += counts[w].Removes
		pt.Moves += counts[w].Moves
	}
	adj := float64(wall.Nanoseconds()) - totalWork/float64(o.Threads)
	if adj < 0 {
		adj = 0
	}
	ga, miga, _ := ma.Stats()
	gb, migb, _ := mb.Stats()
	eha, ema := ma.ElimStats()
	ehb, emb := mb.ElimStats()
	ast := ma.AdaptStats()
	ast.Add(mb.AdaptStats())
	return mapTrialResult{
		adjNS:      adj,
		grows:      float64(ga + gb),
		migrated:   float64(miga + migb),
		elimHits:   float64(eha + ehb),
		elimMisses: float64(ema + emb),
		adapt:      ast,
	}
}
