// Package harness reproduces the paper's experimental setup (§6):
//
//	"All experiments were based on either two queues, two stacks, or one
//	 queue and one stack. Each thread randomly performed operations from
//	 a set of either just move operations, or just insert/remove
//	 operations, or both move and insert/remove operations. A total of
//	 five million operations were distributed evenly to between one and
//	 sixteen threads and each trial was run fifty times. [...] Two load
//	 distributions were tested, one with high contention and one with low
//	 contention, where each thread did some local work for a variable
//	 amount of time after they had performed an operation [...] picked
//	 from a normal distribution and the work takes around 0.1µs per
//	 operation on average for the high contention distribution and 0.5µs
//	 per operation on the low contention distribution. The total time
//	 [...] excluding the time it took to perform the local work [...]"
//
// Each trial builds a fresh runtime and pair of objects, prefills them,
// releases all threads from a barrier, and reports wall time minus the
// per-thread average of intended local work.
package harness

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/elim"
	"repro/internal/msqueue"
	"repro/internal/stats"
	"repro/internal/tstack"
	"repro/internal/xrand"
)

// Impl selects the synchronization family under test.
type Impl int

const (
	// LockFree is the paper's move-ready lock-free implementation.
	LockFree Impl = iota
	// Blocking is the test-test-and-set baseline.
	Blocking
)

func (i Impl) String() string {
	if i == Blocking {
		return "blocking"
	}
	return "lockfree"
}

// Pair selects the object pairing of the three experiments.
type Pair int

const (
	// QueueQueue: two queues (Figure 3).
	QueueQueue Pair = iota
	// StackStack: two stacks (Figure 4).
	StackStack
	// QueueStack: one queue and one stack (Figure 2).
	QueueStack
)

func (p Pair) String() string {
	switch p {
	case QueueQueue:
		return "queue/queue"
	case StackStack:
		return "stack/stack"
	}
	return "queue/stack"
}

// Mix selects the operation mix.
type Mix int

const (
	// MoveOnly: just move operations.
	MoveOnly Mix = iota
	// InsertRemoveOnly: just insert/remove operations.
	InsertRemoveOnly
	// Mixed: both move and insert/remove operations.
	Mixed
)

func (m Mix) String() string {
	switch m {
	case MoveOnly:
		return "move"
	case InsertRemoveOnly:
		return "insert/remove"
	}
	return "all"
}

// Contention selects the local-work distribution.
type Contention int

const (
	// NoWork: operations back to back (maximum contention).
	NoWork Contention = iota
	// High: ~0.1µs mean local work per operation.
	High
	// Low: ~0.5µs mean local work per operation.
	Low
)

func (c Contention) String() string {
	switch c {
	case High:
		return "high"
	case Low:
		return "low"
	}
	return "none"
}

// workMean returns the mean local-work duration in nanoseconds.
func (c Contention) workMean() float64 {
	switch c {
	case High:
		return 100
	case Low:
		return 500
	}
	return 0
}

// workStddevFraction: the paper specifies a normal distribution but not
// its spread; we use mean/5 (documented assumption).
const workStddevFraction = 5

// Options configures one experiment cell (one point of one figure).
type Options struct {
	Impl       Impl
	Pair       Pair
	Mix        Mix
	Contention Contention
	Threads    int
	TotalOps   int // distributed evenly over threads
	Trials     int
	Backoff    bool
	// BackoffStart/BackoffMax tune the doubling backoff (spin counts);
	// zero selects package backoff defaults, which were chosen the way
	// the paper tunes its baseline.
	BackoffStart, BackoffMax uint32
	// Elimination enables the elimination-backoff contention layer on
	// the lock-free containers (stacks; ignored by queues and the
	// blocking baseline). ElimSlots/ElimSpins tune the array (zero
	// selects package elim defaults).
	Elimination          bool
	ElimSlots, ElimSpins int
	// Prefill inserts this many elements into each object before the
	// clock starts (the paper does not state its prefill; default 512,
	// see EXPERIMENTS.md).
	Prefill int
	Seed    uint64
	// Pin locks worker goroutines to OS threads.
	Pin bool
	// ArenaCapacity overrides the runtime sizing (0 = automatic).
	ArenaCapacity int
}

func (o Options) withDefaults() Options {
	if o.Threads <= 0 {
		o.Threads = 1
	}
	if o.TotalOps <= 0 {
		o.TotalOps = 5_000_000
	}
	if o.Trials <= 0 {
		o.Trials = 1
	}
	if o.Prefill == 0 {
		o.Prefill = 512
	}
	if o.Seed == 0 {
		o.Seed = 0x5eed
	}
	return o
}

// Name renders the cell identity for table rows.
func (o Options) Name() string {
	b := ""
	if o.Backoff {
		b += "+backoff"
	}
	if o.Elimination {
		b += "+elim"
	}
	return fmt.Sprintf("%s/%s/%s%s/work=%s/t=%d", o.Pair, o.Impl, o.Mix, b, o.Contention, o.Threads)
}

// Result is the outcome of running all trials of one cell.
type Result struct {
	Options Options
	// SamplesNS holds per-trial adjusted durations (wall time minus
	// average local work), in nanoseconds.
	SamplesNS []float64
	Summary   stats.Summary
	// Ops is the per-trial operation count actually issued.
	Ops int
	// ElimHits/ElimMisses are per-trial means of the pair's elimination
	// counters (zero when the layer is off or unsupported).
	ElimHits, ElimMisses float64
}

// MeanMS returns the mean adjusted duration in milliseconds.
func (r Result) MeanMS() float64 { return r.Summary.Mean / 1e6 }

// objects abstracts one pairing so the worker loop is shared between
// implementations.
type objects struct {
	insertA func(t *core.Thread, v uint64) bool
	removeA func(t *core.Thread) (uint64, bool)
	insertB func(t *core.Thread, v uint64) bool
	removeB func(t *core.Thread) (uint64, bool)
	moveAB  func(t *core.Thread) bool
	moveBA  func(t *core.Thread) bool
	// elimStats sums the pair's elimination counters (nil: none).
	elimStats func() (hits, misses uint64)
}

// elimStatser is implemented by containers carrying an elimination
// array (currently the Treiber stacks and the sharded map).
type elimStatser interface {
	ElimStats() (hits, misses uint64)
}

// sumElimStats aggregates elimination counters over a pair.
func sumElimStats(a, b core.MoveReady) func() (uint64, uint64) {
	return func() (uint64, uint64) {
		var hits, misses uint64
		for _, o := range []core.MoveReady{a, b} {
			if es, ok := o.(elimStatser); ok {
				h, m := es.ElimStats()
				hits += h
				misses += m
			}
		}
		return hits, misses
	}
}

// build creates the object pair for one trial.
func build(o Options, setup *core.Thread) objects {
	switch o.Impl {
	case LockFree:
		var a, b core.MoveReady
		switch o.Pair {
		case QueueQueue:
			a, b = msqueue.New(setup), msqueue.New(setup)
		case StackStack:
			a, b = tstack.New(setup), tstack.New(setup)
		default:
			a, b = msqueue.New(setup), tstack.New(setup)
		}
		return objects{
			insertA:   func(t *core.Thread, v uint64) bool { return a.Insert(t, 0, v) },
			removeA:   func(t *core.Thread) (uint64, bool) { return a.Remove(t, 0) },
			insertB:   func(t *core.Thread, v uint64) bool { return b.Insert(t, 0, v) },
			removeB:   func(t *core.Thread) (uint64, bool) { return b.Remove(t, 0) },
			moveAB:    func(t *core.Thread) bool { _, ok := t.Move(a, b, 0, 0); return ok },
			moveBA:    func(t *core.Thread) bool { _, ok := t.Move(b, a, 0, 0); return ok },
			elimStats: sumElimStats(a, b),
		}
	default:
		type blk interface {
			blocking.Source
			blocking.Target
		}
		var a, b blk
		mk := func(queue bool) blk {
			if queue {
				return blocking.NewQueue(setup)
			}
			return blocking.NewStack(setup)
		}
		switch o.Pair {
		case QueueQueue:
			a, b = mk(true), mk(true)
		case StackStack:
			a, b = mk(false), mk(false)
		default:
			a, b = mk(true), mk(false)
		}
		return objects{
			insertA: func(t *core.Thread, v uint64) bool { return insertBlk(t, a, v) },
			removeA: func(t *core.Thread) (uint64, bool) { return removeBlk(t, a) },
			insertB: func(t *core.Thread, v uint64) bool { return insertBlk(t, b, v) },
			removeB: func(t *core.Thread) (uint64, bool) { return removeBlk(t, b) },
			moveAB:  func(t *core.Thread) bool { _, ok := blocking.Move(t, a, b, 0, 0); return ok },
			moveBA:  func(t *core.Thread) bool { _, ok := blocking.Move(t, b, a, 0, 0); return ok },
		}
	}
}

func insertBlk(t *core.Thread, o blocking.Target, v uint64) bool {
	switch c := o.(type) {
	case *blocking.Queue:
		return c.Enqueue(t, v)
	case *blocking.Stack:
		return c.Push(t, v)
	}
	return false
}

func removeBlk(t *core.Thread, o blocking.Source) (uint64, bool) {
	switch c := o.(type) {
	case *blocking.Queue:
		return c.Dequeue(t)
	case *blocking.Stack:
		return c.Pop(t)
	}
	return 0, false
}

// Run executes every trial of one cell and returns the aggregated
// result.
func Run(o Options) Result {
	o = o.withDefaults()
	Calibrate()
	res := Result{Options: o, Ops: o.TotalOps}
	for trial := 0; trial < o.Trials; trial++ {
		ns, hits, misses := runTrial(o, uint64(trial))
		res.SamplesNS = append(res.SamplesNS, ns)
		res.ElimHits += float64(hits) / float64(o.Trials)
		res.ElimMisses += float64(misses) / float64(o.Trials)
	}
	res.Summary = stats.Summarize(res.SamplesNS)
	return res
}

// runTrial performs one timed run and returns adjusted nanoseconds plus
// the trial's elimination counters.
func runTrial(o Options, trial uint64) (adjNS float64, elimHits, elimMisses uint64) {
	arenaCap := o.ArenaCapacity
	if arenaCap == 0 {
		arenaCap = o.Prefill*4 + o.TotalOps/2 + (1 << 16)
	}
	rt := core.NewRuntime(core.Config{
		MaxThreads:    o.Threads + 1,
		ArenaCapacity: arenaCap,
		Elimination: elim.Config{
			Enable: o.Elimination,
			Slots:  o.ElimSlots,
			Spins:  o.ElimSpins,
		},
		Obs: Observe,
	})
	defer harvestObs(rt)
	setup := rt.RegisterThread()
	objs := build(o, setup)
	seedRng := xrand.New(o.Seed + trial*1000003)
	for i := 0; i < o.Prefill; i++ {
		objs.insertA(setup, seedRng.Uint64())
		objs.insertB(setup, seedRng.Uint64())
	}

	perThread := o.TotalOps / o.Threads
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(o.Threads)
	elapsed := make([]time.Duration, o.Threads)
	workNS := make([]float64, o.Threads)

	for w := 0; w < o.Threads; w++ {
		th := rt.RegisterThread()
		go func(w int, th *core.Thread) {
			defer done.Done()
			if o.Pin {
				runtime.LockOSThread()
				defer runtime.UnlockOSThread()
			}
			if o.Backoff {
				th.EnableBackoff(o.BackoffStart, o.BackoffMax)
			}
			rng := xrand.New(o.Seed ^ (uint64(w)+1)*0x9e3779b97f4a7c15 ^ trial)
			mean := o.Contention.workMean()
			sd := mean / workStddevFraction
			var work float64
			start.Wait()
			t0 := time.Now()
			for i := 0; i < perThread; i++ {
				doOp(objs, th, rng, o.Mix)
				if mean > 0 {
					w := rng.NormDuration(mean, sd)
					SpinFor(w)
					work += w
				}
			}
			elapsed[w] = time.Since(t0)
			workNS[w] = work
		}(w, th)
	}
	start.Done()
	done.Wait()

	var wall time.Duration
	var totalWork float64
	for w := 0; w < o.Threads; w++ {
		if elapsed[w] > wall {
			wall = elapsed[w]
		}
		totalWork += workNS[w]
	}
	adj := float64(wall.Nanoseconds()) - totalWork/float64(o.Threads)
	if adj < 0 {
		adj = 0
	}
	if objs.elimStats != nil {
		elimHits, elimMisses = objs.elimStats()
	}
	return adj, elimHits, elimMisses
}

// doOp issues one random operation per the mix.
func doOp(objs objects, th *core.Thread, rng *xrand.State, mix Mix) {
	switch mix {
	case MoveOnly:
		if rng.Uint64()&1 == 0 {
			objs.moveAB(th)
		} else {
			objs.moveBA(th)
		}
	case InsertRemoveOnly:
		switch rng.Uint64() & 3 {
		case 0:
			objs.insertA(th, rng.Uint64())
		case 1:
			objs.removeA(th)
		case 2:
			objs.insertB(th, rng.Uint64())
		default:
			objs.removeB(th)
		}
	default: // Mixed: both sets, uniformly over six operations
		switch rng.Uint64() % 6 {
		case 0:
			objs.insertA(th, rng.Uint64())
		case 1:
			objs.removeA(th)
		case 2:
			objs.insertB(th, rng.Uint64())
		case 3:
			objs.removeB(th)
		case 4:
			objs.moveAB(th)
		default:
			objs.moveBA(th)
		}
	}
}
