package harness

// This file adds the composed-operation scenario: the >2-object
// compositions the unified k-word CAS engine opens up — SwapHeads over
// k stacks, TransferN between two maps, DrainN between a queue and a
// stack — run under contention alongside the plain operations they
// compose with. The harness validates token conservation after every
// trial: composed operations move elements, never create or destroy
// them.

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/hashmap"
	"repro/internal/msqueue"
	"repro/internal/stats"
	"repro/internal/tstack"
	"repro/internal/xrand"
)

// ComposedOp selects which composition a cell exercises.
type ComposedOp int

const (
	// SwapOp rotates the heads of K stacks with tstack.SwapHeads while
	// other threads push and pop the same stacks.
	SwapOp ComposedOp = iota
	// TransferOp moves K key pairs between two maps with core.TransferN
	// while other threads insert and remove the same key space.
	TransferOp
	// DrainOp drains runs of K elements queue→stack with core.DrainN,
	// against reverse Move traffic.
	DrainOp
)

func (op ComposedOp) String() string {
	switch op {
	case SwapOp:
		return "swap"
	case TransferOp:
		return "transfer"
	case DrainOp:
		return "drain"
	}
	return "?"
}

// ComposedOptions configures one composed-operation cell.
type ComposedOptions struct {
	Op       ComposedOp
	Threads  int
	TotalOps int // composed operations issued, distributed over threads
	Trials   int
	// K is the composition width: stacks rotated, key pairs transferred,
	// elements drained per call.
	K       int
	Prefill int
	Seed    uint64
	Pin     bool
}

func (o ComposedOptions) withDefaults() ComposedOptions {
	if o.Threads <= 0 {
		o.Threads = 1
	}
	if o.TotalOps <= 0 {
		o.TotalOps = 100_000
	}
	if o.Trials <= 0 {
		o.Trials = 1
	}
	if o.K <= 0 {
		o.K = 3
	}
	if o.Prefill <= 0 {
		o.Prefill = 256
	}
	if o.Seed == 0 {
		o.Seed = 0x5eed
	}
	return o
}

// ComposedResult aggregates the trials of one composed-operation cell.
type ComposedResult struct {
	Options   ComposedOptions
	SamplesNS []float64
	Summary   stats.Summary
	// Succeeded is the per-trial mean of composed calls that committed.
	Succeeded float64
}

// MeanMS returns the mean duration in milliseconds.
func (r ComposedResult) MeanMS() float64 { return r.Summary.Mean / 1e6 }

// RunComposed executes every trial of one composed-operation cell,
// panicking on any conservation violation.
func RunComposed(o ComposedOptions) ComposedResult {
	o = o.withDefaults()
	res := ComposedResult{Options: o}
	for trial := 0; trial < o.Trials; trial++ {
		ns, okCount := runComposedTrial(o, uint64(trial))
		res.SamplesNS = append(res.SamplesNS, ns)
		res.Succeeded += float64(okCount) / float64(o.Trials)
	}
	res.Summary = stats.Summarize(res.SamplesNS)
	return res
}

func runComposedTrial(o ComposedOptions, trial uint64) (ns float64, okCount uint64) {
	rt := core.NewRuntime(core.Config{
		MaxThreads:    o.Threads + 1,
		ArenaCapacity: o.Prefill*8 + (1 << 16),
		Obs:           Observe,
	})
	defer harvestObs(rt)
	setup := rt.RegisterThread()
	seed := o.Seed + trial*1000003

	var body func(w int, th *core.Thread, per int) uint64
	var verify func()

	switch o.Op {
	case SwapOp:
		stacks := make([]*tstack.Stack, o.K)
		for i := range stacks {
			stacks[i] = tstack.New(setup)
		}
		total := 0
		for i, s := range stacks {
			for j := 0; j < o.Prefill; j++ {
				s.Push(setup, uint64(i*o.Prefill+j))
				total++
			}
		}
		body = func(w int, th *core.Thread, per int) uint64 {
			rng := xrand.New(seed ^ (uint64(w)+1)*0x9e3779b97f4a7c15)
			var ok uint64
			for i := 0; i < per; i++ {
				if w%2 == 0 {
					if tstack.SwapHeads(th, stacks...) {
						ok++
					}
				} else {
					// Churn: pop one stack, push another, keeping totals.
					from := stacks[rng.Uint64()%uint64(o.K)]
					to := stacks[rng.Uint64()%uint64(o.K)]
					if v, did := from.Pop(th); did {
						for !to.Push(th, v) {
						}
						ok++
					}
				}
			}
			return ok
		}
		verify = func() {
			got := 0
			for _, s := range stacks {
				got += s.Len(setup)
			}
			if got != total {
				panic(fmt.Sprintf("harness: swap cell lost tokens: %d != %d", got, total))
			}
		}

	case TransferOp:
		src := hashmap.New(setup, 512)
		dst := hashmap.New(setup, 512)
		keys := o.Prefill
		for k := 1; k <= keys; k++ {
			src.Insert(setup, uint64(k), uint64(k)*10)
		}
		body = func(w int, th *core.Thread, per int) uint64 {
			rng := xrand.New(seed ^ (uint64(w)+1)*0x9e3779b97f4a7c15)
			skeys := make([]uint64, o.K)
			tkeys := make([]uint64, o.K)
			var ok uint64
			for i := 0; i < per; i++ {
				a, b := src, dst
				if rng.Uint64()&1 == 0 {
					a, b = dst, src
				}
				base := rng.Uint64()%uint64(keys) + 1
				independent := true
				for j := range skeys {
					skeys[j] = (base+uint64(j)*7)%uint64(keys) + 1
					tkeys[j] = skeys[j]
					for l := 0; l < j; l++ {
						if skeys[l] == skeys[j] ||
							a.SameChain(skeys[l], skeys[j]) || b.SameChain(tkeys[l], tkeys[j]) {
							independent = false
						}
					}
				}
				if !independent {
					continue
				}
				if th.TransferN(a, b, skeys, tkeys, nil) {
					ok++
				}
			}
			return ok
		}
		verify = func() {
			got := 0
			for k := 1; k <= keys; k++ {
				_, inSrc := src.Contains(setup, uint64(k))
				_, inDst := dst.Contains(setup, uint64(k))
				if inSrc && inDst {
					panic(fmt.Sprintf("harness: key %d visible in both maps", k))
				}
				if inSrc || inDst {
					got++
				}
			}
			if got != keys {
				panic(fmt.Sprintf("harness: transfer cell lost keys: %d != %d", got, keys))
			}
		}

	case DrainOp:
		q := msqueue.New(setup)
		s := tstack.New(setup)
		for j := 0; j < o.Prefill; j++ {
			q.Enqueue(setup, uint64(j))
		}
		body = func(w int, th *core.Thread, per int) uint64 {
			out := make([]uint64, o.K)
			var ok uint64
			for i := 0; i < per; i++ {
				if w%2 == 0 {
					ok += uint64(th.DrainN(q, s, 0, 0, o.K, out))
				} else if _, did := th.Move(s, q, 0, 0); did {
					ok++
				}
			}
			return ok
		}
		verify = func() {
			if got := q.Len(setup) + s.Len(setup); got != o.Prefill {
				panic(fmt.Sprintf("harness: drain cell lost tokens: %d != %d", got, o.Prefill))
			}
		}
	}

	perThread := o.TotalOps / o.Threads
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(o.Threads)
	okBy := make([]uint64, o.Threads)
	for w := 0; w < o.Threads; w++ {
		th := rt.RegisterThread()
		go func(w int, th *core.Thread) {
			defer done.Done()
			if o.Pin {
				runtime.LockOSThread()
				defer runtime.UnlockOSThread()
			}
			start.Wait()
			okBy[w] = body(w, th, perThread)
			th.FlushMemory()
		}(w, th)
	}
	t0 := time.Now()
	start.Done()
	done.Wait()
	wall := time.Since(t0)
	verify()
	for _, n := range okBy {
		okCount += n
	}
	return float64(wall.Nanoseconds()), okCount
}
