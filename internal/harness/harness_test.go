package harness

import (
	"testing"
	"time"
)

func smallOpts(impl Impl, pair Pair, mix Mix) Options {
	return Options{
		Impl: impl, Pair: pair, Mix: mix,
		Contention: NoWork,
		Threads:    2,
		TotalOps:   20000,
		Trials:     2,
		Prefill:    64,
	}
}

func TestRunAllCells(t *testing.T) {
	for _, impl := range []Impl{LockFree, Blocking} {
		for _, pair := range []Pair{QueueQueue, StackStack, QueueStack} {
			for _, mix := range []Mix{MoveOnly, InsertRemoveOnly, Mixed} {
				o := smallOpts(impl, pair, mix)
				r := Run(o)
				if len(r.SamplesNS) != o.Trials {
					t.Fatalf("%s: %d samples", o.Name(), len(r.SamplesNS))
				}
				if r.Summary.Mean <= 0 {
					t.Fatalf("%s: non-positive mean %f", o.Name(), r.Summary.Mean)
				}
				if r.MeanMS() <= 0 {
					t.Fatalf("%s: MeanMS", o.Name())
				}
			}
		}
	}
}

func TestRunWithBackoffAndContention(t *testing.T) {
	for _, c := range []Contention{High, Low} {
		o := smallOpts(LockFree, QueueStack, Mixed)
		o.Contention = c
		o.Backoff = true
		o.TotalOps = 5000
		r := Run(o)
		if r.Summary.Mean <= 0 {
			t.Fatalf("contention %s: mean %f", c, r.Summary.Mean)
		}
	}
}

func TestWorkSubtractionReducesReportedTime(t *testing.T) {
	// With heavy local work, adjusted time must be far below wall time
	// per op count; indirectly check by comparing to a no-work run of
	// the same size: adjusted(work) should not be wildly larger.
	base := smallOpts(LockFree, QueueQueue, InsertRemoveOnly)
	base.TotalOps = 20000
	base.Trials = 3
	noWork := Run(base)
	withWork := base
	withWork.Contention = Low
	ww := Run(withWork)
	if ww.Summary.Mean > noWork.Summary.Mean*50+5e6 {
		t.Fatalf("work subtraction ineffective: no-work %.2fms vs with-work %.2fms",
			noWork.MeanMS(), ww.MeanMS())
	}
}

func TestCalibration(t *testing.T) {
	Calibrate()
	if NsPerIteration() <= 0 {
		t.Fatal("calibration produced non-positive cost")
	}
	// SpinFor should take very roughly the requested time for a large
	// request (loose factor-20 sanity bound; CI machines are noisy).
	const ns = 5e6
	t0 := nowNS()
	SpinFor(ns)
	el := nowNS() - t0
	if el < ns/20 || el > ns*20 {
		t.Fatalf("SpinFor(%v ns) took %v ns", ns, el)
	}
}

func TestOptionNames(t *testing.T) {
	o := smallOpts(Blocking, StackStack, MoveOnly)
	o.Backoff = true
	name := o.Name()
	for _, want := range []string{"stack/stack", "blocking", "move", "+backoff", "t=2"} {
		if !contains(name, want) {
			t.Fatalf("Name %q missing %q", name, want)
		}
	}
	if QueueQueue.String() != "queue/queue" || High.String() != "high" ||
		LockFree.String() != "lockfree" || Mixed.String() != "all" {
		t.Fatal("stringers broken")
	}
}

func TestDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.TotalOps != 5_000_000 || o.Trials != 1 || o.Threads != 1 || o.Prefill != 512 {
		t.Fatalf("defaults: %+v", o)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func nowNS() float64 {
	return float64(time.Now().UnixNano())
}

// TestElimSweepScenario runs the elimination on/off sweep on a small
// configuration: every cell must measure, the on-runs must carry
// elimination stats wiring, and the off-runs must report zero hits.
func TestElimSweepScenario(t *testing.T) {
	cells := RunElimSweep(Options{
		Mix:        InsertRemoveOnly,
		Contention: NoWork,
		TotalOps:   20000,
		Trials:     1,
		Prefill:    64,
	}, []int{1, 2})
	if len(cells) != 2 {
		t.Fatalf("cells=%d", len(cells))
	}
	for _, c := range cells {
		if c.Off.Summary.Mean <= 0 || c.On.Summary.Mean <= 0 {
			t.Fatalf("t=%d: empty measurement", c.Threads)
		}
		if c.Off.ElimHits != 0 || c.Off.ElimMisses != 0 {
			t.Fatalf("t=%d: off-run reported elimination activity", c.Threads)
		}
		if !c.On.Options.Elimination || c.On.Options.Name() == c.Off.Options.Name() {
			t.Fatalf("t=%d: on-run not elimination-enabled", c.Threads)
		}
		if c.On.Options.Pair != StackStack {
			t.Fatalf("t=%d: sweep must default to stack/stack", c.Threads)
		}
	}
}
