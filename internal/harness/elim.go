package harness

// This file adds the elimination-backoff scenario: the §6
// high-contention stack/stack cell — the configuration the paper's
// Figure 4 shows collapsing under contention — swept across thread
// counts with the elimination layer off and on, so the layer's effect
// (and its hit rate) lands in one comparable table.

// ElimSweepCell pairs the elimination-off and -on runs of one thread
// count of the sweep.
type ElimSweepCell struct {
	Threads int
	Off, On Result
}

// HitRate returns the on-run's eliminated fraction of operations
// (hits / total ops), in [0, 1].
func (c ElimSweepCell) HitRate() float64 {
	if c.On.Ops == 0 {
		return 0
	}
	return c.On.ElimHits / float64(c.On.Ops)
}

// Speedup returns mean(off) / mean(on): > 1 means elimination helped.
func (c ElimSweepCell) Speedup() float64 {
	if c.On.Summary.Mean == 0 {
		return 0
	}
	return c.Off.Summary.Mean / c.On.Summary.Mean
}

// RunElimSweep runs base (conventionally the stack/stack pairing under
// the high-contention distribution) at every thread count, with
// elimination off and on, holding everything else fixed. Zero-valued
// base fields keep the scenario's defaults: stack/stack, lock-free,
// insert/remove mix, high contention.
func RunElimSweep(base Options, threads []int) []ElimSweepCell {
	base.Impl = LockFree
	if base.Pair == QueueQueue {
		base.Pair = StackStack
	}
	if len(threads) == 0 {
		threads = []int{1, 2, 4, 8, 16}
	}
	cells := make([]ElimSweepCell, 0, len(threads))
	for _, th := range threads {
		o := base
		o.Threads = th
		o.Elimination = false
		off := Run(o)
		o.Elimination = true
		on := Run(o)
		cells = append(cells, ElimSweepCell{Threads: th, Off: off, On: on})
	}
	return cells
}
