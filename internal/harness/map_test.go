package harness

import "testing"

func TestMapChurnDefaults(t *testing.T) {
	o := MapOptions{}.withDefaults()
	if o.Threads != 1 || o.Trials != 1 || o.Keys != 4096 || o.GrowLoad != 4 ||
		o.MovePercent != 40 || o.Prefill != 512 {
		t.Fatalf("defaults: %+v", o)
	}
}

// TestRunMapChurnSmoke runs one small cell end to end and checks the
// scenario actually measured what it promises: samples recorded, and
// grows with MoveN-migrated entries inside the measured interval.
func TestRunMapChurnSmoke(t *testing.T) {
	r := RunMapChurn(MapOptions{
		Threads:    2,
		TotalOps:   20000,
		Trials:     2,
		Keys:       512,
		Rebalancer: true,
	})
	if len(r.SamplesNS) != 2 {
		t.Fatalf("samples=%d want 2", len(r.SamplesNS))
	}
	if r.Summary.Mean <= 0 {
		t.Fatalf("mean=%v", r.Summary.Mean)
	}
	if r.Grows == 0 || r.Migrated == 0 {
		t.Fatalf("grows=%v migrated=%v: the churn never grew the maps", r.Grows, r.Migrated)
	}
	// Steps can be zero on a single-CPU box: the thread that seals a
	// shard usually drains it before the rebalancer gets scheduled.
	t.Logf("grows=%.1f migrated=%.1f rebalance-steps=%.1f", r.Grows, r.Migrated, r.Steps)
}

// TestRunMapChurnZipfSmoke runs the skewed cell: zipfian keys
// concentrate churn on a few hot keys (and so hot shards), and the
// scenario must still measure cleanly.
func TestRunMapChurnZipfSmoke(t *testing.T) {
	r := RunMapChurn(MapOptions{
		Threads:    2,
		TotalOps:   20000,
		Trials:     2,
		Keys:       512,
		Zipf:       true,
		Rebalancer: true,
	})
	if len(r.SamplesNS) != 2 {
		t.Fatalf("samples=%d want 2", len(r.SamplesNS))
	}
	if r.Summary.Mean <= 0 {
		t.Fatalf("mean=%v", r.Summary.Mean)
	}
	if r.Grows == 0 {
		t.Fatal("skewed churn never grew the maps")
	}
	t.Logf("zipf cell: grows=%.1f migrated=%.1f", r.Grows, r.Migrated)
}

// TestRunMapChurnElimSmoke: the elimination-enabled cell must run and
// report its counters (hits need contention luck; misses are certain
// once any insert parks mid-grow, so only sanity is asserted).
func TestRunMapChurnElimSmoke(t *testing.T) {
	r := RunMapChurn(MapOptions{
		Threads:     2,
		TotalOps:    20000,
		Trials:      1,
		Keys:        256,
		Elimination: true,
	})
	if len(r.SamplesNS) != 1 || r.Summary.Mean <= 0 {
		t.Fatalf("bad result: %+v", r.Summary)
	}
	t.Logf("elim cell: hits=%.1f misses=%.1f", r.ElimHits, r.ElimMisses)
}

// TestRunMapChurnBlockingSmoke: the lock-striped blocking baseline
// runs the same keyed cell (fan-outs degrade to plain keyed moves).
func TestRunMapChurnBlockingSmoke(t *testing.T) {
	r := RunMapChurn(MapOptions{
		Impl:     Blocking,
		Threads:  2,
		TotalOps: 20000,
		Trials:   2,
		Keys:     512,
	})
	if len(r.SamplesNS) != 2 || r.Summary.Mean <= 0 {
		t.Fatalf("bad result: %+v", r.Summary)
	}
	if r.Grows != 0 || r.Migrated != 0 {
		t.Fatalf("blocking cell reported lock-free grow stats: %+v", r)
	}
}

// TestRunMapChurnAdaptiveSmoke: the adaptive cell completes and its
// controllers sample epochs (tiny epochs so 20k ops cross many).
func TestRunMapChurnAdaptiveSmoke(t *testing.T) {
	r := RunMapChurn(MapOptions{
		Threads:       2,
		TotalOps:      20000,
		Trials:        1,
		Keys:          256,
		Adaptive:      true,
		AdaptEpochOps: 256,
	})
	if len(r.SamplesNS) != 1 || r.Summary.Mean <= 0 {
		t.Fatalf("bad result: %+v", r.Summary)
	}
	if r.Adapt.Epochs == 0 {
		t.Fatal("adaptive cell sampled no epochs")
	}
	t.Logf("adaptive cell: epochs=%.1f grows=%.1f attaches=%.1f window±=%.1f/%.1f",
		r.Adapt.Epochs, r.Grows, r.Adapt.Attaches, r.Adapt.WindowGrows, r.Adapt.WindowShrinks)
}
