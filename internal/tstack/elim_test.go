package tstack

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/elim"
	"repro/internal/linearize"
	"repro/internal/xrand"
)

// newElimRT builds a runtime with elimination enabled and a generous
// parking window (single-CPU hosts need the partner to get scheduled).
func newElimRT(spins int) *core.Runtime {
	return core.NewRuntime(core.Config{
		MaxThreads:    16,
		ArenaCapacity: 1 << 18,
		DescCapacity:  1 << 14,
		Elimination:   elim.Config{Enable: true, Slots: 2, Spins: spins},
	})
}

// TestElimDisabledByDefault: without the config knob no array is
// attached and the elimination paths are inert.
func TestElimDisabledByDefault(t *testing.T) {
	rt := newRT()
	th := rt.RegisterThread()
	s := New(th)
	if s.ElimArray() != nil {
		t.Fatal("elimination array attached without Config.Elimination.Enable")
	}
	if s.tryElimPush(th, 1) {
		t.Fatal("tryElimPush must miss when disabled")
	}
	if _, ok := s.tryElimPop(th); ok {
		t.Fatal("tryElimPop must miss when disabled")
	}
	if h, m := s.ElimStats(); h != 0 || m != 0 {
		t.Fatal("stats must stay zero when disabled")
	}
}

// TestElimExchangeThroughStack: a parked push pairs with a pop on the
// same stack and the LIFO contents are untouched.
func TestElimExchangeThroughStack(t *testing.T) {
	rt := newElimRT(1 << 22)
	th := rt.RegisterThread()
	th2 := rt.RegisterThread()
	s := New(th)
	s.Push(th, 1) // pre-existing content must survive the exchange

	pushed := make(chan bool)
	go func() {
		// Park directly: this is exactly what Push does after a lost
		// CAS; parking through the internal hook keeps the test
		// deterministic (a real lost CAS needs contention timing).
		pushed <- s.tryElimPush(th2, 42)
	}()
	var v uint64
	var ok bool
	for i := 0; i < 1<<24; i++ {
		if v, ok = s.tryElimPop(th); ok {
			break
		}
		runtime.Gosched()
	}
	if !ok || v != 42 {
		t.Fatalf("elim pop: %d %v", v, ok)
	}
	if !<-pushed {
		t.Fatal("parker must observe the exchange")
	}
	if hits, _ := s.ElimStats(); hits != 2 {
		t.Fatalf("hits=%d want 2", hits)
	}
	if v, ok := s.Pop(th); !ok || v != 1 {
		t.Fatalf("stack contents disturbed: %d %v", v, ok)
	}
	if s.Len(th) != 0 {
		t.Fatal("stack must be empty")
	}
}

// TestElimPopFromEmptyTakesParkedPush: an empty-top pop consumes a
// parked concurrent push instead of reporting empty.
func TestElimPopFromEmptyTakesParkedPush(t *testing.T) {
	rt := newElimRT(1 << 22)
	th := rt.RegisterThread()
	th2 := rt.RegisterThread()
	s := New(th)
	pushed := make(chan bool)
	go func() {
		pushed <- s.tryElimPush(th2, 9)
	}()
	var v uint64
	var ok bool
	for i := 0; i < 1<<24 && !ok; i++ {
		v, ok = s.Pop(th) // empty top → elimination path
		runtime.Gosched()
	}
	if !ok || v != 9 {
		t.Fatalf("pop: %d %v", v, ok)
	}
	if !<-pushed {
		t.Fatal("parker must observe the exchange")
	}
}

// moveProbe adapts a closure into a move source, so a test can run
// assertions on a thread that is provably mid-move (t.desc set by
// core.Move before Remove is called).
type moveProbe struct {
	fn func(t *core.Thread) (uint64, bool)
}

func (p moveProbe) Remove(t *core.Thread, _ uint64) (uint64, bool) { return p.fn(t) }

// TestElimBypassedDuringMove enforces the composition rule: a thread
// with MoveInFlight() never parks in nor takes from an elimination
// array, even when a parked offer is sitting there — a move's
// linearization must go through its DCAS descriptor.
func TestElimBypassedDuringMove(t *testing.T) {
	rt := newElimRT(1 << 26)
	th := rt.RegisterThread()
	parker := rt.RegisterThread()
	s := New(th)
	dst := New(th)

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Keep an offer parked for (nearly) the whole test; re-park on
		// the rare window expiry.
		for !stop.Load() {
			if s.tryElimPush(parker, 1234) {
				return // taken: only the post-move pop may do that
			}
		}
	}()

	// Wait until the offer is visible to an ungated observer.
	for {
		if _, ok := s.ElimArray().Peek(0, 0, true); ok {
			break
		}
		runtime.Gosched()
	}

	hitsBefore, _ := s.ElimStats()
	inMove := false
	probed := 0
	probe := moveProbe{fn: func(mt *core.Thread) (uint64, bool) {
		inMove = mt.MoveInFlight()
		// With an offer provably parked, the gated paths must refuse,
		// repeatedly.
		for i := 0; i < 100; i++ {
			if _, ok := s.ElimArray().Peek(0, 0, true); !ok {
				continue // between re-parks; don't count this round
			}
			probed++
			if _, ok := s.tryElimPop(mt); ok {
				t.Error("tryElimPop succeeded inside a move")
			}
			if s.tryElimPush(mt, 5678) {
				t.Error("tryElimPush parked inside a move")
			}
		}
		return 0, false // abort the move cleanly
	}}
	if _, ok := th.Move(probe, dst, 0, 0); ok {
		t.Fatal("probe move must fail")
	}
	if !inMove {
		t.Fatal("probe did not run inside a move")
	}
	if probed == 0 {
		t.Fatal("offer was never parked during the probe")
	}
	hitsAfter, _ := s.ElimStats()
	if hitsAfter != hitsBefore {
		t.Fatalf("elimination hits moved %d→%d during a move", hitsBefore, hitsAfter)
	}

	// Outside the move the very same offer is takeable — the misses
	// above were the gate, not staleness.
	var v uint64
	var ok bool
	for i := 0; i < 1<<24 && !ok; i++ {
		if v, ok = s.tryElimPop(th); !ok {
			runtime.Gosched()
		}
	}
	if !ok || v != 1234 {
		t.Fatalf("post-move take: %d %v", v, ok)
	}
	stop.Store(true)
	wg.Wait()
}

// TestElimLinearizableLIFO records concurrent histories over two
// elimination-enabled stacks — pushes and pops that try the elimination
// array first, plus atomic moves — and checks every history against the
// sequential two-stack model. Eliminated pairs must read as valid LIFO
// histories.
func TestElimLinearizableLIFO(t *testing.T) {
	const workers = 4
	const opsPer = 12 // 4*12 + a few moves < linearize.MaxOps
	totalHits := uint64(0)
	for round := 0; round < 60; round++ {
		rt := newElimRT(4096)
		setup := rt.RegisterThread()
		a, b := New(setup), New(setup)

		var ts atomic.Int64
		var mu sync.Mutex
		var hist []linearize.Op
		record := func(th int, name string, arg, ret uint64, ok bool, inv, retTS int64) {
			mu.Lock()
			hist = append(hist, linearize.Op{
				Thread: th, Name: name, Arg: arg, Ret: ret, RetOK: ok,
				Invoke: inv, Return: retTS,
			})
			mu.Unlock()
		}

		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			th := rt.RegisterThread()
			go func(w int, th *core.Thread) {
				defer wg.Done()
				rng := xrand.New(uint64(round*100 + w))
				for i := 0; i < opsPer; i++ {
					sx, name := a, "A"
					if rng.Uint64()&1 == 0 {
						sx, name = b, "B"
					}
					switch rng.Uint64() % 5 {
					case 0, 1: // elimination-first push
						v := uint64(w+1)<<16 | uint64(i+1)
						inv := ts.Add(1)
						if !sx.tryElimPush(th, v) {
							sx.Push(th, v)
						}
						record(w, "ins"+name, v, 0, true, inv, ts.Add(1))
					case 2, 3: // elimination-first pop
						inv := ts.Add(1)
						v, ok := sx.tryElimPop(th)
						if !ok {
							v, ok = sx.Pop(th)
						}
						record(w, "rem"+name, 0, v, ok, inv, ts.Add(1))
					default: // atomic move (bypasses elimination)
						src, dst, mv := a, b, "moveAB"
						if name == "B" {
							src, dst, mv = b, a, "moveBA"
						}
						inv := ts.Add(1)
						v, ok := th.Move(src, dst, 0, 0)
						record(w, mv, 0, v, ok, inv, ts.Add(1))
					}
				}
			}(w, th)
		}
		wg.Wait()

		model := linearize.PairModel{AKind: linearize.LIFO, BKind: linearize.LIFO}
		if !linearize.Check(model, hist) {
			t.Fatalf("round %d: history not linearizable:\n%v", round, hist)
		}
		ha, _ := a.ElimStats()
		hb, _ := b.ElimStats()
		totalHits += ha + hb
	}
	if totalHits == 0 {
		t.Fatal("no elimination hits in any round; the test exercised nothing")
	}
	t.Logf("eliminated operations across rounds: %d", totalHits)
}
