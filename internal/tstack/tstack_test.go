package tstack

import (
	"sync"
	"testing"

	"repro/internal/core"
)

func newRT() *core.Runtime {
	return core.NewRuntime(core.Config{MaxThreads: 16, ArenaCapacity: 1 << 18, DescCapacity: 1 << 14})
}

func TestPushPopLIFO(t *testing.T) {
	rt := newRT()
	th := rt.RegisterThread()
	for _, s := range []*Stack{New(th), NewVersioned(th)} {
		for i := uint64(1); i <= 100; i++ {
			if !s.Push(th, i) {
				t.Fatal("plain push must succeed")
			}
		}
		for i := uint64(100); i >= 1; i-- {
			v, ok := s.Pop(th)
			if !ok || v != i {
				t.Fatalf("versioned=%v pop: got %d ok=%v want %d", s.Versioned(), v, ok, i)
			}
		}
		if _, ok := s.Pop(th); ok {
			t.Fatal("empty stack must report false")
		}
	}
}

func TestPopEmptyThenReuse(t *testing.T) {
	rt := newRT()
	th := rt.RegisterThread()
	for _, s := range []*Stack{New(th), NewVersioned(th)} {
		if _, ok := s.Pop(th); ok {
			t.Fatal("pop on empty must fail")
		}
		s.Push(th, 1)
		s.Push(th, 2)
		if v, _ := s.Pop(th); v != 2 {
			t.Fatal("LIFO broken after empty pop")
		}
		if v, _ := s.Pop(th); v != 1 {
			t.Fatal("LIFO broken after empty pop")
		}
		if _, ok := s.Pop(th); ok {
			t.Fatal("stack should be empty again")
		}
	}
}

func TestVersionedEmptyEncoding(t *testing.T) {
	rt := newRT()
	th := rt.RegisterThread()
	s := NewVersioned(th)
	// Drive the version counter through empty states repeatedly; the
	// "versioned nil" encoding must still read as empty.
	for round := 0; round < 50; round++ {
		s.Push(th, uint64(round))
		if v, ok := s.Pop(th); !ok || v != uint64(round) {
			t.Fatalf("round %d: pop %d ok=%v", round, v, ok)
		}
		if _, ok := s.Pop(th); ok {
			t.Fatalf("round %d: stack must be empty", round)
		}
		if s.Len(th) != 0 {
			t.Fatalf("round %d: Len must be 0", round)
		}
	}
}

func TestLenAndDrain(t *testing.T) {
	rt := newRT()
	th := rt.RegisterThread()
	s := New(th)
	for i := uint64(0); i < 25; i++ {
		s.Push(th, i)
	}
	if s.Len(th) != 25 {
		t.Fatalf("Len=%d", s.Len(th))
	}
	if s.Drain(th) != 25 {
		t.Fatal("Drain count")
	}
}

// TestConcurrentConservation: tokens pushed by producers are popped
// exactly once across all consumers.
func TestConcurrentConservation(t *testing.T) {
	for _, versioned := range []bool{false, true} {
		versioned := versioned
		name := "plain"
		if versioned {
			name = "versioned"
		}
		t.Run(name, func(t *testing.T) {
			const workers, per = 8, 4000
			rt := core.NewRuntime(core.Config{MaxThreads: workers + 1, ArenaCapacity: 1 << 18})
			setup := rt.RegisterThread()
			var s *Stack
			if versioned {
				s = NewVersioned(setup)
			} else {
				s = New(setup)
			}
			var wg sync.WaitGroup
			popped := make([][]uint64, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					th := rt.RegisterThread()
					for i := 0; i < per; i++ {
						if w%2 == 0 {
							s.Push(th, uint64(w)<<32|uint64(i))
						} else if v, ok := s.Pop(th); ok {
							popped[w] = append(popped[w], v)
						}
					}
					th.FlushMemory()
				}(w)
			}
			wg.Wait()
			// Drain the rest.
			rest := 0
			seen := map[uint64]bool{}
			for {
				v, ok := s.Pop(setup)
				if !ok {
					break
				}
				if seen[v] {
					t.Fatalf("value %#x on stack twice", v)
				}
				seen[v] = true
				rest++
			}
			total := rest
			for _, ps := range popped {
				for _, v := range ps {
					if seen[v] {
						t.Fatalf("value %#x popped twice", v)
					}
					seen[v] = true
					total++
				}
			}
			if total != (workers/2)*per {
				t.Fatalf("pushed %d, accounted %d", (workers/2)*per, total)
			}
		})
	}
}
