// Package tstack implements Treiber's lock-free stack [22] made
// move-ready per §5.2 of the paper (Algorithm 6):
//
//   - the linearization-point CASes (lines S7 and S22) are replaced by
//     scas,
//   - reads of top (lines S5, S15, S19) go through the read operation,
//   - push handles the ABORT result by freeing its node (S8–S10), and
//     pop handles it per the bracketed lines of Algorithm 2.
//
// The stack is a move-candidate (Lemma 9): push/pop are linearizable
// (Vafeiadis [23] gives a formal proof); instances share nothing
// (requirement 2); both linearization points are CASes on the top
// pointer (requirement 3; the empty return at S17 is not taken by
// successful operations); and the popped value is read at S21, before
// the linearization point (requirement 4).
//
// §7 observes that stack-to-stack moves suffer "false helping in the
// DCAS, due to the ABA-problem that occurs when the same element is
// removed and then inserted again", and proposes "adding a counter to
// the top pointer" at some cost to the normal operations. NewVersioned
// builds that variant: top carries a 22-bit modification counter in the
// reference's tag field, so a top value never recurs within 4M
// operations. Ablation A2 measures both effects.
//
// When the runtime enables elimination (core.Config.Elimination), each
// stack attaches a Hendler/Shavit elimination array: a push that loses
// its top CAS parks its value there for a bounded window, and a pop
// that loses its CAS (or finds the top empty) scans the array and pairs
// off with a parked push in one exchange CAS. The eliminated pair
// linearizes at the exchange — push immediately followed by pop, a
// valid LIFO history — so the shared top word is never touched. Threads
// inside a Move/MoveN bypass the array entirely: a move's linearization
// must go through its DCAS/MCAS descriptor, never a side channel.
package tstack

import (
	"sync/atomic"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/elim"
	"repro/internal/pad"
	"repro/internal/word"
)

// Stack is a move-ready Treiber stack holding uint64 values. Create
// instances with New or NewVersioned.
type Stack struct {
	top word.Word
	_   pad.Pad56
	id  uint64

	// versioned selects the §7 ABA-counter variant: every successful
	// push/pop bumps the tag bits of the top reference.
	versioned bool

	// elim is the elimination array, nil when the runtime disables both
	// the elimination layer and adaptation.
	elim *elim.Array

	// ctrl is the adaptive controller steering the array's active
	// window (nil when core.Config.Adaptive is off). retries feeds it:
	// lost top CASes, bumped only on the contention path.
	ctrl    *adapt.Controller
	retries atomic.Uint64
}

var _ core.MoveReady = (*Stack)(nil)

// newStack builds a stack, attaching an elimination array when the
// runtime's configuration enables the layer — or when adaptation is
// on, in which case the array gets physical capacity for the
// controller's whole window range and starts at the configured slot
// count.
func newStack(t *core.Thread, versioned bool) *Stack {
	s := &Stack{id: t.Runtime().NextObjectID(), versioned: versioned}
	rt := t.Runtime()
	ecfg := rt.Elimination()
	if acfg := rt.Adaptive(); acfg.Enable {
		s.ctrl = rt.NewController()
		s.elim = elim.NewArrayCapacity(ecfg, rt.MaxThreads(), s.ctrl.Config().MaxWindow)
	} else if ecfg.Enable {
		s.elim = elim.NewArray(ecfg, rt.MaxThreads())
	}
	if reg := rt.Obs().Metrics(); reg != nil {
		// Registry pulls: the funcs read the same atomics the legacy
		// accessors (Retries, ElimStats, Timeouts) report, summed across
		// every container registered under the name.
		reg.AddFunc("cas_retries_total", s.Retries)
		if a := s.elim; a != nil {
			reg.AddFunc("elim_hits_total", func() uint64 { h, _ := a.Stats(); return h })
			reg.AddFunc("elim_misses_total", func() uint64 { _, m := a.Stats(); return m })
			reg.AddFunc("elim_timeouts_total", a.Timeouts)
		}
	}
	return s
}

// New creates an empty stack (the paper's default configuration).
func New(t *core.Thread) *Stack { return newStack(t, false) }

// NewVersioned creates an empty stack with the §7 ABA counter on top.
func NewVersioned(t *core.Thread) *Stack { return newStack(t, true) }

// ObjectID implements core.MoveReady.
func (s *Stack) ObjectID() uint64 { return s.id }

// Versioned reports whether the ABA counter is enabled (tests).
func (s *Stack) Versioned() bool { return s.versioned }

// isNil treats any reference with node index 0 as empty: the versioned
// variant encodes "empty after k operations" as (index 0, tag k).
func isNil(ref uint64) bool { return word.NodeIndex(ref) == 0 }

// newTop computes the reference to install for a transition to node
// index idx, bumping the version tag when enabled.
func (s *Stack) newTop(ltop, ref uint64) uint64 {
	if !s.versioned {
		return word.MakeNode(word.NodeIndex(ref), 0)
	}
	return word.MakeNode(word.NodeIndex(ref), word.NodeTag(ltop)+1)
}

// Push adds val on top and reports success. A plain push always
// succeeds; as a move target it fails when the move aborts.
func (s *Stack) Push(t *core.Thread, val uint64) bool {
	s.adaptTick(t)
	ref := t.AllocNode() // S2
	n := t.Node(ref)
	n.Val = val // S3
	for {       // S4
		ltop := t.Read(&s.top)                                    // S5
		n.Next.Store(ltop)                                        // S6
		res := t.SCASInsert(&s.top, ltop, s.newTop(ltop, ref), 0) // S7
		if res == core.FAbort {                                   // S8
			t.FreeNodeDirect(ref) // S9
			return false          // S10
		}
		if res == core.FTrue { // S11
			t.BackoffReset()
			return true // S12
		}
		s.retries.Add(1)
		// Top is contended: try to pair off with a concurrent pop in
		// the elimination array instead of hammering the CAS.
		if s.tryElimPush(t, val) {
			t.FreeNodeDirect(ref)
			t.BackoffReset()
			return true
		}
		t.BackoffWait()
	}
}

// Pop removes the newest value. ok is false when the stack is empty or a
// surrounding move aborted.
func (s *Stack) Pop(t *core.Thread) (val uint64, ok bool) {
	s.adaptTick(t)
	for { // S14
		ltop := t.Read(&s.top) // S15
		if isNil(ltop) {       // S16
			// An empty top does not preclude a parked concurrent push:
			// taking it linearizes the pair right here.
			if v, ok := s.tryElimPop(t); ok {
				return v, true
			}
			return 0, false // S17
		}
		t.ProtectNode(core.SlotRem0, ltop) // S18: hp ← ltop
		if t.Read(&s.top) != ltop {        // S19
			continue // S20
		}
		n := t.Node(ltop)
		val = n.Val // S21
		lnext := n.Next.Load()
		res := t.SCASRemove(&s.top, ltop, s.newTop(ltop, lnext), val, ltop) // S22
		if res == core.FTrue {
			t.RetireNode(ltop) // S23
			t.ClearNode(core.SlotRem0)
			t.BackoffReset()
			return val, true // S24
		}
		if res == core.FAbort {
			t.ClearNode(core.SlotRem0)
			return 0, false
		}
		s.retries.Add(1)
		// Top is contended: a parked concurrent push serves this pop
		// without another round on the shared word.
		if v, ok := s.tryElimPop(t); ok {
			t.ClearNode(core.SlotRem0)
			t.BackoffReset()
			return v, true
		}
		t.BackoffWait()
	}
}

// adaptTick drives the stack's controller from the operation path; the
// winning thread samples the stack's signals and applies the window
// decision. Adaptation touches only the elimination array's active
// window — never a linearization point.
func (s *Stack) adaptTick(t *core.Thread) {
	if !t.AdaptTick(s.ctrl) {
		return
	}
	hits, misses := s.elim.Stats()
	dec := s.ctrl.Apply(adapt.Sample{
		Retries:  s.retries.Load(),
		Hits:     hits,
		Misses:   misses,
		Timeouts: s.elim.Timeouts(),
		Window:   s.elim.Window(),
	})
	if dec.Window != s.elim.Window() {
		s.elim.TryResize(dec.Window)
	}
}

// Retries reports how many linearization CASes the stack has lost to
// concurrent writers — its contribution to the adaptive signal set.
func (s *Stack) Retries() uint64 { return s.retries.Load() }

// AdaptStats reports the stack's controller decisions (zero when
// adaptation is disabled).
func (s *Stack) AdaptStats() adapt.Stats {
	if s.ctrl == nil {
		return adapt.Stats{}
	}
	return s.ctrl.Stats()
}

// Controller exposes the adaptive controller for tests and diagnostics
// (nil when disabled).
func (s *Stack) Controller() *adapt.Controller { return s.ctrl }

// tryElimPush parks val in the elimination array for a bounded window
// and reports whether a concurrent pop took it (the push is then
// complete). Threads inside a move never park: the move's linearization
// must go through its descriptor (the FFalse that brought us here came
// from the DCAS machinery, and retrying the top CAS is the only valid
// continuation).
func (s *Stack) tryElimPush(t *core.Thread, val uint64) bool {
	if s.elim == nil || t.MoveInFlight() {
		return false
	}
	return s.elim.Park(t.Rng.Uint64(), 0, val)
}

// tryElimPop takes any parked push from the elimination array,
// linearizing the pair at the exchange. Threads inside a move never
// take (see tryElimPush).
func (s *Stack) tryElimPop(t *core.Thread) (uint64, bool) {
	if s.elim == nil || t.MoveInFlight() {
		return 0, false
	}
	return s.elim.TryTake(t.Rng.Uint64(), 0, true)
}

// ElimStats reports the stack's elimination hits and misses (zero when
// the layer is disabled).
func (s *Stack) ElimStats() (hits, misses uint64) {
	if s.elim == nil {
		return 0, 0
	}
	return s.elim.Stats()
}

// ElimArray exposes the elimination array for tests and diagnostics
// (nil when disabled).
func (s *Stack) ElimArray() *elim.Array { return s.elim }

// PrepareRemove implements core.RemovePreparer for the batched move
// pipeline: top is the stack's only anchor, so a nil top is exactly
// Pop's linearizable empty observation (S16) — a failed batched move
// may linearize at it — and a non-nil top warms the cache line the
// commit will CAS. (There is no PrepareInsert: a plain push never
// rejects and has nothing to warm that the commit does not touch
// immediately itself.)
func (s *Stack) PrepareRemove(t *core.Thread, _ uint64) bool {
	return !isNil(t.Read(&s.top))
}

// Insert implements core.Inserter (key ignored).
func (s *Stack) Insert(t *core.Thread, _ uint64, val uint64) bool {
	return s.Push(t, val)
}

// Remove implements core.Remover (key ignored).
func (s *Stack) Remove(t *core.Thread, _ uint64) (uint64, bool) {
	return s.Pop(t)
}

// Len counts elements by walking the chain (tests/examples; quiescent
// use only).
func (s *Stack) Len(t *core.Thread) int {
	n := 0
	for cur := t.Read(&s.top); !isNil(cur); cur = t.Node(cur).Next.Load() {
		n++
	}
	return n
}

// Drain pops until empty, returning the count (tests/examples).
func (s *Stack) Drain(t *core.Thread) int {
	n := 0
	for {
		if _, ok := s.Pop(t); !ok {
			return n
		}
		n++
	}
}

// TopWord exposes the top anchor for structural verification (package
// verify) and diagnostics; not part of the normal API.
func (s *Stack) TopWord() *word.Word { return &s.top }

// SwapHeads atomically rotates the top values of k stacks: stack i's
// head value becomes stack i-1's (so two stacks exchange heads, three
// rotate, and so on). All k top CASes are decided by one k-word CAS —
// no concurrent operation can observe a partially rotated state. The
// stacks must be pairwise distinct and belong to one runtime.
//
// It returns false (changing nothing) when any stack is observed empty;
// that read is the failed operation's linearization point. Each head
// node is replaced by a fresh node carrying the rotated value, so the
// versioned variant's ABA counters bump exactly as a pop+push would.
func SwapHeads(t *core.Thread, stacks ...*Stack) bool {
	k := len(stacks)
	if k < 2 {
		panic("tstack: SwapHeads needs at least two stacks")
	}
	if k > core.MaxKCASEntries {
		panic("tstack: SwapHeads supports at most core.MaxKCASEntries stacks")
	}
	for i := range stacks {
		for j := 0; j < i; j++ {
			if stacks[j].id == stacks[i].id {
				panic("tstack: SwapHeads requires pairwise distinct stacks")
			}
		}
	}
	refs := make([]uint64, k) // replacement head nodes, reused across retries
	for i := range refs {
		refs[i] = t.AllocNode()
	}
	ltops := make([]uint64, k)
	entries := make([]core.KCASEntry, k)
	for {
		empty := false
		for i, s := range stacks {
			for {
				ltop := t.Read(&s.top)
				if isNil(ltop) {
					empty = true
					break
				}
				// Hold the head beyond this iteration: the per-entry chain
				// hold slots keep all k heads protected at once, where the
				// container slots only cover one.
				t.HoldNode(i, ltop)
				if t.Read(&s.top) == ltop {
					ltops[i] = ltop
					break
				}
			}
			if empty {
				break
			}
		}
		if empty {
			t.ReleaseHolds()
			for _, r := range refs {
				t.FreeNodeDirect(r)
			}
			return false
		}
		for i, s := range stacks {
			from := t.Node(ltops[(i+k-1)%k])
			old := t.Node(ltops[i])
			n := t.Node(refs[i])
			n.Val = from.Val
			n.Next.Store(old.Next.Load())
			entries[i] = core.KCASEntry{
				W: &s.top, Old: ltops[i],
				New: s.newTop(ltops[i], refs[i]), HP: ltops[i],
			}
		}
		ok, _ := t.ExecuteKCAS(entries)
		t.ReleaseHolds()
		if ok {
			for _, old := range ltops {
				t.RetireNode(old)
			}
			t.BackoffReset()
			return true
		}
		for _, s := range stacks {
			s.retries.Add(1)
		}
		t.BackoffWait()
	}
}
