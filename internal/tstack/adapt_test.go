package tstack

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/elim"
)

// newAdaptRT builds a runtime with adaptation on: tiny epochs so a
// single-threaded test crosses boundaries quickly, thresholds low
// enough that one epoch's traffic moves the window.
func newAdaptRT(acfg adapt.Config) *core.Runtime {
	acfg.Enable = true
	return core.NewRuntime(core.Config{
		MaxThreads:    8,
		ArenaCapacity: 1 << 16,
		DescCapacity:  1 << 12,
		Elimination:   elim.Config{Slots: 2, Spins: 1},
		Adaptive:      acfg,
	})
}

// TestAdaptAttachesArrayWithoutElimKnob: enabling adaptation alone
// attaches an elimination array (the mechanism the window policy
// steers) with capacity for the whole window range.
func TestAdaptAttachesArrayWithoutElimKnob(t *testing.T) {
	rt := newAdaptRT(adapt.Config{})
	th := rt.RegisterThread()
	s := New(th)
	if s.ElimArray() == nil {
		t.Fatal("no elimination array despite Adaptive.Enable")
	}
	if s.Controller() == nil {
		t.Fatal("no controller despite Adaptive.Enable")
	}
	if got := s.ElimArray().Capacity(); got != adapt.DefaultMaxWindow {
		t.Fatalf("capacity=%d want MaxWindow=%d", got, adapt.DefaultMaxWindow)
	}
	if got := s.ElimArray().Window(); got != 2 {
		t.Fatalf("window=%d want the configured 2 slots", got)
	}
}

// TestAdaptDisabledByDefault: without the knob, no controller rides on
// the stack and operations tick nothing.
func TestAdaptDisabledByDefault(t *testing.T) {
	rt := newRT()
	th := rt.RegisterThread()
	s := New(th)
	if s.Controller() != nil {
		t.Fatal("controller attached without Config.Adaptive.Enable")
	}
	if st := s.AdaptStats(); st != (adapt.Stats{}) {
		t.Fatalf("AdaptStats nonzero when disabled: %+v", st)
	}
	s.Push(th, 1) // ticking a nil controller must be a no-op
	if _, ok := s.Pop(th); !ok {
		t.Fatal("pop failed")
	}
}

// TestWindowGrowsUnderMissesWithTraffic drives the real operation
// path: pops against an empty stack consult the elimination array and
// miss, so every epoch is misses-with-traffic and the window must
// climb — through the stack, not through a synthetic Apply.
func TestWindowGrowsUnderMissesWithTraffic(t *testing.T) {
	rt := newAdaptRT(adapt.Config{
		EpochOps:    64,
		GrowMisses:  4,
		GrowTraffic: 8,
		MaxWindow:   8,
	})
	th := rt.RegisterThread()
	s := New(th)
	if s.ElimArray().Window() != 2 {
		t.Fatalf("window starts at %d want 2", s.ElimArray().Window())
	}
	// Each empty pop ticks once and records one elimination miss.
	for i := 0; i < 64*8; i++ {
		if _, ok := s.Pop(th); ok {
			t.Fatal("pop of empty stack succeeded")
		}
	}
	if got := s.ElimArray().Window(); got != 8 {
		t.Fatalf("window=%d want MaxWindow=8 after sustained misses", got)
	}
	st := s.AdaptStats()
	if st.Epochs == 0 || st.WindowGrows < 2 {
		t.Fatalf("epochs=%d grows=%d want >0 and >=2", st.Epochs, st.WindowGrows)
	}
}

// TestWindowShrinksAfterColdParkTimeouts: parks that expire without a
// taker (one-spin windows, no complementary traffic) shrink the window
// back down once the epoch samples them.
func TestWindowShrinksAfterColdParkTimeouts(t *testing.T) {
	rt := newAdaptRT(adapt.Config{
		EpochOps:       64,
		ShrinkTimeouts: 4,
		GrowMisses:     1 << 30, // keep the grow rule out of the way
		MaxWindow:      8,
	})
	th := rt.RegisterThread()
	s := New(th)
	a := s.ElimArray()
	if !a.TryResize(8) {
		t.Fatal("setup resize failed")
	}
	// Expire parks cold — exactly what a losing push does when no pop
	// shows up inside its window (Spins is 1 in this runtime), then
	// drive the epoch clock with successful pushes (no hits, no
	// misses beyond the timeouts).
	for epoch := 0; epoch < 4; epoch++ {
		for i := 0; i < 8; i++ {
			if a.Park(uint64(i), 0, 7) {
				t.Fatal("cold park was taken")
			}
		}
		for i := 0; i < 64+8; i++ {
			s.Push(th, 1)
		}
	}
	if got := a.Window(); got != 1 {
		t.Fatalf("window=%d want 1 after cold epochs", got)
	}
	if st := s.AdaptStats(); st.WindowShrinks < 3 {
		t.Fatalf("shrinks=%d want >=3", st.WindowShrinks)
	}
}

// TestAdaptElimBypassedDuringMove re-runs the composition probe with
// the ADAPTIVE array (attached by the controller path, window live):
// a thread with MoveInFlight() must refuse the elimination paths no
// matter what the controller decides — adaptation tunes the contention
// layer, it never adds a linearization side channel.
func TestAdaptElimBypassedDuringMove(t *testing.T) {
	rt := core.NewRuntime(core.Config{
		MaxThreads:    8,
		ArenaCapacity: 1 << 16,
		DescCapacity:  1 << 12,
		Elimination:   elim.Config{Slots: 2, Spins: 1 << 26},
		Adaptive:      adapt.Config{Enable: true},
	})
	th := rt.RegisterThread()
	parker := rt.RegisterThread()
	s := New(th)
	dst := New(th)

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			if s.tryElimPush(parker, 1234) {
				return // taken: only the post-move pop may do that
			}
		}
	}()
	for {
		if _, ok := s.ElimArray().Peek(0, 0, true); ok {
			break
		}
		runtime.Gosched()
	}

	hitsBefore, _ := s.ElimStats()
	probed := 0
	probe := moveProbe{fn: func(mt *core.Thread) (uint64, bool) {
		if !mt.MoveInFlight() {
			t.Error("probe not inside a move")
		}
		for i := 0; i < 100; i++ {
			if _, ok := s.ElimArray().Peek(0, 0, true); !ok {
				continue
			}
			probed++
			if _, ok := s.tryElimPop(mt); ok {
				t.Error("tryElimPop succeeded inside a move")
			}
			if s.tryElimPush(mt, 5678) {
				t.Error("tryElimPush parked inside a move")
			}
		}
		return 0, false
	}}
	if _, ok := th.Move(probe, dst, 0, 0); ok {
		t.Fatal("probe move must fail")
	}
	if probed == 0 {
		t.Fatal("offer was never parked during the probe")
	}
	if hitsAfter, _ := s.ElimStats(); hitsAfter != hitsBefore {
		t.Fatalf("elimination hits moved %d→%d during a move", hitsBefore, hitsAfter)
	}
	// Outside the move the same offer is takeable.
	var v uint64
	var ok bool
	for i := 0; i < 1<<24 && !ok; i++ {
		if v, ok = s.tryElimPop(th); !ok {
			runtime.Gosched()
		}
	}
	if !ok || v != 1234 {
		t.Fatalf("post-move take: %d %v", v, ok)
	}
	stop.Store(true)
	wg.Wait()
}
