package backoff

import (
	"time"

	"repro/internal/xrand"
)

// Jitter is a sleep-based, decorrelated-jitter retry backoff for the
// service layer: where Exp spins (sub-microsecond CAS conflicts),
// Jitter sleeps (millisecond-scale BUSY/timeout retries against an
// overloaded server). Decorrelated jitter — each delay drawn uniformly
// from [base, 3×previous], capped — both spreads retries (no
// synchronized retry storms from clients that were rejected together)
// and grows the expected delay geometrically under persistent
// rejection. Draws come from a seeded xrand stream, so a load run's
// retry schedule replays under the same seed. Not safe for concurrent
// use: one per connection or worker.
type Jitter struct {
	base time.Duration
	max  time.Duration
	cur  time.Duration
	rng  *xrand.State
}

// Default sleep-backoff tuning.
const (
	DefaultJitterBase = 1 * time.Millisecond
	DefaultJitterMax  = 250 * time.Millisecond
)

// NewJitter returns a jittered backoff sleeping between base and max,
// seeded for deterministic replay. Zero base/max select the defaults;
// max below base saturates to base.
func NewJitter(base, max time.Duration, seed uint64) *Jitter {
	if base <= 0 {
		base = DefaultJitterBase
	}
	if max <= 0 {
		max = DefaultJitterMax
	}
	if max < base {
		max = base
	}
	return &Jitter{base: base, max: max, rng: xrand.New(seed)}
}

// Next returns the next delay without sleeping: uniform in
// [base, 3×previous) (decorrelated jitter), capped at max. The first
// delay after construction or Reset is uniform in [base, 3×base).
func (j *Jitter) Next() time.Duration {
	prev := j.cur
	if prev == 0 {
		prev = j.base
	}
	span := 3*prev - j.base
	d := j.base
	if span > 0 {
		d += time.Duration(j.rng.Uint64() % uint64(span))
	}
	if d > j.max {
		d = j.max
	}
	j.cur = d
	return d
}

// Sleep blocks for Next().
func (j *Jitter) Sleep() { time.Sleep(j.Next()) }

// Reset restores the starting delay; call after a successful operation.
func (j *Jitter) Reset() { j.cur = 0 }

// Current exposes the last delay handed out (tests).
func (j *Jitter) Current() time.Duration { return j.cur }
