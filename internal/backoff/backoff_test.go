package backoff

import "testing"

func TestDoubling(t *testing.T) {
	b := New(4, 64)
	if b.Current() != 0 {
		t.Fatal("fresh backoff must start at 0")
	}
	b.Wait()
	if b.Current() != 8 { // waited 4, doubled to 8
		t.Fatalf("after first wait: %d", b.Current())
	}
	b.Wait() // waits 8 → 16
	b.Wait() // 16 → 32
	b.Wait() // 32 → 64
	b.Wait() // 64 → saturate
	if b.Current() != 64 {
		t.Fatalf("must saturate at max, got %d", b.Current())
	}
	b.Wait()
	if b.Current() != 64 {
		t.Fatal("saturation must hold")
	}
}

func TestReset(t *testing.T) {
	b := New(4, 64)
	b.Wait()
	b.Wait()
	b.Reset()
	if b.Current() != 0 {
		t.Fatal("Reset must clear the wait")
	}
	b.Wait()
	if b.Current() != 8 {
		t.Fatal("post-reset wait must restart from start")
	}
}

func TestDefaults(t *testing.T) {
	b := New(0, 0)
	b.Wait()
	if b.Current() != DefaultStart*2 {
		t.Fatalf("default start not applied: %d", b.Current())
	}
	var zero Exp
	zero.Wait() // must not panic and must adopt defaults
	if zero.Current() != DefaultStart*2 {
		t.Fatalf("zero value defaults: %d", zero.Current())
	}
}

func TestMaxBelowStartClamped(t *testing.T) {
	b := New(100, 10)
	b.Wait()
	if b.Current() != 100 {
		t.Fatalf("max must clamp to start, got %d", b.Current())
	}
}
