package backoff

import (
	"testing"
	"time"
)

func TestDoubling(t *testing.T) {
	b := New(4, 64)
	if b.Current() != 0 {
		t.Fatal("fresh backoff must start at 0")
	}
	b.Wait()
	if b.Current() != 8 { // waited 4, doubled to 8
		t.Fatalf("after first wait: %d", b.Current())
	}
	b.Wait() // waits 8 → 16
	b.Wait() // 16 → 32
	b.Wait() // 32 → 64
	b.Wait() // 64 → saturate
	if b.Current() != 64 {
		t.Fatalf("must saturate at max, got %d", b.Current())
	}
	b.Wait()
	if b.Current() != 64 {
		t.Fatal("saturation must hold")
	}
}

func TestReset(t *testing.T) {
	b := New(4, 64)
	b.Wait()
	b.Wait()
	b.Reset()
	if b.Current() != 0 {
		t.Fatal("Reset must clear the wait")
	}
	b.Wait()
	if b.Current() != 8 {
		t.Fatal("post-reset wait must restart from start")
	}
}

func TestDefaults(t *testing.T) {
	b := New(0, 0)
	b.Wait()
	if b.Current() != DefaultStart*2 {
		t.Fatalf("default start not applied: %d", b.Current())
	}
	var zero Exp
	zero.Wait() // must not panic and must adopt defaults
	if zero.Current() != DefaultStart*2 {
		t.Fatalf("zero value defaults: %d", zero.Current())
	}
}

func TestMaxBelowStartClamped(t *testing.T) {
	b := New(100, 10)
	b.Wait()
	if b.Current() != 100 {
		t.Fatalf("max must clamp to start, got %d", b.Current())
	}
}

// TestJitterBoundsAndGrowth: every delay stays in [base, max]; the
// ceiling (3x previous) grows under persistent failure so retry
// pressure decays; Reset restores the floor.
func TestJitterBoundsAndGrowth(t *testing.T) {
	base, max := 1*time.Millisecond, 64*time.Millisecond
	j := NewJitter(base, max, 42)
	prev := base
	sawGrowth := false
	for i := 0; i < 200; i++ {
		d := j.Next()
		if d < base || d > max {
			t.Fatalf("delay %v outside [%v, %v]", d, base, max)
		}
		if d >= 3*prev {
			t.Fatalf("delay %v >= 3x previous %v (not decorrelated-jitter bounded)", d, prev)
		}
		if d > 10*base {
			sawGrowth = true
		}
		prev = d
	}
	if !sawGrowth {
		t.Fatal("200 consecutive failures never grew the delay past 10x base")
	}
	j.Reset()
	if d := j.Next(); d >= 3*base {
		t.Fatalf("post-Reset delay %v must restart near base %v", d, base)
	}
}

// TestJitterDeterministicPerSeed: same seed, same schedule — a chaos
// run's retry timing replays.
func TestJitterDeterministicPerSeed(t *testing.T) {
	a := NewJitter(0, 0, 7)
	b := NewJitter(0, 0, 7)
	for i := 0; i < 50; i++ {
		if da, db := a.Next(), b.Next(); da != db {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, da, db)
		}
	}
	c := NewJitter(0, 0, 8)
	same := true
	a.Reset()
	aa := NewJitter(0, 0, 7)
	for i := 0; i < 50; i++ {
		if aa.Next() != c.Next() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestJitterDefaultsAndSaturation: zero tuning selects defaults; max
// below base saturates.
func TestJitterDefaultsAndSaturation(t *testing.T) {
	j := NewJitter(0, 0, 1)
	if d := j.Next(); d < DefaultJitterBase || d > DefaultJitterMax {
		t.Fatalf("default-tuned delay %v outside defaults", d)
	}
	s := NewJitter(10*time.Millisecond, time.Millisecond, 1)
	if d := s.Next(); d != 10*time.Millisecond {
		t.Fatalf("max<base must saturate to base, got %v", d)
	}
}
