// Package backoff implements the exponential backoff policy from the
// paper's evaluation (§6): "every time a thread failed to acquire the
// lock or, in case of the lock-free objects, failed to insert or remove
// an element due to a conflict, the time it waited before trying again
// was doubled. The starting wait time and the maximum wait time were
// adjusted so as to give the best performance".
//
// Waiting is busy-wait based (procyield-style spinning), not
// time.Sleep, because the waits are sub-microsecond and sleeping would
// hand the CPU to the scheduler.
package backoff

import (
	"runtime"
	"sync/atomic"
)

// Exp is an exponential backoff with doubling waits. The zero value is
// ready to use with the default tuning; callers embed one per thread and
// per object. Not safe for concurrent use (by design: one per thread).
type Exp struct {
	cur   uint32
	start uint32
	max   uint32
}

// Default tuning (spin iterations). These were tuned on the benchmark
// host the same way the paper tunes its blocking baseline: best blocking
// throughput at 16 threads.
const (
	DefaultStart = 1 << 4
	DefaultMax   = 1 << 14
)

// New returns a backoff with explicit start and max spin counts.
// start and max must be positive and max >= start.
func New(start, max uint32) *Exp {
	if start == 0 {
		start = DefaultStart
	}
	if max == 0 {
		max = DefaultMax
	}
	if max < start {
		max = start
	}
	return &Exp{start: start, max: max}
}

// Wait spins for the current wait time and doubles it for next time,
// saturating at max.
func (b *Exp) Wait() {
	if b.cur == 0 {
		if b.start == 0 {
			b.start, b.max = DefaultStart, DefaultMax
		}
		b.cur = b.start
	}
	spin(b.cur)
	if b.cur < b.max {
		b.cur <<= 1
	}
}

// Reset restores the starting wait time; call after a successful
// operation.
func (b *Exp) Reset() { b.cur = 0 }

// Current exposes the current wait (in spin iterations) for tests.
func (b *Exp) Current() uint32 { return b.cur }

// spinSink defeats dead-code elimination of the spin loop; atomic so
// concurrent waiters don't race on it.
var spinSink atomic.Uint64

// spin busy-waits for roughly n cheap iterations, yielding the processor
// occasionally so a single-core host still makes global progress.
func spin(n uint32) {
	var acc uint64
	for i := uint32(0); i < n; i++ {
		acc += uint64(i)
		if i&1023 == 1023 {
			runtime.Gosched()
		}
	}
	spinSink.Add(acc)
}
