package plainqueue

import (
	"sync"
	"testing"

	"repro/internal/core"
)

func TestFIFO(t *testing.T) {
	rt := core.NewRuntime(core.Config{MaxThreads: 1, ArenaCapacity: 1 << 14})
	th := rt.RegisterThread()
	q := New(th)
	for i := uint64(1); i <= 100; i++ {
		q.Enqueue(th, i)
	}
	for i := uint64(1); i <= 100; i++ {
		if v, ok := q.Dequeue(th); !ok || v != i {
			t.Fatalf("dequeue: %d,%v want %d", v, ok, i)
		}
	}
	if _, ok := q.Dequeue(th); ok {
		t.Fatal("empty dequeue")
	}
}

func TestConcurrentConservation(t *testing.T) {
	const workers, per = 4, 5000
	rt := core.NewRuntime(core.Config{MaxThreads: workers + 1, ArenaCapacity: 1 << 18})
	setup := rt.RegisterThread()
	q := New(setup)
	var wg sync.WaitGroup
	var popped sync.Map
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := rt.RegisterThread()
			for i := 0; i < per; i++ {
				q.Enqueue(th, uint64(w)<<32|uint64(i))
				if v, ok := q.Dequeue(th); ok {
					if _, dup := popped.LoadOrStore(v, true); dup {
						t.Errorf("value %#x popped twice", v)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	count := 0
	for {
		v, ok := q.Dequeue(setup)
		if !ok {
			break
		}
		if _, dup := popped.LoadOrStore(v, true); dup {
			t.Fatalf("value %#x popped twice at drain", v)
		}
		count++
	}
	total := count
	popped.Range(func(_, _ any) bool { total++; return true })
	// total counts drain + all popped values; popped includes drained
	// ones, so just verify every produced value is accounted once.
	seen := 0
	popped.Range(func(_, _ any) bool { seen++; return true })
	if seen != workers*per {
		t.Fatalf("accounted %d of %d", seen, workers*per)
	}
}
