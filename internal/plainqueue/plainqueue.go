// Package plainqueue is the Michael–Scott queue without the move-ready
// changes: linearization points are plain CASes and shared words are
// read with plain atomic loads instead of the helping read operation.
//
// It exists solely for ablation A1, quantifying the paper's claim that
// "the operations originally supported by the data objects keep their
// performance behavior" once scas and read are in place: benchmarks
// compare this package against msqueue under identical workloads.
package plainqueue

import (
	"repro/internal/core"
	"repro/internal/pad"
	"repro/internal/word"
)

// Queue is a plain (non-composable) Michael–Scott queue.
type Queue struct {
	head word.Word
	_    pad.Pad56
	tail word.Word
	_    pad.Pad56
}

// New creates an empty queue.
func New(t *core.Thread) *Queue {
	q := &Queue{}
	s := t.AllocNode()
	q.head.Store(s)
	q.tail.Store(s)
	return q
}

// Enqueue appends val.
func (q *Queue) Enqueue(t *core.Thread, val uint64) {
	ref := t.AllocNode()
	n := t.Node(ref)
	n.Val = val
	for {
		ltail := q.tail.Load()
		t.ProtectNode(core.SlotIns0, ltail)
		if q.tail.Load() != ltail {
			continue
		}
		tn := t.Node(ltail)
		lnext := tn.Next.Load()
		t.ProtectNode(core.SlotIns1, lnext) // hp2, as in the original MS+HP
		if q.tail.Load() != ltail {
			continue
		}
		if lnext != word.Nil {
			q.tail.CAS(ltail, lnext)
			continue
		}
		if tn.Next.CAS(word.Nil, ref) {
			q.tail.CAS(ltail, ref)
			t.ClearNode(core.SlotIns0)
			t.ClearNode(core.SlotIns1)
			return
		}
		t.BackoffWait()
	}
}

// Dequeue removes the oldest value.
func (q *Queue) Dequeue(t *core.Thread) (uint64, bool) {
	for {
		lhead := q.head.Load()
		t.ProtectNode(core.SlotRem0, lhead)
		if q.head.Load() != lhead {
			continue
		}
		ltail := q.tail.Load()
		hn := t.Node(lhead)
		lnext := hn.Next.Load()
		t.ProtectNode(core.SlotRem1, lnext)
		if q.head.Load() != lhead {
			continue
		}
		if lnext == word.Nil {
			t.ClearNode(core.SlotRem0)
			t.ClearNode(core.SlotRem1)
			return 0, false
		}
		if lhead == ltail {
			q.tail.CAS(ltail, lnext)
			continue
		}
		val := t.Node(lnext).Val
		if q.head.CAS(lhead, lnext) {
			t.RetireNode(lhead)
			t.ClearNode(core.SlotRem0)
			t.ClearNode(core.SlotRem1)
			return val, true
		}
		t.BackoffWait()
	}
}
