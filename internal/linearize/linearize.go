// Package linearize implements a Wing & Gong style linearizability
// checker (with Lowe's memoization) for small concurrent histories, plus
// sequential models for the container pairs used in this repository.
//
// The checker is the strongest validation of the paper's Theorem 2: a
// recorded history of enqueues, dequeues, pushes, pops and *moves* is
// checked against a sequential specification in which move is a single
// atomic step. Histories produced by the DCAS-based move must always be
// accepted; histories produced by the naive remove-then-insert
// composition (Figure 1c) are rejected whenever an observer catches the
// intermediate state.
package linearize

import (
	"fmt"
	"math/bits"
	"sort"
)

// MaxOps bounds the history size (operations are indexed by bits of a
// uint64 mask).
const MaxOps = 64

// Op is one completed operation of a history.
type Op struct {
	Thread int
	Name   string // model-defined operation name
	Arg    uint64
	Ret    uint64
	RetOK  bool
	Invoke int64 // strictly increasing logical timestamps
	Return int64
}

func (o Op) String() string {
	return fmt.Sprintf("[t%d %s(%d)=(%d,%v) @%d..%d]", o.Thread, o.Name, o.Arg, o.Ret, o.RetOK, o.Invoke, o.Return)
}

// Model is a sequential specification. Implementations must be
// deterministic and side-effect free: Apply returns the successor state
// and whether the operation's recorded outcome is legal from the given
// state.
type Model interface {
	// Init returns the initial state.
	Init() State
}

// State is an immutable model state.
type State interface {
	// Apply checks op against this state; if legal, it returns the
	// successor state.
	Apply(op Op) (State, bool)
	// Key returns a canonical encoding of the state; memoization uses
	// it verbatim, so equal states must produce equal keys and distinct
	// states distinct keys (no hash collisions — the checker is used as
	// an oracle and must never reject a linearizable history).
	Key() string
}

// Check reports whether the history is linearizable with respect to the
// model. Histories longer than MaxOps panic (split recordings into
// windows instead). The empty history is linearizable.
func Check(m Model, hist []Op) bool {
	n := len(hist)
	if n == 0 {
		return true
	}
	if n > MaxOps {
		panic(fmt.Sprintf("linearize: history of %d ops exceeds MaxOps", n))
	}
	ops := append([]Op(nil), hist...)
	sort.Slice(ops, func(i, j int) bool { return ops[i].Invoke < ops[j].Invoke })

	full := uint64(1)<<n - 1
	if n == MaxOps {
		full = ^uint64(0)
	}
	memo := make(map[memoKey]struct{})
	return dfs(m.Init(), ops, 0, full, memo)
}

type memoKey struct {
	mask uint64
	key  string
}

// dfs explores the linearization tree: at each step any operation that
// is "minimal" (invoked before every unlinearized operation's return)
// may linearize next if the model accepts its outcome.
func dfs(state State, ops []Op, mask, full uint64, memo map[memoKey]struct{}) bool {
	if mask == full {
		return true
	}
	key := memoKey{mask, state.Key()}
	if _, seen := memo[key]; seen {
		return false
	}

	// minRet: the earliest return among unlinearized operations. Any
	// operation linearizing next must have been invoked before it.
	minRet := int64(1) << 62
	for i := 0; i < len(ops); i++ {
		if mask&(1<<uint(i)) == 0 && ops[i].Return < minRet {
			minRet = ops[i].Return
		}
	}
	for i := 0; i < len(ops); i++ {
		bit := uint64(1) << uint(i)
		if mask&bit != 0 {
			continue
		}
		if ops[i].Invoke > minRet {
			break // ops are sorted by invocation; none later can qualify
		}
		if next, ok := state.Apply(ops[i]); ok {
			if dfs(next, ops, mask|bit, full, memo) {
				return true
			}
		}
	}
	memo[key] = struct{}{}
	return false
}

// PopCount is exported for tests sizing their windows.
func PopCount(mask uint64) int { return bits.OnesCount64(mask) }
