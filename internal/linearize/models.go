package linearize

import "sort"

// Sequential models for pairs of containers with an atomic move, the
// specification the paper's composed move must satisfy (§2,
// linearizability per Herlihy & Wing [12]).
//
// Operation names understood by PairModel states:
//
//	insA(v) / insB(v)   — insert; always succeeds (RetOK true)
//	remA() / remB()     — remove; returns (value, ok)
//	moveAB() / moveBA() — atomic move; returns (moved value, ok)
//	swapAB()            — atomically exchange the heads of A and B
//	                      (SwapHeads with k=2); fails, changing nothing,
//	                      only when a side is empty; Ret is ignored
//	                      (the implementation reports success alone)
//
// Container kinds determine insertion/removal order (FIFO queue or LIFO
// stack).

// Kind selects a container discipline.
type Kind int

const (
	// FIFO is a queue.
	FIFO Kind = iota
	// LIFO is a stack.
	LIFO
)

// PairModel is a model of two containers A and B with atomic moves.
type PairModel struct {
	AKind, BKind Kind
	// InitialA/InitialB seed the containers.
	InitialA, InitialB []uint64
}

// Init implements Model.
func (m PairModel) Init() State {
	return pairState{
		aKind: m.AKind, bKind: m.BKind,
		a: append([]uint64(nil), m.InitialA...),
		b: append([]uint64(nil), m.InitialB...),
	}
}

type pairState struct {
	aKind, bKind Kind
	a, b         []uint64
}

// take removes the next element from a container per its discipline.
func take(kind Kind, s []uint64) (uint64, []uint64, bool) {
	if len(s) == 0 {
		return 0, s, false
	}
	if kind == FIFO {
		return s[0], s[1:], true
	}
	return s[len(s)-1], s[:len(s)-1], true
}

// putHead places v where take would next find it — the inverse of take,
// used by swapAB to replace a head in place.
func putHead(kind Kind, s []uint64, v uint64) []uint64 {
	if kind == FIFO {
		return append([]uint64{v}, s...)
	}
	return append(append(make([]uint64, 0, len(s)+1), s...), v)
}

func (st pairState) Apply(op Op) (State, bool) {
	a := st.a
	b := st.b
	switch op.Name {
	case "insA":
		if !op.RetOK {
			return nil, false // plain inserts always succeed here
		}
		na := append(append(make([]uint64, 0, len(a)+1), a...), op.Arg)
		return pairState{st.aKind, st.bKind, na, b}, true
	case "insB":
		if !op.RetOK {
			return nil, false
		}
		nb := append(append(make([]uint64, 0, len(b)+1), b...), op.Arg)
		return pairState{st.aKind, st.bKind, a, nb}, true
	case "remA":
		v, na, ok := take(st.aKind, a)
		if !ok {
			return st, !op.RetOK // empty: only a failed remove is legal
		}
		if !op.RetOK || op.Ret != v {
			return nil, false
		}
		return pairState{st.aKind, st.bKind, na, b}, true
	case "remB":
		v, nb, ok := take(st.bKind, b)
		if !ok {
			return st, !op.RetOK
		}
		if !op.RetOK || op.Ret != v {
			return nil, false
		}
		return pairState{st.aKind, st.bKind, a, nb}, true
	case "moveAB":
		v, na, ok := take(st.aKind, a)
		if !ok {
			return st, !op.RetOK // move from empty fails, atomically a no-op
		}
		if !op.RetOK || op.Ret != v {
			return nil, false
		}
		nb := append(append(make([]uint64, 0, len(b)+1), b...), v)
		return pairState{st.aKind, st.bKind, na, nb}, true
	case "moveBA":
		v, nb, ok := take(st.bKind, b)
		if !ok {
			return st, !op.RetOK
		}
		if !op.RetOK || op.Ret != v {
			return nil, false
		}
		na := append(append(make([]uint64, 0, len(a)+1), a...), v)
		return pairState{st.aKind, st.bKind, na, nb}, true
	case "swapAB":
		va, na, okA := take(st.aKind, a)
		vb, nb, okB := take(st.bKind, b)
		if !okA || !okB {
			return st, !op.RetOK // a swap observing an empty side fails, a no-op
		}
		if !op.RetOK {
			return nil, false // both sides held a head: failure is illegal
		}
		return pairState{st.aKind, st.bKind, putHead(st.aKind, na, vb), putHead(st.bKind, nb, va)}, true
	}
	return nil, false
}

// MapPairModel models two keyed maps A and B with atomic cross-map
// moves — the specification the sharded hash map must satisfy even
// while a shard grow migrates its entries between buckets.
//
// Operation names understood by MapPairModel states (keys and values
// are packed into Op.Arg as key<<32|value, so tests must keep both
// below 2^32):
//
//	putA/putB  — Arg = key<<32|val; RetOK reports inserted (false:
//	             key already present)
//	delA/delB  — Arg = key; returns (value, ok)
//	getA/getB  — Arg = key; returns (value, ok) without removing
//	mvAB/mvBA  — Arg = skey<<32|tkey; atomic keyed move; returns the
//	             moved value
//	mv2AB/mv2BA — Arg = s1<<48|t1<<32|s2<<16|t2 (keys below 2^16);
//	             atomic two-key transfer (TransferN with k=2); returns
//	             Ret = v1<<32|v2. Both keys move in one step: no
//	             ordering may observe one moved and the other not.
//
// A failed move is modeled as a legal no-op from every state: besides
// the semantic failures (missing source key, occupied target key) the
// implementation may also reject a move whose target shard is mid-grow,
// and a failed move changes nothing either way. Failed puts/dels/gets
// stay strict: the implementation never rejects those spuriously.
type MapPairModel struct {
	InitialA, InitialB map[uint64]uint64
}

// Init implements Model.
func (m MapPairModel) Init() State {
	st := mapPairState{a: map[uint64]uint64{}, b: map[uint64]uint64{}}
	for k, v := range m.InitialA {
		st.a[k] = v
	}
	for k, v := range m.InitialB {
		st.b[k] = v
	}
	return st
}

type mapPairState struct {
	a, b map[uint64]uint64
}

func (st mapPairState) clone() mapPairState {
	n := mapPairState{a: make(map[uint64]uint64, len(st.a)), b: make(map[uint64]uint64, len(st.b))}
	for k, v := range st.a {
		n.a[k] = v
	}
	for k, v := range st.b {
		n.b[k] = v
	}
	return n
}

// unpackKV splits an Op.Arg encoded as key<<32|value.
func unpackKV(arg uint64) (key, val uint64) { return arg >> 32, arg & 0xffffffff }

func (st mapPairState) Apply(op Op) (State, bool) {
	fromA := true
	switch op.Name {
	case "putB", "delB", "getB", "mvBA", "mv2BA":
		fromA = false
	}
	src, dst := st.a, st.b
	if !fromA {
		src, dst = st.b, st.a
	}
	// sides returns the clone's source and destination maps.
	sides := func(n mapPairState) (s, d map[uint64]uint64) {
		if fromA {
			return n.a, n.b
		}
		return n.b, n.a
	}
	switch op.Name {
	case "putA", "putB":
		k, v := unpackKV(op.Arg)
		_, exists := src[k]
		if op.RetOK == exists {
			return nil, false // inserted iff the key was absent
		}
		if !op.RetOK {
			return st, true
		}
		n := st.clone()
		ns, _ := sides(n)
		ns[k] = v
		return n, true
	case "delA", "delB":
		v, exists := src[op.Arg]
		if !exists {
			return st, !op.RetOK
		}
		if !op.RetOK || op.Ret != v {
			return nil, false
		}
		n := st.clone()
		ns, _ := sides(n)
		delete(ns, op.Arg)
		return n, true
	case "getA", "getB":
		v, exists := src[op.Arg]
		if op.RetOK != exists || (exists && op.Ret != v) {
			return nil, false
		}
		return st, true
	case "mvAB", "mvBA":
		if !op.RetOK {
			return st, true // failed moves are no-ops (see type doc)
		}
		skey, tkey := unpackKV(op.Arg)
		v, exists := src[skey]
		if !exists || op.Ret != v {
			return nil, false
		}
		if _, occupied := dst[tkey]; occupied {
			return nil, false // a successful move needs a free target key
		}
		n := st.clone()
		ns, nd := sides(n)
		delete(ns, skey)
		nd[tkey] = v
		return n, true
	case "mv2AB", "mv2BA":
		if !op.RetOK {
			return st, true // failed transfers are no-ops (see type doc)
		}
		s1, t1 := op.Arg>>48, (op.Arg>>32)&0xffff
		s2, t2 := (op.Arg>>16)&0xffff, op.Arg&0xffff
		v1, ok1 := src[s1]
		v2, ok2 := src[s2]
		if !ok1 || !ok2 || op.Ret != v1<<32|v2 {
			return nil, false
		}
		if _, occ := dst[t1]; occ {
			return nil, false
		}
		if _, occ := dst[t2]; occ {
			return nil, false
		}
		n := st.clone()
		ns, nd := sides(n)
		delete(ns, s1)
		delete(ns, s2)
		nd[t1] = v1
		nd[t2] = v2
		return n, true
	}
	return nil, false
}

// Key canonically encodes both maps as sorted (key, value) pairs with a
// separator, so distinct states never collide in the memo table.
func (st mapPairState) Key() string {
	buf := make([]byte, 0, 16*(len(st.a)+len(st.b))+1)
	enc := func(m map[uint64]uint64) {
		keys := make([]uint64, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			for x, i := k, 0; i < 8; i++ {
				buf = append(buf, byte(x))
				x >>= 8
			}
			for x, i := m[k], 0; i < 8; i++ {
				buf = append(buf, byte(x))
				x >>= 8
			}
		}
	}
	enc(st.a)
	buf = append(buf, 0xfe)
	enc(st.b)
	return string(buf)
}

// Key canonically encodes both sequences (little-endian bytes with a
// separator), so distinct states never collide in the memo table.
func (st pairState) Key() string {
	buf := make([]byte, 0, 8*(len(st.a)+len(st.b))+1)
	enc := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf = append(buf, byte(v))
			v >>= 8
		}
	}
	for _, v := range st.a {
		enc(v)
	}
	buf = append(buf, 0xfe)
	for _, v := range st.b {
		enc(v)
	}
	return string(buf)
}
