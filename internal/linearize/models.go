package linearize

// Sequential models for pairs of containers with an atomic move, the
// specification the paper's composed move must satisfy (§2,
// linearizability per Herlihy & Wing [12]).
//
// Operation names understood by PairModel states:
//
//	insA(v) / insB(v)   — insert; always succeeds (RetOK true)
//	remA() / remB()     — remove; returns (value, ok)
//	moveAB() / moveBA() — atomic move; returns (moved value, ok)
//
// Container kinds determine insertion/removal order (FIFO queue or LIFO
// stack).

// Kind selects a container discipline.
type Kind int

const (
	// FIFO is a queue.
	FIFO Kind = iota
	// LIFO is a stack.
	LIFO
)

// PairModel is a model of two containers A and B with atomic moves.
type PairModel struct {
	AKind, BKind Kind
	// InitialA/InitialB seed the containers.
	InitialA, InitialB []uint64
}

// Init implements Model.
func (m PairModel) Init() State {
	return pairState{
		aKind: m.AKind, bKind: m.BKind,
		a: append([]uint64(nil), m.InitialA...),
		b: append([]uint64(nil), m.InitialB...),
	}
}

type pairState struct {
	aKind, bKind Kind
	a, b         []uint64
}

// take removes the next element from a container per its discipline.
func take(kind Kind, s []uint64) (uint64, []uint64, bool) {
	if len(s) == 0 {
		return 0, s, false
	}
	if kind == FIFO {
		return s[0], s[1:], true
	}
	return s[len(s)-1], s[:len(s)-1], true
}

func (st pairState) Apply(op Op) (State, bool) {
	a := st.a
	b := st.b
	switch op.Name {
	case "insA":
		if !op.RetOK {
			return nil, false // plain inserts always succeed here
		}
		na := append(append(make([]uint64, 0, len(a)+1), a...), op.Arg)
		return pairState{st.aKind, st.bKind, na, b}, true
	case "insB":
		if !op.RetOK {
			return nil, false
		}
		nb := append(append(make([]uint64, 0, len(b)+1), b...), op.Arg)
		return pairState{st.aKind, st.bKind, a, nb}, true
	case "remA":
		v, na, ok := take(st.aKind, a)
		if !ok {
			return st, !op.RetOK // empty: only a failed remove is legal
		}
		if !op.RetOK || op.Ret != v {
			return nil, false
		}
		return pairState{st.aKind, st.bKind, na, b}, true
	case "remB":
		v, nb, ok := take(st.bKind, b)
		if !ok {
			return st, !op.RetOK
		}
		if !op.RetOK || op.Ret != v {
			return nil, false
		}
		return pairState{st.aKind, st.bKind, a, nb}, true
	case "moveAB":
		v, na, ok := take(st.aKind, a)
		if !ok {
			return st, !op.RetOK // move from empty fails, atomically a no-op
		}
		if !op.RetOK || op.Ret != v {
			return nil, false
		}
		nb := append(append(make([]uint64, 0, len(b)+1), b...), v)
		return pairState{st.aKind, st.bKind, na, nb}, true
	case "moveBA":
		v, nb, ok := take(st.bKind, b)
		if !ok {
			return st, !op.RetOK
		}
		if !op.RetOK || op.Ret != v {
			return nil, false
		}
		na := append(append(make([]uint64, 0, len(a)+1), a...), v)
		return pairState{st.aKind, st.bKind, na, nb}, true
	}
	return nil, false
}

// Key canonically encodes both sequences (little-endian bytes with a
// separator), so distinct states never collide in the memo table.
func (st pairState) Key() string {
	buf := make([]byte, 0, 8*(len(st.a)+len(st.b))+1)
	enc := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf = append(buf, byte(v))
			v >>= 8
		}
	}
	for _, v := range st.a {
		enc(v)
	}
	buf = append(buf, 0xfe)
	for _, v := range st.b {
		enc(v)
	}
	return string(buf)
}
