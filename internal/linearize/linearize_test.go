package linearize

import "testing"

// h builds an op with explicit timestamps.
func h(th int, name string, arg, ret uint64, ok bool, inv, retTS int64) Op {
	return Op{Thread: th, Name: name, Arg: arg, Ret: ret, RetOK: ok, Invoke: inv, Return: retTS}
}

func queuePair() PairModel { return PairModel{AKind: FIFO, BKind: FIFO} }

func TestEmptyHistory(t *testing.T) {
	if !Check(queuePair(), nil) {
		t.Fatal("empty history must be linearizable")
	}
}

func TestSequentialHistoryAccepted(t *testing.T) {
	hist := []Op{
		h(0, "insA", 1, 0, true, 1, 2),
		h(0, "insA", 2, 0, true, 3, 4),
		h(0, "remA", 0, 1, true, 5, 6),
		h(0, "moveAB", 0, 2, true, 7, 8),
		h(0, "remB", 0, 2, true, 9, 10),
		h(0, "remA", 0, 0, false, 11, 12),
	}
	if !Check(queuePair(), hist) {
		t.Fatal("legal sequential history rejected")
	}
}

func TestWrongValueRejected(t *testing.T) {
	hist := []Op{
		h(0, "insA", 1, 0, true, 1, 2),
		h(0, "remA", 0, 9, true, 3, 4), // dequeued a value never enqueued
	}
	if Check(queuePair(), hist) {
		t.Fatal("history with fabricated value accepted")
	}
}

func TestFIFOOrderEnforced(t *testing.T) {
	hist := []Op{
		h(0, "insA", 1, 0, true, 1, 2),
		h(0, "insA", 2, 0, true, 3, 4),
		h(0, "remA", 0, 2, true, 5, 6), // LIFO order out of a queue
	}
	if Check(queuePair(), hist) {
		t.Fatal("queue model accepted LIFO removal")
	}
	lifo := PairModel{AKind: LIFO, BKind: LIFO}
	if !Check(lifo, hist2(hist)) {
		t.Fatal("stack model should accept LIFO removal")
	}
}

// hist2 renames nothing; it exists to reuse the ops above for the stack
// model.
func hist2(hs []Op) []Op { return hs }

func TestConcurrentReorderingAllowed(t *testing.T) {
	// Figure 1a/1b of the paper: operations C and D overlap, so the
	// dequeue may return either insertion order.
	hist := []Op{
		h(0, "insA", 1, 0, true, 1, 10), // overlaps the second insert
		h(1, "insA", 2, 0, true, 2, 9),
		h(0, "remA", 0, 2, true, 11, 12), // 2 first is fine: inserts overlapped
	}
	if !Check(queuePair(), hist) {
		t.Fatal("overlapping inserts must allow either order")
	}
}

func TestRealTimeOrderEnforced(t *testing.T) {
	// Non-overlapping inserts fix the order.
	hist := []Op{
		h(0, "insA", 1, 0, true, 1, 2),
		h(1, "insA", 2, 0, true, 3, 4), // strictly after the first
		h(0, "remA", 0, 2, true, 5, 6),
	}
	if Check(queuePair(), hist) {
		t.Fatal("real-time order violated but history accepted")
	}
}

func TestFigure1cNaiveMoveRejected(t *testing.T) {
	// One element in A; a "move" recorded as atomic, but two sequential
	// probes observed the element in neither container — only possible
	// if the move has an intermediate state (Figure 1c).
	hist := []Op{
		h(0, "moveAB", 0, 42, true, 1, 100), // spans both probes
		h(1, "remA", 0, 0, false, 10, 20),   // A looked empty
		h(1, "remB", 0, 0, false, 30, 40),   // then B looked empty too
		h(1, "remB", 0, 42, true, 110, 120), // element surfaced later
	}
	m := PairModel{AKind: FIFO, BKind: FIFO, InitialA: []uint64{42}}
	if Check(m, hist) {
		t.Fatal("Figure 1c history must not be linearizable")
	}
}

func TestFigure1dAtomicMoveAccepted(t *testing.T) {
	// Same probes, but now the second probe finds the element in B —
	// consistent with a single linearization point between the probes.
	hist := []Op{
		h(0, "moveAB", 0, 42, true, 1, 100),
		h(1, "remA", 0, 0, false, 10, 20),
		h(1, "remB", 0, 42, true, 30, 40),
	}
	m := PairModel{AKind: FIFO, BKind: FIFO, InitialA: []uint64{42}}
	if !Check(m, hist) {
		t.Fatal("Figure 1d history must be linearizable")
	}
}

func TestMoveFromEmpty(t *testing.T) {
	hist := []Op{
		h(0, "moveAB", 0, 0, false, 1, 2),
		h(0, "insA", 7, 0, true, 3, 4),
		h(0, "moveAB", 0, 7, true, 5, 6),
		h(0, "remB", 0, 7, true, 7, 8),
	}
	if !Check(queuePair(), hist) {
		t.Fatal("failed move from empty must be linearizable as a no-op")
	}
}

func TestDuplicateDeliveryRejected(t *testing.T) {
	// The same element removed from both containers: a duplicated move.
	hist := []Op{
		h(0, "moveAB", 0, 42, true, 1, 4),
		h(1, "remA", 0, 42, true, 5, 6),
		h(1, "remB", 0, 42, true, 7, 8),
	}
	m := PairModel{AKind: FIFO, BKind: FIFO, InitialA: []uint64{42}}
	if Check(m, hist) {
		t.Fatal("duplicated element accepted")
	}
}

func TestInitialStateRespected(t *testing.T) {
	m := PairModel{AKind: FIFO, BKind: FIFO, InitialA: []uint64{5}, InitialB: []uint64{6}}
	hist := []Op{
		h(0, "remA", 0, 5, true, 1, 2),
		h(0, "remB", 0, 6, true, 3, 4),
	}
	if !Check(m, hist) {
		t.Fatal("initial contents not honored")
	}
}

func TestTooLongHistoryPanics(t *testing.T) {
	long := make([]Op, MaxOps+1)
	for i := range long {
		long[i] = h(0, "insA", 1, 0, true, int64(2*i), int64(2*i+1))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Check(queuePair(), long)
}

func TestUnknownOpRejected(t *testing.T) {
	hist := []Op{h(0, "fly", 0, 0, true, 1, 2)}
	if Check(queuePair(), hist) {
		t.Fatal("unknown operation accepted")
	}
}

func TestOpString(t *testing.T) {
	if h(1, "insA", 2, 3, true, 4, 5).String() == "" {
		t.Fatal("Op.String must render")
	}
	if PopCount(0b1011) != 3 {
		t.Fatal("PopCount")
	}
}
