package linearize

import "testing"

func kv(k, v uint64) uint64 { return k<<32 | v }

// TestMapPairModelSequential checks the oracle itself on hand-written
// histories before the integration tests rely on it.
func TestMapPairModelSequential(t *testing.T) {
	m := MapPairModel{InitialA: map[uint64]uint64{1: 10}}
	legal := []Op{
		{Name: "getA", Arg: 1, Ret: 10, RetOK: true, Invoke: 1, Return: 2},
		{Name: "putA", Arg: kv(2, 20), RetOK: true, Invoke: 3, Return: 4},
		{Name: "putA", Arg: kv(2, 99), RetOK: false, Invoke: 5, Return: 6},
		{Name: "mvAB", Arg: kv(2, 7), Ret: 20, RetOK: true, Invoke: 7, Return: 8},
		{Name: "getB", Arg: 7, Ret: 20, RetOK: true, Invoke: 9, Return: 10},
		{Name: "delA", Arg: 1, Ret: 10, RetOK: true, Invoke: 11, Return: 12},
		{Name: "delA", Arg: 1, RetOK: false, Invoke: 13, Return: 14},
		{Name: "mvBA", Arg: kv(9, 9), RetOK: false, Invoke: 15, Return: 16},
	}
	if !Check(m, legal) {
		t.Fatal("legal sequential map history rejected")
	}

	for name, hist := range map[string][]Op{
		"get of moved key": {
			{Name: "mvAB", Arg: kv(1, 1), Ret: 10, RetOK: true, Invoke: 1, Return: 2},
			{Name: "getA", Arg: 1, Ret: 10, RetOK: true, Invoke: 3, Return: 4},
		},
		"duplicate put succeeded": {
			{Name: "putA", Arg: kv(1, 5), RetOK: true, Invoke: 1, Return: 2},
		},
		"move returned wrong value": {
			{Name: "mvAB", Arg: kv(1, 1), Ret: 99, RetOK: true, Invoke: 1, Return: 2},
		},
		"move onto occupied target": {
			{Name: "putB", Arg: kv(3, 30), RetOK: true, Invoke: 1, Return: 2},
			{Name: "mvAB", Arg: kv(1, 3), Ret: 10, RetOK: true, Invoke: 3, Return: 4},
		},
		"value duplicated by move": {
			{Name: "mvAB", Arg: kv(1, 1), Ret: 10, RetOK: true, Invoke: 1, Return: 2},
			{Name: "getB", Arg: 1, Ret: 10, RetOK: true, Invoke: 3, Return: 4},
			{Name: "getA", Arg: 1, Ret: 10, RetOK: true, Invoke: 5, Return: 6},
		},
	} {
		if Check(m, hist) {
			t.Fatalf("%s: illegal history accepted", name)
		}
	}
}

// TestMapPairModelConcurrentOverlap: overlapping ops may linearize in
// either order.
func TestMapPairModelConcurrentOverlap(t *testing.T) {
	m := MapPairModel{InitialA: map[uint64]uint64{1: 10}}
	// A concurrent get may see the state before or after the move; both
	// observed outcomes must be accepted when intervals overlap.
	hist := []Op{
		{Thread: 0, Name: "mvAB", Arg: kv(1, 1), Ret: 10, RetOK: true, Invoke: 1, Return: 6},
		{Thread: 1, Name: "getA", Arg: 1, Ret: 10, RetOK: true, Invoke: 2, Return: 5},
	}
	if !Check(m, hist) {
		t.Fatal("pre-move observation within overlap rejected")
	}
	hist[1] = Op{Thread: 1, Name: "getA", Arg: 1, RetOK: false, Invoke: 2, Return: 5}
	if !Check(m, hist) {
		t.Fatal("post-move observation within overlap rejected")
	}
	// But once the get strictly follows the move's return, only the
	// post-move outcome is legal.
	hist[1] = Op{Thread: 1, Name: "getA", Arg: 1, Ret: 10, RetOK: true, Invoke: 7, Return: 8}
	if Check(m, hist) {
		t.Fatal("stale observation after move's return accepted")
	}
}
