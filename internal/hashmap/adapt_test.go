package hashmap

import (
	"runtime"
	"testing"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/elim"
)

// newAdaptRT builds a runtime with adaptation on and a generous
// parking window (single-CPU hosts need the partner scheduled inside
// it). Epochs are kept enormous so tests drive the controllers
// explicitly and deterministically.
func newAdaptRT(threads int, acfg adapt.Config) *core.Runtime {
	acfg.Enable = true
	if acfg.EpochOps == 0 {
		acfg.EpochOps = 1 << 30
	}
	return core.NewRuntime(core.Config{
		MaxThreads:    threads,
		ArenaCapacity: 1 << 18,
		DescCapacity:  1 << 14,
		Elimination:   elim.Config{Slots: 2, Spins: 1 << 22},
		Adaptive:      acfg,
	})
}

// TestAdaptMapDisabledByDefault: no controllers without the knob, and
// AdaptStats stays zero.
func TestAdaptMapDisabledByDefault(t *testing.T) {
	rt := newRT(1)
	th := rt.RegisterThread()
	m := NewSharded(th, 2, 2, 0)
	for i := range m.shards {
		if m.shards[i].ctrl != nil {
			t.Fatal("shard got a controller without the knob")
		}
	}
	if st := m.AdaptStats(); st != (adapt.Stats{}) {
		t.Fatalf("AdaptStats nonzero when disabled: %+v", st)
	}
}

// TestAdaptMapShardsCarryArrays: adaptation alone (no elimination
// knob) attaches per-shard arrays and controllers.
func TestAdaptMapShardsCarryArrays(t *testing.T) {
	rt := newAdaptRT(2, adapt.Config{})
	th := rt.RegisterThread()
	m := NewSharded(th, 2, 2, 0)
	for i := range m.shards {
		if m.shards[i].elim == nil || m.shards[i].ctrl == nil {
			t.Fatalf("shard %d missing array or controller", i)
		}
		if got := m.shards[i].elim.Capacity(); got != adapt.DefaultMaxWindow {
			t.Fatalf("shard %d capacity=%d want %d", i, got, adapt.DefaultMaxWindow)
		}
	}
}

// TestHotShardAttachDetachHysteresis drives one shard's controller
// through the map-visible gate: retry pressure past AttachRetries
// turns hot-shard elimination on; it stays on through the hysteresis
// band and only detaches after DetachEpochs consecutive calm epochs.
func TestHotShardAttachDetachHysteresis(t *testing.T) {
	rt := newAdaptRT(2, adapt.Config{
		AttachRetries: 10,
		DetachRetries: 2,
		DetachEpochs:  2,
	})
	th := rt.RegisterThread()
	m := NewSharded(th, 1, 2, 1<<30)
	s := &m.shards[0]

	if m.hotElim(th, s) {
		t.Fatal("shard hot before any signal")
	}
	var r uint64
	epoch := func(d uint64) { r += d; s.ctrl.Apply(adapt.Sample{Retries: r}) }

	epoch(5) // below attach
	if m.hotElim(th, s) {
		t.Fatal("attached below AttachRetries")
	}
	epoch(10) // attach
	if !m.hotElim(th, s) {
		t.Fatal("did not attach at AttachRetries")
	}
	epoch(1) // calm 1 of 2
	epoch(5) // mid-band: resets the calm streak, holds hot
	if !m.hotElim(th, s) {
		t.Fatal("mid-band epoch detached")
	}
	epoch(1) // calm 1 of 2 (again)
	if !m.hotElim(th, s) {
		t.Fatal("detached after one calm epoch")
	}
	epoch(1) // calm 2 of 2: detach
	if m.hotElim(th, s) {
		t.Fatal("did not detach after DetachEpochs calm epochs")
	}
	st := m.AdaptStats()
	if st.Attaches != 1 || st.Detaches != 1 {
		t.Fatalf("attaches=%d detaches=%d want 1/1", st.Attaches, st.Detaches)
	}
}

// TestHotUnsealedShardEliminates is the acceptance probe for behavior
// (b): a shard marked hot by its controller — with NO grow in flight,
// ever (grow threshold 2^30) — routes a loser insert's parked offer to
// a same-key remove through the elimination array: the hit counter
// moves while the shard stays unsealed. The offer is parked through
// the same call a budget-exhausted insert makes (the deterministic
// stand-in for a lost CAS race, as in the stack's elimination tests);
// the remove side runs the full exported path, absence witness
// included.
func TestHotUnsealedShardEliminates(t *testing.T) {
	rt := newAdaptRT(3, adapt.Config{AttachRetries: 1})
	th := rt.RegisterThread()
	th2 := rt.RegisterThread()
	m := NewSharded(th, 1, 2, 1<<30)
	s := &m.shards[0]

	// One epoch of pressure: hot.
	s.ctrl.Apply(adapt.Sample{Retries: 1})
	if !m.hotElim(th, s) {
		t.Fatal("shard not hot")
	}
	if s.cur.Load().sealed.Load() {
		t.Fatal("shard sealed; the test wants an unsealed hot shard")
	}

	parked := make(chan bool)
	go func() {
		// What Insert does when InsertBounded comes back undecided on a
		// hot shard.
		parked <- s.elim.Park(th2.Rng.Uint64(), 7, 77)
	}()

	var v uint64
	var ok bool
	for i := 0; i < 1<<24 && !ok; i++ {
		// A remove of a different absent key must never consume the
		// parked offer (key matching + absence witness).
		if w, wok := m.Remove(th, 8); wok {
			t.Fatalf("remove(8) consumed a foreign offer: %d", w)
		}
		if v, ok = m.Remove(th, 7); !ok {
			runtime.Gosched()
		}
	}
	if !ok || v != 77 {
		t.Fatalf("remove(7): %d %v", v, ok)
	}
	if !<-parked {
		t.Fatal("parker must observe the exchange")
	}
	hits, _ := m.ElimStats()
	if hits < 2 {
		t.Fatalf("hits=%d want >=2", hits)
	}
	if grows, _, _ := m.Stats(); grows != 0 {
		t.Fatalf("grows=%d want 0 — the whole point is no grow in flight", grows)
	}
	if s.cur.Load().sealed.Load() {
		t.Fatal("shard sealed itself during the test")
	}
	if n := m.Len(th); n != 0 {
		t.Fatalf("len=%d want 0 (eliminated pair must net zero)", n)
	}
}

// TestColdShardRemoveMissSkipsArray: on an unsealed, not-hot shard a
// remove miss must not scan the array (no misses charged).
func TestColdShardRemoveMissSkipsArray(t *testing.T) {
	rt := newAdaptRT(2, adapt.Config{})
	th := rt.RegisterThread()
	m := NewSharded(th, 1, 2, 1<<30)
	if _, ok := m.Remove(th, 3); ok {
		t.Fatal("remove of absent key succeeded")
	}
	if _, misses := m.ElimStats(); misses != 0 {
		t.Fatalf("cold shard scanned the array: misses=%d", misses)
	}
}

// TestPacingLowersGrowThreshold: a paced shard (LoadShift > 0) seals
// at a lower effective load than its configured growLoad — behavior
// (c), rebalance pacing, observed through real inserts.
func TestPacingLowersGrowThreshold(t *testing.T) {
	mk := func(shift int) *Map {
		rt := newAdaptRT(2, adapt.Config{
			PaceRetries:  10,
			PaceEpochs:   1,
			MaxLoadShift: 3,
		})
		th := rt.RegisterThread()
		// 1 shard × 2 buckets, grow at mean load 4 → seal when count
		// exceeds 8.
		m := NewSharded(th, 1, 2, 4)
		var r uint64
		for i := 0; i < shift; i++ {
			r += 100
			m.shards[0].ctrl.Apply(adapt.Sample{Retries: r})
		}
		if got := m.shards[0].ctrl.LoadShift(); got != shift {
			t.Fatalf("LoadShift=%d want %d", got, shift)
		}
		for k := uint64(1); k <= 7; k++ {
			m.Insert(th, k, k)
		}
		return m
	}
	// Unpaced: 7 entries stay under the threshold of 8 — no grow.
	if grows, _, _ := mk(0).Stats(); grows != 0 {
		t.Fatalf("unpaced map grew at load 7: grows=%d", grows)
	}
	// Paced by two notches: effective load 2, seal past 4 — grows.
	if grows, _, _ := mk(2).Stats(); grows == 0 {
		t.Fatal("paced map did not grow earlier")
	}
}
