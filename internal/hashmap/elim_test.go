package hashmap

import (
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/elim"
)

// newElimRT builds a runtime with elimination on and a generous parking
// window (single-CPU hosts need the partner scheduled inside it).
func newElimRT(threads, spins int) *core.Runtime {
	return core.NewRuntime(core.Config{
		MaxThreads:    threads,
		ArenaCapacity: 1 << 18,
		DescCapacity:  1 << 14,
		Elimination:   elim.Config{Enable: true, Slots: 2, Spins: spins},
	})
}

// TestElimMapDisabledByDefault: no arrays without the config knob.
func TestElimMapDisabledByDefault(t *testing.T) {
	rt := newRT(1)
	th := rt.RegisterThread()
	m := NewSharded(th, 2, 2, 0)
	for i := range m.shards {
		if m.shards[i].elim != nil {
			t.Fatal("shard got an elimination array without the knob")
		}
	}
	if h, mi := m.ElimStats(); h != 0 || mi != 0 {
		t.Fatal("stats must stay zero when disabled")
	}
}

// TestElimMapMidGrowExchange: an insert parked on a sealed shard pairs
// with a remove of the same key; the pair leaves no residue either way
// (eliminated, or the insert landed for real and the remove took it).
func TestElimMapMidGrowExchange(t *testing.T) {
	witnessed := false
	for attempt := 0; attempt < 5 && !witnessed; attempt++ {
		rt := newElimRT(3, 1<<22)
		th := rt.RegisterThread()
		th2 := rt.RegisterThread()
		m := NewSharded(th, 1, 2, 1<<30)
		m.Grow(th) // seal the single shard
		// Put the table in the parking state: quiescent and with the
		// drain fully claimed (inserts park only when helping would
		// just duplicate the verify pass).
		tab := m.shards[0].cur.Load()
		tab.quiesceInserts()
		tab.claim.Store(int64(len(tab.buckets)))

		insDone := make(chan bool)
		go func() {
			insDone <- m.Insert(th2, 7, 77)
		}()

		var v uint64
		var ok bool
		for i := 0; i < 1<<24 && !ok; i++ {
			// A remove of a *different* absent key must never consume
			// the parked offer.
			if w, wok := m.Remove(th, 8); wok {
				t.Fatalf("remove(8) consumed a foreign offer: %d", w)
			}
			if v, ok = m.Remove(th, 7); !ok {
				runtime.Gosched()
			}
		}
		if !ok || v != 77 {
			t.Fatalf("remove(7): %d %v", v, ok)
		}
		if !<-insDone {
			t.Fatal("insert must report success")
		}
		hits, _ := m.ElimStats()
		witnessed = hits >= 2

		// Whether eliminated or real, the insert/remove pair must leave
		// no trace once the grow settles.
		m.Quiesce(th)
		if _, there := m.Contains(th, 7); there {
			t.Fatal("pair left a residue entry")
		}
		if n := m.Len(th); n != 0 {
			t.Fatalf("len=%d want 0", n)
		}
	}
	if !witnessed {
		t.Fatal("no elimination hit in any attempt")
	}
}

// TestElimMapRemoveMissWithoutOffer: a plain miss stays a miss.
func TestElimMapRemoveMissWithoutOffer(t *testing.T) {
	rt := newElimRT(2, 64)
	th := rt.RegisterThread()
	m := NewSharded(th, 1, 2, 1<<30)
	if _, ok := m.Remove(th, 3); ok {
		t.Fatal("remove of an absent key with no parked offer must miss")
	}
}
