package hashmap

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/msqueue"
)

func newRT(threads int) *core.Runtime {
	return core.NewRuntime(core.Config{MaxThreads: threads, ArenaCapacity: 1 << 18, DescCapacity: 1 << 14})
}

func TestBasicOps(t *testing.T) {
	rt := newRT(1)
	th := rt.RegisterThread()
	m := New(th, 16)
	if m.Buckets() != 16 {
		t.Fatalf("buckets=%d", m.Buckets())
	}
	for k := uint64(0); k < 1000; k++ {
		if !m.Insert(th, k, k*3) {
			t.Fatalf("insert %d failed", k)
		}
	}
	if m.Len(th) != 1000 {
		t.Fatalf("Len=%d", m.Len(th))
	}
	if m.Insert(th, 500, 1) {
		t.Fatal("duplicate must fail")
	}
	for k := uint64(0); k < 1000; k++ {
		if v, ok := m.Contains(th, k); !ok || v != k*3 {
			t.Fatalf("Contains(%d)=%d,%v", k, v, ok)
		}
	}
	for k := uint64(0); k < 1000; k += 2 {
		if v, ok := m.Remove(th, k); !ok || v != k*3 {
			t.Fatalf("Remove(%d)=%d,%v", k, v, ok)
		}
	}
	if m.Len(th) != 500 {
		t.Fatalf("Len=%d after removes", m.Len(th))
	}
	// 1000 inserts at 16 initial buckets crosses the default load
	// threshold: the map must have grown and kept every entry.
	if grows, _, _ := m.Stats(); grows == 0 {
		t.Fatal("expected at least one grow at this load")
	}
	if m.Buckets() <= 16 {
		t.Fatalf("Buckets=%d, map never grew", m.Buckets())
	}
}

func TestBucketRounding(t *testing.T) {
	rt := newRT(1)
	th := rt.RegisterThread()
	for _, tc := range []struct{ in, want int }{{0, 1}, {1, 1}, {3, 4}, {16, 16}, {17, 32}} {
		if got := New(th, tc.in).Buckets(); got != tc.want {
			t.Fatalf("New(%d).Buckets()=%d want %d", tc.in, got, tc.want)
		}
	}
}

// TestGrowPreservesEntries forces aggressive growth on a tiny map and
// checks no entry is lost, duplicated or corrupted.
func TestGrowPreservesEntries(t *testing.T) {
	rt := newRT(1)
	th := rt.RegisterThread()
	m := NewSharded(th, 2, 1, 2) // 2 shards × 1 bucket, grow at 2/bucket
	const n = 2000
	for k := uint64(1); k <= n; k++ {
		if !m.Insert(th, k, k^0xabc) {
			t.Fatalf("insert %d failed", k)
		}
	}
	m.Quiesce(th)
	grows, migrated, _ := m.Stats()
	if grows == 0 || migrated == 0 {
		t.Fatalf("grows=%d migrated=%d; grow path never ran", grows, migrated)
	}
	if m.Buckets() <= 2 {
		t.Fatalf("Buckets=%d, never grew", m.Buckets())
	}
	if m.Len(th) != n {
		t.Fatalf("Len=%d want %d", m.Len(th), n)
	}
	keys := m.Keys(th)
	if len(keys) != n {
		t.Fatalf("Keys returned %d entries, want %d", len(keys), n)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for i, k := range keys {
		if k != uint64(i+1) {
			t.Fatalf("keys[%d]=%d: lost or duplicated entries", i, k)
		}
	}
	for k := uint64(1); k <= n; k++ {
		if v, ok := m.Contains(th, k); !ok || v != k^0xabc {
			t.Fatalf("Contains(%d)=%d,%v after grow", k, v, ok)
		}
	}
}

// TestRebalanceStepDrivesGrow checks the incremental migration driver: a
// forced Grow is completed purely by RebalanceStep calls.
func TestRebalanceStepDrivesGrow(t *testing.T) {
	rt := newRT(1)
	th := rt.RegisterThread()
	m := NewSharded(th, 4, 4, 1<<30) // threshold unreachable: only Grow seals
	const n = 500
	for k := uint64(1); k <= n; k++ {
		m.Insert(th, k, k)
	}
	before := m.Buckets()
	m.Grow(th)
	steps := 0
	for m.RebalanceStep(th) {
		steps++
		if steps > 100000 {
			t.Fatal("RebalanceStep never converged")
		}
	}
	if got := m.Buckets(); got != before*2 {
		t.Fatalf("Buckets=%d want %d after forced grow", got, before*2)
	}
	_, migrated, stepped := m.Stats()
	if migrated != n {
		t.Fatalf("migrated=%d want %d", migrated, n)
	}
	if stepped == 0 {
		t.Fatal("steps stat never advanced")
	}
	for k := uint64(1); k <= n; k++ {
		if v, ok := m.Contains(th, k); !ok || v != k {
			t.Fatalf("Contains(%d)=%d,%v after stepped grow", k, v, ok)
		}
	}
}

// TestInsertRemoveRacingGrow: churn threads hammer disjoint key ranges
// while a rebalancer forces and drives grows; every thread's final view
// must match what it last did, and the map must audit clean.
func TestInsertRemoveRacingGrow(t *testing.T) {
	const workers = 4
	const span = 400 // keys per worker
	rt := newRT(workers + 2)
	setup := rt.RegisterThread()
	m := NewSharded(setup, 2, 1, 4)

	var stop atomic.Bool
	var wg sync.WaitGroup
	reb := rt.RegisterThread()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			if !m.RebalanceStep(reb) {
				m.Grow(reb)
				runtime.Gosched()
			}
		}
	}()

	present := make([][]bool, workers)
	var cwg sync.WaitGroup
	for w := 0; w < workers; w++ {
		present[w] = make([]bool, span)
		cwg.Add(1)
		go func(w int) {
			defer cwg.Done()
			th := rt.RegisterThread()
			base := uint64(w*span) + 1
			rng := uint64(w)*0x9e3779b97f4a7c15 + 7
			next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
			for i := 0; i < 6000; i++ {
				idx := next() % span
				k := base + idx
				switch next() % 3 {
				case 0:
					if m.Insert(th, k, k*11) {
						if present[w][idx] {
							t.Errorf("insert %d succeeded but key was present", k)
							return
						}
						present[w][idx] = true
					} else if !present[w][idx] {
						t.Errorf("insert %d failed but key was absent", k)
						return
					}
				case 1:
					if v, ok := m.Remove(th, k); ok {
						if !present[w][idx] || v != k*11 {
							t.Errorf("remove %d=(%d,%v) but present=%v", k, v, ok, present[w][idx])
							return
						}
						present[w][idx] = false
					} else if present[w][idx] {
						t.Errorf("remove %d failed but key was present", k)
						return
					}
				default:
					if v, ok := m.Contains(th, k); ok != present[w][idx] || (ok && v != k*11) {
						t.Errorf("contains %d=(%d,%v) but present=%v", k, v, ok, present[w][idx])
						return
					}
				}
			}
			th.FlushMemory()
		}(w)
	}
	cwg.Wait()
	stop.Store(true)
	wg.Wait()
	m.Quiesce(setup)

	want := 0
	for w := 0; w < workers; w++ {
		for idx := 0; idx < span; idx++ {
			k := uint64(w*span) + 1 + uint64(idx)
			v, ok := m.Contains(setup, k)
			if ok != present[w][idx] {
				t.Fatalf("audit: key %d present=%v want %v", k, ok, present[w][idx])
			}
			if ok {
				want++
				if v != k*11 {
					t.Fatalf("audit: key %d corrupted to %d", k, v)
				}
			}
		}
	}
	if got := m.Len(setup); got != want {
		t.Fatalf("Len=%d want %d", got, want)
	}
	if keys := m.Keys(setup); len(keys) != want {
		t.Fatalf("Keys walk found %d entries, counters say %d", len(keys), want)
	}
}

// TestMoveHashMapQueue reproduces the paper's §1.1 scenario: a hash map
// composed with another container through atomic moves.
func TestMoveHashMapQueue(t *testing.T) {
	rt := newRT(2)
	th := rt.RegisterThread()
	m := New(th, 8)
	q := msqueue.New(th)
	m.Insert(th, 77, 770)

	// Move the entry out of the map into the queue.
	if v, ok := th.Move(m, q, 77, 0); !ok || v != 770 {
		t.Fatalf("map→queue move: %d,%v", v, ok)
	}
	if _, ok := m.Contains(th, 77); ok {
		t.Fatal("key should have left the map")
	}
	// And back under a different key.
	if v, ok := th.Move(q, m, 0, 99); !ok || v != 770 {
		t.Fatalf("queue→map move: %d,%v", v, ok)
	}
	if v, ok := m.Contains(th, 99); !ok || v != 770 {
		t.Fatal("moved entry must appear under the target key")
	}
	// Moving onto an existing key aborts and leaves both unchanged.
	q.Enqueue(th, 123)
	if _, ok := th.Move(q, m, 0, 99); ok {
		t.Fatal("move onto duplicate key must abort")
	}
	if q.Len(th) != 1 {
		t.Fatal("aborted move changed the queue")
	}
	if v, _ := m.Contains(th, 99); v != 770 {
		t.Fatal("aborted move changed the map")
	}
}

// TestMoveIntoGrowingShardRoutes pins the composition rule for resizes:
// a move targeting a shard that is mid-grow no longer aborts — the
// insert routes to the successor table (already on every reader's chain
// walk), so the move succeeds and the entry is immediately observable.
// Only a genuine duplicate still aborts the composition.
func TestMoveIntoGrowingShardRoutes(t *testing.T) {
	rt := newRT(2)
	th := rt.RegisterThread()
	m := NewSharded(th, 1, 2, 1<<30)
	m.Insert(th, 7, 77)
	q := msqueue.New(th)
	q.Enqueue(th, 55)
	m.Grow(th) // seal without draining: the shard stays mid-grow
	if v, ok := th.Move(q, m, 0, 5); !ok || v != 55 {
		t.Fatalf("move into mid-grow shard must route to the successor: %d,%v", v, ok)
	}
	if q.Len(th) != 0 {
		t.Fatal("moved element still in the queue")
	}
	if v, ok := m.Contains(th, 5); !ok || v != 55 {
		t.Fatalf("routed entry not observable mid-grow: %d,%v", v, ok)
	}
	// A duplicate key still sitting in the sealed table aborts the move.
	q.Enqueue(th, 56)
	if _, ok := th.Move(q, m, 0, 7); ok {
		t.Fatal("move onto a key still in the sealed table must abort")
	}
	if q.Len(th) != 1 {
		t.Fatal("aborted move changed the queue")
	}
	// Completing the migration merges old and routed entries.
	for m.RebalanceStep(th) {
	}
	if v, ok := m.Contains(th, 5); !ok || v != 55 {
		t.Fatalf("routed entry lost by migration: %d,%v", v, ok)
	}
	if v, ok := m.Contains(th, 7); !ok || v != 77 {
		t.Fatalf("sealed-table entry lost by migration: %d,%v", v, ok)
	}
	if m.Len(th) != 2 {
		t.Fatalf("len=%d want 2", m.Len(th))
	}
	// And moves keep working on the merged table.
	if v, ok := th.Move(q, m, 0, 9); !ok || v != 56 {
		t.Fatalf("move after migration: %d,%v", v, ok)
	}
}

// TestConcurrentMapMoves: tokens live in either of two maps (as keys);
// moves shuffle them around while both maps keep growing; at the end
// each token exists exactly once.
func TestConcurrentMapMoves(t *testing.T) {
	const workers = 8
	const tokens = 256
	const opsPer = 2000
	rt := newRT(workers + 2)
	setup := rt.RegisterThread()
	m1 := NewSharded(setup, 2, 2, 4)
	m2 := NewSharded(setup, 2, 2, 4)
	for i := uint64(1); i <= tokens; i++ {
		if i%2 == 0 {
			m1.Insert(setup, i, i)
		} else {
			m2.Insert(setup, i, i)
		}
	}
	var stop atomic.Bool
	var rwg sync.WaitGroup
	reb := rt.RegisterThread()
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		for !stop.Load() {
			did := m1.RebalanceStep(reb)
			if m2.RebalanceStep(reb) {
				did = true
			}
			if !did {
				m1.Grow(reb)
				runtime.Gosched()
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := rt.RegisterThread()
			rng := uint64(w)*0x9e3779b97f4a7c15 + 3
			next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
			for i := 0; i < opsPer; i++ {
				key := next()%tokens + 1
				// Key moves between maps keep key==value so we can audit.
				if next()&1 == 0 {
					th.Move(m1, m2, key, key)
				} else {
					th.Move(m2, m1, key, key)
				}
			}
			th.FlushMemory()
		}(w)
	}
	wg.Wait()
	stop.Store(true)
	rwg.Wait()
	m1.Quiesce(setup)
	m2.Quiesce(setup)
	count := 0
	for i := uint64(1); i <= tokens; i++ {
		in1, ok1 := m1.Contains(setup, i)
		in2, ok2 := m2.Contains(setup, i)
		if ok1 && ok2 {
			t.Fatalf("token %d present in both maps", i)
		}
		if !ok1 && !ok2 {
			t.Fatalf("token %d lost", i)
		}
		v := in1
		if ok2 {
			v = in2
		}
		if v != i {
			t.Fatalf("token %d corrupted to %d", i, v)
		}
		count++
	}
	if count != tokens {
		t.Fatalf("accounted %d of %d tokens", count, tokens)
	}
}

// TestContentionStatsShape: one counter per shard, all zero on an
// uncontended map, and the slice tracks the shard count.
func TestContentionStatsShape(t *testing.T) {
	rt := newRT(2)
	th := rt.RegisterThread()
	m := NewSharded(th, 4, 2, 0)
	cs := m.ContentionStats()
	if len(cs) != m.Shards() {
		t.Fatalf("len=%d want %d", len(cs), m.Shards())
	}
	for i, n := range cs {
		if n != 0 {
			t.Fatalf("shard %d: %d retries on a fresh map", i, n)
		}
	}
	for k := uint64(0); k < 256; k++ {
		m.Insert(th, k, k)
		m.Remove(th, k)
	}
	for i, n := range m.ContentionStats() {
		if n != 0 {
			t.Fatalf("shard %d: %d retries single-threaded", i, n)
		}
	}
}

// TestContentionStatsUnderContention hammers one hot key from several
// threads and checks the aggregate is monotone and plausibly placed
// (any nonzero count must sit in the hot key's shard). CAS failures
// need real interleaving, so the positive case is logged rather than
// asserted — on a single-CPU host the counters may stay zero.
func TestContentionStatsUnderContention(t *testing.T) {
	const threads = 4
	rt := newRT(threads + 1)
	setup := rt.RegisterThread()
	m := NewSharded(setup, 4, 4, 1<<20) // huge grow load: no seals, pure CAS traffic
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		th := rt.RegisterThread()
		wg.Add(1)
		go func(th *core.Thread) {
			defer wg.Done()
			for i := 0; i < 20000; i++ {
				m.Insert(th, 7, uint64(i))
				m.Remove(th, 7)
			}
		}(th)
	}
	wg.Wait()
	cs := m.ContentionStats()
	hot := int(hash(7) & m.shardMask)
	var total uint64
	for i, n := range cs {
		total += n
		if n != 0 && i != hot {
			t.Fatalf("retries %d recorded on shard %d; only shard %d was touched", n, i, hot)
		}
	}
	t.Logf("hot-shard retries after storm: %d", total)
}
