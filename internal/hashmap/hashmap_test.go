package hashmap

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/msqueue"
)

func newRT(threads int) *core.Runtime {
	return core.NewRuntime(core.Config{MaxThreads: threads, ArenaCapacity: 1 << 18, DescCapacity: 1 << 14})
}

func TestBasicOps(t *testing.T) {
	rt := newRT(1)
	th := rt.RegisterThread()
	m := New(th, 16)
	if m.Buckets() != 16 {
		t.Fatalf("buckets=%d", m.Buckets())
	}
	for k := uint64(0); k < 1000; k++ {
		if !m.Insert(th, k, k*3) {
			t.Fatalf("insert %d failed", k)
		}
	}
	if m.Len(th) != 1000 {
		t.Fatalf("Len=%d", m.Len(th))
	}
	if m.Insert(th, 500, 1) {
		t.Fatal("duplicate must fail")
	}
	for k := uint64(0); k < 1000; k++ {
		if v, ok := m.Contains(th, k); !ok || v != k*3 {
			t.Fatalf("Contains(%d)=%d,%v", k, v, ok)
		}
	}
	for k := uint64(0); k < 1000; k += 2 {
		if v, ok := m.Remove(th, k); !ok || v != k*3 {
			t.Fatalf("Remove(%d)=%d,%v", k, v, ok)
		}
	}
	if m.Len(th) != 500 {
		t.Fatalf("Len=%d after removes", m.Len(th))
	}
}

func TestBucketRounding(t *testing.T) {
	rt := newRT(1)
	th := rt.RegisterThread()
	for _, tc := range []struct{ in, want int }{{0, 1}, {1, 1}, {3, 4}, {16, 16}, {17, 32}} {
		if got := New(th, tc.in).Buckets(); got != tc.want {
			t.Fatalf("New(%d).Buckets()=%d want %d", tc.in, got, tc.want)
		}
	}
}

// TestMoveHashMapQueue reproduces the paper's §1.1 scenario: a hash map
// composed with another container through atomic moves.
func TestMoveHashMapQueue(t *testing.T) {
	rt := newRT(2)
	th := rt.RegisterThread()
	m := New(th, 8)
	q := msqueue.New(th)
	m.Insert(th, 77, 770)

	// Move the entry out of the map into the queue.
	if v, ok := th.Move(m, q, 77, 0); !ok || v != 770 {
		t.Fatalf("map→queue move: %d,%v", v, ok)
	}
	if _, ok := m.Contains(th, 77); ok {
		t.Fatal("key should have left the map")
	}
	// And back under a different key.
	if v, ok := th.Move(q, m, 0, 99); !ok || v != 770 {
		t.Fatalf("queue→map move: %d,%v", v, ok)
	}
	if v, ok := m.Contains(th, 99); !ok || v != 770 {
		t.Fatal("moved entry must appear under the target key")
	}
	// Moving onto an existing key aborts and leaves both unchanged.
	q.Enqueue(th, 123)
	if _, ok := th.Move(q, m, 0, 99); ok {
		t.Fatal("move onto duplicate key must abort")
	}
	if q.Len(th) != 1 {
		t.Fatal("aborted move changed the queue")
	}
	if v, _ := m.Contains(th, 99); v != 770 {
		t.Fatal("aborted move changed the map")
	}
}

// TestConcurrentMapMoves: tokens live in either of two maps (as keys) or
// a queue; moves shuffle them around; at the end each token exists
// exactly once.
func TestConcurrentMapMoves(t *testing.T) {
	const workers = 8
	const tokens = 256
	const opsPer = 2000
	rt := newRT(workers + 1)
	setup := rt.RegisterThread()
	m1 := New(setup, 8)
	m2 := New(setup, 8)
	for i := uint64(1); i <= tokens; i++ {
		if i%2 == 0 {
			m1.Insert(setup, i, i)
		} else {
			m2.Insert(setup, i, i)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := rt.RegisterThread()
			rng := uint64(w)*0x9e3779b97f4a7c15 + 3
			next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
			for i := 0; i < opsPer; i++ {
				key := next()%tokens + 1
				// Key moves between maps keep key==value so we can audit.
				if next()&1 == 0 {
					th.Move(m1, m2, key, key)
				} else {
					th.Move(m2, m1, key, key)
				}
			}
			th.FlushMemory()
		}(w)
	}
	wg.Wait()
	count := 0
	for i := uint64(1); i <= tokens; i++ {
		in1, ok1 := m1.Contains(setup, i)
		in2, ok2 := m2.Contains(setup, i)
		if ok1 && ok2 {
			t.Fatalf("token %d present in both maps", i)
		}
		if !ok1 && !ok2 {
			t.Fatalf("token %d lost", i)
		}
		v := in1
		if ok2 {
			v = in2
		}
		if v != i {
			t.Fatalf("token %d corrupted to %d", i, v)
		}
		count++
	}
	if count != tokens {
		t.Fatalf("accounted %d of %d tokens", count, tokens)
	}
}
