// Package hashmap implements a lock-free hash map as an array of
// move-ready ordered lists, realizing the paper's §1.1 motivating
// scenario: "one can imagine a scenario where one wants to compose
// together a hash-map and a linked list to provide a move operation for
// the user".
//
// Because every bucket is a move-ready harrislist and the map routes
// each operation to exactly one bucket by key, the map as a whole is
// move-ready: its insert/remove linearization points are the bucket's.
package hashmap

import (
	"repro/internal/core"
	"repro/internal/harrislist"
)

// Map is a fixed-capacity (bucket-count) lock-free hash map from uint64
// keys to uint64 values.
type Map struct {
	buckets []*harrislist.List
	mask    uint64
	id      uint64
}

var _ core.MoveReady = (*Map)(nil)

// New creates a map with the given number of buckets (rounded up to a
// power of two, minimum 1).
func New(t *core.Thread, buckets int) *Map {
	n := 1
	for n < buckets {
		n <<= 1
	}
	m := &Map{mask: uint64(n - 1), id: t.Runtime().NextObjectID()}
	m.buckets = make([]*harrislist.List, n)
	for i := range m.buckets {
		m.buckets[i] = harrislist.NewWithID(m.id)
	}
	return m
}

// ObjectID implements core.MoveReady.
func (m *Map) ObjectID() uint64 { return m.id }

// hash is a 64-bit finalizer (splitmix64's mixer); good enough to spread
// adversarial uint64 keys over buckets.
func hash(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xbf58476d1ce4e5b9
	k ^= k >> 27
	k *= 0x94d049bb133111eb
	k ^= k >> 31
	return k
}

func (m *Map) bucket(key uint64) *harrislist.List {
	return m.buckets[hash(key)&m.mask]
}

// Insert adds (key, val); false when the key exists or a surrounding
// move aborts.
func (m *Map) Insert(t *core.Thread, key, val uint64) bool {
	return m.bucket(key).Insert(t, key, val)
}

// Remove deletes key and returns its value.
func (m *Map) Remove(t *core.Thread, key uint64) (uint64, bool) {
	return m.bucket(key).Remove(t, key)
}

// Contains reports presence and value.
func (m *Map) Contains(t *core.Thread, key uint64) (uint64, bool) {
	return m.bucket(key).Contains(t, key)
}

// Len counts entries (quiescent use).
func (m *Map) Len(t *core.Thread) int {
	n := 0
	for _, b := range m.buckets {
		n += b.Len(t)
	}
	return n
}

// Buckets reports the bucket count (tests).
func (m *Map) Buckets() int { return len(m.buckets) }
