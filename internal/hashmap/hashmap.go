// Package hashmap implements a sharded, resizable, lock-free hash map
// built from move-ready ordered lists, realizing the paper's §1.1
// motivating scenario: "one can imagine a scenario where one wants to
// compose together a hash-map and a linked list to provide a move
// operation for the user".
//
// # Structure
//
// The key space is partitioned over a fixed power-of-two number of
// shards (low hash bits). Each shard owns a chain of bucket tables: the
// oldest undrained table first, newer (larger) tables linked through
// table.next. In steady state the chain is a single table; during a grow
// it is two (the sealed table draining into its double-sized successor).
// Every bucket is a move-ready harrislist with its own object identity,
// so the map as a whole is move-ready — its insert/remove linearization
// points are the bucket's — and so is every individual bucket, which is
// what the grow path exploits.
//
// # Growing
//
// A grow reuses the paper's own machinery instead of ad-hoc migration
// code: every entry leaves the old bucket and enters its new bucket
// through one MoveN (§8), so migration inherits the composition
// guarantee — at every instant an entry is observable in exactly one
// bucket, never neither and never both. The protocol per shard:
//
//  1. seal: the live table's sealed flag is raised; new inserts bounce.
//  2. quiesce: wait for the in-flight insert count to drain to zero
//     (inserts announce themselves with a counter before re-checking the
//     seal, a store-load fence pair), so no insert can land in the old
//     table after draining starts.
//  3. drain: helpers claim old buckets through an atomic cursor and move
//     each entry with MoveN(oldBucket → newBucket). Failed moves mean
//     another helper or a concurrent remove got the entry first.
//  4. verify + swap: once the claim cursor is exhausted each helper
//     re-scans all buckets (covering stalled claimants — cooperation,
//     not waiting), then CASes the shard's table pointer forward.
//
// Lookups and removes never block on a grow: they walk the table chain
// from the shard's current table. Entries only migrate forward along the
// chain and a table's next pointer is never cleared, so a miss on the
// final table is a linearizable miss and stale readers always reach the
// live table.
//
// Progress: all operations are lock-free in steady state; during a grow,
// lookups, removes and moves out of the map stay lock-free, while
// inserts help migrate (cooperatively, through MoveN) before retrying.
// The only wait is step 2's insert-quiescence, bounded by the in-flight
// inserts admitted before the seal. Inserts arriving as the target of a
// composed Move/MoveN while the shard is mid-grow cannot help (helping
// would nest a move); instead of rejecting the composition they wait
// out the sealed table's insert-quiescence and route the insert to the
// successor table, which is already part of the lookup chain — the move
// only aborts if the key is still present in the sealed table (a
// genuine duplicate) or the chain advances underneath it.
//
// # Elimination
//
// When the runtime enables elimination (core.Config.Elimination), every
// shard attaches an elimination array. An insert that finds its shard
// sealed with the drain already fully claimed — the mid-grow state
// where helping would only duplicate the verify pass — parks
// (key, value) there for a bounded window instead of piling onto the
// grow; a remove that misses the whole table chain of a sealed shard
// scans the array for an insert parked on the same shard with the same
// key. Before consuming it, the remove re-walks the chain: the
// second walk is an absence witness taken strictly inside the window in
// which the insert was continuously parked (observed waiting before the
// walk, successfully claimed by CAS after it), so the pair linearizes
// at the walk — insert of an absent key immediately followed by its
// remove — a valid map history no matter what concurrent inserts do.
// Threads inside a Move/MoveN bypass the array on both sides.
//
// # Adaptation
//
// When the runtime enables the adaptive subsystem (core.Config.
// Adaptive), every shard additionally owns an adapt.Controller fed
// from the operation path: inserts, removes and lookups tick its epoch
// clock, and the thread that crosses an epoch boundary samples the
// shard's signals (bucket CAS retries summed over the table chain, the
// elimination array's hit/miss/timeout counters) and applies three
// decisions. The array's active window resizes with traffic; a shard
// whose retry rate crosses the attach threshold becomes *hot* — its
// inserts switch to a bounded retry budget and route contention losers
// to the elimination array even though no grow is in flight, and its
// removes consult the array on a chain miss (same absence-witness
// protocol as mid-grow) — until the hysteresis band cools; and
// sustained retry pressure lowers the shard's effective grow-load
// threshold so hot shards split earlier. None of this moves a
// linearization point, and threads inside a Move/MoveN both skip the
// bounded-budget path and keep the full elimination bypass.
package hashmap

import (
	"runtime"
	"sync/atomic"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/elim"
	"repro/internal/fault"
	"repro/internal/harrislist"
	"repro/internal/pad"
)

// DefaultShards is the shard count used by New.
const DefaultShards = 8

// DefaultGrowLoad is the mean entries-per-bucket threshold that triggers
// a grow.
const DefaultGrowLoad = 6

// Map is a sharded, resizable lock-free hash map from uint64 keys to
// uint64 values.
type Map struct {
	shards    []shard
	shardMask uint64
	shardBits uint
	growLoad  int64
	id        uint64

	grows    atomic.Uint64 // completed seal decisions
	migrated atomic.Uint64 // entries relocated by MoveN during grows
	steps    atomic.Uint64 // RebalanceStep invocations that did work
}

var _ core.MoveReady = (*Map)(nil)

// hotRetryBudget is the bounded insert's retry allowance on a hot
// shard: after this many additional lost linearization CASes the
// insert is a contention loser and routes to the elimination array.
const hotRetryBudget = 1

// shard is one partition: a chain of tables plus its element counter.
type shard struct {
	cur   atomic.Pointer[table] // oldest undrained table; chain via next
	count atomic.Int64
	elim  *elim.Array // per-shard elimination array, nil when disabled
	// ctrl is the shard's adaptive controller (nil when
	// core.Config.Adaptive is off); its presence implies elim != nil.
	ctrl *adapt.Controller
	_    pad.Line
}

// table is one bucket array generation of a shard.
type table struct {
	buckets  []*harrislist.List
	mask     uint64
	sealed   atomic.Bool           // no new inserts (grow pending/running)
	ins      atomic.Int64          // in-flight inserts admitted pre-seal
	draining atomic.Bool           // quiescence reached; entries may move
	claim    atomic.Int64          // next bucket index to claim for drain
	next     atomic.Pointer[table] // successor table; set once, never cleared
}

func (tb *table) bucket(h uint64, shardBits uint) *harrislist.List {
	return tb.buckets[(h>>shardBits)&tb.mask]
}

// New creates a map with the given total initial bucket count spread
// over DefaultShards shards (fewer when buckets is smaller) and the
// default grow threshold.
func New(t *core.Thread, buckets int) *Map {
	shards := DefaultShards
	if b := pad.CeilPow2(buckets); b < shards {
		shards = b
	}
	per := pad.CeilPow2((buckets + shards - 1) / shards)
	return NewSharded(t, shards, per, DefaultGrowLoad)
}

// NewSharded creates a map with an explicit shape: shards (rounded up to
// a power of two), initial buckets per shard (likewise), and the mean
// entries-per-bucket load at which a shard grows (<= 0 selects
// DefaultGrowLoad).
func NewSharded(t *core.Thread, shards, bucketsPerShard, growLoad int) *Map {
	ns := pad.CeilPow2(shards)
	if growLoad <= 0 {
		growLoad = DefaultGrowLoad
	}
	m := &Map{
		shards:    make([]shard, ns),
		shardMask: uint64(ns - 1),
		growLoad:  int64(growLoad),
		id:        t.Runtime().NextObjectID(),
	}
	for ns > 1 {
		m.shardBits++
		ns >>= 1
	}
	per := pad.CeilPow2(bucketsPerShard)
	rt := t.Runtime()
	ecfg := rt.Elimination()
	acfg := rt.Adaptive()
	for i := range m.shards {
		m.shards[i].cur.Store(m.newTable(t, per))
		switch {
		case acfg.Enable:
			// Adaptive shards always carry an array (hot-shard
			// elimination needs the mechanism even when the static
			// layer is off) with physical capacity for the whole
			// window range the controller may request.
			ctrl := rt.NewController()
			m.shards[i].ctrl = ctrl
			m.shards[i].elim = elim.NewArrayCapacity(ecfg, rt.MaxThreads(), ctrl.Config().MaxWindow)
		case ecfg.Enable:
			// Per-shard arrays: contention concentrates on hot shards,
			// and slot scans stay within one shard's keys.
			m.shards[i].elim = elim.NewArray(ecfg, rt.MaxThreads())
		}
	}
	if reg := rt.Obs().Metrics(); reg != nil {
		// Registry pulls: map-wide aggregates reading the same atomics
		// the legacy accessors (ContentionStats, ElimStats, Stats)
		// report, so the two surfaces cannot drift.
		reg.AddFunc("cas_retries_total", func() uint64 {
			var total uint64
			for _, v := range m.ContentionStats() {
				total += v
			}
			return total
		})
		reg.AddFunc("elim_hits_total", func() uint64 { h, _ := m.ElimStats(); return h })
		reg.AddFunc("elim_misses_total", func() uint64 { _, miss := m.ElimStats(); return miss })
		reg.AddFunc("elim_timeouts_total", func() uint64 {
			var total uint64
			for i := range m.shards {
				if a := m.shards[i].elim; a != nil {
					total += a.Timeouts()
				}
			}
			return total
		})
		reg.AddFunc("map_grows_total", func() uint64 { g, _, _ := m.Stats(); return g })
		reg.AddFunc("map_migrated_total", func() uint64 { _, mig, _ := m.Stats(); return mig })
		reg.AddFunc("map_migrate_steps_total", func() uint64 { _, _, steps := m.Stats(); return steps })
	}
	return m
}

// newTable builds a bucket table; every bucket gets its own object
// identity so grow-time MoveN sees distinct source and target objects.
func (m *Map) newTable(t *core.Thread, buckets int) *table {
	tb := &table{
		buckets: make([]*harrislist.List, buckets),
		mask:    uint64(buckets - 1),
	}
	for i := range tb.buckets {
		tb.buckets[i] = harrislist.New(t)
	}
	return tb
}

// ObjectID implements core.MoveReady.
func (m *Map) ObjectID() uint64 { return m.id }

// hash is a 64-bit finalizer (splitmix64's mixer); good enough to spread
// adversarial uint64 keys over shards and buckets.
func hash(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xbf58476d1ce4e5b9
	k ^= k >> 27
	k *= 0x94d049bb133111eb
	k ^= k >> 31
	return k
}

func (m *Map) shard(h uint64) *shard { return &m.shards[h&m.shardMask] }

// SameChain reports whether key1 and key2 currently land in the same
// bucket chain: same shard and same bucket index in that shard's
// current table. Composed multi-key operations (core.TransferN) need
// chain-independent keys — two linearization CASes in one chain can
// target the same word, which cannot be captured twice by one k-word
// CAS — so callers reject same-chain pairs up front (a data-dependent
// condition, not a programming error). The answer is a snapshot, but a
// concurrent grow only doubles the bucket count, which preserves
// distinctness: keys in different chains stay in different chains.
func (m *Map) SameChain(key1, key2 uint64) bool {
	h1, h2 := hash(key1), hash(key2)
	if h1&m.shardMask != h2&m.shardMask {
		return false
	}
	tab := m.shard(h1).cur.Load()
	return (h1>>m.shardBits)&tab.mask == (h2>>m.shardBits)&tab.mask
}

// Insert adds (key, val); false when the key exists, or when a
// surrounding move aborts. A move targeting a mid-grow shard no longer
// aborts outright: the insert routes to the successor table (see
// insertRouted), so only a genuine duplicate fails the composition.
func (m *Map) Insert(t *core.Thread, key, val uint64) bool {
	h := hash(key)
	s := m.shard(h)
	m.adaptTick(t, s)
	for {
		tab := s.cur.Load()
		if tab.sealed.Load() {
			if t.MoveInFlight() {
				ok, retry := m.insertRouted(t, s, tab, h, key, val)
				if retry {
					continue
				}
				return ok
			}
			// Help the grow unless the drain is already fully claimed —
			// then another helper would only duplicate the verify pass,
			// so park in the shard's elimination array instead: the
			// window doubles as backoff, and a concurrent remove of the
			// same key completes both operations with one CAS.
			if m.tryElimInsert(t, s, tab, key, val) {
				return true
			}
			m.helpGrow(t, s, tab)
			continue
		}
		// Announce, then re-check the seal: if the re-check still reads
		// unsealed, the sealer's quiescence wait is guaranteed to see
		// this insert (both sides are sequentially consistent atomics).
		tab.ins.Add(1)
		if tab.sealed.Load() {
			tab.ins.Add(-1)
			continue // sealed branch above handles both cases
		}
		b := tab.bucket(h, m.shardBits)
		var ok, done bool
		if m.hotElim(t, s) {
			// Hot shard: a bounded retry budget instead of an unbounded
			// hammer; an undecided insert is a contention loser.
			ok, done = b.InsertBounded(t, key, val, hotRetryBudget)
		} else {
			ok, done = b.Insert(t, key, val), true
		}
		tab.ins.Add(-1)
		if !done {
			// Route the loser to the shard's elimination array — with
			// the insert-quiescence announcement already withdrawn, so
			// a parked offer never delays a grow. A concurrent same-key
			// remove takes the offer and completes both operations (the
			// pair nets zero on the shard count, like every eliminated
			// pair); a timeout falls back to the normal path.
			if s.elim.Park(t.Rng.Uint64(), key, val) {
				return true
			}
			continue
		}
		if ok {
			n := s.count.Add(1)
			if !t.MoveInFlight() && n > int64(len(tab.buckets))*m.effGrowLoad(s) &&
				tab.sealed.CompareAndSwap(false, true) {
				m.grows.Add(1)
				m.helpGrow(t, s, tab)
			}
		}
		return ok
	}
}

// hotElim reports whether this shard is currently routing contention
// losers to its elimination array: the controller's attach decision,
// gated — like every elimination path — on the thread not being inside
// a move (a move's linearization must go through its descriptor).
func (m *Map) hotElim(t *core.Thread, s *shard) bool {
	return s.ctrl != nil && s.ctrl.ElimActive() && !t.MoveInFlight()
}

// effGrowLoad is the shard's effective grow-load threshold: the
// configured mean entries-per-bucket minus the controller's pacing
// shift (floored at one), so sustainedly contended shards split
// earlier than merely full ones.
func (m *Map) effGrowLoad(s *shard) int64 {
	load := m.growLoad
	if s.ctrl != nil {
		if load -= int64(s.ctrl.LoadShift()); load < 1 {
			load = 1
		}
	}
	return load
}

// adaptTick drives the shard's controller from the operation path; the
// winning thread samples the shard's signals and applies the window
// decision. The retry sum walks the live table chain — the expensive
// gather runs once per epoch, never on the hot path — and regresses
// when a grow retires a table, which the controller clamps to zero.
func (m *Map) adaptTick(t *core.Thread, s *shard) {
	if !t.AdaptTick(s.ctrl) {
		return
	}
	var snap adapt.Sample
	for tab := s.cur.Load(); tab != nil; tab = tab.next.Load() {
		for _, b := range tab.buckets {
			snap.Retries += b.Retries()
		}
	}
	snap.Hits, snap.Misses = s.elim.Stats()
	snap.Timeouts = s.elim.Timeouts()
	snap.Window = s.elim.Window()
	dec := s.ctrl.Apply(snap)
	if dec.Window != snap.Window {
		s.elim.TryResize(dec.Window)
	}
}

// insertRouted is the in-move insert path for a sealed shard (the
// ROADMAP's "moves targeting a mid-grow shard abort" follow-up).
// Helping the grow would nest a move, so instead the insert goes to the
// successor table, which is already part of every reader's chain walk.
// The protocol mirrors the normal path: wait out the sealed table's
// insert-quiescence (after which its buckets can only shrink), check
// the key is not still sitting in the sealed table (that would be a
// genuine duplicate: abort the move), then announce on the successor
// and insert there. retry asks the caller to re-read the shard when the
// chain advanced mid-route.
func (m *Map) insertRouted(t *core.Thread, s *shard, tab *table, h, key, val uint64) (ok, retry bool) {
	next := m.ensureNext(t, tab)
	tab.quiesceInserts()
	if _, dup := tab.bucket(h, m.shardBits).Contains(t, key); dup {
		return false, false
	}
	next.ins.Add(1)
	if next.sealed.Load() {
		// The successor became live and was itself sealed: the sealed
		// table is fully drained, so restart from the shard's current
		// table rather than chase the chain.
		next.ins.Add(-1)
		return false, true
	}
	ok = next.bucket(h, m.shardBits).Insert(t, key, val)
	next.ins.Add(-1)
	if ok {
		s.count.Add(1)
	}
	return ok, false
}

// Remove deletes key and returns its value. It walks the shard's table
// chain: entries migrate only forward along the chain, so a miss on the
// final table linearizes as a miss on the whole map. A miss may still
// pair off with an insert of the same key parked on the shard's
// elimination array (see tryElimRemove).
func (m *Map) Remove(t *core.Thread, key uint64) (uint64, bool) {
	h := hash(key)
	s := m.shard(h)
	m.adaptTick(t, s)
	if v, ok := m.removeWalk(t, s, h, key); ok {
		return v, true
	}
	return m.tryElimRemove(t, s, h, key)
}

// removeWalk is the chain walk of Remove, shared with the elimination
// path's absence re-walk.
func (m *Map) removeWalk(t *core.Thread, s *shard, h, key uint64) (uint64, bool) {
	for tab := s.cur.Load(); tab != nil; tab = tab.next.Load() {
		if v, ok := tab.bucket(h, m.shardBits).Remove(t, key); ok {
			s.count.Add(-1)
			return v, true
		}
	}
	return 0, false
}

// tryElimInsert parks (key, val) on the shard's elimination array for a
// bounded window; true means a concurrent remove of the same key took
// it and the insert is complete. It only parks while the sealed table's
// drain is fully claimed — the one mid-grow state where helping adds
// nothing but a duplicate verify pass, i.e. a real contention signal;
// everywhere else helping the grow is the productive move. Threads
// inside a move never park: the move's linearization must go through
// its descriptor.
func (m *Map) tryElimInsert(t *core.Thread, s *shard, tab *table, key, val uint64) bool {
	if s.elim == nil || t.MoveInFlight() {
		return false
	}
	if !tab.draining.Load() || tab.claim.Load() < int64(len(tab.buckets)) {
		return false
	}
	return s.elim.Park(t.Rng.Uint64(), key, val)
}

// tryElimRemove pairs a remove that missed the whole chain with an
// insert of the same key parked on the shard's array. Soundness: the
// insert was observed waiting before the re-walk and claimed by CAS
// after it, so the walk's absence witness falls strictly inside both
// operations' intervals — the pair linearizes at the walk, insert of an
// absent key immediately followed by its remove. If the re-walk finds
// the key after all (a concurrent insert landed), that entry is removed
// instead and the parked insert is left alone. Threads inside a move
// never take.
func (m *Map) tryElimRemove(t *core.Thread, s *shard, h, key uint64) (uint64, bool) {
	if s.elim == nil || t.MoveInFlight() {
		return 0, false
	}
	// Inserts park while their shard is mid-grow or marked hot by the
	// adaptive controller; with neither in sight the array is empty —
	// skip the scan (and don't let plain key misses masquerade as
	// elimination misses in the counters).
	if !s.cur.Load().sealed.Load() && !(s.ctrl != nil && s.ctrl.ElimActive()) {
		return 0, false
	}
	hnd, ok := s.elim.Peek(t.Rng.Uint64(), key, false)
	if !ok {
		return 0, false
	}
	if v, ok := m.removeWalk(t, s, h, key); ok {
		return v, true
	}
	return s.elim.Take(hnd)
}

// ContentionStats reports each shard's accumulated CAS-retry count:
// the sum, over the shard's live table chain, of every bucket list's
// lost linearization CASes (harrislist.Retries). It is the cheap
// signal an adaptive elimination layer needs to find hot unsealed
// shards — a shard whose counter climbs between two samples is being
// fought over right now. Counters ride on the buckets, so entries
// migrated by a grow start fresh in the successor table and counts
// from fully drained tables age out with them: treat deltas, not
// absolutes, as the signal.
func (m *Map) ContentionStats() []uint64 {
	out := make([]uint64, len(m.shards))
	for i := range m.shards {
		var n uint64
		for tab := m.shards[i].cur.Load(); tab != nil; tab = tab.next.Load() {
			for _, b := range tab.buckets {
				n += b.Retries()
			}
		}
		out[i] = n
	}
	return out
}

// AdaptStats aggregates the per-shard controllers' decision counters
// (zeros when adaptation is disabled).
func (m *Map) AdaptStats() adapt.Stats {
	var st adapt.Stats
	for i := range m.shards {
		if c := m.shards[i].ctrl; c != nil {
			st.Add(c.Stats())
		}
	}
	return st
}

// ElimStats aggregates elimination hits and misses over all shards
// (zeros when the layer is disabled).
func (m *Map) ElimStats() (hits, misses uint64) {
	for i := range m.shards {
		if a := m.shards[i].elim; a != nil {
			hi, mi := a.Stats()
			hits += hi
			misses += mi
		}
	}
	return hits, misses
}

// PrepareRemove implements core.RemovePreparer for the batched move
// pipeline: a chain-walk miss is a linearizable absence observation (a
// failed batched move may linearize at it); a hit warms the shard's
// bucket path for the commit.
func (m *Map) PrepareRemove(t *core.Thread, key uint64) bool {
	_, ok := m.Contains(t, key)
	return ok
}

// PrepareInsert implements core.InsertPreparer: an occupied key would
// fail the insert (during a move: abort the composition), so the
// batched move can fail fast at the observation.
func (m *Map) PrepareInsert(t *core.Thread, key uint64) bool {
	_, dup := m.Contains(t, key)
	return !dup
}

// Contains reports presence and value, walking the table chain like
// Remove.
func (m *Map) Contains(t *core.Thread, key uint64) (uint64, bool) {
	h := hash(key)
	s := m.shard(h)
	m.adaptTick(t, s)
	for tab := s.cur.Load(); tab != nil; tab = tab.next.Load() {
		if v, ok := tab.bucket(h, m.shardBits).Contains(t, key); ok {
			return v, true
		}
	}
	return 0, false
}

// Len reports the element count from the per-shard counters: exact at
// quiescence, a momentary snapshot under concurrency.
func (m *Map) Len(t *core.Thread) int {
	n := int64(0)
	for i := range m.shards {
		n += m.shards[i].count.Load()
	}
	return int(n)
}

// Keys returns every key (quiescent use: audits and tests). Order is
// unspecified.
func (m *Map) Keys(t *core.Thread) []uint64 {
	var out []uint64
	for i := range m.shards {
		for tab := m.shards[i].cur.Load(); tab != nil; tab = tab.next.Load() {
			for _, b := range tab.buckets {
				out = append(out, b.Keys(t)...)
			}
		}
	}
	return out
}

// Buckets reports the total bucket count of the live (newest) tables.
func (m *Map) Buckets() int {
	n := 0
	for i := range m.shards {
		tab := m.shards[i].cur.Load()
		for nx := tab.next.Load(); nx != nil; nx = tab.next.Load() {
			tab = nx
		}
		n += len(tab.buckets)
	}
	return n
}

// Shards reports the shard count.
func (m *Map) Shards() int { return len(m.shards) }

// Stats reports grow activity: seals decided, entries migrated through
// MoveN, and RebalanceStep calls that performed work.
func (m *Map) Stats() (grows, migrated, steps uint64) {
	return m.grows.Load(), m.migrated.Load(), m.steps.Load()
}

// Grow seals the live table of every shard, forcing a resize. Draining
// happens cooperatively: by subsequent inserts, by RebalanceStep calls,
// or all at once via Quiesce. Must not be called inside a move.
func (m *Map) Grow(t *core.Thread) {
	for i := range m.shards {
		tab := m.shards[i].cur.Load()
		if !tab.sealed.Load() && tab.sealed.CompareAndSwap(false, true) {
			m.grows.Add(1)
		}
	}
}

// RebalanceStep performs one bounded unit of rebalancing: it drains one
// bucket of a shard whose grow is pending (finishing the table swap when
// it was the last), or seals one shard that exceeds the load threshold.
// It reports whether it did any work, so callers can drive migration
// incrementally (a rebalancer thread loops until false). Must not be
// called inside a move.
func (m *Map) RebalanceStep(t *core.Thread) bool {
	for i := range m.shards {
		s := &m.shards[i]
		tab := s.cur.Load()
		if tab.sealed.Load() {
			m.stepGrow(t, s, tab)
			m.steps.Add(1)
			return true
		}
		if s.count.Load() > int64(len(tab.buckets))*m.effGrowLoad(s) &&
			tab.sealed.CompareAndSwap(false, true) {
			m.grows.Add(1)
			m.steps.Add(1)
			return true
		}
	}
	return false
}

// Quiesce drives every pending grow to completion. Must not be called
// inside a move.
func (m *Map) Quiesce(t *core.Thread) {
	for {
		work := false
		for i := range m.shards {
			s := &m.shards[i]
			if tab := s.cur.Load(); tab.sealed.Load() {
				m.helpGrow(t, s, tab)
				work = true
			}
		}
		if !work {
			return
		}
	}
}

// ensureNext links the successor table (double the buckets), racing
// other helpers; exactly one allocation wins.
func (m *Map) ensureNext(t *core.Thread, tab *table) *table {
	if next := tab.next.Load(); next != nil {
		return next
	}
	nt := m.newTable(t, len(tab.buckets)*2)
	if tab.next.CompareAndSwap(nil, nt) {
		return nt
	}
	return tab.next.Load()
}

// quiesceInserts waits out the inserts admitted before the seal (step 2
// of the grow protocol). New inserts bounce off the seal, so the counter
// only decreases.
func (tb *table) quiesceInserts() {
	if tb.draining.Load() {
		return
	}
	for tb.ins.Load() > 0 {
		runtime.Gosched()
	}
	tb.draining.Store(true)
}

// helpGrow runs the grow protocol for one sealed table to completion.
func (m *Map) helpGrow(t *core.Thread, s *shard, tab *table) {
	next := m.ensureNext(t, tab)
	tab.quiesceInserts()
	// Claimed pass: spread concurrent helpers over distinct buckets.
	for {
		i := tab.claim.Add(1) - 1
		if i >= int64(len(tab.buckets)) {
			break
		}
		m.drainBucket(t, tab, next, int(i))
	}
	m.finishGrow(t, s, tab, next)
}

// stepGrow is helpGrow's bounded sibling for RebalanceStep: one claimed
// bucket per call, then the finish sequence.
func (m *Map) stepGrow(t *core.Thread, s *shard, tab *table) {
	next := m.ensureNext(t, tab)
	tab.quiesceInserts()
	if i := tab.claim.Add(1) - 1; i < int64(len(tab.buckets)) {
		m.drainBucket(t, tab, next, int(i))
		return
	}
	m.finishGrow(t, s, tab, next)
}

// finishGrow is the shared tail of the grow protocol: a verification
// pass covering buckets whose claimant stalled (inserts are sealed out,
// so a drained bucket stays empty and one full scan suffices), then the
// table-pointer swap.
func (m *Map) finishGrow(t *core.Thread, s *shard, tab, next *table) {
	for i := range tab.buckets {
		m.drainBucket(t, tab, next, i)
	}
	s.cur.CompareAndSwap(tab, next)
}

// drainBucket migrates every entry of one sealed bucket into its new
// bucket through MoveN, so each relocation is atomic: the entry is in
// exactly one bucket at every instant. A failed MoveN means a concurrent
// helper migrated the entry or a concurrent remove/move took it; either
// way the bucket shrank and the loop re-reads.
func (m *Map) drainBucket(t *core.Thread, tab, next *table, i int) {
	src := tab.buckets[i]
	dst := make([]core.Inserter, 1)
	tkey := make([]uint64, 1)
	for {
		k, _, ok := src.Min(t)
		if !ok {
			return
		}
		// Mid-migration window: the table is sealed and this bucket is
		// partially drained. A migrator stalled or killed here must not
		// wedge the grow — any other thread (or reader) entering the map
		// helps the same buckets via helpGrow/stepGrow.
		t.Fault(fault.MapMidMigration)
		dst[0] = next.bucket(hash(k), m.shardBits)
		tkey[0] = k
		if _, moved := t.MoveN(src, dst, k, tkey); moved {
			m.migrated.Add(1)
		}
	}
}
