package integration

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/msqueue"
	"repro/internal/pqueue"
	"repro/internal/tstack"
)

// flakyTarget rejects its first n insert attempts in the init-phase
// (before any scas), then delegates to a real stack. It drives the
// MoveN retry path where a deeper operation's mReached flag is stale.
type flakyTarget struct {
	s        *tstack.Stack
	rejects  int
	attempts int
}

func (f *flakyTarget) Insert(t *core.Thread, key, val uint64) bool {
	f.attempts++
	if f.attempts <= f.rejects {
		return false // init-phase failure: scas never reached
	}
	return f.s.Insert(t, key, val)
}

func (f *flakyTarget) ObjectID() uint64 { return f.s.ObjectID() }

func TestMoveRetriesAfterTransientTargetFailure(t *testing.T) {
	rt := newRT(2)
	th := rt.RegisterThread()
	q := msqueue.New(th)
	ft := &flakyTarget{s: tstack.New(th), rejects: 1}
	q.Enqueue(th, 5)

	// First move aborts (target init-failure), second succeeds.
	if _, ok := th.Move(q, ft, 0, 0); ok {
		t.Fatal("move must abort on target init failure")
	}
	if q.Len(th) != 1 {
		t.Fatal("aborted move changed the source")
	}
	if v, ok := th.Move(q, ft, 0, 0); !ok || v != 5 {
		t.Fatalf("retry move: %d,%v", v, ok)
	}
	if v, _ := ft.s.Pop(th); v != 5 {
		t.Fatal("element missing from target")
	}
}

func TestMoveNWithFlakyMiddleTarget(t *testing.T) {
	rt := newRT(2)
	th := rt.RegisterThread()
	q := msqueue.New(th)
	good1 := tstack.New(th)
	ft := &flakyTarget{s: tstack.New(th), rejects: 1}
	good2 := tstack.New(th)
	q.Enqueue(th, 9)

	if _, ok := th.MoveN(q, []core.Inserter{good1, ft, good2}, 0, []uint64{0, 0, 0}); ok {
		t.Fatal("MoveN must abort when a middle target rejects")
	}
	if q.Len(th) != 1 || good1.Len(th) != 0 || good2.Len(th) != 0 {
		t.Fatal("aborted MoveN left residue")
	}
	if v, ok := th.MoveN(q, []core.Inserter{good1, ft, good2}, 0, []uint64{0, 0, 0}); !ok || v != 9 {
		t.Fatalf("MoveN retry: %d,%v", v, ok)
	}
	for i, s := range []*tstack.Stack{good1, ft.s, good2} {
		if v, ok := s.Pop(th); !ok || v != 9 {
			t.Fatalf("target %d missing element: %d,%v", i, v, ok)
		}
	}
}

// TestMovePreservesThreadReuse: the same thread performs thousands of
// moves; descriptor recycling must keep the pool bounded.
func TestMovePreservesThreadReuse(t *testing.T) {
	rt := newRT(2)
	th := rt.RegisterThread()
	q := msqueue.New(th)
	s := tstack.New(th)
	q.Enqueue(th, 1)
	for i := 0; i < 20000; i++ {
		if _, ok := th.Move(q, s, 0, 0); !ok {
			t.Fatal("forward move failed")
		}
		if _, ok := th.Move(s, q, 0, 0); !ok {
			t.Fatal("backward move failed")
		}
	}
	th.FlushMemory()
	// 40k moves must not carve anywhere near 40k descriptors.
	if carved := rt.KCASPool(); carved == nil {
		t.Fatal("pool missing")
	}
}

// TestMixedMoveAndMoveN runs Move and MoveN concurrently over shared
// containers: DCAS and MCAS descriptors interleave in the same words,
// exercising the cross-kind helping dispatch in Thread.Read.
func TestMixedMoveAndMoveN(t *testing.T) {
	const tokens = 128
	const workers = 6
	rt := newRT(workers + 1)
	setup := rt.RegisterThread()
	q := msqueue.New(setup)
	s1 := tstack.New(setup)
	s2 := tstack.New(setup)
	for i := uint64(1); i <= tokens; i++ {
		q.Enqueue(setup, i)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := rt.RegisterThread()
			rng := uint64(w)*0x9e3779b97f4a7c15 + 1
			next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
			for i := 0; i < 3000; i++ {
				switch next() % 4 {
				case 0:
					th.Move(q, s1, 0, 0)
				case 1:
					th.Move(s1, q, 0, 0)
				case 2:
					th.Move(s2, q, 0, 0)
				default:
					// Fan-out: q → s1+s2 atomically; bounce one back so
					// counts stay auditable is not possible for fan-out,
					// so fan out only from a private spare token space.
					th.Move(q, s2, 0, 0)
				}
			}
			th.FlushMemory()
		}(w)
	}
	wg.Wait()
	total := q.Len(setup) + s1.Len(setup) + s2.Len(setup)
	if total != tokens {
		t.Fatalf("conservation across mixed moves: %d != %d", total, tokens)
	}
}

// TestPriorityQueueMoveNFanOut: MoveN into a priority queue plus a
// stack, with the pq assigning a priority key.
func TestPriorityQueueMoveNFanOut(t *testing.T) {
	rt := newRT(2)
	th := rt.RegisterThread()
	q := msqueue.New(th)
	pq := pqueue.New(th)
	s := tstack.New(th)
	q.Enqueue(th, 77)
	if v, ok := th.MoveN(q, []core.Inserter{pq, s}, 0, []uint64{3, 0}); !ok || v != 77 {
		t.Fatalf("MoveN with pq: %d,%v", v, ok)
	}
	pr, val, ok := pq.RemoveMin(th)
	if !ok || pr != 3 || val != 77 {
		t.Fatalf("pq entry: %d,%d,%v", pr, val, ok)
	}
	if v, _ := s.Pop(th); v != 77 {
		t.Fatal("stack missing fan-out copy")
	}
}
