package integration

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/hashmap"
	"repro/internal/obs"
	"repro/internal/xrand"
)

// These tests pin the observability layer to the protocol it observes:
// the tracer's help events must attribute helper and victim correctly
// (the regression the kcas-publish park makes deterministic), and the
// registry's counters must reconcile exactly with the legacy stat
// accessors they absorbed — same atomics, same numbers, no drift.

func newObsRT(threads int, plan *fault.Plan) *core.Runtime {
	cfg := core.Config{
		MaxThreads:    threads,
		ArenaCapacity: 1 << 18,
		DescCapacity:  1 << 16,
		Obs:           obs.Config{Metrics: true, Trace: true},
	}
	if plan != nil {
		cfg.Fault = plan
	}
	return core.NewRuntime(cfg)
}

// TestTraceAttributesHelpToParkedOwner parks a mover immediately after
// it publishes its descriptor, forces a peer to help the orphaned
// operation, and asserts the drained trace contains the help event with
// the right attribution: recorded by the helper thread, with Peer
// naming the parked owner. This is the deterministic form of the
// helping-attribution guarantee — the park holds the announcement open
// so the peer's read cannot avoid helping.
func TestTraceAttributesHelpToParkedOwner(t *testing.T) {
	const key = 5
	plan := fault.NewPlan()
	rt := newObsRT(3, plan)
	setup := rt.RegisterThread()
	a := hashmap.NewSharded(setup, 1, 4, 0)
	b := hashmap.NewSharded(setup, 1, 4, 0)
	if !a.Insert(setup, key, 777) {
		t.Fatal("seed insert failed")
	}
	victim := rt.RegisterThread()
	plan.Park(fault.KCASAfterPublish, fault.Nth(1).OnThread(victim.ID()))

	done := make(chan struct{})
	go func() {
		defer close(done)
		victim.Move(a, b, key, key)
	}()
	for i := 0; plan.Parked() == 0; i++ {
		if i > 5000 {
			t.Fatal("victim never parked")
		}
		time.Sleep(time.Millisecond)
	}
	// The owner is parked after publish; the sweep's reads find the
	// announced descriptor and must enter the helping path.
	sweepOne(t, setup, a, b, key)
	plan.Release()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("victim did not return after release")
	}

	events := rt.Obs().Tracer().Drain()
	var publishes, helps int
	var sawAttributedHelp bool
	for _, ev := range events {
		switch ev.Kind {
		case obs.EvPublish:
			publishes++
			if ev.TID != int32(victim.ID()) {
				t.Fatalf("publish recorded by tid %d, want victim %d", ev.TID, victim.ID())
			}
		case obs.EvHelp:
			helps++
			if ev.TID == int32(victim.ID()) {
				t.Fatalf("help event recorded by the victim itself (tid %d)", ev.TID)
			}
			if ev.Peer == int32(victim.ID()) {
				sawAttributedHelp = true
			}
		}
	}
	if publishes == 0 {
		t.Fatal("no publish event in trace — the park fired after publish, so one must exist")
	}
	if helps == 0 {
		t.Fatal("no help event in trace — the peer completed a parked move without recording help")
	}
	if !sawAttributedHelp {
		t.Fatalf("no help event attributes the parked owner %d as its peer", victim.ID())
	}
	// The registry agrees with the trace.
	if got := rt.Obs().Metrics().Value(obs.KCASHelp); got != uint64(helps) {
		t.Fatalf("kcas_helps_total=%d but trace has %d help events", got, helps)
	}
}

// TestMetricsReconcileWithLegacyStats races movers between two maps,
// quiesces, and checks the registry snapshot against the legacy stat
// accessors it absorbed, plus the protocol's own conservation law:
// every published descriptor was decided exactly once, so publishes
// equal commits plus aborts in a kill-free run.
func TestMetricsReconcileWithLegacyStats(t *testing.T) {
	const workers = 4
	const tokens = 64
	rt := newObsRT(workers+1, nil)
	setup := rt.RegisterThread()
	a := hashmap.NewSharded(setup, 2, 4, 0)
	b := hashmap.NewSharded(setup, 2, 4, 0)
	for i := uint64(0); i < tokens; i++ {
		if !a.Insert(setup, i, 1000+i) {
			t.Fatalf("seed insert %d failed", i)
		}
	}
	ths := make([]*core.Thread, workers)
	for w := range ths {
		ths[w] = rt.RegisterThread()
	}
	doneCh := make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			th := ths[w]
			rng := xrand.New(uint64(w) + 1)
			for i := 0; i < 400; i++ {
				k := rng.Uint64() % tokens
				if w%2 == 0 {
					th.Move(a, b, k, k)
				} else {
					th.Move(b, a, k, k)
				}
			}
			doneCh <- struct{}{}
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-doneCh
	}

	snap := rt.Obs().Metrics().Snapshot()
	helps, strays, late := rt.KCASPool().Stats()
	khelps := rt.KCASPool().KHelps()
	if got := snap.Get("kcas_helps_total"); got != helps+khelps {
		t.Fatalf("kcas_helps_total=%d, pool reports %d (pair) + %d (kword)", got, helps, khelps)
	}
	if got := snap.Get("kcas_stray_cleanups_total"); got != strays {
		t.Fatalf("kcas_stray_cleanups_total=%d, pool reports %d", got, strays)
	}
	if got := snap.Get("kcas_late_p2_total"); got != late {
		t.Fatalf("kcas_late_p2_total=%d, pool reports %d", got, late)
	}
	if got := snap.Get("kcas_descs_carved_total"); got != rt.KCASPool().Carved() {
		t.Fatalf("kcas_descs_carved_total=%d, pool reports %d", got, rt.KCASPool().Carved())
	}
	pub := snap.Get("kcas_publish_total")
	dec := snap.Get("kcas_commits_total") + snap.Get("kcas_aborts_total")
	if pub == 0 {
		t.Fatal("kcas_publish_total is zero after thousands of moves")
	}
	if pub != dec {
		t.Fatalf("kcas_publish_total=%d but commits+aborts=%d — an announced descriptor was never decided (or double-counted)", pub, dec)
	}
	// The map's pulled counters match its own accessors.
	var retries uint64
	for _, m := range []*hashmap.Map{a, b} {
		for _, n := range m.ContentionStats() {
			retries += n
		}
	}
	if got := snap.Get("cas_retries_total"); got != retries {
		t.Fatalf("cas_retries_total=%d, maps report %d", got, retries)
	}
}
