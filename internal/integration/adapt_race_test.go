package integration

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/elim"
	"repro/internal/hashmap"
	"repro/internal/linearize"
	"repro/internal/tstack"
	"repro/internal/xrand"
)

// newAdaptRT builds a runtime with the adaptive subsystem deliberately
// twitchy: tiny epochs and one-retry thresholds, so shards go hot,
// windows resize and pacing kicks in within a short test run — the
// schedules the race detector should see.
func newAdaptRT(threads int) *core.Runtime {
	return core.NewRuntime(core.Config{
		MaxThreads:    threads,
		ArenaCapacity: 1 << 18,
		DescCapacity:  1 << 14,
		Elimination:   elim.Config{Slots: 2, Spins: 128},
		Adaptive: adapt.Config{
			Enable:         true,
			EpochOps:       128,
			GrowMisses:     2,
			GrowTraffic:    4,
			ShrinkTimeouts: 1,
			AttachRetries:  1,
			DetachRetries:  1, // detach on near-calm epochs…
			DetachEpochs:   2, // …two in a row: plenty of flapping
			PaceRetries:    2,
			PaceEpochs:     1,
		},
	})
}

// TestAdaptRacesMovesAndGrows races adaptive stacks and a map against
// Move, MoveN and shard grows — with controllers resizing windows,
// attaching hot shards and pacing splits underneath — then audits
// conservation: every token exactly once. The Move/MoveN elimination
// bypass is what keeps a descriptor-linearized move and a
// controller-steered exchange from ever linearizing the same operation
// twice, no matter how hot the controllers run.
func TestAdaptRacesMovesAndGrows(t *testing.T) {
	const workers = 6
	const tokens = 96
	const opsPer = 4000
	rt := newAdaptRT(workers + 1)
	setup := rt.RegisterThread()
	s1 := tstack.New(setup)
	s2 := tstack.New(setup)
	m := hashmap.NewSharded(setup, 2, 2, 4)
	for i := uint64(1); i <= tokens; i++ {
		switch i % 3 {
		case 0:
			s1.Push(setup, i)
		case 1:
			s2.Push(setup, i)
		default:
			m.Insert(setup, i, i)
		}
	}

	var moves atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		th := rt.RegisterThread()
		go func(w int, th *core.Thread) {
			defer wg.Done()
			rng := uint64(w+1) * 0x9e3779b97f4a7c15
			next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
			dsts := make([]core.Inserter, 1)
			tkeys := make([]uint64, 1)
			for i := 0; i < opsPer; i++ {
				tok := next()%tokens + 1
				switch next() % 8 {
				case 0: // stack-to-stack move (DCAS; elimination bypassed)
					if _, ok := th.Move(s1, s2, 0, 0); ok {
						moves.Add(1)
					}
				case 1:
					if _, ok := th.Move(s2, s1, 0, 0); ok {
						moves.Add(1)
					}
				case 2: // map-to-stack MoveN (may hit hot or mid-grow shards)
					dsts[0], tkeys[0] = s1, 0
					if _, ok := th.MoveN(m, dsts, tok, tkeys); ok {
						moves.Add(1)
					}
				case 3: // stack-to-map move
					if _, ok := th.Move(s2, m, 0, tok); ok {
						moves.Add(1)
					}
				case 4, 5: // stack churn through the elimination paths
					if v, ok := s1.Pop(th); ok {
						for !s1.Push(th, v) {
						}
					}
				default: // map churn: hot shards route losers to the array
					if v, ok := m.Remove(th, tok); ok {
						for !m.Insert(th, tok, v) {
							if s2.Push(th, v) {
								break
							}
						}
					}
				}
				if i%512 == 0 {
					runtime.Gosched()
				}
			}
		}(w, th)
	}
	wg.Wait()

	// Audit: drain everything; each token exactly once.
	seen := make(map[uint64]int)
	for {
		v, ok := s1.Pop(setup)
		if !ok {
			break
		}
		seen[v]++
	}
	for {
		v, ok := s2.Pop(setup)
		if !ok {
			break
		}
		seen[v]++
	}
	for _, k := range m.Keys(setup) {
		if v, ok := m.Remove(setup, k); ok {
			seen[v]++
		}
	}
	if len(seen) != tokens {
		t.Fatalf("%d distinct tokens, want %d", len(seen), tokens)
	}
	for tok, n := range seen {
		if n != 1 || tok == 0 || tok > tokens {
			t.Fatalf("token %d seen %d times", tok, n)
		}
	}
	st := m.AdaptStats()
	st.Add(s1.AdaptStats())
	st.Add(s2.AdaptStats())
	if st.Epochs == 0 {
		t.Fatal("no controller epoch completed; adaptation never ran")
	}
	grows, migrated, _ := m.Stats()
	t.Logf("moves=%d grows=%d migrated=%d adapt: epochs=%d win=+%d/-%d attach=%d/%d pace=+%d/-%d",
		moves.Load(), grows, migrated, st.Epochs, st.WindowGrows, st.WindowShrinks,
		st.Attaches, st.Detaches, st.PaceRaises, st.PaceDecays)
}

// TestAdaptLinearizableHistories records concurrent histories over two
// adaptive stacks — pushes, pops and atomic moves, with the
// controllers live and windows resizing — and checks every history
// against the sequential two-stack model.
func TestAdaptLinearizableHistories(t *testing.T) {
	const workers = 4
	const opsPer = 12
	for round := 0; round < 40; round++ {
		rt := newAdaptRT(workers + 1)
		setup := rt.RegisterThread()
		a, b := tstack.New(setup), tstack.New(setup)

		var ts atomic.Int64
		var mu sync.Mutex
		var hist []linearize.Op
		record := func(th int, name string, arg, ret uint64, ok bool, inv, retTS int64) {
			mu.Lock()
			hist = append(hist, linearize.Op{
				Thread: th, Name: name, Arg: arg, Ret: ret, RetOK: ok,
				Invoke: inv, Return: retTS,
			})
			mu.Unlock()
		}

		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			th := rt.RegisterThread()
			go func(w int, th *core.Thread) {
				defer wg.Done()
				rng := xrand.New(uint64(round*100 + w))
				for i := 0; i < opsPer; i++ {
					sx, name := a, "A"
					if rng.Uint64()&1 == 0 {
						sx, name = b, "B"
					}
					switch rng.Uint64() % 5 {
					case 0, 1:
						v := uint64(w+1)<<16 | uint64(i+1)
						inv := ts.Add(1)
						sx.Push(th, v)
						record(w, "ins"+name, v, 0, true, inv, ts.Add(1))
					case 2, 3:
						inv := ts.Add(1)
						v, ok := sx.Pop(th)
						record(w, "rem"+name, 0, v, ok, inv, ts.Add(1))
					default:
						src, dst, mv := a, b, "moveAB"
						if name == "B" {
							src, dst, mv = b, a, "moveBA"
						}
						inv := ts.Add(1)
						v, ok := th.Move(src, dst, 0, 0)
						record(w, mv, 0, v, ok, inv, ts.Add(1))
					}
				}
			}(w, th)
		}
		wg.Wait()

		model := linearize.PairModel{AKind: linearize.LIFO, BKind: linearize.LIFO}
		if !linearize.Check(model, hist) {
			t.Fatalf("round %d: history not linearizable:\n%v", round, hist)
		}
	}
}
