package integration

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/elim"
	"repro/internal/harness"
	"repro/internal/hashmap"
	"repro/internal/linearize"
	"repro/internal/msqueue"
	"repro/internal/tstack"
)

// These tests aim the linearizability oracle at the >2-object
// compositions the unified k-word CAS engine opens: SwapHeads (k-way
// head exchange), TransferN (multi-key cross-map transfer) and DrainN
// (amortized move runs), each racing the plain operations it composes
// with — and, for the maps, racing shard grows.

// TestSwapHeadsLinearizable records windows of pushes, pops and
// two-stack head swaps and checks them against a model in which the
// swap exchanges both heads in one atomic step.
func TestSwapHeadsLinearizable(t *testing.T) {
	for seed := uint64(1); seed <= 60; seed++ {
		const threads = 3
		rt := newRT(threads + 1)
		setup := rt.RegisterThread()
		sa := tstack.New(setup)
		sb := tstack.New(setup)
		model := linearize.PairModel{
			AKind: linearize.LIFO, BKind: linearize.LIFO,
			InitialA: []uint64{1, 2}, InitialB: []uint64{3},
		}
		for _, v := range model.InitialA {
			sa.Push(setup, v)
		}
		for _, v := range model.InitialB {
			sb.Push(setup, v)
		}

		rec := &recorder{}
		var val atomic.Uint64
		val.Store(100)
		var wg sync.WaitGroup
		for w := 0; w < threads; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				th := rt.RegisterThread()
				rng := seed ^ (uint64(w)+1)*0x9e3779b97f4a7c15
				next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
				for i := 0; i < 5; i++ {
					inv := rec.clock.Add(1)
					switch next() % 5 {
					case 0:
						v := val.Add(1)
						sa.Push(th, v)
						rec.record(w, "insA", v, 0, true, inv, rec.clock.Add(1))
					case 1:
						v, ok := sa.Pop(th)
						rec.record(w, "remA", 0, v, ok, inv, rec.clock.Add(1))
					case 2:
						v := val.Add(1)
						sb.Push(th, v)
						rec.record(w, "insB", v, 0, true, inv, rec.clock.Add(1))
					case 3:
						v, ok := sb.Pop(th)
						rec.record(w, "remB", 0, v, ok, inv, rec.clock.Add(1))
					default:
						ok := tstack.SwapHeads(th, sa, sb)
						rec.record(w, "swapAB", 0, 0, ok, inv, rec.clock.Add(1))
					}
				}
				th.FlushMemory()
			}(w)
		}
		wg.Wait()
		if !linearize.Check(model, rec.ops) {
			t.Fatalf("seed %d: SwapHeads history NOT linearizable:\n%v", seed, rec.ops)
		}
	}
}

// TestDrainNLinearizable records windows where one thread drains runs of
// elements queue→stack while others run single moves and plain ops.
// DrainN is a pipeline, not a transaction: each drained element is an
// individually linearizable move, so each is recorded as its own moveAB
// within the call's window.
func TestDrainNLinearizable(t *testing.T) {
	for seed := uint64(1); seed <= 60; seed++ {
		const threads = 3
		rt := newRT(threads + 1)
		setup := rt.RegisterThread()
		q := msqueue.New(setup)
		s := tstack.New(setup)
		model := linearize.PairModel{
			AKind: linearize.FIFO, BKind: linearize.LIFO,
			InitialA: []uint64{1, 2, 3}, InitialB: []uint64{4},
		}
		for _, v := range model.InitialA {
			q.Enqueue(setup, v)
		}
		for _, v := range model.InitialB {
			s.Push(setup, v)
		}

		rec := &recorder{}
		var val atomic.Uint64
		val.Store(100)
		var wg sync.WaitGroup
		for w := 0; w < threads; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				th := rt.RegisterThread()
				rng := seed ^ (uint64(w)+1)*0x9e3779b97f4a7c15
				next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
				out := make([]uint64, 3)
				for i := 0; i < 4; i++ {
					inv := rec.clock.Add(1)
					switch next() % 5 {
					case 0:
						v := val.Add(1)
						q.Enqueue(th, v)
						rec.record(w, "insA", v, 0, true, inv, rec.clock.Add(1))
					case 1:
						v, ok := q.Dequeue(th)
						rec.record(w, "remA", 0, v, ok, inv, rec.clock.Add(1))
					case 2:
						v, ok := s.Pop(th)
						rec.record(w, "remB", 0, v, ok, inv, rec.clock.Add(1))
					case 3:
						v, ok := th.Move(s, q, 0, 0)
						rec.record(w, "moveBA", 0, v, ok, inv, rec.clock.Add(1))
					default:
						moved := th.DrainN(q, s, 0, 0, 2+int(next()%2), out)
						ret := rec.clock.Add(1)
						if moved == 0 {
							rec.record(w, "moveAB", 0, 0, false, inv, ret)
						}
						for j := 0; j < moved; j++ {
							rec.record(w, "moveAB", 0, out[j], true, inv, ret)
						}
					}
				}
				th.FlushMemory()
			}(w)
		}
		wg.Wait()
		if len(rec.ops) > linearize.MaxOps {
			t.Fatalf("history too long: %d", len(rec.ops))
		}
		if !linearize.Check(model, rec.ops) {
			t.Fatalf("seed %d: DrainN history NOT linearizable:\n%v", seed, rec.ops)
		}
	}
}

// kv2 packs a two-pair transfer for the mv2 model ops (keys < 2^16).
func kv2(s1, t1, s2, t2 uint64) uint64 { return s1<<48 | t1<<32 | s2<<16 | t2 }

// TestTransferKeysLinearizableDuringGrow drives two-key transfers
// between two deliberately tiny maps while a rebalancer forces grows:
// the history must linearize against a model where both keys move in
// one atomic step — no ordering may see the transfer half-applied.
func TestTransferKeysLinearizableDuringGrow(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		const threads = 3
		rt := newRT(threads + 2)
		setup := rt.RegisterThread()
		ma := hashmap.NewSharded(setup, 2, 1, 2)
		mb := hashmap.NewSharded(setup, 2, 1, 2)
		model := linearize.MapPairModel{
			InitialA: map[uint64]uint64{1: 11, 2: 12, 3: 13},
			InitialB: map[uint64]uint64{4: 14},
		}
		for k, v := range model.InitialA {
			ma.Insert(setup, k, v)
		}
		for k, v := range model.InitialB {
			mb.Insert(setup, k, v)
		}

		var stop atomic.Bool
		var rwg sync.WaitGroup
		reb := rt.RegisterThread()
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for !stop.Load() {
				did := ma.RebalanceStep(reb)
				if mb.RebalanceStep(reb) {
					did = true
				}
				if !did {
					ma.Grow(reb)
					mb.Grow(reb)
					runtime.Gosched()
				}
			}
		}()

		const keys = 6
		rec := &recorder{}
		var wg sync.WaitGroup
		for w := 0; w < threads; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				th := rt.RegisterThread()
				rng := seed ^ (uint64(w)+1)*0x9e3779b97f4a7c15
				next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
				out := make([]uint64, 2)
				for i := 0; i < 5; i++ {
					k := next()%keys + 1
					a, b := ma, mb
					side, mv2 := "A", "mv2AB"
					if next()&1 == 0 {
						a, b = mb, ma
						side, mv2 = "B", "mv2BA"
					}
					inv := rec.clock.Add(1)
					switch next() % 4 {
					case 0:
						v := next()%1000 + 100
						ok := a.Insert(th, k, v)
						rec.record(w, "put"+side, kv(k, v), 0, ok, inv, rec.clock.Add(1))
					case 1:
						v, ok := a.Remove(th, k)
						rec.record(w, "del"+side, k, v, ok, inv, rec.clock.Add(1))
					case 2:
						v, ok := a.Contains(th, k)
						rec.record(w, "get"+side, k, v, ok, inv, rec.clock.Add(1))
					default:
						s1, s2 := k, next()%keys+1
						t1, t2 := next()%keys+1, next()%keys+1
						// TransferN needs distinct, word-independent keys on
						// each side; reroll conflicts instead of transferring.
						if s1 == s2 || t1 == t2 ||
							a.SameChain(s1, s2) || b.SameChain(t1, t2) {
							rec.record(w, mv2, kv2(s1, t1, s2, t2), 0, false, inv, rec.clock.Add(1))
							continue
						}
						ok := th.TransferN(a, b, []uint64{s1, s2}, []uint64{t1, t2}, out)
						rec.record(w, mv2, kv2(s1, t1, s2, t2), out[0]<<32|out[1], ok, inv, rec.clock.Add(1))
					}
				}
				th.FlushMemory()
			}(w)
		}
		wg.Wait()
		stop.Store(true)
		rwg.Wait()
		if !linearize.Check(model, rec.ops) {
			t.Fatalf("seed %d: transfer history racing grow NOT linearizable:\n%v", seed, rec.ops)
		}
	}
}

// TestComposedOpsRaceGrowsAndElimination races every composed operation
// against the machinery most likely to disturb it: SwapHeads against
// elimination-enabled stacks under push/pop churn, TransferN against
// growing maps, DrainN against reverse moves — all on one runtime, with
// token conservation checked at the end. Run under -race this is the
// integration sweep the CI race job executes.
func TestComposedOpsRaceGrowsAndElimination(t *testing.T) {
	const swappers = 2
	const churners = 2
	const transferers = 2
	const drainers = 2
	const iters = 2000

	rt := core.NewRuntime(core.Config{
		MaxThreads:    swappers + churners + transferers + drainers + 2,
		ArenaCapacity: 1 << 17,
		Elimination:   elim.Config{Enable: true, Slots: 2, Spins: 128},
	})
	setup := rt.RegisterThread()

	// Swap cell: 3 stacks, fixed token population.
	const kStacks = 3
	const perStack = 64
	stacks := make([]*tstack.Stack, kStacks)
	stackTokens := 0
	for i := range stacks {
		stacks[i] = tstack.New(setup)
		for j := 0; j < perStack; j++ {
			stacks[i].Push(setup, uint64(i*perStack+j+1))
			stackTokens++
		}
	}

	// Transfer cell: two tiny growing maps sharing a key population.
	const mapKeys = 96
	ma := hashmap.NewSharded(setup, 2, 1, 3)
	mb := hashmap.NewSharded(setup, 2, 1, 3)
	for k := uint64(1); k <= mapKeys; k++ {
		ma.Insert(setup, k, k*31)
	}

	// Drain cell: a queue/stack pair.
	const drainTokens = 128
	q := msqueue.New(setup)
	ds := tstack.New(setup)
	for j := uint64(0); j < drainTokens; j++ {
		q.Enqueue(setup, j+1)
	}

	var stop atomic.Bool
	var rwg sync.WaitGroup
	reb := rt.RegisterThread()
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		for !stop.Load() {
			if !ma.RebalanceStep(reb) && !mb.RebalanceStep(reb) {
				runtime.Gosched()
			}
		}
	}()

	var wg sync.WaitGroup
	spawn := func(n int, body func(w int, th *core.Thread)) {
		for w := 0; w < n; w++ {
			wg.Add(1)
			th := rt.RegisterThread()
			go func(w int, th *core.Thread) {
				defer wg.Done()
				body(w, th)
				th.FlushMemory()
			}(w, th)
		}
	}
	spawn(swappers, func(w int, th *core.Thread) {
		for i := 0; i < iters; i++ {
			tstack.SwapHeads(th, stacks...)
		}
	})
	spawn(churners, func(w int, th *core.Thread) {
		rng := uint64(w+1) * 0x9e3779b97f4a7c15
		next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
		for i := 0; i < iters; i++ {
			from := stacks[next()%kStacks]
			to := stacks[next()%kStacks]
			if v, ok := from.Pop(th); ok {
				for !to.Push(th, v) {
				}
			}
		}
	})
	spawn(transferers, func(w int, th *core.Thread) {
		rng := uint64(w+7) * 0x9e3779b97f4a7c15
		next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
		out := make([]uint64, 2)
		for i := 0; i < iters; i++ {
			a, b := ma, mb
			if next()&1 == 0 {
				a, b = mb, ma
			}
			s1 := next()%mapKeys + 1
			s2 := next()%mapKeys + 1
			if s1 == s2 || a.SameChain(s1, s2) || b.SameChain(s1, s2) {
				continue
			}
			th.TransferN(a, b, []uint64{s1, s2}, []uint64{s1, s2}, out)
		}
	})
	spawn(drainers, func(w int, th *core.Thread) {
		out := make([]uint64, 4)
		for i := 0; i < iters; i++ {
			if w%2 == 0 {
				th.DrainN(q, ds, 0, 0, 4, out)
			} else {
				th.Move(ds, q, 0, 0)
			}
		}
	})
	wg.Wait()
	stop.Store(true)
	rwg.Wait()

	// Conservation: every cell must hold exactly its initial tokens.
	got := 0
	for _, s := range stacks {
		got += s.Len(setup)
	}
	if got != stackTokens {
		t.Fatalf("swap cell: %d tokens, want %d", got, stackTokens)
	}
	ma.Quiesce(setup)
	mb.Quiesce(setup)
	for k := uint64(1); k <= mapKeys; k++ {
		va, inA := ma.Contains(setup, k)
		vb, inB := mb.Contains(setup, k)
		if inA == inB {
			t.Fatalf("key %d: in both/neither map (A=%v B=%v)", k, inA, inB)
		}
		v := va
		if inB {
			v = vb
		}
		if v != k*31 {
			t.Fatalf("key %d: value corrupted to %d", k, v)
		}
	}
	if got := q.Len(setup) + ds.Len(setup); got != drainTokens {
		t.Fatalf("drain cell: %d tokens, want %d", got, drainTokens)
	}
	grows, migrated, _ := ma.Stats()
	gb, mgb, _ := mb.Stats()
	if grows+gb == 0 {
		t.Fatal("no grow happened; the race was not exercised")
	}
	t.Logf("grows=%d migrated=%d", grows+gb, migrated+mgb)
}

// TestComposedHarnessCells smoke-tests the harness scenario driver for
// every composed operation; RunComposed panics on any conservation
// violation, so completing is the assertion.
func TestComposedHarnessCells(t *testing.T) {
	for _, op := range []harness.ComposedOp{harness.SwapOp, harness.TransferOp, harness.DrainOp} {
		res := harness.RunComposed(harness.ComposedOptions{
			Op: op, Threads: 4, TotalOps: 4000, Trials: 1, K: 3, Prefill: 64,
		})
		if len(res.SamplesNS) != 1 {
			t.Fatalf("%v: %d samples", op, len(res.SamplesNS))
		}
		t.Logf("%v: %.2fms, %.0f composed ops committed", op, res.MeanMS(), res.Succeeded)
	}
}
