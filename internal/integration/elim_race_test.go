package integration

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/elim"
	"repro/internal/hashmap"
	"repro/internal/tstack"
)

// newElimRT builds a runtime with the elimination layer on and a short
// parking window (the workload supplies its own concurrency; long
// windows would just slow the race down).
func newElimRT(threads int) *core.Runtime {
	return core.NewRuntime(core.Config{
		MaxThreads:    threads,
		ArenaCapacity: 1 << 18,
		DescCapacity:  1 << 14,
		Elimination:   elim.Config{Enable: true, Slots: 2, Spins: 128},
	})
}

// TestElimRacesMovesAndGrows races elimination-enabled stacks and a
// map against Move, MoveN and shard grows, then audits conservation:
// every token must exist exactly once. Run under -race this also checks
// the elimination array's memory accesses; the MoveInFlight bypass is
// what keeps the DCAS/MCAS descriptors and the side-channel exchange
// from ever linearizing the same operation twice.
func TestElimRacesMovesAndGrows(t *testing.T) {
	const workers = 6
	const tokens = 96
	const opsPer = 4000
	rt := newElimRT(workers + 1)
	setup := rt.RegisterThread()
	s1 := tstack.New(setup)
	s2 := tstack.New(setup)
	m := hashmap.NewSharded(setup, 2, 2, 4)
	for i := uint64(1); i <= tokens; i++ {
		switch i % 3 {
		case 0:
			s1.Push(setup, i)
		case 1:
			s2.Push(setup, i)
		default:
			m.Insert(setup, i, i)
		}
	}

	var moves atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		th := rt.RegisterThread()
		go func(w int, th *core.Thread) {
			defer wg.Done()
			rng := uint64(w+1) * 0x9e3779b97f4a7c15
			next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
			dsts := make([]core.Inserter, 1)
			tkeys := make([]uint64, 1)
			for i := 0; i < opsPer; i++ {
				tok := next()%tokens + 1
				switch next() % 8 {
				case 0: // stack-to-stack move (DCAS; elimination bypassed)
					if _, ok := th.Move(s1, s2, 0, 0); ok {
						moves.Add(1)
					}
				case 1:
					if _, ok := th.Move(s2, s1, 0, 0); ok {
						moves.Add(1)
					}
				case 2: // map-to-stack MoveN (MCAS; may hit a mid-grow shard)
					dsts[0], tkeys[0] = s1, 0
					if _, ok := th.MoveN(m, dsts, tok, tkeys); ok {
						moves.Add(1)
					}
				case 3: // stack-to-map move; the map insert may route mid-grow
					if _, ok := th.Move(s2, m, 0, tok); ok {
						moves.Add(1)
					}
				case 4, 5: // stack churn through the elimination paths
					if v, ok := s1.Pop(th); ok {
						for !s1.Push(th, v) {
						}
					}
				default: // map churn: removes may eliminate with parked inserts
					if v, ok := m.Remove(th, tok); ok {
						for !m.Insert(th, tok, v) {
							if s2.Push(th, v) {
								break
							}
						}
					}
				}
				if i%512 == 0 {
					runtime.Gosched()
				}
			}
		}(w, th)
	}
	wg.Wait()

	// Audit: drain everything; each token exactly once.
	seen := make(map[uint64]int)
	for {
		v, ok := s1.Pop(setup)
		if !ok {
			break
		}
		seen[v]++
	}
	for {
		v, ok := s2.Pop(setup)
		if !ok {
			break
		}
		seen[v]++
	}
	for _, k := range m.Keys(setup) {
		if v, ok := m.Remove(setup, k); ok {
			seen[v]++
		}
	}
	if len(seen) != tokens {
		t.Fatalf("%d distinct tokens, want %d", len(seen), tokens)
	}
	for tok, n := range seen {
		if n != 1 || tok == 0 || tok > tokens {
			t.Fatalf("token %d seen %d times", tok, n)
		}
	}
	h1, _ := s1.ElimStats()
	h2, _ := s2.ElimStats()
	hm, _ := m.ElimStats()
	t.Logf("moves=%d elim hits: s1=%d s2=%d map=%d", moves.Load(), h1, h2, hm)
}
