package integration

import (
	"testing"

	"repro/internal/core"
	"repro/internal/msqueue"
	"repro/internal/tstack"
)

// probeTarget records whether the thread was mid-move when its Insert
// ran, then delegates to a real stack — verifying the ltarget wiring of
// Algorithm 3 (M16).
type probeTarget struct {
	s        *tstack.Stack
	inFlight []bool
}

func (p *probeTarget) Insert(t *core.Thread, key, val uint64) bool {
	p.inFlight = append(p.inFlight, t.MoveInFlight())
	return p.s.Insert(t, key, val)
}

func (p *probeTarget) ObjectID() uint64 { return p.s.ObjectID() }

func TestInsertRunsInsideMoveContext(t *testing.T) {
	rt := newRT(2)
	th := rt.RegisterThread()
	q := msqueue.New(th)
	pt := &probeTarget{s: tstack.New(th)}
	q.Enqueue(th, 1)

	if _, ok := th.Move(q, pt, 0, 0); !ok {
		t.Fatal("move failed")
	}
	if len(pt.inFlight) == 0 || !pt.inFlight[0] {
		t.Fatal("target Insert must observe the move in flight (desc ≠ 0)")
	}
	if th.MoveInFlight() {
		t.Fatal("move state must be cleared after Move returns")
	}
	// A plain insert into the same target sees no move.
	pt.inFlight = nil
	pt.Insert(th, 0, 2)
	if pt.inFlight[0] {
		t.Fatal("plain insert must not observe a move in flight")
	}
}

// nestedMover tries to start a move from inside a move's insert; the
// runtime must reject it (one descriptor per thread, as in the paper's
// thread-local desc).
type nestedMover struct {
	s     *tstack.Stack
	inner *tstack.Stack
	src   *msqueue.Queue
}

func (n *nestedMover) Insert(t *core.Thread, key, val uint64) bool {
	t.Move(n.src, n.inner, 0, 0) // must panic
	return n.s.Insert(t, key, val)
}

func (n *nestedMover) ObjectID() uint64 { return n.s.ObjectID() }

func TestNestedMovePanics(t *testing.T) {
	rt := newRT(2)
	th := rt.RegisterThread()
	q := msqueue.New(th)
	q2 := msqueue.New(th)
	q.Enqueue(th, 1)
	q2.Enqueue(th, 2)
	nm := &nestedMover{s: tstack.New(th), inner: tstack.New(th), src: q2}
	defer func() {
		if recover() == nil {
			t.Fatal("nested move must panic")
		}
	}()
	th.Move(q, nm, 0, 0)
}

// TestMoveStateClearedAfterAbort: after an aborted move the thread must
// be reusable with no residual descriptor.
func TestMoveStateClearedAfterAbort(t *testing.T) {
	rt := newRT(2)
	th := rt.RegisterThread()
	q := msqueue.New(th)
	ft := &failingTarget{id: rt.NextObjectID()}
	q.Enqueue(th, 1)
	if _, ok := th.Move(q, ft, 0, 0); ok {
		t.Fatal("move should abort")
	}
	if th.MoveInFlight() {
		t.Fatal("abort left move state behind")
	}
	// Plain operations still behave.
	if v, ok := q.Dequeue(th); !ok || v != 1 {
		t.Fatal("queue unusable after aborted move")
	}
	q.Enqueue(th, 2)
	s := tstack.New(th)
	if v, ok := th.Move(q, s, 0, 0); !ok || v != 2 {
		t.Fatal("thread unusable after aborted move")
	}
}

// TestSeqCounter: thread-local sequence is strictly increasing.
func TestSeqCounter(t *testing.T) {
	rt := newRT(1)
	th := rt.RegisterThread()
	prev := th.Seq()
	for i := 0; i < 100; i++ {
		cur := th.Seq()
		if cur <= prev {
			t.Fatal("Seq must increase")
		}
		prev = cur
	}
}
