package integration

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/elim"
	"repro/internal/hashmap"
	"repro/internal/linearize"
	"repro/internal/msqueue"
	"repro/internal/tstack"
)

// These tests aim the linearizability oracle and the conservation
// invariant at the batched move pipeline: a flush amortizes fixed
// costs but every move in it must remain its own linearizable
// operation — racing plain Move/MoveN traffic, shard grows (whose
// entry relocations run through MoveN) and the elimination layer.

// runRecordedBatched mirrors runRecorded but issues every move through
// a per-thread MoveBuffer, flushing windows of up to flushLen moves.
// Each batched move is recorded with the flush's bracket as its
// interval: the move linearizes somewhere inside Flush, so an interval
// spanning the whole flush contains its linearization point.
func runRecordedBatched(t *testing.T, seed uint64, opsPerThread, threads, flushLen int) ([]linearize.Op, linearize.PairModel) {
	rt := newRT(threads + 1)
	setup := rt.RegisterThread()
	q := msqueue.New(setup)
	s := tstack.New(setup)
	model := linearize.PairModel{
		AKind: linearize.FIFO, BKind: linearize.LIFO,
		InitialA: []uint64{1, 2}, InitialB: []uint64{3},
	}
	for _, v := range model.InitialA {
		q.Enqueue(setup, v)
	}
	for _, v := range model.InitialB {
		s.Push(setup, v)
	}

	rec := &recorder{}
	var val atomic.Uint64
	val.Store(100)
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := rt.RegisterThread()
			buf := batch.New(th, flushLen)
			rng := seed ^ (uint64(w)+1)*0x9e3779b97f4a7c15
			next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
			// dirs buffers each pending move's direction (true: q→s) in
			// Add order so results can be recorded under the right name.
			dirs := make([]bool, 0, flushLen)
			flush := func() {
				if len(dirs) == 0 {
					return
				}
				inv := rec.clock.Add(1)
				res := buf.Flush()
				ret := rec.clock.Add(1)
				for i, r := range res {
					name := "moveAB"
					if !dirs[i] {
						name = "moveBA"
					}
					rec.record(w, name, 0, r.Val, r.OK, inv, ret)
				}
				dirs = dirs[:0]
			}
			for i := 0; i < opsPerThread; i++ {
				switch next() % 6 {
				case 0:
					flush() // keep plain ops ordered after buffered moves
					v := val.Add(1)
					inv := rec.clock.Add(1)
					q.Enqueue(th, v)
					rec.record(w, "insA", v, 0, true, inv, rec.clock.Add(1))
				case 1:
					flush()
					inv := rec.clock.Add(1)
					v, ok := q.Dequeue(th)
					rec.record(w, "remA", 0, v, ok, inv, rec.clock.Add(1))
				case 2:
					flush()
					v := val.Add(1)
					inv := rec.clock.Add(1)
					s.Push(th, v)
					rec.record(w, "insB", v, 0, true, inv, rec.clock.Add(1))
				case 3:
					flush()
					inv := rec.clock.Add(1)
					v, ok := s.Pop(th)
					rec.record(w, "remB", 0, v, ok, inv, rec.clock.Add(1))
				case 4:
					if !buf.Add(q, s, 0, 0) {
						flush()
						buf.Add(q, s, 0, 0)
					}
					dirs = append(dirs, true)
				default:
					if !buf.Add(s, q, 0, 0) {
						flush()
						buf.Add(s, q, 0, 0)
					}
					dirs = append(dirs, false)
				}
			}
			flush()
		}(w)
	}
	wg.Wait()
	return rec.ops, model
}

// TestBatchedMoveHistoriesLinearizable is Theorem 2 restated for the
// batch pipeline: histories where moves commit inside flushes must be
// linearizable against the same atomic-move model as plain Move — the
// flush bracket may not weaken any individual move.
func TestBatchedMoveHistoriesLinearizable(t *testing.T) {
	for seed := uint64(1); seed <= 60; seed++ {
		for _, flushLen := range []int{2, 4} {
			hist, model := runRecordedBatched(t, seed, 5, 3, flushLen)
			if len(hist) > linearize.MaxOps {
				t.Fatalf("history too long: %d", len(hist))
			}
			if !linearize.Check(model, hist) {
				t.Fatalf("seed %d flush %d: batched-move history NOT linearizable:\n%v",
					seed, flushLen, hist)
			}
		}
	}
}

// TestBatchedMoveConservationRacingGrows circulates unique tokens
// between two deliberately tiny sharded maps through batched keyed
// moves while other threads issue plain Move/MoveN over the same keys
// and a rebalancer forces and drives shard grows (each relocation a
// MoveN). After the storm every token must exist exactly once across
// the two maps and the fan-out audit queue must be empty.
func TestBatchedMoveConservationRacingGrows(t *testing.T) {
	const (
		tokens  = 64
		threads = 4
		ops     = 3000
	)
	rt := newRT(threads + 2)
	setup := rt.RegisterThread()
	ma := hashmap.NewSharded(setup, 2, 1, 2)
	mb := hashmap.NewSharded(setup, 2, 1, 2)
	audit := msqueue.New(setup)
	for i := uint64(1); i <= tokens; i++ {
		if i%2 == 0 {
			ma.Insert(setup, i, i)
		} else {
			mb.Insert(setup, i, i)
		}
	}

	var stop atomic.Bool
	var rwg sync.WaitGroup
	reb := rt.RegisterThread()
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		for !stop.Load() {
			did := ma.RebalanceStep(reb)
			if mb.RebalanceStep(reb) {
				did = true
			}
			if !did {
				ma.Grow(reb)
				mb.Grow(reb)
				runtime.Gosched()
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := rt.RegisterThread()
			buf := batch.New(th, 8)
			rng := uint64(w+1) * 0x9e3779b97f4a7c15
			next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
			for i := 0; i < ops; i++ {
				k := next()%tokens + 1
				src, dst := ma, mb
				if next()&1 == 0 {
					src, dst = mb, ma
				}
				switch next() % 3 {
				case 0: // batched keyed moves
					if !buf.Add(src, dst, k, k) {
						buf.Flush()
						buf.Add(src, dst, k, k)
					}
					if next()&3 == 0 {
						buf.Flush()
					}
				case 1: // plain keyed move
					th.Move(src, dst, k, k)
				default: // §8 fan-out through the audit queue
					dsts := []core.Inserter{dst, audit}
					th.MoveN(src, dsts, k, []uint64{k, 0})
					audit.Dequeue(th)
				}
			}
			buf.Flush()
			// Drain anything this thread's fan-outs left in the audit
			// queue back into a map slot.
			for {
				v, ok := audit.Dequeue(th)
				if !ok {
					break
				}
				for !ma.Insert(th, v, v) && !mb.Insert(th, v, v) {
				}
			}
		}(w)
	}
	wg.Wait()
	stop.Store(true)
	rwg.Wait()
	ma.Quiesce(setup)
	mb.Quiesce(setup)

	seen := make(map[uint64]int)
	for {
		v, ok := audit.Dequeue(setup)
		if !ok {
			break
		}
		seen[v]++
	}
	for k := uint64(1); k <= tokens; k++ {
		if v, ok := ma.Remove(setup, k); ok {
			seen[v]++
		}
		if v, ok := mb.Remove(setup, k); ok {
			seen[v]++
		}
	}
	if len(seen) != tokens {
		t.Fatalf("conservation violated: %d distinct tokens, want %d", len(seen), tokens)
	}
	for tok, n := range seen {
		if n != 1 {
			t.Fatalf("token %d seen %d times", tok, n)
		}
	}
}

// TestBatchedMoveConservationWithElimination runs batched stack-to-
// stack moves against heavy plain push/pop traffic with the
// elimination layer enabled: eliminated pairs exchange values off the
// shared top word, and the flush's moves must still go through their
// descriptors (the layer is bypassed in-move). Tokens are conserved;
// the push/pop noise uses a disjoint value range and must neither leak
// into nor swallow tokens.
func TestBatchedMoveConservationWithElimination(t *testing.T) {
	const (
		tokens  = 48
		threads = 4
		ops     = 4000
		noise   = 1 << 20 // noise values start here; tokens stay below
	)
	rt := core.NewRuntime(core.Config{
		MaxThreads:    threads + 1,
		ArenaCapacity: 1 << 18,
		DescCapacity:  1 << 16,
		Elimination:   elim.Config{Enable: true},
	})
	setup := rt.RegisterThread()
	s1 := tstack.New(setup)
	s2 := tstack.New(setup)
	for i := uint64(1); i <= tokens; i++ {
		if i%2 == 0 {
			s1.Push(setup, i)
		} else {
			s2.Push(setup, i)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := rt.RegisterThread()
			buf := batch.New(th, 6)
			rng := uint64(w+1) * 0x9e3779b97f4a7c15
			next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
			held := make([]uint64, 0, 8) // noise values this thread popped
			for i := 0; i < ops; i++ {
				src, dst := s1, s2
				if next()&1 == 0 {
					src, dst = s2, s1
				}
				switch next() & 3 {
				case 0: // batched moves
					if !buf.Add(src, dst, 0, 0) {
						buf.Flush()
						buf.Add(src, dst, 0, 0)
					}
				case 1:
					buf.Flush()
				case 2: // elimination-eligible push/pop noise
					src.Push(th, noise+next()%1024)
				default:
					if v, ok := dst.Pop(th); ok {
						if v >= noise {
							held = append(held, v)
							if len(held) > 4 {
								held = held[1:]
							}
						} else {
							// Popped a circulating token: put it straight
							// back so the final audit still sees it.
							for !dst.Push(th, v) {
							}
						}
					}
				}
			}
			buf.Flush()
		}(w)
	}
	wg.Wait()

	hits1, _ := s1.ElimStats()
	hits2, _ := s2.ElimStats()
	t.Logf("elimination hits during storm: %d", hits1+hits2)

	seen := make(map[uint64]int)
	drain := func(s *tstack.Stack) {
		for {
			v, ok := s.Pop(setup)
			if !ok {
				return
			}
			if v < noise {
				seen[v]++
			}
		}
	}
	drain(s1)
	drain(s2)
	if len(seen) != tokens {
		t.Fatalf("conservation violated: %d distinct tokens, want %d", len(seen), tokens)
	}
	for tok, n := range seen {
		if n != 1 {
			t.Fatalf("token %d seen %d times", tok, n)
		}
	}
}

// TestBatchFlushBypassesElimination pins the invariant that a batched
// move's commits never detour through the elimination array: a probe
// target asserts MoveInFlight during the flush, exactly like the plain
// Move probe in wiring_test.go.
func TestBatchFlushBypassesElimination(t *testing.T) {
	rt := core.NewRuntime(core.Config{
		MaxThreads:  2,
		Elimination: elim.Config{Enable: true},
	})
	th := rt.RegisterThread()
	q := msqueue.New(th)
	pt := &probeTarget{s: tstack.New(th)}
	q.Enqueue(th, 1)
	q.Enqueue(th, 2)

	buf := batch.New(th, 2)
	buf.Add(q, pt, 0, 0)
	buf.Add(q, pt, 0, 0)
	res := buf.Flush()
	if len(res) != 2 || !res[0].OK || !res[1].OK {
		t.Fatalf("flush results: %+v", res)
	}
	if len(pt.inFlight) != 2 {
		t.Fatalf("probe saw %d inserts, want 2", len(pt.inFlight))
	}
	for i, in := range pt.inFlight {
		if !in {
			t.Fatalf("flush commit %d ran outside a move context", i)
		}
	}
}
