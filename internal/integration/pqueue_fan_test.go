package integration

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/msqueue"
	"repro/internal/pqueue"
)

// TestPQueueMoveNFanOutEqualPriority exercises the priority queue as a
// §8 MoveN source under its own worst case: one RemoveMin feeding two
// destinations atomically while concurrent inserts land at the same
// priority (forcing the uniquifier-suffix collision path). The fan-out
// must stay all-or-nothing — each moved value appears in both
// destination queues exactly once — and nothing may be lost or
// duplicated between the priority queue and the fan-out queues.
func TestPQueueMoveNFanOutEqualPriority(t *testing.T) {
	// Sized for signal, not volume: equal-priority MoveN fan-outs
	// conflict on both destination tails and the shared minimum, so
	// every move already races hard; more ops only add wall time.
	const (
		movers    = 2
		inserters = 2
		moves     = 250
		inserts   = 400
		prio      = 5 // everyone fights over one priority level
	)
	rt := newRT(movers + inserters + 1)
	setup := rt.RegisterThread()
	pq := pqueue.New(setup)
	q1 := msqueue.New(setup)
	q2 := msqueue.New(setup)

	// Values are globally unique so the audit can track every element;
	// priorities are all equal.
	var nextVal uint64 = 1
	seed := 128
	for i := 0; i < seed; i++ {
		if !pq.Insert(setup, prio, nextVal) {
			t.Fatal("seed insert failed")
		}
		nextVal++
	}

	var wg sync.WaitGroup
	for w := 0; w < movers; w++ {
		th := rt.RegisterThread()
		wg.Add(1)
		go func(th *core.Thread) {
			defer wg.Done()
			dsts := []core.Inserter{q1, q2}
			tkeys := []uint64{0, 0}
			for i := 0; i < moves; i++ {
				th.MoveN(pq, dsts, 0, tkeys)
			}
		}(th)
	}
	valBase := nextVal + 1000000 // inserter values: disjoint unique range
	for w := 0; w < inserters; w++ {
		th := rt.RegisterThread()
		base := valBase + uint64(w)*inserts
		wg.Add(1)
		go func(th *core.Thread, base uint64) {
			defer wg.Done()
			for i := uint64(0); i < inserts; i++ {
				if !pq.Insert(th, prio, base+i) {
					t.Error("equal-priority insert failed outside a move")
					return
				}
			}
		}(th, base)
	}
	wg.Wait()

	// Audit. Every value that left the priority queue must be in both
	// fan-out queues exactly once; every value still in the priority
	// queue must be in neither; nothing else may exist.
	inQ1 := make(map[uint64]int)
	inQ2 := make(map[uint64]int)
	for {
		v, ok := q1.Dequeue(setup)
		if !ok {
			break
		}
		inQ1[v]++
	}
	for {
		v, ok := q2.Dequeue(setup)
		if !ok {
			break
		}
		inQ2[v]++
	}
	if len(inQ1) != len(inQ2) {
		t.Fatalf("fan-out split: q1 holds %d values, q2 holds %d", len(inQ1), len(inQ2))
	}
	for v, n := range inQ1 {
		if n != 1 || inQ2[v] != 1 {
			t.Fatalf("value %d: q1=%d q2=%d, want exactly one in each", v, n, inQ2[v])
		}
	}
	remaining := make(map[uint64]int)
	for {
		p, v, ok := pq.RemoveMin(setup)
		if !ok {
			break
		}
		if p != prio {
			t.Fatalf("value %d drained at priority %d, want %d", v, p, prio)
		}
		if inQ1[v] != 0 {
			t.Fatalf("value %d both fanned out and still in the priority queue", v)
		}
		remaining[v]++
	}
	for v, n := range remaining {
		if n != 1 {
			t.Fatalf("value %d present %d times in the priority queue", v, n)
		}
	}
	total := len(inQ1) + len(remaining)
	want := seed + movers*0 + inserters*inserts // seeds + inserted (moves conserve)
	if total != want {
		t.Fatalf("conservation violated: %d values accounted for, want %d", total, want)
	}
	if len(inQ1) == 0 {
		t.Fatal("no MoveN fan-out ever succeeded; the race never happened")
	}
}
