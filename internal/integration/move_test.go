// Package integration holds cross-module tests: the move operation over
// every container pairing, element conservation under contention, and
// the retry/abort protocol of Algorithm 3.
package integration

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/msqueue"
	"repro/internal/tstack"
)

func newRT(threads int) *core.Runtime {
	return core.NewRuntime(core.Config{
		MaxThreads:    threads,
		ArenaCapacity: 1 << 18,
		DescCapacity:  1 << 16,
	})
}

func TestMoveQueueToStack(t *testing.T) {
	rt := newRT(2)
	th := rt.RegisterThread()
	q := msqueue.New(th)
	s := tstack.New(th)
	q.Enqueue(th, 42)
	v, ok := th.Move(q, s, 0, 0)
	if !ok || v != 42 {
		t.Fatalf("move: v=%d ok=%v", v, ok)
	}
	if q.Len(th) != 0 || s.Len(th) != 1 {
		t.Fatalf("lengths after move: q=%d s=%d", q.Len(th), s.Len(th))
	}
	if got, _ := s.Pop(th); got != 42 {
		t.Fatal("moved value corrupted")
	}
}

func TestMoveStackToQueue(t *testing.T) {
	rt := newRT(2)
	th := rt.RegisterThread()
	q := msqueue.New(th)
	s := tstack.New(th)
	s.Push(th, 7)
	s.Push(th, 8)
	if v, ok := th.Move(s, q, 0, 0); !ok || v != 8 {
		t.Fatalf("move should take the stack top: v=%d ok=%v", v, ok)
	}
	if v, ok := q.Dequeue(th); !ok || v != 8 {
		t.Fatalf("queue should hold the moved element: v=%d ok=%v", v, ok)
	}
	if v, _ := s.Pop(th); v != 7 {
		t.Fatal("stack bottom disturbed")
	}
}

func TestMoveQueueToQueue(t *testing.T) {
	rt := newRT(2)
	th := rt.RegisterThread()
	q1 := msqueue.New(th)
	q2 := msqueue.New(th)
	for i := uint64(1); i <= 5; i++ {
		q1.Enqueue(th, i)
	}
	for i := uint64(1); i <= 5; i++ {
		if v, ok := th.Move(q1, q2, 0, 0); !ok || v != i {
			t.Fatalf("move %d: v=%d ok=%v", i, v, ok)
		}
	}
	for i := uint64(1); i <= 5; i++ {
		if v, ok := q2.Dequeue(th); !ok || v != i {
			t.Fatalf("FIFO order lost through moves: got %d want %d", v, i)
		}
	}
}

func TestMoveStackToStack(t *testing.T) {
	rt := newRT(2)
	th := rt.RegisterThread()
	s1 := tstack.New(th)
	s2 := tstack.New(th)
	s1.Push(th, 1)
	s1.Push(th, 2)
	th.Move(s1, s2, 0, 0) // moves 2
	th.Move(s1, s2, 0, 0) // moves 1
	if v, _ := s2.Pop(th); v != 1 {
		t.Fatal("stack-to-stack move order")
	}
	if v, _ := s2.Pop(th); v != 2 {
		t.Fatal("stack-to-stack move order")
	}
}

func TestMoveFromEmptyFails(t *testing.T) {
	rt := newRT(2)
	th := rt.RegisterThread()
	q := msqueue.New(th)
	s := tstack.New(th)
	if _, ok := th.Move(q, s, 0, 0); ok {
		t.Fatal("move from empty queue must fail")
	}
	if _, ok := th.Move(s, q, 0, 0); ok {
		t.Fatal("move from empty stack must fail")
	}
	// Objects unusable afterwards would indicate descriptor leakage.
	q.Enqueue(th, 1)
	if v, ok := th.Move(q, s, 0, 0); !ok || v != 1 {
		t.Fatal("move after failed move broken")
	}
}

func TestMoveSameObjectPanics(t *testing.T) {
	rt := newRT(2)
	th := rt.RegisterThread()
	q := msqueue.New(th)
	q.Enqueue(th, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("same-object move must panic")
		}
	}()
	th.Move(q, q, 0, 0)
}

// failingTarget rejects every insert in its init-phase (like a full
// container): scas is never reached, so the move must abort via
// insfailed (lines M15/M17).
type failingTarget struct{ id uint64 }

func (f *failingTarget) Insert(*core.Thread, uint64, uint64) bool { return false }
func (f *failingTarget) ObjectID() uint64                         { return f.id }

func TestMoveAbortsWhenTargetRejects(t *testing.T) {
	rt := newRT(2)
	th := rt.RegisterThread()
	q := msqueue.New(th)
	s := tstack.New(th)
	q.Enqueue(th, 11)
	s.Push(th, 22)

	ft := &failingTarget{id: rt.NextObjectID()}
	if _, ok := th.Move(q, ft, 0, 0); ok {
		t.Fatal("move into rejecting target must fail")
	}
	if q.Len(th) != 1 {
		t.Fatal("aborted move must leave the queue unchanged")
	}
	if _, ok := th.Move(s, ft, 0, 0); ok {
		t.Fatal("move into rejecting target must fail (stack)")
	}
	if s.Len(th) != 1 {
		t.Fatal("aborted move must leave the stack unchanged")
	}
	// Both sources still usable.
	if v, ok := th.Move(q, s, 0, 0); !ok || v != 11 {
		t.Fatal("source unusable after aborted move")
	}
}

// moveStress runs the conservation experiment: unique tokens distributed
// over two containers, threads randomly move between them and do
// pop+repush cycles; at the end every token must exist exactly once.
func moveStress(t *testing.T, mkA, mkB func(*core.Thread) core.MoveReady, threads, tokens, opsPer int) {
	rt := newRT(threads + 1)
	setup := rt.RegisterThread()
	a := mkA(setup)
	b := mkB(setup)
	for i := 0; i < tokens; i++ {
		if i%2 == 0 {
			a.Insert(setup, 0, uint64(i+1))
		} else {
			b.Insert(setup, 0, uint64(i+1))
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := rt.RegisterThread()
			rng := uint64(w)*0x9e3779b97f4a7c15 + 12345
			next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
			for i := 0; i < opsPer; i++ {
				switch next() % 4 {
				case 0:
					th.Move(a, b, 0, 0)
				case 1:
					th.Move(b, a, 0, 0)
				case 2:
					if v, ok := a.Remove(th, 0); ok {
						// Re-insert: the token stays in circulation.
						for !pick(next(), a, b).Insert(th, 0, v) {
						}
					}
				case 3:
					if v, ok := b.Remove(th, 0); ok {
						for !pick(next(), a, b).Insert(th, 0, v) {
						}
					}
				}
			}
			th.FlushMemory()
		}(w)
	}
	wg.Wait()

	seen := make(map[uint64]int)
	count := 0
	for _, c := range []core.MoveReady{a, b} {
		for {
			v, ok := c.Remove(setup, 0)
			if !ok {
				break
			}
			seen[v]++
			count++
		}
	}
	if count != tokens {
		t.Fatalf("conservation violated: started with %d tokens, ended with %d", tokens, count)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("token %d appears %d times (duplication!)", v, n)
		}
	}
	if v, ok := a.Remove(setup, 0); ok {
		t.Fatalf("container A still holds %d after drain", v)
	}
}

func pick(r uint64, a, b core.MoveReady) core.MoveReady {
	if r&1 == 0 {
		return a
	}
	return b
}

func TestMoveStressQueueQueue(t *testing.T) {
	moveStress(t,
		func(th *core.Thread) core.MoveReady { return msqueue.New(th) },
		func(th *core.Thread) core.MoveReady { return msqueue.New(th) },
		8, 512, 4000)
}

func TestMoveStressStackStack(t *testing.T) {
	moveStress(t,
		func(th *core.Thread) core.MoveReady { return tstack.New(th) },
		func(th *core.Thread) core.MoveReady { return tstack.New(th) },
		8, 512, 4000)
}

func TestMoveStressQueueStack(t *testing.T) {
	moveStress(t,
		func(th *core.Thread) core.MoveReady { return msqueue.New(th) },
		func(th *core.Thread) core.MoveReady { return tstack.New(th) },
		8, 512, 4000)
}

func TestMoveStressVersionedStacks(t *testing.T) {
	moveStress(t,
		func(th *core.Thread) core.MoveReady { return tstack.NewVersioned(th) },
		func(th *core.Thread) core.MoveReady { return tstack.NewVersioned(th) },
		8, 512, 4000)
}

// TestMoveStressSingleToken is the §7 worst case: one token bouncing
// between two stacks maximizes the remove-then-reinsert ABA that causes
// false helping; conservation must still hold.
func TestMoveStressSingleToken(t *testing.T) {
	moveStress(t,
		func(th *core.Thread) core.MoveReady { return tstack.New(th) },
		func(th *core.Thread) core.MoveReady { return tstack.New(th) },
		8, 1, 8000)
}

// TestNormalOpsDuringMoves interleaves heavy plain enqueue/dequeue with
// moves, checking that values never vanish and the per-value accounting
// holds (the paper's claim that normal operations coexist with moves).
func TestNormalOpsDuringMoves(t *testing.T) {
	const movers, workers, per = 4, 4, 5000
	rt := newRT(movers + workers + 1)
	setup := rt.RegisterThread()
	q := msqueue.New(setup)
	s := tstack.New(setup)

	var wg sync.WaitGroup
	var produced, consumed sync.Map
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := rt.RegisterThread()
			for i := 0; i < per; i++ {
				v := uint64(w+1)<<32 | uint64(i)
				produced.Store(v, true)
				q.Enqueue(th, v)
				if v2, ok := s.Pop(th); ok {
					if _, was := consumed.LoadOrStore(v2, true); was {
						t.Errorf("value %#x consumed twice", v2)
					}
				}
			}
			th.FlushMemory()
		}(w)
	}
	for m := 0; m < movers; m++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := rt.RegisterThread()
			for i := 0; i < per; i++ {
				th.Move(q, s, 0, 0)
			}
			th.FlushMemory()
		}()
	}
	wg.Wait()

	// Drain both; every produced value must be in consumed ∪ leftovers,
	// exactly once.
	for {
		v, ok := q.Dequeue(setup)
		if !ok {
			break
		}
		if _, was := consumed.LoadOrStore(v, true); was {
			t.Fatalf("value %#x both consumed and still queued", v)
		}
	}
	for {
		v, ok := s.Pop(setup)
		if !ok {
			break
		}
		if _, was := consumed.LoadOrStore(v, true); was {
			t.Fatalf("value %#x both consumed and still stacked", v)
		}
	}
	missing := 0
	produced.Range(func(k, _ any) bool {
		if _, ok := consumed.Load(k); !ok {
			missing++
		}
		return true
	})
	if missing != 0 {
		t.Fatalf("%d produced values vanished", missing)
	}
}
