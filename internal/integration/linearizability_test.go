package integration

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/linearize"
	"repro/internal/msqueue"
	"repro/internal/tstack"
)

// recorder captures operations with strictly ordered logical timestamps
// from a shared atomic counter.
type recorder struct {
	clock atomic.Int64
	mu    sync.Mutex
	ops   []linearize.Op
}

func (r *recorder) record(th int, name string, arg, ret uint64, ok bool, inv, retTS int64) {
	r.mu.Lock()
	r.ops = append(r.ops, linearize.Op{
		Thread: th, Name: name, Arg: arg, Ret: ret, RetOK: ok, Invoke: inv, Return: retTS,
	})
	r.mu.Unlock()
}

// run executes one recorded window of random operations over a
// queue(A)/stack(B) pair and returns the history. atomicMove selects
// the paper's Move versus the naive remove-then-insert composition
// (recorded as a single "move" op in both cases — that is the whole
// point: the naive version claims atomicity it does not have).
func runRecorded(t *testing.T, atomicMove bool, seed uint64, opsPerThread, threads int) ([]linearize.Op, linearize.PairModel) {
	rt := newRT(threads + 1)
	setup := rt.RegisterThread()
	q := msqueue.New(setup)
	s := tstack.New(setup)
	model := linearize.PairModel{
		AKind: linearize.FIFO, BKind: linearize.LIFO,
		InitialA: []uint64{1, 2}, InitialB: []uint64{3},
	}
	for _, v := range model.InitialA {
		q.Enqueue(setup, v)
	}
	for _, v := range model.InitialB {
		s.Push(setup, v)
	}

	rec := &recorder{}
	var val atomic.Uint64
	val.Store(100)
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := rt.RegisterThread()
			rng := seed ^ (uint64(w)+1)*0x9e3779b97f4a7c15
			next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
			for i := 0; i < opsPerThread; i++ {
				op := next() % 6
				inv := rec.clock.Add(1)
				switch op {
				case 0:
					v := val.Add(1)
					q.Enqueue(th, v)
					rec.record(w, "insA", v, 0, true, inv, rec.clock.Add(1))
				case 1:
					v, ok := q.Dequeue(th)
					rec.record(w, "remA", 0, v, ok, inv, rec.clock.Add(1))
				case 2:
					v := val.Add(1)
					s.Push(th, v)
					rec.record(w, "insB", v, 0, true, inv, rec.clock.Add(1))
				case 3:
					v, ok := s.Pop(th)
					rec.record(w, "remB", 0, v, ok, inv, rec.clock.Add(1))
				case 4:
					var v uint64
					var ok bool
					if atomicMove {
						v, ok = th.Move(q, s, 0, 0)
					} else if v, ok = q.Dequeue(th); ok {
						runtime.Gosched() // realistic preemption inside the gap
						s.Push(th, v)
					}
					rec.record(w, "moveAB", 0, v, ok, inv, rec.clock.Add(1))
				default:
					var v uint64
					var ok bool
					if atomicMove {
						v, ok = th.Move(s, q, 0, 0)
					} else if v, ok = s.Pop(th); ok {
						runtime.Gosched() // realistic preemption inside the gap
						q.Enqueue(th, v)
					}
					rec.record(w, "moveBA", 0, v, ok, inv, rec.clock.Add(1))
				}
			}
		}(w)
	}
	wg.Wait()
	return rec.ops, model
}

// TestMoveHistoriesLinearizable is the direct check of Theorem 2: every
// history produced with the DCAS-based move must be linearizable
// against a model in which move is one atomic step.
func TestMoveHistoriesLinearizable(t *testing.T) {
	for seed := uint64(1); seed <= 60; seed++ {
		hist, model := runRecorded(t, true, seed, 5, 3)
		if len(hist) > linearize.MaxOps {
			t.Fatalf("history too long: %d", len(hist))
		}
		if !linearize.Check(model, hist) {
			t.Fatalf("seed %d: atomic-move history NOT linearizable:\n%v", seed, hist)
		}
	}
}

// TestNaiveCompositionViolatesLinearizability demonstrates Figure 1c on
// real containers: recording the remove-then-insert composition as one
// "atomic" move yields non-linearizable histories once any window
// catches the intermediate state. (Each individual window may pass;
// across many seeds at least one must fail, otherwise the checker—or
// the test—is too weak to see the difference the paper's mechanism
// makes.)
func TestNaiveCompositionViolatesLinearizability(t *testing.T) {
	violations := 0
	for seed := uint64(1); seed <= 120; seed++ {
		hist, model := runRecorded(t, false, seed, 6, 3)
		if !linearize.Check(model, hist) {
			violations++
		}
	}
	if violations == 0 {
		t.Fatal("naive composition produced no linearizability violation in 120 windows; the oracle is not discriminating")
	}
	t.Logf("naive composition: %d/120 windows non-linearizable", violations)
}
