package integration

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/hashmap"
	"repro/internal/msqueue"
	"repro/internal/tstack"
)

func TestMoveNBasic(t *testing.T) {
	rt := newRT(2)
	th := rt.RegisterThread()
	src := msqueue.New(th)
	d1 := tstack.New(th)
	d2 := msqueue.New(th)
	d3 := tstack.New(th)
	src.Enqueue(th, 777)

	v, ok := th.MoveN(src, []core.Inserter{d1, d2, d3}, 0, []uint64{0, 0, 0})
	if !ok || v != 777 {
		t.Fatalf("MoveN: v=%d ok=%v", v, ok)
	}
	if src.Len(th) != 0 {
		t.Fatal("source must be empty")
	}
	for i, c := range []interface {
		Remove(*core.Thread, uint64) (uint64, bool)
	}{d1, d2, d3} {
		if got, ok := c.Remove(th, 0); !ok || got != 777 {
			t.Fatalf("target %d: got %d ok=%v", i, got, ok)
		}
	}
}

func TestMoveNFromEmptyFails(t *testing.T) {
	rt := newRT(2)
	th := rt.RegisterThread()
	src := tstack.New(th)
	d1 := msqueue.New(th)
	if _, ok := th.MoveN(src, []core.Inserter{d1}, 0, []uint64{0}); ok {
		t.Fatal("MoveN from empty must fail")
	}
	if d1.Len(th) != 0 {
		t.Fatal("failed MoveN must not touch targets")
	}
}

func TestMoveNAbortsOnDuplicateKey(t *testing.T) {
	rt := newRT(2)
	th := rt.RegisterThread()
	src := msqueue.New(th)
	m := hashmap.New(th, 4)
	s := tstack.New(th)
	src.Enqueue(th, 5)
	m.Insert(th, 9, 999) // target key occupied

	if _, ok := th.MoveN(src, []core.Inserter{s, m}, 0, []uint64{0, 9}); ok {
		t.Fatal("MoveN into occupied key must abort")
	}
	if src.Len(th) != 1 {
		t.Fatal("aborted MoveN must leave the source unchanged")
	}
	if s.Len(th) != 0 {
		t.Fatal("aborted MoveN must leave intermediate targets unchanged")
	}
	if v, _ := m.Contains(th, 9); v != 999 {
		t.Fatal("aborted MoveN disturbed the map")
	}
	// Retry with a free key succeeds.
	if v, ok := th.MoveN(src, []core.Inserter{s, m}, 0, []uint64{0, 10}); !ok || v != 5 {
		t.Fatalf("MoveN retry: %d,%v", v, ok)
	}
	if v, _ := m.Contains(th, 10); v != 5 {
		t.Fatal("MoveN result missing from map")
	}
	if v, _ := s.Pop(th); v != 5 {
		t.Fatal("MoveN result missing from stack")
	}
}

func TestMoveNValidation(t *testing.T) {
	rt := newRT(2)
	th := rt.RegisterThread()
	q := msqueue.New(th)
	s := tstack.New(th)
	q.Enqueue(th, 1)
	for name, f := range map[string]func(){
		"no targets":       func() { th.MoveN(q, nil, 0, nil) },
		"same as source":   func() { th.MoveN(q, []core.Inserter{q}, 0, []uint64{0}) },
		"duplicate target": func() { th.MoveN(q, []core.Inserter{s, s}, 0, []uint64{0, 0}) },
		"key mismatch":     func() { th.MoveN(q, []core.Inserter{s}, 0, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
	// Thread remains usable after the panics.
	if v, ok := th.Move(q, s, 0, 0); ok && v == 1 {
		return
	}
	t.Fatal("thread unusable after rejected MoveN")
}

// insertOnly wraps a stack exposing only the Inserter half — the shape
// of a target that can receive elements but was never meant to be a
// Remover (e.g. an append-only sink).
type insertOnly struct {
	s *tstack.Stack
}

func (io *insertOnly) Insert(t *core.Thread, key, val uint64) bool {
	return io.s.Insert(t, key, val)
}

// insertOnlyID additionally carries the wrapped object's identity.
type insertOnlyID struct {
	insertOnly
}

func (io *insertOnlyID) ObjectID() uint64 { return io.s.ObjectID() }

// TestMoveNDuplicateInsertOnlyTarget pins the target-aliasing precheck
// regression: the old precheck routed each prior target through a
// Remover type assertion, which yields nil for insert-only targets, so
// the pairwise-distinct check silently never fired and an aliased pair
// slipped into the chain (surfacing only as a mid-chain shared-word
// panic after the source remove had already been captured). The fixed
// precheck compares target identities directly and must reject the
// aliased pair up front, before anything is touched.
func TestMoveNDuplicateInsertOnlyTarget(t *testing.T) {
	rt := newRT(2)
	th := rt.RegisterThread()
	src := msqueue.New(th)
	s := tstack.New(th)
	src.Enqueue(th, 41)

	same := &insertOnly{s: s}
	withID := &insertOnlyID{insertOnly{s: s}}
	otherID := &insertOnlyID{insertOnly{s: s}} // distinct wrapper, same object

	for name, dsts := range map[string][]core.Inserter{
		"same wrapper twice":         {same, same},
		"distinct wrappers, same id": {withID, otherID},
	} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("%s: aliased insert-only targets must panic", name)
				}
				if msg, _ := r.(string); msg != "core: MoveN requires pairwise distinct targets" {
					// A mid-chain shared-word panic here would mean the
					// precheck regressed to the asRemover form.
					t.Fatalf("%s: wrong panic %v; the precheck must fire before the chain runs", name, r)
				}
			}()
			th.MoveN(src, dsts, 0, []uint64{0, 0})
		}()
		if src.Len(th) != 1 || s.Len(th) != 0 {
			t.Fatalf("%s: rejected MoveN must leave the objects untouched", name)
		}
	}

	// A single insert-only target remains legal, and the thread is intact.
	if v, ok := th.MoveN(src, []core.Inserter{same}, 0, []uint64{0}); !ok || v != 41 {
		t.Fatalf("single insert-only target: %d,%v", v, ok)
	}
	if v, _ := s.Pop(th); v != 41 {
		t.Fatal("element missing from target after MoveN")
	}
}

// TestMoveNConcurrentConservation: tokens are fanned out from a source
// queue into n containers atomically; total token count must multiply
// exactly by n, with every copy accounted.
func TestMoveNConcurrentConservation(t *testing.T) {
	const workers = 4
	const tokens = 200
	rt := newRT(workers + 1)
	setup := rt.RegisterThread()
	src := msqueue.New(setup)
	d1 := msqueue.New(setup)
	d2 := tstack.New(setup)
	for i := uint64(1); i <= tokens; i++ {
		src.Enqueue(setup, i)
	}
	var wg sync.WaitGroup
	moved := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := rt.RegisterThread()
			for {
				if _, ok := th.MoveN(src, []core.Inserter{d1, d2}, 0, []uint64{0, 0}); !ok {
					return // source drained
				}
				moved[w]++
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, m := range moved {
		total += m
	}
	if total != tokens {
		t.Fatalf("moved %d of %d tokens", total, tokens)
	}
	// Each target must hold each token exactly once.
	for name, drain := range map[string]func() map[uint64]int{
		"queue": func() map[uint64]int {
			got := map[uint64]int{}
			for {
				v, ok := d1.Dequeue(setup)
				if !ok {
					return got
				}
				got[v]++
			}
		},
		"stack": func() map[uint64]int {
			got := map[uint64]int{}
			for {
				v, ok := d2.Pop(setup)
				if !ok {
					return got
				}
				got[v]++
			}
		},
	} {
		got := drain()
		if len(got) != tokens {
			t.Fatalf("%s holds %d distinct tokens, want %d", name, len(got), tokens)
		}
		for v, n := range got {
			if n != 1 {
				t.Fatalf("%s: token %d appears %d times", name, v, n)
			}
		}
	}
}

// TestMoveNContendedTargets: concurrent MoveN and plain operations on
// the shared targets force MCAS conflicts and slot-wise retries.
func TestMoveNContendedTargets(t *testing.T) {
	const movers = 3
	const noisemakers = 3
	const tokens = 300
	rt := newRT(movers + noisemakers + 1)
	setup := rt.RegisterThread()
	src := msqueue.New(setup)
	d1 := tstack.New(setup)
	d2 := tstack.New(setup)
	for i := uint64(1); i <= tokens; i++ {
		src.Enqueue(setup, i)
	}
	var wg, moverWG sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < noisemakers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := rt.RegisterThread()
			noise := uint64(1 << 40) // disjoint from token values
			for {
				select {
				case <-stop:
					return
				default:
				}
				d1.Push(th, noise)
				d2.Push(th, noise)
				// Pop churns the tops; tokens that surface go back so
				// conservation still holds.
				if v, ok := d1.Pop(th); ok && v < 1<<40 {
					d1.Push(th, v)
				}
				if v, ok := d2.Pop(th); ok && v < 1<<40 {
					d2.Push(th, v)
				}
			}
		}(w)
	}
	moved := 0
	var mu sync.Mutex
	for w := 0; w < movers; w++ {
		wg.Add(1)
		moverWG.Add(1)
		go func() {
			defer wg.Done()
			defer moverWG.Done()
			th := rt.RegisterThread()
			for {
				if _, ok := th.MoveN(src, []core.Inserter{d1, d2}, 0, []uint64{0, 0}); !ok {
					return
				}
				mu.Lock()
				moved++
				mu.Unlock()
			}
		}()
	}
	moverWG.Wait()
	close(stop)
	wg.Wait()
	if moved != tokens {
		t.Fatalf("movers transferred %d of %d tokens", moved, tokens)
	}

	// Account tokens (noise values excluded).
	count1, count2 := map[uint64]int{}, map[uint64]int{}
	for {
		v, ok := d1.Pop(setup)
		if !ok {
			break
		}
		if v < 1<<40 {
			count1[v]++
		}
	}
	for {
		v, ok := d2.Pop(setup)
		if !ok {
			break
		}
		if v < 1<<40 {
			count2[v]++
		}
	}
	if len(count1) != tokens || len(count2) != tokens {
		t.Fatalf("targets hold %d/%d distinct tokens, want %d", len(count1), len(count2), tokens)
	}
	for v, n := range count1 {
		if n != 1 || count2[v] != 1 {
			t.Fatalf("token %d: counts %d/%d", v, n, count2[v])
		}
	}
}
