package integration

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/hashmap"
	"repro/internal/linearize"
	"repro/internal/msqueue"
)

// These tests aim the linearizability oracle and a conservation
// invariant at the sharded map's weakest moment: concurrent
// insert/remove/get/move operations racing a shard grow, while every
// relocated entry travels between buckets through MoveN.

func kv(k, v uint64) uint64 { return k<<32 | v }

// runRecordedMaps executes one recorded window of random keyed
// operations over two deliberately tiny sharded maps while a rebalancer
// goroutine forces and drives grows. Rebalancing is internal
// reorganization with no observable effect, so it is not recorded — the
// whole point is that the history must stay linearizable regardless.
func runRecordedMaps(t *testing.T, seed uint64, opsPerThread, threads int) ([]linearize.Op, linearize.MapPairModel) {
	rt := newRT(threads + 2)
	setup := rt.RegisterThread()
	// 2 shards × 1 bucket with a grow threshold of 2 entries/bucket:
	// the handful of keys below is already enough to trigger grows.
	ma := hashmap.NewSharded(setup, 2, 1, 2)
	mb := hashmap.NewSharded(setup, 2, 1, 2)
	model := linearize.MapPairModel{
		InitialA: map[uint64]uint64{1: 11, 2: 12},
		InitialB: map[uint64]uint64{3: 13},
	}
	for k, v := range model.InitialA {
		ma.Insert(setup, k, v)
	}
	for k, v := range model.InitialB {
		mb.Insert(setup, k, v)
	}

	var stop atomic.Bool
	var rwg sync.WaitGroup
	reb := rt.RegisterThread()
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		for !stop.Load() {
			did := ma.RebalanceStep(reb)
			if mb.RebalanceStep(reb) {
				did = true
			}
			if !did {
				ma.Grow(reb)
				mb.Grow(reb)
				runtime.Gosched()
			}
		}
	}()

	const keys = 6 // small key space keeps operations colliding
	rec := &recorder{}
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := rt.RegisterThread()
			rng := seed ^ (uint64(w)+1)*0x9e3779b97f4a7c15
			next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
			for i := 0; i < opsPerThread; i++ {
				k := next()%keys + 1
				a, b := ma, mb
				side := "A"
				if next()&1 == 0 {
					a, b = mb, ma
					side = "B"
				}
				inv := rec.clock.Add(1)
				switch next() % 4 {
				case 0:
					v := next()%1000 + 100
					ok := a.Insert(th, k, v)
					rec.record(w, "put"+side, kv(k, v), 0, ok, inv, rec.clock.Add(1))
				case 1:
					v, ok := a.Remove(th, k)
					rec.record(w, "del"+side, k, v, ok, inv, rec.clock.Add(1))
				case 2:
					v, ok := a.Contains(th, k)
					rec.record(w, "get"+side, k, v, ok, inv, rec.clock.Add(1))
				default:
					tk := next()%keys + 1
					name := "mvAB"
					if side == "B" {
						name = "mvBA"
					}
					v, ok := th.Move(a, b, k, tk)
					rec.record(w, name, kv(k, tk), v, ok, inv, rec.clock.Add(1))
				}
			}
			th.FlushMemory()
		}(w)
	}
	wg.Wait()
	stop.Store(true)
	rwg.Wait()
	return rec.ops, model
}

// TestMapHistoriesLinearizableDuringGrow is the map-side analogue of
// Theorem 2's check: histories of keyed operations racing grows must be
// linearizable against a model in which each operation — including the
// cross-map move — is one atomic step.
func TestMapHistoriesLinearizableDuringGrow(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		hist, model := runRecordedMaps(t, seed, 5, 3)
		if len(hist) > linearize.MaxOps {
			t.Fatalf("history too long: %d", len(hist))
		}
		if !linearize.Check(model, hist) {
			t.Fatalf("seed %d: map history racing grow NOT linearizable:\n%v", seed, hist)
		}
	}
}

// TestMapConservationAcrossGrows runs the exactly-once invariant hard:
// unique tokens circulate between two growing maps through keyed moves;
// after every round each token must exist in exactly one map with its
// value intact, and the per-shard counters must agree with a full walk.
func TestMapConservationAcrossGrows(t *testing.T) {
	const workers = 4
	const tokens = 192
	const rounds = 3
	rt := newRT(workers + 2)
	setup := rt.RegisterThread()
	ma := hashmap.NewSharded(setup, 2, 1, 3)
	mb := hashmap.NewSharded(setup, 2, 1, 3)
	for i := uint64(1); i <= tokens; i++ {
		if i%2 == 0 {
			ma.Insert(setup, i, i*31)
		} else {
			mb.Insert(setup, i, i*31)
		}
	}
	reb := rt.RegisterThread()
	workerTh := make([]*core.Thread, workers)
	for w := range workerTh {
		workerTh[w] = rt.RegisterThread()
	}
	for round := 0; round < rounds; round++ {
		var stop atomic.Bool
		var rwg sync.WaitGroup
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for !stop.Load() {
				if !ma.RebalanceStep(reb) && !mb.RebalanceStep(reb) {
					runtime.Gosched()
				}
			}
		}()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				th := workerTh[w]
				rng := uint64(w+1)*0x9e3779b97f4a7c15 + uint64(round)
				next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
				for i := 0; i < 3000; i++ {
					tok := next()%tokens + 1
					if next()&1 == 0 {
						th.Move(ma, mb, tok, tok)
					} else {
						th.Move(mb, ma, tok, tok)
					}
				}
				th.FlushMemory()
			}(w)
		}
		wg.Wait()
		stop.Store(true)
		rwg.Wait()
		ma.Quiesce(setup)
		mb.Quiesce(setup)

		for i := uint64(1); i <= tokens; i++ {
			va, inA := ma.Contains(setup, i)
			vb, inB := mb.Contains(setup, i)
			if inA == inB {
				t.Fatalf("round %d: token %d in both=%v maps", round, i, inA)
			}
			v := va
			if inB {
				v = vb
			}
			if v != i*31 {
				t.Fatalf("round %d: token %d corrupted to %d", round, i, v)
			}
		}
		if got := ma.Len(setup) + mb.Len(setup); got != tokens {
			t.Fatalf("round %d: counters say %d tokens, want %d", round, got, tokens)
		}
		if got := len(ma.Keys(setup)) + len(mb.Keys(setup)); got != tokens {
			t.Fatalf("round %d: bucket walk finds %d tokens, want %d", round, got, tokens)
		}
	}
	ga, miga, _ := ma.Stats()
	gb, migb, _ := mb.Stats()
	if ga+gb == 0 || miga+migb == 0 {
		t.Fatalf("grows=%d/%d migrated=%d/%d: the test never exercised a grow", ga, gb, miga, migb)
	}
	t.Logf("grows=%d+%d migrated=%d+%d", ga, gb, miga, migb)
}

// TestMoveNFanOutDuringGrow drives the §8 extension against a growing
// map: MoveN removes a key from one map and inserts it into a second
// map and an audit queue atomically, while the source keeps growing.
func TestMoveNFanOutDuringGrow(t *testing.T) {
	rt := newRT(3)
	setup := rt.RegisterThread()
	ma := hashmap.NewSharded(setup, 2, 1, 2)
	mb := hashmap.NewSharded(setup, 2, 1, 1<<30)
	q := msqueue.New(setup)

	const n = 300
	for i := uint64(1); i <= n; i++ {
		ma.Insert(setup, i, i*7)
	}
	ma.Grow(setup) // leave a grow permanently in flight on the source

	th := rt.RegisterThread()
	moved := 0
	for i := uint64(1); i <= n; i++ {
		// Drive a bit of migration between fan-outs so moves hit buckets
		// in every phase of the grow.
		ma.RebalanceStep(th)
		if _, ok := th.MoveN(ma, []core.Inserter{mb, q}, i, []uint64{i, 0}); ok {
			moved++
		}
	}
	for ma.RebalanceStep(th) {
	}
	if moved != n {
		t.Fatalf("moved %d of %d entries out of a growing map", moved, n)
	}
	if got := ma.Len(setup); got != 0 {
		t.Fatalf("source still holds %d entries", got)
	}
	if got := mb.Len(setup); got != n {
		t.Fatalf("target map holds %d entries, want %d", got, n)
	}
	if got := q.Len(setup); got != n {
		t.Fatalf("audit queue holds %d entries, want %d", got, n)
	}
	for i := uint64(1); i <= n; i++ {
		if v, ok := mb.Contains(setup, i); !ok || v != i*7 {
			t.Fatalf("entry %d=(%d,%v) corrupted by fan-out", i, v, ok)
		}
	}
}
