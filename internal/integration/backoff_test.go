package integration

import (
	"sync"
	"testing"

	"repro/internal/harrislist"
	"repro/internal/msqueue"
	"repro/internal/tstack"
)

// TestContainersWithBackoffEnabled exercises every container's
// conflict-retry path with the §6 exponential backoff switched on; the
// semantics must be identical to the no-backoff runs.
func TestContainersWithBackoffEnabled(t *testing.T) {
	const workers = 6
	const tokens = 128
	const opsPer = 3000
	rt := newRT(workers + 1)
	setup := rt.RegisterThread()
	q := msqueue.New(setup)
	s := tstack.New(setup)
	l := harrislist.New(setup)
	for i := uint64(1); i <= tokens; i++ {
		q.Enqueue(setup, i)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := rt.RegisterThread()
			th.EnableBackoff(4, 256)
			rng := uint64(w)*0x9e3779b97f4a7c15 + 77
			next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
			for i := 0; i < opsPer; i++ {
				switch next() % 6 {
				case 0:
					th.Move(q, s, 0, 0)
				case 1:
					th.Move(s, q, 0, 0)
				case 2:
					th.Move(q, l, 0, next()|1<<40) // unique-ish keys
				case 3:
					if _, v, ok := l.RemoveMin(th); ok {
						q.Enqueue(th, v)
					}
				case 4:
					if v, ok := q.Dequeue(th); ok {
						s.Push(th, v)
					}
				default:
					if v, ok := s.Pop(th); ok {
						q.Enqueue(th, v)
					}
				}
			}
			th.FlushMemory()
		}(w)
	}
	wg.Wait()
	total := q.Len(setup) + s.Len(setup) + l.Len(setup)
	if total != tokens {
		t.Fatalf("conservation with backoff: %d != %d", total, tokens)
	}
}

// TestBackoffDoesNotChangeSequentialSemantics: single-threaded, backoff
// waits never trigger (no conflicts) but the code paths are armed.
func TestBackoffDoesNotChangeSequentialSemantics(t *testing.T) {
	rt := newRT(2)
	th := rt.RegisterThread()
	th.EnableBackoff(4, 64)
	q := msqueue.New(th)
	s := tstack.New(th)
	for i := uint64(1); i <= 50; i++ {
		q.Enqueue(th, i)
	}
	for i := uint64(1); i <= 50; i++ {
		if v, ok := th.Move(q, s, 0, 0); !ok || v != i {
			t.Fatalf("move %d: %d,%v", i, v, ok)
		}
	}
	if s.Len(th) != 50 || q.Len(th) != 0 {
		t.Fatal("lengths")
	}
	th.DisableBackoff()
}
