package integration

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/hashmap"
	"repro/internal/xrand"
)

// These tests make the paper's central liveness claim executable: the
// helping protocol means a thread that stalls, parks or dies inside a
// composed operation's critical window cannot wedge the system — peers
// complete (or abort) the published descriptor and conservation holds.
// The fault injector (internal/fault) provides the adversarial
// scheduler: deterministic stalls, parks and hard kills at the
// descriptor-protocol windows.

func newFaultRT(threads int, plan *fault.Plan) *core.Runtime {
	return core.NewRuntime(core.Config{
		MaxThreads:    threads,
		ArenaCapacity: 1 << 18,
		DescCapacity:  1 << 16,
		Fault:         plan,
	})
}

// sweepOne asserts key lives in exactly one of the two maps and
// returns its value. The Contains reads themselves help any announced
// descriptor over the key's words to completion, so calling this on a
// quiesced-but-poisoned state (a parked or killed mover) both
// completes and verifies the move.
func sweepOne(t *testing.T, th *core.Thread, a, b *hashmap.Map, key uint64) uint64 {
	t.Helper()
	va, inA := a.Contains(th, key)
	vb, inB := b.Contains(th, key)
	if inA == inB {
		t.Fatalf("key %d: inA=%v inB=%v — want exactly one (lost or duplicated entry)", key, inA, inB)
	}
	if inA {
		return va
	}
	return vb
}

// TestPeersProgressDespiteStalls races movers between two maps while
// the injector stalls threads inside every critical window of the
// k-word CAS protocol. Stalled threads widen the windows in which
// peers find announced descriptors and must help; the outcome must be
// indistinguishable from an unfaulted run.
func TestPeersProgressDespiteStalls(t *testing.T) {
	const workers = 4
	const tokens = 64
	const opsPer = 300
	plan := fault.NewPlan().
		Stall(fault.KCASAfterPublish, 200*time.Microsecond, fault.Every(17)).
		Stall(fault.KCASBeforeCommit, 200*time.Microsecond, fault.Every(23)).
		Stall(fault.KCASBeforeRecycle, 100*time.Microsecond, fault.Every(31))
	rt := newFaultRT(workers+1, plan)
	setup := rt.RegisterThread()
	a := hashmap.NewSharded(setup, 2, 4, 0)
	b := hashmap.NewSharded(setup, 2, 4, 0)
	for i := uint64(0); i < tokens; i++ {
		if !a.Insert(setup, i, 1000+i) {
			t.Fatalf("seed insert %d failed", i)
		}
	}
	ths := make([]*core.Thread, workers)
	for w := range ths {
		ths[w] = rt.RegisterThread()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := ths[w]
			rng := xrand.New(uint64(w) + 1)
			for i := 0; i < opsPer; i++ {
				k := rng.Uint64() % tokens
				if w%2 == 0 {
					th.Move(a, b, k, k)
				} else {
					th.Move(b, a, k, k)
				}
			}
		}(w)
	}
	wg.Wait()
	if plan.FiredTotal() == 0 {
		t.Fatal("no fault rule ever fired — the test exercised nothing")
	}
	for k := uint64(0); k < tokens; k++ {
		if v := sweepOne(t, setup, a, b, k); v != 1000+k {
			t.Fatalf("key %d: value %d corrupted (want %d)", k, v, 1000+k)
		}
	}
}

// TestPeersCompleteParkedMove parks one mover between its descriptor's
// decision and commit, holding the operation's critical window open
// indefinitely. A peer's plain reads must complete the move while the
// owner is parked — the element observable in exactly one map — and
// releasing the park lets the owner return normally.
func TestPeersCompleteParkedMove(t *testing.T) {
	const key = 5
	plan := fault.NewPlan()
	rt := newFaultRT(3, plan)
	setup := rt.RegisterThread()
	a := hashmap.NewSharded(setup, 1, 4, 0)
	b := hashmap.NewSharded(setup, 1, 4, 0)
	if !a.Insert(setup, key, 777) {
		t.Fatal("seed insert failed")
	}
	victim := rt.RegisterThread()
	plan.Park(fault.KCASBeforeCommit, fault.Nth(1).OnThread(victim.ID()))

	done := make(chan struct{})
	var v uint64
	var ok bool
	go func() {
		defer close(done)
		v, ok = victim.Move(a, b, key, key)
	}()
	for i := 0; plan.Parked() == 0; i++ {
		if i > 5000 {
			t.Fatal("victim never parked")
		}
		time.Sleep(time.Millisecond)
	}
	// The owner is parked mid-protocol. The peer's sweep must find the
	// element exactly once — helping completes the decided move.
	if got := sweepOne(t, setup, a, b, key); got != 777 {
		t.Fatalf("value %d corrupted while owner parked", got)
	}
	if _, in := b.Contains(setup, key); !in {
		t.Fatal("decided move not completed by helping reader")
	}
	plan.Release()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("victim did not return after release")
	}
	if !ok || v != 777 {
		t.Fatalf("victim's move: v=%d ok=%v, want 777/true", v, ok)
	}
	if victim.MoveInFlight() {
		t.Fatal("victim completed yet still reports a move in flight")
	}
}

// TestPeersCompleteKilledMove hard-kills a mover right after it
// publishes its descriptor — the strongest crash model the protocol
// claims to tolerate: the thread is gone, its announcement is not.
// Peers must complete the orphaned move (element in exactly one map,
// value intact) and the dead thread must report MoveInFlight so a
// thread pool never reuses it.
func TestPeersCompleteKilledMove(t *testing.T) {
	const key = 9
	plan := fault.NewPlan()
	rt := newFaultRT(3, plan)
	setup := rt.RegisterThread()
	a := hashmap.NewSharded(setup, 1, 4, 0)
	b := hashmap.NewSharded(setup, 1, 4, 0)
	if !a.Insert(setup, key, 4242) {
		t.Fatal("seed insert failed")
	}
	victim := rt.RegisterThread()
	plan.Kill(fault.KCASAfterPublish, fault.Nth(1).OnThread(victim.ID()))

	done := make(chan struct{})
	returned := false
	go func() {
		defer close(done) // runs even on Goexit
		victim.Move(a, b, key, key)
		returned = true
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("victim goroutine neither returned nor died")
	}
	if returned {
		t.Fatal("kill rule did not fire — Move returned normally")
	}
	if plan.Kills() != 1 {
		t.Fatalf("kills = %d, want 1", plan.Kills())
	}
	if !victim.MoveInFlight() {
		t.Fatal("killed thread must report its move in flight (pool poisoning guard)")
	}
	// The orphaned descriptor is completed by the sweep's own reads.
	if got := sweepOne(t, setup, a, b, key); got != 4242 {
		t.Fatalf("value %d corrupted by orphaned move", got)
	}
	if _, in := b.Contains(setup, key); !in {
		t.Fatal("orphaned move not completed: element still (only) in source")
	}
}

// TestConservationUnderChaos is the integrated storm: stalls on every
// window plus one hard kill mid-run, racing movers over a shared token
// set. Afterwards every token must exist exactly once across the two
// maps with its value intact — the conservation property the chaos CI
// job asserts over the wire, checked here in-process under -race.
func TestConservationUnderChaos(t *testing.T) {
	const workers = 4
	const tokens = 48
	const opsPer = 250
	plan := fault.NewPlan().
		Stall(fault.KCASAfterPublish, 100*time.Microsecond, fault.Every(19)).
		Stall(fault.BatchPrepareCommit, 100*time.Microsecond, fault.Every(13)).
		Kill(fault.KCASAfterPublish, fault.Nth(40)) // whoever hits it 40th dies
	rt := newFaultRT(workers+1, plan)
	setup := rt.RegisterThread()
	a := hashmap.NewSharded(setup, 2, 4, 0)
	b := hashmap.NewSharded(setup, 2, 4, 0)
	for i := uint64(0); i < tokens; i++ {
		if !a.Insert(setup, i, 7000+i) {
			t.Fatalf("seed insert %d failed", i)
		}
	}
	ths := make([]*core.Thread, workers)
	for w := range ths {
		ths[w] = rt.RegisterThread()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done() // survives Goexit: the killed worker still checks in
			th := ths[w]
			rng := xrand.New(uint64(w) + 100)
			for i := 0; i < opsPer; i++ {
				k := rng.Uint64() % tokens
				if rng.Uint64()%2 == 0 {
					th.Move(a, b, k, k)
				} else {
					th.Move(b, a, k, k)
				}
			}
		}(w)
	}
	wg.Wait()
	if plan.Kills() != 1 {
		t.Fatalf("kills = %d, want exactly 1", plan.Kills())
	}
	lost := 0
	for w := 0; w < workers; w++ {
		if ths[w].MoveInFlight() {
			lost++
		}
	}
	if lost != 1 {
		t.Fatalf("poisoned threads = %d, want exactly the killed one", lost)
	}
	for k := uint64(0); k < tokens; k++ {
		if v := sweepOne(t, setup, a, b, k); v != 7000+k {
			t.Fatalf("key %d: value %d corrupted (want %d)", k, v, 7000+k)
		}
	}
}
