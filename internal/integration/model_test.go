package integration

import (
	"testing"
	"testing/quick"

	"repro/internal/hashmap"
	"repro/internal/msqueue"
	"repro/internal/pqueue"
	"repro/internal/tstack"
)

// Sequential model-based differential tests: drive each container and a
// trivial reference model with the same random operation stream and
// compare every observable result (property-based, testing/quick).

func TestQueueMatchesModel(t *testing.T) {
	rt := newRT(1)
	th := rt.RegisterThread()
	f := func(ops []uint8) bool {
		q := msqueue.New(th)
		var model []uint64
		for i, op := range ops {
			if op%2 == 0 {
				v := uint64(i + 1)
				if !q.Enqueue(th, v) {
					return false
				}
				model = append(model, v)
			} else {
				v, ok := q.Dequeue(th)
				if len(model) == 0 {
					if ok {
						return false
					}
					continue
				}
				if !ok || v != model[0] {
					return false
				}
				model = model[1:]
			}
		}
		return q.Len(th) == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestStackMatchesModel(t *testing.T) {
	rt := newRT(1)
	th := rt.RegisterThread()
	for _, versioned := range []bool{false, true} {
		f := func(ops []uint8) bool {
			var s *tstack.Stack
			if versioned {
				s = tstack.NewVersioned(th)
			} else {
				s = tstack.New(th)
			}
			var model []uint64
			for i, op := range ops {
				if op%2 == 0 {
					v := uint64(i + 1)
					if !s.Push(th, v) {
						return false
					}
					model = append(model, v)
				} else {
					v, ok := s.Pop(th)
					if len(model) == 0 {
						if ok {
							return false
						}
						continue
					}
					want := model[len(model)-1]
					if !ok || v != want {
						return false
					}
					model = model[:len(model)-1]
				}
			}
			return s.Len(th) == len(model)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Fatalf("versioned=%v: %v", versioned, err)
		}
	}
}

func TestHashMapMatchesModel(t *testing.T) {
	rt := newRT(1)
	th := rt.RegisterThread()
	f := func(ops []uint16) bool {
		m := hashmap.New(th, 4) // few buckets: long chains, more edge cases
		model := map[uint64]uint64{}
		for i, op := range ops {
			key := uint64(op % 24)
			switch (op / 24) % 3 {
			case 0:
				_, exists := model[key]
				if m.Insert(th, key, uint64(i)) == exists {
					return false
				}
				if !exists {
					model[key] = uint64(i)
				}
			case 1:
				want, exists := model[key]
				v, ok := m.Remove(th, key)
				if ok != exists || (ok && v != want) {
					return false
				}
				delete(model, key)
			default:
				want, exists := model[key]
				v, ok := m.Contains(th, key)
				if ok != exists || (ok && v != want) {
					return false
				}
			}
		}
		return m.Len(th) == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPQueueMatchesModel(t *testing.T) {
	rt := newRT(1)
	th := rt.RegisterThread()
	f := func(ops []uint8) bool {
		pq := pqueue.New(th)
		// Model: multiset of (priority, value); RemoveMin takes the
		// minimum priority; ties broken arbitrarily, so compare
		// priorities only and account values as a multiset.
		type entry struct{ pr, val uint64 }
		var model []entry
		for i, op := range ops {
			if op%2 == 0 {
				pr := uint64(op % 8)
				v := uint64(i + 1)
				if !pq.Insert(th, pr, v) {
					return false
				}
				model = append(model, entry{pr, v})
			} else {
				pr, v, ok := pq.RemoveMin(th)
				if len(model) == 0 {
					if ok {
						return false
					}
					continue
				}
				if !ok {
					return false
				}
				// Find the minimum priority in the model.
				minPr := model[0].pr
				for _, e := range model {
					if e.pr < minPr {
						minPr = e.pr
					}
				}
				if pr != minPr {
					return false
				}
				// Remove one matching (pr, v) entry.
				found := false
				for j, e := range model {
					if e.pr == pr && e.val == v {
						model = append(model[:j], model[j+1:]...)
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return pq.Len(th) == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestMoveMatchesModel drives random single-thread moves between a queue
// and a stack alongside a model where move is remove+insert executed
// atomically (trivially so here — this validates the sequential
// semantics of Move including ordering effects).
func TestMoveMatchesModel(t *testing.T) {
	rt := newRT(1)
	th := rt.RegisterThread()
	f := func(ops []uint8) bool {
		q := msqueue.New(th)
		s := tstack.New(th)
		var mq, ms []uint64
		for i, op := range ops {
			switch op % 4 {
			case 0:
				v := uint64(i + 1)
				q.Enqueue(th, v)
				mq = append(mq, v)
			case 1:
				v := uint64(i + 1)
				s.Push(th, v)
				ms = append(ms, v)
			case 2:
				got, gok := th.Move(q, s, 0, 0)
				if len(mq) == 0 {
					if gok {
						return false
					}
					continue
				}
				want := mq[0]
				if !gok || got != want {
					return false
				}
				mq = mq[1:]
				ms = append(ms, want)
			default:
				got, gok := th.Move(s, q, 0, 0)
				if len(ms) == 0 {
					if gok {
						return false
					}
					continue
				}
				want := ms[len(ms)-1]
				if !gok || got != want {
					return false
				}
				ms = ms[:len(ms)-1]
				mq = append(mq, want)
			}
		}
		return q.Len(th) == len(mq) && s.Len(th) == len(ms)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
