package mm

import (
	"sync"
	"testing"

	"repro/internal/arena"
	"repro/internal/hazard"
	"repro/internal/word"
)

func newTestManager(threads int) (*Manager, *hazard.Domain) {
	a := arena.New(arena.SlabSize * 4)
	dom := hazard.New(threads, 4)
	m := New(a, dom, Config{})
	return m, dom
}

func TestAllocResetsNode(t *testing.T) {
	m, _ := newTestManager(1)
	c := m.NewCache(0)
	ref := c.Alloc()
	n := m.Arena().Node(ref)
	n.Val, n.Key = 7, 8
	n.Next.Store(123)
	c.FreeDirect(ref)
	ref2 := c.Alloc()
	if ref2 != ref {
		t.Fatalf("expected LIFO local reuse, got %#x then %#x", ref, ref2)
	}
	n2 := m.Arena().Node(ref2)
	if n2.Val != 0 || n2.Key != 0 || n2.Next.Load() != word.Nil {
		t.Fatal("Alloc must reset node fields")
	}
}

func TestLocalListSpillsAt200(t *testing.T) {
	m, _ := newTestManager(1)
	c := m.NewCache(0)
	refs := make([]uint64, 0, LocalListCap+50)
	for i := 0; i < LocalListCap+50; i++ {
		refs = append(refs, c.Alloc())
	}
	for _, r := range refs {
		c.FreeDirect(r)
	}
	if m.GlobalSegments() == 0 {
		t.Fatal("freeing >200 nodes must spill a segment to the global stack")
	}
	if c.LocalFree() >= LocalListCap {
		t.Fatalf("local free list should stay under cap, has %d", c.LocalFree())
	}
}

func TestGlobalSegmentSharing(t *testing.T) {
	m, _ := newTestManager(2)
	c0 := m.NewCache(0)
	c1 := m.NewCache(1)
	// Thread 0 frees enough to spill.
	var refs []uint64
	for i := 0; i < LocalListCap; i++ {
		refs = append(refs, c0.Alloc())
	}
	for _, r := range refs {
		c0.FreeDirect(r)
	}
	if m.GlobalSegments() == 0 {
		t.Fatal("expected a spilled segment")
	}
	carvedBefore := m.Arena().Allocated()
	// Thread 1 allocates; it should refill from the global stack, not
	// carve fresh nodes.
	seen := make(map[uint64]bool)
	for i := 0; i < LocalListCap-1; i++ {
		r := c1.Alloc()
		if seen[word.NodeIndex(r)] {
			t.Fatal("node handed out twice")
		}
		seen[word.NodeIndex(r)] = true
	}
	if m.Arena().Allocated() != carvedBefore {
		t.Fatal("thread 1 should have reused spilled nodes instead of carving")
	}
}

func TestRetireHoldsProtectedNodes(t *testing.T) {
	m, dom := newTestManager(2)
	c := m.NewCache(0)
	ref := c.Alloc()
	idx := word.NodeIndex(ref)
	dom.Protect(1, 0, idx) // another thread protects it
	c.Retire(ref)
	c.Scan()
	if c.LocalRetired() != 1 {
		t.Fatal("protected node must stay retired")
	}
	// Nothing may re-allocate it.
	for i := 0; i < 50; i++ {
		if word.NodeIndex(c.Alloc()) == idx {
			t.Fatal("protected node was reallocated")
		}
	}
	dom.Clear(1, 0)
	c.Scan()
	if c.LocalRetired() != 0 {
		t.Fatal("unprotected node must be freed by scan")
	}
}

func TestRetireTriggersScanAtThreshold(t *testing.T) {
	a := arena.New(arena.SlabSize)
	dom := hazard.New(1, 2)
	m := New(a, dom, Config{RetireThreshold: 8})
	c := m.NewCache(0)
	refs := make([]uint64, 0, 8)
	for i := 0; i < 8; i++ {
		refs = append(refs, c.Alloc())
	}
	for _, r := range refs {
		c.Retire(r)
	}
	if c.LocalRetired() != 0 {
		t.Fatalf("retire threshold should have triggered a scan, %d left", c.LocalRetired())
	}
	_, frees, scans, _, _ := m.Stats()
	if frees != 8 || scans == 0 {
		t.Fatalf("stats: frees=%d scans=%d", frees, scans)
	}
}

func TestFlushPublishesEverything(t *testing.T) {
	m, _ := newTestManager(1)
	c := m.NewCache(0)
	for i := 0; i < 10; i++ {
		c.Retire(c.Alloc())
	}
	c.Flush()
	if c.LocalRetired() != 0 || c.LocalFree() != 0 {
		t.Fatalf("flush left retired=%d free=%d", c.LocalRetired(), c.LocalFree())
	}
	if m.GlobalSegments() == 0 {
		t.Fatal("flush must publish the free list globally")
	}
}

// TestNoDoubleHandout stresses alloc/free across threads and asserts a
// node is never owned by two threads at once.
func TestNoDoubleHandout(t *testing.T) {
	const workers = 4
	const rounds = 20000
	m, _ := newTestManager(workers)
	owners := make([]map[uint64]bool, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		owners[w] = make(map[uint64]bool)
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			c := m.NewCache(tid)
			held := make([]uint64, 0, 64)
			for i := 0; i < rounds; i++ {
				if i%3 != 2 || len(held) == 0 {
					r := c.Alloc()
					n := m.Arena().Node(r)
					// Claim the node; a concurrent owner would race here
					// and the final uniqueness check below would differ.
					n.Key = uint64(tid)<<32 | uint64(i)
					held = append(held, r)
				} else {
					r := held[len(held)-1]
					held = held[:len(held)-1]
					c.FreeDirect(r)
				}
			}
			for _, r := range held {
				owners[tid][word.NodeIndex(r)] = true
			}
		}(w)
	}
	wg.Wait()
	all := make(map[uint64]int)
	for w := 0; w < workers; w++ {
		for idx := range owners[w] {
			all[idx]++
		}
	}
	for idx, cnt := range all {
		if cnt > 1 {
			t.Fatalf("node %d held by %d threads at end", idx, cnt)
		}
	}
}
