// Package mm implements the lock-free memory manager the paper's
// evaluation uses for every implementation (§6):
//
//	"Freed nodes are placed on a local list with a capacity of 200
//	 nodes. When the list is full it is placed on a global lock-free
//	 stack. A process that requires more nodes accesses the global
//	 stack to get a new list of free nodes. Hazard pointers were used
//	 to prevent nodes in use from being reclaimed."
//
// Allocation order: per-thread free list, then a segment popped from the
// global stack, then fresh nodes carved from the arena. Retired nodes sit
// in a per-thread retire list until a hazard-pointer scan shows no thread
// protects them, then move to the free list.
//
// The global stack pushes freshly boxed segments (one small GC allocation
// per 200 freed nodes), which is the standard Go-safe way to get an
// ABA-free Treiber stack; see DESIGN.md §2 for the substitution note.
package mm

import (
	"sync/atomic"

	"repro/internal/arena"
	"repro/internal/hazard"
	"repro/internal/word"
)

// LocalListCap is the capacity of the per-thread free list — 200, the
// number the paper reports.
const LocalListCap = 200

// DefaultRetireThreshold is the retire-list length that triggers a hazard
// scan when the caller does not configure one.
const DefaultRetireThreshold = 128

// segment is one batch of free node indexes on the global stack.
type segment struct {
	refs []uint64
	next *segment
}

// Manager owns the global free-node state shared by all threads.
type Manager struct {
	arena  *arena.Arena
	dom    *hazard.Domain
	global atomic.Pointer[segment]

	carveBatch int
	retireAt   int

	// counters for tests and diagnostics
	frees   atomic.Uint64
	allocs  atomic.Uint64
	scans   atomic.Uint64
	spills  atomic.Uint64
	refills atomic.Uint64
}

// Config tunes a Manager.
type Config struct {
	// CarveBatch is how many fresh nodes to carve from the arena when
	// both the local list and the global stack are empty. Defaults to
	// LocalListCap.
	CarveBatch int
	// RetireThreshold is the retire-list length that triggers a scan.
	// Defaults to DefaultRetireThreshold.
	RetireThreshold int
}

// New creates a Manager over the given arena and node hazard domain.
func New(a *arena.Arena, dom *hazard.Domain, cfg Config) *Manager {
	if cfg.CarveBatch <= 0 {
		cfg.CarveBatch = LocalListCap
	}
	if cfg.RetireThreshold <= 0 {
		cfg.RetireThreshold = DefaultRetireThreshold
	}
	return &Manager{arena: a, dom: dom, carveBatch: cfg.CarveBatch, retireAt: cfg.RetireThreshold}
}

// Arena returns the backing arena.
func (m *Manager) Arena() *arena.Arena { return m.arena }

// pushGlobal publishes a full free list as a segment on the global stack.
func (m *Manager) pushGlobal(refs []uint64) {
	seg := &segment{refs: refs}
	for {
		top := m.global.Load()
		seg.next = top
		if m.global.CompareAndSwap(top, seg) {
			m.spills.Add(1)
			return
		}
	}
}

// popGlobal takes one segment off the global stack, or nil.
func (m *Manager) popGlobal() *segment {
	for {
		top := m.global.Load()
		if top == nil {
			return nil
		}
		if m.global.CompareAndSwap(top, top.next) {
			m.refills.Add(1)
			return top
		}
	}
}

// GlobalSegments counts segments currently on the global stack (O(n),
// tests only).
func (m *Manager) GlobalSegments() int {
	n := 0
	for s := m.global.Load(); s != nil; s = s.next {
		n++
	}
	return n
}

// Stats reports cumulative counters: allocations, frees, hazard scans,
// spills to and refills from the global stack.
func (m *Manager) Stats() (allocs, frees, scans, spills, refills uint64) {
	return m.allocs.Load(), m.frees.Load(), m.scans.Load(), m.spills.Load(), m.refills.Load()
}

// Cache is the per-thread view of the manager. Not safe for concurrent
// use; each registered thread owns exactly one.
type Cache struct {
	m       *Manager
	tid     int
	free    []uint64
	retired []uint64
	snap    []uint64
}

// NewCache creates the per-thread cache for thread tid.
func (m *Manager) NewCache(tid int) *Cache {
	return &Cache{
		m:       m,
		tid:     tid,
		free:    make([]uint64, 0, LocalListCap+1),
		retired: make([]uint64, 0, m.retireAt+16),
	}
}

// Alloc returns a fresh node reference with the node's words reset. The
// reference has tag 0 and no marks.
func (c *Cache) Alloc() uint64 {
	idx := c.allocIndex()
	n := c.m.arena.NodeAt(idx)
	n.Next.Store(word.Nil)
	n.Aux.Store(word.Nil)
	n.Val = 0
	n.Key = 0
	c.m.allocs.Add(1)
	return word.MakeNode(idx, 0)
}

func (c *Cache) allocIndex() uint64 {
	if n := len(c.free); n > 0 {
		idx := c.free[n-1]
		c.free = c.free[:n-1]
		return idx
	}
	if seg := c.m.popGlobal(); seg != nil {
		c.free = append(c.free[:0], seg.refs...)
		idx := c.free[len(c.free)-1]
		c.free = c.free[:len(c.free)-1]
		return idx
	}
	c.free = c.m.arena.Carve(c.free[:0], c.m.carveBatch)
	idx := c.free[len(c.free)-1]
	c.free = c.free[:len(c.free)-1]
	return idx
}

// Retire hands a node back once it has been unlinked from every shared
// structure. The node is not reusable until a hazard scan proves no
// thread still protects it.
func (c *Cache) Retire(ref uint64) {
	c.retired = append(c.retired, word.NodeIndex(ref))
	c.m.frees.Add(1)
	if len(c.retired) >= c.m.retireAt {
		c.Scan()
	}
}

// ScanHeadroom reports how many more Retire calls this cache absorbs
// before the next hazard scan fires. Batch flushes use it to decide
// whether deferring retirement (so the scan does not trip over the
// flush's own stale protections) is worth the bookkeeping.
func (c *Cache) ScanHeadroom() int { return c.m.retireAt - len(c.retired) }

// FreeDirect returns a node that was never published to any shared word
// (for example an insert aborted before its linearization CAS, lines
// Q15–Q17 / S8–S10). No other thread can hold a reference, so it skips
// the hazard scan.
func (c *Cache) FreeDirect(ref uint64) {
	c.m.frees.Add(1)
	c.pushFree(word.NodeIndex(ref))
}

// Scan partitions the retire list against a snapshot of all hazard
// pointers; unprotected nodes move to the free list (Michael's scan).
func (c *Cache) Scan() {
	c.m.scans.Add(1)
	c.snap = c.m.dom.Snapshot(c.snap)
	kept := c.retired[:0]
	for _, idx := range c.retired {
		if hazard.Protected(c.snap, idx) {
			kept = append(kept, idx)
		} else {
			c.pushFree(idx)
		}
	}
	c.retired = kept
}

// pushFree appends to the local free list, spilling a full segment to the
// global stack at LocalListCap, per §6.
func (c *Cache) pushFree(idx uint64) {
	c.free = append(c.free, idx)
	if len(c.free) >= LocalListCap {
		seg := make([]uint64, len(c.free))
		copy(seg, c.free)
		c.m.pushGlobal(seg)
		c.free = c.free[:0]
	}
}

// Flush force-scans until the retire list is empty or stops shrinking,
// then spills the free list to the global stack. Used at thread
// shutdown so another thread can reuse the memory.
func (c *Cache) Flush() {
	for prev := -1; len(c.retired) > 0 && len(c.retired) != prev; {
		prev = len(c.retired)
		c.Scan()
	}
	if len(c.free) > 0 {
		seg := make([]uint64, len(c.free))
		copy(seg, c.free)
		c.m.pushGlobal(seg)
		c.free = c.free[:0]
	}
}

// LocalFree and LocalRetired expose list lengths for tests.
func (c *Cache) LocalFree() int    { return len(c.free) }
func (c *Cache) LocalRetired() int { return len(c.retired) }
