// Package latency provides HDR-style latency histograms built for
// lock-free measurement paths: recording is a couple of atomic adds on
// a histogram owned by one worker, histograms are striped per worker
// (see Recorder) so hot paths never share cache lines or take locks,
// and stripes are merged only at report time. The bucket layout is
// log-linear (a power-of-two exponent range with 2^subBucketBits
// linear sub-buckets per octave), giving a bounded relative error of
// at most 1/2^(subBucketBits-1) — about 3% — across the whole
// trackable range, which is what per-op p50/p99/p999 reporting needs:
// constant memory, no per-sample allocation, and tails that are not
// averaged away.
//
// The package is measurement infrastructure for the service layer
// (cmd/kvserver records per-tenant per-op service times, cmd/kvload
// records open-loop response times from intended send time) and for
// the harness's per-tenant latency mode; it has no dependency on the
// containers.
package latency

import (
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// subBucketBits sets the linear resolution inside each octave:
	// 2^subBucketBits sub-buckets, so the worst-case relative error of
	// a reported quantile is 1/2^(subBucketBits-1) (~3.1%).
	subBucketBits = 6
	subCount      = 1 << subBucketBits
	halfCount     = subCount / 2

	// maxTrackableNS caps recorded values (~73 minutes in nanoseconds);
	// larger samples clamp into the top bucket rather than overflowing.
	maxTrackableNS = int64(1) << 42

	// numBuckets covers values in [0, maxTrackableNS]: one full linear
	// octave block of subCount buckets, then halfCount buckets per
	// additional octave.
	numBuckets = subCount + (43-subBucketBits)*halfCount
)

// bucketIndex maps a non-negative nanosecond value to its bucket.
func bucketIndex(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	if ns > maxTrackableNS {
		ns = maxTrackableNS
	}
	v := uint64(ns)
	// exp is 0 for v < subCount; otherwise the number of low bits
	// dropped so that v>>exp lands in [halfCount, subCount).
	exp := bits.Len64(v|(subCount-1)) - subBucketBits
	if exp == 0 {
		return int(v)
	}
	return exp*halfCount + int(v>>uint(exp))
}

// bucketMid returns a representative value (the bucket's midpoint) for
// a bucket index, the value quantile queries report.
func bucketMid(i int) int64 {
	if i < subCount {
		return int64(i)
	}
	exp := i/halfCount - 1
	sub := int64(i - exp*halfCount)
	lo := sub << uint(exp)
	return lo + (int64(1)<<uint(exp))/2
}

// Hist is one latency histogram. Record is safe for concurrent use
// (all state is atomic), but the intended discipline is one writer per
// Hist — the Recorder stripes one per worker — with concurrent readers
// taking Snapshots at report time.
type Hist struct {
	count  atomic.Uint64
	sumNS  atomic.Uint64
	maxNS  atomic.Int64
	counts [numBuckets]atomic.Uint64
}

// NewHist creates an empty histogram.
func NewHist() *Hist { return &Hist{} }

// Record adds one duration sample. Negative durations clamp to zero;
// samples beyond the trackable range clamp into the top bucket.
func (h *Hist) Record(d time.Duration) { h.RecordNS(d.Nanoseconds()) }

// RecordNS adds one sample in nanoseconds.
func (h *Hist) RecordNS(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sumNS.Add(uint64(ns))
	for {
		cur := h.maxNS.Load()
		if ns <= cur || h.maxNS.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Snapshot copies the histogram's current state. It is safe to take
// while writers are recording; the copy is internally consistent
// enough for reporting (bucket totals may trail count by in-flight
// samples).
func (h *Hist) Snapshot() Snapshot {
	s := Snapshot{
		Count: h.count.Load(),
		SumNS: h.sumNS.Load(),
		MaxNS: h.maxNS.Load(),
	}
	if s.Count == 0 {
		return s
	}
	s.counts = make([]uint64, numBuckets)
	for i := range h.counts {
		s.counts[i] = h.counts[i].Load()
	}
	return s
}

// Snapshot is an immutable merged view of one or more histograms.
type Snapshot struct {
	Count  uint64
	SumNS  uint64
	MaxNS  int64
	counts []uint64
}

// Merge folds other into s.
func (s *Snapshot) Merge(other Snapshot) {
	s.Count += other.Count
	s.SumNS += other.SumNS
	if other.MaxNS > s.MaxNS {
		s.MaxNS = other.MaxNS
	}
	if other.counts == nil {
		return
	}
	if s.counts == nil {
		s.counts = make([]uint64, numBuckets)
	}
	for i, c := range other.counts {
		s.counts[i] += c
	}
}

// Percentile returns the latency (ns) at quantile q in [0,1]: the
// representative value of the bucket where the cumulative count
// crosses q×Count. Zero when the snapshot is empty.
func (s Snapshot) Percentile(q float64) int64 {
	if s.Count == 0 || s.counts == nil {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Bucket totals can trail Count when a snapshot raced writers; rank
	// against the buckets actually seen.
	var total uint64
	for _, c := range s.counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum uint64
	for i, c := range s.counts {
		cum += c
		if cum > rank {
			return bucketMid(i)
		}
	}
	return bucketMid(numBuckets - 1)
}

// Sub returns the delta snapshot s minus prev, where prev is an
// earlier snapshot of the same (merged) histograms: the samples
// recorded in the interval between the two. Overload controllers use
// it to compute windowed percentiles — a p99 over the last control
// period, not over the process lifetime, so a recovered overload stops
// biasing the signal. MaxNS is carried from s (maxima are not
// invertible); a prev that is not an ancestor of s (counts exceeding
// s's) clamps to zero rather than wrapping.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	d := Snapshot{
		Count: s.Count - min(prev.Count, s.Count),
		SumNS: s.SumNS - min(prev.SumNS, s.SumNS),
		MaxNS: s.MaxNS,
	}
	if s.counts == nil {
		return d
	}
	d.counts = make([]uint64, len(s.counts))
	copy(d.counts, s.counts)
	for i := range prev.counts {
		if i >= len(d.counts) {
			break
		}
		d.counts[i] -= min(prev.counts[i], d.counts[i])
	}
	return d
}

// Max returns the exact largest recorded sample in nanoseconds (0 when
// empty). Unlike Percentile(1), which reports a bucket midpoint with
// the layout's ~3.1% relative error, Max is tracked exactly (atomic
// max alongside the buckets) — exemplar thresholds and stall forensics
// need the true worst case, not a bucket approximation. Merge takes
// the larger of the two maxima; Sub carries s's max (maxima are not
// invertible over a window).
func (s Snapshot) Max() int64 { return s.MaxNS }

// MeanNS returns the mean sample in nanoseconds (0 when empty).
func (s Snapshot) MeanNS() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumNS) / float64(s.Count)
}
