package latency

import "testing"

// Edge cases of the windowed-delta arithmetic the overload controller
// depends on: an empty window must read as "no signal" (not a stale or
// poisoned percentile), a single-bucket window must report that bucket
// at every quantile, and regressed counters — a prev that is not an
// ancestor of s, as after a recorder swap — must clamp per bucket
// rather than wrap to huge uint64 counts.

func TestSubEmptyWindow(t *testing.T) {
	h := NewHist()
	for i := 0; i < 500; i++ {
		h.RecordNS(1_000_000)
	}
	snap := h.Snapshot()
	win := snap.Sub(snap) // no samples in the interval
	if win.Count != 0 {
		t.Fatalf("empty window Count = %d, want 0", win.Count)
	}
	if win.MeanNS() != 0 {
		t.Fatalf("empty window mean = %v, want 0", win.MeanNS())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if p := win.Percentile(q); p != 0 {
			t.Fatalf("empty window p%v = %d, want 0 (no-signal sentinel)", q, p)
		}
	}
	// Both sides empty: the degenerate base case.
	zero := Snapshot{}.Sub(Snapshot{})
	if zero.Count != 0 || zero.Percentile(0.99) != 0 {
		t.Fatalf("zero Sub zero = %+v, want empty", zero)
	}
}

func TestSubSingleBucketWindow(t *testing.T) {
	h := NewHist()
	for i := 0; i < 100; i++ {
		h.RecordNS(100) // fast era
	}
	prev := h.Snapshot()
	for i := 0; i < 50; i++ {
		h.RecordNS(1_000_000) // slow era: one bucket's worth
	}
	win := h.Snapshot().Sub(prev)
	if win.Count != 50 {
		t.Fatalf("window Count = %d, want 50", win.Count)
	}
	// Every sample in the window landed in one bucket, so every
	// quantile must report that bucket's representative value.
	p0, p50, p999 := win.Percentile(0), win.Percentile(0.5), win.Percentile(0.999)
	if p0 != p50 || p50 != p999 {
		t.Fatalf("single-bucket window quantiles differ: p0=%d p50=%d p999=%d", p0, p50, p999)
	}
	if p50 < 500_000 || p50 > 2_000_000 {
		t.Fatalf("single-bucket window p50 = %d, want ~1ms", p50)
	}
}

func TestSubRegressedCountersClamp(t *testing.T) {
	// prev has strictly more in one bucket than s (a regression: s is
	// from a fresh histogram, prev from an older, fuller one). Per-
	// bucket clamping must zero that bucket, not wrap it.
	older := NewHist()
	for i := 0; i < 15; i++ {
		older.RecordNS(100)
	}
	fresh := NewHist()
	for i := 0; i < 10; i++ {
		fresh.RecordNS(100)
	}
	for i := 0; i < 10; i++ {
		fresh.RecordNS(1_000_000)
	}
	win := fresh.Snapshot().Sub(older.Snapshot())
	// The 100ns bucket regressed (10 < 15) and must clamp to zero;
	// the 1ms bucket is untouched by prev and survives.
	if p50 := win.Percentile(0.5); p50 < 500_000 {
		t.Fatalf("regressed bucket leaked into the window: p50 = %d", p50)
	}
	if win.MaxNS != fresh.Snapshot().MaxNS {
		t.Fatalf("Sub must carry MaxNS from s (maxima are not invertible): got %d", win.MaxNS)
	}
	// Sums and counts clamp at the aggregate level too.
	if win.Count > 20 {
		t.Fatalf("window Count wrapped: %d", win.Count)
	}
}

func TestSubPrevWithoutBuckets(t *testing.T) {
	// A prev that carries totals but no bucket array (e.g. a zero-value
	// snapshot merged from nothing) must subtract totals yet leave s's
	// buckets intact.
	h := NewHist()
	for i := 0; i < 10; i++ {
		h.RecordNS(1000)
	}
	prev := Snapshot{Count: 4, SumNS: 4000}
	win := h.Snapshot().Sub(prev)
	if win.Count != 6 {
		t.Fatalf("Count = %d, want 6", win.Count)
	}
	if win.Percentile(0.5) == 0 {
		t.Fatal("bucket counts lost when prev had no bucket array")
	}
}
