package latency

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/stats"
	"repro/internal/xrand"
)

// maxRelErr is the bucket layout's worst-case relative error
// (1/2^(subBucketBits-1)), with a little slack for the reference
// quantile's interpolation.
const maxRelErr = 1.0/(1<<(subBucketBits-1)) + 0.005

func TestBucketRoundTrip(t *testing.T) {
	for _, ns := range []int64{0, 1, 5, subCount - 1, subCount, subCount + 1,
		1000, 12345, 1 << 20, (1 << 20) + 7, 1e9, maxTrackableNS - 1, maxTrackableNS} {
		i := bucketIndex(ns)
		if i < 0 || i >= numBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range [0,%d)", ns, i, numBuckets)
		}
		mid := bucketMid(i)
		err := math.Abs(float64(mid-ns)) / math.Max(float64(ns), 1)
		if err > 1.0/(1<<(subBucketBits-1)) {
			t.Fatalf("bucketMid(bucketIndex(%d)) = %d: relative error %.4f", ns, mid, err)
		}
	}
	// Indices must be monotone in the value.
	prev := -1
	for ns := int64(0); ns < 1<<20; ns += 911 {
		i := bucketIndex(ns)
		if i < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", ns, i, prev)
		}
		prev = i
	}
}

func TestClamping(t *testing.T) {
	h := NewHist()
	h.RecordNS(-5)
	h.RecordNS(maxTrackableNS * 3)
	s := h.Snapshot()
	if s.Count != 2 {
		t.Fatalf("count = %d, want 2", s.Count)
	}
	if got := s.Percentile(0); got != 0 {
		t.Fatalf("p0 = %d, want 0 (negative clamps)", got)
	}
	if got := s.Percentile(1); got < maxTrackableNS/2 {
		t.Fatalf("p100 = %d, want clamped into the top bucket", got)
	}
}

// TestPercentilesMatchExact cross-validates the bucketed quantiles
// against stats.Quantile over the raw samples.
func TestPercentilesMatchExact(t *testing.T) {
	rng := xrand.New(42)
	h := NewHist()
	var raw []float64
	for i := 0; i < 200_000; i++ {
		// Log-uniform over ~[100ns, 100ms] plus a heavy tail.
		ns := int64(100 * math.Pow(10, 6*float64(rng.Uint64()%1000)/1000))
		if rng.Uint64()%1000 == 0 {
			ns *= 50
		}
		h.RecordNS(ns)
		raw = append(raw, float64(ns))
	}
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		got := float64(s.Percentile(q))
		want := stats.Quantile(raw, q)
		if err := math.Abs(got-want) / want; err > maxRelErr+0.01 {
			t.Errorf("p%g = %.0f, exact %.0f: relative error %.4f", q*100, got, want, err)
		}
	}
	if mean := s.MeanNS(); math.Abs(mean-stats.Quantile(raw, 0.5)) > mean*100 {
		t.Errorf("mean %.0f implausible", mean) // sanity only; mean is exact by construction
	}
}

func TestMerge(t *testing.T) {
	a, b := NewHist(), NewHist()
	for i := 0; i < 1000; i++ {
		a.RecordNS(100)
		b.RecordNS(10_000)
	}
	s := a.Snapshot()
	s.Merge(b.Snapshot())
	if s.Count != 2000 {
		t.Fatalf("merged count = %d, want 2000", s.Count)
	}
	p25, p75 := s.Percentile(0.25), s.Percentile(0.75)
	if p25 > 110 || p75 < 9000 {
		t.Fatalf("merged p25/p75 = %d/%d, want ~100/~10000", p25, p75)
	}
	if s.MaxNS != 10_000 {
		t.Fatalf("merged max = %d, want 10000", s.MaxNS)
	}
}

func TestMergeEmpty(t *testing.T) {
	var s Snapshot
	s.Merge(Snapshot{})
	if s.Percentile(0.5) != 0 || s.MeanNS() != 0 {
		t.Fatal("empty merge must stay empty")
	}
	h := NewHist()
	h.RecordNS(7)
	s.Merge(h.Snapshot())
	if s.Count != 1 || s.Percentile(0.5) != 7 {
		t.Fatalf("merge into empty: count=%d p50=%d", s.Count, s.Percentile(0.5))
	}
}

// TestMax: the exact max is tracked independently of the bucket
// approximation, survives Merge (larger wins) and Sub (carried from
// the newer snapshot), and Max() matches MaxNS.
func TestMax(t *testing.T) {
	h := NewHist()
	if got := h.Snapshot().Max(); got != 0 {
		t.Fatalf("empty max = %d, want 0", got)
	}
	// A value a bucketed p100 would round: 1<<20 + 3 shares a bucket
	// with neighbours, but Max must report it exactly.
	exact := int64(1<<20 + 3)
	h.RecordNS(500)
	h.RecordNS(exact)
	h.RecordNS(1000)
	s := h.Snapshot()
	if s.Max() != exact {
		t.Fatalf("max = %d, want exactly %d", s.Max(), exact)
	}
	if s.Max() != s.MaxNS {
		t.Fatalf("Max() = %d disagrees with MaxNS = %d", s.Max(), s.MaxNS)
	}

	// Merge keeps the larger max from either side.
	lo, hi := NewHist(), NewHist()
	lo.RecordNS(10)
	hi.RecordNS(exact * 2)
	m := lo.Snapshot()
	m.Merge(hi.Snapshot())
	if m.Max() != exact*2 {
		t.Fatalf("merged max = %d, want %d", m.Max(), exact*2)
	}
	m2 := hi.Snapshot()
	m2.Merge(lo.Snapshot())
	if m2.Max() != exact*2 {
		t.Fatalf("merge order must not matter: max = %d, want %d", m2.Max(), exact*2)
	}

	// Sub carries the newer snapshot's max (maxima are not invertible):
	// even when the window added only fast samples, the lifetime max
	// stands.
	h2 := NewHist()
	h2.RecordNS(exact)
	prev := h2.Snapshot()
	h2.RecordNS(50)
	win := h2.Snapshot().Sub(prev)
	if win.Count != 1 {
		t.Fatalf("window count = %d, want 1", win.Count)
	}
	if win.Max() != exact {
		t.Fatalf("window max = %d, want carried %d", win.Max(), exact)
	}
}

// TestStages: the positional stage dimension stripes per worker,
// merges per stage, and is a no-op when nil (the disabled path).
func TestStages(t *testing.T) {
	names := []string{"queue", "parse", "execute"}
	st := NewStages(2, names)
	if got := st.Names(); len(got) != 3 || got[2] != "execute" {
		t.Fatalf("Names() = %v, want %v", got, names)
	}
	st.RecordNS(0, 0, 100)
	st.RecordNS(1, 0, 300)
	st.RecordNS(0, 2, 9000)
	q := st.Merged(0)
	if q.Count != 2 || q.Max() != 300 {
		t.Fatalf("queue stage: count=%d max=%d, want 2/300", q.Count, q.Max())
	}
	if p := st.Merged(1); p.Count != 0 {
		t.Fatalf("parse stage recorded nothing, count = %d", p.Count)
	}
	all := st.MergedAll()
	if all.Count != 3 || all.Max() != 9000 {
		t.Fatalf("MergedAll: count=%d max=%d, want 3/9000", all.Count, all.Max())
	}

	var nilStages *Stages
	nilStages.RecordNS(0, 0, 1) // must not panic
	if nilStages.Names() != nil || nilStages.Merged(0).Count != 0 || nilStages.MergedAll().Count != 0 {
		t.Fatal("nil Stages must report empty")
	}
}

// TestRecorderStripes checks that per-worker stripes merge to the
// union and that unused cells stay unallocated.
func TestRecorderStripes(t *testing.T) {
	r := NewRecorder(4, 2, 3)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				r.Record(w, w%2, i%3, time.Duration(1000*(w+1)))
			}
		}(w)
	}
	wg.Wait()
	all := r.MergedAll()
	if all.Count != 20000 {
		t.Fatalf("total count = %d, want 20000", all.Count)
	}
	t0 := r.MergedTenant(0) // workers 0 and 2
	if t0.Count != 10000 {
		t.Fatalf("tenant 0 count = %d, want 10000", t0.Count)
	}
	if got := r.Merged(1, 0).Count; got == 0 {
		t.Fatal("tenant 1 op 0 unexpectedly empty")
	}
	if r.cell(0, 1, 0).Load() != nil {
		t.Fatal("worker 0 never recorded tenant 1: cell must stay nil")
	}
}

// TestSnapshotDuringRecording exercises report-time reads racing a
// writer (the kvserver STATS path); run under -race this is the
// package's publication-safety check.
func TestSnapshotDuringRecording(t *testing.T) {
	r := NewRecorder(1, 1, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100_000; i++ {
			r.Record(0, 0, 0, time.Duration(i))
		}
	}()
	for i := 0; i < 50; i++ {
		s := r.MergedAll()
		if s.Count > 0 && s.Percentile(0.5) < 0 {
			t.Fatal("negative percentile")
		}
	}
	<-done
	if got := r.MergedAll().Count; got != 100_000 {
		t.Fatalf("final count = %d, want 100000", got)
	}
}

// TestSnapshotSub: windowed deltas — the overload controller's signal
// — report the interval's percentiles, not the lifetime's.
func TestSnapshotSub(t *testing.T) {
	h := NewHist()
	for i := 0; i < 1000; i++ {
		h.RecordNS(100) // fast era
	}
	prev := h.Snapshot()
	for i := 0; i < 1000; i++ {
		h.RecordNS(1_000_000) // slow era
	}
	win := h.Snapshot().Sub(prev)
	if win.Count != 1000 {
		t.Fatalf("window count = %d, want 1000", win.Count)
	}
	if p99 := win.Percentile(0.99); p99 < 500_000 {
		t.Fatalf("window p99 = %d, want ~1ms (lifetime contamination?)", p99)
	}
	if life := h.Snapshot().Percentile(0.25); life > 10_000 {
		t.Fatalf("lifetime p25 = %d, sanity check failed", life)
	}
	// Sub of an empty prev is identity on counts.
	id := h.Snapshot().Sub(Snapshot{})
	if id.Count != 2000 {
		t.Fatalf("identity Sub count = %d, want 2000", id.Count)
	}
	// A non-ancestor prev clamps instead of wrapping.
	weird := prev.Sub(h.Snapshot())
	if weird.Count != 0 {
		t.Fatalf("non-ancestor Sub must clamp to zero, got %d", weird.Count)
	}
}
