package latency

import (
	"sync/atomic"
	"time"
)

// Recorder stripes histograms three ways: per worker (so hot-path
// recording touches memory owned by exactly one goroutine), per
// tenant, and per operation kind. Histograms are allocated lazily on
// first record — a (worker, tenant, op) cell that never records costs
// one nil pointer — and merged across workers at report time, the same
// publish-locally/merge-at-report shape the containers' contention
// counters use.
//
// Record must be called with the caller's own worker index; workers
// never write each other's cells, so the only cross-thread traffic is
// report-time reads of the atomic bucket counters.
type Recorder struct {
	workers int
	tenants int
	ops     int
	cells   []atomic.Pointer[Hist] // [worker][tenant][op], row-major
}

// NewRecorder sizes a recorder for the given worker, tenant and
// operation-kind counts (all must be at least 1).
func NewRecorder(workers, tenants, ops int) *Recorder {
	if workers < 1 || tenants < 1 || ops < 1 {
		panic("latency: NewRecorder dimensions must be >= 1")
	}
	return &Recorder{
		workers: workers,
		tenants: tenants,
		ops:     ops,
		cells:   make([]atomic.Pointer[Hist], workers*tenants*ops),
	}
}

// Tenants returns the tenant dimension the recorder was sized for.
func (r *Recorder) Tenants() int { return r.tenants }

// Ops returns the operation-kind dimension the recorder was sized for.
func (r *Recorder) Ops() int { return r.ops }

func (r *Recorder) cell(worker, tenant, op int) *atomic.Pointer[Hist] {
	return &r.cells[(worker*r.tenants+tenant)*r.ops+op]
}

// Record adds one sample to the (worker, tenant, op) histogram,
// allocating it on first use. worker must identify the calling
// goroutine uniquely; tenant and op are report dimensions.
func (r *Recorder) Record(worker, tenant, op int, d time.Duration) {
	c := r.cell(worker, tenant, op)
	h := c.Load()
	if h == nil {
		// Only this worker writes this cell, so the store cannot race
		// another allocation; concurrent readers see nil or the
		// published histogram.
		h = NewHist()
		c.Store(h)
	}
	h.Record(d)
}

// Merged returns the merged snapshot of one (tenant, op) pair across
// all workers.
func (r *Recorder) Merged(tenant, op int) Snapshot {
	var s Snapshot
	for w := 0; w < r.workers; w++ {
		if h := r.cell(w, tenant, op).Load(); h != nil {
			s.Merge(h.Snapshot())
		}
	}
	return s
}

// MergedTenant returns the merged snapshot of every operation kind for
// one tenant.
func (r *Recorder) MergedTenant(tenant int) Snapshot {
	var s Snapshot
	for op := 0; op < r.ops; op++ {
		s.Merge(r.Merged(tenant, op))
	}
	return s
}

// MergedAll returns the merged snapshot of everything the recorder
// holds.
func (r *Recorder) MergedAll() Snapshot {
	var s Snapshot
	for tn := 0; tn < r.tenants; tn++ {
		s.Merge(r.MergedTenant(tn))
	}
	return s
}
