package latency

// Stages is a per-worker, per-stage histogram set: the stage dimension
// the request-span layer records into (queue wait, parse, execute,
// degradation backoff, response write), striped per worker exactly like
// Recorder so hot-path recording stays single-writer. It is a thin
// named view over a Recorder with one tenant: stages are positional,
// with names fixed at construction, so callers index by the same enum
// they use for span accounting.
//
// A nil *Stages is the disabled state: Record is a nil check and
// report-time accessors return zero values, so the serving layer wires
// it unconditionally.
type Stages struct {
	names []string
	rec   *Recorder
}

// NewStages builds a stage histogram set for workers workers and the
// given stage names (positional; must be non-empty).
func NewStages(workers int, names []string) *Stages {
	if len(names) == 0 {
		panic("latency: NewStages needs at least one stage name")
	}
	ns := make([]string, len(names))
	copy(ns, names)
	return &Stages{names: ns, rec: NewRecorder(workers, 1, len(ns))}
}

// Names returns the stage names in positional order. The slice is
// shared; callers must not mutate it. Nil-safe (returns nil).
func (s *Stages) Names() []string {
	if s == nil {
		return nil
	}
	return s.names
}

// RecordNS adds one sample in nanoseconds to worker's histogram for
// stage (positional). Allocation-free after the cell's first record; a
// nil receiver is a no-op.
func (s *Stages) RecordNS(worker, stage int, ns int64) {
	if s == nil {
		return
	}
	c := s.rec.cell(worker, 0, stage)
	h := c.Load()
	if h == nil {
		h = NewHist()
		c.Store(h)
	}
	h.RecordNS(ns)
}

// Merged returns the merged snapshot of one stage across all workers.
// Nil-safe (returns an empty snapshot).
func (s *Stages) Merged(stage int) Snapshot {
	if s == nil {
		return Snapshot{}
	}
	return s.rec.Merged(0, stage)
}

// MergedAll returns the merged snapshot across every stage and worker.
// Nil-safe (returns an empty snapshot).
func (s *Stages) MergedAll() Snapshot {
	if s == nil {
		return Snapshot{}
	}
	return s.rec.MergedAll()
}
