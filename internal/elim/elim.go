// Package elim implements the elimination-backoff contention layer
// (Hendler, Shavit & Yerushalmi's elimination array) used by the stack
// and the hash map's hot shards: an operation that loses its
// linearization CAS to contention rendezvouses with a complementary
// concurrent operation and the pair exchanges the element without ever
// touching the shared anchor word.
//
// # Protocol
//
// An Array is a small set of cache-line padded rendezvous slots. The
// insert side ("parker": a stack push, a map insert) publishes its
// (key, value) in a random slot and spins for a bounded window; the
// remove side ("taker": a stack pop, a map remove) scans the slots for a
// waiting entry whose key it can use and claims it with one CAS. A slot
// cycles through four phases, its state word carrying a monotonically
// increasing tag so no transition can be victim to ABA:
//
//	empty --CAS-->  claim  --store-->  waiting --CAS-->  taken --store--> empty
//	       parker    (key/val written)          taker            parker
//
// The key and value words are written only between the claim CAS and the
// waiting store, i.e. under exclusive ownership, and takers re-check the
// state word after reading them, so an observed (key, value) pair always
// belongs to the parking session whose state the taker CASes.
//
// # Linearizability
//
// A successful exchange linearizes both operations at the taker's
// successful CAS: the insert takes effect immediately before the remove,
// a valid pair for LIFO stacks unconditionally. Keyed containers need an
// additional absence witness between Peek and Take — see Peek.
//
// The layer is orthogonal to the paper's composition machinery and must
// stay out of its way: a thread with MoveInFlight() never parks nor
// takes, because a move's linearization must go through its DCAS/MCAS
// descriptor, never a side-channel exchange. That gate lives in the
// containers (they know their Thread); this package is mechanism only.
//
// # Adaptive window
//
// An array allocated with NewArrayCapacity carries an active slot
// window smaller than (or equal to) its physical capacity: parkers
// choose slots only inside the window, while takers always scan the
// full capacity. The adapt package's controllers resize the window via
// TryResize — grow under misses-with-traffic, shrink when parks expire
// cold. A shrink is refused while a waiting offer sits in a slot the
// shrink would deactivate; and because takers scan the whole physical
// array regardless, an offer that races into a just-deactivated slot
// is still found and consumed — a resize can strand no offer, ever.
package elim

import (
	"runtime"
	"sync/atomic"

	"repro/internal/pad"
)

// Slot phases (low two bits of the state word).
const (
	phaseEmpty uint64 = iota
	phaseClaim
	phaseWaiting
	phaseTaken
)

// pack builds a state word from a tag and a phase.
func pack(tag, phase uint64) uint64 { return tag<<2 | phase }

// phase extracts the phase bits.
func phase(state uint64) uint64 { return state & 3 }

// tag extracts the session tag.
func tag(state uint64) uint64 { return state >> 2 }

// Defaults. Slots defaults to about half the registered threads (an
// exchange needs one thread on each side), Spins to a window long enough
// to catch a complementary operation that is already running but short
// enough to stay in the same ballpark as one backoff wait.
const (
	DefaultSpins = 1024
	MaxSlots     = 16
)

// Config tunes the elimination layer; it rides on core.Config so one
// runtime knob configures every container built from that runtime.
type Config struct {
	// Enable switches elimination on for the containers that support it
	// (stacks and the hash map's shards).
	Enable bool
	// Slots is the rendezvous slot count per array (rounded up to a
	// power of two, capped at MaxSlots). <= 0 derives it from the
	// runtime's registered-thread bound.
	Slots int
	// Spins is the parker's wait window in spin iterations. <= 0 selects
	// DefaultSpins.
	Spins int
}

// slot is one rendezvous cell, padded to a cache line so concurrent
// exchanges on different slots don't false-share.
type slot struct {
	state atomic.Uint64
	key   atomic.Uint64
	val   atomic.Uint64
	_     [pad.CacheLineSize - 24]byte
}

// Array is one elimination array. Create with NewArray (fixed window)
// or NewArrayCapacity (resizable window); share freely between
// threads.
type Array struct {
	slots []slot
	mask  uint64 // physical mask: len(slots)-1
	spins int

	// window is the active slot count (a power of two ≤ len(slots)):
	// parkers pick slots inside it, takers scan all of len(slots).
	window atomic.Uint64

	hits     atomic.Uint64
	_        pad.Pad56
	misses   atomic.Uint64
	_        pad.Pad56
	timeouts atomic.Uint64
	_        pad.Pad56
}

// NewArray builds an array from cfg. threadsHint (typically the
// runtime's MaxThreads) sizes the slot count when cfg.Slots is not set:
// one slot per prospective pair of threads. The window equals the
// capacity — the static configuration.
func NewArray(cfg Config, threadsHint int) *Array {
	n := initialSlots(cfg, threadsHint)
	return NewArrayCapacity(cfg, threadsHint, n)
}

// NewArrayCapacity builds an array with capacity physical slots
// (rounded up to a power of two, capped at MaxSlots) whose active
// window starts at the cfg-derived slot count (clamped to capacity).
// The window can then move within [1, capacity] via TryResize — the
// shape the adaptive layer drives.
func NewArrayCapacity(cfg Config, threadsHint, capacity int) *Array {
	window := initialSlots(cfg, threadsHint)
	capacity = pad.CeilPow2(capacity)
	if capacity > MaxSlots {
		capacity = MaxSlots
	}
	if window > capacity {
		window = capacity
	}
	spins := cfg.Spins
	if spins <= 0 {
		spins = DefaultSpins
	}
	a := &Array{
		slots: make([]slot, capacity),
		mask:  uint64(capacity - 1),
		spins: spins,
	}
	a.window.Store(uint64(window))
	return a
}

// initialSlots derives the starting slot count from cfg and the thread
// bound: one slot per prospective pair of threads, power of two, at
// most MaxSlots.
func initialSlots(cfg Config, threadsHint int) int {
	slots := cfg.Slots
	if slots <= 0 {
		slots = threadsHint / 2
	}
	if slots < 1 {
		slots = 1
	}
	slots = pad.CeilPow2(slots)
	if slots > MaxSlots {
		slots = MaxSlots
	}
	return slots
}

// Size reports the physical slot count (see Window for the active
// count).
func (a *Array) Size() int { return len(a.slots) }

// Capacity is Size under its adaptive-layer name.
func (a *Array) Capacity() int { return len(a.slots) }

// Window reports the active slot count parkers choose from.
func (a *Array) Window() int { return int(a.window.Load()) }

// TryResize moves the active window to n slots (rounded up to a power
// of two, clamped to [1, Capacity]). A shrink is refused — false —
// when a slot it would deactivate holds a waiting offer at decision
// time, so a window never shrinks over a visibly parked operation; an
// offer racing into the deactivated range anyway stays consumable
// because takers scan the full physical array. Concurrent TryResize
// calls race on one CAS; the loser reports false.
func (a *Array) TryResize(n int) bool {
	want := uint64(pad.CeilPow2(n))
	if want < 1 {
		want = 1
	}
	if want > uint64(len(a.slots)) {
		want = uint64(len(a.slots))
	}
	cur := a.window.Load()
	if want == cur {
		return true
	}
	if want < cur {
		for i := want; i < cur; i++ {
			if phase(a.slots[i].state.Load()) == phaseWaiting {
				return false // never shrink under a waiting offer
			}
		}
	}
	return a.window.CompareAndSwap(cur, want)
}

// Stats reports how many operations were eliminated (hits — each
// successful exchange counts once per side) and how many elimination
// attempts came back empty-handed (misses).
func (a *Array) Stats() (hits, misses uint64) {
	return a.hits.Load(), a.misses.Load()
}

// Timeouts reports how many parks expired without a taker (each also
// counts as a miss); the adaptive layer reads it as the cold-array
// signal.
func (a *Array) Timeouts() uint64 { return a.timeouts.Load() }

// Park publishes (key, val) in a slot chosen by start and waits the
// array's configured window for a taker. It reports whether the value
// was taken: true means the caller's insert operation is complete
// (eliminated); false means no exchange happened and the caller must
// retry its normal path. start is any thread-local random value.
func (a *Array) Park(start, key, val uint64) bool {
	return a.ParkFor(start, key, val, a.spins)
}

// ParkFor is Park with an explicit spin window (tests and tuning).
func (a *Array) ParkFor(start, key, val uint64, spins int) bool {
	s := &a.slots[start&(a.window.Load()-1)]
	st := s.state.Load()
	if phase(st) != phaseEmpty {
		a.misses.Add(1)
		return false
	}
	next := tag(st) + 1
	if !s.state.CompareAndSwap(st, pack(next, phaseClaim)) {
		a.misses.Add(1)
		return false
	}
	// Owned between claim and waiting: publish the offer.
	s.key.Store(key)
	s.val.Store(val)
	waiting := pack(next, phaseWaiting)
	s.state.Store(waiting)
	for i := 0; i < spins; i++ {
		if s.state.Load() != waiting { // only a taker can move it: taken
			s.state.Store(pack(next+2, phaseEmpty))
			a.hits.Add(1)
			return true
		}
		if i&15 == 15 {
			// Keep single-CPU hosts live: the taker needs the processor
			// to reach its CAS.
			runtime.Gosched()
		}
	}
	// Window over: withdraw the offer — unless a taker claimed it in the
	// meantime, in which case the exchange already happened.
	if s.state.CompareAndSwap(waiting, pack(next+2, phaseEmpty)) {
		a.misses.Add(1)
		a.timeouts.Add(1)
		return false
	}
	s.state.Store(pack(next+2, phaseEmpty))
	a.hits.Add(1)
	return true
}

// Handle identifies a parked offer observed by Peek, pinned to its
// parking session by the state word; Take consumes it.
type Handle struct {
	s     *slot
	state uint64
	val   uint64
}

// Val returns the offered value (valid if the subsequent Take succeeds).
func (h Handle) Val() uint64 { return h.val }

// Peek scans the array (starting at a random slot) for a waiting offer —
// any offer when anyKey, else one whose key equals key — and returns a
// handle without consuming it. Keyed containers use the Peek/Take split
// to interpose an absence witness: the map re-walks its bucket chain
// between Peek and Take, so the eliminated pair can be linearized at a
// moment when the key was provably absent and the insert provably
// parked. A failed Peek counts as a miss.
//
// The scan covers the full physical capacity, not just the active
// window: an offer parked just before a window shrink must stay
// consumable until it is taken or withdraws.
func (a *Array) Peek(start, key uint64, anyKey bool) (Handle, bool) {
	n := len(a.slots)
	for i := 0; i < n; i++ {
		s := &a.slots[(start+uint64(i))&a.mask]
		st := s.state.Load()
		if phase(st) != phaseWaiting {
			continue
		}
		k := s.key.Load()
		v := s.val.Load()
		if s.state.Load() != st {
			continue // a different session; k/v may be torn
		}
		if !anyKey && k != key {
			continue
		}
		return Handle{s: s, state: st, val: v}, true
	}
	a.misses.Add(1)
	return Handle{}, false
}

// Take consumes a peeked offer: one CAS claims it from the parker. On
// success the exchange is linearized here (insert immediately before
// remove) and the offered value is returned.
func (a *Array) Take(h Handle) (uint64, bool) {
	if h.s == nil {
		return 0, false
	}
	if h.s.state.CompareAndSwap(h.state, pack(tag(h.state)+1, phaseTaken)) {
		a.hits.Add(1)
		return h.val, true
	}
	a.misses.Add(1)
	return 0, false
}

// TryTake is Peek followed immediately by Take — the unkeyed (stack)
// consume path, where no absence witness is needed.
func (a *Array) TryTake(start, key uint64, anyKey bool) (uint64, bool) {
	h, ok := a.Peek(start, key, anyKey)
	if !ok {
		return 0, false
	}
	return a.Take(h)
}
