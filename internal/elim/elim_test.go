package elim

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/xrand"
)

func TestSizingAndDefaults(t *testing.T) {
	a := NewArray(Config{}, 8)
	if a.Size() != 4 {
		t.Fatalf("8 threads: %d slots, want 4", a.Size())
	}
	if a.spins != DefaultSpins {
		t.Fatalf("spins=%d", a.spins)
	}
	if NewArray(Config{Slots: 3}, 0).Size() != 4 {
		t.Fatal("slots must round up to a power of two")
	}
	if NewArray(Config{Slots: 1024}, 0).Size() != MaxSlots {
		t.Fatal("slots must cap at MaxSlots")
	}
	if NewArray(Config{}, 0).Size() != 1 {
		t.Fatal("at least one slot")
	}
}

// TestExchange pairs one parker with one taker and checks the value and
// both hit counters.
func TestExchange(t *testing.T) {
	a := NewArray(Config{Slots: 1}, 2)
	taken := make(chan struct{})
	var parked atomic.Bool
	go func() {
		defer close(taken)
		for !parked.Load() {
			runtime.Gosched()
		}
		for {
			if v, ok := a.TryTake(7, 0, true); ok {
				if v != 42 {
					t.Errorf("took %d, want 42", v)
				}
				return
			}
			runtime.Gosched()
		}
	}()
	// A huge window: the taker ends it.
	parked.Store(true)
	if !a.ParkFor(3, 0, 42, 1<<30) {
		t.Fatal("parked offer was never taken")
	}
	<-taken
	hits, _ := a.Stats()
	if hits != 2 {
		t.Fatalf("hits=%d, want 2 (one per side)", hits)
	}
}

// TestParkTimeout: with no taker the parker withdraws and reports a miss.
func TestParkTimeout(t *testing.T) {
	a := NewArray(Config{Slots: 1}, 2)
	if a.ParkFor(0, 0, 1, 64) {
		t.Fatal("park with no taker must miss")
	}
	if _, m := a.Stats(); m != 1 {
		t.Fatal("timeout must count a miss")
	}
	// The slot must be reusable afterwards.
	if _, ok := a.TryTake(0, 0, true); ok {
		t.Fatal("withdrawn offer must not be takeable")
	}
}

// TestKeyMatching: keyed takers only consume offers with their key.
func TestKeyMatching(t *testing.T) {
	a := NewArray(Config{Slots: 4}, 8)
	done := make(chan bool)
	go func() {
		done <- a.ParkFor(0, 5, 55, 1<<30)
	}()
	// Wait until the offer is visible.
	var h Handle
	ok := false
	for !ok {
		h, ok = a.Peek(0, 5, false)
		runtime.Gosched()
	}
	if _, wrong := a.Peek(0, 6, false); wrong {
		t.Fatal("peek must not match a different key")
	}
	if v, ok := a.Take(h); !ok || v != 55 {
		t.Fatalf("take: %d %v", v, ok)
	}
	if !<-done {
		t.Fatal("parker must observe the exchange")
	}
}

// TestStaleTakeRejected: a handle from an ended session must not take.
func TestStaleTakeRejected(t *testing.T) {
	a := NewArray(Config{Slots: 1}, 2)
	go a.ParkFor(0, 0, 9, 1<<30)
	var h Handle
	ok := false
	for !ok {
		h, ok = a.Peek(0, 0, true)
		runtime.Gosched()
	}
	if _, ok := a.Take(h); !ok {
		t.Fatal("first take must win")
	}
	// Same handle again: session tag moved on.
	if _, ok := a.Take(h); ok {
		t.Fatal("stale take must fail")
	}
}

// TestConcurrentExchangeConservation hammers one array from both sides
// and checks every parked value is either returned to its parker (miss)
// or taken exactly once — no loss, no duplication.
func TestConcurrentExchangeConservation(t *testing.T) {
	const parkers = 4
	const takers = 4
	const perParker = 400
	a := NewArray(Config{Slots: 2, Spins: 256}, parkers+takers)

	var eliminated [parkers * perParker]atomic.Uint32 // taken counts by value
	var parkerHits atomic.Uint64
	var stop atomic.Bool
	var pwg, twg sync.WaitGroup

	for p := 0; p < parkers; p++ {
		pwg.Add(1)
		go func(p int) {
			defer pwg.Done()
			rng := xrand.New(uint64(p) + 1)
			for i := 0; i < perParker; i++ {
				v := uint64(p*perParker + i)
				if a.Park(rng.Uint64(), 0, v) {
					parkerHits.Add(1)
					eliminated[v].Add(1 << 16) // high half: parker saw hit
				}
			}
		}(p)
	}
	for c := 0; c < takers; c++ {
		twg.Add(1)
		go func(c int) {
			defer twg.Done()
			rng := xrand.New(uint64(c) + 100)
			for !stop.Load() {
				if v, ok := a.TryTake(rng.Uint64(), 0, true); ok {
					eliminated[v].Add(1) // low half: taken count
				} else {
					runtime.Gosched()
				}
			}
		}(c)
	}
	pwg.Wait()
	stop.Store(true)
	twg.Wait()

	var takerSide, parkerSide uint64
	for i := range eliminated {
		c := eliminated[i].Load()
		taken, parked := c&0xffff, c>>16
		if taken > 1 || parked > 1 || taken != parked {
			t.Fatalf("value %d: taken %d times, parker hit %d times", i, taken, parked)
		}
		takerSide += uint64(taken)
		parkerSide += uint64(parked)
	}
	if parkerSide != parkerHits.Load() {
		t.Fatalf("parker hits %d vs recorded %d", parkerHits.Load(), parkerSide)
	}
	hits, misses := a.Stats()
	if hits != 2*takerSide {
		t.Fatalf("hits=%d, want %d (twice the exchanges)", hits, 2*takerSide)
	}
	t.Logf("exchanges=%d hits=%d misses=%d", takerSide, hits, misses)
}

// TestWindowResize: TryResize moves the active window within
// [1, Capacity] in power-of-two steps; parkers respect the window and
// takers scan the full capacity.
func TestWindowResize(t *testing.T) {
	a := NewArrayCapacity(Config{Slots: 2}, 16, 16)
	if a.Capacity() != 16 || a.Window() != 2 {
		t.Fatalf("capacity=%d window=%d want 16/2", a.Capacity(), a.Window())
	}
	if !a.TryResize(4) || a.Window() != 4 {
		t.Fatalf("grow to 4 failed: window=%d", a.Window())
	}
	if !a.TryResize(64) || a.Window() != 16 {
		t.Fatalf("grow past capacity must clamp: window=%d", a.Window())
	}
	if !a.TryResize(0) || a.Window() != 1 {
		t.Fatalf("shrink below 1 must clamp: window=%d", a.Window())
	}
	if !a.TryResize(3) || a.Window() != 4 {
		t.Fatalf("non-power-of-two must round up: window=%d", a.Window())
	}
}

// TestWindowConfinesParkers: with window 1, every park lands in slot 0
// regardless of the random start.
func TestWindowConfinesParkers(t *testing.T) {
	a := NewArrayCapacity(Config{Slots: 1}, 16, 8)
	for start := uint64(0); start < 8; start++ {
		if a.ParkFor(start, 0, 42, 1) {
			t.Fatal("park with no taker must time out")
		}
	}
	// All eight timed-out parks cycled slot 0's tag; slots 1..7 never
	// moved.
	if tag(a.slots[0].state.Load()) == 0 {
		t.Fatal("slot 0 was never used")
	}
	for i := 1; i < 8; i++ {
		if a.slots[i].state.Load() != 0 {
			t.Fatalf("slot %d touched outside the window", i)
		}
	}
	if a.Timeouts() != 8 {
		t.Fatalf("timeouts=%d want 8", a.Timeouts())
	}
}

// TestShrinkRefusedUnderWaitingOffer: a waiting offer in the range a
// shrink would deactivate blocks the shrink; after the offer is taken
// the shrink succeeds. Takers find offers beyond the active window.
func TestShrinkRefusedUnderWaitingOffer(t *testing.T) {
	a := NewArrayCapacity(Config{Slots: 8}, 16, 8)
	done := make(chan bool)
	go func() {
		// Park in slot 5 — outside the window the shrink would leave.
		done <- a.ParkFor(5, 0, 99, 1<<24)
	}()
	for {
		if _, ok := a.Peek(0, 0, true); ok {
			break
		}
		runtime.Gosched()
	}
	if a.TryResize(2) {
		t.Fatal("shrink over a waiting offer must be refused")
	}
	if a.Window() != 8 {
		t.Fatalf("refused shrink moved the window: %d", a.Window())
	}
	// The offer beyond any shrunken window is still consumable.
	v, ok := a.TryTake(0, 0, true)
	if !ok || v != 99 {
		t.Fatalf("take: %d %v", v, ok)
	}
	if !<-done {
		t.Fatal("parker must observe the exchange")
	}
	if !a.TryResize(2) || a.Window() != 2 {
		t.Fatalf("shrink after the take failed: window=%d", a.Window())
	}
}

// TestTimeoutsDistinctFromMisses: a busy-slot collision is a miss but
// not a timeout; an expired park is both.
func TestTimeoutsDistinctFromMisses(t *testing.T) {
	a := NewArrayCapacity(Config{Slots: 1}, 2, 1)
	if a.ParkFor(0, 0, 1, 1) {
		t.Fatal("lone park must time out")
	}
	_, m0 := a.Stats()
	t0 := a.Timeouts()
	if m0 != 1 || t0 != 1 {
		t.Fatalf("after timeout: misses=%d timeouts=%d want 1/1", m0, t0)
	}
	// Occupy slot 0 by hand (claim phase), then collide.
	st := a.slots[0].state.Load()
	a.slots[0].state.Store(pack(tag(st)+1, phaseClaim))
	if a.ParkFor(0, 0, 2, 1) {
		t.Fatal("collision must fail")
	}
	_, m1 := a.Stats()
	if m1 != 2 || a.Timeouts() != 1 {
		t.Fatalf("after collision: misses=%d timeouts=%d want 2/1", m1, a.Timeouts())
	}
	a.slots[0].state.Store(pack(tag(st)+2, phaseEmpty))
}
