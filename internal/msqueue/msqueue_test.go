package msqueue

import (
	"sync"
	"testing"

	"repro/internal/core"
)

func newRT() *core.Runtime {
	return core.NewRuntime(core.Config{MaxThreads: 16, ArenaCapacity: 1 << 18, DescCapacity: 1 << 14})
}

func TestEnqueueDequeueFIFO(t *testing.T) {
	rt := newRT()
	th := rt.RegisterThread()
	q := New(th)
	for i := uint64(1); i <= 100; i++ {
		if !q.Enqueue(th, i) {
			t.Fatal("plain enqueue must succeed")
		}
	}
	for i := uint64(1); i <= 100; i++ {
		v, ok := q.Dequeue(th)
		if !ok || v != i {
			t.Fatalf("dequeue %d: got %d ok=%v", i, v, ok)
		}
	}
	if _, ok := q.Dequeue(th); ok {
		t.Fatal("empty queue must report false")
	}
}

func TestDequeueEmpty(t *testing.T) {
	rt := newRT()
	th := rt.RegisterThread()
	q := New(th)
	for i := 0; i < 10; i++ {
		if _, ok := q.Dequeue(th); ok {
			t.Fatal("dequeue on empty must fail")
		}
	}
	q.Enqueue(th, 5)
	if v, ok := q.Dequeue(th); !ok || v != 5 {
		t.Fatal("queue must recover after empty dequeues")
	}
}

func TestLenAndDrain(t *testing.T) {
	rt := newRT()
	th := rt.RegisterThread()
	q := New(th)
	for i := uint64(0); i < 37; i++ {
		q.Enqueue(th, i)
	}
	if q.Len(th) != 37 {
		t.Fatalf("Len=%d", q.Len(th))
	}
	if q.Drain(th) != 37 {
		t.Fatal("Drain count mismatch")
	}
	if q.Len(th) != 0 {
		t.Fatal("queue not empty after drain")
	}
}

func TestInterfaceConformance(t *testing.T) {
	rt := newRT()
	th := rt.RegisterThread()
	q := New(th)
	var ins core.Inserter = q
	var rem core.Remover = q
	if !ins.Insert(th, 99, 7) {
		t.Fatal("Insert failed")
	}
	if v, ok := rem.Remove(th, 99); !ok || v != 7 {
		t.Fatal("Remove failed")
	}
	if q.ObjectID() == 0 {
		t.Fatal("ObjectID must be nonzero")
	}
	q2 := New(th)
	if q.ObjectID() == q2.ObjectID() {
		t.Fatal("distinct queues must have distinct ids")
	}
}

// TestMPMCConservation: every produced value is consumed exactly once,
// per-producer FIFO order is preserved.
func TestMPMCConservation(t *testing.T) {
	const producers, consumers, perProducer = 4, 4, 5000
	rt := core.NewRuntime(core.Config{MaxThreads: producers + consumers + 1, ArenaCapacity: 1 << 18})
	setup := rt.RegisterThread()
	q := New(setup)

	var wg sync.WaitGroup
	consumed := make([][]uint64, consumers)
	var done sync.WaitGroup
	done.Add(producers)

	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			defer done.Done()
			th := rt.RegisterThread()
			for i := 0; i < perProducer; i++ {
				q.Enqueue(th, uint64(p)<<32|uint64(i))
			}
			th.FlushMemory()
		}(p)
	}

	stop := make(chan struct{})
	go func() { done.Wait(); close(stop) }()

	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			th := rt.RegisterThread()
			for {
				v, ok := q.Dequeue(th)
				if ok {
					consumed[c] = append(consumed[c], v)
					continue
				}
				select {
				case <-stop:
					// Producers done; drain whatever remains.
					for {
						v, ok := q.Dequeue(th)
						if !ok {
							th.FlushMemory()
							return
						}
						consumed[c] = append(consumed[c], v)
					}
				default:
				}
			}
		}(c)
	}
	wg.Wait()

	seen := make(map[uint64]bool)
	lastPerProducer := make(map[uint64]int64)
	for p := range lastPerProducer {
		lastPerProducer[p] = -1
	}
	total := 0
	for c := range consumed {
		perProd := make(map[uint64]int64)
		for p := 0; p < producers; p++ {
			perProd[uint64(p)] = -1
		}
		for _, v := range consumed[c] {
			if seen[v] {
				t.Fatalf("value %#x consumed twice", v)
			}
			seen[v] = true
			total++
			p, i := v>>32, int64(v&0xffffffff)
			if i <= perProd[p] {
				t.Fatalf("per-producer FIFO violated within one consumer: producer %d index %d after %d", p, i, perProd[p])
			}
			perProd[p] = i
		}
	}
	if total != producers*perProducer {
		t.Fatalf("consumed %d of %d values", total, producers*perProducer)
	}
}

func TestMemoryRecycled(t *testing.T) {
	rt := core.NewRuntime(core.Config{MaxThreads: 2, ArenaCapacity: 1 << 12})
	th := rt.RegisterThread()
	q := New(th)
	// Far more operations than the arena could hold without recycling.
	for round := 0; round < 200; round++ {
		for i := uint64(0); i < 100; i++ {
			q.Enqueue(th, i)
		}
		for i := uint64(0); i < 100; i++ {
			if v, ok := q.Dequeue(th); !ok || v != i {
				t.Fatalf("round %d: dequeue got %d ok=%v", round, v, ok)
			}
		}
	}
	if rt.Arena().Allocated() >= rt.Arena().Limit() {
		t.Fatal("arena exhausted: nodes are not being recycled")
	}
}
