// Package msqueue implements the lock-free FIFO queue of Michael and
// Scott [18] made move-ready per §5.1 of the paper (Algorithm 5):
//
//   - the linearization-point CASes (lines Q14 and Q34) are replaced by
//     scas,
//   - every read of a word that can take part in a DCAS (lines Q6, Q7,
//     Q8, Q10, Q23, Q24, Q25, Q26, Q28) goes through the read operation,
//   - enqueue handles the ABORT result by freeing its node (Q15–Q17),
//   - dequeue also handles ABORT, per the bracketed lines of Algorithm 2,
//     because generic move targets (unlike the queue itself) can fail.
//
// The queue is a move-candidate (Lemma 8): dequeue and enqueue are
// linearizable [18]; separate hazard-pointer slot sets let insert and
// remove succeed simultaneously (requirement 2); both linearization
// points are successful CASes on pointer words by the invoking process
// (requirement 3); and the dequeued value is read on line Q33, before
// the linearization point (requirement 4).
package msqueue

import (
	"repro/internal/core"
	"repro/internal/pad"
	"repro/internal/word"
)

// Queue is a move-ready Michael–Scott queue holding uint64 values.
// Create instances with New; the zero value is not usable.
type Queue struct {
	head word.Word
	_    pad.Pad56
	tail word.Word
	_    pad.Pad56
	id   uint64
}

var _ core.MoveReady = (*Queue)(nil)

// New creates an empty queue with its sentinel node. The creating thread
// pays for one node allocation.
func New(t *core.Thread) *Queue {
	q := &Queue{id: t.Runtime().NextObjectID()}
	sentinel := t.AllocNode()
	q.head.Store(sentinel)
	q.tail.Store(sentinel)
	return q
}

// ObjectID implements core.MoveReady.
func (q *Queue) ObjectID() uint64 { return q.id }

// Enqueue appends val and reports success. It fails only when used as a
// move target and the move aborts; a plain enqueue always succeeds
// (line Q17 is reachable only through scas returning ABORT).
func (q *Queue) Enqueue(t *core.Thread, val uint64) bool {
	ref := t.AllocNode() // Q2
	n := t.Node(ref)
	// Q3–Q4: next is already nil from the allocator; publish val before
	// the node becomes reachable via the scas below.
	n.Val = val
	for { // Q5
		ltail := t.Read(&q.tail)            // Q6
		t.ProtectNode(core.SlotIns0, ltail) // Q7: hp1 ← ltail
		if t.Read(&q.tail) != ltail {
			continue
		}
		tn := t.Node(ltail)
		lnext := t.Read(&tn.Next)           // Q8
		t.ProtectNode(core.SlotIns1, lnext) // Q9: hp2 ← lnext
		if t.Read(&q.tail) != ltail {       // Q10
			continue
		}
		if lnext != word.Nil { // Q11: tail is lagging
			t.CAS(&q.tail, ltail, lnext) // Q12
			continue                     // Q13
		}
		res := t.SCASInsert(&tn.Next, word.Nil, ref, ltail) // Q14
		if res == core.FAbort {                             // Q15
			t.FreeNodeDirect(ref) // Q16: the node was never published
			t.ClearNode(core.SlotIns0)
			t.ClearNode(core.SlotIns1)
			return false // Q17
		}
		if res == core.FTrue { // Q18
			t.CAS(&q.tail, ltail, ref) // Q19
			t.ClearNode(core.SlotIns0)
			t.ClearNode(core.SlotIns1)
			t.BackoffReset()
			return true // Q20
		}
		t.BackoffWait() // conflict: retry (with backoff when enabled, §6)
	}
}

// Dequeue removes the oldest value. ok is false when the queue is empty
// or a surrounding move aborted.
func (q *Queue) Dequeue(t *core.Thread) (val uint64, ok bool) {
	for { // Q22
		lhead := t.Read(&q.head)            // Q23
		t.ProtectNode(core.SlotRem0, lhead) // Q24: hp3 ← lhead
		if t.Read(&q.head) != lhead {
			continue
		}
		ltail := t.Read(&q.tail) // Q25
		hn := t.Node(lhead)
		lnext := t.Read(&hn.Next)           // Q26
		t.ProtectNode(core.SlotRem1, lnext) // Q27: hp4 ← lnext
		if t.Read(&q.head) != lhead {       // Q28
			continue
		}
		if lnext == word.Nil { // Q29: empty
			t.ClearNode(core.SlotRem0)
			t.ClearNode(core.SlotRem1)
			return 0, false
		}
		if lhead == ltail { // Q30: tail is lagging
			t.CAS(&q.tail, ltail, lnext) // Q31
			continue                     // Q32
		}
		val = t.Node(lnext).Val                                // Q33
		res := t.SCASRemove(&q.head, lhead, lnext, val, lhead) // Q34
		if res == core.FTrue {
			t.RetireNode(lhead) // Q35: free lhead
			t.ClearNode(core.SlotRem0)
			t.ClearNode(core.SlotRem1)
			t.BackoffReset()
			return val, true // Q36
		}
		if res == core.FAbort {
			// Not needed for queue-to-queue moves (enqueue cannot fail)
			// but required when the move's target can reject the
			// element; nothing was changed, so just report failure.
			t.ClearNode(core.SlotRem0)
			t.ClearNode(core.SlotRem1)
			return 0, false
		}
		t.BackoffWait()
	}
}

// PrepareRemove implements core.RemovePreparer for the batched move
// pipeline. Only a false answer carries weight (a failed batched move
// linearizes at it), so only the empty case pays for validation: the
// fast path reads head and its next field unprotected — the node
// cannot be unmapped (arena memory) and a stale non-nil next merely
// answers true, which the commit re-checks anyway. An apparent empty
// redoes the observation with Dequeue's protected head/next protocol
// (Q23–Q29), making the false a linearizable emptiness observation.
func (q *Queue) PrepareRemove(t *core.Thread, _ uint64) bool {
	lhead := t.Read(&q.head)
	if t.Node(lhead).Next.Load() != word.Nil {
		return true
	}
	for {
		lhead = t.Read(&q.head)
		t.ProtectNode(core.SlotRem0, lhead)
		if t.Read(&q.head) != lhead {
			continue
		}
		return t.Read(&t.Node(lhead).Next) != word.Nil
	}
}

// Insert implements core.Inserter (the key is ignored; queues are
// unkeyed). It makes the queue usable as a move target.
func (q *Queue) Insert(t *core.Thread, _ uint64, val uint64) bool {
	return q.Enqueue(t, val)
}

// Remove implements core.Remover (the key is ignored).
func (q *Queue) Remove(t *core.Thread, _ uint64) (uint64, bool) {
	return q.Dequeue(t)
}

// Len counts the elements by walking head to tail. It is linearizable
// only in quiescent states and exists for tests and examples.
func (q *Queue) Len(t *core.Thread) int {
	n := 0
	cur := t.Read(&q.head)
	for {
		next := t.Read(&t.Node(cur).Next)
		if next == word.Nil {
			return n
		}
		n++
		cur = next
	}
}

// Drain pops values until empty, returning how many were removed
// (tests/examples; quiescent use).
func (q *Queue) Drain(t *core.Thread) int {
	n := 0
	for {
		if _, ok := q.Dequeue(t); !ok {
			return n
		}
		n++
	}
}

// Anchors exposes the head and tail words for structural verification
// (package verify) and diagnostics; not part of the normal API.
func (q *Queue) Anchors() (head, tail *word.Word) { return &q.head, &q.tail }
