package repro_test

// Build-and-smoke coverage for the binary layer (cmd/ and examples/),
// so demos can't silently rot: every binary must compile with the race
// detector, and the flag-driven ones must complete a short run cleanly.

import (
	"context"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// raceFlag returns ["-race"] when this toolchain can build with the
// race detector (requires cgo); otherwise the smoke builds run plain.
func raceFlag(t *testing.T) []string {
	cmd := exec.Command("go", "env", "CGO_ENABLED")
	out, err := cmd.Output()
	if err == nil && len(out) > 0 && out[0] == '1' {
		return []string{"-race"}
	}
	t.Log("cgo unavailable: smoke-building without -race")
	return nil
}

func buildBinaries(t *testing.T, dir string, race []string) {
	t.Helper()
	args := append([]string{"build"}, race...)
	args = append(args, "-o", dir+string(filepath.Separator),
		"./cmd/...", "./examples/...")
	cmd := exec.Command("go", args...)
	cmd.Dir = "."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go %v failed: %v\n%s", args, err, out)
	}
}

func runBinary(t *testing.T, bin string, args ...string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	cmd := exec.CommandContext(ctx, bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v failed: %v\n%s", filepath.Base(bin), args, err, out)
	}
}

// TestBinariesSmoke builds every cmd/ and examples/ binary (with -race
// when available) and runs the flag-driven ones briefly. In -short mode
// only the cheapest runs execute; the full mode also runs the fixed-size
// demos.
func TestBinariesSmoke(t *testing.T) {
	dir := t.TempDir()
	race := raceFlag(t)
	buildBinaries(t, dir, race)

	runBinary(t, filepath.Join(dir, "quickstart"))
	runBinary(t, filepath.Join(dir, "shardedmap"),
		"-sessions", "200", "-threads", "2", "-ops", "2000")
	runBinary(t, filepath.Join(dir, "stress"),
		"-pair", "map/map", "-threads", "2", "-tokens", "64", "-rounds", "1", "-ops", "2000")

	if testing.Short() {
		return
	}
	runBinary(t, filepath.Join(dir, "stress"),
		"-pair", "queue/stack", "-threads", "2", "-tokens", "64", "-rounds", "1", "-ops", "2000")
	for _, demo := range []string{"bank", "hashmove", "pipeline", "scheduler"} {
		runBinary(t, filepath.Join(dir, demo))
	}
}
