package repro_test

// Exhaustion-path coverage for the graceful-degradation facade: the
// Try* variants convert descriptor-pool and arena exhaustion — which
// the panic-compatible APIs surface as a typed panic — into
// ErrResourceExhausted, with the thread reset and reusable afterwards.

import (
	"errors"
	"testing"

	"repro"
)

// exhaustDescriptors drives th's first descriptor carve to take the
// whole pool: with DescCapacity equal to one carve batch (64), any
// descriptor-allocating op on one thread leaves nothing for a second.
func exhaustDescriptors(t *testing.T, th *repro.Thread, a, b *repro.HashMap) {
	t.Helper()
	if _, ok := repro.Move(th, a, b, 1, 1); !ok {
		t.Fatal("seed move failed")
	}
	if _, ok := repro.Move(th, b, a, 1, 1); !ok {
		t.Fatal("seed move back failed")
	}
}

func TestTryMoveResourceExhausted(t *testing.T) {
	rt := repro.NewRuntime(repro.Config{MaxThreads: 3, DescCapacity: 64})
	setup := rt.RegisterThread()
	a := repro.NewHashMap(setup, 8)
	b := repro.NewHashMap(setup, 8)
	if !a.Insert(setup, 1, 10) || !a.Insert(setup, 2, 20) {
		t.Fatal("seed inserts failed")
	}
	exhaustDescriptors(t, setup, a, b)

	starved := rt.RegisterThread()
	_, _, err := repro.TryMove(starved, a, b, 2, 2)
	if err == nil {
		t.Fatal("TryMove on a starved thread must fail")
	}
	if !errors.Is(err, repro.ErrResourceExhausted) {
		t.Fatalf("error %v does not unwrap to ErrResourceExhausted", err)
	}
	// The failure is stable (no partial state wedging the thread) …
	if _, _, err2 := repro.TryMove(starved, a, b, 2, 2); !errors.Is(err2, repro.ErrResourceExhausted) {
		t.Fatalf("second TryMove: %v", err2)
	}
	// … the op never executed …
	if _, in := b.Contains(setup, 2); in {
		t.Fatal("failed TryMove leaked the entry into the destination")
	}
	if v, in := a.Contains(setup, 2); !in || v != 20 {
		t.Fatal("failed TryMove damaged the source entry")
	}
	// … and the thread with descriptors keeps working.
	if _, ok := repro.Move(setup, a, b, 2, 2); !ok {
		t.Fatal("healthy thread broken by peer's exhaustion")
	}
}

func TestTryTransferKeysAndDrainResourceExhausted(t *testing.T) {
	rt := repro.NewRuntime(repro.Config{MaxThreads: 3, DescCapacity: 64})
	setup := rt.RegisterThread()
	a := repro.NewHashMap(setup, 8)
	b := repro.NewHashMap(setup, 8)
	q1 := repro.NewQueue(setup)
	q2 := repro.NewQueue(setup)
	for i := uint64(1); i <= 4; i++ {
		a.Insert(setup, i, 100+i)
		q1.Enqueue(setup, i)
	}
	exhaustDescriptors(t, setup, a, b)

	starved := rt.RegisterThread()
	if _, _, err := repro.TryTransferKeys(starved, a, b, []uint64{2, 3}, []uint64{2, 3}); !errors.Is(err, repro.ErrResourceExhausted) {
		t.Fatalf("TryTransferKeys: %v", err)
	}
	if _, err := repro.TryDrainN(starved, q1, q2, 0, 0, 3); !errors.Is(err, repro.ErrResourceExhausted) {
		t.Fatalf("TryDrainN: %v", err)
	}
	// Nothing moved; the healthy thread still drains.
	if q1.Len(setup) != 4 || q2.Len(setup) != 0 {
		t.Fatalf("failed TryDrainN moved elements: %d/%d", q1.Len(setup), q2.Len(setup))
	}
	if got := repro.DrainN(setup, q1, q2, 0, 0, 2); len(got) != 2 {
		t.Fatalf("healthy DrainN moved %d, want 2", len(got))
	}
}

func TestTryArenaExhaustion(t *testing.T) {
	// One arena carve batch (200 nodes) past the reserved prefix: the
	// constructor takes a node, then sustained Enqueue must hit the
	// wall inside Try, not panic.
	rt := repro.NewRuntime(repro.Config{MaxThreads: 2, ArenaCapacity: 208})
	th := rt.RegisterThread()
	q := repro.NewQueue(th)
	n := 0
	err := th.Try(func() {
		for i := 0; i < 400; i++ {
			if q.Enqueue(th, uint64(i+1)) {
				n++
			}
		}
	})
	if !errors.Is(err, repro.ErrResourceExhausted) {
		t.Fatalf("arena exhaustion: err=%v after %d enqueues", err, n)
	}
	if n == 0 {
		t.Fatal("no enqueue succeeded before exhaustion")
	}
	// The queue is intact: everything that reported success is there.
	if got := q.Len(th); got != n {
		t.Fatalf("queue holds %d elements, %d enqueues succeeded", got, n)
	}
	for i := 0; i < n; i++ {
		if v, ok := q.Dequeue(th); !ok || v != uint64(i+1) {
			t.Fatalf("dequeue %d: %d,%v — FIFO damaged by exhaustion unwind", i, v, ok)
		}
	}
}
