// Hashmove: the paper's §1.1 motivating scenario — composing a hash map
// with other containers.
//
// A session cache (hash map) holds live sessions. Expiry threads move
// sessions atomically from the cache into an expiry queue for teardown;
// an archiver fans each torn-down record into both an audit list and a
// cold-storage queue in one atomic MoveN step. At no point can a
// session be in the cache and the expiry queue at once (double
// teardown), or in neither (lost session).
//
//	go run ./examples/hashmove
package main

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro"
)

const (
	sessions = 600
	expirers = 3
)

func main() {
	rt := repro.NewRuntime(repro.Config{MaxThreads: expirers + 3})
	setup := rt.RegisterThread()

	cache := repro.NewHashMap(setup, 64) // live sessions: id → payload
	expiry := repro.NewQueue(setup)      // teardown queue (session payloads)
	audit := repro.NewList(setup)        // audit trail, keyed by record id
	cold := repro.NewQueue(setup)        // cold storage

	for id := uint64(1); id <= sessions; id++ {
		cache.Insert(setup, id, id*7) // payload derived from id for auditing
	}
	fmt.Println("live sessions:", cache.Len(setup))

	// Expiry threads: move sessions out of the cache into the expiry
	// queue. Move(key) is atomic, so two expirers can never both tear
	// down the same session, and a session can't vanish mid-expiry.
	var wg sync.WaitGroup
	var expired atomic.Int64
	for e := 0; e < expirers; e++ {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			th := rt.RegisterThread()
			for id := uint64(1); id <= sessions; id++ {
				if _, ok := repro.Move(th, cache, expiry, id, 0); ok {
					expired.Add(1)
				}
			}
		}(e)
	}
	wg.Wait()
	fmt.Printf("expired %d sessions (each exactly once despite %d racing expirers)\n",
		expired.Load(), expirers)
	fmt.Println("cache now holds:", cache.Len(setup), "— expiry queue:", expiry.Len(setup))

	// Archiver: fan each record into audit list + cold storage
	// atomically (§8 extension). Audit entries get sequential keys.
	th := rt.RegisterThread()
	archived := 0
	for {
		_, ok := repro.MoveN(th, expiry,
			[]repro.Inserter{audit, cold},
			0, []uint64{uint64(archived + 1), 0})
		if !ok {
			break
		}
		archived++
	}
	fmt.Printf("archived %d records into audit list + cold storage atomically\n", archived)
	fmt.Println("audit entries:", audit.Len(th), "— cold records:", cold.Len(th))

	if expired.Load() == sessions && archived == sessions &&
		audit.Len(th) == sessions && cold.Len(th) == sessions {
		fmt.Println("end-to-end accounting intact ✓")
	} else {
		fmt.Println("ACCOUNTING MISMATCH")
	}
}
