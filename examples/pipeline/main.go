// Pipeline: atomic work-item migration between scheduler queues.
//
// A three-stage processing pipeline keeps one lock-free queue per stage.
// Worker threads process items stage by stage; a rebalancer thread
// migrates backlogged items between the stage-1 queues of two lanes
// using the atomic Move, so an item can never be observed by the lane
// scanners as "in flight nowhere" (which would make the idle detector
// shut a lane down early) or be duplicated into both lanes (which would
// double-process it).
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro"
)

const (
	lanes     = 2
	items     = 2000
	stages    = 3
	workersN  = 2 // per lane
	rebalance = 5000
)

func main() {
	rt := repro.NewRuntime(repro.Config{MaxThreads: lanes*workersN + 3})
	setup := rt.RegisterThread()

	// stageQ[lane][stage]
	var stageQ [lanes][stages]*repro.Queue
	for l := 0; l < lanes; l++ {
		for s := 0; s < stages; s++ {
			stageQ[l][s] = repro.NewQueue(setup)
		}
	}
	// Seed lane 0 heavily and lane 1 lightly: the rebalancer earns its
	// keep.
	for i := 1; i <= items; i++ {
		lane := 0
		if i%10 == 0 {
			lane = 1
		}
		stageQ[lane][0].Enqueue(setup, uint64(i))
	}

	var processed atomic.Int64
	var done [lanes]atomic.Int64
	var wg sync.WaitGroup

	// Rebalancer: moves stage-0 items from the loaded lane to the idle
	// lane, atomically. A lost item would strand the pipeline below the
	// expected total; a duplicated one would overshoot it.
	var stopRebalance atomic.Bool
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := rt.RegisterThread()
		for i := 0; i < rebalance && !stopRebalance.Load(); i++ {
			if stageQ[0][0].Len(th) > stageQ[1][0].Len(th) {
				repro.Move(th, stageQ[0][0], stageQ[1][0], 0, 0)
			} else {
				repro.Move(th, stageQ[1][0], stageQ[0][0], 0, 0)
			}
		}
	}()

	for l := 0; l < lanes; l++ {
		for w := 0; w < workersN; w++ {
			wg.Add(1)
			go func(l, w int) {
				defer wg.Done()
				th := rt.RegisterThread()
				idle := 0
				for {
					advanced := false
					// Drain from the last stage backwards so items
					// flow forward.
					for s := stages - 1; s >= 0; s-- {
						v, ok := stageQ[l][s].Dequeue(th)
						if !ok {
							continue
						}
						advanced = true
						work(v, s)
						if s+1 < stages {
							stageQ[l][s+1].Enqueue(th, v)
						} else {
							processed.Add(1)
							done[l].Add(1)
						}
					}
					if advanced {
						idle = 0
						continue
					}
					idle++
					if idle > 1000 && processed.Load() >= items {
						return
					}
				}
			}(l, w)
		}
	}

	// Let the rebalancer stop once everything is processed.
	go func() {
		for processed.Load() < items {
		}
		stopRebalance.Store(true)
	}()

	wg.Wait()
	fmt.Printf("processed %d of %d items (lane0=%d lane1=%d)\n",
		processed.Load(), items, done[0].Load(), done[1].Load())
	if processed.Load() == items {
		fmt.Println("no item lost or duplicated across rebalancing moves ✓")
	} else {
		fmt.Println("ITEM ACCOUNTING BROKEN")
	}
}

// work simulates per-stage processing cost.
func work(v uint64, stage int) uint64 {
	acc := v
	for i := 0; i < 50*(stage+1); i++ {
		acc ^= acc << 13
		acc ^= acc >> 7
		acc ^= acc << 17
	}
	return acc
}
