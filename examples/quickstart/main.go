// Quickstart: create a runtime, register threads, build a queue and a
// stack, and move elements between them atomically.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro"
)

func main() {
	// One runtime per family of composable objects.
	rt := repro.NewRuntime(repro.Config{MaxThreads: 4})

	// Every goroutine registers once and passes its Thread to all calls.
	th := rt.RegisterThread()

	q := repro.NewQueue(th)
	s := repro.NewStack(th)

	// Plain operations work as usual.
	for i := uint64(1); i <= 3; i++ {
		q.Enqueue(th, i*100)
	}
	fmt.Println("queue holds:", q.Len(th), "elements")

	// Move the queue's head onto the stack: one atomic step. No
	// concurrent observer can see the element in both places or in
	// neither — the two linearization points execute as one DCAS.
	for {
		v, ok := repro.Move(th, q, s, 0, 0)
		if !ok {
			break // queue empty
		}
		fmt.Println("moved", v, "from queue to stack")
	}
	fmt.Println("queue:", q.Len(th), "stack:", s.Len(th))

	// Moves work across different container types in both directions.
	v, ok := repro.Move(th, s, q, 0, 0)
	fmt.Printf("moved %d back (ok=%v); queue=%d stack=%d\n",
		v, ok, q.Len(th), s.Len(th))

	// Keyed containers participate too: move the queue head into a hash
	// map under key 7, then move it out into an ordered set under key 3.
	m := repro.NewHashMap(th, 16)
	l := repro.NewList(th)
	if v, ok := repro.Move(th, q, m, 0, 7); ok {
		fmt.Println("queue → map under key 7:", v)
	}
	if v, ok := repro.Move(th, m, l, 7, 3); ok {
		fmt.Println("map(7) → list under key 3:", v)
	}
	if got, ok := l.Contains(th, 3); ok {
		fmt.Println("list[3] =", got)
	}

	// MoveN: fan one element out into several containers atomically
	// (the paper's §8 extension).
	q.Enqueue(th, 555)
	s2 := repro.NewStack(th)
	if v, ok := repro.MoveN(th, q, []repro.Inserter{s, s2}, 0, []uint64{0, 0}); ok {
		fmt.Println("fanned", v, "into two stacks atomically")
	}
	fmt.Println("s:", s.Len(th), "s2:", s2.Len(th))
}
