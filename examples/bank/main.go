// Bank: demonstrates what the unified linearization point buys you.
//
// Account tokens (keys) live in exactly one of two hash maps ("vault A"
// and "vault B"). Transfer threads move tokens between the vaults; probe
// threads continuously ask "is token k in A? in B?".
//
// With the atomic Move (Figure 1d of the paper) a token is in exactly
// one vault at every instant: a probe can only report "in neither" when
// a move happens to land between its two queries. With the naive
// remove-then-insert composition (Figure 1c) there is a real execution
// window in which the token is in neither vault, and probes observe it
// orders of magnitude more often.
//
// The example runs both modes and prints the observation counts, plus a
// final conservation audit (every token in exactly one vault).
//
//	go run ./examples/bank
package main

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro"
)

const (
	tokens    = 64
	movers    = 3
	probers   = 2
	transfers = 40000
)

func run(naive bool) (neither int64, both int64, conserved bool) {
	rt := repro.NewRuntime(repro.Config{MaxThreads: movers + probers + 2})
	setup := rt.RegisterThread()
	vaultA := repro.NewHashMap(setup, 32)
	vaultB := repro.NewHashMap(setup, 32)
	for k := uint64(1); k <= tokens; k++ {
		vaultA.Insert(setup, k, k*11)
	}

	var wg sync.WaitGroup
	var stop atomic.Bool
	var sawNeither, sawBoth atomic.Int64

	for p := 0; p < probers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			th := rt.RegisterThread()
			rng := uint64(p)*0x9e3779b97f4a7c15 + 5
			next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
			for !stop.Load() {
				k := next()%tokens + 1
				_, inA := vaultA.Contains(th, k)
				_, inB := vaultB.Contains(th, k)
				switch {
				case inA && inB:
					// Also a probe race (token moved A→B between the two
					// queries); neither mode can duplicate a token, as
					// the final audit verifies.
					sawBoth.Add(1)
				case !inA && !inB:
					sawNeither.Add(1)
				}
			}
		}(p)
	}

	var mwg sync.WaitGroup
	for m := 0; m < movers; m++ {
		wg.Add(1)
		mwg.Add(1)
		go func(m int) {
			defer wg.Done()
			defer mwg.Done()
			th := rt.RegisterThread()
			rng := uint64(m)*2654435761 + 17
			next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
			for i := 0; i < transfers; i++ {
				k := next()%tokens + 1
				src, dst := vaultA, vaultB
				if next()&1 == 0 {
					src, dst = vaultB, vaultA
				}
				if naive {
					// Figure 1c: two linearization points with a gap.
					if v, ok := src.Remove(th, k); ok {
						dst.Insert(th, k, v)
					}
				} else {
					// Figure 1d: one unified linearization point.
					repro.Move(th, src, dst, k, k)
				}
			}
		}(m)
	}
	mwg.Wait()
	stop.Store(true)
	wg.Wait()

	conserved = true
	for k := uint64(1); k <= tokens; k++ {
		vA, inA := vaultA.Contains(setup, k)
		vB, inB := vaultB.Contains(setup, k)
		if inA == inB { // in both or in neither
			conserved = false
		}
		v := vA
		if inB {
			v = vB
		}
		if v != k*11 {
			conserved = false
		}
	}
	return sawNeither.Load(), sawBoth.Load(), conserved
}

func main() {
	for _, naive := range []bool{false, true} {
		mode := "atomic Move (Fig. 1d)"
		if naive {
			mode = "naive remove+insert (Fig. 1c)"
		}
		neither, both, conserved := run(naive)
		fmt.Printf("%-32s  probes seeing token in neither vault: %6d   in both: %d   conserved at end: %v\n",
			mode, neither, both, conserved)
	}
	fmt.Println("\nA probe can see \"neither\" with atomic moves only when its two")
	fmt.Println("queries straddle a move; the naive composition adds a real window")
	fmt.Println("in which the token is in no vault at all — compare the counts.")
}
