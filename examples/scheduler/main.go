// Scheduler: priority-based task scheduling with atomic escalation.
//
// Tasks wait in a priority queue. An escalation thread atomically moves
// the most urgent waiting task into a running queue (its dispatch
// decision and the task's disappearance from the wait set are one step),
// so monitoring threads never observe a task that is neither waiting nor
// running ("lost task") nor one that is both ("double dispatch").
//
// This uses the priority queue built on the paper's methodology — a
// third container family beyond the paper's queue/stack case studies —
// composed with a FIFO queue via the same atomic move.
//
//	go run ./examples/scheduler
package main

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/backoff"
	"repro/internal/pqueue"
)

const (
	tasks      = 500
	dispatched = tasks
	executors  = 2
	monitors   = 2
)

func main() {
	rt := repro.NewRuntime(repro.Config{MaxThreads: executors + monitors + 3})
	setup := rt.RegisterThread()

	waiting := pqueue.New(setup) // priority → task id
	running := repro.NewQueue(setup)

	// Submit tasks with pseudo-random priorities; task id doubles as the
	// payload so monitors can audit.
	rng := uint64(42)
	next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
	// Submission retries with jittered backoff: Insert can fail
	// transiently (contention in the skeleton phase), which is a
	// retryable condition, not a crash.
	jit := backoff.NewJitter(100*time.Microsecond, 10*time.Millisecond, 42)
	for id := uint64(1); id <= tasks; id++ {
		prio := next() % 100
		submitted := false
		for attempt := 0; attempt < 16; attempt++ {
			if waiting.Insert(setup, prio, id) {
				submitted = true
				break
			}
			jit.Sleep()
		}
		if !submitted {
			fmt.Fprintf(os.Stderr, "scheduler: task %d not submitted after 16 attempts\n", id)
			os.Exit(1)
		}
		jit.Reset()
	}
	fmt.Println("submitted:", waiting.Len(setup), "tasks")

	var wg sync.WaitGroup
	var seen sync.Map
	var executed atomic.Int64
	var doubles atomic.Int64

	// Dispatcher: atomically escalate the most urgent task into the
	// running queue.
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := rt.RegisterThread()
		for n := 0; n < dispatched; {
			if _, ok := repro.Move(th, waiting, running, 0, 0); ok {
				n++
			}
		}
	}()

	// Executors: drain the running queue.
	for e := 0; e < executors; e++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := rt.RegisterThread()
			for executed.Load() < tasks {
				id, ok := running.Dequeue(th)
				if !ok {
					continue
				}
				if _, dup := seen.LoadOrStore(id, true); dup {
					doubles.Add(1)
				}
				executed.Add(1)
			}
		}()
	}

	// Monitors: the combined population (waiting + running + executed)
	// can never exceed the submitted count — a double dispatch would.
	var anomalies atomic.Int64
	stop := make(chan struct{})
	for m := 0; m < monitors; m++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := rt.RegisterThread()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Counting is racy across three places; counting
				// *against* the task flow (executed, then running, then
				// waiting) means a task in flight can only be missed,
				// never counted twice — so with atomic moves the total
				// can only undershoot. A double dispatch would overshoot.
				ex := int(executed.Load())
				run := running.Len(th)
				wait := waiting.Len(th)
				if ex+run+wait > tasks {
					anomalies.Add(1)
				}
			}
		}()
	}

	// Wait for completion.
	done := make(chan struct{})
	go func() {
		for executed.Load() < tasks {
		}
		close(done)
	}()
	<-done
	close(stop)
	wg.Wait()

	distinct := 0
	seen.Range(func(_, _ any) bool { distinct++; return true })
	fmt.Printf("executed %d tasks (%d distinct, %d double dispatches, %d monitor anomalies)\n",
		executed.Load(), distinct, doubles.Load(), anomalies.Load())
	if distinct == tasks && doubles.Load() == 0 && anomalies.Load() == 0 {
		fmt.Println("every task dispatched exactly once ✓")
	} else {
		fmt.Println("DISPATCH ACCOUNTING BROKEN")
	}
}
