// Shardedmap: the resizable map growing live under keyed churn.
//
// A session store starts as a deliberately tiny sharded map and is
// hammered by writer threads until its shards grow several times; every
// entry a grow relocates travels between its old and new bucket through
// one MoveN, so even mid-rebalance a session is observable in exactly
// one bucket — never duplicated, never lost. Meanwhile mover threads
// shuttle sessions between the hot store and a cold store with keyed
// atomic moves, and a rebalancer thread drives pending migrations in
// bounded RebalanceStep increments.
//
// The demo ends with a conservation audit (every session in exactly one
// store, value intact) and prints how much growing the run absorbed.
//
//	go run ./examples/shardedmap
//	go run ./examples/shardedmap -sessions 200 -threads 2 -ops 5000
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"

	"repro"
)

func main() {
	var (
		sessions = flag.Int("sessions", 2000, "distinct session keys")
		threads  = flag.Int("threads", 4, "churn threads")
		ops      = flag.Int("ops", 30000, "operations per thread")
	)
	flag.Parse()

	rt := repro.NewRuntime(repro.Config{MaxThreads: *threads + 2})
	setup := rt.RegisterThread()

	// 2 shards × 2 buckets with the default grow threshold: the prefill
	// alone forces several grows per shard.
	hot := repro.NewShardedHashMap(setup, 2, 2, 0)
	cold := repro.NewShardedHashMap(setup, 2, 2, 0)
	for id := uint64(1); id <= uint64(*sessions); id++ {
		hot.Insert(setup, id, id*7) // payload derived from id for auditing
	}
	fmt.Printf("start: %d sessions, hot store %d buckets over %d shards\n",
		hot.Len(setup), hot.Buckets(), hot.Shards())

	var stop atomic.Bool
	var rwg sync.WaitGroup
	reb := rt.RegisterThread()
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		for !stop.Load() {
			if !hot.RebalanceStep(reb) && !cold.RebalanceStep(reb) {
				runtime.Gosched()
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < *threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := rt.RegisterThread()
			rng := uint64(w+1) * 0x9e3779b97f4a7c15
			next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
			for i := 0; i < *ops; i++ {
				id := next()%uint64(*sessions) + 1
				switch next() % 3 {
				case 0: // demote: hot → cold, same key, one atomic step
					repro.Move(th, hot, cold, id, id)
				case 1: // promote: cold → hot
					repro.Move(th, cold, hot, id, id)
				default: // lookup during all of the above
					if v, ok := hot.Contains(th, id); ok && v != id*7 {
						fmt.Fprintf(os.Stderr, "CORRUPTION: session %d holds %d\n", id, v)
						os.Exit(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	stop.Store(true)
	rwg.Wait()
	hot.Quiesce(setup)
	cold.Quiesce(setup)

	lost, dup := 0, 0
	for id := uint64(1); id <= uint64(*sessions); id++ {
		vh, inHot := hot.Contains(setup, id)
		vc, inCold := cold.Contains(setup, id)
		switch {
		case inHot && inCold:
			dup++
		case !inHot && !inCold:
			lost++
		case inHot && vh != id*7, inCold && vc != id*7:
			fmt.Fprintf(os.Stderr, "CORRUPTION: session %d audited wrong\n", id)
			os.Exit(1)
		}
	}
	gh, mh, sh := hot.Stats()
	gc, mc, sc := cold.Stats()
	fmt.Printf("end:   hot %d buckets / cold %d buckets\n", hot.Buckets(), cold.Buckets())
	fmt.Printf("grows=%d entries-migrated-via-MoveN=%d rebalance-steps=%d\n",
		gh+gc, mh+mc, sh+sc)
	if lost != 0 || dup != 0 {
		fmt.Fprintf(os.Stderr, "AUDIT FAILED: %d lost, %d duplicated\n", lost, dup)
		os.Exit(1)
	}
	fmt.Printf("audit: %d sessions, each in exactly one store — conservation intact\n", *sessions)
}
