package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/backoff"
	"repro/internal/kvwire"
	"repro/internal/latency"
	"repro/internal/obs"
)

// Config shapes one Server.
type Config struct {
	// Tenants is the number of tenants; each owns one map and one queue
	// (default 4).
	Tenants int
	// Workers bounds concurrent connections: each connection handler
	// borrows one registered repro.Thread for its lifetime, so at most
	// Workers connections are served at once and further accepts wait
	// (default 16).
	Workers int
	// Shards/Buckets shape each tenant map (per NewShardedHashMap;
	// defaults 8 shards × 8 buckets).
	Shards, Buckets int
	// Arena caps container nodes across all tenants (default 1<<20).
	Arena int
	// DescCapacity caps k-word CAS descriptors across the runtime
	// (default: the core default, 1<<18). Driving the server past it
	// yields BUSY responses, not a crash.
	DescCapacity int
	// Elimination/Adaptive switch on the contention layers.
	Elimination, Adaptive bool
	// Deadline bounds one request's service time: resource-exhaustion
	// retries stop and the request answers TIMEOUT once it has been in
	// service this long. Zero disables the retry loop — exhaustion
	// answers BUSY immediately.
	Deadline time.Duration
	// WriteTimeout bounds one response write; a client that cannot
	// drain its responses within it is disconnected (shed) so it cannot
	// pin a worker forever. Zero disables.
	WriteTimeout time.Duration
	// SLO enables the per-tenant overload shedder: when the windowed
	// p99 service time exceeds SLO, the highest tenant ids (lowest
	// priority) get BUSY before execution, one more tenant per control
	// period the overload persists; recovered windows re-admit them.
	// Zero disables shedding.
	SLO time.Duration
	// Fault, when non-nil, is installed as the runtime's fault injector
	// (chaos testing; see internal/fault). Drain releases any parked
	// threads before waiting.
	Fault *repro.FaultPlan
	// Metrics enables the runtime metrics registry: the METRICS wire
	// verb serves its snapshot in Prometheus text format, STATS carries
	// it as the "obs" block, and the server's degradation counters are
	// registered into it. main defaults it on (-metrics=false to
	// disable); the zero Config leaves it off.
	Metrics bool
	// Trace enables the descriptor-protocol tracer; WriteTrace drains
	// it as JSONL (main's -trace flag writes it at SIGTERM drain).
	// TraceBuf sizes the per-thread rings (0 = obs default).
	Trace    bool
	TraceBuf int
	// Spans enables the request-scoped span layer: each data-path
	// request's wall time is decomposed into queue/parse/execute/
	// degrade/write stages, recorded into per-stage histograms (STATS
	// "stages" block, METRICS stage_* series) and per-worker rings, with
	// the slowest requests retained as tail exemplars behind a windowed-
	// p99 threshold gate and served by the SLOW wire verb. SpanBuf sizes
	// the per-worker completed-span rings and SpanTopK the exemplar
	// buffer (0 = obs defaults).
	Spans    bool
	SpanBuf  int
	SpanTopK int
}

func (c Config) withDefaults() Config {
	if c.Tenants <= 0 {
		c.Tenants = 4
	}
	if c.Workers <= 0 {
		c.Workers = 16
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.Buckets <= 0 {
		c.Buckets = 8
	}
	if c.Arena <= 0 {
		c.Arena = 1 << 20
	}
	return c
}

// shedPeriod is the overload controller's sampling interval: long
// enough for a meaningful windowed p99, short enough to shed within a
// human-noticeable overload.
const shedPeriod = 250 * time.Millisecond

// worker is one connection handler's identity: a registered Thread
// (the per-goroutine context every container call needs) plus the
// latency recorder stripe index it owns.
type worker struct {
	idx int
	th  *repro.Thread
}

// Server is the composed-KV network service: per-tenant lock-free maps
// and queues from one shared runtime, the kvwire line protocol on top,
// and the paper's composition — Move, TransferKeys, DrainN — exposed
// as the cross-tenant product operations. Each connection is served by
// one borrowed worker (Thread + histogram stripe); service times are
// recorded per (tenant, op) into striped HDR histograms and reported
// by STATS without stopping traffic.
//
// Degradation paths (see docs/robustness.md): resource exhaustion
// answers BUSY/TIMEOUT instead of crashing, slow clients are shed by
// write timeout, overload sheds low-priority tenants against the SLO,
// fault-killed workers are retired (never returned to the pool), and
// Drain performs the SIGTERM graceful shutdown.
type Server struct {
	cfg     Config
	rt      *repro.Runtime
	setup   *repro.Thread // construction + drain-time audit thread
	maps    []*repro.HashMap
	queues  []*repro.Queue
	rec     *latency.Recorder
	workers chan *worker
	started time.Time

	// Span layer (nil when Config.Spans is off; every use is nil-safe
	// or gated, so the disabled request path stays allocation-free).
	spans  *obs.Spans
	stages *latency.Stages
	reg    *obs.Registry
	trc    *obs.Tracer

	draining  atomic.Bool
	shedLevel atomic.Int32
	shedStop  chan struct{}

	// Degradation counters (kvwire.RobustCounters, server-side fields).
	busy        atomic.Uint64
	timeouts    atomic.Uint64
	shed        atomic.Uint64
	slowClients atomic.Uint64
	lostWorkers atomic.Uint64

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer builds the runtime, tenant containers and worker pool.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	rc := repro.Config{
		MaxThreads:    cfg.Workers + 2,
		ArenaCapacity: cfg.Arena,
		DescCapacity:  cfg.DescCapacity,
		Elimination:   repro.EliminationConfig{Enable: cfg.Elimination},
		Adaptive:      repro.AdaptiveConfig{Enable: cfg.Adaptive},
		Obs: repro.ObsConfig{
			Metrics: cfg.Metrics, Trace: cfg.Trace, TraceBuf: cfg.TraceBuf,
			Spans: cfg.Spans, SpanBuf: cfg.SpanBuf, SpanTopK: cfg.SpanTopK,
		},
	}
	if cfg.Fault != nil {
		rc.Fault = cfg.Fault
	}
	rt := repro.NewRuntime(rc)
	setup := rt.RegisterThread()
	s := &Server{
		cfg:      cfg,
		rt:       rt,
		setup:    setup,
		rec:      latency.NewRecorder(cfg.Workers, cfg.Tenants, int(kvwire.OpCount)),
		workers:  make(chan *worker, cfg.Workers),
		conns:    make(map[net.Conn]struct{}),
		started:  time.Now(),
		shedStop: make(chan struct{}),
	}
	for i := 0; i < cfg.Tenants; i++ {
		s.maps = append(s.maps, repro.NewShardedHashMap(setup, cfg.Shards, cfg.Buckets, 0))
		s.queues = append(s.queues, repro.NewQueue(setup))
	}
	for i := 0; i < cfg.Workers; i++ {
		s.workers <- &worker{idx: i, th: rt.RegisterThread()}
	}
	s.spans = rt.Obs().Spans()
	s.reg = rt.Obs().Metrics()
	s.trc = rt.Obs().Tracer()
	if s.spans != nil {
		names := make([]string, obs.NumStages)
		for st := obs.Stage(0); st < obs.NumStages; st++ {
			names[st] = st.String()
		}
		s.stages = latency.NewStages(cfg.Workers, names)
	}
	if reg := s.reg; reg != nil {
		// The degradation counters join the registry under the same
		// names the STATS robust block reports, so METRICS output and
		// RobustCounters reconcile by construction.
		reg.AddFunc("busy_total", s.busy.Load)
		reg.AddFunc("timeouts_total", s.timeouts.Load)
		reg.AddFunc("shed_total", s.shed.Load)
		reg.AddFunc("slow_clients_total", s.slowClients.Load)
		reg.AddFunc("lost_workers_total", s.lostWorkers.Load)
		// Self-describing scrapes: process uptime and build identity.
		reg.AddGauge("uptime_seconds", func() uint64 {
			return uint64(time.Since(s.started).Seconds())
		})
		reg.AddInfo("build_info", fmt.Sprintf("go_version=%q,gomaxprocs=\"%d\"",
			runtime.Version(), runtime.GOMAXPROCS(0)))
		if s.stages != nil {
			// Per-stage histogram series: one count plus current
			// percentile/max gauges per span stage, merged across
			// workers at scrape time.
			for st := obs.Stage(0); st < obs.NumStages; st++ {
				st := st
				name := st.String()
				reg.AddFunc("stage_"+name+"_count_total", func() uint64 {
					return s.stages.Merged(int(st)).Count
				})
				reg.AddGauge("stage_"+name+"_p50_ns", func() uint64 {
					return uint64(s.stages.Merged(int(st)).Percentile(0.50))
				})
				reg.AddGauge("stage_"+name+"_p99_ns", func() uint64 {
					return uint64(s.stages.Merged(int(st)).Percentile(0.99))
				})
				reg.AddGauge("stage_"+name+"_max_ns", func() uint64 {
					return uint64(s.stages.Merged(int(st)).Max())
				})
			}
			reg.AddFunc("spans_dropped_total", s.spans.Dropped)
		}
	}
	if cfg.SLO > 0 {
		go s.shedController()
	}
	if s.spans != nil {
		go s.spanTuner()
	}
	return s
}

// Serve accepts connections on ln until Close. Each accepted
// connection borrows a worker from the pool (waiting for one when all
// are serving) and is handled until EOF.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		// Borrow wait is the queue stage of the connection's first
		// request: pool queueing happens here, before service time
		// starts, so without this measurement it hides from every
		// histogram. Only measured when spans are on.
		var borrowNS int64
		var w *worker
		if s.spans != nil {
			t := time.Now()
			w = <-s.workers
			borrowNS = time.Since(t).Nanoseconds()
		} else {
			w = <-s.workers
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			s.workers <- w
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn, w, borrowNS)
	}
}

// Close stops accepting, closes open connections and waits for
// handlers to drain.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.stopShedder()
	if ln != nil {
		ln.Close()
	}
	if s.cfg.Fault != nil {
		s.cfg.Fault.Release() // a parked handler would hang the Wait
	}
	s.wg.Wait()
}

// Drain is the graceful counterpart of Close (the SIGTERM path): stop
// accepting, let every in-flight request finish and its response
// flush, then return with the server quiesced. Open connections are
// not closed mid-response — each handler is unblocked at its next read
// (an immediate read deadline) and exits after completing the request
// it was serving. Parked fault actions are released first, so a chaos
// plan cannot wedge the drain. After Drain the caller reads the final
// Stats and Audit and exits.
func (s *Server) Drain() {
	s.draining.Store(true)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.stopShedder()
	if ln != nil {
		ln.Close()
	}
	if s.cfg.Fault != nil {
		s.cfg.Fault.Release()
	}
	for _, c := range conns {
		c.SetReadDeadline(time.Now()) // unblock the scanner; in-flight work finishes
	}
	s.wg.Wait()
}

func (s *Server) stopShedder() {
	select {
	case <-s.shedStop:
	default:
		close(s.shedStop)
	}
}

// SetupThread exposes the construction thread for post-drain audits:
// after Drain no worker thread is guaranteed live (a fault plan may
// have killed some), but the setup thread never runs data-path
// requests and survives. The audit sweep it performs also helps any
// descriptor a killed worker left announced to completion.
func (s *Server) SetupThread() *repro.Thread { return s.setup }

// shedController runs while SLO shedding is enabled: each period it
// computes the p99 of the samples recorded in that period (a windowed
// delta, so recovery is observable) and moves the shed level — the
// count of highest-id tenants answered BUSY — one notch toward the
// overload verdict. Tenant priority is id order: tenant 0 is shed last.
func (s *Server) shedController() {
	tick := time.NewTicker(shedPeriod)
	defer tick.Stop()
	prev := s.rec.MergedAll()
	for {
		select {
		case <-s.shedStop:
			return
		case <-tick.C:
		}
		cur := s.rec.MergedAll()
		win := cur.Sub(prev)
		prev = cur
		level := s.shedLevel.Load()
		switch {
		case win.Count >= 16 && time.Duration(win.Percentile(0.99)) > s.cfg.SLO:
			if int(level) < s.cfg.Tenants-1 {
				s.shedLevel.Store(level + 1)
			}
		case level > 0:
			// A calm (or idle) window re-admits one tenant.
			s.shedLevel.Store(level - 1)
		}
	}
}

// spanTuner runs while spans are enabled: each period it recomputes the
// windowed p99 of the service-time recorder (the same windowed delta
// the overload controller uses) and installs it as the tail-exemplar
// threshold, so under a load shift the exemplar buffer self-tunes —
// only requests at or beyond the *current* tail displace retained
// exemplars. Idle windows (too few samples for a meaningful p99) leave
// the previous threshold standing.
func (s *Server) spanTuner() {
	tick := time.NewTicker(shedPeriod)
	defer tick.Stop()
	prev := s.rec.MergedAll()
	for {
		select {
		case <-s.shedStop:
			return
		case <-tick.C:
		}
		cur := s.rec.MergedAll()
		win := cur.Sub(prev)
		prev = cur
		if win.Count >= 16 {
			s.spans.SetThreshold(win.Percentile(0.99))
		}
	}
}

// shouldShed reports whether the overload controller is currently
// shedding ops addressed to (or sourced from) tenant tn.
func (s *Server) shouldShed(tn int) bool {
	level := int(s.shedLevel.Load())
	return level > 0 && tn >= s.cfg.Tenants-level
}

func (s *Server) handle(conn net.Conn, w *worker, borrowNS int64) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		// A fault-killed handler exits via runtime.Goexit mid-operation:
		// its Thread may hold announced move state and must never serve
		// again. Retire it (the pool shrinks by one; peers complete the
		// operation it was lost in) instead of poisoning the pool.
		if w.th.MoveInFlight() {
			s.lostWorkers.Add(1)
		} else {
			s.workers <- w
		}
		s.wg.Done()
	}()
	in := bufio.NewScanner(conn)
	out := bufio.NewWriter(conn)
	for in.Scan() {
		var sp obs.Span
		resp := s.exec(w, in.Text(), &sp)
		// sp.Op is set iff exec opened a span (spans on, data-path op,
		// clean parse); finish it around the response write so the
		// write stage and full wall time land in the record.
		spanning := sp.Op != ""
		var tw time.Time
		if spanning {
			if borrowNS > 0 {
				// The connection's first request absorbs the worker
				// borrow wait; the span starts at accept, not at parse.
				sp.Stage[obs.StageQueue] = borrowNS
				sp.StartNS -= borrowNS
			}
			tw = time.Now()
		}
		out.WriteString(resp)
		out.WriteByte('\n')
		if s.cfg.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		}
		err := out.Flush()
		if spanning {
			now := time.Now()
			sp.Stage[obs.StageWrite] = now.Sub(tw).Nanoseconds()
			sp.WallNS = s.spans.SinceEpoch(now) - sp.StartNS
			s.finishSpan(w, sp)
			borrowNS = 0 // attributed once
		}
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				s.slowClients.Add(1) // shed the client that can't drain
			}
			return
		}
		if s.draining.Load() {
			return // graceful drain: this response flushed; stop reading
		}
	}
}

// finishSpan records a completed span into the worker's ring, the
// per-stage histograms and the exemplar gate, then clears the serving
// thread's current-request slot in the tracer.
func (s *Server) finishSpan(w *worker, sp obs.Span) {
	s.spans.Finish(w.idx, sp)
	for st := obs.Stage(0); st < obs.NumStages; st++ {
		s.stages.RecordNS(w.idx, int(st), sp.Stage[st])
	}
	s.trc.SetRequest(w.th.ID(), 0)
}

// exec parses and applies one request line, recording the data-path
// service time against the request's (source) tenant. Degradation
// checks run before execution: a shed verdict or a resource-exhaustion
// failure answers BUSY/TIMEOUT with the operation guaranteed
// unexecuted.
//
// When spans are enabled, exec opens a span for every cleanly-parsed
// data-path request (sp.Op set marks it open; control verbs and parse
// errors stay unspanned): parse and execute stage times, degradation
// backoff (accumulated by applyWithRetry), the serving thread's kcas
// counter deltas, and the request id — also installed as the tracer's
// current request, so every protocol event the execution records
// carries it. The caller (handle) closes the span around the response
// write.
func (s *Server) exec(w *worker, line string, sp *obs.Span) string {
	spanning := s.spans != nil
	var t0 time.Time
	if spanning {
		t0 = time.Now()
	}
	req, err := kvwire.ParseRequest(line, s.cfg.Tenants)
	if err != nil {
		return "ERR " + err.Error()
	}
	if req.Op >= kvwire.OpCount {
		return s.execControl(w, req)
	}
	tid := w.th.ID()
	if spanning {
		sp.Req = s.spans.NextReq()
		sp.TID = int32(tid)
		sp.Worker = int32(w.idx)
		sp.Tenant = int32(req.Tenant)
		sp.Op = req.Op.String()
		sp.StartNS = s.spans.SinceEpoch(t0)
		sp.Stage[obs.StageParse] = time.Since(t0).Nanoseconds()
		s.trc.SetRequest(tid, sp.Req)
	}
	if s.shouldShed(req.Tenant) {
		s.shed.Add(1)
		s.busy.Add(1)
		if spanning {
			sp.Status = "BUSY"
		}
		return "BUSY"
	}
	var pub0, help0, abort0 uint64
	if spanning && s.reg != nil {
		pub0 = s.reg.ThreadValue(tid, obs.KCASPublish)
		help0 = s.reg.ThreadValue(tid, obs.KCASHelp)
		abort0 = s.reg.ThreadValue(tid, obs.KCASAbort)
	}
	t1 := time.Now()
	resp := s.applyWithRetry(w.th, req, t1, sp)
	d := time.Since(t1)
	s.rec.Record(w.idx, req.Tenant, int(req.Op), d)
	if spanning {
		// Execute is service time minus the backoff sleeps the retry
		// loop attributed to the degrade stage.
		execNS := d.Nanoseconds() - sp.Stage[obs.StageDegrade]
		if execNS < 0 {
			execNS = 0
		}
		sp.Stage[obs.StageExec] = execNS
		if s.reg != nil {
			sp.Publishes = s.reg.ThreadValue(tid, obs.KCASPublish) - pub0
			sp.Helps = s.reg.ThreadValue(tid, obs.KCASHelp) - help0
			sp.Aborts = s.reg.ThreadValue(tid, obs.KCASAbort) - abort0
		}
		sp.Status = statusToken(resp)
	}
	return resp
}

// statusToken extracts the response's leading status token ("OK 7" →
// "OK").
func statusToken(resp string) string {
	if i := strings.IndexByte(resp, ' '); i >= 0 {
		return resp[:i]
	}
	return resp
}

// applyWithRetry runs the request under Thread.Try, absorbing resource
// exhaustion: without a deadline the first exhaustion answers BUSY;
// with one, retries with jittered backoff continue until the deadline,
// then answer TIMEOUT. Both statuses guarantee non-execution — Try
// unwinds from init-phase code, before the operation publishes
// anything.
func (s *Server) applyWithRetry(th *repro.Thread, req kvwire.Request, t0 time.Time, sp *obs.Span) string {
	var resp string
	err := th.Try(func() { resp = s.apply(th, req) })
	if err == nil {
		return resp
	}
	if s.cfg.Deadline <= 0 {
		s.busy.Add(1)
		return "BUSY"
	}
	spanning := s.spans != nil
	jit := backoff.NewJitter(time.Millisecond, 50*time.Millisecond, uint64(t0.UnixNano()))
	for {
		if time.Since(t0) >= s.cfg.Deadline {
			s.timeouts.Add(1)
			return "TIMEOUT"
		}
		if spanning {
			// The backoff sleep is degradation overhead, not execution:
			// attribute it to the degrade stage so a deadline-bound
			// retry storm doesn't masquerade as slow container code.
			ts := time.Now()
			jit.Sleep()
			sp.Stage[obs.StageDegrade] += time.Since(ts).Nanoseconds()
		} else {
			jit.Sleep()
		}
		if err = th.Try(func() { resp = s.apply(th, req) }); err == nil {
			return resp
		}
	}
}

func (s *Server) apply(th *repro.Thread, req kvwire.Request) string {
	switch req.Op {
	case kvwire.OpGet:
		if v, ok := s.maps[req.Tenant].Contains(th, req.Keys[0]); ok {
			return "OK " + strconv.FormatUint(v, 10)
		}
		return "NF"
	case kvwire.OpPut:
		if s.maps[req.Tenant].Insert(th, req.Keys[0], req.Val) {
			return "OK"
		}
		return "EXISTS"
	case kvwire.OpDel:
		if v, ok := s.maps[req.Tenant].Remove(th, req.Keys[0]); ok {
			return "OK " + strconv.FormatUint(v, 10)
		}
		return "NF"
	case kvwire.OpPush:
		if s.queues[req.Tenant].Enqueue(th, req.Val) {
			return "OK"
		}
		return "ERR queue full"
	case kvwire.OpPop:
		if v, ok := s.queues[req.Tenant].Dequeue(th); ok {
			return "OK " + strconv.FormatUint(v, 10)
		}
		return "NF"
	case kvwire.OpMove:
		// The product composition: the entry leaves req.Tenant's map and
		// appears in req.DTenant's in one linearization — never in both,
		// never in neither.
		if v, ok := repro.Move(th, s.maps[req.Tenant], s.maps[req.DTenant], req.Keys[0], req.TKeys[0]); ok {
			return "OK " + strconv.FormatUint(v, 10)
		}
		return "FAIL"
	case kvwire.OpXfer:
		vs, ok := repro.TransferKeys(th, s.maps[req.Tenant], s.maps[req.DTenant], req.Keys, req.TKeys)
		if !ok {
			return "FAIL"
		}
		return "OK " + joinU64(vs)
	case kvwire.OpDrain:
		vs := repro.DrainN(th, s.queues[req.Tenant], s.queues[req.DTenant], 0, 0, req.N)
		if len(vs) == 0 {
			return "OK"
		}
		return "OK " + joinU64(vs)
	}
	return "ERR unreachable"
}

func (s *Server) execControl(w *worker, req kvwire.Request) string {
	switch req.Op {
	case kvwire.OpPing:
		return "OK"
	case kvwire.OpStats:
		b, err := json.Marshal(s.Stats())
		if err != nil {
			return "ERR " + err.Error()
		}
		return "OK " + string(b)
	case kvwire.OpAudit:
		mapN, mapSum, queueN := s.Audit(w.th)
		return fmt.Sprintf("OK %d %d %d", mapN, mapSum, queueN)
	case kvwire.OpMetrics:
		return s.metricsText()
	case kvwire.OpSlow:
		if s.spans == nil {
			return "ERR spans disabled"
		}
		b, err := json.Marshal(kvwire.SlowDoc{
			ThresholdNS: s.spans.Threshold(),
			Dropped:     s.spans.Dropped(),
			Exemplars:   s.spans.Exemplars(),
		})
		if err != nil {
			return "ERR " + err.Error()
		}
		return "OK " + string(b)
	}
	return "ERR unreachable"
}

// metricsText renders the registry snapshot in Prometheus text format.
// It is the protocol's one multi-line response; the "# EOF" terminator
// (written by WritePrometheus, completed by the handler's newline)
// frames it for line-reading clients.
func (s *Server) metricsText() string {
	reg := s.rt.Obs().Metrics()
	if reg == nil {
		return "ERR metrics disabled"
	}
	var b strings.Builder
	if err := reg.Snapshot().WritePrometheus(&b); err != nil {
		return "ERR " + err.Error()
	}
	return strings.TrimSuffix(b.String(), "\n")
}

// WriteTrace drains the protocol tracer and writes the events as
// JSONL, followed by the span layer's buffered request spans when
// spans are enabled (span lines carry a "span":1 discriminator; the
// mixed file is what cmd/tracecheck reads). A no-op (nil error, no
// output) when both surfaces are disabled. main calls it on the
// SIGTERM drain path after the server has quiesced.
func (s *Server) WriteTrace(w io.Writer) error {
	if s.trc != nil {
		if err := repro.WriteTraceJSONL(w, s.trc.Drain()); err != nil {
			return err
		}
	}
	if s.spans != nil {
		return repro.WriteSpansJSONL(w, s.spans.Completed())
	}
	return nil
}

// Stats merges the per-worker histogram stripes into the kvwire report
// document: one row per (tenant, op) with traffic, plus per-tenant
// "all" rows, plus the degradation counters (robust block). It is safe
// to call concurrently with traffic.
func (s *Server) Stats() kvwire.Doc {
	doc := kvwire.NewDoc()
	wall := float64(time.Since(s.started).Nanoseconds())
	for tn := 0; tn < s.cfg.Tenants; tn++ {
		for op := 0; op < int(kvwire.OpCount); op++ {
			snap := s.rec.Merged(tn, op)
			if snap.Count == 0 {
				continue
			}
			doc.Rows = append(doc.Rows, kvwire.RowFrom("kvserver",
				strconv.Itoa(tn), kvwire.Op(op).String(), s.cfg.Workers, snap, wall))
		}
		if snap := s.rec.MergedTenant(tn); snap.Count > 0 {
			doc.Rows = append(doc.Rows, kvwire.RowFrom("kvserver",
				strconv.Itoa(tn), "all", s.cfg.Workers, snap, wall))
		}
	}
	doc.Robust = &kvwire.RobustCounters{
		Busy:        s.busy.Load(),
		Timeouts:    s.timeouts.Load(),
		Shed:        s.shed.Load(),
		ShedLevel:   int(s.shedLevel.Load()),
		SlowClients: s.slowClients.Load(),
		LostWorkers: s.lostWorkers.Load(),
		Drained:     s.draining.Load(),
	}
	if reg := s.reg; reg != nil {
		// Same names, same registry as the METRICS verb; every known
		// series present even at zero (like the robust block).
		doc.Obs = reg.Snapshot().Counters
	}
	if s.stages != nil {
		// The span layer's per-stage breakdown, merged across workers:
		// where wall time actually went, one row per stage even at zero
		// traffic (grep-style assertions again).
		for st, name := range s.stages.Names() {
			doc.Stages = append(doc.Stages, kvwire.StageRowFrom(name, s.stages.Merged(st)))
		}
	}
	return doc
}

// Audit sweeps every tenant container and returns the conservation
// totals: map entries and wrapping value-sum, and queued elements.
// Composed operations never change any of them. The sweep races
// in-flight traffic benignly (each read is atomic) but is only an
// exact conservation witness on a quiesced server — kvload audits
// after its workers finish. The sweep's reads also help any descriptor
// a stalled or killed thread left announced, so a post-fault audit
// both verifies and completes.
func (s *Server) Audit(th *repro.Thread) (mapCount, mapSum, queueCount uint64) {
	for tn := 0; tn < s.cfg.Tenants; tn++ {
		for _, k := range s.maps[tn].Keys(th) {
			if v, ok := s.maps[tn].Contains(th, k); ok {
				mapCount++
				mapSum += v
			}
		}
		queueCount += uint64(s.queues[tn].Len(th))
	}
	return
}

func joinU64(vs []uint64) string {
	b := make([]byte, 0, len(vs)*8)
	for i, v := range vs {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendUint(b, v, 10)
	}
	return string(b)
}
