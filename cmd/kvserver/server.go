package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"

	"repro"
	"repro/internal/kvwire"
	"repro/internal/latency"
)

// Config shapes one Server.
type Config struct {
	// Tenants is the number of tenants; each owns one map and one queue
	// (default 4).
	Tenants int
	// Workers bounds concurrent connections: each connection handler
	// borrows one registered repro.Thread for its lifetime, so at most
	// Workers connections are served at once and further accepts wait
	// (default 16).
	Workers int
	// Shards/Buckets shape each tenant map (per NewShardedHashMap;
	// defaults 8 shards × 8 buckets).
	Shards, Buckets int
	// Arena caps container nodes across all tenants (default 1<<20).
	Arena int
	// Elimination/Adaptive switch on the contention layers.
	Elimination, Adaptive bool
}

func (c Config) withDefaults() Config {
	if c.Tenants <= 0 {
		c.Tenants = 4
	}
	if c.Workers <= 0 {
		c.Workers = 16
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.Buckets <= 0 {
		c.Buckets = 8
	}
	if c.Arena <= 0 {
		c.Arena = 1 << 20
	}
	return c
}

// worker is one connection handler's identity: a registered Thread
// (the per-goroutine context every container call needs) plus the
// latency recorder stripe index it owns.
type worker struct {
	idx int
	th  *repro.Thread
}

// Server is the composed-KV network service: per-tenant lock-free maps
// and queues from one shared runtime, the kvwire line protocol on top,
// and the paper's composition — Move, TransferKeys, DrainN — exposed
// as the cross-tenant product operations. Each connection is served by
// one borrowed worker (Thread + histogram stripe); service times are
// recorded per (tenant, op) into striped HDR histograms and reported
// by STATS without stopping traffic.
type Server struct {
	cfg     Config
	rt      *repro.Runtime
	maps    []*repro.HashMap
	queues  []*repro.Queue
	rec     *latency.Recorder
	workers chan *worker
	started time.Time

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer builds the runtime, tenant containers and worker pool.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	rt := repro.NewRuntime(repro.Config{
		MaxThreads:    cfg.Workers + 2,
		ArenaCapacity: cfg.Arena,
		Elimination:   repro.EliminationConfig{Enable: cfg.Elimination},
		Adaptive:      repro.AdaptiveConfig{Enable: cfg.Adaptive},
	})
	setup := rt.RegisterThread()
	s := &Server{
		cfg:     cfg,
		rt:      rt,
		rec:     latency.NewRecorder(cfg.Workers, cfg.Tenants, int(kvwire.OpCount)),
		workers: make(chan *worker, cfg.Workers),
		conns:   make(map[net.Conn]struct{}),
		started: time.Now(),
	}
	for i := 0; i < cfg.Tenants; i++ {
		s.maps = append(s.maps, repro.NewShardedHashMap(setup, cfg.Shards, cfg.Buckets, 0))
		s.queues = append(s.queues, repro.NewQueue(setup))
	}
	for i := 0; i < cfg.Workers; i++ {
		s.workers <- &worker{idx: i, th: rt.RegisterThread()}
	}
	return s
}

// Serve accepts connections on ln until Close. Each accepted
// connection borrows a worker from the pool (waiting for one when all
// are serving) and is handled until EOF.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		w := <-s.workers
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			s.workers <- w
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn, w)
	}
}

// Close stops accepting, closes open connections and waits for
// handlers to drain.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
}

func (s *Server) handle(conn net.Conn, w *worker) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.workers <- w
		s.wg.Done()
	}()
	in := bufio.NewScanner(conn)
	out := bufio.NewWriter(conn)
	for in.Scan() {
		resp := s.exec(w, in.Text())
		out.WriteString(resp)
		out.WriteByte('\n')
		if err := out.Flush(); err != nil {
			return
		}
	}
}

// exec parses and applies one request line, recording the data-path
// service time against the request's (source) tenant.
func (s *Server) exec(w *worker, line string) string {
	req, err := kvwire.ParseRequest(line, s.cfg.Tenants)
	if err != nil {
		return "ERR " + err.Error()
	}
	if req.Op >= kvwire.OpCount {
		return s.execControl(w, req)
	}
	t0 := time.Now()
	resp := s.apply(w.th, req)
	s.rec.Record(w.idx, req.Tenant, int(req.Op), time.Since(t0))
	return resp
}

func (s *Server) apply(th *repro.Thread, req kvwire.Request) string {
	switch req.Op {
	case kvwire.OpGet:
		if v, ok := s.maps[req.Tenant].Contains(th, req.Keys[0]); ok {
			return "OK " + strconv.FormatUint(v, 10)
		}
		return "NF"
	case kvwire.OpPut:
		if s.maps[req.Tenant].Insert(th, req.Keys[0], req.Val) {
			return "OK"
		}
		return "EXISTS"
	case kvwire.OpDel:
		if v, ok := s.maps[req.Tenant].Remove(th, req.Keys[0]); ok {
			return "OK " + strconv.FormatUint(v, 10)
		}
		return "NF"
	case kvwire.OpPush:
		if s.queues[req.Tenant].Enqueue(th, req.Val) {
			return "OK"
		}
		return "ERR queue full"
	case kvwire.OpPop:
		if v, ok := s.queues[req.Tenant].Dequeue(th); ok {
			return "OK " + strconv.FormatUint(v, 10)
		}
		return "NF"
	case kvwire.OpMove:
		// The product composition: the entry leaves req.Tenant's map and
		// appears in req.DTenant's in one linearization — never in both,
		// never in neither.
		if v, ok := repro.Move(th, s.maps[req.Tenant], s.maps[req.DTenant], req.Keys[0], req.TKeys[0]); ok {
			return "OK " + strconv.FormatUint(v, 10)
		}
		return "FAIL"
	case kvwire.OpXfer:
		vs, ok := repro.TransferKeys(th, s.maps[req.Tenant], s.maps[req.DTenant], req.Keys, req.TKeys)
		if !ok {
			return "FAIL"
		}
		return "OK " + joinU64(vs)
	case kvwire.OpDrain:
		vs := repro.DrainN(th, s.queues[req.Tenant], s.queues[req.DTenant], 0, 0, req.N)
		if len(vs) == 0 {
			return "OK"
		}
		return "OK " + joinU64(vs)
	}
	return "ERR unreachable"
}

func (s *Server) execControl(w *worker, req kvwire.Request) string {
	switch req.Op {
	case kvwire.OpPing:
		return "OK"
	case kvwire.OpStats:
		b, err := json.Marshal(s.Stats())
		if err != nil {
			return "ERR " + err.Error()
		}
		return "OK " + string(b)
	case kvwire.OpAudit:
		mapN, mapSum, queueN := s.Audit(w.th)
		return fmt.Sprintf("OK %d %d %d", mapN, mapSum, queueN)
	}
	return "ERR unreachable"
}

// Stats merges the per-worker histogram stripes into the kvwire report
// document: one row per (tenant, op) with traffic, plus per-tenant
// "all" rows. It is safe to call concurrently with traffic.
func (s *Server) Stats() kvwire.Doc {
	doc := kvwire.NewDoc()
	wall := float64(time.Since(s.started).Nanoseconds())
	for tn := 0; tn < s.cfg.Tenants; tn++ {
		for op := 0; op < int(kvwire.OpCount); op++ {
			snap := s.rec.Merged(tn, op)
			if snap.Count == 0 {
				continue
			}
			doc.Rows = append(doc.Rows, kvwire.RowFrom("kvserver",
				strconv.Itoa(tn), kvwire.Op(op).String(), s.cfg.Workers, snap, wall))
		}
		if snap := s.rec.MergedTenant(tn); snap.Count > 0 {
			doc.Rows = append(doc.Rows, kvwire.RowFrom("kvserver",
				strconv.Itoa(tn), "all", s.cfg.Workers, snap, wall))
		}
	}
	return doc
}

// Audit sweeps every tenant container and returns the conservation
// totals: map entries and wrapping value-sum, and queued elements.
// Composed operations never change any of them. The sweep races
// in-flight traffic benignly (each read is atomic) but is only an
// exact conservation witness on a quiesced server — kvload audits
// after its workers finish.
func (s *Server) Audit(th *repro.Thread) (mapCount, mapSum, queueCount uint64) {
	for tn := 0; tn < s.cfg.Tenants; tn++ {
		for _, k := range s.maps[tn].Keys(th) {
			if v, ok := s.maps[tn].Contains(th, k); ok {
				mapCount++
				mapSum += v
			}
		}
		queueCount += uint64(s.queues[tn].Len(th))
	}
	return
}

func joinU64(vs []uint64) string {
	b := make([]byte, 0, len(vs)*8)
	for i, v := range vs {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendUint(b, v, 10)
	}
	return string(b)
}
