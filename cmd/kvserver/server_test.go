package main

// End-to-end smoke coverage for the service: an in-process server on a
// loopback listener, concurrent raw-TCP clients running the mixed
// get/put/del + move/transfer/push/pop/drain workload, and a two-level
// conservation check — the wire-level AUDIT totals against
// response-tracked expectations, then a direct in-process sweep of the
// tenant maps asserting every tracked value is present in EXACTLY one
// tenant map (a moved or transferred entry may change maps, never
// duplicate or vanish). Run under -race in CI.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/kvwire"
	"repro/internal/obs"
	"repro/internal/xrand"
)

// client is one test connection with response parsing.
type client struct {
	conn net.Conn
	in   *bufio.Scanner
}

func dial(t *testing.T, addr string) *client {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	return &client{conn: conn, in: bufio.NewScanner(conn)}
}

func (c *client) roundTrip(t *testing.T, line string, values bool) kvwire.Response {
	t.Helper()
	if _, err := fmt.Fprintf(c.conn, "%s\n", line); err != nil {
		t.Fatalf("send %q: %v", line, err)
	}
	if !c.in.Scan() {
		t.Fatalf("no response to %q: %v", line, c.in.Err())
	}
	r, err := kvwire.ParseResponse(c.in.Text(), values)
	if err != nil {
		t.Fatalf("response to %q: %v", line, err)
	}
	return r
}

// ledger tracks, from successful responses only, the values that must
// be live in the tenant maps / queues when the run quiesces. Entries
// are signed per-value deltas (+1 per successful PUT, −1 per
// successful DEL), not a set: the ledger's mutex is taken after the
// server's linearization, so two clients racing PUT/DEL on one key can
// reach the ledger in the opposite order — deltas commute, set
// add/remove does not. Values are globally unique tokens, so at
// quiesce each delta must be 0 (created then deleted) or 1 (live);
// anything else is itself a conservation violation.
type ledger struct {
	mu     sync.Mutex
	mapped map[uint64]int
	queued int64
}

func (l *ledger) put(v uint64) {
	l.mu.Lock()
	l.mapped[v]++
	l.mu.Unlock()
}

func (l *ledger) del(v uint64) {
	l.mu.Lock()
	l.mapped[v]--
	l.mu.Unlock()
}

func (l *ledger) queue(delta int64) {
	l.mu.Lock()
	l.queued += delta
	l.mu.Unlock()
}

// live returns the values with delta 1, failing on any other nonzero
// delta (a value deleted twice or never created).
func (l *ledger) live(t *testing.T) map[uint64]struct{} {
	t.Helper()
	out := make(map[uint64]struct{})
	for v, d := range l.mapped {
		switch d {
		case 0:
		case 1:
			out[v] = struct{}{}
		default:
			t.Fatalf("value %d has impossible ledger delta %d", v, d)
		}
	}
	return out
}

func TestKVServerE2E(t *testing.T) {
	const (
		tenants = 3
		clients = 6
		opsEach = 1500
		keys    = 64 // small key range per tenant → real collisions
	)
	s := NewServer(Config{Tenants: tenants, Workers: clients + 2, Shards: 2, Buckets: 2})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	addr := ln.Addr().String()

	led := &ledger{mapped: make(map[uint64]int)}
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := dial(t, addr)
			defer cl.conn.Close()
			rng := xrand.New(uint64(c)*0x9e3779b97f4a7c15 + 1)
			seq := uint64(0)
			fresh := func() uint64 {
				seq++
				return uint64(c+1)<<40 | seq // globally unique token
			}
			for i := 0; i < opsEach; i++ {
				tn := int(rng.Uint64() % tenants)
				dt := (tn + 1 + int(rng.Uint64()%(tenants-1))) % tenants
				k := rng.Uint64() % keys
				var r kvwire.Response
				switch p := rng.Uint64() % 100; {
				case p < 30:
					v := fresh()
					r = cl.roundTrip(t, fmt.Sprintf("PUT %d %d %d", tn, k, v), true)
					if r.OK() {
						led.put(v)
					}
				case p < 45:
					r = cl.roundTrip(t, fmt.Sprintf("GET %d %d", tn, k), true)
				case p < 55:
					r = cl.roundTrip(t, fmt.Sprintf("DEL %d %d", tn, k), true)
					if r.OK() {
						led.del(r.Vals[0])
					}
				case p < 70:
					// The composed product op: entry leaves map tn, enters
					// map dt, atomically. The ledger is value-keyed, so a
					// successful move changes nothing in it — that is the
					// conservation claim under test.
					r = cl.roundTrip(t, fmt.Sprintf("MOVE %d %d %d %d", tn, dt, k, rng.Uint64()%keys), true)
				case p < 80:
					sk1, sk2 := k, (k+1+rng.Uint64()%(keys-1))%keys
					tk1, tk2 := rng.Uint64()%keys, (k+3)%keys
					if tk2 == tk1 {
						tk2 = (tk1 + 1) % keys
					}
					r = cl.roundTrip(t, fmt.Sprintf("XFER %d %d %d,%d %d,%d", tn, dt, sk1, sk2, tk1, tk2), true)
				case p < 85:
					r = cl.roundTrip(t, fmt.Sprintf("PUSH %d %d", tn, fresh()), true)
					if r.OK() {
						led.queue(1)
					}
				case p < 90:
					r = cl.roundTrip(t, fmt.Sprintf("POP %d", tn), true)
					if r.OK() {
						led.queue(-1)
					}
				default:
					r = cl.roundTrip(t, fmt.Sprintf("DRAIN %d %d %d", tn, dt, 1+rng.Uint64()%4), true)
				}
				if r.Status == "ERR" {
					t.Errorf("client %d: unexpected ERR %q", c, r.Raw)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Level 1: the wire-level audit against response-tracked totals.
	cl := dial(t, addr)
	defer cl.conn.Close()
	live := led.live(t)
	var wantSum uint64
	for v := range live {
		wantSum += v
	}
	r := cl.roundTrip(t, "AUDIT", true)
	if !r.OK() || len(r.Vals) != 3 {
		t.Fatalf("AUDIT: %+v", r)
	}
	if r.Vals[0] != uint64(len(live)) || r.Vals[1] != wantSum || r.Vals[2] != uint64(led.queued) {
		t.Fatalf("conservation audit failed: server maps=%d sum=%d queues=%d, ledger maps=%d sum=%d queues=%d",
			r.Vals[0], r.Vals[1], r.Vals[2], len(live), wantSum, led.queued)
	}

	// STATS must report per-tenant per-op percentiles for the traffic.
	st := cl.roundTrip(t, "STATS", false)
	var doc kvwire.Doc
	if err := json.Unmarshal([]byte(st.Raw), &doc); err != nil {
		t.Fatalf("STATS JSON: %v\n%s", err, st.Raw)
	}
	var moveRows int
	for _, row := range doc.Rows {
		if row.Ops == 0 || row.P50NS < 0 || row.P999NS < row.P50NS {
			t.Fatalf("implausible stats row %+v", row)
		}
		if row.Op == "MOVE" {
			moveRows++
		}
	}
	if moveRows == 0 {
		t.Fatal("STATS reported no MOVE rows despite move traffic")
	}

	// Level 2: quiesce and sweep the maps in-process — every ledger
	// value present, no value twice (an entry lives in exactly one
	// tenant map even after arbitrary moves and transfers).
	s.Close()
	w := <-s.workers
	seen := make(map[uint64]int)
	for tn := 0; tn < tenants; tn++ {
		for _, k := range s.maps[tn].Keys(w.th) {
			if v, ok := s.maps[tn].Contains(w.th, k); ok {
				seen[v]++
			}
		}
	}
	for v, n := range seen {
		if n != 1 {
			t.Errorf("value %d present in %d map slots (duplicated by a move?)", v, n)
		}
		if _, ok := live[v]; !ok {
			t.Errorf("value %d in a map but not live in the ledger", v)
		}
	}
	for v := range live {
		if seen[v] == 0 {
			t.Errorf("ledger value %d lost (in no tenant map)", v)
		}
	}
}

// TestServerProtocolErrors checks that malformed requests produce ERR
// without poisoning the connection.
func TestServerProtocolErrors(t *testing.T) {
	s := NewServer(Config{Tenants: 2, Workers: 2, Shards: 1, Buckets: 2})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	defer s.Close()

	cl := dial(t, ln.Addr().String())
	defer cl.conn.Close()
	for _, bad := range []string{"WAT 1 2", "GET 9 1", "MOVE 0 0 1 1", "PUT 0 x y"} {
		if r := cl.roundTrip(t, bad, false); r.Status != "ERR" {
			t.Errorf("%q: got %q, want ERR", bad, r.Status)
		}
	}
	// The connection must still work.
	if r := cl.roundTrip(t, "PING", false); !r.OK() {
		t.Fatalf("PING after errors: %+v", r)
	}
	if r := cl.roundTrip(t, "PUT 1 5 500", false); !r.OK() {
		t.Fatalf("PUT after errors: %+v", r)
	}
	if r := cl.roundTrip(t, "GET 1 5", true); !r.OK() || r.Vals[0] != 500 {
		t.Fatalf("GET after errors: %+v", r)
	}
	if !strings.HasPrefix(cl.roundTrip(t, "STATS", false).Raw, "{") {
		t.Fatal("STATS did not return JSON")
	}
}

// TestServerBusyOnDescriptorExhaustion drives the runtime past its
// descriptor capacity and asserts the degradation contract: the
// starved worker answers BUSY (not a crash, not a hung connection),
// descriptor-free traffic keeps flowing on the same connection, and
// the robust counters record the rejections.
func TestServerBusyOnDescriptorExhaustion(t *testing.T) {
	// DescCapacity equals one per-thread carve batch: the first worker
	// that allocates a descriptor takes the whole pool and the second
	// worker's first composed op finds it empty.
	s := NewServer(Config{Tenants: 2, Workers: 2, Shards: 1, Buckets: 2, DescCapacity: 64})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	defer s.Close()
	addr := ln.Addr().String()

	c1 := dial(t, addr)
	defer c1.conn.Close()
	// c1's worker carves the full pool (a MOVE allocates its descriptor
	// before touching the maps, so even a missing-key MOVE carves).
	if r := c1.roundTrip(t, "MOVE 0 1 99 99", false); r.Status != "FAIL" {
		t.Fatalf("carving MOVE: got %q, want FAIL", r.Status)
	}

	c2 := dial(t, addr)
	defer c2.conn.Close()
	r := c2.roundTrip(t, "MOVE 0 1 99 99", false)
	if r.Status != "BUSY" {
		t.Fatalf("starved worker: got %q, want BUSY", r.Status)
	}
	if !r.Retryable() {
		t.Fatal("BUSY must be retryable")
	}
	// The starved worker's connection is still serviceable for
	// descriptor-free ops …
	if r := c2.roundTrip(t, "PING", false); !r.OK() {
		t.Fatalf("PING after BUSY: %+v", r)
	}
	if r := c2.roundTrip(t, "GET 0 5", false); r.Status != "NF" {
		t.Fatalf("GET after BUSY: %+v", r)
	}
	// … and the worker holding descriptors is unaffected.
	if r := c1.roundTrip(t, "PUT 0 5 500", false); !r.OK() {
		t.Fatalf("healthy worker PUT: %+v", r)
	}
	if r := c1.roundTrip(t, "MOVE 0 1 5 5", true); !r.OK() || r.Vals[0] != 500 {
		t.Fatalf("healthy worker MOVE: %+v", r)
	}

	var doc kvwire.Doc
	if err := json.Unmarshal([]byte(c1.roundTrip(t, "STATS", false).Raw), &doc); err != nil {
		t.Fatalf("STATS: %v", err)
	}
	if doc.Robust == nil || doc.Robust.Busy == 0 {
		t.Fatalf("robust counters missing the BUSY: %+v", doc.Robust)
	}
}

// TestServerTimeoutAfterDeadline: with a service deadline configured,
// persistent exhaustion is retried until the deadline and then
// answered TIMEOUT — still guaranteed unexecuted.
func TestServerTimeoutAfterDeadline(t *testing.T) {
	s := NewServer(Config{Tenants: 2, Workers: 2, Shards: 1, Buckets: 2,
		DescCapacity: 64, Deadline: 30 * time.Millisecond})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	defer s.Close()
	addr := ln.Addr().String()

	c1 := dial(t, addr)
	defer c1.conn.Close()
	if r := c1.roundTrip(t, "MOVE 0 1 99 99", false); r.Status != "FAIL" {
		t.Fatalf("carving MOVE: got %q, want FAIL", r.Status)
	}
	c2 := dial(t, addr)
	defer c2.conn.Close()
	start := time.Now()
	r := c2.roundTrip(t, "MOVE 0 1 99 99", false)
	if r.Status != "TIMEOUT" {
		t.Fatalf("starved worker with deadline: got %q, want TIMEOUT", r.Status)
	}
	if time.Since(start) < 30*time.Millisecond {
		t.Fatal("TIMEOUT answered before the deadline elapsed")
	}
	if r := c2.roundTrip(t, "PING", false); !r.OK() {
		t.Fatalf("PING after TIMEOUT: %+v", r)
	}
}

// TestServerSlowExemplarsAttributeStall is the tail-forensics
// acceptance check: under a kcas-publish stall rule, the SLOW verb's
// exemplars must attribute the slowest requests' latency to the
// execute stage (where the injected stall actually lives), carry the
// kcas publish deltas that did the work, and the per-stage histograms
// must reach both STATS and METRICS.
func TestServerSlowExemplarsAttributeStall(t *testing.T) {
	plan, err := repro.ParseFaultPlan([]string{"kcas-publish:stall=2ms:every=2"})
	if err != nil {
		t.Fatal(err)
	}
	// SpanTopK 8 < the stalled-request count, so the exemplar buffer
	// holds only genuinely stalled requests once traffic quiesces.
	s := NewServer(Config{Tenants: 2, Workers: 2, Shards: 1, Buckets: 2,
		Fault: plan, Metrics: true, Spans: true, SpanTopK: 8})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	defer s.Close()

	cl := dial(t, ln.Addr().String())
	defer cl.conn.Close()
	const moves = 32
	for i := 0; i < moves; i++ {
		if r := cl.roundTrip(t, fmt.Sprintf("PUT 0 %d %d", i, 1000+i), false); !r.OK() {
			t.Fatalf("PUT %d: %+v", i, r)
		}
	}
	// Every second MOVE's descriptor publish stalls 2ms: execute-stage
	// time the span layer must attribute.
	for i := 0; i < moves; i++ {
		if r := cl.roundTrip(t, fmt.Sprintf("MOVE 0 1 %d %d", i, i), false); !r.OK() {
			t.Fatalf("MOVE %d: %+v", i, r)
		}
	}

	r := cl.roundTrip(t, "SLOW", false)
	if !r.OK() {
		t.Fatalf("SLOW: %+v", r)
	}
	var slow kvwire.SlowDoc
	if err := json.Unmarshal([]byte(r.Raw), &slow); err != nil {
		t.Fatalf("SLOW JSON: %v\n%s", err, r.Raw)
	}
	if len(slow.Exemplars) == 0 {
		t.Fatal("SLOW returned no exemplars despite stalled traffic")
	}
	execDominant, published := 0, 0
	for _, sp := range slow.Exemplars {
		if sp.Req == 0 || sp.Op == "" || sp.WallNS <= 0 {
			t.Fatalf("malformed exemplar %+v", sp)
		}
		var sum int64
		for st := obs.Stage(0); st < obs.NumStages; st++ {
			if sp.Stage[st] < 0 {
				t.Fatalf("exemplar req=%d: negative %s stage", sp.Req, st)
			}
			sum += sp.Stage[st]
		}
		if sum > sp.WallNS+int64(time.Millisecond) {
			t.Fatalf("exemplar req=%d: stage sum %d exceeds wall %d", sp.Req, sum, sp.WallNS)
		}
		if sp.Dominant() == obs.StageExec {
			execDominant++
		}
		if sp.Publishes > 0 {
			published++
		}
	}
	if 2*execDominant <= len(slow.Exemplars) {
		t.Fatalf("only %d/%d exemplars attribute their latency to the execute stage",
			execDominant, len(slow.Exemplars))
	}
	if published == 0 {
		t.Fatal("no exemplar carries a kcas publish delta despite MOVE traffic")
	}

	// The per-stage histograms surface in STATS …
	var doc kvwire.Doc
	if err := json.Unmarshal([]byte(cl.roundTrip(t, "STATS", false).Raw), &doc); err != nil {
		t.Fatalf("STATS: %v", err)
	}
	if len(doc.Stages) != int(obs.NumStages) {
		t.Fatalf("STATS has %d stage rows, want %d: %+v", len(doc.Stages), obs.NumStages, doc.Stages)
	}
	var execRow *kvwire.StageRow
	for i := range doc.Stages {
		if doc.Stages[i].Stage == "execute" {
			execRow = &doc.Stages[i]
		}
	}
	if execRow == nil || execRow.Count == 0 || execRow.MaxNS < int64(time.Millisecond) {
		t.Fatalf("execute stage row does not reflect the stall: %+v", execRow)
	}

	// … and in METRICS (multi-line, framed by "# EOF"), alongside the
	// uptime and build-info series.
	if _, err := fmt.Fprintln(cl.conn, "METRICS"); err != nil {
		t.Fatal(err)
	}
	var metrics strings.Builder
	for cl.in.Scan() {
		metrics.WriteString(cl.in.Text())
		metrics.WriteByte('\n')
		if cl.in.Text() == "# EOF" {
			break
		}
	}
	for _, want := range []string{
		"stage_execute_count_total", "stage_execute_p99_ns", "stage_queue_max_ns",
		"spans_dropped_total", "uptime_seconds", "build_info{", "gomaxprocs=",
	} {
		if !strings.Contains(metrics.String(), want) {
			t.Errorf("METRICS missing %q", want)
		}
	}
}

// TestServerGracefulDrain exercises the SIGTERM path in-process: after
// Drain the final STATS report is marked drained, the audit totals
// (taken on the retained setup thread) match what clients were told,
// and no new connections are accepted.
func TestServerGracefulDrain(t *testing.T) {
	s := NewServer(Config{Tenants: 2, Workers: 2, Shards: 1, Buckets: 2})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	addr := ln.Addr().String()

	cl := dial(t, addr)
	defer cl.conn.Close()
	var sum uint64
	for i := uint64(1); i <= 5; i++ {
		v := 1000 + i
		if r := cl.roundTrip(t, fmt.Sprintf("PUT 0 %d %d", i, v), false); !r.OK() {
			t.Fatalf("PUT %d: %+v", i, r)
		}
		sum += v
	}
	if r := cl.roundTrip(t, "MOVE 0 1 3 3", true); !r.OK() {
		t.Fatalf("MOVE: %+v", r)
	}

	s.Drain()

	doc := s.Stats()
	if doc.Robust == nil || !doc.Robust.Drained {
		t.Fatalf("final stats not marked drained: %+v", doc.Robust)
	}
	mapN, mapSum, queueN := s.Audit(s.SetupThread())
	if mapN != 5 || mapSum != sum || queueN != 0 {
		t.Fatalf("post-drain audit %d/%d/%d, want 5/%d/0", mapN, mapSum, queueN, sum)
	}
	if _, err := net.Dial("tcp", addr); err == nil {
		t.Fatal("drained server accepted a new connection")
	}
}
