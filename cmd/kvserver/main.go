// Command kvserver serves the composed-KV network service: a
// multi-tenant key-value store over the repository's lock-free
// containers, with the paper's lock-free composition exposed as the
// cross-tenant product operations. Each tenant owns one sharded
// resizable hash map and one Michael–Scott queue; the kvwire line
// protocol (see internal/kvwire) offers GET/PUT/DEL and PUSH/POP on
// them, plus:
//
//	MOVE  — atomically relocate one entry between two tenants' maps
//	        (repro.Move: in exactly one map at every instant)
//	XFER  — atomically move up to 4 keyed entries in one k-word CAS
//	        (repro.TransferKeys)
//	DRAIN — stream up to n elements between two tenants' queues under
//	        one amortized descriptor lifecycle (repro.DrainN)
//
// Each connection is handled by a worker goroutine owning one
// registered repro.Thread (the paper's thread-local move state), so
// -workers bounds both concurrency and runtime thread registrations.
// Per-tenant, per-op service times land in striped HDR histograms
// (internal/latency); the STATS command returns them as one-line JSON
// (p50/p99/p999/max per tenant and op) and AUDIT returns conservation
// totals for the load generator's end-of-run check.
//
// Robustness (see docs/robustness.md): resource exhaustion answers
// BUSY (or TIMEOUT once -deadline is set) instead of crashing, -wtimeout
// sheds clients that stop draining responses, -slo enables per-tenant
// overload shedding against a p99 service-time objective, and SIGTERM
// drains gracefully — stop accepting, finish in-flight requests, print
// a final STATS and AUDIT line, exit 0. -fault installs chaos-test
// fault rules (stalls, parks, kills at descriptor-protocol windows).
//
// Observability (see docs/observability.md): the metrics registry is on
// by default (-metrics=false disables it) and serves the METRICS wire
// verb in Prometheus text format; -trace FILE enables the descriptor-
// protocol tracer and writes the drained events as JSONL on the SIGTERM
// drain path (inspect with cmd/tracecheck); -statsevery D prints a
// "STATS <json>" line every D; -pprof ADDR serves net/http/pprof on a
// side listener.
//
// Request spans are also on by default (-spans=false disables): each
// data-path request's wall time is decomposed into queue (accept→worker
// borrow), parse, execute (with kcas publish/help/abort deltas),
// degrade (retry backoff) and write stages. Per-stage histograms reach
// STATS ("stages") and METRICS (stage_* series); the SLOW verb returns
// the slowest requests' full spans as JSON (tail exemplars, threshold-
// gated by the windowed p99 so the buffer tracks the current tail); a
// -trace dump interleaves span records with protocol events, joined by
// request id.
//
// Example:
//
//	kvserver -addr :7070 -tenants 4 -workers 16
//	kvserver -addr 127.0.0.1:7070 -tenants 3 -adaptive
//	kvserver -deadline 50ms -slo 5ms -fault 'kcas-commit:stall=2ms:every=97'
//	kvserver -trace /tmp/kv.jsonl -statsevery 5s -pprof 127.0.0.1:6060
//
// Drive it with cmd/kvload, or by hand:
//
//	$ printf 'PUT 0 1 77\nMOVE 0 1 1 1\nGET 1 1\n' | nc localhost 7070
//	OK
//	OK 77
//	OK 77
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // -pprof side listener
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
)

// faultFlags collects repeatable -fault rule specs.
type faultFlags []string

func (f *faultFlags) String() string { return fmt.Sprint(*f) }
func (f *faultFlags) Set(s string) error {
	*f = append(*f, s)
	return nil
}

func main() {
	var faults faultFlags
	var (
		addr     = flag.String("addr", ":7070", "TCP listen address")
		tenants  = flag.Int("tenants", 4, "number of tenants (each owns one map and one queue)")
		workers  = flag.Int("workers", 16, "connection-handler workers (bounds concurrent connections)")
		shards   = flag.Int("shards", 8, "shards per tenant map")
		buckets  = flag.Int("buckets", 8, "initial buckets per shard")
		arena    = flag.Int("arena", 1<<20, "container-node capacity across all tenants")
		desccap  = flag.Int("desccap", 0, "k-word CAS descriptor capacity (0 = core default)")
		elim     = flag.Bool("elim", false, "enable the elimination-backoff contention layer")
		adaptive = flag.Bool("adaptive", false, "enable the adaptive contention-management subsystem")
		deadline = flag.Duration("deadline", 0, "per-request service deadline; exhaustion retries until it, then TIMEOUT (0 = immediate BUSY)")
		wtimeout = flag.Duration("wtimeout", 0, "per-response write timeout; slow clients are disconnected (0 = none)")
		slo      = flag.Duration("slo", 0, "p99 service-time SLO; overload sheds lowest-priority tenants (0 = no shedding)")

		metrics    = flag.Bool("metrics", true, "enable the metrics registry and the METRICS wire verb")
		traceOut   = flag.String("trace", "", "enable descriptor-protocol tracing; write JSONL events (and spans) to this file at drain")
		traceBuf   = flag.Int("tracebuf", 0, "per-thread trace ring capacity (0 = default)")
		spans      = flag.Bool("spans", true, "enable request-scoped spans: per-stage latency attribution, tail exemplars and the SLOW wire verb")
		spanBuf    = flag.Int("spanbuf", 0, "per-worker completed-span ring capacity (0 = default)")
		slowK      = flag.Int("slowk", 0, "tail-exemplar buffer size served by SLOW (0 = default)")
		statsEvery = flag.Duration("statsevery", 0, "print a 'STATS <json>' line on stdout at this period (0 = off)")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this side address, e.g. 127.0.0.1:6060 (empty = off)")
	)
	flag.Var(&faults, "fault", "fault-injection rule (repeatable), e.g. 'kcas-commit:stall=2ms:every=97'")
	flag.Parse()

	var plan *repro.FaultPlan
	if len(faults) > 0 {
		var err error
		if plan, err = repro.ParseFaultPlan(faults); err != nil {
			fmt.Fprintln(os.Stderr, "kvserver: -fault:", err)
			os.Exit(2)
		}
	}

	s := NewServer(Config{
		Tenants: *tenants, Workers: *workers,
		Shards: *shards, Buckets: *buckets, Arena: *arena,
		DescCapacity: *desccap,
		Elimination:  *elim, Adaptive: *adaptive,
		Deadline: *deadline, WriteTimeout: *wtimeout, SLO: *slo,
		Fault:   plan,
		Metrics: *metrics, Trace: *traceOut != "", TraceBuf: *traceBuf,
		Spans: *spans, SpanBuf: *spanBuf, SpanTopK: *slowK,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kvserver:", err)
		os.Exit(1)
	}
	fmt.Printf("kvserver: %d tenants, %d workers, listening on %s\n",
		*tenants, *workers, ln.Addr())

	if *pprofAddr != "" {
		go func() {
			// DefaultServeMux carries the pprof handlers via the blank
			// import; a failed side listener is reported, not fatal.
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "kvserver: -pprof:", err)
			}
		}()
	}
	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				if blob, err := json.Marshal(s.Stats()); err == nil {
					fmt.Printf("STATS %s\n", blob)
				}
			}
		}()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	errc := make(chan error, 1)
	go func() { errc <- s.Serve(ln) }()

	select {
	case err := <-errc:
		if err != nil {
			fmt.Fprintln(os.Stderr, "kvserver:", err)
			os.Exit(1)
		}
	case sig := <-sigc:
		// Graceful drain: stop accepting, finish in-flight requests,
		// then report the final state on stdout and exit clean. The
		// audit runs on the setup thread (worker threads may have been
		// fault-killed) after the server has quiesced, so its totals are
		// an exact conservation witness.
		fmt.Printf("kvserver: %v, draining\n", sig)
		start := time.Now()
		s.Drain()
		blob, err := json.Marshal(s.Stats())
		if err != nil {
			fmt.Fprintln(os.Stderr, "kvserver: final stats:", err)
			os.Exit(1)
		}
		fmt.Printf("STATS %s\n", blob)
		mapN, mapSum, queueN := s.Audit(s.SetupThread())
		fmt.Printf("AUDIT %d %d %d\n", mapN, mapSum, queueN)
		if *traceOut != "" {
			// Drain the tracer only after the server has quiesced so the
			// file holds every recorded event in one sorted pass.
			f, err := os.Create(*traceOut)
			if err == nil {
				err = s.WriteTrace(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "kvserver: -trace:", err)
			} else {
				fmt.Printf("kvserver: trace written to %s\n", *traceOut)
			}
		}
		fmt.Printf("kvserver: drained in %v\n", time.Since(start).Round(time.Millisecond))
	}
}
