// Command kvserver serves the composed-KV network service: a
// multi-tenant key-value store over the repository's lock-free
// containers, with the paper's lock-free composition exposed as the
// cross-tenant product operations. Each tenant owns one sharded
// resizable hash map and one Michael–Scott queue; the kvwire line
// protocol (see internal/kvwire) offers GET/PUT/DEL and PUSH/POP on
// them, plus:
//
//	MOVE  — atomically relocate one entry between two tenants' maps
//	        (repro.Move: in exactly one map at every instant)
//	XFER  — atomically move up to 4 keyed entries in one k-word CAS
//	        (repro.TransferKeys)
//	DRAIN — stream up to n elements between two tenants' queues under
//	        one amortized descriptor lifecycle (repro.DrainN)
//
// Each connection is handled by a worker goroutine owning one
// registered repro.Thread (the paper's thread-local move state), so
// -workers bounds both concurrency and runtime thread registrations.
// Per-tenant, per-op service times land in striped HDR histograms
// (internal/latency); the STATS command returns them as one-line JSON
// (p50/p99/p999/max per tenant and op) and AUDIT returns conservation
// totals for the load generator's end-of-run check.
//
// Example:
//
//	kvserver -addr :7070 -tenants 4 -workers 16
//	kvserver -addr 127.0.0.1:7070 -tenants 3 -adaptive
//
// Drive it with cmd/kvload, or by hand:
//
//	$ printf 'PUT 0 1 77\nMOVE 0 1 1 1\nGET 1 1\n' | nc localhost 7070
//	OK
//	OK 77
//	OK 77
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
)

func main() {
	var (
		addr     = flag.String("addr", ":7070", "TCP listen address")
		tenants  = flag.Int("tenants", 4, "number of tenants (each owns one map and one queue)")
		workers  = flag.Int("workers", 16, "connection-handler workers (bounds concurrent connections)")
		shards   = flag.Int("shards", 8, "shards per tenant map")
		buckets  = flag.Int("buckets", 8, "initial buckets per shard")
		arena    = flag.Int("arena", 1<<20, "container-node capacity across all tenants")
		elim     = flag.Bool("elim", false, "enable the elimination-backoff contention layer")
		adaptive = flag.Bool("adaptive", false, "enable the adaptive contention-management subsystem")
	)
	flag.Parse()

	s := NewServer(Config{
		Tenants: *tenants, Workers: *workers,
		Shards: *shards, Buckets: *buckets, Arena: *arena,
		Elimination: *elim, Adaptive: *adaptive,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kvserver:", err)
		os.Exit(1)
	}
	fmt.Printf("kvserver: %d tenants, %d workers, listening on %s\n",
		*tenants, *workers, ln.Addr())
	if err := s.Serve(ln); err != nil {
		fmt.Fprintln(os.Stderr, "kvserver:", err)
		os.Exit(1)
	}
}
