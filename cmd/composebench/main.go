// Command composebench regenerates the paper's evaluation figures
// (Figures 2–4 of "Supporting Lock-Free Composition of Concurrent Data
// Objects", Cederman & Tsigas) as tables or CSV.
//
// Each figure is one object pairing (Fig 2: queue/stack, Fig 3: two
// queues, Fig 4: two stacks) with three panels (move-only,
// insert/remove-only, both), comparing the lock-free composition against
// the blocking baseline across thread counts, with and without backoff,
// under the high- and low-contention local-work distributions.
//
// Beyond the paper's figures, -figure map runs the sharded-map churn +
// rebalance scenario: keyed operations and cross-map moves (including
// §8 MoveN fan-outs) over two growing maps, with every grow-time entry
// relocation performed by MoveN, comparing the lock-free maps against
// the lock-striped blocking baseline (blocking.Map) — the keyed
// extension of Figures 2–4's lockfree-vs-blocking comparison; -keydist
// zipfian skews its keys, and a second read-mostly panel (-readfrac
// percent lookups, default 95) shows the lookup-heavy side of the same
// maps. -figure elim sweeps the §6 high-contention stack/stack cell
// with the elimination-backoff layer off and on, reporting hit rate
// and speedup. The -elim flag instead toggles the layer inside the
// paper figures' lock-free cells (off, on, or both variants per cell).
// -figure batch sweeps the batched move pipeline: the move-only
// queue/stack cell issued through a MoveBuffer at batch sizes
// -batchsizes (B=1 is the unbatched baseline), reporting ns/move and
// the speedup batching buys — an amortization curve, not a semantics
// change (every batched move stays individually linearizable).
//
// -figure adapt sweeps the adaptive contention-management subsystem:
// the zipfian map-churn cell with core.Config.Adaptive off and on,
// reporting the controllers' decisions (epochs sampled, window
// resizes, hot-shard attaches, pacing raises) next to the speedup.
// -figure ycsb runs the YCSB-style mixed-tenant cell: tenants with
// private key ranges and A/B/C-like read/insert/remove/move mixes
// sharing the same growing maps; the -adaptive flag toggles the
// subsystem there and in the map cells.
//
// -json FILE additionally writes every cell as a machine-readable
// record (mean/CI plus derived ns/op and ops/s per thread count), the
// format the perf-trajectory BENCH_*.json files are produced from.
//
// Example (full paper configuration — takes a while):
//
//	composebench -figure all -threads 1,2,4,8,16 -ops 5000000 -trials 50
//
// Quick shape check:
//
//	composebench -figure 2 -ops 200000 -trials 3
//	composebench -figure map -ops 500000 -trials 3 -keydist zipfian
//	composebench -figure elim -ops 500000 -trials 3 -json BENCH_elim.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/stats"
)

// jsonRow is one cell of machine-readable output: raw trial statistics
// plus the derived per-operation metrics the perf trajectory tracks.
type jsonRow struct {
	Figure      string  `json:"figure"`
	Pair        string  `json:"pair"`
	Mix         string  `json:"mix"`
	Contention  string  `json:"contention"`
	Backoff     bool    `json:"backoff"`
	Elimination bool    `json:"elimination"`
	Impl        string  `json:"impl"`
	Threads     int     `json:"threads"`
	Ops         int     `json:"ops"`
	Trials      int     `json:"trials"`
	MeanMS      float64 `json:"mean_ms"`
	CI95MS      float64 `json:"ci95_ms"`
	MinMS       float64 `json:"min_ms"`
	MaxMS       float64 `json:"max_ms"`
	NSPerOp     float64 `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	// Always emitted (no omitempty): a recorded zero is itself a signal
	// (0% hit rate, a run with no grows), distinct from stats never
	// having been collected; the figure field tells map cells apart.
	ElimHits   float64 `json:"elim_hits"`
	ElimMisses float64 `json:"elim_misses"`
	Grows      float64 `json:"grows"`
	Migrated   float64 `json:"migrated"`
	// Adaptive-subsystem decision counters (per-trial means; nonzero
	// only in cells run with core.Config.Adaptive on).
	AdaptEpochs   float64 `json:"adapt_epochs"`
	WindowGrows   float64 `json:"adapt_window_grows"`
	WindowShrinks float64 `json:"adapt_window_shrinks"`
	Attaches      float64 `json:"adapt_attaches"`
	PaceRaises    float64 `json:"adapt_pace_raises"`
	// Per-operation latency percentiles from the striped histograms
	// (package latency). Only -latency cells fill them — unlike the
	// counters above, absence means "not measured", so omitempty.
	P50NS  int64 `json:"p50_ns,omitempty"`
	P99NS  int64 `json:"p99_ns,omitempty"`
	P999NS int64 `json:"p999_ns,omitempty"`
}

// jsonDoc is the -json file layout: host context (thread counts beyond
// host_cpus time-slice one CPU, which flattens contention effects),
// then one row per cell. Contended is false when the process had only
// one schedulable CPU (GOMAXPROCS=1): every "concurrent" cell then ran
// time-sliced, so the numbers say nothing about contention behavior and
// downstream consumers must not compare them against contended runs.
type jsonDoc struct {
	HostCPUs  int       `json:"host_cpus"`
	Contended bool      `json:"contended"`
	Rows      []jsonRow `json:"rows"`
}

// sink collects the optional CSV and JSON outputs.
type sink struct {
	csv  *os.File
	doc  *jsonDoc
	path string
}

func (s *sink) add(r jsonRow) {
	if s.doc != nil {
		s.doc.Rows = append(s.doc.Rows, r)
	}
}

func (s *sink) flush() {
	if s.doc == nil {
		return
	}
	b, err := json.MarshalIndent(s.doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(s.path, append(b, '\n'), 0o644); err != nil {
		fatal(err)
	}
}

// row derives the JSON record from one harness result.
func row(figure string, o harness.Options, r harness.Result) jsonRow {
	return jsonRow{
		Figure: figure, Pair: o.Pair.String(), Mix: o.Mix.String(),
		Contention: o.Contention.String(), Backoff: o.Backoff,
		Elimination: o.Elimination, Impl: o.Impl.String(),
		Threads: o.Threads, Ops: r.Ops, Trials: len(r.SamplesNS),
		MeanMS: r.Summary.Mean / 1e6, CI95MS: r.Summary.CI95() / 1e6,
		MinMS: r.Summary.Min / 1e6, MaxMS: r.Summary.Max / 1e6,
		NSPerOp:   r.Summary.Mean / float64(r.Ops),
		OpsPerSec: float64(r.Ops) * 1e9 / r.Summary.Mean,
		ElimHits:  r.ElimHits, ElimMisses: r.ElimMisses,
	}
}

func main() {
	var (
		figures    = flag.String("figure", "all", "figures to run: comma list of 2,3,4,map,elim,batch,adapt,ycsb or 'all'")
		threads    = flag.String("threads", "1,2,4,8,16", "comma list of thread counts")
		ops        = flag.Int("ops", 1_000_000, "total operations per trial (paper: 5000000)")
		trials     = flag.Int("trials", 5, "trials per cell (paper: 50)")
		contention = flag.String("contention", "high", "local-work level: high, low, both, none")
		backoff    = flag.String("backoff", "off", "backoff: off, on, both (paper reports both)")
		elimFlag   = flag.String("elim", "off", "elimination layer on lock-free cells: off, on, both")
		prefill    = flag.Int("prefill", 512, "elements pre-inserted per object")
		pin        = flag.Bool("pin", true, "pin workers to OS threads")
		csvPath    = flag.String("csv", "", "also write results as CSV to this file")
		jsonPath   = flag.String("json", "", "also write results as JSON to this file (perf trajectory format)")
		mixes      = flag.String("mix", "all", "panels: move, insertremove, mixed, or 'all'")
		rebalancer = flag.Bool("rebalancer", true, "map scenario: dedicated RebalanceStep thread")
		keys       = flag.Int("keys", 8192, "map scenario: key-space size")
		keydist    = flag.String("keydist", "uniform", "map scenario key distribution: uniform, zipfian")
		readfrac   = flag.Int("readfrac", 95, "map scenario: lookup percent of the read-mostly panel (0 skips it)")
		batchSizes = flag.String("batchsizes", "1,4,16,64", "batch scenario: comma list of batch sizes (1 = unbatched)")
		adaptive   = flag.Bool("adaptive", false, "map/ycsb scenarios: enable the adaptive contention-management subsystem")
		latPcts    = flag.Bool("latency", false, "ycsb scenario: record per-op latency and report per-tenant p50/p99/p999")
		metrics    = flag.String("metrics", "", "write the aggregate metrics-registry snapshot (Prometheus text) to this file")
		traceOut   = flag.String("trace", "", "enable descriptor-protocol tracing; write JSONL events to this file (expect measurement skew)")
	)
	flag.Parse()

	// Observability artifacts span every trial the run dispatches: each
	// trial's registry snapshot merges and each tracer drain appends
	// (see internal/harness TakeObs). Tracing perturbs the measured hot
	// path, so it is only on when a trace file is requested.
	harness.Observe = obs.Config{Metrics: *metrics != "", Trace: *traceOut != ""}

	figs, err := parseFigures(*figures)
	if err != nil {
		fatal(err)
	}
	ths, err := parseInts(*threads)
	if err != nil {
		fatal(fmt.Errorf("bad -threads: %w", err))
	}
	conts, err := parseContention(*contention)
	if err != nil {
		fatal(err)
	}
	backs, err := parseOnOffBoth("backoff", *backoff)
	if err != nil {
		fatal(err)
	}
	elims, err := parseOnOffBoth("elim", *elimFlag)
	if err != nil {
		fatal(err)
	}
	mixList, err := parseMixes(*mixes)
	if err != nil {
		fatal(err)
	}
	zipf, err := parseKeyDist(*keydist)
	if err != nil {
		fatal(err)
	}

	out := &sink{}
	if *csvPath != "" {
		out.csv, err = os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		defer out.csv.Close()
		fmt.Fprintln(out.csv, "figure,pair,mix,contention,backoff,elim,impl,threads,ops,trials,mean_ms,ci95_ms,min_ms,max_ms")
	}
	contended := contendedRun()
	if !contended {
		fmt.Fprintln(os.Stderr, "composebench: warning: GOMAXPROCS=1 — concurrent cells run time-sliced on one CPU; results do not measure contention")
	}
	if *jsonPath != "" {
		out.doc = &jsonDoc{HostCPUs: runtime.NumCPU(), Contended: contended}
		out.path = *jsonPath
	}

	bsizes, err := parseInts(*batchSizes)
	if err != nil {
		fatal(fmt.Errorf("bad -batchsizes: %w", err))
	}

	for _, fig := range figs {
		switch fig {
		case figureMap:
			fmt.Printf("==== Sharded map: churn + MoveN rebalance, lockfree vs blocking ====\n")
			for _, cont := range conts {
				runMapPanel(out, cont, ths, *ops, *trials, *prefill, *pin, *rebalancer, *keys, zipf, 0, *adaptive)
				if *readfrac > 0 {
					runMapPanel(out, cont, ths, *ops, *trials, *prefill, *pin, *rebalancer, *keys, zipf, *readfrac, *adaptive)
				}
			}
		case figureYCSB:
			fmt.Printf("==== YCSB-style mixed tenants over shared maps ====\n")
			for _, cont := range conts {
				runYCSBPanel(out, cont, ths, *ops, *trials, *keys, *pin, *adaptive, *latPcts)
			}
		case figureAdapt:
			fmt.Printf("==== Adaptive contention management: map churn, off vs on ====\n")
			for _, cont := range conts {
				runAdaptPanel(out, cont, ths, *ops, *trials, *prefill, *pin, *rebalancer, *keys)
			}
		case figureBatch:
			fmt.Printf("==== Batched moves: MoveBuffer amortization curve ====\n")
			for _, cont := range conts {
				runBatchPanel(out, cont, ths, bsizes, *ops, *trials, *prefill, *pin)
			}
		case figureElim:
			fmt.Printf("==== Elimination backoff: stack/stack under contention ====\n")
			for _, cont := range conts {
				runElimPanel(out, cont, ths, *ops, *trials, *prefill, *pin)
			}
		default:
			pair := figurePair(fig)
			fmt.Printf("==== Figure %d: %s evaluation ====\n", fig, pair)
			for _, mix := range mixList {
				for _, cont := range conts {
					for _, bo := range backs {
						for _, el := range elims {
							runPanel(out, fig, pair, mix, cont, bo, el, ths, *ops, *trials, *prefill, *pin)
						}
					}
				}
			}
		}
	}
	out.flush()

	if *metrics != "" || *traceOut != "" {
		snap, events := harness.TakeObs()
		if *metrics != "" {
			f, err := os.Create(*metrics)
			if err == nil {
				err = snap.WritePrometheus(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fatal(fmt.Errorf("-metrics: %w", err))
			}
		}
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err == nil {
				err = obs.WriteJSONL(f, events)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fatal(fmt.Errorf("-trace: %w", err))
			}
			fmt.Fprintf(os.Stderr, "composebench: %d trace events written to %s\n", len(events), *traceOut)
		}
	}
}

// scenarioRow derives the JSON record for one map-family cell (the
// churn and mixed-tenant scenarios share every field but the figure
// label and result type).
func scenarioRow(figure, mix string, cont harness.Contention, impl harness.Impl,
	t, ops, trials int, sum stats.Summary,
	elimHits, elimMisses, grows, migrated float64, a harness.AdaptAgg) jsonRow {
	return jsonRow{
		Figure: figure, Pair: "map/map", Mix: mix,
		Contention: cont.String(), Impl: impl.String(),
		Threads: t, Ops: ops, Trials: trials,
		MeanMS: sum.Mean / 1e6, CI95MS: sum.CI95() / 1e6,
		MinMS: sum.Min / 1e6, MaxMS: sum.Max / 1e6,
		NSPerOp:   sum.Mean / float64(ops),
		OpsPerSec: float64(ops) * 1e9 / sum.Mean,
		ElimHits:  elimHits, ElimMisses: elimMisses,
		Grows: grows, Migrated: migrated,
		AdaptEpochs: a.Epochs, WindowGrows: a.WindowGrows,
		WindowShrinks: a.WindowShrinks, Attaches: a.Attaches,
		PaceRaises: a.PaceRaises,
	}
}

// mapRow is scenarioRow over a map-churn result.
func mapRow(figure, mix string, cont harness.Contention, impl harness.Impl,
	t int, r harness.MapResult) jsonRow {
	return scenarioRow(figure, mix, cont, impl, t, r.Ops, len(r.SamplesNS),
		r.Summary, r.ElimHits, r.ElimMisses, r.Grows, r.Migrated, r.Adapt)
}

// runMapPanel runs the map-churn scenario across thread counts for
// both implementation families — the keyed extension of the paper's
// lockfree-vs-blocking comparison — and prints throughput plus how
// much rebalancing each lock-free trial absorbed. readfrac > 0 selects
// the read-mostly variant: that percent of operations become plain
// lookups over the same growing maps.
func runMapPanel(out *sink, cont harness.Contention, ths []int,
	ops, trials, prefill int, pin, rebalancer bool, keys int, zipf bool, readfrac int, adaptive bool) {

	rstr := "no rebalancer"
	if rebalancer {
		rstr = "with rebalancer"
	}
	dist := "uniform keys"
	if zipf {
		dist = "zipfian keys"
	}
	workload := "keyed churn + cross-map moves"
	if readfrac > 0 {
		workload = fmt.Sprintf("read-mostly (%d%% lookups)", readfrac)
	}
	if adaptive {
		workload += ", adaptive"
	}
	fmt.Printf("\n-- %s, %s contention, %s, %s --\n", workload, cont, rstr, dist)
	fmt.Printf("%8s  %14s  %14s  %12s  %12s  %10s\n",
		"threads", "lockfree (ms)", "blocking (ms)", "lf ops/s", "grows/trial", "migrated")
	// The rebalancer flag and key distribution ride in the mix column;
	// the backoff column stays honest (the scenario never enables
	// backoff).
	mix := "churn"
	if readfrac > 0 {
		mix = fmt.Sprintf("read%d", readfrac)
	}
	if rebalancer {
		mix += "+rebalancer"
	}
	if zipf {
		mix += "+zipf"
	}
	if adaptive {
		mix += "+adapt"
	}
	for _, t := range ths {
		byImpl := make(map[harness.Impl]harness.MapResult)
		for _, impl := range []harness.Impl{harness.LockFree, harness.Blocking} {
			r := harness.RunMapChurn(harness.MapOptions{
				Impl:    impl,
				Threads: t, TotalOps: ops, Trials: trials,
				Keys: keys, Rebalancer: rebalancer, Zipf: zipf,
				ReadFraction: readfrac,
				Adaptive:     adaptive && impl == harness.LockFree,
				Contention:   cont, Prefill: prefill, Pin: pin,
			})
			byImpl[impl] = r
			if out.csv != nil {
				fmt.Fprintf(out.csv, "map,map/map,%s,%s,false,false,%s,%d,%d,%d,%.3f,%.3f,%.3f,%.3f\n",
					mix, cont, impl, t, ops, trials,
					r.Summary.Mean/1e6, r.Summary.CI95()/1e6,
					r.Summary.Min/1e6, r.Summary.Max/1e6)
			}
			out.add(mapRow("map", mix, cont, impl, t, r))
		}
		lf, bl := byImpl[harness.LockFree], byImpl[harness.Blocking]
		fmt.Printf("%8d  %9.1f ±%4.1f  %9.1f ±%4.1f  %12.0f  %12.1f  %10.1f\n", t,
			lf.Summary.Mean/1e6, lf.Summary.CI95()/1e6,
			bl.Summary.Mean/1e6, bl.Summary.CI95()/1e6,
			float64(ops)/(lf.Summary.Mean/1e9), lf.Grows, lf.Migrated)
	}
}

// runYCSBPanel runs the ABC mixed-tenant preset across thread counts,
// printing overall throughput and the per-tenant operation split. With
// latency on, each tenant additionally gets a per-op percentile line
// and its own JSON row (mix suffix "/tenant=<name>").
func runYCSBPanel(out *sink, cont harness.Contention, ths []int,
	ops, trials, keys int, pin, adaptive, latency bool) {

	label := "tenants A/B/C, private key ranges"
	if adaptive {
		label += ", adaptive"
	}
	fmt.Printf("\n-- %s, %s contention --\n", label, cont)
	fmt.Printf("%8s  %14s  %12s  %30s\n", "threads", "lockfree (ms)", "ops/s", "per-tenant r/i/d/m")
	for _, t := range ths {
		r := harness.RunYCSB(harness.YCSBOptions{
			Threads: t, TotalOps: ops, Trials: trials,
			Tenants:    harness.TenantsABC(keys / 3),
			Adaptive:   adaptive,
			Latency:    latency,
			Contention: cont, Pin: pin,
		})
		split := ""
		for _, pt := range r.PerTenant {
			split += fmt.Sprintf(" %s:%d/%d/%d/%d", pt.Name, pt.Reads, pt.Inserts, pt.Removes, pt.Moves)
		}
		fmt.Printf("%8d  %9.1f ±%4.1f  %12.0f %s\n", t,
			r.Summary.Mean/1e6, r.Summary.CI95()/1e6,
			float64(ops)/(r.Summary.Mean/1e9), split)
		mix := "ycsb-abc"
		if adaptive {
			mix += "+adapt"
		}
		if out.csv != nil {
			fmt.Fprintf(out.csv, "ycsb,map/map,%s,%s,false,false,lockfree,%d,%d,%d,%.3f,%.3f,%.3f,%.3f\n",
				mix, cont, t, ops, trials,
				r.Summary.Mean/1e6, r.Summary.CI95()/1e6,
				r.Summary.Min/1e6, r.Summary.Max/1e6)
		}
		out.add(scenarioRow("ycsb", mix, cont, harness.LockFree, t,
			r.Ops, len(r.SamplesNS), r.Summary,
			r.ElimHits, r.ElimMisses, r.Grows, r.Migrated, r.Adapt))
		for i, s := range r.Latency {
			if s.Count == 0 {
				continue
			}
			p50, p99, p999 := s.Percentile(0.50), s.Percentile(0.99), s.Percentile(0.999)
			fmt.Printf("%8s  tenant %s: p50=%s p99=%s p999=%s max=%s (%d ops)\n",
				"", r.PerTenant[i].Name, fmtNS(p50), fmtNS(p99), fmtNS(p999), fmtNS(s.MaxNS), s.Count)
			tr := scenarioRow("ycsb", mix+"/tenant="+r.PerTenant[i].Name, cont,
				harness.LockFree, t, int(s.Count), len(r.SamplesNS), r.Summary,
				0, 0, 0, 0, harness.AdaptAgg{})
			tr.P50NS, tr.P99NS, tr.P999NS = p50, p99, p999
			out.add(tr)
		}
	}
}

// fmtNS renders a nanosecond latency at microsecond granularity.
func fmtNS(ns int64) string {
	return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
}

// runAdaptPanel sweeps the zipfian map-churn cell with the adaptive
// subsystem off and on — the subsystem's showcase: skewed keys make a
// few shards hot, which is exactly the signal the controllers feed on.
func runAdaptPanel(out *sink, cont harness.Contention, ths []int,
	ops, trials, prefill int, pin, rebalancer bool, keys int) {

	fmt.Printf("\n-- zipfian map churn, %s contention, adaptive off vs on --\n", cont)
	fmt.Printf("%8s  %14s  %14s  %8s  %8s  %9s  %9s\n",
		"threads", "adapt off (ms)", "adapt on (ms)", "speedup", "epochs", "attaches", "window±")
	for _, t := range ths {
		var off, on harness.MapResult
		for _, adaptive := range []bool{false, true} {
			r := harness.RunMapChurn(harness.MapOptions{
				Threads: t, TotalOps: ops, Trials: trials,
				Keys: keys, Rebalancer: rebalancer, Zipf: true,
				Adaptive:   adaptive,
				Contention: cont, Prefill: prefill, Pin: pin,
			})
			if adaptive {
				on = r
			} else {
				off = r
			}
			mix := "churn+zipf/adapt=off"
			if adaptive {
				mix = "churn+zipf/adapt=on"
			}
			if out.csv != nil {
				fmt.Fprintf(out.csv, "adapt,map/map,%s,%s,false,false,lockfree,%d,%d,%d,%.3f,%.3f,%.3f,%.3f\n",
					mix, cont, t, ops, trials,
					r.Summary.Mean/1e6, r.Summary.CI95()/1e6,
					r.Summary.Min/1e6, r.Summary.Max/1e6)
			}
			out.add(mapRow("adapt", mix, cont, harness.LockFree, t, r))
		}
		speedup := 0.0
		if on.Summary.Mean > 0 {
			speedup = off.Summary.Mean / on.Summary.Mean
		}
		fmt.Printf("%8d  %9.1f ±%4.1f  %9.1f ±%4.1f  %7.2fx  %8.0f  %9.0f  %4.0f/%-4.0f\n", t,
			off.Summary.Mean/1e6, off.Summary.CI95()/1e6,
			on.Summary.Mean/1e6, on.Summary.CI95()/1e6,
			speedup, on.Adapt.Epochs, on.Adapt.Attaches,
			on.Adapt.WindowGrows, on.Adapt.WindowShrinks)
	}
}

// runBatchPanel sweeps the batched move pipeline over batch sizes and
// thread counts: queue/stack move traffic in direction runs of B,
// committed either through one MoveBuffer flush per run or as B
// independent Move calls over the identical stream. The speedup column
// is unbatched-mean / batched-mean for the same (threads, B) cell. B=1
// rows are the degenerate baseline (the two mechanisms coincide).
func runBatchPanel(out *sink, cont harness.Contention, ths, bsizes []int,
	ops, trials, prefill int, pin bool) {

	fmt.Printf("\n-- queue/stack direction-run moves through MoveBuffer, %s contention --\n", cont)
	fmt.Printf("%8s  %6s  %16s  %14s  %10s  %9s\n", "threads", "B", "unbatched (ms)", "batched (ms)", "ns/move", "speedup")
	for _, t := range ths {
		for _, bs := range bsizes {
			base := harness.BatchOptions{
				Threads: t, TotalOps: ops, Trials: trials, BatchSize: bs,
				Pair: harness.QueueStack, Contention: cont,
				Prefill: prefill, Pin: pin,
			}
			variants := []bool{true}
			if bs > 1 {
				variants = []bool{true, false} // unbatched first, then batched
			}
			var un, ba harness.BatchResult
			for _, unbatched := range variants {
				o := base
				o.Unbatched = unbatched
				r := harness.RunMoveBatch(o)
				if unbatched {
					un = r
				} else {
					ba = r
				}
				mech := "batched"
				if unbatched {
					mech = "unbatched"
				}
				if out.csv != nil {
					fmt.Fprintf(out.csv, "batch,queue/stack,%s/B=%d,%s,false,false,lockfree,%d,%d,%d,%.3f,%.3f,%.3f,%.3f\n",
						mech, bs, cont, t, ops, trials,
						r.Summary.Mean/1e6, r.Summary.CI95()/1e6,
						r.Summary.Min/1e6, r.Summary.Max/1e6)
				}
				out.add(jsonRow{
					Figure: "batch", Pair: "queue/stack", Mix: fmt.Sprintf("%s/B=%d", mech, bs),
					Contention: cont.String(), Impl: harness.LockFree.String(),
					Threads: t, Ops: r.Ops, Trials: len(r.SamplesNS),
					MeanMS: r.Summary.Mean / 1e6, CI95MS: r.Summary.CI95() / 1e6,
					MinMS: r.Summary.Min / 1e6, MaxMS: r.Summary.Max / 1e6,
					NSPerOp:   r.Summary.Mean / float64(r.Ops),
					OpsPerSec: float64(r.Ops) * 1e9 / r.Summary.Mean,
				})
			}
			if bs <= 1 {
				fmt.Printf("%8d  %6d  %11.1f ±%4.1f  %14s  %10.1f  %9s\n", t, bs,
					un.Summary.Mean/1e6, un.Summary.CI95()/1e6, "-",
					un.Summary.Mean/float64(un.Ops), "-")
				continue
			}
			speedup := 0.0
			if ba.Summary.Mean > 0 {
				speedup = un.Summary.Mean / ba.Summary.Mean
			}
			fmt.Printf("%8d  %6d  %11.1f ±%4.1f  %9.1f ±%4.1f  %10.1f  %8.2fx\n", t, bs,
				un.Summary.Mean/1e6, un.Summary.CI95()/1e6,
				ba.Summary.Mean/1e6, ba.Summary.CI95()/1e6,
				ba.Summary.Mean/float64(ba.Ops), speedup)
		}
	}
}

// runElimPanel sweeps the stack/stack insert/remove cell with the
// elimination layer off and on — the layer's showcase configuration —
// printing the hit rate the on-run achieved.
func runElimPanel(out *sink, cont harness.Contention, ths []int,
	ops, trials, prefill int, pin bool) {

	fmt.Printf("\n-- stack/stack insert/remove, %s contention, elimination off vs on --\n", cont)
	fmt.Printf("%8s  %14s  %14s  %9s  %9s\n", "threads", "elim off (ms)", "elim on (ms)", "hit rate", "speedup")
	cells := harness.RunElimSweep(harness.Options{
		Pair: harness.StackStack, Mix: harness.InsertRemoveOnly,
		Contention: cont, TotalOps: ops, Trials: trials,
		Prefill: prefill, Pin: pin,
	}, ths)
	for _, c := range cells {
		fmt.Printf("%8d  %9.1f ±%4.1f  %9.1f ±%4.1f  %8.2f%%  %8.2fx\n", c.Threads,
			c.Off.Summary.Mean/1e6, c.Off.Summary.CI95()/1e6,
			c.On.Summary.Mean/1e6, c.On.Summary.CI95()/1e6,
			100*c.HitRate(), c.Speedup())
		for _, r := range []harness.Result{c.Off, c.On} {
			if out.csv != nil {
				fmt.Fprintf(out.csv, "elim,%s,%s,%s,%v,%v,%s,%d,%d,%d,%.3f,%.3f,%.3f,%.3f\n",
					r.Options.Pair, r.Options.Mix, cont, r.Options.Backoff,
					r.Options.Elimination, r.Options.Impl, c.Threads, ops, trials,
					r.Summary.Mean/1e6, r.Summary.CI95()/1e6,
					r.Summary.Min/1e6, r.Summary.Max/1e6)
			}
			out.add(row("elim", r.Options, r))
		}
	}
}

func runPanel(out *sink, fig int, pair harness.Pair, mix harness.Mix,
	cont harness.Contention, backoff, elim bool, ths []int, ops, trials, prefill int, pin bool) {

	bstr := "no backoff"
	if backoff {
		bstr = "with backoff"
	}
	if elim {
		bstr += ", with elimination"
	}
	fmt.Printf("\n-- %s operations, %s contention, %s --\n", mix, cont, bstr)
	fmt.Printf("%8s  %14s  %14s\n", "threads", "lockfree (ms)", "blocking (ms)")
	for _, t := range ths {
		byImpl := make(map[harness.Impl]harness.Result)
		for _, impl := range []harness.Impl{harness.LockFree, harness.Blocking} {
			o := harness.Options{
				Impl: impl, Pair: pair, Mix: mix, Contention: cont,
				Threads: t, TotalOps: ops, Trials: trials,
				Backoff: backoff, Prefill: prefill, Pin: pin,
				// The layer only exists on the lock-free side.
				Elimination: elim && impl == harness.LockFree,
			}
			r := harness.Run(o)
			byImpl[impl] = r
			if out.csv != nil {
				fmt.Fprintf(out.csv, "%d,%s,%s,%s,%v,%v,%s,%d,%d,%d,%.3f,%.3f,%.3f,%.3f\n",
					fig, pair, mix, cont, backoff, o.Elimination, impl, t, ops, trials,
					r.Summary.Mean/1e6, r.Summary.CI95()/1e6,
					r.Summary.Min/1e6, r.Summary.Max/1e6)
			}
			out.add(row(fmt.Sprintf("%d", fig), o, r))
		}
		lf, bl := byImpl[harness.LockFree], byImpl[harness.Blocking]
		fmt.Printf("%8d  %9.1f ±%4.1f  %9.1f ±%4.1f\n", t,
			lf.Summary.Mean/1e6, lf.Summary.CI95()/1e6,
			bl.Summary.Mean/1e6, bl.Summary.CI95()/1e6)
	}
}

// contendedRun reports whether concurrent cells actually contend: with
// GOMAXPROCS=1 every worker time-slices one CPU, so "contended" numbers
// from such a run are meaningless.
func contendedRun() bool { return runtime.GOMAXPROCS(0) > 1 }

func figurePair(fig int) harness.Pair {
	switch fig {
	case 2:
		return harness.QueueStack
	case 3:
		return harness.QueueQueue
	default:
		return harness.StackStack
	}
}

// figureMap, figureElim, figureBatch, figureYCSB and figureAdapt are
// the pseudo-figure numbers selecting the map-churn,
// elimination-sweep, batched-move, mixed-tenant and adaptive
// scenarios.
const (
	figureMap   = -1
	figureElim  = -2
	figureBatch = -3
	figureYCSB  = -4
	figureAdapt = -5
)

func parseFigures(s string) ([]int, error) {
	if s == "all" {
		return []int{2, 3, 4, figureMap, figureElim, figureBatch, figureAdapt, figureYCSB}, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		switch part {
		case "map":
			out = append(out, figureMap)
			continue
		case "elim":
			out = append(out, figureElim)
			continue
		case "batch":
			out = append(out, figureBatch)
			continue
		case "ycsb":
			out = append(out, figureYCSB)
			continue
		case "adapt":
			out = append(out, figureAdapt)
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 2 || n > 4 {
			return nil, fmt.Errorf("bad -figure element %q (want 2, 3, 4, map, elim, batch, adapt or ycsb)", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// parseOnOffBoth parses a three-state toggle flag.
func parseOnOffBoth(name, s string) ([]bool, error) {
	switch s {
	case "off":
		return []bool{false}, nil
	case "on":
		return []bool{true}, nil
	case "both":
		return []bool{false, true}, nil
	}
	return nil, fmt.Errorf("bad -%s %q (want off, on or both)", name, s)
}

// parseKeyDist parses the map scenario's key distribution.
func parseKeyDist(s string) (zipf bool, err error) {
	switch s {
	case "uniform":
		return false, nil
	case "zipfian", "zipf":
		return true, nil
	}
	return false, fmt.Errorf("bad -keydist %q (want uniform or zipfian)", s)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("%q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseContention(s string) ([]harness.Contention, error) {
	switch s {
	case "high":
		return []harness.Contention{harness.High}, nil
	case "low":
		return []harness.Contention{harness.Low}, nil
	case "both":
		return []harness.Contention{harness.High, harness.Low}, nil
	case "none":
		return []harness.Contention{harness.NoWork}, nil
	}
	return nil, fmt.Errorf("bad -contention %q", s)
}

func parseMixes(s string) ([]harness.Mix, error) {
	if s == "all" {
		return []harness.Mix{harness.MoveOnly, harness.InsertRemoveOnly, harness.Mixed}, nil
	}
	var out []harness.Mix
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "move":
			out = append(out, harness.MoveOnly)
		case "insertremove":
			out = append(out, harness.InsertRemoveOnly)
		case "mixed":
			out = append(out, harness.Mixed)
		default:
			return nil, fmt.Errorf("bad -mix element %q", part)
		}
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "composebench:", err)
	os.Exit(2)
}
