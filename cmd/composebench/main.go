// Command composebench regenerates the paper's evaluation figures
// (Figures 2–4 of "Supporting Lock-Free Composition of Concurrent Data
// Objects", Cederman & Tsigas) as tables or CSV.
//
// Each figure is one object pairing (Fig 2: queue/stack, Fig 3: two
// queues, Fig 4: two stacks) with three panels (move-only,
// insert/remove-only, both), comparing the lock-free composition against
// the blocking baseline across thread counts, with and without backoff,
// under the high- and low-contention local-work distributions.
//
// Beyond the paper's figures, -figure map runs the sharded-map churn +
// rebalance scenario: keyed operations and cross-map moves (including
// §8 MoveN fan-outs) over two growing maps, with every grow-time entry
// relocation performed by MoveN.
//
// Example (full paper configuration — takes a while):
//
//	composebench -figure all -threads 1,2,4,8,16 -ops 5000000 -trials 50
//
// Quick shape check:
//
//	composebench -figure 2 -ops 200000 -trials 3
//	composebench -figure map -ops 500000 -trials 3
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/harness"
)

func main() {
	var (
		figures    = flag.String("figure", "all", "figures to run: comma list of 2,3,4,map or 'all'")
		threads    = flag.String("threads", "1,2,4,8,16", "comma list of thread counts")
		ops        = flag.Int("ops", 1_000_000, "total operations per trial (paper: 5000000)")
		trials     = flag.Int("trials", 5, "trials per cell (paper: 50)")
		contention = flag.String("contention", "high", "local-work level: high, low, both, none")
		backoff    = flag.String("backoff", "off", "backoff: off, on, both (paper reports both)")
		prefill    = flag.Int("prefill", 512, "elements pre-inserted per object")
		pin        = flag.Bool("pin", true, "pin workers to OS threads")
		csvPath    = flag.String("csv", "", "also write results as CSV to this file")
		mixes      = flag.String("mix", "all", "panels: move, insertremove, mixed, or 'all'")
		rebalancer = flag.Bool("rebalancer", true, "map scenario: dedicated RebalanceStep thread")
		keys       = flag.Int("keys", 8192, "map scenario: key-space size")
	)
	flag.Parse()

	figs, err := parseFigures(*figures)
	if err != nil {
		fatal(err)
	}
	ths, err := parseInts(*threads)
	if err != nil {
		fatal(fmt.Errorf("bad -threads: %w", err))
	}
	conts, err := parseContention(*contention)
	if err != nil {
		fatal(err)
	}
	backs, err := parseBackoff(*backoff)
	if err != nil {
		fatal(err)
	}
	mixList, err := parseMixes(*mixes)
	if err != nil {
		fatal(err)
	}

	var csv *os.File
	if *csvPath != "" {
		csv, err = os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		defer csv.Close()
		fmt.Fprintln(csv, "figure,pair,mix,contention,backoff,impl,threads,ops,trials,mean_ms,ci95_ms,min_ms,max_ms")
	}

	for _, fig := range figs {
		if fig == figureMap {
			fmt.Printf("==== Sharded map: churn + MoveN rebalance ====\n")
			for _, cont := range conts {
				runMapPanel(csv, cont, ths, *ops, *trials, *prefill, *pin, *rebalancer, *keys)
			}
			continue
		}
		pair := figurePair(fig)
		fmt.Printf("==== Figure %d: %s evaluation ====\n", fig, pair)
		for _, mix := range mixList {
			for _, cont := range conts {
				for _, bo := range backs {
					runPanel(csv, fig, pair, mix, cont, bo, ths, *ops, *trials, *prefill, *pin)
				}
			}
		}
	}
}

// runMapPanel runs the map-churn scenario across thread counts and
// prints throughput plus how much rebalancing each trial absorbed.
func runMapPanel(csv *os.File, cont harness.Contention, ths []int,
	ops, trials, prefill int, pin, rebalancer bool, keys int) {

	rstr := "no rebalancer"
	if rebalancer {
		rstr = "with rebalancer"
	}
	fmt.Printf("\n-- keyed churn + cross-map moves, %s contention, %s --\n", cont, rstr)
	fmt.Printf("%8s  %14s  %12s  %12s  %10s\n", "threads", "lockfree (ms)", "ops/s", "grows/trial", "migrated")
	for _, t := range ths {
		r := harness.RunMapChurn(harness.MapOptions{
			Threads: t, TotalOps: ops, Trials: trials,
			Keys: keys, Rebalancer: rebalancer,
			Contention: cont, Prefill: prefill, Pin: pin,
		})
		opsPerSec := float64(ops) / (r.Summary.Mean / 1e9)
		fmt.Printf("%8d  %9.1f ±%4.1f  %12.0f  %12.1f  %10.1f\n", t,
			r.Summary.Mean/1e6, r.Summary.CI95()/1e6, opsPerSec, r.Grows, r.Migrated)
		if csv != nil {
			// The rebalancer flag rides in the mix column; the backoff
			// column stays honest (the scenario never enables backoff).
			mix := "churn"
			if rebalancer {
				mix = "churn+rebalancer"
			}
			fmt.Fprintf(csv, "map,map/map,%s,%s,false,lockfree,%d,%d,%d,%.3f,%.3f,%.3f,%.3f\n",
				mix, cont, t, ops, trials,
				r.Summary.Mean/1e6, r.Summary.CI95()/1e6,
				r.Summary.Min/1e6, r.Summary.Max/1e6)
		}
	}
}

func runPanel(csv *os.File, fig int, pair harness.Pair, mix harness.Mix,
	cont harness.Contention, backoff bool, ths []int, ops, trials, prefill int, pin bool) {

	bstr := "no backoff"
	if backoff {
		bstr = "with backoff"
	}
	fmt.Printf("\n-- %s operations, %s contention, %s --\n", mix, cont, bstr)
	fmt.Printf("%8s  %14s  %14s\n", "threads", "lockfree (ms)", "blocking (ms)")
	for _, t := range ths {
		row := make(map[harness.Impl]harness.Result)
		for _, impl := range []harness.Impl{harness.LockFree, harness.Blocking} {
			r := harness.Run(harness.Options{
				Impl: impl, Pair: pair, Mix: mix, Contention: cont,
				Threads: t, TotalOps: ops, Trials: trials,
				Backoff: backoff, Prefill: prefill, Pin: pin,
			})
			row[impl] = r
			if csv != nil {
				fmt.Fprintf(csv, "%d,%s,%s,%s,%v,%s,%d,%d,%d,%.3f,%.3f,%.3f,%.3f\n",
					fig, pair, mix, cont, backoff, impl, t, ops, trials,
					r.Summary.Mean/1e6, r.Summary.CI95()/1e6,
					r.Summary.Min/1e6, r.Summary.Max/1e6)
			}
		}
		lf, bl := row[harness.LockFree], row[harness.Blocking]
		fmt.Printf("%8d  %9.1f ±%4.1f  %9.1f ±%4.1f\n", t,
			lf.Summary.Mean/1e6, lf.Summary.CI95()/1e6,
			bl.Summary.Mean/1e6, bl.Summary.CI95()/1e6)
	}
}

func figurePair(fig int) harness.Pair {
	switch fig {
	case 2:
		return harness.QueueStack
	case 3:
		return harness.QueueQueue
	default:
		return harness.StackStack
	}
}

// figureMap is the pseudo-figure number selecting the map scenario.
const figureMap = -1

func parseFigures(s string) ([]int, error) {
	if s == "all" {
		return []int{2, 3, 4, figureMap}, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "map" {
			out = append(out, figureMap)
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 2 || n > 4 {
			return nil, fmt.Errorf("bad -figure element %q (want 2, 3, 4 or map)", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("%q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseContention(s string) ([]harness.Contention, error) {
	switch s {
	case "high":
		return []harness.Contention{harness.High}, nil
	case "low":
		return []harness.Contention{harness.Low}, nil
	case "both":
		return []harness.Contention{harness.High, harness.Low}, nil
	case "none":
		return []harness.Contention{harness.NoWork}, nil
	}
	return nil, fmt.Errorf("bad -contention %q", s)
}

func parseBackoff(s string) ([]bool, error) {
	switch s {
	case "off":
		return []bool{false}, nil
	case "on":
		return []bool{true}, nil
	case "both":
		return []bool{false, true}, nil
	}
	return nil, fmt.Errorf("bad -backoff %q", s)
}

func parseMixes(s string) ([]harness.Mix, error) {
	if s == "all" {
		return []harness.Mix{harness.MoveOnly, harness.InsertRemoveOnly, harness.Mixed}, nil
	}
	var out []harness.Mix
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "move":
			out = append(out, harness.MoveOnly)
		case "insertremove":
			out = append(out, harness.InsertRemoveOnly)
		case "mixed":
			out = append(out, harness.Mixed)
		default:
			return nil, fmt.Errorf("bad -mix element %q", part)
		}
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "composebench:", err)
	os.Exit(2)
}
