package main

import (
	"testing"

	"repro/internal/harness"
)

func TestParseFigures(t *testing.T) {
	if got, err := parseFigures("all"); err != nil || len(got) != 4 || got[3] != figureMap {
		t.Fatalf("all: %v %v", got, err)
	}
	if got, err := parseFigures("2,4"); err != nil || len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Fatalf("2,4: %v %v", got, err)
	}
	if got, err := parseFigures("map,3"); err != nil || len(got) != 2 || got[0] != figureMap || got[1] != 3 {
		t.Fatalf("map,3: %v %v", got, err)
	}
	for _, bad := range []string{"1", "5", "x", "2,9"} {
		if _, err := parseFigures(bad); err == nil {
			t.Fatalf("%q should fail", bad)
		}
	}
}

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 2,16")
	if err != nil || len(got) != 3 || got[2] != 16 {
		t.Fatalf("%v %v", got, err)
	}
	for _, bad := range []string{"0", "-1", "a"} {
		if _, err := parseInts(bad); err == nil {
			t.Fatalf("%q should fail", bad)
		}
	}
}

func TestParseContention(t *testing.T) {
	cases := map[string][]harness.Contention{
		"high": {harness.High},
		"low":  {harness.Low},
		"both": {harness.High, harness.Low},
		"none": {harness.NoWork},
	}
	for in, want := range cases {
		got, err := parseContention(in)
		if err != nil || len(got) != len(want) {
			t.Fatalf("%q: %v %v", in, got, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%q[%d]", in, i)
			}
		}
	}
	if _, err := parseContention("medium"); err == nil {
		t.Fatal("bad contention accepted")
	}
}

func TestParseBackoff(t *testing.T) {
	if got, _ := parseBackoff("both"); len(got) != 2 || got[0] || !got[1] {
		t.Fatalf("both: %v", got)
	}
	if got, _ := parseBackoff("on"); len(got) != 1 || !got[0] {
		t.Fatal("on")
	}
	if got, _ := parseBackoff("off"); len(got) != 1 || got[0] {
		t.Fatal("off")
	}
	if _, err := parseBackoff("maybe"); err == nil {
		t.Fatal("bad backoff accepted")
	}
}

func TestParseMixes(t *testing.T) {
	if got, _ := parseMixes("all"); len(got) != 3 {
		t.Fatal("all")
	}
	got, err := parseMixes("move, mixed")
	if err != nil || len(got) != 2 || got[0] != harness.MoveOnly || got[1] != harness.Mixed {
		t.Fatalf("%v %v", got, err)
	}
	if _, err := parseMixes("woof"); err == nil {
		t.Fatal("bad mix accepted")
	}
}

func TestFigurePair(t *testing.T) {
	if figurePair(2) != harness.QueueStack ||
		figurePair(3) != harness.QueueQueue ||
		figurePair(4) != harness.StackStack {
		t.Fatal("figure-to-pair mapping broken")
	}
}
