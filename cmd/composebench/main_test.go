package main

import (
	"encoding/json"
	"os"
	"runtime"
	"strings"
	"testing"

	"repro/internal/harness"
)

func TestParseFigures(t *testing.T) {
	if got, err := parseFigures("all"); err != nil || len(got) != 8 ||
		got[3] != figureMap || got[4] != figureElim || got[5] != figureBatch ||
		got[6] != figureAdapt || got[7] != figureYCSB {
		t.Fatalf("all: %v %v", got, err)
	}
	if got, err := parseFigures("2,4"); err != nil || len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Fatalf("2,4: %v %v", got, err)
	}
	if got, err := parseFigures("map,3"); err != nil || len(got) != 2 || got[0] != figureMap || got[1] != 3 {
		t.Fatalf("map,3: %v %v", got, err)
	}
	if got, err := parseFigures("elim"); err != nil || len(got) != 1 || got[0] != figureElim {
		t.Fatalf("elim: %v %v", got, err)
	}
	if got, err := parseFigures("batch"); err != nil || len(got) != 1 || got[0] != figureBatch {
		t.Fatalf("batch: %v %v", got, err)
	}
	if got, err := parseFigures("adapt,ycsb"); err != nil || len(got) != 2 ||
		got[0] != figureAdapt || got[1] != figureYCSB {
		t.Fatalf("adapt,ycsb: %v %v", got, err)
	}
	for _, bad := range []string{"1", "5", "x", "2,9"} {
		if _, err := parseFigures(bad); err == nil {
			t.Fatalf("%q should fail", bad)
		}
	}
}

func TestParseOnOffBothAndKeyDist(t *testing.T) {
	if got, _ := parseOnOffBoth("elim", "both"); len(got) != 2 || got[0] || !got[1] {
		t.Fatalf("both: %v", got)
	}
	if _, err := parseOnOffBoth("elim", "sometimes"); err == nil {
		t.Fatal("bad three-state accepted")
	}
	if z, err := parseKeyDist("zipfian"); err != nil || !z {
		t.Fatal("zipfian")
	}
	if z, err := parseKeyDist("uniform"); err != nil || z {
		t.Fatal("uniform")
	}
	if _, err := parseKeyDist("pareto"); err == nil {
		t.Fatal("bad keydist accepted")
	}
}

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 2,16")
	if err != nil || len(got) != 3 || got[2] != 16 {
		t.Fatalf("%v %v", got, err)
	}
	for _, bad := range []string{"0", "-1", "a"} {
		if _, err := parseInts(bad); err == nil {
			t.Fatalf("%q should fail", bad)
		}
	}
}

func TestParseContention(t *testing.T) {
	cases := map[string][]harness.Contention{
		"high": {harness.High},
		"low":  {harness.Low},
		"both": {harness.High, harness.Low},
		"none": {harness.NoWork},
	}
	for in, want := range cases {
		got, err := parseContention(in)
		if err != nil || len(got) != len(want) {
			t.Fatalf("%q: %v %v", in, got, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%q[%d]", in, i)
			}
		}
	}
	if _, err := parseContention("medium"); err == nil {
		t.Fatal("bad contention accepted")
	}
}

func TestParseBackoff(t *testing.T) {
	if got, _ := parseOnOffBoth("backoff", "both"); len(got) != 2 || got[0] || !got[1] {
		t.Fatalf("both: %v", got)
	}
	if got, _ := parseOnOffBoth("backoff", "on"); len(got) != 1 || !got[0] {
		t.Fatal("on")
	}
	if got, _ := parseOnOffBoth("backoff", "off"); len(got) != 1 || got[0] {
		t.Fatal("off")
	}
	if _, err := parseOnOffBoth("backoff", "maybe"); err == nil {
		t.Fatal("bad backoff accepted")
	}
}

func TestParseMixes(t *testing.T) {
	if got, _ := parseMixes("all"); len(got) != 3 {
		t.Fatal("all")
	}
	got, err := parseMixes("move, mixed")
	if err != nil || len(got) != 2 || got[0] != harness.MoveOnly || got[1] != harness.Mixed {
		t.Fatalf("%v %v", got, err)
	}
	if _, err := parseMixes("woof"); err == nil {
		t.Fatal("bad mix accepted")
	}
}

func TestFigurePair(t *testing.T) {
	if figurePair(2) != harness.QueueStack ||
		figurePair(3) != harness.QueueQueue ||
		figurePair(4) != harness.StackStack {
		t.Fatal("figure-to-pair mapping broken")
	}
}

// TestContendedFlag pins the GOMAXPROCS guard: a single-CPU run must
// mark its JSON as uncontended, and the field must serialize even when
// false (downstream consumers distinguish "uncontended" from "flag
// missing").
func TestContendedFlag(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	if contendedRun() {
		t.Fatal("GOMAXPROCS=1 must report an uncontended run")
	}
	runtime.GOMAXPROCS(2)
	if !contendedRun() {
		t.Fatal("GOMAXPROCS=2 must report a contended run")
	}

	b, err := json.Marshal(jsonDoc{HostCPUs: 1, Contended: false})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"contended":false`) {
		t.Fatalf("contended=false must be serialized explicitly: %s", b)
	}
}

// TestJSONSinkEndToEnd runs one tiny elim panel and one map panel
// through the sink and checks the written JSON parses back with the
// derived metrics filled in.
func TestJSONSinkEndToEnd(t *testing.T) {
	path := t.TempDir() + "/bench.json"
	out := &sink{doc: &jsonDoc{HostCPUs: 1}, path: path}
	runElimPanel(out, harness.NoWork, []int{1, 2}, 20000, 1, 64, false)
	runMapPanel(out, harness.NoWork, []int{1}, 20000, 1, 64, false, true, 512, true, 0, false)
	runBatchPanel(out, harness.NoWork, []int{1}, []int{1, 4}, 20000, 1, 64, false)
	runYCSBPanel(out, harness.NoWork, []int{1}, 20000, 1, 512, false, true, true)
	out.flush()

	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc jsonDoc
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("written JSON does not parse: %v", err)
	}
	// 2 thread counts x (off, on) + 2 map rows (lockfree + blocking) +
	// 3 batch rows (B=1 baseline, then B=4 unbatched + batched) + 1
	// adaptive ycsb row + 1 per-tenant ycsb latency row (threads=1
	// serves only tenant A; idle tenants emit no latency rows).
	if len(doc.Rows) != 11 {
		t.Fatalf("rows=%d want 11", len(doc.Rows))
	}
	tenantRows := 0
	for _, r := range doc.Rows {
		if !strings.Contains(r.Mix, "/tenant=") {
			if r.P50NS != 0 {
				t.Fatalf("percentiles on a non-latency row: %+v", r)
			}
			continue
		}
		tenantRows++
		if r.P50NS <= 0 || r.P99NS < r.P50NS || r.P999NS < r.P99NS {
			t.Fatalf("implausible percentiles in row %+v", r)
		}
	}
	if tenantRows != 1 {
		t.Fatalf("per-tenant latency rows=%d want 1 (only tenant A served at threads=1)", tenantRows)
	}
	sawElimOn := false
	for _, r := range doc.Rows {
		if r.MeanMS <= 0 || r.NSPerOp <= 0 || r.OpsPerSec <= 0 {
			t.Fatalf("row %+v missing derived metrics", r)
		}
		if r.Figure == "elim" && r.Elimination {
			sawElimOn = true
		}
	}
	if !sawElimOn {
		t.Fatal("no elimination-enabled row recorded")
	}
	if doc.Rows[4].Figure != "map" || doc.Rows[4].Impl != "lockfree" || doc.Rows[4].Grows == 0 {
		t.Fatalf("map lockfree row did not record grow stats: %+v", doc.Rows[4])
	}
	if doc.Rows[5].Impl != "blocking" || doc.Rows[5].Grows != 0 {
		t.Fatalf("map blocking row wrong: %+v", doc.Rows[5])
	}
	if doc.Rows[6].Figure != "batch" || doc.Rows[6].Mix != "unbatched/B=1" ||
		doc.Rows[7].Mix != "unbatched/B=4" || doc.Rows[8].Mix != "batched/B=4" {
		t.Fatalf("batch rows wrong: %+v / %+v / %+v", doc.Rows[6], doc.Rows[7], doc.Rows[8])
	}
	if doc.Rows[9].Figure != "ycsb" || doc.Rows[9].Mix != "ycsb-abc+adapt" ||
		doc.Rows[9].AdaptEpochs == 0 {
		t.Fatalf("ycsb adaptive row wrong: %+v", doc.Rows[9])
	}
}
