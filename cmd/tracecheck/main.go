// Command tracecheck validates and converts trace files (the JSONL
// written by kvserver -trace and composebench -trace; see internal/obs
// and docs/observability.md). A trace file mixes two record types on
// one timeline: descriptor-protocol events and request spans (lines
// carrying a top-level "span":1 key).
//
// It parses the whole file strictly — any malformed line, unknown
// event kind or unknown span stage fails the run — prints per-kind
// event counts, and exits nonzero if a -require'd kind is absent,
// which is how the CI observability smoke asserts that helping
// actually happened under a fault rule:
//
//	tracecheck -require help -require publish /tmp/kvtrace.jsonl
//
// Span records are validated for coherent accounting: stage times must
// be non-negative (so the per-stage timeline is monotonic), the wall
// time non-negative, and the stage sum must not exceed the wall time
// beyond clock-read slack — a span whose parts exceed its whole is
// corrupt. Unattributed gaps (wall time no stage claims) are reported
// but don't fail the run: they are scheduler/bookkeeping time.
//
// -slowest N summarizes the N slowest spans, slowest first, each with
// its dominant stage and full stage breakdown — the tail-forensics
// entry point when you have a trace file instead of a live server to
// ask SLOW.
//
// -chrome FILE additionally converts the trace to the Chrome
// trace_event format: protocol events as instants, each span as one
// duration slice per stage on its serving thread's row. Load the
// result in chrome://tracing or https://ui.perfetto.dev.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro"
	"repro/internal/obs"
)

// sumSlackNS tolerates the clock reads between stage boundaries when
// checking that a span's stage sum does not exceed its wall time.
const sumSlackNS = int64(1e6) // 1ms

// requireFlags collects repeatable -require event kinds.
type requireFlags []string

func (f *requireFlags) String() string { return fmt.Sprint(*f) }
func (f *requireFlags) Set(s string) error {
	if _, ok := obs.KindFromString(s); !ok {
		return fmt.Errorf("unknown event kind %q", s)
	}
	*f = append(*f, s)
	return nil
}

func main() {
	var require requireFlags
	chrome := flag.String("chrome", "", "also convert the trace to Chrome trace_event JSON at this path")
	slowest := flag.Int("slowest", 0, "summarize the N slowest spans with their stage breakdown (0 = off)")
	flag.Var(&require, "require", "event kind that must appear at least once (repeatable): publish, help, commit, abort, recycle, batch-flush, map-migrate")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-require kind]... [-slowest N] [-chrome out.json] trace.jsonl")
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	events, spans, err := obs.ReadTrace(f)
	f.Close()
	if err != nil {
		fatal(fmt.Errorf("%s: %w", flag.Arg(0), err))
	}

	counts := make(map[string]int)
	for _, ev := range events {
		counts[ev.Kind.String()]++
	}
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fmt.Printf("tracecheck: %s: %d events, %d spans\n", flag.Arg(0), len(events), len(spans))
	for _, k := range kinds {
		fmt.Printf("  %-12s %d\n", k, counts[k])
	}

	ok := true
	for _, k := range require {
		if counts[k] == 0 {
			fmt.Fprintf(os.Stderr, "tracecheck: required event kind %q absent\n", k)
			ok = false
		}
	}
	if !validateSpans(spans) {
		ok = false
	}

	if *slowest > 0 {
		printSlowest(spans, *slowest)
	}

	if *chrome != "" {
		out, err := os.Create(*chrome)
		if err == nil {
			err = repro.WriteChromeTraceWith(out, events, spans)
			if cerr := out.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fatal(fmt.Errorf("-chrome: %w", err))
		}
		fmt.Printf("tracecheck: chrome trace written to %s\n", *chrome)
	}
	if !ok {
		os.Exit(1)
	}
}

// validateSpans checks every span's latency accounting: impossible
// records (negative stages or wall, missing request id, stage sum
// exceeding wall beyond clock slack) fail the run; unattributed wall
// time is only reported.
func validateSpans(spans []obs.Span) bool {
	ok := true
	var gaps int
	for _, sp := range spans {
		var sum int64
		for st := obs.Stage(0); st < obs.NumStages; st++ {
			if sp.Stage[st] < 0 {
				fmt.Fprintf(os.Stderr, "tracecheck: span req=%d: negative %s stage (%dns)\n",
					sp.Req, st, sp.Stage[st])
				ok = false
			}
			sum += sp.Stage[st]
		}
		if sp.WallNS < 0 {
			fmt.Fprintf(os.Stderr, "tracecheck: span req=%d: negative wall time (%dns)\n", sp.Req, sp.WallNS)
			ok = false
		}
		if sp.Req == 0 {
			fmt.Fprintf(os.Stderr, "tracecheck: span with request id 0 (reserved for \"no request\")\n")
			ok = false
		}
		if sum > sp.WallNS+sumSlackNS {
			fmt.Fprintf(os.Stderr, "tracecheck: span req=%d: stage sum %dns exceeds wall %dns\n",
				sp.Req, sum, sp.WallNS)
			ok = false
		}
		// Wall time no stage claims: scheduler or bookkeeping slop,
		// worth surfacing when it stops being negligible.
		if gap := sp.WallNS - sum; gap > sumSlackNS && gap > sp.WallNS/10 {
			gaps++
		}
	}
	if gaps > 0 {
		fmt.Printf("tracecheck: %d/%d spans have >10%% unattributed wall time\n", gaps, len(spans))
	}
	return ok
}

// printSlowest summarizes the n slowest spans, slowest first.
func printSlowest(spans []obs.Span, n int) {
	sorted := make([]obs.Span, len(spans))
	copy(sorted, spans)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].WallNS > sorted[j].WallNS })
	if n > len(sorted) {
		n = len(sorted)
	}
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	fmt.Printf("tracecheck: %d slowest spans:\n", n)
	for _, sp := range sorted[:n] {
		fmt.Printf("  req=%d tid=%d op=%s status=%s wall=%.1fus dominant=%s",
			sp.Req, sp.TID, sp.Op, sp.Status, us(sp.WallNS), sp.Dominant())
		for st := obs.Stage(0); st < obs.NumStages; st++ {
			fmt.Printf(" %s=%.1fus", st, us(sp.Stage[st]))
		}
		fmt.Printf(" kcas=%d/%d/%d (publish/help/abort)\n", sp.Publishes, sp.Helps, sp.Aborts)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracecheck:", err)
	os.Exit(1)
}
